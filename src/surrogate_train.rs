//! The `asura train-surrogate` pipeline: generate `(input, target)`
//! voxel-field pairs from **real conventional driver runs** (not the
//! synthetic Sedov boxes of [`surrogate::training`]), train the U-Net on
//! them, and render the weights + training-manifest documents.
//!
//! The dataset recipe mirrors the paper's §3.3 train→deploy cycle at this
//! repo's scale: each sample realizes the `sn_shell_conventional` scenario
//! at its own seed (the `supernova_remnant` IC family — a jittered gas
//! lattice with one promptly exploding star — integrated conventionally
//! with the adaptive global CFL step), voxelizes the gas just before the
//! explosion as the *input*, runs the conventional driver until one
//! prediction horizon past the SN, and voxelizes the evolved gas as the
//! *target*. Deployment geometry equals training geometry — same IC
//! family, same `region_side` cube, same horizon — so a model trained here
//! is in-distribution when `--predictor unet:<weights.json>` serves the
//! `supernova_remnant` scenario.

use crate::scenarios;
use asura_core::{Particle, Simulation};
use fdps::Vec3;
use sph::GammaLawEos;
use surrogate::training::to_train_sample;
use surrogate::{
    particles_to_grid, GasParticle, SurrogateConfig, SurrogateModel, VoxelFields, VoxelGrid,
};
use unet::json::{write_json, Json};
use unet::TrainSample;

/// Document tag of the training manifest written next to the weights.
pub const MANIFEST_FORMAT: &str = "asura-train-manifest";

/// The scenario whose conventional runs generate the ground truth.
pub const TRAIN_SCENARIO: &str = "sn_shell_conventional";

/// Hard cap on conventional steps per sample: the post-SN CFL collapse is
/// the whole point of the surrogate, so the ground-truth run takes many
/// small steps — but a pathological IC must not hang training forever.
const STEP_CAP: usize = 20_000;

/// Training hyperparameters (the CLI's `train-surrogate` flags).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainSpec {
    /// Conventional driver runs to generate (one sample each).
    pub samples: usize,
    pub epochs: usize,
    /// Voxels per edge (64 in the paper; the default trades fidelity for
    /// minutes-scale training).
    pub grid_n: usize,
    /// U-Net width.
    pub base_features: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Seeds everything: sample `i` realizes its IC at `seed + i`, and the
    /// network initializes at `seed`. Same spec → bitwise-identical
    /// weights (the kernel-determinism contract extends through training).
    pub seed: u64,
}

impl Default for TrainSpec {
    fn default() -> Self {
        TrainSpec {
            samples: 4,
            epochs: 40,
            grid_n: 16,
            base_features: 4,
            lr: 1e-2,
            seed: 1,
        }
    }
}

/// The trained model plus its loss trajectory.
pub struct TrainOutcome {
    pub model: SurrogateModel,
    /// Per-epoch mean training losses.
    pub losses: Vec<f64>,
}

/// Voxelize a driver particle set's gas onto `grid` (the same
/// particle→field mapping the deployed pipeline applies to a dispatched
/// region, temperature through the gamma-law EOS).
fn voxelize_gas(particles: &[Particle], grid: VoxelGrid) -> VoxelFields {
    let eos = GammaLawEos::default();
    let gas: Vec<GasParticle> = particles
        .iter()
        .filter(|p| p.is_gas())
        .map(|p| GasParticle {
            pos: p.pos,
            vel: p.vel,
            mass: p.mass,
            temp: eos.temperature_from_u(p.u),
            h: p.h.max(1e-3),
            id: p.id,
        })
        .collect();
    particles_to_grid(grid, &gas)
}

/// One `(input, target)` pair from a real conventional run at `seed`:
/// input = the gas voxelized just before the SN, target = the gas one
/// prediction horizon after it.
pub fn driver_sample(seed: u64, grid_n: usize) -> TrainSample {
    let scenario = scenarios::find(TRAIN_SCENARIO).expect("training scenario is registered");
    let (cfg, particles) = scenario.build(seed);
    let grid = VoxelGrid::centered(Vec3::ZERO, cfg.region_side, grid_n);
    let horizon = cfg.horizon();
    let mut sim = Simulation::new(cfg, particles, seed);
    let input = voxelize_gas(&sim.particles, grid);
    let mut t_sn = None;
    for _ in 0..STEP_CAP {
        let t_before = sim.time;
        sim.step();
        if t_sn.is_none() && sim.stats.sn_events > 0 {
            // The SN went off somewhere in (t_before, t_before + dt].
            t_sn = Some(t_before);
        }
        if t_sn.is_some_and(|t0| sim.time >= t0 + horizon) {
            break;
        }
    }
    assert!(
        t_sn.is_some(),
        "training scenario must explode within {STEP_CAP} steps"
    );
    let target = voxelize_gas(&sim.particles, grid);
    to_train_sample(&input, &target)
}

/// Generate the driver-run dataset for `spec` (sample `i` at seed
/// `spec.seed + i`).
pub fn driver_dataset(spec: &TrainSpec) -> Vec<TrainSample> {
    (0..spec.samples)
        .map(|i| driver_sample(spec.seed + i as u64, spec.grid_n))
        .collect()
}

/// The full tentpole pipeline: dataset from conventional runs, then Adam
/// training from a `spec.seed`-initialized network. Deterministic in the
/// spec — two identical calls produce bitwise-identical weights.
pub fn train(spec: &TrainSpec) -> TrainOutcome {
    let dataset = driver_dataset(spec);
    let scenario_side = scenarios::find(TRAIN_SCENARIO)
        .expect("training scenario is registered")
        .config()
        .region_side;
    let mut model = SurrogateModel::new(SurrogateConfig {
        grid_n: spec.grid_n,
        side: scenario_side,
        base_features: spec.base_features,
        seed: spec.seed,
    });
    let losses = model.train(&dataset, spec.epochs, spec.lr);
    TrainOutcome { model, losses }
}

/// Render the training manifest: the spec, the dataset recipe, and the
/// loss trajectory, as a [`unet::json`] document.
pub fn manifest_json(spec: &TrainSpec, losses: &[f64]) -> String {
    let doc = Json::Obj(vec![
        ("format".into(), Json::Str(MANIFEST_FORMAT.into())),
        ("scenario".into(), Json::Str(TRAIN_SCENARIO.into())),
        ("dataset_seed".into(), Json::Num(spec.seed as f64)),
        ("samples".into(), Json::Num(spec.samples as f64)),
        ("epochs".into(), Json::Num(spec.epochs as f64)),
        ("lr".into(), Json::Num(spec.lr)),
        ("grid_n".into(), Json::Num(spec.grid_n as f64)),
        ("base_features".into(), Json::Num(spec.base_features as f64)),
        (
            "final_loss".into(),
            losses.last().map_or(Json::Null, |&l| Json::Num(l)),
        ),
        (
            "losses".into(),
            Json::Arr(losses.iter().map(|&l| Json::Num(l)).collect()),
        ),
    ]);
    let mut out = String::new();
    write_json(&doc, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> TrainSpec {
        TrainSpec {
            samples: 1,
            epochs: 3,
            grid_n: 8,
            base_features: 2,
            lr: 1e-2,
            seed: 11,
        }
    }

    #[test]
    fn driver_sample_captures_the_explosion() {
        let s = driver_sample(5, 8);
        assert_eq!(s.input.shape(), (8, 8, 8, 8));
        assert_eq!(s.target.shape(), (8, 8, 8, 8));
        assert!(s.input.data.iter().all(|v| v.is_finite()));
        assert!(s.target.data.iter().all(|v| v.is_finite()));
        // The SN must leave a mark: the evolved cube differs from the IC.
        assert_ne!(s.input.data, s.target.data);
    }

    #[test]
    fn training_reduces_loss_and_is_deterministic() {
        let spec = tiny_spec();
        let a = train(&spec);
        assert_eq!(a.losses.len(), spec.epochs);
        assert!(
            a.losses.last().unwrap() < a.losses.first().unwrap(),
            "loss should fall: {:?}",
            a.losses
        );
        let b = train(&spec);
        assert_eq!(
            a.model.to_json(),
            b.model.to_json(),
            "same spec must give bitwise-identical weights"
        );
        assert_eq!(a.losses, b.losses);
    }

    #[test]
    fn manifest_records_the_recipe() {
        let spec = tiny_spec();
        let m = manifest_json(&spec, &[0.5, 0.25]);
        let v = unet::json::parse_json(&m).expect("manifest parses");
        assert_eq!(v.get("format").unwrap(), &Json::Str(MANIFEST_FORMAT.into()));
        assert_eq!(v.get("samples").unwrap(), &Json::Num(1.0));
        assert_eq!(v.get("final_loss").unwrap(), &Json::Num(0.25));
    }
}
