//! Umbrella crate for the ASURA-FDPS-ML reproduction workspace.
//!
//! Re-exports every subsystem crate so the integration tests under
//! `tests/` and the runnable `examples/` have a single dependency root,
//! and hosts the [`scenarios`] registry behind the `asura` scenario-runner
//! binary (`src/bin/asura.rs`). Library users should depend on the
//! individual crates directly.

#![forbid(unsafe_code)]

pub mod scenarios;
pub mod surrogate_train;

pub use astro;
pub use asura_core;
pub use fdps;
pub use galactic_ic;
pub use gravity;
pub use mpisim;
pub use perfmodel;
pub use pikg;
pub use sph;
pub use surrogate;
pub use unet;
