//! `asura` — the scenario-runner CLI.
//!
//! One operational entry point over the registered scenarios
//! (see [`asura::scenarios`]): pick a workload by name, override the
//! scheme/timestep mode/step count, checkpoint at a cadence, resume from a
//! snapshot, and collect a diagnostics time series — all under `results/`.
//!
//! ```sh
//! asura --list
//! asura --scenario quickstart --steps 5 --snapshot-every 2
//! asura --scenario quickstart --resume results/quickstart --steps 5
//! asura --scenario supernova_remnant --snapshot-format json
//! asura --scenario spiked_dt --scheme conventional --timestep block:8
//! asura --scenario spiked_dt --supervised --snapshot-every 2
//! asura --scenario quickstart --dist 2x1x1+1 --steps 6 --snapshot-every 3
//! asura --scenario quickstart --dist 2x1x1+1 --resume results/quickstart
//! ```
//!
//! # Checkpoints
//!
//! Checkpoints are managed by the atomic rotated store
//! ([`asura_core::ckpt`]): every commit is tmp → fsync → rename, the run
//! directory keeps the last `--keep` stamped snapshots
//! (`checkpoint-<step>.<ext>`, `dist_checkpoint-<step>.<ext>` for
//! `--dist`) plus a checksummed manifest, and `--resume` accepts either a
//! snapshot file or a run *directory* — the latter loads the newest
//! rotation entry that passes validation, silently skipping damaged ones.
//!
//! # Supervision
//!
//! `--supervised` runs the scenario as a child process that touches a
//! heartbeat file every step. The parent detects crashes (exit status)
//! and hangs (stale heartbeat) and auto-resumes from the newest intact
//! checkpoint under a bounded retry budget with exponential backoff,
//! recording every incident in `supervisor.json`. Deterministic fault
//! injection for testing this machinery is driven by the `ASURA_FAULTS` /
//! `ASURA_ATTEMPT` environment variables ([`asura_core::faults`]).
//!
//! `--dist NXxNYxNZ+P` routes the scenario through the distributed
//! (`mpisim`) driver — `NX*NY*NZ` main ranks plus `P` pool ranks —
//! rotating `dist_checkpoint-<step>.{bin,json}` per `--snapshot-format`
//! (resumable with `--dist --resume`, either encoding) and writing
//! `dist_report.json` instead of the shared-memory outputs. `--timestep
//! block[:<max_level>]` runs the conventional hierarchy's substep walk
//! across the ranks so its per-substep synchronization cost is measured
//! (paper Figs. 6/7).
//!
//! # Trained surrogates
//!
//! `asura train-surrogate` closes the paper's train→persist→deploy loop:
//! it generates `(input, target)` voxel pairs from real conventional
//! SN-shell runs, trains the U-Net, and writes a checksummed weights
//! document plus a training manifest (see [`asura::surrogate_train`]).
//! `--predictor unet:<weights.json>` then serves those weights on any
//! surrogate-scheme run — shared-memory, `--supervised`, or `--dist` —
//! and embeds them in every checkpoint, so `--resume` rebuilds the
//! identical predictor without the weights file. An unreadable or corrupt
//! weights file is a *permanent* error (exit 2): the supervisor never
//! retries it.
//!
//! Exit codes: 0 success, 1 runtime failure (unreadable snapshot, I/O,
//! supervision gave up), 2 usage error or permanent failure (bad weights).

#![forbid(unsafe_code)]

use asura::scenarios;
use asura::surrogate_train::{self, TrainSpec};
use asura_core::ckpt::{atomic_write, CkptFormat, CkptStore, DEFAULT_KEEP};
use asura_core::diagnostics::{TimeSample, TimeSeries};
use asura_core::dist::{
    run_distributed, run_distributed_resume, DistConfig, DistSnapshot, PredictorKind,
};
use asura_core::faults::{self, FaultInjector};
use asura_core::serve::{self, Request, ServeConfig};
use asura_core::snapshot::SimSnapshot;
use asura_core::supervise::{
    Heartbeat, Outcome, ProcessChild, ResumePoint, RetryPolicy, Supervisor,
};
use asura_core::{Scheme, Simulation, TimestepMode};
use fdps::exchange::Routing;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "\
asura — ASURA-FDPS-ML scenario runner

USAGE:
    asura --list
    asura --scenario <name> [OPTIONS]
    asura --resume <snapshot|run-dir> [--scenario <name>] [OPTIONS]
    asura --scenario <name> --supervised [OPTIONS]
    asura train-surrogate [--out <weights.json>] [--samples <n>] [--epochs <n>]
                          [--grid <n>] [--base-features <n>] [--lr <x>] [--seed <s>]
    asura scenarios
    asura serve [--root <dir>] [--addr <ip:port>] [--max-concurrent <n>]
                [--max-retries <n>] [--backoff-ms <ms>]
                [--heartbeat-timeout-ms <ms>] [--keep <k>]
    asura submit <scenario> [<overrides-json>] [--root <dir> | --addr <ip:port>]
    asura status <run-id>   [--root | --addr]
    asura list              [--root | --addr]
    asura watch <run-id>    [--root | --addr]
    asura cancel <run-id>   [--root | --addr]
    asura shutdown [--drain] [--root | --addr]

`asura serve` is the simulation-as-a-service daemon: a run registry
persisted to <root>/fleet.json, a bounded-concurrency job queue, and one
supervised child process per dispatched run. The client subcommands speak
its line protocol; they find the daemon via <root>/serve.json unless
--addr is given. See the asura-core serve module docs for the grammar.

OPTIONS:
    --list                     list registered scenarios and exit
    --scenario <name>          scenario to run (also names the results/ subdirectory)
    --resume <path>            continue from a snapshot file, or from a run directory's
                               newest intact rotation entry
    --steps <n>                steps to integrate (default: the scenario's default)
    --scheme <s>               surrogate | conventional
    --timestep <t>             global | block | block:<max_level>
    --snapshot-every <k>       checkpoint cadence in steps (0 = off)
    --snapshot-format <f>      bin | json (default bin)
    --seed <s>                 scenario realization / RNG seed (default 42)
    --predictor <p>            sedov (default) | unet:<weights.json> — the pool
                               predictor serving SN regions; unet: loads trained
                               weights from `asura train-surrogate` and embeds
                               them in every checkpoint (a bad file exits 2 and
                               is never retried by the supervisor)
    --diag-every <k>           diagnostics sampling cadence (default 1)
    --out-dir <dir>            output root (default results); artifacts land in
                               <out-dir>/<scenario>/
    --run-dir <dir>            exact artifact directory (no scenario-name nesting);
                               used by the serve daemon so each run id owns its
                               own directory
    --keep <k>                 checkpoint rotation depth (default 3)
    --dist <NXxNYxNZ+P>        run through the distributed (mpisim) driver:
                               NX*NY*NZ main ranks + P pool ranks
    --supervised               run as a heartbeat-monitored child with crash/hang
                               detection and auto-resume from the rotation
    --max-retries <n>          supervised: resume budget (default 3)
    --backoff-ms <ms>          supervised: exponential backoff base (default 500)
    --heartbeat-timeout-ms <ms>  supervised: stale-heartbeat hang threshold
                               (default 30000)
    --heartbeat <path>         (internal) heartbeat file touched every step
    --help                     this text

Deterministic fault injection (for testing the crash-safety machinery) is
read from ASURA_FAULTS, e.g. `ASURA_FAULTS=\"torn@2:64#0,kill@5#0\"`; see
the asura-core faults module docs for the grammar.
";

/// Parsed `--predictor` spec: which pool predictor serves SN regions.
#[derive(Debug, Clone, PartialEq)]
enum PredictorSpec {
    /// The analytic Sedov–Taylor overlay (the default, no weights needed).
    Sedov,
    /// A trained U-Net from `asura train-surrogate` weights at this path.
    UNet(String),
}

impl PredictorSpec {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "sedov" => Ok(PredictorSpec::Sedov),
            other => match other.strip_prefix("unet:") {
                Some(p) if !p.is_empty() => Ok(PredictorSpec::UNet(p.to_string())),
                _ => Err(format!(
                    "--predictor expects `sedov` or `unet:<weights.json>`, got `{s}`"
                )),
            },
        }
    }

    /// Render back to the flag value (for forwarding to supervised children).
    fn flag_value(&self) -> String {
        match self {
            PredictorSpec::Sedov => "sedov".into(),
            PredictorSpec::UNet(p) => format!("unet:{p}"),
        }
    }

    /// Resolve to a ready [`PredictorKind`]: for `unet:` this reads and
    /// validates the weights file, so a bad file fails here — as a
    /// *permanent* error (exit 2, never retried by the supervisor) — not
    /// mid-run.
    fn resolve(&self, seed: u64) -> Result<PredictorKind, String> {
        let kind = match self {
            PredictorSpec::Sedov => PredictorKind::SedovOverlay,
            PredictorSpec::UNet(path) => PredictorKind::UNetTrained {
                path: path.clone(),
                seed,
            },
        };
        kind.resolve().map_err(|e| format!("permanent: {e}"))
    }
}

struct Args {
    list: bool,
    scenario: Option<String>,
    resume: Option<PathBuf>,
    steps: Option<usize>,
    scheme: Option<Scheme>,
    timestep: Option<TimestepMode>,
    snapshot_every: Option<u64>,
    snapshot_format: CkptFormat,
    seed: u64,
    /// Diagnostics sampling cadence; `None` means the default of every
    /// step (explicitly passing the flag with `--dist` is rejected).
    diag_every: Option<u64>,
    out_dir: PathBuf,
    /// Exact artifact directory, overriding the `<out-dir>/<scenario>`
    /// nesting — the serve daemon gives every run id its own directory.
    run_dir: Option<PathBuf>,
    /// Checkpoint rotation depth.
    keep: usize,
    /// Main-rank grid + pool rank count of `--dist`.
    dist: Option<((usize, usize, usize), usize)>,
    supervised: bool,
    max_retries: u32,
    backoff_ms: u64,
    heartbeat_timeout_ms: u64,
    /// Heartbeat file the (supervised) child touches after every step —
    /// set by the supervisor when it spawns the child.
    heartbeat: Option<PathBuf>,
    /// `--predictor`: which pool predictor serves SN regions on a fresh
    /// run (resumed runs reuse the snapshot's embedded model when present).
    predictor: Option<PredictorSpec>,
}

/// Parse `--dist`'s `NXxNYxNZ+P` spec.
fn parse_dist_spec(spec: &str) -> Result<((usize, usize, usize), usize), String> {
    let bad = || format!("--dist expects NXxNYxNZ+P (e.g. 2x1x1+1), got `{spec}`");
    let (grid, pool) = spec.split_once('+').ok_or_else(bad)?;
    let dims: Vec<usize> = grid
        .split('x')
        .map(|d| d.parse::<usize>().map_err(|_| bad()))
        .collect::<Result<_, _>>()?;
    let [nx, ny, nz] = dims[..] else {
        return Err(bad());
    };
    let n_pool = pool.parse::<usize>().map_err(|_| bad())?;
    if nx * ny * nz == 0 {
        return Err(format!("--dist needs at least one main rank, got `{spec}`"));
    }
    if n_pool == 0 {
        return Err(format!(
            "--dist needs at least one pool rank (the surrogate scheme ships SN regions \
             to the pool), got `{spec}`"
        ));
    }
    Ok(((nx, ny, nz), n_pool))
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        list: false,
        scenario: None,
        resume: None,
        steps: None,
        scheme: None,
        timestep: None,
        snapshot_every: None,
        snapshot_format: CkptFormat::Bin,
        seed: 42,
        diag_every: None,
        out_dir: PathBuf::from("results"),
        run_dir: None,
        keep: DEFAULT_KEEP,
        dist: None,
        supervised: false,
        max_retries: 3,
        backoff_ms: 500,
        heartbeat_timeout_ms: 30_000,
        heartbeat: None,
        predictor: None,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--list" => args.list = true,
            "--scenario" => args.scenario = Some(value("--scenario")?.clone()),
            "--resume" => args.resume = Some(PathBuf::from(value("--resume")?)),
            "--steps" => {
                args.steps = Some(
                    value("--steps")?
                        .parse()
                        .map_err(|e| format!("--steps: {e}"))?,
                )
            }
            "--scheme" => {
                args.scheme = Some(match value("--scheme")?.as_str() {
                    "surrogate" => Scheme::Surrogate,
                    "conventional" => Scheme::Conventional,
                    other => return Err(format!("unknown scheme `{other}`")),
                })
            }
            "--timestep" => {
                let v = value("--timestep")?.clone();
                args.timestep = Some(match v.as_str() {
                    "global" => TimestepMode::Global,
                    "block" => TimestepMode::Block { max_level: 8 },
                    other => match other.strip_prefix("block:") {
                        Some(l) => TimestepMode::Block {
                            max_level: l.parse().map_err(|e| format!("--timestep block: {e}"))?,
                        },
                        None => return Err(format!("unknown timestep mode `{other}`")),
                    },
                })
            }
            "--snapshot-every" => {
                args.snapshot_every = Some(
                    value("--snapshot-every")?
                        .parse()
                        .map_err(|e| format!("--snapshot-every: {e}"))?,
                )
            }
            "--snapshot-format" => {
                args.snapshot_format = match value("--snapshot-format")?.as_str() {
                    "bin" => CkptFormat::Bin,
                    "json" => CkptFormat::Json,
                    other => return Err(format!("unknown snapshot format `{other}`")),
                }
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--diag-every" => {
                args.diag_every = Some(
                    value("--diag-every")?
                        .parse()
                        .map_err(|e| format!("--diag-every: {e}"))?,
                )
            }
            "--out-dir" => args.out_dir = PathBuf::from(value("--out-dir")?),
            "--run-dir" => args.run_dir = Some(PathBuf::from(value("--run-dir")?)),
            "--keep" => {
                args.keep = value("--keep")?
                    .parse()
                    .map_err(|e| format!("--keep: {e}"))?;
                if args.keep == 0 {
                    return Err("--keep must be at least 1".into());
                }
            }
            "--dist" => args.dist = Some(parse_dist_spec(value("--dist")?)?),
            "--supervised" => args.supervised = true,
            "--max-retries" => {
                args.max_retries = value("--max-retries")?
                    .parse()
                    .map_err(|e| format!("--max-retries: {e}"))?
            }
            "--backoff-ms" => {
                args.backoff_ms = value("--backoff-ms")?
                    .parse()
                    .map_err(|e| format!("--backoff-ms: {e}"))?
            }
            "--heartbeat-timeout-ms" => {
                args.heartbeat_timeout_ms = value("--heartbeat-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--heartbeat-timeout-ms: {e}"))?
            }
            "--heartbeat" => args.heartbeat = Some(PathBuf::from(value("--heartbeat")?)),
            "--predictor" => args.predictor = Some(PredictorSpec::parse(value("--predictor")?)?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

/// Resolve `--resume` for the shared-memory path: a snapshot file, or a
/// run directory whose rotation supplies the newest intact checkpoint.
fn load_sim_resume(path: &Path, keep: usize) -> Result<(SimSnapshot, PathBuf), String> {
    if path.is_dir() {
        let store = CkptStore::new(path, keep);
        let (entry, snap) = store.latest_valid_sim().ok_or_else(|| {
            format!(
                "--resume {}: no intact checkpoint in the rotation",
                path.display()
            )
        })?;
        let p = store.entry_path(&entry);
        Ok((snap, p))
    } else {
        let snap = SimSnapshot::load(path).map_err(|e| format!("--resume {path:?}: {e}"))?;
        Ok((snap, path.to_path_buf()))
    }
}

/// Resolve `--resume` for the `--dist` path (base `dist_checkpoint`).
fn load_dist_resume(path: &Path, keep: usize) -> Result<(DistSnapshot, PathBuf), String> {
    if path.is_dir() {
        let store = CkptStore::with_base(path, "dist_checkpoint", keep);
        let (entry, snap) = store.latest_valid_dist().ok_or_else(|| {
            format!(
                "--resume {}: no intact dist checkpoint in the rotation",
                path.display()
            )
        })?;
        let p = store.entry_path(&entry);
        Ok((snap, p))
    } else {
        let snap = DistSnapshot::load(path).map_err(|e| format!("--resume {path:?}: {e}"))?;
        Ok((snap, path.to_path_buf()))
    }
}

/// The `--dist` path: route the scenario through the mpisim driver, with
/// snapshot→resume support mirroring the shared-memory CLI.
fn run_dist(
    args: &Args,
    grid: (usize, usize, usize),
    n_pool: usize,
    injector: &mut FaultInjector,
) -> Result<(), String> {
    let name = args
        .scenario
        .as_deref()
        .ok_or("--dist requires --scenario (it provides the config and initial condition)")?;
    let scenario = scenarios::find(name).ok_or_else(|| format!("unknown scenario `{name}`"))?;
    // The distributed driver handles SNe through the pool ranks (the
    // surrogate data path) in either timestep mode; reject flags it would
    // silently ignore rather than hand back a run the user didn't ask for.
    if args.scheme == Some(Scheme::Conventional) {
        return Err(
            "--dist handles SNe through the pool ranks (the surrogate data path); \
                    --scheme conventional is the shared-memory driver's comparison baseline"
                .into(),
        );
    }
    if args.diag_every.is_some() {
        return Err(
            "--dist writes dist_report.json instead of a diagnostics time series; \
                    --diag-every applies to the shared-memory driver"
                .into(),
        );
    }
    // Resume replaces the particle state wholesale, so only realize the
    // initial condition on a fresh run; the config alone is cheap.
    let (mut sim_cfg, particles) = match args.resume {
        Some(_) => (scenario.config(), Vec::new()),
        None => scenario.build(args.seed),
    };
    sim_cfg.scheme = Scheme::Surrogate;
    // `--timestep block[:<max_level>]` runs the conventional hierarchy's
    // substep walk across the mpisim ranks (dist.rs module docs:
    // "Distributed block timesteps").
    if let Some(t) = args.timestep {
        sim_cfg.timestep = t;
    }
    let steps = args.steps.unwrap_or(scenario.default_steps);
    let cfg = DistConfig {
        grid,
        n_pool,
        routing: Routing::Flat,
        sim: sim_cfg,
        steps,
        // Resolved eagerly so a bad weights file dies here with exit 2
        // (on resume the snapshot's embedded model overrides this anyway).
        predictor: match &args.predictor {
            Some(p) => p.resolve(args.seed)?,
            None => PredictorKind::SedovOverlay,
        },
        snapshot_every: args.snapshot_every.unwrap_or(0),
    };
    let dir = args.out_dir.join(scenario.name);
    std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;

    let report = match &args.resume {
        Some(path) => {
            let (snap, resolved) = load_dist_resume(path, args.keep)?;
            if snap.rank_particles.len() != cfg.n_main() {
                return Err(format!(
                    "--resume {}: checkpoint was written by {} main ranks but --dist \
                     asks for {} ({}x{}x{}) — resume requires the same main-rank grid",
                    resolved.display(),
                    snap.rank_particles.len(),
                    cfg.n_main(),
                    grid.0,
                    grid.1,
                    grid.2,
                ));
            }
            println!(
                "dist resume from {} (step {}, t = {:.4} Myr, {} ranks, {} regions in flight): \
                 {} more steps on {}x{}x{}+{} ranks",
                resolved.display(),
                snap.step,
                snap.time,
                snap.rank_particles.len(),
                snap.pending.len(),
                steps,
                grid.0,
                grid.1,
                grid.2,
                n_pool,
            );
            // Unlike shared-memory snapshots, a DistSnapshot carries no
            // SimConfig — the named scenario supplies it, so resuming
            // under a different scenario's name would integrate the
            // checkpointed particles with the wrong physics.
            println!(
                "note: resuming with scenario `{}`'s config — it must be the scenario \
                 that wrote the checkpoint",
                scenario.name
            );
            run_distributed_resume(&cfg, &snap)
        }
        None => {
            println!(
                "dist scenario {} ({} particles) on {}x{}x{}+{} ranks for {} steps",
                scenario.name,
                particles.len(),
                grid.0,
                grid.1,
                grid.2,
                n_pool,
                steps,
            );
            run_distributed(&cfg, &particles)
        }
    }
    .map_err(|e| format!("distributed run: {e}"))?;

    // Gathered checkpoints rotate through the atomic store — the newest
    // `--keep` of them, in the requested encoding, plus the manifest.
    let store = CkptStore::with_base(&dir, "dist_checkpoint", args.keep);
    for snap in &report.snapshots {
        let path = store
            .commit_dist(snap, args.snapshot_format, injector)
            .map_err(|e| format!("writing dist checkpoint under {}: {e}", dir.display()))?;
        println!("[checkpoint] {} (step {})", path.display(), snap.step);
    }
    if !report.snapshots.is_empty() {
        println!("[manifest] {}", store.manifest_path().display());
    }
    // Counter summary (hand-rendered JSON, like the bench artifacts).
    let total_bytes: u64 = report.bytes_sent.iter().sum();
    let substeps_max = report
        .rank_stats
        .iter()
        .map(|s| s.substeps)
        .max()
        .unwrap_or(0);
    let active_updates: u64 = report.rank_stats.iter().map(|s| s.active_updates).sum();
    let tree_refreshes: u64 = report.rank_stats.iter().map(|s| s.tree_refreshes).sum();
    let tree_rebuilds: u64 = report.rank_stats.iter().map(|s| s.tree_rebuilds).sum();
    let phases: String = report
        .phases
        .entries
        .iter()
        .map(|e| {
            format!(
                "    {{\"name\": \"{}\", \"total_s\": {:.6}}}",
                e.name, e.total_s
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let degraded = match &report.error {
        Some(e) => format!("\"{e}\""),
        None => "null".to_string(),
    };
    let json = format!(
        "{{\n  \"steps\": {},\n  \"sn_events\": {},\n  \"regions_applied\": {},\n  \
         \"gravity_interactions\": {},\n  \"hydro_interactions\": {},\n  \
         \"final_particles\": {},\n  \"bytes_sent_total\": {},\n  \"snapshots\": {},\n  \
         \"substeps\": {},\n  \"active_updates\": {},\n  \"tree_refreshes\": {},\n  \
         \"tree_rebuilds\": {},\n  \"error\": {},\n  \"phases\": [\n{}\n  ]\n}}\n",
        report.steps,
        report.sn_events,
        report.regions_applied,
        report.gravity_interactions,
        report.hydro_interactions,
        report.final_particles,
        total_bytes,
        report.snapshots.len(),
        substeps_max,
        active_updates,
        tree_refreshes,
        tree_rebuilds,
        degraded,
        phases,
    );
    let report_path = dir.join("dist_report.json");
    atomic_write(&report_path, json.as_bytes())
        .map_err(|e| format!("write {}: {e}", report_path.display()))?;
    println!(
        "dist done: {} steps ({} substeps) | {} SNe, {} regions applied, {} particles, \
         {} snapshot(s)",
        report.steps,
        substeps_max,
        report.sn_events,
        report.regions_applied,
        report.final_particles,
        report.snapshots.len(),
    );
    println!("[report] {}", report_path.display());
    // A degraded run aborted early at a collective point: its final
    // checkpoint and report are on disk, but the run did not complete —
    // surface that as a failure after persisting everything.
    if let Some(err) = &report.error {
        return Err(format!(
            "distributed run degraded: {err} (checkpoint and report retained under {})",
            dir.display()
        ));
    }
    Ok(())
}

/// The `--supervised` parent: spawn the scenario as a heartbeat-monitored
/// child, auto-resume it from the checkpoint rotation on crash or hang,
/// and record every incident in `supervisor.json`.
fn run_supervised(args: &Args) -> Result<(), String> {
    let name = args
        .scenario
        .as_deref()
        .ok_or("usage: --supervised requires --scenario")?;
    if args.dist.is_some() {
        return Err(
            "usage: --supervised drives the shared-memory runner; it cannot be combined \
             with --dist"
                .into(),
        );
    }
    if args.resume.is_some() {
        return Err(
            "usage: --supervised resumes automatically from the run directory's rotation; \
             drop --resume"
                .into(),
        );
    }
    let scenario = scenarios::find(name).ok_or_else(|| format!("unknown scenario `{name}`"))?;
    // `--steps` is the run's *target* in absolute steps: every resumed
    // attempt is handed `target - resume_step` so all attempts end at the
    // same final step, which is what makes the chaos tests' bitwise
    // final-state comparison meaningful.
    let target_steps = args.steps.unwrap_or(scenario.default_steps);
    let dir = args
        .run_dir
        .clone()
        .unwrap_or_else(|| args.out_dir.join(scenario.name));
    std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let store = CkptStore::new(&dir, args.keep);
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let hb_path = dir.join("heartbeat");
    let supervisor = Supervisor {
        policy: RetryPolicy {
            max_retries: args.max_retries,
            backoff_base_ms: args.backoff_ms,
            backoff_cap_ms: args.backoff_ms.max(1) * 16,
        },
        heartbeat_timeout_ms: args.heartbeat_timeout_ms,
        poll_interval_ms: 20,
        permanent_exit_codes: vec![2],
        log_path: dir.join("supervisor.json"),
        heartbeat_path: hb_path.clone(),
    };
    println!(
        "supervising scenario {name}: target {target_steps} steps, rotation keep {}, \
         up to {} resume(s)",
        args.keep, args.max_retries
    );
    let (outcome, log) = supervisor
        .run(
            |attempt, resume| {
                let mut cmd = std::process::Command::new(&exe);
                cmd.arg("--scenario").arg(name);
                let child_steps = match resume {
                    Some(rp) => target_steps.saturating_sub(rp.step as usize),
                    None => target_steps,
                };
                cmd.arg("--steps").arg(child_steps.to_string());
                if let Some(rp) = resume {
                    cmd.arg("--resume").arg(&rp.path);
                }
                if let Some(s) = args.scheme {
                    cmd.arg("--scheme").arg(match s {
                        Scheme::Surrogate => "surrogate",
                        Scheme::Conventional => "conventional",
                    });
                }
                if let Some(t) = args.timestep {
                    cmd.arg("--timestep").arg(match t {
                        TimestepMode::Global => "global".to_string(),
                        TimestepMode::Block { max_level } => format!("block:{max_level}"),
                    });
                }
                if let Some(k) = args.snapshot_every {
                    cmd.arg("--snapshot-every").arg(k.to_string());
                }
                cmd.arg("--snapshot-format").arg(args.snapshot_format.ext());
                cmd.arg("--seed").arg(args.seed.to_string());
                if let Some(d) = args.diag_every {
                    cmd.arg("--diag-every").arg(d.to_string());
                }
                if let Some(p) = &args.predictor {
                    cmd.arg("--predictor").arg(p.flag_value());
                }
                cmd.arg("--run-dir").arg(&dir);
                cmd.arg("--keep").arg(args.keep.to_string());
                cmd.arg("--heartbeat").arg(&hb_path);
                // Attempt-scoped fault arming: ASURA_FAULTS is inherited
                // from this process's environment untouched.
                cmd.env(faults::ATTEMPT_ENV, attempt.to_string());
                match resume {
                    Some(rp) => println!(
                        "[supervisor] attempt {attempt}: resuming from step {} ({})",
                        rp.step,
                        rp.path.display()
                    ),
                    None => println!("[supervisor] attempt {attempt}: fresh start"),
                }
                cmd.spawn().map(ProcessChild::new)
            },
            || {
                store.latest_valid_sim().map(|(entry, _)| ResumePoint {
                    step: entry.step,
                    path: store.entry_path(&entry),
                })
            },
        )
        .map_err(|e| format!("supervisor: {e}"))?;
    println!(
        "[supervisor] {} incident(s), log {}",
        log.incidents.len(),
        supervisor.log_path.display()
    );
    match outcome {
        Outcome::Completed { attempts } => {
            println!("[supervisor] run completed after {attempts} attempt(s)");
            Ok(())
        }
        Outcome::GaveUp { attempts } => Err(format!(
            "supervised run gave up after {attempts} attempt(s); see {}",
            supervisor.log_path.display()
        )),
        Outcome::Permanent { exit_code } => Err(format!(
            "supervised child failed permanently (exit {exit_code}); see {}",
            supervisor.log_path.display()
        )),
        // `Supervisor::run` has no abort hook, so cancellation can only
        // come out of the serve daemon's `run_with_abort` path.
        Outcome::Canceled { attempts } => Err(format!(
            "supervised run canceled after {attempts} attempt(s); see {}",
            supervisor.log_path.display()
        )),
    }
}

/// The `asura scenarios` subcommand: the submittable registry, one line
/// per scenario.
fn cmd_scenarios(rest: &[String]) -> Result<(), String> {
    if !rest.is_empty() {
        return Err(format!(
            "usage: scenarios takes no arguments, got `{}`",
            rest.join(" ")
        ));
    }
    println!("registered scenarios:");
    for s in scenarios::SCENARIOS {
        println!(
            "  {:<18} {:>4} default steps   {}",
            s.name, s.default_steps, s.description
        );
    }
    Ok(())
}

/// The `asura train-surrogate` subcommand: generate the conventional-run
/// dataset, train the U-Net, and write the weights + training manifest
/// (see [`asura::surrogate_train`]). The weights document is what
/// `--predictor unet:<weights.json>` deploys.
fn cmd_train_surrogate(rest: &[String]) -> Result<(), String> {
    let mut spec = TrainSpec::default();
    let mut out = PathBuf::from("results/train-surrogate/weights.json");
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next()
                .ok_or_else(|| format!("usage: train-surrogate: {name} needs a value"))
        };
        let bad =
            |name: &str, e: std::num::ParseIntError| format!("usage: train-surrogate: {name}: {e}");
        match flag.as_str() {
            "--out" => out = PathBuf::from(value("--out")?),
            "--samples" => {
                spec.samples = value("--samples")?
                    .parse()
                    .map_err(|e| bad("--samples", e))?
            }
            "--epochs" => {
                spec.epochs = value("--epochs")?.parse().map_err(|e| bad("--epochs", e))?
            }
            "--grid" => spec.grid_n = value("--grid")?.parse().map_err(|e| bad("--grid", e))?,
            "--base-features" => {
                spec.base_features = value("--base-features")?
                    .parse()
                    .map_err(|e| bad("--base-features", e))?
            }
            "--lr" => {
                spec.lr = value("--lr")?
                    .parse()
                    .map_err(|e| format!("usage: train-surrogate: --lr: {e}"))?
            }
            "--seed" => spec.seed = value("--seed")?.parse().map_err(|e| bad("--seed", e))?,
            other => return Err(format!("usage: train-surrogate: unknown flag `{other}`")),
        }
    }
    if spec.samples == 0 || spec.epochs == 0 || spec.base_features == 0 {
        return Err(
            "usage: train-surrogate: --samples, --epochs and --base-features \
                    must be at least 1"
                .into(),
        );
    }
    // Two 2× pooling stages in the U-Net encoder.
    if spec.grid_n < 4 || spec.grid_n % 4 != 0 {
        return Err(format!(
            "usage: train-surrogate: --grid must be a positive multiple of 4, got {}",
            spec.grid_n
        ));
    }
    println!(
        "train-surrogate: {} sample(s) from `{}` (seeds {}..{}), {} epoch(s), \
         grid {}^3, {} base features, lr {}",
        spec.samples,
        surrogate_train::TRAIN_SCENARIO,
        spec.seed,
        spec.seed + spec.samples as u64,
        spec.epochs,
        spec.grid_n,
        spec.base_features,
        spec.lr,
    );
    let t0 = std::time::Instant::now();
    let outcome = surrogate_train::train(&spec);
    let wall = t0.elapsed().as_secs_f64();
    if let Some(dir) = out.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    }
    atomic_write(&out, outcome.model.to_json().as_bytes())
        .map_err(|e| format!("write {}: {e}", out.display()))?;
    let manifest_path = out.with_file_name("train_manifest.json");
    atomic_write(
        &manifest_path,
        surrogate_train::manifest_json(&spec, &outcome.losses).as_bytes(),
    )
    .map_err(|e| format!("write {}: {e}", manifest_path.display()))?;
    println!(
        "trained in {:.1} s: loss {:.6} -> {:.6} over {} epoch(s)",
        wall,
        outcome.losses.first().copied().unwrap_or(f64::NAN),
        outcome.losses.last().copied().unwrap_or(f64::NAN),
        outcome.losses.len(),
    );
    println!("[weights] {}", out.display());
    println!("[manifest] {}", manifest_path.display());
    println!(
        "deploy with: asura --scenario supernova_remnant --predictor unet:{}",
        out.display()
    );
    Ok(())
}

/// The `asura serve` subcommand: run the fleet daemon in the foreground.
fn cmd_serve(rest: &[String]) -> Result<(), String> {
    let mut cfg = ServeConfig {
        root: PathBuf::from("results"),
        addr: "127.0.0.1:0".to_string(),
        max_concurrent: ServeConfig::default_max_concurrent(),
        catalog: scenarios::catalog(),
        retry: RetryPolicy::default(),
        heartbeat_timeout_ms: 30_000,
        keep: DEFAULT_KEEP,
    };
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--root" => cfg.root = PathBuf::from(value("--root")?),
            "--addr" => cfg.addr = value("--addr")?.clone(),
            "--max-concurrent" => {
                cfg.max_concurrent = value("--max-concurrent")?
                    .parse()
                    .map_err(|e| format!("--max-concurrent: {e}"))?;
                if cfg.max_concurrent == 0 {
                    return Err("--max-concurrent must be at least 1".into());
                }
            }
            "--max-retries" => {
                cfg.retry.max_retries = value("--max-retries")?
                    .parse()
                    .map_err(|e| format!("--max-retries: {e}"))?
            }
            "--backoff-ms" => {
                cfg.retry.backoff_base_ms = value("--backoff-ms")?
                    .parse()
                    .map_err(|e| format!("--backoff-ms: {e}"))?;
                cfg.retry.backoff_cap_ms = cfg.retry.backoff_base_ms.max(1) * 16;
            }
            "--heartbeat-timeout-ms" => {
                cfg.heartbeat_timeout_ms = value("--heartbeat-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--heartbeat-timeout-ms: {e}"))?
            }
            "--keep" => {
                cfg.keep = value("--keep")?
                    .parse()
                    .map_err(|e| format!("--keep: {e}"))?;
                if cfg.keep == 0 {
                    return Err("--keep must be at least 1".into());
                }
            }
            other => return Err(format!("serve: unknown flag `{other}`")),
        }
    }
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let keep = cfg.keep;
    // Build each worker attempt's command line from the run entry. The
    // daemon itself adds ASURA_ATTEMPT and any per-run ASURA_FAULTS plan.
    let spawner: serve::Spawner = Arc::new(move |spec: &serve::SpawnSpec| {
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("--scenario").arg(&spec.run.scenario);
        // Absolute-step target: resumed attempts integrate the remainder,
        // so every attempt ends at the same final step (the
        // bitwise-determinism contract of the chaos tests).
        let child_steps = match spec.resume {
            Some(rp) => spec.run.target_steps.saturating_sub(rp.step),
            None => spec.run.target_steps,
        };
        cmd.arg("--steps").arg(child_steps.to_string());
        if let Some(rp) = spec.resume {
            cmd.arg("--resume").arg(&rp.path);
        }
        let o = &spec.run.overrides;
        if let Some(s) = &o.scheme {
            cmd.arg("--scheme").arg(s);
        }
        if let Some(t) = &o.timestep {
            cmd.arg("--timestep").arg(t);
        }
        // Serve default cadence is every step: auto-resume should never
        // replay more than one step of lost work.
        cmd.arg("--snapshot-every")
            .arg(o.snapshot_every.unwrap_or(1).to_string());
        if let Some(f) = &o.snapshot_format {
            cmd.arg("--snapshot-format").arg(f);
        }
        cmd.arg("--seed").arg(o.seed.unwrap_or(42).to_string());
        cmd.arg("--run-dir").arg(spec.run_dir);
        cmd.arg("--keep").arg(keep.to_string());
        cmd.arg("--heartbeat").arg(spec.heartbeat);
        Ok(cmd)
    });
    serve::serve(cfg, spawner).map_err(|e| format!("serve: {e}"))
}

/// The client subcommands (`submit`/`status`/`list`/`watch`/`cancel`/
/// `shutdown`): one request line to the daemon, response lines streamed
/// to stdout as they arrive.
fn cmd_client(verb: &str, rest: &[String]) -> Result<(), String> {
    let mut root = PathBuf::from("results");
    let mut addr: Option<String> = None;
    let mut drain = false;
    let mut positional: Vec<&String> = Vec::new();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--root needs a value".to_string())?,
                )
            }
            "--addr" => {
                addr = Some(
                    it.next()
                        .ok_or_else(|| "--addr needs a value".to_string())?
                        .clone(),
                )
            }
            "--drain" if verb == "shutdown" => drain = true,
            other if other.starts_with("--") => {
                return Err(format!("{verb}: unknown flag `{other}`"))
            }
            _ => positional.push(arg),
        }
    }
    let pos = |n: usize, what: &str| -> Result<&String, String> {
        positional
            .get(n)
            .copied()
            .ok_or_else(|| format!("usage: asura {verb} <{what}>"))
    };
    let line = match verb {
        "submit" => {
            let scenario = pos(0, "scenario")?;
            match positional.get(1) {
                Some(json) => format!("SUBMIT {scenario} {json}"),
                None => format!("SUBMIT {scenario}"),
            }
        }
        "status" => format!("STATUS {}", pos(0, "run-id")?),
        "list" => "LIST".to_string(),
        "watch" => format!("WATCH {}", pos(0, "run-id")?),
        "cancel" => format!("CANCEL {}", pos(0, "run-id")?),
        "shutdown" => {
            if drain {
                "SHUTDOWN DRAIN".to_string()
            } else {
                "SHUTDOWN".to_string()
            }
        }
        other => return Err(format!("unknown subcommand `{other}`")),
    };
    // Catch grammar errors locally (typo'd overrides JSON etc.) before
    // the request crosses the wire.
    Request::parse(&line).map_err(|e| format!("{verb}: {e}"))?;
    let addr = match addr {
        Some(a) => a,
        None => serve::read_serve_addr(&root).ok_or_else(|| {
            format!(
                "no daemon found: pass --addr, or start `asura serve` \
                 (looked for {})",
                root.join(serve::ADDR_FILE).display()
            )
        })?,
    };
    let mut stream =
        std::net::TcpStream::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .write_all(format!("{line}\n").as_bytes())
        .and_then(|()| stream.shutdown(std::net::Shutdown::Write))
        .map_err(|e| format!("send: {e}"))?;
    let mut failed = false;
    for reply in BufReader::new(stream).lines() {
        let reply = reply.map_err(|e| format!("read: {e}"))?;
        failed |= reply.contains("\"ok\":false");
        println!("{reply}");
    }
    if failed {
        Err("request failed (see response above)".into())
    } else {
        Ok(())
    }
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    // Subcommand forms first; everything else is the classic flag CLI.
    match argv.first().map(|s| s.as_str()) {
        Some("scenarios") => return cmd_scenarios(&argv[1..]),
        Some("serve") => return cmd_serve(&argv[1..]),
        Some("train-surrogate") => return cmd_train_surrogate(&argv[1..]),
        Some(verb @ ("submit" | "status" | "list" | "watch" | "cancel" | "shutdown")) => {
            return cmd_client(verb, &argv[1..])
        }
        _ => {}
    }
    let args = parse_args(&argv).map_err(|e| {
        if e.is_empty() {
            String::new()
        } else {
            format!("usage: {e}")
        }
    })?;

    if args.list {
        println!("registered scenarios:");
        for s in scenarios::SCENARIOS {
            println!(
                "  {:<18} {:>4} default steps   {}",
                s.name, s.default_steps, s.description
            );
        }
        return Ok(());
    }

    if args.supervised {
        return run_supervised(&args);
    }

    // A malformed fault plan is a usage error (exit 2, never retried) so a
    // typo'd ASURA_FAULTS can't silently run fault-free.
    let mut injector = FaultInjector::from_env().map_err(|e| format!("usage: {e}"))?;

    if let Some((grid, n_pool)) = args.dist {
        return run_dist(&args, grid, n_pool, &mut injector);
    }

    // Resolve the run: a fresh scenario build, or a snapshot restore.
    let (mut sim, run_name, default_steps) = match (&args.resume, &args.scenario) {
        (Some(path), scenario) => {
            let (snap, resolved) = load_sim_resume(path, args.keep)?;
            let name = scenario.clone().unwrap_or_else(|| "resumed".to_string());
            println!(
                "resumed from {} (step {}, t = {:.4} Myr, {} particles, {} regions in flight)",
                resolved.display(),
                snap.step_count,
                snap.time,
                snap.particles.len(),
                snap.pending.len()
            );
            // A model embedded in the snapshot is authoritative — it is
            // what the bitwise resume contract demands. Only a model-less
            // snapshot accepts `--predictor` (the supervisor forwards the
            // flag to resumed attempts, so it must not conflict here).
            let sim = match (&snap.model, &args.predictor) {
                (None, Some(spec @ PredictorSpec::UNet(_))) => {
                    let kind = spec.resolve(args.seed)?;
                    let mut sim = Simulation::restore_with_predictor(
                        &snap,
                        kind.build(snap.config.region_side),
                    );
                    sim.model = kind.model_state();
                    sim
                }
                _ => Simulation::restore(&snap),
            };
            // When the scenario is named alongside --resume, honour its
            // registered default step count; otherwise fall back to 10.
            let default_steps = scenarios::find(&name).map_or(10, |s| s.default_steps);
            (sim, name, default_steps)
        }
        (None, Some(name)) => {
            let scenario = scenarios::find(name).ok_or_else(|| {
                format!(
                    "unknown scenario `{name}` (available: {})",
                    scenarios::SCENARIOS
                        .iter()
                        .map(|s| s.name)
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            })?;
            let (cfg, particles) = scenario.build(args.seed);
            println!(
                "scenario {} ({} particles): {}",
                scenario.name,
                particles.len(),
                scenario.description
            );
            let sim = match &args.predictor {
                None | Some(PredictorSpec::Sedov) => Simulation::new(cfg, particles, args.seed),
                Some(spec) => {
                    let kind = spec.resolve(args.seed)?;
                    let mut sim = Simulation::with_predictor(
                        cfg,
                        particles,
                        args.seed,
                        kind.build(cfg.region_side),
                    );
                    // Embed the weights so every checkpoint carries the
                    // model and `--resume` rebuilds it without the file.
                    sim.model = kind.model_state();
                    sim
                }
            };
            (sim, scenario.name.to_string(), scenario.default_steps)
        }
        (None, None) => {
            return Err("usage: either --scenario <name> or --resume <snapshot> is required".into())
        }
    };

    // Flag overrides on top of the scenario/snapshot config.
    if let Some(s) = args.scheme {
        sim.config.scheme = s;
    }
    if let Some(t) = args.timestep {
        sim.config.timestep = t;
    }
    if let Some(k) = args.snapshot_every {
        sim.config.snapshot_every = k;
    }
    let steps = args.steps.unwrap_or(default_steps);
    let map_half = scenarios::find(&run_name).map_or(100.0, |s| s.map_half);

    let dir = args
        .run_dir
        .clone()
        .unwrap_or_else(|| args.out_dir.join(&run_name));
    std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let store = CkptStore::new(&dir, args.keep);

    println!(
        "integrating {steps} steps (dt = {} Myr, scheme {:?}, timestep {:?}, snapshot every {})",
        sim.config.dt_global, sim.config.scheme, sim.config.timestep, sim.config.snapshot_every
    );

    let mut series = TimeSeries::new(run_name.clone());
    let mut t_prev = sim.time;
    let diag_every = args.diag_every.unwrap_or(1);
    let mut heartbeat = args.heartbeat.as_ref().map(Heartbeat::new);
    let mut hb_io: Option<std::io::Error> = None;
    let diag_path = dir.join("diagnostics.json");
    // Under supervision (--heartbeat set) the series is also rewritten
    // atomically after every sample, so WATCHers of the serve daemon see
    // rows as they land instead of at run end. In-loop write errors are
    // tolerated (the final write below still reports them).
    let live_diag = args.heartbeat.is_some();
    // The crash-safe run loop: heartbeat + diagnostics after every step,
    // then (fault enforcement and) the cadence commit through the atomic
    // rotated store — see `Simulation::run_with_store`.
    let mut written = sim
        .run_with_store(steps, &store, args.snapshot_format, &mut injector, |s| {
            if let Some(hb) = heartbeat.as_mut() {
                if hb_io.is_none() {
                    if let Err(e) = hb.beat(s.step_count) {
                        hb_io = Some(e);
                    }
                }
            }
            if diag_every > 0 && s.step_count.is_multiple_of(diag_every) {
                series.record(TimeSample::measure(s, t_prev, map_half));
                t_prev = s.time;
                if live_diag {
                    let _ = atomic_write(&diag_path, series.to_json().as_bytes());
                }
            }
        })
        .map_err(|e| format!("writing checkpoint under {}: {e}", dir.display()))?;
    if let Some(e) = hb_io {
        return Err(format!("writing heartbeat: {e}"));
    }

    // Always leave a final checkpoint (unless the cadence already
    // committed the last step) + the diagnostics series.
    let cadence_hit = steps > 0
        && sim.config.snapshot_every > 0
        && sim.step_count.is_multiple_of(sim.config.snapshot_every);
    if !cadence_hit {
        written.push(
            store
                .commit_sim(&sim.snapshot(), args.snapshot_format, &mut injector)
                .map_err(|e| format!("writing final checkpoint: {e}"))?,
        );
    }
    atomic_write(&diag_path, series.to_json().as_bytes())
        .map_err(|e| format!("write {}: {e}", diag_path.display()))?;

    println!(
        "done: t = {:.4} Myr after {} total steps | {} SNe, {} regions applied, {} in flight, {} stars formed",
        sim.time,
        sim.step_count,
        sim.stats.sn_events,
        sim.stats.regions_applied,
        sim.pending_regions(),
        sim.stats.stars_formed,
    );
    for p in &written {
        println!("[checkpoint] {}", p.display());
    }
    println!("[manifest] {}", store.manifest_path().display());
    println!(
        "[diagnostics] {} ({} samples)",
        diag_path.display(),
        series.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) if e.is_empty() || e.starts_with("usage:") => {
            if !e.is_empty() {
                eprintln!("{e}\n");
            }
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
        // "permanent:" marks failures retrying can never fix (e.g. a
        // corrupt weights file): exit 2 without the usage text, which the
        // supervisor's permanent_exit_codes list refuses to retry.
        Err(e) => match e.strip_prefix("permanent:") {
            Some(msg) => {
                eprintln!("error:{msg}");
                ExitCode::from(2)
            }
            None => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
    }
}
