//! `asura` — the scenario-runner CLI.
//!
//! One operational entry point over the registered scenarios
//! (see [`asura::scenarios`]): pick a workload by name, override the
//! scheme/timestep mode/step count, checkpoint at a cadence, resume from a
//! snapshot, and collect a diagnostics time series — all under `results/`.
//!
//! ```sh
//! asura --list
//! asura --scenario quickstart --steps 5 --snapshot-every 2
//! asura --scenario quickstart --resume results/quickstart/checkpoint.bin --steps 5
//! asura --scenario supernova_remnant --snapshot-format json
//! asura --scenario spiked_dt --scheme conventional --timestep block:8
//! asura --scenario quickstart --dist 2x1x1+1 --steps 6 --snapshot-every 3
//! asura --scenario quickstart --dist 2x1x1+1 --resume results/quickstart/dist_checkpoint.bin
//! asura --scenario spiked_dt --dist 2x2x1+1 --timestep block:8 --snapshot-every 2
//! ```
//!
//! `--dist NXxNYxNZ+P` routes the scenario through the distributed
//! (`mpisim`) driver — `NX*NY*NZ` main ranks plus `P` pool ranks — writing
//! `dist_checkpoint.{bin,json}` per `--snapshot-format` (resumable with
//! `--dist --resume`, either encoding) and `dist_report.json` instead of
//! the shared-memory outputs. `--timestep block[:<max_level>]` runs the
//! conventional hierarchy's substep walk across the ranks so its
//! per-substep synchronization cost is measured (paper Figs. 6/7).
//!
//! Exit codes: 0 success, 1 runtime failure (unreadable snapshot, I/O),
//! 2 usage error.

use asura::scenarios;
use asura_core::diagnostics::{TimeSample, TimeSeries};
use asura_core::dist::{
    run_distributed, run_distributed_resume, DistConfig, DistSnapshot, PredictorKind,
};
use asura_core::snapshot::SimSnapshot;
use asura_core::{Scheme, Simulation, TimestepMode};
use fdps::exchange::Routing;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
asura — ASURA-FDPS-ML scenario runner

USAGE:
    asura --list
    asura --scenario <name> [OPTIONS]
    asura --resume <snapshot> [--scenario <name>] [OPTIONS]

OPTIONS:
    --list                     list registered scenarios and exit
    --scenario <name>          scenario to run (also names the results/ subdirectory)
    --resume <path>            continue from a snapshot file (binary or JSON)
    --steps <n>                steps to integrate (default: the scenario's default)
    --scheme <s>               surrogate | conventional
    --timestep <t>             global | block | block:<max_level>
    --snapshot-every <k>       checkpoint cadence in steps (0 = off)
    --snapshot-format <f>      bin | json (default bin)
    --seed <s>                 scenario realization / RNG seed (default 42)
    --diag-every <k>           diagnostics sampling cadence (default 1)
    --out-dir <dir>            output root (default results)
    --dist <NXxNYxNZ+P>        run through the distributed (mpisim) driver:
                               NX*NY*NZ main ranks + P pool ranks
    --help                     this text
";

struct Args {
    list: bool,
    scenario: Option<String>,
    resume: Option<PathBuf>,
    steps: Option<usize>,
    scheme: Option<Scheme>,
    timestep: Option<TimestepMode>,
    snapshot_every: Option<u64>,
    snapshot_format: SnapFormat,
    seed: u64,
    /// Diagnostics sampling cadence; `None` means the default of every
    /// step (explicitly passing the flag with `--dist` is rejected).
    diag_every: Option<u64>,
    out_dir: PathBuf,
    /// Main-rank grid + pool rank count of `--dist`.
    dist: Option<((usize, usize, usize), usize)>,
}

/// Parse `--dist`'s `NXxNYxNZ+P` spec.
fn parse_dist_spec(spec: &str) -> Result<((usize, usize, usize), usize), String> {
    let bad = || format!("--dist expects NXxNYxNZ+P (e.g. 2x1x1+1), got `{spec}`");
    let (grid, pool) = spec.split_once('+').ok_or_else(bad)?;
    let dims: Vec<usize> = grid
        .split('x')
        .map(|d| d.parse::<usize>().map_err(|_| bad()))
        .collect::<Result<_, _>>()?;
    let [nx, ny, nz] = dims[..] else {
        return Err(bad());
    };
    let n_pool = pool.parse::<usize>().map_err(|_| bad())?;
    if nx * ny * nz == 0 {
        return Err(format!("--dist needs at least one main rank, got `{spec}`"));
    }
    if n_pool == 0 {
        return Err(format!(
            "--dist needs at least one pool rank (the surrogate scheme ships SN regions \
             to the pool), got `{spec}`"
        ));
    }
    Ok(((nx, ny, nz), n_pool))
}

#[derive(Clone, Copy, PartialEq)]
enum SnapFormat {
    Bin,
    Json,
}

impl SnapFormat {
    fn ext(self) -> &'static str {
        match self {
            SnapFormat::Bin => "bin",
            SnapFormat::Json => "json",
        }
    }
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        list: false,
        scenario: None,
        resume: None,
        steps: None,
        scheme: None,
        timestep: None,
        snapshot_every: None,
        snapshot_format: SnapFormat::Bin,
        seed: 42,
        diag_every: None,
        out_dir: PathBuf::from("results"),
        dist: None,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--list" => args.list = true,
            "--scenario" => args.scenario = Some(value("--scenario")?.clone()),
            "--resume" => args.resume = Some(PathBuf::from(value("--resume")?)),
            "--steps" => {
                args.steps = Some(
                    value("--steps")?
                        .parse()
                        .map_err(|e| format!("--steps: {e}"))?,
                )
            }
            "--scheme" => {
                args.scheme = Some(match value("--scheme")?.as_str() {
                    "surrogate" => Scheme::Surrogate,
                    "conventional" => Scheme::Conventional,
                    other => return Err(format!("unknown scheme `{other}`")),
                })
            }
            "--timestep" => {
                let v = value("--timestep")?.clone();
                args.timestep = Some(match v.as_str() {
                    "global" => TimestepMode::Global,
                    "block" => TimestepMode::Block { max_level: 8 },
                    other => match other.strip_prefix("block:") {
                        Some(l) => TimestepMode::Block {
                            max_level: l.parse().map_err(|e| format!("--timestep block: {e}"))?,
                        },
                        None => return Err(format!("unknown timestep mode `{other}`")),
                    },
                })
            }
            "--snapshot-every" => {
                args.snapshot_every = Some(
                    value("--snapshot-every")?
                        .parse()
                        .map_err(|e| format!("--snapshot-every: {e}"))?,
                )
            }
            "--snapshot-format" => {
                args.snapshot_format = match value("--snapshot-format")?.as_str() {
                    "bin" => SnapFormat::Bin,
                    "json" => SnapFormat::Json,
                    other => return Err(format!("unknown snapshot format `{other}`")),
                }
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--diag-every" => {
                args.diag_every = Some(
                    value("--diag-every")?
                        .parse()
                        .map_err(|e| format!("--diag-every: {e}"))?,
                )
            }
            "--out-dir" => args.out_dir = PathBuf::from(value("--out-dir")?),
            "--dist" => args.dist = Some(parse_dist_spec(value("--dist")?)?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn write_snapshot(
    sim: &Simulation,
    dir: &Path,
    format: SnapFormat,
    written: &mut Vec<PathBuf>,
) -> std::io::Result<()> {
    let snap = sim.snapshot();
    let stamped = dir.join(format!("snap_step{:06}.{}", sim.step_count, format.ext()));
    let checkpoint = dir.join(format!("checkpoint.{}", format.ext()));
    match format {
        SnapFormat::Bin => {
            let bytes = snap.to_bytes();
            std::fs::write(&stamped, &bytes)?;
            std::fs::write(&checkpoint, &bytes)?;
        }
        SnapFormat::Json => {
            let text = snap.to_json();
            std::fs::write(&stamped, &text)?;
            std::fs::write(&checkpoint, &text)?;
        }
    }
    written.push(stamped);
    Ok(())
}

/// The `--dist` path: route the scenario through the mpisim driver, with
/// snapshot→resume support mirroring the shared-memory CLI.
fn run_dist(args: &Args, grid: (usize, usize, usize), n_pool: usize) -> Result<(), String> {
    let name = args
        .scenario
        .as_deref()
        .ok_or("--dist requires --scenario (it provides the config and initial condition)")?;
    let scenario = scenarios::find(name).ok_or_else(|| format!("unknown scenario `{name}`"))?;
    // The distributed driver handles SNe through the pool ranks (the
    // surrogate data path) in either timestep mode; reject flags it would
    // silently ignore rather than hand back a run the user didn't ask for.
    if args.scheme == Some(Scheme::Conventional) {
        return Err(
            "--dist handles SNe through the pool ranks (the surrogate data path); \
                    --scheme conventional is the shared-memory driver's comparison baseline"
                .into(),
        );
    }
    if args.diag_every.is_some() {
        return Err(
            "--dist writes dist_report.json instead of a diagnostics time series; \
                    --diag-every applies to the shared-memory driver"
                .into(),
        );
    }
    // Resume replaces the particle state wholesale, so only realize the
    // initial condition on a fresh run; the config alone is cheap.
    let (mut sim_cfg, particles) = match args.resume {
        Some(_) => (scenario.config(), Vec::new()),
        None => scenario.build(args.seed),
    };
    sim_cfg.scheme = Scheme::Surrogate;
    // `--timestep block[:<max_level>]` runs the conventional hierarchy's
    // substep walk across the mpisim ranks (dist.rs module docs:
    // "Distributed block timesteps").
    if let Some(t) = args.timestep {
        sim_cfg.timestep = t;
    }
    let steps = args.steps.unwrap_or(scenario.default_steps);
    let cfg = DistConfig {
        grid,
        n_pool,
        routing: Routing::Flat,
        sim: sim_cfg,
        steps,
        predictor: PredictorKind::SedovOverlay,
        snapshot_every: args.snapshot_every.unwrap_or(0),
    };
    let dir = args.out_dir.join(scenario.name);
    std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;

    let report = match &args.resume {
        Some(path) => {
            let snap = DistSnapshot::load(path).map_err(|e| format!("--resume {path:?}: {e}"))?;
            if snap.rank_particles.len() != cfg.n_main() {
                return Err(format!(
                    "--resume {}: checkpoint was written by {} main ranks but --dist \
                     asks for {} ({}x{}x{}) — resume requires the same main-rank grid",
                    path.display(),
                    snap.rank_particles.len(),
                    cfg.n_main(),
                    grid.0,
                    grid.1,
                    grid.2,
                ));
            }
            println!(
                "dist resume from {} (step {}, t = {:.4} Myr, {} ranks, {} regions in flight): \
                 {} more steps on {}x{}x{}+{} ranks",
                path.display(),
                snap.step,
                snap.time,
                snap.rank_particles.len(),
                snap.pending.len(),
                steps,
                grid.0,
                grid.1,
                grid.2,
                n_pool,
            );
            // Unlike shared-memory snapshots, a DistSnapshot carries no
            // SimConfig — the named scenario supplies it, so resuming
            // under a different scenario's name would integrate the
            // checkpointed particles with the wrong physics.
            println!(
                "note: resuming with scenario `{}`'s config — it must be the scenario \
                 that wrote the checkpoint",
                scenario.name
            );
            run_distributed_resume(&cfg, &snap)
        }
        None => {
            println!(
                "dist scenario {} ({} particles) on {}x{}x{}+{} ranks for {} steps",
                scenario.name,
                particles.len(),
                grid.0,
                grid.1,
                grid.2,
                n_pool,
                steps,
            );
            run_distributed(&cfg, &particles)
        }
    };

    // Last gathered checkpoint becomes the resumable artifact, in the
    // requested encoding (binary by default, JSON for inspectability).
    if let Some(snap) = report.snapshots.last() {
        let path = dir.join(format!("dist_checkpoint.{}", args.snapshot_format.ext()));
        match args.snapshot_format {
            SnapFormat::Bin => std::fs::write(&path, snap.to_bytes()),
            SnapFormat::Json => std::fs::write(&path, snap.to_json()),
        }
        .map_err(|e| format!("write {}: {e}", path.display()))?;
        println!("[snapshot] {} (step {})", path.display(), snap.step);
    }
    // Counter summary (hand-rendered JSON, like the bench artifacts).
    let total_bytes: u64 = report.bytes_sent.iter().sum();
    let substeps_max = report
        .rank_stats
        .iter()
        .map(|s| s.substeps)
        .max()
        .unwrap_or(0);
    let active_updates: u64 = report.rank_stats.iter().map(|s| s.active_updates).sum();
    let tree_refreshes: u64 = report.rank_stats.iter().map(|s| s.tree_refreshes).sum();
    let tree_rebuilds: u64 = report.rank_stats.iter().map(|s| s.tree_rebuilds).sum();
    let phases: String = report
        .phases
        .entries
        .iter()
        .map(|e| {
            format!(
                "    {{\"name\": \"{}\", \"total_s\": {:.6}}}",
                e.name, e.total_s
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"steps\": {},\n  \"sn_events\": {},\n  \"regions_applied\": {},\n  \
         \"gravity_interactions\": {},\n  \"hydro_interactions\": {},\n  \
         \"final_particles\": {},\n  \"bytes_sent_total\": {},\n  \"snapshots\": {},\n  \
         \"substeps\": {},\n  \"active_updates\": {},\n  \"tree_refreshes\": {},\n  \
         \"tree_rebuilds\": {},\n  \"phases\": [\n{}\n  ]\n}}\n",
        report.steps,
        report.sn_events,
        report.regions_applied,
        report.gravity_interactions,
        report.hydro_interactions,
        report.final_particles,
        total_bytes,
        report.snapshots.len(),
        substeps_max,
        active_updates,
        tree_refreshes,
        tree_rebuilds,
        phases,
    );
    let report_path = dir.join("dist_report.json");
    std::fs::write(&report_path, json)
        .map_err(|e| format!("write {}: {e}", report_path.display()))?;
    println!(
        "dist done: {} steps ({} substeps) | {} SNe, {} regions applied, {} particles, \
         {} snapshot(s)",
        report.steps,
        substeps_max,
        report.sn_events,
        report.regions_applied,
        report.final_particles,
        report.snapshots.len(),
    );
    println!("[report] {}", report_path.display());
    Ok(())
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&argv).map_err(|e| {
        if e.is_empty() {
            String::new()
        } else {
            format!("usage: {e}")
        }
    })?;

    if args.list {
        println!("registered scenarios:");
        for s in scenarios::SCENARIOS {
            println!(
                "  {:<18} {:>4} default steps   {}",
                s.name, s.default_steps, s.description
            );
        }
        return Ok(());
    }

    if let Some((grid, n_pool)) = args.dist {
        return run_dist(&args, grid, n_pool);
    }

    // Resolve the run: a fresh scenario build, or a snapshot restore.
    let (mut sim, run_name, default_steps) = match (&args.resume, &args.scenario) {
        (Some(path), scenario) => {
            let snap = SimSnapshot::load(path).map_err(|e| format!("--resume {path:?}: {e}"))?;
            let name = scenario.clone().unwrap_or_else(|| "resumed".to_string());
            println!(
                "resumed from {} (step {}, t = {:.4} Myr, {} particles, {} regions in flight)",
                path.display(),
                snap.step_count,
                snap.time,
                snap.particles.len(),
                snap.pending.len()
            );
            let sim = Simulation::restore(&snap);
            // When the scenario is named alongside --resume, honour its
            // registered default step count; otherwise fall back to 10.
            let default_steps = scenarios::find(&name).map_or(10, |s| s.default_steps);
            (sim, name, default_steps)
        }
        (None, Some(name)) => {
            let scenario = scenarios::find(name).ok_or_else(|| {
                format!(
                    "unknown scenario `{name}` (available: {})",
                    scenarios::SCENARIOS
                        .iter()
                        .map(|s| s.name)
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            })?;
            let (cfg, particles) = scenario.build(args.seed);
            println!(
                "scenario {} ({} particles): {}",
                scenario.name,
                particles.len(),
                scenario.description
            );
            (
                Simulation::new(cfg, particles, args.seed),
                scenario.name.to_string(),
                scenario.default_steps,
            )
        }
        (None, None) => {
            return Err("usage: either --scenario <name> or --resume <snapshot> is required".into())
        }
    };

    // Flag overrides on top of the scenario/snapshot config.
    if let Some(s) = args.scheme {
        sim.config.scheme = s;
    }
    if let Some(t) = args.timestep {
        sim.config.timestep = t;
    }
    if let Some(k) = args.snapshot_every {
        sim.config.snapshot_every = k;
    }
    let steps = args.steps.unwrap_or(default_steps);
    let map_half = scenarios::find(&run_name).map_or(100.0, |s| s.map_half);

    let dir = args.out_dir.join(&run_name);
    std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;

    println!(
        "integrating {steps} steps (dt = {} Myr, scheme {:?}, timestep {:?}, snapshot every {})",
        sim.config.dt_global, sim.config.scheme, sim.config.timestep, sim.config.snapshot_every
    );

    let mut series = TimeSeries::new(run_name.clone());
    let mut written: Vec<PathBuf> = Vec::new();
    let mut t_prev = sim.time;
    let mut snap_io: Option<std::io::Error> = None;
    for _ in 0..steps {
        // One step at a time through the core cadence API so the periodic
        // checkpoint logic under test here is the library's, not the CLI's.
        let dir_ref = &dir;
        let written_ref = &mut written;
        let err_ref = &mut snap_io;
        sim.run_with_snapshots(1, |s| {
            if err_ref.is_none() {
                if let Err(e) = write_snapshot(s, dir_ref, args.snapshot_format, written_ref) {
                    *err_ref = Some(e);
                }
            }
        });
        if let Some(e) = snap_io.take() {
            return Err(format!("writing snapshot under {}: {e}", dir.display()));
        }
        let diag_every = args.diag_every.unwrap_or(1);
        if diag_every > 0 && sim.step_count % diag_every == 0 {
            series.record(TimeSample::measure(&sim, t_prev, map_half));
            t_prev = sim.time;
        }
    }

    // Always leave a final checkpoint + the diagnostics series (unless the
    // cadence already produced it on the last step).
    let final_stamped = dir.join(format!(
        "snap_step{:06}.{}",
        sim.step_count,
        args.snapshot_format.ext()
    ));
    if written.last() != Some(&final_stamped) {
        write_snapshot(&sim, &dir, args.snapshot_format, &mut written)
            .map_err(|e| format!("writing final snapshot: {e}"))?;
    }
    let diag_path = dir.join("diagnostics.json");
    std::fs::write(&diag_path, series.to_json())
        .map_err(|e| format!("write {}: {e}", diag_path.display()))?;

    println!(
        "done: t = {:.4} Myr after {} total steps | {} SNe, {} regions applied, {} in flight, {} stars formed",
        sim.time,
        sim.step_count,
        sim.stats.sn_events,
        sim.stats.regions_applied,
        sim.pending_regions(),
        sim.stats.stars_formed,
    );
    for p in &written {
        println!("[snapshot] {}", p.display());
    }
    println!(
        "[snapshot] {}",
        dir.join(format!("checkpoint.{}", args.snapshot_format.ext()))
            .display()
    );
    println!(
        "[diagnostics] {} ({} samples)",
        diag_path.display(),
        series.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) if e.is_empty() || e.starts_with("usage:") => {
            if !e.is_empty() {
                eprintln!("{e}\n");
            }
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
