//! The scenario registry behind the `asura` scenario-runner CLI.
//!
//! Each [`Scenario`] is a named, reproducible initial condition plus the
//! [`SimConfig`] the paper (or the corresponding example) runs it with —
//! promoted from `examples/` so operational tooling (the CLI, the CI smoke
//! job, snapshot/restart drills) addresses workloads by name instead of by
//! copy-pasted setup code. The examples themselves now build from this
//! registry too.

use astro::lifetime::stellar_lifetime_myr;
use asura_core::{Particle, Scheme, SimConfig, TimestepMode};
use fdps::Vec3;
use galactic_ic::GalaxyModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A named, reproducible workload: `build(seed)` returns the driver config
/// and the initial particle set; `config()` returns the config alone
/// (resume paths need it without paying for an IC realization they will
/// immediately discard).
pub struct Scenario {
    pub name: &'static str,
    pub description: &'static str,
    /// Steps the CLI runs when `--steps` is not given.
    pub default_steps: usize,
    /// Half-extent of diagnostic surface-density maps \[pc\].
    pub map_half: f64,
    config: fn() -> SimConfig,
    build_ic: fn(u64) -> Vec<Particle>,
}

impl Scenario {
    /// The driver config alone (no particle realization).
    pub fn config(&self) -> SimConfig {
        (self.config)()
    }

    /// Realize the scenario: `(config, initial particles)`.
    pub fn build(&self, seed: u64) -> (SimConfig, Vec<Particle>) {
        ((self.config)(), (self.build_ic)(seed))
    }
}

/// Every registered scenario, addressable by name.
pub const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "quickstart",
        description: "scaled-down Milky Way patch, surrogate SN scheme, fixed global step",
        default_steps: 20,
        map_half: 4000.0,
        config: config_quickstart,
        build_ic: ic_quickstart,
    },
    Scenario {
        name: "dwarf_galaxy",
        description: "star-forming dwarf with cooling, star formation and timed SNe",
        default_steps: 32,
        map_half: 3000.0,
        config: config_dwarf_galaxy,
        build_ic: ic_dwarf_galaxy,
    },
    Scenario {
        name: "supernova_remnant",
        description: "one SN inside a uniform gas lattice, surrogate prediction in flight",
        default_steps: 12,
        map_half: 12.0,
        config: config_supernova_remnant,
        build_ic: ic_supernova_remnant,
    },
    Scenario {
        name: "sn_shell_conventional",
        description:
            "the supernova_remnant IC integrated conventionally (adaptive global CFL step)",
        default_steps: 12,
        map_half: 12.0,
        config: config_sn_shell_conventional,
        build_ic: ic_supernova_remnant,
    },
    Scenario {
        name: "spiked_dt",
        description: "SN-hot particle in a cold blob: block-timestep stress (conventional scheme)",
        default_steps: 6,
        map_half: 6.0,
        config: config_spiked_dt,
        build_ic: ic_spiked_dt,
    },
];

/// Look up a scenario by name.
pub fn find(name: &str) -> Option<&'static Scenario> {
    SCENARIOS.iter().find(|s| s.name == name)
}

/// The registry as plain data, in the form the serve daemon advertises
/// over its `SCENARIOS` request and validates `SUBMIT` against.
pub fn catalog() -> Vec<asura_core::serve::ScenarioMeta> {
    SCENARIOS
        .iter()
        .map(|s| asura_core::serve::ScenarioMeta {
            name: s.name.to_string(),
            description: s.description.to_string(),
            default_steps: s.default_steps as u64,
        })
        .collect()
}

/// Pack a galactic-ic realization into driver particles. Stars are born
/// long ago (`birth_time` = -500 Myr) so the pre-existing population never
/// explodes; gas starts at `u0` with a smoothing length scaled to the gas
/// disk.
fn pack_galaxy(
    model: &GalaxyModel,
    real: &galactic_ic::GalaxyRealization,
    u0: f64,
    h_frac: f64,
) -> Vec<Particle> {
    let mut particles = Vec::new();
    let mut id = 0u64;
    for (p, v) in real.dm.pos.iter().zip(&real.dm.vel) {
        particles.push(Particle::dm(
            id,
            Vec3::new(p[0], p[1], p[2]),
            Vec3::new(v[0], v[1], v[2]),
            real.m_dm_particle,
        ));
        id += 1;
    }
    for (p, v) in real.stars.pos.iter().zip(&real.stars.vel) {
        particles.push(Particle::star(
            id,
            Vec3::new(p[0], p[1], p[2]),
            Vec3::new(v[0], v[1], v[2]),
            real.m_star_particle,
            -500.0,
        ));
        id += 1;
    }
    for (p, v) in real.gas.pos.iter().zip(&real.gas.vel) {
        particles.push(Particle::gas(
            id,
            Vec3::new(p[0], p[1], p[2]),
            Vec3::new(v[0], v[1], v[2]),
            real.m_gas_particle,
            u0,
            model.gas_disk.r_scale * h_frac,
        ));
        id += 1;
    }
    particles
}

fn config_quickstart() -> SimConfig {
    SimConfig {
        scheme: Scheme::Surrogate,
        dt_global: 0.1,
        pool_latency_steps: 5,
        eps: 20.0,
        n_ngb: 24,
        ..Default::default()
    }
}

fn ic_quickstart(seed: u64) -> Vec<Particle> {
    let model = GalaxyModel::mw_mini();
    let real = model.realize(1500, 1000, 1500, seed);
    pack_galaxy(&model, &real, 8.0, 0.05)
}

fn config_dwarf_galaxy() -> SimConfig {
    SimConfig {
        scheme: Scheme::Surrogate,
        dt_global: 0.25,
        pool_latency_steps: 4,
        eps: 15.0,
        n_ngb: 24,
        cooling: true,
        star_formation: true,
        // Coarse-resolution thresholds: 80,000 M_sun gas particles never
        // reach the star-by-star 100 cm^-3 criterion.
        sf_rho_min: 0.005,
        sf_t_max: 2.0e4,
        sf_efficiency: 0.05,
        ..Default::default()
    }
}

fn ic_dwarf_galaxy(seed: u64) -> Vec<Particle> {
    let model = GalaxyModel::mw_mini();
    let real = model.realize(2000, 1000, 3000, seed);
    let mut particles = pack_galaxy(&model, &real, 2.0, 0.04);
    // Young massive stars scattered through the disk, timed to explode
    // during the run — the surrogate path in action.
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(66));
    let id0 = particles.len() as u64;
    for k in 0..12 {
        let m = rng.gen_range(9.0..20.0);
        let life = stellar_lifetime_myr(m);
        let t_explode = rng.gen_range(1.0..7.5);
        let r = rng.gen_range(100.0..1500.0);
        let th = rng.gen_range(0.0..std::f64::consts::TAU);
        particles.push(Particle::star(
            id0 + k,
            Vec3::new(r * th.cos(), r * th.sin(), 0.0),
            Vec3::ZERO,
            m,
            t_explode - life,
        ));
    }
    particles
}

/// Global step shared by the SN-remnant config and its star's birth time.
const SN_REMNANT_DT: f64 = 2.0e-3;

fn config_supernova_remnant() -> SimConfig {
    SimConfig {
        scheme: Scheme::Surrogate,
        dt_global: SN_REMNANT_DT,
        pool_latency_steps: 5,
        cooling: false,
        star_formation: false,
        eps: 1.0,
        ..Default::default()
    }
}

fn ic_supernova_remnant(seed: u64) -> Vec<Particle> {
    // A uniform gas lattice with one massive star at the centre that
    // explodes on the second step; with latency 5 the prediction is in
    // flight until step 7 — snapshots before that capture a non-empty
    // pending pool queue.
    let mut rng = StdRng::seed_from_u64(seed);
    let n_side = 10usize;
    let spacing = 1.0;
    let mut particles = Vec::new();
    let mut id = 0u64;
    for i in 0..n_side {
        for j in 0..n_side {
            for k in 0..n_side {
                let jitter = Vec3::new(
                    rng.gen_range(-0.05..0.05),
                    rng.gen_range(-0.05..0.05),
                    rng.gen_range(-0.05..0.05),
                );
                particles.push(Particle::gas(
                    id,
                    Vec3::new(
                        (i as f64 - n_side as f64 / 2.0) * spacing,
                        (j as f64 - n_side as f64 / 2.0) * spacing,
                        (k as f64 - n_side as f64 / 2.0) * spacing,
                    ) + jitter,
                    Vec3::ZERO,
                    1.0,
                    1.0,
                    spacing * 1.3,
                ));
                id += 1;
            }
        }
    }
    let m_star = 12.0;
    let birth = SN_REMNANT_DT * 1.5 - stellar_lifetime_myr(m_star);
    particles.push(Particle::star(id, Vec3::ZERO, Vec3::ZERO, m_star, birth));
    particles
}

/// The conventional twin of [`config_supernova_remnant`]: identical IC and
/// base step, but the SN shell is integrated directly, so the global CFL
/// step collapses after the explosion. This is the ground-truth generator
/// for `asura train-surrogate` and the baseline side of
/// `cargo bench --bench surrogate_loop` — the pool latency is kept at the
/// surrogate twin's value so both configs agree on the prediction horizon.
fn config_sn_shell_conventional() -> SimConfig {
    SimConfig {
        scheme: Scheme::Conventional,
        dt_global: SN_REMNANT_DT,
        pool_latency_steps: 5,
        cooling: false,
        star_formation: false,
        eps: 1.0,
        ..Default::default()
    }
}

fn config_spiked_dt() -> SimConfig {
    SimConfig {
        scheme: Scheme::Conventional,
        timestep: TimestepMode::Block { max_level: 10 },
        dt_global: 2.0e-3,
        cooling: false,
        star_formation: false,
        eps: 1.0,
        ..Default::default()
    }
}

fn ic_spiked_dt(_seed: u64) -> Vec<Particle> {
    // The block-timestep stress scenario of `cargo bench --bench blockstep`:
    // a uniform blob whose centre particle carries SN-level internal energy,
    // collapsing its CFL step ~2^5-2^6 below the base step.
    let n_side = 8usize;
    let mut particles = Vec::new();
    let mut id = 0u64;
    for i in 0..n_side {
        for j in 0..n_side {
            for k in 0..n_side {
                particles.push(Particle::gas(
                    id,
                    Vec3::new(
                        i as f64 - n_side as f64 / 2.0,
                        j as f64 - n_side as f64 / 2.0,
                        k as f64 - n_side as f64 / 2.0,
                    ),
                    Vec3::ZERO,
                    1.0,
                    1.0,
                    1.3,
                ));
                id += 1;
            }
        }
    }
    let center = (n_side / 2) * n_side * n_side + (n_side / 2) * n_side + n_side / 2;
    particles[center].u = 1.0e8;
    particles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scenario_builds_and_is_findable() {
        for s in SCENARIOS {
            assert_eq!(find(s.name).map(|f| f.name), Some(s.name));
            let (cfg, particles) = s.build(1);
            assert!(!particles.is_empty(), "{}: empty IC", s.name);
            assert!(cfg.dt_global > 0.0);
            assert!(s.default_steps > 0);
            // IDs unique.
            let mut ids: Vec<u64> = particles.iter().map(|p| p.id).collect();
            let n = ids.len();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), n, "{}: duplicate ids", s.name);
        }
        assert!(find("no_such_scenario").is_none());
    }

    #[test]
    fn config_alone_matches_the_full_build() {
        for s in SCENARIOS {
            let (cfg, _) = s.build(1);
            assert_eq!(s.config(), cfg, "{}: config() must equal build().0", s.name);
        }
    }

    #[test]
    fn scenario_builds_are_deterministic_in_the_seed() {
        for s in SCENARIOS {
            let (_, a) = s.build(3);
            let (_, b) = s.build(3);
            assert_eq!(a, b, "{}: same seed must give the same IC", s.name);
        }
    }

    #[test]
    fn spiked_dt_uses_block_timesteps_and_supernova_remnant_has_a_sn() {
        let (cfg, _) = find("spiked_dt").unwrap().build(1);
        assert_eq!(cfg.scheme, Scheme::Conventional);
        assert!(matches!(cfg.timestep, TimestepMode::Block { .. }));
        let (cfg, particles) = find("supernova_remnant").unwrap().build(1);
        assert_eq!(cfg.scheme, Scheme::Surrogate);
        assert_eq!(particles.iter().filter(|p| p.is_star()).count(), 1);
    }
}
