//! Quickstart: a star-by-star disk-galaxy patch integrated with the
//! surrogate SN scheme in under a minute.
//!
//! The initial condition and configuration come from the `quickstart`
//! entry of the scenario registry (`asura::scenarios`) — the same workload
//! the `asura` CLI runs by name:
//!
//! ```sh
//! cargo run --release --example quickstart
//! cargo run --release --bin asura -- --scenario quickstart
//! ```

use asura::scenarios;
use asura_core::Simulation;

fn main() {
    // 1. Realize the registered scenario (Model MW-mini, paper §4.2).
    let scenario = scenarios::find("quickstart").expect("registered scenario");
    let (cfg, particles) = scenario.build(42);
    println!("scenario {}: {}", scenario.name, scenario.description);
    println!("{} particles realized", particles.len());

    // 2. Integrate with the paper's scheme: fixed global timestep, SN
    //    regions bypassed by the (here: analytic) surrogate.
    let mut sim = Simulation::new(cfg, particles, 7);
    let e0 = sim.total_energy();
    for chunk in 0..4 {
        sim.run(5);
        println!(
            "t = {:5.2} Myr | {} particles | {} SNe | {} stars formed | {} regions in flight",
            sim.time,
            sim.particles.len(),
            sim.stats.sn_events,
            sim.stats.stars_formed,
            sim.pending_regions()
        );
        let _ = chunk;
    }
    let e1 = sim.total_energy();
    println!(
        "energy audit: E0 = {e0:.4e}, E1 = {e1:.4e} (drift {:+.2}%)",
        100.0 * (e1 - e0) / e0.abs()
    );
    println!("done — the timestep never left {} Myr.", cfg.dt_global);
}
