//! Quickstart: a star-by-star disk-galaxy patch integrated with the
//! surrogate SN scheme in under a minute.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use asura_core::{Particle, Scheme, SimConfig, Simulation};
use fdps::Vec3;
use galactic_ic::GalaxyModel;

fn main() {
    // 1. Realize a scaled-down Milky Way (Model MW-mini, paper §4.2).
    let model = GalaxyModel::mw_mini();
    let real = model.realize(1500, 1000, 1500, 42);
    println!(
        "Model {}: {:.1e} M_sun DM + {:.1e} M_sun stars + {:.1e} M_sun gas",
        model.name, model.m_dm, model.m_star, model.m_gas
    );
    println!(
        "particle masses: DM {:.0} / star {:.0} / gas {:.0} M_sun",
        real.m_dm_particle, real.m_star_particle, real.m_gas_particle
    );

    // 2. Pack the realization into simulation particles.
    let mut particles = Vec::new();
    let mut id = 0u64;
    let push =
        |kind: u8, p: &[f64; 3], v: &[f64; 3], m: f64, id: &mut u64, out: &mut Vec<Particle>| {
            let pos = Vec3::new(p[0], p[1], p[2]);
            let vel = Vec3::new(v[0], v[1], v[2]);
            out.push(match kind {
                0 => Particle::dm(*id, pos, vel, m),
                1 => Particle::star(*id, pos, vel, m, -500.0),
                _ => Particle::gas(*id, pos, vel, m, 8.0, model.gas_disk.r_scale * 0.05),
            });
            *id += 1;
        };
    for (p, v) in real.dm.pos.iter().zip(&real.dm.vel) {
        push(0, p, v, real.m_dm_particle, &mut id, &mut particles);
    }
    for (p, v) in real.stars.pos.iter().zip(&real.stars.vel) {
        push(1, p, v, real.m_star_particle, &mut id, &mut particles);
    }
    for (p, v) in real.gas.pos.iter().zip(&real.gas.vel) {
        push(2, p, v, real.m_gas_particle, &mut id, &mut particles);
    }

    // 3. Integrate with the paper's scheme: fixed global timestep, SN
    //    regions bypassed by the (here: analytic) surrogate.
    let cfg = SimConfig {
        scheme: Scheme::Surrogate,
        dt_global: 0.1,
        pool_latency_steps: 5,
        eps: 20.0,
        n_ngb: 24,
        ..Default::default()
    };
    let mut sim = Simulation::new(cfg, particles, 7);
    let e0 = sim.total_energy();
    for chunk in 0..4 {
        sim.run(5);
        println!(
            "t = {:5.2} Myr | {} particles | {} SNe | {} stars formed | {} regions in flight",
            sim.time,
            sim.particles.len(),
            sim.stats.sn_events,
            sim.stats.stars_formed,
            sim.pending_regions()
        );
        let _ = chunk;
    }
    let e1 = sim.total_energy();
    println!(
        "energy audit: E0 = {e0:.4e}, E1 = {e1:.4e} (drift {:+.2}%)",
        100.0 * (e1 - e0) / e0.abs()
    );
    println!("done — the timestep never left {} Myr.", cfg.dt_global);
}
