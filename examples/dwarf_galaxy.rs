//! A star-forming dwarf galaxy (Model MW-mini — the 1/100-mass analogue the
//! paper lists in §4.2) with the full physics loop: gravity, SPH, cooling,
//! star formation, and surrogate-handled supernovae.
//!
//! The workload is the `dwarf_galaxy` entry of the scenario registry
//! (`asura::scenarios`), shared with the `asura` CLI:
//!
//! ```sh
//! cargo run --release --example dwarf_galaxy
//! cargo run --release --bin asura -- --scenario dwarf_galaxy
//! ```

use asura::scenarios;
use asura_core::diagnostics::{star_formation_rate, surface_density, Projection};
use asura_core::Simulation;

fn main() {
    let scenario = scenarios::find("dwarf_galaxy").expect("registered scenario");
    let (cfg, particles) = scenario.build(42);
    let mut sim = Simulation::new(cfg, particles, 23);

    println!(
        "dwarf galaxy ({}), {} particles",
        scenario.description,
        sim.particles.len()
    );
    println!(
        "{:>8} {:>10} {:>8} {:>8} {:>12} {:>10}",
        "t [Myr]", "N_star", "SNe", "applied", "SFR [M/Myr]", "gas frac"
    );
    let mut t_last = 0.0;
    for _ in 0..8 {
        sim.run(4);
        let n_star = sim.particles.iter().filter(|p| p.is_star()).count();
        let n_gas = sim.particles.iter().filter(|p| p.is_gas()).count();
        let sfr = star_formation_rate(&sim.particles, t_last, sim.time);
        println!(
            "{:>8.2} {:>10} {:>8} {:>8} {:>12.3} {:>10.3}",
            sim.time,
            n_star,
            sim.stats.sn_events,
            sim.stats.regions_applied,
            sfr,
            n_gas as f64 / sim.particles.len() as f64,
        );
        t_last = sim.time;
    }

    // Chemical enrichment from the SNe (Figure 1's element cycle).
    let total_metals: f64 = sim
        .particles
        .iter()
        .filter(|p| p.is_gas())
        .map(|p| p.metals)
        .sum();
    let z_max = sim
        .particles
        .iter()
        .filter(|p| p.is_gas())
        .map(|p| p.metallicity())
        .fold(0.0f64, f64::max);
    println!(
        "\nchemical enrichment: {total_metals:.3} M_sun of metals in the gas (peak Z = {z_max:.2e})"
    );

    // Gas morphology at the end (the Fig. 5-style map).
    let map = surface_density(&sim.particles, Projection::FaceOn, scenario.map_half, 32);
    let peak = map.data.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "\nface-on gas map: total {:.2e} M_sun, peak column {:.2e} M_sun/pc^2",
        map.total_mass(),
        peak
    );
}
