//! A star-forming dwarf galaxy (Model MW-mini — the 1/100-mass analogue the
//! paper lists in §4.2) with the full physics loop: gravity, SPH, cooling,
//! star formation, and surrogate-handled supernovae.
//!
//! ```sh
//! cargo run --release --example dwarf_galaxy
//! ```

use asura_core::diagnostics::{star_formation_rate, surface_density, Projection};
use asura_core::{Particle, Scheme, SimConfig, Simulation};
use fdps::Vec3;
use galactic_ic::GalaxyModel;

fn main() {
    let model = GalaxyModel::mw_mini();
    let real = model.realize(2000, 1000, 3000, 11);

    let mut particles = Vec::new();
    let mut id = 0u64;
    for (p, v) in real.dm.pos.iter().zip(&real.dm.vel) {
        particles.push(Particle::dm(
            id,
            Vec3::new(p[0], p[1], p[2]),
            Vec3::new(v[0], v[1], v[2]),
            real.m_dm_particle,
        ));
        id += 1;
    }
    for (p, v) in real.stars.pos.iter().zip(&real.stars.vel) {
        particles.push(Particle::star(
            id,
            Vec3::new(p[0], p[1], p[2]),
            Vec3::new(v[0], v[1], v[2]),
            real.m_star_particle,
            -500.0,
        ));
        id += 1;
    }
    for (p, v) in real.gas.pos.iter().zip(&real.gas.vel) {
        particles.push(Particle::gas(
            id,
            Vec3::new(p[0], p[1], p[2]),
            Vec3::new(v[0], v[1], v[2]),
            real.m_gas_particle,
            2.0, // cooler start: closer to star-forming conditions
            model.gas_disk.r_scale * 0.04,
        ));
        id += 1;
    }

    // Young massive stars scattered through the disk, timed to explode
    // during the run — the surrogate path in action.
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(77);
    for k in 0..12 {
        let m = rng.gen_range(9.0..20.0);
        let life = astro::lifetime::stellar_lifetime_myr(m);
        let t_explode = rng.gen_range(1.0..7.5);
        let r = rng.gen_range(100.0..1500.0);
        let th = rng.gen_range(0.0..std::f64::consts::TAU);
        particles.push(Particle::star(
            id + k,
            Vec3::new(r * th.cos(), r * th.sin(), 0.0),
            Vec3::ZERO,
            m,
            t_explode - life,
        ));
    }

    let cfg = SimConfig {
        scheme: Scheme::Surrogate,
        dt_global: 0.25,
        pool_latency_steps: 4,
        eps: 15.0,
        n_ngb: 24,
        cooling: true,
        star_formation: true,
        // Coarse-resolution thresholds: 80,000 M_sun gas particles never
        // reach the star-by-star 100 cm^-3 criterion.
        sf_rho_min: 0.005,
        sf_t_max: 2.0e4,
        sf_efficiency: 0.05,
        ..Default::default()
    };
    let mut sim = Simulation::new(cfg, particles, 23);

    println!(
        "dwarf galaxy ({}), {} particles",
        model.name,
        sim.particles.len()
    );
    println!(
        "{:>8} {:>10} {:>8} {:>8} {:>12} {:>10}",
        "t [Myr]", "N_star", "SNe", "applied", "SFR [M/Myr]", "gas frac"
    );
    let mut t_last = 0.0;
    for _ in 0..8 {
        sim.run(4);
        let n_star = sim.particles.iter().filter(|p| p.is_star()).count();
        let n_gas = sim.particles.iter().filter(|p| p.is_gas()).count();
        let sfr = star_formation_rate(&sim.particles, t_last, sim.time);
        println!(
            "{:>8.2} {:>10} {:>8} {:>8} {:>12.3} {:>10.3}",
            sim.time,
            n_star,
            sim.stats.sn_events,
            sim.stats.regions_applied,
            sfr,
            n_gas as f64 / sim.particles.len() as f64,
        );
        t_last = sim.time;
    }

    // Chemical enrichment from the SNe (Figure 1's element cycle).
    let total_metals: f64 = sim
        .particles
        .iter()
        .filter(|p| p.is_gas())
        .map(|p| p.metals)
        .sum();
    let z_max = sim
        .particles
        .iter()
        .filter(|p| p.is_gas())
        .map(|p| p.metallicity())
        .fold(0.0f64, f64::max);
    println!(
        "\nchemical enrichment: {total_metals:.3} M_sun of metals in the gas (peak Z = {z_max:.2e})"
    );

    // Gas morphology at the end (the Fig. 5-style map).
    let map = surface_density(
        &sim.particles,
        Projection::FaceOn,
        model.gas_disk.r_max * 0.5,
        32,
    );
    let peak = map.data.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "\nface-on gas map: total {:.2e} M_sun, peak column {:.2e} M_sun/pc^2",
        map.total_mass(),
        peak
    );
}
