//! Scaling lab: run the distributed main/pool driver on real (in-process)
//! ranks, print the paper-style phase breakdown, then extrapolate to the
//! paper's machines with the performance model.
//!
//! ```sh
//! cargo run --release --example scaling_lab
//! ```

use asura_core::dist::{run_distributed, DistConfig, PredictorKind};
use asura_core::{Particle, Scheme, SimConfig};
use fdps::exchange::Routing;
use fdps::Vec3;
use perfmodel::scaling::node_sweep;
use perfmodel::{weak_scaling, Machine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // --- Executed: 4 main ranks + 2 pool ranks on this machine -----------
    let mut rng = StdRng::seed_from_u64(2);
    let n = 2000;
    let mut ic: Vec<Particle> = (0..n)
        .map(|i| {
            Particle::gas(
                i as u64,
                Vec3::new(
                    rng.gen_range(-60.0..60.0),
                    rng.gen_range(-60.0..60.0),
                    rng.gen_range(-12.0..12.0),
                ),
                Vec3::ZERO,
                1.0,
                1.0,
                6.0,
            )
        })
        .collect();
    // One star about to explode, to exercise the pool round trip.
    let life = astro::lifetime::stellar_lifetime_myr(10.0);
    ic.push(Particle::star(
        n as u64,
        Vec3::ZERO,
        Vec3::ZERO,
        10.0,
        2.0e-3 * 1.5 - life,
    ));

    let cfg = DistConfig {
        grid: (2, 2, 1),
        n_pool: 2,
        routing: Routing::Torus,
        sim: SimConfig {
            scheme: Scheme::Surrogate,
            pool_latency_steps: 3,
            cooling: false,
            star_formation: false,
            n_ngb: 16,
            eps: 2.0,
            ..Default::default()
        },
        steps: 6,
        predictor: PredictorKind::SedovOverlay,
        snapshot_every: 0,
    };
    println!(
        "executing {} steps on {} main + {} pool ranks ({} particles) ...\n",
        cfg.steps,
        cfg.n_main(),
        cfg.n_pool,
        ic.len()
    );
    let report = run_distributed(&cfg, &ic).expect("dist run");
    println!("{}", report.phases.to_table());
    println!(
        "SN events: {} | regions applied: {} | gravity interactions: {:.2e} | comm bytes/rank: {:?}",
        report.sn_events,
        report.regions_applied,
        report.gravity_interactions as f64,
        report.bytes_sent
    );

    // --- Modeled: the paper's Fugaku weak scaling ------------------------
    println!("\nmodeled Fugaku weak scaling (2M particles/node):");
    let curve = weak_scaling(
        Machine::fugaku(),
        2.0e6,
        0.163,
        2048,
        &node_sweep(128, 148_896),
    );
    for (p, t) in curve.totals() {
        let bar_len = (t * 3.0) as usize;
        println!(
            "{p:>8} nodes | {t:6.2} s/step | {}",
            "#".repeat(bar_len.min(70))
        );
    }
}
