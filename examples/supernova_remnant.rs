//! A single supernova remnant, three ways (paper §3.3):
//!
//! 1. the analytic Sedov–Taylor solution,
//! 2. a direct SPH integration with thermal injection (the "conventional"
//!    path whose tiny CFL steps motivate the whole paper),
//! 3. the surrogate pipeline: voxelize → U-Net (trained here, briefly) →
//!    Gibbs-sample particles.
//!
//! ```sh
//! cargo run --release --example supernova_remnant
//! ```

use astro::units::E_SN;
use astro::SedovTaylor;
use asura_core::pool::{PoolPredictor, UNetPredictor};
use fdps::Vec3;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sph::solver::{HydroState, SphSolver};
use sph::GammaLawEos;
use surrogate::training::{make_dataset, TrainingSetup};
use surrogate::{GasParticle, SurrogateConfig, SurrogateModel};

fn main() {
    let rho0 = 1.0; // M_sun / pc^3
    let horizon = 0.05; // Myr

    // --- 1. Analytic reference -------------------------------------------
    let blast = SedovTaylor::new(E_SN, rho0);
    println!("Sedov-Taylor reference (rho0 = {rho0} M_sun/pc^3):");
    for t in [0.01, 0.02, horizon] {
        println!(
            "  t = {t:.3} Myr: R_shock = {:6.2} pc, v_shock = {:7.1} pc/Myr, T_shell ~ {:.2e} K",
            blast.shock_radius(t),
            blast.shock_speed(t),
            blast.temperature(0.95 * blast.shock_radius(t), t, 0.6)
        );
    }

    // --- 2. Direct SPH with thermal injection ----------------------------
    let mut rng = StdRng::seed_from_u64(3);
    let n_side = 12;
    let a = 1.0;
    let mut pos = Vec::new();
    for i in 0..n_side {
        for j in 0..n_side {
            for k in 0..n_side {
                pos.push(Vec3::new(
                    (i as f64 - 5.5) * a + rng.gen_range(-0.05..0.05),
                    (j as f64 - 5.5) * a + rng.gen_range(-0.05..0.05),
                    (k as f64 - 5.5) * a + rng.gen_range(-0.05..0.05),
                ));
            }
        }
    }
    let n = pos.len();
    let center = (0..n)
        .min_by(|&x, &y| pos[x].norm2().total_cmp(&pos[y].norm2()))
        .expect("non-empty lattice");
    let mut state = HydroState::new(
        pos,
        vec![Vec3::ZERO; n],
        vec![rho0 * a * a * a; n],
        vec![0.01; n],
        vec![1.3 * a; n],
    );
    // Thermal bomb at the centre.
    state.u[center] += E_SN / state.mass[center];
    let solver = SphSolver::default();
    let eos = GammaLawEos::default();
    let mut t = 0.0;
    let mut steps = 0u32;
    let wall = std::time::Instant::now();
    while t < 0.002 && steps < 400 {
        solver.density_pass(&mut state, n);
        solver.force_pass(&mut state, n);
        let dt = solver.min_timestep(&state, n).min(1e-4);
        for i in 0..n {
            state.vel[i] += state.acc[i] * dt;
            state.u[i] = (state.u[i] + state.dudt[i] * dt).max(1e-8);
            let v = state.vel[i];
            state.pos[i] += v * dt;
        }
        t += dt;
        steps += 1;
    }
    let rmax_v = (0..n)
        .max_by(|&x, &y| state.vel[x].norm2().total_cmp(&state.vel[y].norm2()))
        .expect("particles");
    println!(
        "\ndirect SPH: integrated {t:.5} Myr in {steps} steps ({:.2} s wall) — mean dt {:.1} yr",
        wall.elapsed().as_secs_f64(),
        t / steps as f64 * 1e6
    );
    println!(
        "  fastest ejecta: {:.0} pc/Myr at r = {:.2} pc; hottest T = {:.2e} K",
        state.vel[rmax_v].norm(),
        state.pos[rmax_v].norm(),
        (0..n)
            .map(|i| eos.temperature_from_u(state.u[i]))
            .fold(0.0f64, f64::max)
    );

    // --- 3. Surrogate pipeline -------------------------------------------
    println!("\ntraining a small U-Net surrogate on synthetic Sedov pairs ...");
    let setup = TrainingSetup {
        grid_n: 16,
        horizon,
        ..Default::default()
    };
    let data = make_dataset(&mut rng, &setup, 4);
    let mut model = SurrogateModel::new(SurrogateConfig {
        grid_n: 16,
        side: 60.0,
        base_features: 4,
        seed: 5,
    });
    let losses = model.train(&data, 10, 1e-2);
    println!(
        "  loss {:.4} -> {:.4}",
        losses[0],
        losses.last().expect("epochs")
    );

    let region: Vec<GasParticle> = (0..2000)
        .map(|i| GasParticle {
            pos: Vec3::new(
                rng.gen_range(-30.0..30.0),
                rng.gen_range(-30.0..30.0),
                rng.gen_range(-30.0..30.0),
            ),
            vel: Vec3::ZERO,
            mass: 1.0,
            temp: 100.0,
            h: 3.0,
            id: i as u64,
        })
        .collect();
    let wall = std::time::Instant::now();
    let predicted = UNetPredictor::new(model, 17).predict(Vec3::ZERO, E_SN, horizon, &region);
    println!(
        "surrogate prediction of the same region: {} particles in {:.2} s (one shot, no CFL)",
        predicted.len(),
        wall.elapsed().as_secs_f64()
    );
    let t_max = predicted.iter().map(|p| p.temp).fold(0.0f64, f64::max);
    let hot = predicted.iter().filter(|p| p.temp > 1e4).count();
    println!(
        "  hottest predicted particle: {t_max:.2e} K ({hot} above 1e4 K); mass conserved to {:.1e}",
        (predicted.iter().map(|p| p.mass).sum::<f64>()
            - region.iter().map(|p| p.mass).sum::<f64>())
        .abs()
    );
    println!(
        "  (a briefly trained net is qualitative; `validate_surrogate` runs the full comparison)"
    );
}
