//! The fleet-overlap benchmark (`cargo bench --bench serve_fleet`).
//!
//! Drives a real `asura serve` daemon through its line protocol twice —
//! the same two quickstart runs with `--max-concurrent 1` (serial) and
//! `--max-concurrent 2` (overlapped) — and reports the wall-clock ratio.
//! The ratio is measured within one bench invocation on one machine, so
//! runner speed cancels: on a single-core box it sits near 1.0 (only the
//! runs' checkpoint I/O overlaps), and rises toward 2.0 with a second
//! core. What the gate actually protects is the *queue machinery*: a
//! daemon that serializes its workers behind a held lock, or re-runs work,
//! drags the ratio (and both wall times) down together.
//!
//! Writes `BENCH_serve.json` at the repo root so subsequent PRs have a
//! trajectory.

use asura_core::serve;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_asura");
const RUNS: usize = 2;
const STEPS: u64 = 6;
const OVERRIDES: &str = "{\"steps\":6,\"snapshot_every\":2}";

fn request_one(addr: &str, line: &str) -> String {
    let mut lines = serve::request(addr, line).expect("daemon reachable");
    assert_eq!(lines.len(), 1, "{line}: expected one response line");
    lines.pop().unwrap()
}

/// Run the two-run fleet at the given concurrency; returns the wall time
/// from first SUBMIT to last completion.
fn fleet_wall(root: &Path, max_concurrent: usize) -> f64 {
    let mut daemon = Command::new(BIN)
        .arg("serve")
        .arg("--root")
        .arg(root)
        .args(["--addr", "127.0.0.1:0"])
        .args(["--max-concurrent", &max_concurrent.to_string()])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .env_remove(asura_core::faults::FAULTS_ENV)
        .env_remove(asura_core::faults::ATTEMPT_ENV)
        .spawn()
        .expect("spawn daemon");
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Some(addr) = serve::read_serve_addr(root) {
            break addr;
        }
        assert!(Instant::now() < deadline, "daemon never wrote serve.json");
        std::thread::sleep(Duration::from_millis(10));
    };

    let start = Instant::now();
    let mut ids = Vec::new();
    for _ in 0..RUNS {
        let reply = request_one(&addr, &format!("SUBMIT quickstart {OVERRIDES}"));
        assert!(reply.contains("\"ok\":true"), "SUBMIT failed: {reply}");
        let id = reply
            .split("\"id\":\"")
            .nth(1)
            .and_then(|r| r.split('"').next())
            .expect("id in SUBMIT reply");
        ids.push(id.to_string());
    }
    let deadline = Instant::now() + Duration::from_secs(300);
    for id in &ids {
        loop {
            let reply = request_one(&addr, &format!("STATUS {id}"));
            if reply.contains("\"state\":\"completed\"") {
                break;
            }
            assert!(
                !reply.contains("\"state\":\"failed\"") && !reply.contains("\"state\":\"gave_up\""),
                "{id} did not complete: {reply}"
            );
            assert!(Instant::now() < deadline, "{id} still running after 300s");
            std::thread::sleep(Duration::from_millis(20));
        }
    }
    let wall = start.elapsed().as_secs_f64();

    let reply = request_one(&addr, "SHUTDOWN");
    assert!(reply.contains("\"ok\":true"), "SHUTDOWN failed: {reply}");
    assert!(daemon.wait().expect("daemon exit").success());
    wall
}

fn main() {
    let scratch = std::env::temp_dir().join(format!("asura-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    let serial = fleet_wall(&scratch.join("serial"), 1);
    let concurrent = fleet_wall(&scratch.join("concurrent"), RUNS);
    let overlap_speedup = serial / concurrent;
    let _ = std::fs::remove_dir_all(&scratch);

    println!(
        "serve_fleet: {RUNS} quickstart runs x {STEPS} steps  \
         serial {serial:.3} s  concurrent {concurrent:.3} s  overlap x{overlap_speedup:.3}"
    );

    let json = format!(
        "{{\n  \"scenario\": \"quickstart\",\n  \"runs\": {RUNS},\n  \"steps_per_run\": {STEPS},\n  \
         \"serial_wall_s\": {serial:.4},\n  \"concurrent_wall_s\": {concurrent:.4},\n  \
         \"overlap_speedup\": {overlap_speedup:.4}\n}}\n"
    );
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("BENCH_serve.json");
    std::fs::write(&path, json).expect("write BENCH_serve.json");
    println!("[artifact] {}", path.display());
}
