//! The closed surrogate-loop benchmark (`cargo bench --bench surrogate_loop`).
//!
//! Runs the paper's headline comparison end to end, in process: train a
//! U-Net on conventional SN-shell runs (the `asura train-surrogate`
//! pipeline), deploy it on the `supernova_remnant` scenario, and integrate
//! the **same physical interval** with the conventional twin
//! (`sn_shell_conventional`), whose global CFL step collapses after the
//! explosion. Two machine-independent metrics gate:
//!
//! - `surrogate_speedup` — conventional wall / surrogate wall for the same
//!   interval, measured within one invocation on one machine so runner
//!   speed cancels. The surrogate side takes a fixed `dt_global` step
//!   count while the conventional side grinds through the post-SN CFL
//!   collapse, so the ratio must stay above 1; a surrogate path that
//!   stops skipping the collapse (or a conventional path that stops
//!   resolving it) drags the ratio toward 1.
//! - `energy_err_ratio` — surrogate relative energy-budget error over the
//!   conventional one. Both runs are bitwise deterministic (fixed seeds,
//!   the kernel-determinism contract), so this ratio is exactly
//!   reproducible; it bounds how much physics fidelity the speedup costs.
//!
//! Absolute wall times (train/surrogate/conventional) are reported for
//! the trajectory but never gate. Writes `BENCH_surrogate.json` at the
//! repo root.

use astro::units::E_SN;
use asura::scenarios;
use asura::surrogate_train::{self, TrainSpec};
use asura_core::pool::UNetPredictor;
use asura_core::sim::total_energy_of;
use asura_core::{Particle, Simulation};
use std::path::PathBuf;
use std::time::Instant;

/// Scenario seed for both deployment runs (not the training seeds).
const SEED: u64 = 42;

/// Surrogate-side step count; must exceed `pool_latency_steps` (5) so the
/// prediction lands and the Gibbs resample actually applies.
const STEPS: usize = 8;

/// Post-SN CFL collapse can take many small steps, but not unboundedly so.
const CONV_STEP_CAP: usize = 200_000;

/// Relative error of the run's energy budget: a single SN injected E_SN,
/// so a perfect integrator ends at `E_start + E_SN` exactly.
fn budget_err(e_start: f64, e_end: f64) -> f64 {
    ((e_end - e_start - E_SN) / (e_start.abs() + E_SN)).abs()
}

fn build(scenario: &str) -> (asura_core::SimConfig, Vec<Particle>) {
    scenarios::find(scenario)
        .unwrap_or_else(|| panic!("scenario {scenario} is registered"))
        .build(SEED)
}

fn main() {
    // Train the deployed model exactly as `asura train-surrogate` would
    // (deterministic in the spec, so the trajectory is stable PR to PR).
    let spec = TrainSpec {
        samples: 2,
        epochs: 120,
        grid_n: 16,
        base_features: 4,
        lr: 1e-2,
        seed: 7,
    };
    let t0 = Instant::now();
    let outcome = surrogate_train::train(&spec);
    let train_wall = t0.elapsed().as_secs_f64();
    let weights = outcome.model.to_json();

    // Surrogate side: fixed dt_global, the SN shipped to the trained net.
    let (cfg, particles) = build("supernova_remnant");
    let eps = cfg.eps;
    let predictor =
        UNetPredictor::from_weights(spec.seed, &weights, cfg.region_side).expect("trained weights");
    let e_start = total_energy_of(&particles, eps);
    let t0 = Instant::now();
    let mut sim = Simulation::with_predictor(cfg, particles, SEED, Box::new(predictor));
    for _ in 0..STEPS {
        sim.step();
    }
    let surrogate_wall = t0.elapsed().as_secs_f64();
    assert!(sim.stats.sn_events > 0, "the SN must go off");
    assert!(
        sim.stats.regions_applied > 0,
        "the trained prediction must come back and be applied within {STEPS} steps"
    );
    let t_end = sim.time;
    let err_surr = budget_err(e_start, total_energy_of(&sim.particles, eps));

    // Conventional side: same IC and interval, direct shell integration
    // under the adaptive global CFL step.
    let (cfg, particles) = build(surrogate_train::TRAIN_SCENARIO);
    let e_start = total_energy_of(&particles, eps);
    let t0 = Instant::now();
    let mut sim = Simulation::new(cfg, particles, SEED);
    let mut conventional_steps = 0usize;
    while sim.time < t_end && conventional_steps < CONV_STEP_CAP {
        sim.step();
        conventional_steps += 1;
    }
    let conventional_wall = t0.elapsed().as_secs_f64();
    assert!(
        sim.time >= t_end,
        "conventional twin stalled before t = {t_end} ({conventional_steps} steps)"
    );
    let err_conv = budget_err(e_start, total_energy_of(&sim.particles, eps));

    let surrogate_speedup = conventional_wall / surrogate_wall;
    // Floor keeps a (near-)perfect conventional budget from exploding the
    // ratio; both errors are deterministic so the ratio is too.
    let energy_err_ratio = err_surr / err_conv.max(1e-12);

    println!(
        "surrogate_loop: t_end {t_end:.4} Myr  surrogate {STEPS} steps {surrogate_wall:.3} s  \
         conventional {conventional_steps} steps {conventional_wall:.3} s  \
         speedup x{surrogate_speedup:.2}"
    );
    println!(
        "surrogate_loop: energy budget err  surrogate {err_surr:.3e}  conventional {err_conv:.3e}  \
         ratio {energy_err_ratio:.3}  (train {train_wall:.2} s, final loss {:.4})",
        outcome.losses.last().copied().unwrap_or(f64::NAN),
    );
    assert!(
        surrogate_speedup > 1.0,
        "surrogate must beat the conventional twin on wall clock"
    );

    let json = format!(
        "{{\n  \"scenario\": \"supernova_remnant\",\n  \"surrogate_steps\": {STEPS},\n  \
         \"t_end_myr\": {t_end:.6},\n  \"conventional_steps\": {conventional_steps},\n  \
         \"train_wall_s\": {train_wall:.4},\n  \"surrogate_wall_s\": {surrogate_wall:.4},\n  \
         \"conventional_wall_s\": {conventional_wall:.4},\n  \
         \"surrogate_energy_err\": {err_surr:.6e},\n  \
         \"conventional_energy_err\": {err_conv:.6e},\n  \
         \"surrogate_speedup\": {surrogate_speedup:.4},\n  \
         \"energy_err_ratio\": {energy_err_ratio:.6}\n}}\n"
    );
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("BENCH_surrogate.json");
    std::fs::write(&path, json).expect("write BENCH_surrogate.json");
    println!("[artifact] {}", path.display());
}
