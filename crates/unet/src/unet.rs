//! The 3-D U-Net: two-level encoder/decoder with skip connections
//! (paper §3.3, Figure 3: "a series of three-dimensional convolutional
//! layers" with the classic contracting/expanding U shape).

use crate::conv::{Conv3d, Param};
use crate::json::parse_json;
use crate::layers::{
    maxpool2, maxpool2_backward, relu, relu_backward, upsample2, upsample2_backward,
};
use crate::tensor::Tensor;

/// Network hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct UNetConfig {
    /// Input channels (8 in the paper: log density, log temperature, and
    /// two signed-log cubes per velocity component).
    pub in_channels: usize,
    /// Output channels (5: density, temperature, three velocities).
    pub out_channels: usize,
    /// Feature width of the first level (doubles per level).
    pub base_features: usize,
}

/// A two-level 3-D U-Net with full training support.
#[derive(Debug, Clone)]
pub struct UNet3d {
    pub config: UNetConfig,
    enc1a: Conv3d,
    enc1b: Conv3d,
    enc2a: Conv3d,
    enc2b: Conv3d,
    bot_a: Conv3d,
    bot_b: Conv3d,
    dec2a: Conv3d,
    dec2b: Conv3d,
    dec1a: Conv3d,
    dec1b: Conv3d,
    head: Conv3d,
}

/// Forward intermediates kept for backprop.
pub struct Cache {
    x: Tensor,
    z1a: Tensor,
    r1a: Tensor,
    z1b: Tensor,
    skip1: Tensor,
    arg1: Vec<u32>,
    p1: Tensor,
    z2a: Tensor,
    r2a: Tensor,
    z2b: Tensor,
    skip2: Tensor,
    arg2: Vec<u32>,
    p2: Tensor,
    zba: Tensor,
    rba: Tensor,
    zbb: Tensor,
    rbb: Tensor,
    cat2: Tensor,
    zd2a: Tensor,
    rd2a: Tensor,
    zd2b: Tensor,
    rd2b: Tensor,
    cat1: Tensor,
    zd1a: Tensor,
    rd1a: Tensor,
    zd1b: Tensor,
    rd1b: Tensor,
}

impl UNet3d {
    /// Build with deterministic Kaiming initialization.
    pub fn new(cfg: &UNetConfig, seed: u64) -> Self {
        let f = cfg.base_features;
        assert!(f >= 1 && cfg.in_channels >= 1 && cfg.out_channels >= 1);
        let s = |k: u64| seed.wrapping_mul(0x9E37).wrapping_add(k);
        UNet3d {
            config: *cfg,
            enc1a: Conv3d::new(cfg.in_channels, f, 3, s(1)),
            enc1b: Conv3d::new(f, f, 3, s(2)),
            enc2a: Conv3d::new(f, 2 * f, 3, s(3)),
            enc2b: Conv3d::new(2 * f, 2 * f, 3, s(4)),
            bot_a: Conv3d::new(2 * f, 4 * f, 3, s(5)),
            bot_b: Conv3d::new(4 * f, 4 * f, 3, s(6)),
            dec2a: Conv3d::new(4 * f + 2 * f, 2 * f, 3, s(7)),
            dec2b: Conv3d::new(2 * f, 2 * f, 3, s(8)),
            dec1a: Conv3d::new(2 * f + f, f, 3, s(9)),
            dec1b: Conv3d::new(f, f, 3, s(10)),
            head: Conv3d::new(f, cfg.out_channels, 1, s(11)),
        }
    }

    /// Inference: input spatial dims must be divisible by 4 (two poolings).
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let (y, _) = self.forward_cached(x);
        y
    }

    /// Forward keeping intermediates for backprop.
    pub fn forward_cached(&self, x: &Tensor) -> (Tensor, Cache) {
        assert!(
            x.d.is_multiple_of(4) && x.h.is_multiple_of(4) && x.w.is_multiple_of(4),
            "U-Net input dims must be divisible by 4, got {:?}",
            x.shape()
        );
        let z1a = self.enc1a.forward(x);
        let r1a = relu(&z1a);
        let z1b = self.enc1b.forward(&r1a);
        let skip1 = relu(&z1b);
        let (p1, arg1) = maxpool2(&skip1);

        let z2a = self.enc2a.forward(&p1);
        let r2a = relu(&z2a);
        let z2b = self.enc2b.forward(&r2a);
        let skip2 = relu(&z2b);
        let (p2, arg2) = maxpool2(&skip2);

        let zba = self.bot_a.forward(&p2);
        let rba = relu(&zba);
        let zbb = self.bot_b.forward(&rba);
        let rbb = relu(&zbb);

        let up2 = upsample2(&rbb);
        let cat2 = up2.concat_channels(&skip2);
        let zd2a = self.dec2a.forward(&cat2);
        let rd2a = relu(&zd2a);
        let zd2b = self.dec2b.forward(&rd2a);
        let rd2b = relu(&zd2b);

        let up1 = upsample2(&rd2b);
        let cat1 = up1.concat_channels(&skip1);
        let zd1a = self.dec1a.forward(&cat1);
        let rd1a = relu(&zd1a);
        let zd1b = self.dec1b.forward(&rd1a);
        let rd1b = relu(&zd1b);

        let y = self.head.forward(&rd1b);
        let cache = Cache {
            x: x.clone(),
            z1a,
            r1a,
            z1b,
            skip1,
            arg1,
            p1,
            z2a,
            r2a,
            z2b,
            skip2,
            arg2,
            p2,
            zba,
            rba,
            zbb,
            rbb,
            cat2,
            zd2a,
            rd2a,
            zd2b,
            rd2b,
            cat1,
            zd1a,
            rd1a,
            zd1b,
            rd1b,
        };
        (y, cache)
    }

    /// Backprop from the output gradient, accumulating parameter gradients.
    pub fn backward(&mut self, cache: &Cache, gy: &Tensor) {
        let g = self.head.backward(&cache.rd1b, gy);
        let g = relu_backward(&cache.zd1b, &g);
        let g = self.dec1b.backward(&cache.rd1a, &g);
        let g = relu_backward(&cache.zd1a, &g);
        let g = self.dec1a.backward(&cache.cat1, &g);
        let (g_up1, g_skip1_cat) = g.split_channels(cache.rd2b.c);
        let g = upsample2_backward(&g_up1);

        let g = relu_backward(&cache.zd2b, &g);
        let g = self.dec2b.backward(&cache.rd2a, &g);
        let g = relu_backward(&cache.zd2a, &g);
        let g = self.dec2a.backward(&cache.cat2, &g);
        let (g_up2, g_skip2_cat) = g.split_channels(cache.rbb.c);
        let g = upsample2_backward(&g_up2);

        let g = relu_backward(&cache.zbb, &g);
        let g = self.bot_b.backward(&cache.rba, &g);
        let g = relu_backward(&cache.zba, &g);
        let g = self.bot_a.backward(&cache.p2, &g);

        // Pool-2 backward plus the skip-2 gradient joining here.
        let mut g = maxpool2_backward(cache.skip2.shape(), &cache.arg2, &g);
        for (a, b) in g.data.iter_mut().zip(&g_skip2_cat.data) {
            *a += b;
        }
        let g = relu_backward(&cache.z2b, &g);
        let g = self.enc2b.backward(&cache.r2a, &g);
        let g = relu_backward(&cache.z2a, &g);
        let g = self.enc2a.backward(&cache.p1, &g);

        let mut g = maxpool2_backward(cache.skip1.shape(), &cache.arg1, &g);
        for (a, b) in g.data.iter_mut().zip(&g_skip1_cat.data) {
            *a += b;
        }
        let g = relu_backward(&cache.z1b, &g);
        let g = self.enc1b.backward(&cache.r1a, &g);
        let g = relu_backward(&cache.z1a, &g);
        let _gx = self.enc1a.backward(&cache.x, &g);
    }

    /// All trainable parameters, in a fixed order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out = Vec::with_capacity(22);
        for layer in [
            &mut self.enc1a,
            &mut self.enc1b,
            &mut self.enc2a,
            &mut self.enc2b,
            &mut self.bot_a,
            &mut self.bot_b,
            &mut self.dec2a,
            &mut self.dec2b,
            &mut self.dec1a,
            &mut self.dec1b,
            &mut self.head,
        ] {
            let [w, b] = layer.params_mut();
            out.push(w);
            out.push(b);
        }
        out
    }

    /// Reset all gradients.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Total parameter count.
    pub fn n_params(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.value.len()).sum()
    }

    /// Names and references of the layers, in serialization order.
    fn layers(&self) -> [(&'static str, &Conv3d); 11] {
        [
            ("enc1a", &self.enc1a),
            ("enc1b", &self.enc1b),
            ("enc2a", &self.enc2a),
            ("enc2b", &self.enc2b),
            ("bot_a", &self.bot_a),
            ("bot_b", &self.bot_b),
            ("dec2a", &self.dec2a),
            ("dec2b", &self.dec2b),
            ("dec1a", &self.dec1a),
            ("dec1b", &self.dec1b),
            ("head", &self.head),
        ]
    }

    /// Serialize to a JSON string (our ONNX-interchange stand-in).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"config\":{{\"in_channels\":{},\"out_channels\":{},\"base_features\":{}}}",
            self.config.in_channels, self.config.out_channels, self.config.base_features
        ));
        for (name, layer) in self.layers() {
            out.push_str(&format!(",\"{name}\":"));
            layer.write_json(&mut out);
        }
        out.push('}');
        out
    }

    /// Load from [`UNet3d::to_json`] output.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let v = parse_json(s).map_err(|e| format!("U-Net deserialize: {e}"))?;
        Self::from_json_value(&v)
    }

    /// Load from an already-parsed [`UNet3d::to_json`] document — the entry
    /// point for containers that embed a network inside a larger JSON value
    /// (e.g. the surrogate's self-describing weights file).
    pub fn from_json_value(v: &crate::json::Json) -> Result<Self, String> {
        let cfg = v.get("config")?;
        let config = UNetConfig {
            in_channels: cfg.get("in_channels")?.as_usize()?,
            out_channels: cfg.get("out_channels")?.as_usize()?,
            base_features: cfg.get("base_features")?.as_usize()?,
        };
        let layer = |name: &str| -> Result<Conv3d, String> {
            Conv3d::from_json_value(v.get(name)?)
                .map_err(|e| format!("U-Net deserialize `{name}`: {e}"))
        };
        Ok(UNet3d {
            config,
            enc1a: layer("enc1a")?,
            enc1b: layer("enc1b")?,
            enc2a: layer("enc2a")?,
            enc2b: layer("enc2b")?,
            bot_a: layer("bot_a")?,
            bot_b: layer("bot_b")?,
            dec2a: layer("dec2a")?,
            dec2b: layer("dec2b")?,
            dec1a: layer("dec1a")?,
            dec1b: layer("dec1b")?,
            head: layer("head")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn tiny() -> UNet3d {
        UNet3d::new(
            &UNetConfig {
                in_channels: 2,
                out_channels: 3,
                base_features: 2,
            },
            1,
        )
    }

    #[test]
    fn output_shape_matches_input_space_and_out_channels() {
        let net = tiny();
        let x = Tensor::zeros(2, 8, 8, 8);
        let y = net.forward(&x);
        assert_eq!(y.shape(), (3, 8, 8, 8));
        let x = Tensor::zeros(2, 4, 8, 12);
        assert_eq!(net.forward(&x).shape(), (3, 4, 8, 12));
    }

    #[test]
    #[should_panic(expected = "divisible by 4")]
    fn non_divisible_input_rejected() {
        let net = tiny();
        let _ = net.forward(&Tensor::zeros(2, 6, 8, 8));
    }

    #[test]
    fn forward_is_deterministic_given_seed() {
        let a = tiny();
        let b = tiny();
        let mut rng = StdRng::seed_from_u64(5);
        let x = Tensor::from_vec(
            2,
            4,
            4,
            4,
            (0..128).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        );
        assert_eq!(a.forward(&x).data, b.forward(&x).data);
    }

    #[test]
    fn whole_net_gradient_check() {
        let mut net = UNet3d::new(
            &UNetConfig {
                in_channels: 1,
                out_channels: 1,
                base_features: 1,
            },
            2,
        );
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::from_vec(
            1,
            4,
            4,
            4,
            (0..64).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        );
        // Loss = 0.5 sum y^2 => gy = y.
        let (y, cache) = net.forward_cached(&x);
        net.zero_grad();
        net.backward(&cache, &y);

        let loss = |n: &UNet3d| -> f64 {
            let y = n.forward(&x);
            y.data.iter().map(|&v| 0.5 * (v as f64) * (v as f64)).sum()
        };
        // Spot-check a few parameters in different layers.
        let analytic: Vec<(usize, usize, f64)> = {
            let ps = net.params_mut();
            let picks = [(0usize, 3usize), (4, 1), (12, 0), (20, 0), (21, 0)];
            picks
                .iter()
                .map(|&(pi, wi)| (pi, wi, ps[pi].grad[wi.min(ps[pi].grad.len() - 1)] as f64))
                .collect()
        };
        for (pi, wi, an) in analytic {
            let eps = 1e-3f32;
            let wi = {
                let ps = net.params_mut();
                wi.min(ps[pi].value.len() - 1)
            };
            {
                let mut ps = net.params_mut();
                ps[pi].value[wi] += eps;
            }
            let lp = loss(&net);
            {
                let mut ps = net.params_mut();
                ps[pi].value[wi] -= 2.0 * eps;
            }
            let lm = loss(&net);
            {
                let mut ps = net.params_mut();
                ps[pi].value[wi] += eps;
            }
            let fd = (lp - lm) / (2.0 * eps as f64);
            assert!(
                (fd - an).abs() < 3e-2 * an.abs().max(0.5),
                "param {pi}[{wi}]: fd {fd} vs analytic {an}"
            );
        }
    }

    #[test]
    fn serialization_roundtrips_weights() {
        let net = tiny();
        let json = net.to_json();
        let back = UNet3d::from_json(&json).unwrap();
        let x = Tensor::zeros(2, 4, 4, 4);
        assert_eq!(net.forward(&x).data, back.forward(&x).data);
    }

    #[test]
    fn param_count_scales_with_width() {
        let mut small = UNet3d::new(
            &UNetConfig {
                in_channels: 1,
                out_channels: 1,
                base_features: 2,
            },
            0,
        );
        let mut big = UNet3d::new(
            &UNetConfig {
                in_channels: 1,
                out_channels: 1,
                base_features: 4,
            },
            0,
        );
        let (s, b) = (small.n_params(), big.n_params());
        assert!(b > 3 * s, "doubling width should ~4x params: {s} -> {b}");
    }
}
