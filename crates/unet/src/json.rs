//! Minimal JSON serialization for model interchange.
//!
//! The build environment has no registry access, so instead of
//! `serde`/`serde_json` the model types serialize through this small
//! hand-rolled layer: a JSON value tree, a recursive-descent parser, and
//! explicit to/from impls for the handful of network types. Floats are
//! written with Rust's shortest-roundtrip formatting, so weights survive a
//! save/load cycle bit-exactly.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up an object field.
    pub fn get(&self, key: &str) -> Result<&Json, String> {
        match self {
            Json::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field `{key}`")),
            _ => Err(format!("expected object while reading `{key}`")),
        }
    }

    pub fn as_usize(&self) -> Result<usize, String> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as usize),
            other => Err(format!("expected non-negative integer, got {other:?}")),
        }
    }

    pub fn as_f32_vec(&self) -> Result<Vec<f32>, String> {
        match self {
            Json::Arr(items) => items
                .iter()
                .map(|v| match v {
                    Json::Num(n) => Ok(*n as f32),
                    // Non-finite values serialize as `null` (JSON has no
                    // NaN/Inf); load them back as NaN so a diverged model
                    // remains inspectable instead of unloadable.
                    Json::Null => Ok(f32::NAN),
                    other => Err(format!("expected number in array, got {other:?}")),
                })
                .collect(),
            other => Err(format!("expected array, got {other:?}")),
        }
    }
}

/// Render a JSON value to a compact string.
pub fn write_json(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => {
            if n.is_finite() {
                // `{:?}` is the shortest representation that round-trips.
                let _ = write!(out, "{n:?}");
            } else {
                out.push_str("null");
            }
        }
        Json::Str(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json(item, out);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json(&Json::Str(k.clone()), out);
                out.push(':');
                write_json(val, out);
            }
            out.push('}');
        }
    }
}

/// Serialize a vector of `f32` without going through `Json` allocation per
/// element (weight arrays dominate the payload).
pub fn write_f32_array(values: &[f32], out: &mut String) {
    out.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if v.is_finite() {
            let _ = write!(out, "{v:?}");
        } else {
            out.push_str("null");
        }
    }
    out.push(']');
}

/// Parse a complete JSON document.
pub fn parse_json(s: &str) -> Result<Json, String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be string, got {other:?}")),
                };
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut out = String::new();
            loop {
                match b.get(*pos) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(out));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match b.get(*pos) {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'u') => {
                                let hex = s_slice(b, *pos + 1, *pos + 5)?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|e| format!("bad \\u escape: {e}"))?;
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| "bad \\u codepoint".to_string())?,
                                );
                                *pos += 4;
                            }
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        *pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 character.
                        let rest = std::str::from_utf8(&b[*pos..])
                            .map_err(|e| format!("invalid UTF-8: {e}"))?;
                        let c = rest.chars().next().expect("non-empty");
                        out.push(c);
                        *pos += c.len_utf8();
                    }
                }
            }
        }
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = s_slice(b, start, *pos)?;
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|e| format!("bad number `{text}`: {e}"))
        }
    }
}

fn s_slice(b: &[u8], start: usize, end: usize) -> Result<&str, String> {
    if end > b.len() {
        return Err("unexpected end of input".into());
    }
    std::str::from_utf8(&b[start..end]).map_err(|e| format!("invalid UTF-8: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_documents() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::Str("u-net \"v1\"\n".into())),
            (
                "layers".into(),
                Json::Arr(vec![Json::Num(1.5), Json::Num(-2.0), Json::Null]),
            ),
            ("trained".into(), Json::Bool(true)),
        ]);
        let mut s = String::new();
        write_json(&doc, &mut s);
        assert_eq!(parse_json(&s).unwrap(), doc);
    }

    #[test]
    fn f32_shortest_form_roundtrips_exactly() {
        let values: Vec<f32> = vec![0.1, -3.4028235e38, 1.1754944e-38, 0.0, 123.456];
        let mut s = String::new();
        write_f32_array(&values, &mut s);
        let back = parse_json(&s).unwrap().as_f32_vec().unwrap();
        assert_eq!(values, back);
    }

    #[test]
    fn non_finite_weights_stay_loadable_as_nan() {
        let values: Vec<f32> = vec![1.0, f32::NAN, f32::INFINITY, -2.5];
        let mut s = String::new();
        write_f32_array(&values, &mut s);
        let back = parse_json(&s).unwrap().as_f32_vec().unwrap();
        assert_eq!(back[0], 1.0);
        assert!(back[1].is_nan());
        assert!(back[2].is_nan(), "Inf degrades to NaN, not a load error");
        assert_eq!(back[3], -2.5);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_json("{\"a\": }").is_err());
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("hello").is_err());
        assert!(parse_json("{} junk").is_err());
    }
}
