//! Training loop: MSE loss, batch size 1, Adam — the paper's §3.3 recipe.

use crate::adam::Adam;
use crate::tensor::Tensor;
use crate::unet::UNet3d;

/// One training pair.
#[derive(Debug, Clone)]
pub struct TrainSample {
    pub input: Tensor,
    pub target: Tensor,
}

/// Mean-squared-error loss and its gradient w.r.t. the prediction.
pub fn mse_loss(pred: &Tensor, target: &Tensor) -> (f64, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "MSE shape mismatch");
    let n = pred.len() as f64;
    let mut grad = Tensor::zeros(pred.c, pred.d, pred.h, pred.w);
    let mut loss = 0.0;
    for i in 0..pred.data.len() {
        let e = (pred.data[i] - target.data[i]) as f64;
        loss += e * e;
        grad.data[i] = (2.0 * e / n) as f32;
    }
    (loss / n, grad)
}

/// Couples a network with an optimizer.
pub struct Trainer {
    pub net: UNet3d,
    pub opt: Adam,
}

impl Trainer {
    pub fn new(net: UNet3d, lr: f64) -> Self {
        Trainer {
            net,
            opt: Adam::new(lr),
        }
    }

    /// One SGD step on one sample (batch size 1); returns the loss.
    pub fn step(&mut self, sample: &TrainSample) -> f64 {
        let (pred, cache) = self.net.forward_cached(&sample.input);
        let (loss, grad) = mse_loss(&pred, &sample.target);
        self.net.zero_grad();
        self.net.backward(&cache, &grad);
        self.opt.step(&mut self.net.params_mut());
        loss
    }

    /// One epoch over a dataset; returns the mean loss.
    pub fn epoch(&mut self, data: &[TrainSample]) -> f64 {
        assert!(!data.is_empty());
        let mut total = 0.0;
        for s in data {
            total += self.step(s);
        }
        total / data.len() as f64
    }

    /// Validation loss without updating weights.
    pub fn validate(&self, data: &[TrainSample]) -> f64 {
        assert!(!data.is_empty());
        data.iter()
            .map(|s| mse_loss(&self.net.forward(&s.input), &s.target).0)
            .sum::<f64>()
            / data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unet::UNetConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_tensor(c: usize, n: usize, seed: u64, scale: f32) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::from_vec(
            c,
            n,
            n,
            n,
            (0..c * n * n * n)
                .map(|_| rng.gen_range(-scale..scale))
                .collect(),
        )
    }

    #[test]
    fn mse_of_identical_tensors_is_zero() {
        let t = random_tensor(2, 4, 1, 1.0);
        let (loss, grad) = mse_loss(&t, &t);
        assert_eq!(loss, 0.0);
        assert!(grad.data.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn mse_value_and_gradient() {
        let a = Tensor::from_vec(1, 1, 1, 2, vec![1.0, 3.0]);
        let b = Tensor::from_vec(1, 1, 1, 2, vec![0.0, 1.0]);
        let (loss, grad) = mse_loss(&a, &b);
        assert!((loss - 2.5).abs() < 1e-12); // (1 + 4)/2
        assert_eq!(grad.data, vec![1.0, 2.0]); // 2e/n
    }

    #[test]
    fn overfitting_a_single_sample_drives_loss_down() {
        let net = UNet3d::new(
            &UNetConfig {
                in_channels: 1,
                out_channels: 1,
                base_features: 2,
            },
            9,
        );
        let sample = TrainSample {
            input: random_tensor(1, 4, 2, 1.0),
            target: random_tensor(1, 4, 3, 0.5),
        };
        let mut trainer = Trainer::new(net, 1e-2);
        let first = trainer.step(&sample);
        let mut last = first;
        for _ in 0..400 {
            last = trainer.step(&sample);
        }
        assert!(last < first / 5.0, "loss should drop 5x: {first} -> {last}");
    }

    #[test]
    fn epoch_and_validate_agree_on_converged_model() {
        let net = UNet3d::new(
            &UNetConfig {
                in_channels: 1,
                out_channels: 1,
                base_features: 2,
            },
            8,
        );
        let data = vec![
            TrainSample {
                input: random_tensor(1, 4, 4, 1.0),
                target: random_tensor(1, 4, 5, 0.2),
            },
            TrainSample {
                input: random_tensor(1, 4, 6, 1.0),
                target: random_tensor(1, 4, 7, 0.2),
            },
        ];
        let mut trainer = Trainer::new(net, 1e-2);
        let before = trainer.validate(&data);
        for _ in 0..100 {
            trainer.epoch(&data);
        }
        let after = trainer.validate(&data);
        assert!(
            after < before,
            "validation should improve: {before} -> {after}"
        );
    }
}
