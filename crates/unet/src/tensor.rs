//! A dense rank-4 tensor: channels × depth × height × width.

use crate::json::{parse_json, write_f32_array, Json};

/// `f32` tensor with CDHW layout (batch size is 1 throughout, as in the
/// paper's training setup).
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    pub c: usize,
    pub d: usize,
    pub h: usize,
    pub w: usize,
    pub data: Vec<f32>,
}

impl Tensor {
    pub fn zeros(c: usize, d: usize, h: usize, w: usize) -> Self {
        Tensor {
            c,
            d,
            h,
            w,
            data: vec![0.0; c * d * h * w],
        }
    }

    pub fn from_vec(c: usize, d: usize, h: usize, w: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), c * d * h * w, "tensor data length mismatch");
        Tensor { c, d, h, w, data }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Voxels per channel.
    #[inline]
    pub fn spatial(&self) -> usize {
        self.d * self.h * self.w
    }

    #[inline]
    pub fn idx(&self, c: usize, z: usize, y: usize, x: usize) -> usize {
        debug_assert!(c < self.c && z < self.d && y < self.h && x < self.w);
        ((c * self.d + z) * self.h + y) * self.w + x
    }

    #[inline]
    pub fn get(&self, c: usize, z: usize, y: usize, x: usize) -> f32 {
        self.data[self.idx(c, z, y, x)]
    }

    #[inline]
    pub fn set(&mut self, c: usize, z: usize, y: usize, x: usize, v: f32) {
        let i = self.idx(c, z, y, x);
        self.data[i] = v;
    }

    /// One channel as a slice.
    pub fn channel(&self, c: usize) -> &[f32] {
        let s = self.spatial();
        &self.data[c * s..(c + 1) * s]
    }

    /// Concatenate along the channel axis.
    pub fn concat_channels(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            (self.d, self.h, self.w),
            (other.d, other.h, other.w),
            "concat: spatial shapes differ"
        );
        let mut data = Vec::with_capacity(self.len() + other.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Tensor {
            c: self.c + other.c,
            d: self.d,
            h: self.h,
            w: self.w,
            data,
        }
    }

    /// Split the first `c0` channels off (inverse of concat).
    pub fn split_channels(&self, c0: usize) -> (Tensor, Tensor) {
        assert!(c0 <= self.c);
        let s = self.spatial();
        let a = Tensor {
            c: c0,
            d: self.d,
            h: self.h,
            w: self.w,
            data: self.data[..c0 * s].to_vec(),
        };
        let b = Tensor {
            c: self.c - c0,
            d: self.d,
            h: self.h,
            w: self.w,
            data: self.data[c0 * s..].to_vec(),
        };
        (a, b)
    }

    /// Shape tuple for assertions.
    pub fn shape(&self) -> (usize, usize, usize, usize) {
        (self.c, self.d, self.h, self.w)
    }

    /// Serialize to a compact JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(self.data.len() * 12 + 64);
        out.push_str(&format!(
            "{{\"c\":{},\"d\":{},\"h\":{},\"w\":{},\"data\":",
            self.c, self.d, self.h, self.w
        ));
        write_f32_array(&self.data, &mut out);
        out.push('}');
        out
    }

    /// Parse [`Tensor::to_json`] output.
    pub fn from_json(s: &str) -> Result<Tensor, String> {
        Self::from_json_value(&parse_json(s)?)
    }

    /// Build from an already-parsed JSON value.
    pub fn from_json_value(v: &Json) -> Result<Tensor, String> {
        let (c, d, h, w) = (
            v.get("c")?.as_usize()?,
            v.get("d")?.as_usize()?,
            v.get("h")?.as_usize()?,
            v.get("w")?.as_usize()?,
        );
        let data = v.get("data")?.as_f32_vec()?;
        if data.len() != c * d * h * w {
            return Err(format!(
                "tensor data length {} != {c}x{d}x{h}x{w}",
                data.len()
            ));
        }
        Ok(Tensor { c, d, h, w, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_is_row_major_cdhw() {
        let mut t = Tensor::zeros(2, 3, 4, 5);
        t.set(1, 2, 3, 4, 7.0);
        assert_eq!(t.data[((3 + 2) * 4 + 3) * 5 + 4], 7.0);
        assert_eq!(t.get(1, 2, 3, 4), 7.0);
        assert_eq!(t.len(), 2 * 3 * 4 * 5);
        assert_eq!(t.spatial(), 60);
    }

    #[test]
    fn concat_then_split_roundtrips() {
        let a = Tensor::from_vec(1, 2, 2, 2, (0..8).map(|i| i as f32).collect());
        let b = Tensor::from_vec(2, 2, 2, 2, (8..24).map(|i| i as f32).collect());
        let c = a.concat_channels(&b);
        assert_eq!(c.shape(), (3, 2, 2, 2));
        let (a2, b2) = c.split_channels(1);
        assert_eq!(a, a2);
        assert_eq!(b, b2);
    }

    #[test]
    fn channel_view_is_contiguous() {
        let t = Tensor::from_vec(2, 1, 2, 2, vec![1., 2., 3., 4., 5., 6., 7., 8.]);
        assert_eq!(t.channel(0), &[1., 2., 3., 4.]);
        assert_eq!(t.channel(1), &[5., 6., 7., 8.]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_vec_validates_length() {
        let _ = Tensor::from_vec(1, 2, 2, 2, vec![0.0; 7]);
    }

    #[test]
    fn json_roundtrip() {
        let t = Tensor::from_vec(1, 1, 2, 2, vec![1.5, -2.0, 0.1, 3.25]);
        let back = Tensor::from_json(&t.to_json()).unwrap();
        assert_eq!(t, back);
    }
}
