//! # unet — a pure-Rust 3-D U-Net with training and CPU inference
//!
//! The surrogate model of paper §3.3: "We employ a U-Net architecture ...
//! a series of three-dimensional convolutional layers", trained with MSE
//! loss and the Adam optimizer. The authors train in Keras/TensorFlow and
//! deploy with CPU-optimized inference engines (ONNX Runtime on x86-64,
//! SoftNeuro on A64FX) because shipping data to GPUs would bottleneck the
//! simulation; this crate plays both roles: a from-scratch training stack
//! (forward + full backprop) and a dependency-free CPU inference path, with
//! hand-rolled JSON model serialization ([`json`]) standing in for the ONNX
//! interchange format.
//!
//! ```
//! use unet::{Tensor, UNet3d, UNetConfig};
//!
//! let cfg = UNetConfig { in_channels: 2, out_channels: 1, base_features: 2 };
//! let net = UNet3d::new(&cfg, 42);
//! let x = Tensor::zeros(2, 8, 8, 8);
//! let y = net.forward(&x);
//! assert_eq!([y.c, y.d, y.h, y.w], [1, 8, 8, 8]);
//! ```

#![forbid(unsafe_code)]

pub mod adam;
pub mod conv;
pub mod gemm;
pub mod json;
pub mod layers;
pub mod tensor;
pub mod train;
pub mod unet;

pub use adam::Adam;
pub use tensor::Tensor;
pub use train::{mse_loss, TrainSample, Trainer};
pub use unet::{UNet3d, UNetConfig};
