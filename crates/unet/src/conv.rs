//! 3-D convolution with full backpropagation.
//!
//! The forward and backward hot paths lower to the cache-tiled GEMM in
//! [`crate::gemm`]: each output row `(oz, oy)` becomes `C = W·B + bias`
//! where `B` is an im2col patch matrix built by `fill_im2col_row` with
//! the zero-padding resolved during the fill (whole-row zeros for
//! out-of-volume planes, margin zeros for the `kx` shift) so the inner
//! loops carry no bounds branches. The original scalar loop nests are
//! retained as [`Conv3d::forward_reference`] /
//! [`Conv3d::backward_reference`] — they are the comparison baseline for
//! the kernel-equivalence tests and the `conv_gflops_ratio` bench metric.
//!
//! Parallelism is over output row tiles (disjoint output, per-worker
//! im2col scratch via `map_init`), and the weight-gradient reduction uses
//! a fixed chunk count summed in chunk order, so all results are
//! bit-reproducible across thread counts.

use crate::gemm;
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// A trainable parameter with its gradient accumulator.
#[derive(Debug, Clone)]
pub struct Param {
    pub value: Vec<f32>,
    /// Not serialized: rebuilt as zeros on load.
    pub grad: Vec<f32>,
}

impl Param {
    pub fn new(value: Vec<f32>) -> Self {
        let grad = vec![0.0; value.len()];
        Param { value, grad }
    }

    /// Serialize (values only; gradients are transient) into `out`.
    pub(crate) fn write_json(&self, out: &mut String) {
        out.push_str("{\"value\":");
        crate::json::write_f32_array(&self.value, out);
        out.push('}');
    }

    /// Parse [`Param::write_json`] output.
    pub(crate) fn from_json_value(v: &crate::json::Json) -> Result<Param, String> {
        Ok(Param::new(v.get("value")?.as_f32_vec()?))
    }

    pub fn zero_grad(&mut self) {
        if self.grad.len() != self.value.len() {
            self.grad = vec![0.0; self.value.len()];
        } else {
            self.grad.iter_mut().for_each(|g| *g = 0.0);
        }
    }
}

/// Fill the im2col patch matrix for one output row.
///
/// `b` has `x.c·k³` rows of `x.w` columns; row
/// `kr = ((ci·k + kz)·k + ky)·k + kx` holds
/// `x[ci, oz+kz-pad, oy+ky-pad, ox+kx-pad]` for every `ox`, with zeros
/// where the index leaves the volume. The interior/halo split happens
/// here, once per row: an out-of-volume `(iz, iy)` plane zeroes all `k`
/// of its `kx` rows in one `fill`, and the `kx` shift is a contiguous
/// `copy_from_slice` with zeroed margins — the GEMM that consumes `b`
/// never sees a padding branch.
pub(crate) fn fill_im2col_row(x: &Tensor, k: usize, oz: usize, oy: usize, b: &mut [f32]) {
    let (d, h, w) = (x.d, x.h, x.w);
    let pad = (k / 2) as isize;
    debug_assert_eq!(b.len(), x.c * k * k * k * w, "im2col scratch size");
    let mut kr = 0;
    for ci in 0..x.c {
        for kz in 0..k {
            let iz = oz as isize + kz as isize - pad;
            for ky in 0..k {
                let iy = oy as isize + ky as isize - pad;
                if iz < 0 || iz >= d as isize || iy < 0 || iy >= h as isize {
                    b[kr * w..(kr + k) * w].fill(0.0);
                    kr += k;
                    continue;
                }
                let start = x.idx(ci, iz as usize, iy as usize, 0);
                let xrow = &x.data[start..start + w];
                for kx in 0..k {
                    let row = &mut b[kr * w..(kr + 1) * w];
                    let shift = kx as isize - pad;
                    if shift >= 0 {
                        let s = (shift as usize).min(w);
                        row[..w - s].copy_from_slice(&xrow[s..]);
                        row[w - s..].fill(0.0);
                    } else {
                        let s = ((-shift) as usize).min(w);
                        row[..s].fill(0.0);
                        row[s..].copy_from_slice(&xrow[..w - s]);
                    }
                    kr += 1;
                }
            }
        }
    }
}

/// GEMM-backed "same"-padding convolution: `weight` in
/// `[c_out][x.c][k][k][k]` layout, one bias per output channel.
///
/// Parallel over output rows; each worker reuses one im2col scratch
/// buffer across its rows. Output rows land in a row-major
/// `(row, co, ox)` tile that is transposed into CDHW afterwards, so the
/// parallel writes stay contiguous and disjoint.
fn conv_gemm(x: &Tensor, weight: &[f32], bias: &[f32], c_out: usize, k: usize) -> Tensor {
    let (d, h, w) = (x.d, x.h, x.w);
    let kk = x.c * k * k * k;
    let rows = d * h;
    let tiles: Vec<Vec<f32>> = (0..rows)
        .into_par_iter()
        .map_init(
            || vec![0.0f32; kk * w],
            |bbuf, r| {
                fill_im2col_row(x, k, r / h, r % h, bbuf);
                let mut ctile = vec![0.0f32; c_out * w];
                gemm::gemm_bias(weight, bias, bbuf, &mut ctile, c_out, kk, w);
                ctile
            },
        )
        .collect();
    let mut y = Tensor::zeros(c_out, d, h, w);
    let spatial = d * h * w;
    for (r, tile) in tiles.iter().enumerate() {
        for co in 0..c_out {
            y.data[co * spatial + r * w..co * spatial + (r + 1) * w]
                .copy_from_slice(&tile[co * w..(co + 1) * w]);
        }
    }
    y
}

/// Number of row-chunks the weight-gradient reduction is split into.
/// Fixed — never derived from the worker count — so the chunk partials
/// are always grouped and summed identically and gradients stay
/// bit-reproducible across thread counts.
const GW_CHUNKS: usize = 64;

/// 3-D convolution, stride 1, cubic kernel, "same" zero padding.
#[derive(Debug, Clone)]
pub struct Conv3d {
    pub c_in: usize,
    pub c_out: usize,
    /// Kernel edge (3 for the U-Net body, 1 for the output head).
    pub k: usize,
    pub weight: Param,
    pub bias: Param,
}

impl Conv3d {
    /// Kaiming-uniform initialization, deterministic in `seed`.
    pub fn new(c_in: usize, c_out: usize, k: usize, seed: u64) -> Self {
        assert!(k % 2 == 1, "conv kernel must be odd for same padding");
        let fan_in = (c_in * k * k * k) as f32;
        let bound = (6.0 / fan_in).sqrt();
        let mut rng = StdRng::seed_from_u64(seed);
        let weight: Vec<f32> = (0..c_out * c_in * k * k * k)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        let bias = vec![0.0; c_out];
        Conv3d {
            c_in,
            c_out,
            k,
            weight: Param::new(weight),
            bias: Param::new(bias),
        }
    }

    #[inline]
    fn widx(&self, co: usize, ci: usize, kz: usize, ky: usize, kx: usize) -> usize {
        (((co * self.c_in + ci) * self.k + kz) * self.k + ky) * self.k + kx
    }

    /// Forward pass: `y[co] = b[co] + sum_ci w[co,ci] * x[ci]`.
    ///
    /// im2col + GEMM; bitwise equal to [`Conv3d::forward_reference`]
    /// (same per-element reduction order — see [`crate::gemm`]).
    pub fn forward(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.c, self.c_in, "conv input channel mismatch");
        conv_gemm(x, &self.weight.value, &self.bias.value, self.c_out, self.k)
    }

    /// The original scalar loop nest, kept as the equivalence/bench
    /// reference for [`Conv3d::forward`].
    pub fn forward_reference(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.c, self.c_in, "conv input channel mismatch");
        let (d, h, w) = (x.d, x.h, x.w);
        let pad = (self.k / 2) as isize;
        let mut y = Tensor::zeros(self.c_out, d, h, w);
        let spatial = d * h * w;
        y.data
            .par_chunks_mut(spatial)
            .enumerate()
            .for_each(|(co, out)| {
                let b = self.bias.value[co];
                for oz in 0..d {
                    for oy in 0..h {
                        for ox in 0..w {
                            let mut acc = b;
                            for ci in 0..self.c_in {
                                for kz in 0..self.k {
                                    let iz = oz as isize + kz as isize - pad;
                                    if iz < 0 || iz >= d as isize {
                                        continue;
                                    }
                                    for ky in 0..self.k {
                                        let iy = oy as isize + ky as isize - pad;
                                        if iy < 0 || iy >= h as isize {
                                            continue;
                                        }
                                        for kx in 0..self.k {
                                            let ix = ox as isize + kx as isize - pad;
                                            if ix < 0 || ix >= w as isize {
                                                continue;
                                            }
                                            let xi =
                                                x.idx(ci, iz as usize, iy as usize, ix as usize);
                                            let wi = self.widx(co, ci, kz, ky, kx);
                                            acc += x.data[xi] * self.weight.value[wi];
                                        }
                                    }
                                }
                            }
                            out[(oz * h + oy) * w + ox] = acc;
                        }
                    }
                }
            });
        y
    }

    /// The weights re-laid-out as `[c_in][c_out][k][k][k]` with all three
    /// kernel axes flipped, so the input gradient is a plain forward
    /// convolution of `gy` by this matrix.
    fn flipped_transposed_weight(&self) -> Vec<f32> {
        let k = self.k;
        let mut wt = vec![0.0f32; self.weight.value.len()];
        for co in 0..self.c_out {
            for ci in 0..self.c_in {
                for kz in 0..k {
                    for ky in 0..k {
                        for kx in 0..k {
                            let src = self.widx(co, ci, k - 1 - kz, k - 1 - ky, k - 1 - kx);
                            let dst = (((ci * self.c_out + co) * k + kz) * k + ky) * k + kx;
                            wt[dst] = self.weight.value[src];
                        }
                    }
                }
            }
        }
        wt
    }

    /// Weight gradients via per-row im2col tiles:
    /// `gw[co][kr] += Σ_rows gy_row[co] · B_row[kr]`, partitioned into
    /// [`GW_CHUNKS`] fixed row chunks reduced in chunk order.
    fn accumulate_weight_grad(&mut self, x: &Tensor, gy: &Tensor) {
        let (d, h, w) = (x.d, x.h, x.w);
        let k = self.k;
        let kk = self.c_in * k * k * k;
        let rows = d * h;
        let spatial = d * h * w;
        let chunk = rows.div_ceil(GW_CHUNKS).max(1);
        let n_chunks = rows.div_ceil(chunk);
        let c_out = self.c_out;
        let partials: Vec<Vec<f32>> = (0..n_chunks)
            .into_par_iter()
            .map_init(
                || vec![0.0f32; kk * w],
                |bbuf, ch| {
                    let mut gw = vec![0.0f32; c_out * kk];
                    for r in ch * chunk..((ch + 1) * chunk).min(rows) {
                        fill_im2col_row(x, k, r / h, r % h, bbuf);
                        for co in 0..c_out {
                            let gyrow = &gy.data[co * spatial + r * w..co * spatial + (r + 1) * w];
                            // ReLU upstreams are sparse; a zero row adds
                            // exactly 0.0 so skipping it is free.
                            if gyrow.iter().all(|&g| g == 0.0) {
                                continue;
                            }
                            let gwrow = &mut gw[co * kk..(co + 1) * kk];
                            for (kr, gwv) in gwrow.iter_mut().enumerate() {
                                *gwv += gemm::dot(gyrow, &bbuf[kr * w..(kr + 1) * w]);
                            }
                        }
                    }
                    gw
                },
            )
            .collect();
        for p in &partials {
            for (g, &v) in self.weight.grad.iter_mut().zip(p) {
                *g += v;
            }
        }
    }

    /// Backward pass: given upstream `gy`, accumulate weight/bias gradients
    /// and return the input gradient.
    ///
    /// Mirrors the forward GEMM: the input gradient is a forward
    /// convolution of `gy` with the flipped-transposed weights, and the
    /// weight gradient reuses the im2col tiles. Summation orders are fixed
    /// (see [`crate::gemm`]) so gradients are reproducible across thread
    /// counts; they differ from [`Conv3d::backward_reference`] only by
    /// f32 reassociation.
    pub fn backward(&mut self, x: &Tensor, gy: &Tensor) -> Tensor {
        assert_eq!(gy.c, self.c_out);
        assert_eq!((gy.d, gy.h, gy.w), (x.d, x.h, x.w));

        // Bias gradient: sum over space per output channel.
        for co in 0..self.c_out {
            let g: f32 = gy.channel(co).iter().sum();
            self.bias.grad[co] += g;
        }

        self.accumulate_weight_grad(x, gy);

        let wt = self.flipped_transposed_weight();
        let zero_bias = vec![0.0f32; self.c_in];
        conv_gemm(gy, &wt, &zero_bias, self.c_in, self.k)
    }

    /// The original scalar backward pass, kept as the equivalence
    /// reference for [`Conv3d::backward`].
    pub fn backward_reference(&mut self, x: &Tensor, gy: &Tensor) -> Tensor {
        assert_eq!(gy.c, self.c_out);
        assert_eq!((gy.d, gy.h, gy.w), (x.d, x.h, x.w));
        let (d, h, w) = (x.d, x.h, x.w);
        let pad = (self.k / 2) as isize;

        // Bias gradient: sum over space per output channel.
        for co in 0..self.c_out {
            let g: f32 = gy.channel(co).iter().sum();
            self.bias.grad[co] += g;
        }

        // Weight gradients, parallel over output channels (disjoint slices).
        let k = self.k;
        let c_in = self.c_in;
        let wlen_per_co = c_in * k * k * k;
        self.weight
            .grad
            .par_chunks_mut(wlen_per_co)
            .enumerate()
            .for_each(|(co, gw)| {
                for oz in 0..d {
                    for oy in 0..h {
                        for ox in 0..w {
                            let g = gy.data[(co * d + oz) * h * w + oy * w + ox];
                            if g == 0.0 {
                                continue;
                            }
                            for ci in 0..c_in {
                                for kz in 0..k {
                                    let iz = oz as isize + kz as isize - pad;
                                    if iz < 0 || iz >= d as isize {
                                        continue;
                                    }
                                    for ky in 0..k {
                                        let iy = oy as isize + ky as isize - pad;
                                        if iy < 0 || iy >= h as isize {
                                            continue;
                                        }
                                        for kx in 0..k {
                                            let ix = ox as isize + kx as isize - pad;
                                            if ix < 0 || ix >= w as isize {
                                                continue;
                                            }
                                            let xi =
                                                x.idx(ci, iz as usize, iy as usize, ix as usize);
                                            gw[((ci * k + kz) * k + ky) * k + kx] += g * x.data[xi];
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            });

        // Input gradient: full correlation with flipped kernel, parallel
        // over input channels.
        let mut gx = Tensor::zeros(self.c_in, d, h, w);
        let weight = &self.weight.value;
        let spatial = d * h * w;
        gx.data
            .par_chunks_mut(spatial)
            .enumerate()
            .for_each(|(ci, out)| {
                for iz in 0..d {
                    for iy in 0..h {
                        for ix in 0..w {
                            let mut acc = 0.0;
                            for co in 0..self.c_out {
                                for kz in 0..k {
                                    let oz = iz as isize - (kz as isize - pad);
                                    if oz < 0 || oz >= d as isize {
                                        continue;
                                    }
                                    for ky in 0..k {
                                        let oy = iy as isize - (ky as isize - pad);
                                        if oy < 0 || oy >= h as isize {
                                            continue;
                                        }
                                        for kx in 0..k {
                                            let ox = ix as isize - (kx as isize - pad);
                                            if ox < 0 || ox >= w as isize {
                                                continue;
                                            }
                                            let gyi =
                                                gy.idx(co, oz as usize, oy as usize, ox as usize);
                                            let wi =
                                                (((co * c_in + ci) * k + kz) * k + ky) * k + kx;
                                            acc += gy.data[gyi] * weight[wi];
                                        }
                                    }
                                }
                            }
                            out[(iz * h + iy) * w + ix] = acc;
                        }
                    }
                }
            });
        gx
    }

    /// Iterate over this layer's parameters (for the optimizer).
    pub fn params_mut(&mut self) -> [&mut Param; 2] {
        [&mut self.weight, &mut self.bias]
    }

    /// Serialize the layer (shape + weights) into `out`.
    pub(crate) fn write_json(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"c_in\":{},\"c_out\":{},\"k\":{},\"weight\":",
            self.c_in, self.c_out, self.k
        ));
        self.weight.write_json(out);
        out.push_str(",\"bias\":");
        self.bias.write_json(out);
        out.push('}');
    }

    /// Parse [`Conv3d::write_json`] output.
    pub(crate) fn from_json_value(v: &crate::json::Json) -> Result<Conv3d, String> {
        let c_in = v.get("c_in")?.as_usize()?;
        let c_out = v.get("c_out")?.as_usize()?;
        let k = v.get("k")?.as_usize()?;
        let weight = Param::from_json_value(v.get("weight")?)?;
        let bias = Param::from_json_value(v.get("bias")?)?;
        if weight.value.len() != c_out * c_in * k * k * k || bias.value.len() != c_out {
            return Err("conv3d: weight/bias lengths inconsistent with shape".into());
        }
        Ok(Conv3d {
            c_in,
            c_out,
            k,
            weight,
            bias,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_kernel_passes_input_through() {
        let mut conv = Conv3d::new(1, 1, 3, 0);
        conv.weight.value.iter_mut().for_each(|w| *w = 0.0);
        // Centre tap = 1.
        let centre = conv.widx(0, 0, 1, 1, 1);
        conv.weight.value[centre] = 1.0;
        let x = Tensor::from_vec(1, 2, 2, 2, vec![1., 2., 3., 4., 5., 6., 7., 8.]);
        let y = conv.forward(&x);
        assert_eq!(y.data, x.data);
    }

    #[test]
    fn bias_shifts_output() {
        let mut conv = Conv3d::new(1, 2, 1, 0);
        conv.weight.value = vec![0.0, 0.0];
        conv.bias.value = vec![1.5, -2.0];
        let x = Tensor::zeros(1, 2, 2, 2);
        let y = conv.forward(&x);
        assert!(y.channel(0).iter().all(|&v| v == 1.5));
        assert!(y.channel(1).iter().all(|&v| v == -2.0));
    }

    #[test]
    fn same_padding_preserves_shape() {
        let conv = Conv3d::new(3, 5, 3, 1);
        let x = Tensor::zeros(3, 4, 6, 5);
        let y = conv.forward(&x);
        assert_eq!(y.shape(), (5, 4, 6, 5));
    }

    #[test]
    fn forward_matches_manual_computation() {
        // 1x1x1x3 input, k=3: y[1] = w0*x0 + w1*x1 + w2*x2 (+pad zeros).
        let mut conv = Conv3d::new(1, 1, 3, 0);
        conv.weight.value.iter_mut().for_each(|w| *w = 0.0);
        let (l, c, r) = (
            conv.widx(0, 0, 1, 1, 0),
            conv.widx(0, 0, 1, 1, 1),
            conv.widx(0, 0, 1, 1, 2),
        );
        conv.weight.value[l] = 1.0;
        conv.weight.value[c] = 10.0;
        conv.weight.value[r] = 100.0;
        let x = Tensor::from_vec(1, 1, 1, 3, vec![1.0, 2.0, 3.0]);
        let y = conv.forward(&x);
        // y0 = 10*1 + 100*2 = 210 ; y1 = 1 + 20 + 300 = 321 ; y2 = 2 + 30.
        assert_eq!(y.data, vec![210.0, 321.0, 32.0]);
    }

    /// The GEMM forward must reproduce the scalar reference exactly: the
    /// per-element reduction order is identical (bias first, then kr
    /// ascending), and the padding contributes exact zeros.
    #[test]
    fn gemm_forward_matches_reference_bitwise() {
        let mut rng = StdRng::seed_from_u64(17);
        for &(c_in, c_out, k, d, h, w) in &[
            (1usize, 1usize, 3usize, 2usize, 2usize, 2usize),
            (2, 3, 3, 4, 5, 6),
            (3, 2, 1, 3, 3, 3),
            (4, 8, 3, 5, 4, 9),
            (2, 5, 5, 6, 6, 6),
        ] {
            let mut conv = Conv3d::new(c_in, c_out, k, 5);
            conv.bias
                .value
                .iter_mut()
                .for_each(|b| *b = rng.gen_range(-0.5..0.5));
            let x = Tensor::from_vec(
                c_in,
                d,
                h,
                w,
                (0..c_in * d * h * w)
                    .map(|_| rng.gen_range(-1.0..1.0))
                    .collect(),
            );
            let fast = conv.forward(&x);
            let slow = conv.forward_reference(&x);
            for (i, (&a, &b)) in fast.data.iter().zip(&slow.data).enumerate() {
                assert!(
                    a.to_bits() == b.to_bits(),
                    "({c_in},{c_out},k{k},{d}x{h}x{w}) voxel {i}: {a} vs {b}"
                );
            }
        }
    }

    /// GEMM backward agrees with the scalar reference up to f32
    /// reassociation (the summation orders legitimately differ).
    #[test]
    fn gemm_backward_matches_reference() {
        let mut rng = StdRng::seed_from_u64(23);
        for &(c_in, c_out, k, d, h, w) in &[
            (2usize, 3usize, 3usize, 4usize, 3usize, 5usize),
            (3, 2, 1, 3, 4, 3),
            (1, 4, 3, 2, 6, 7),
        ] {
            let conv = Conv3d::new(c_in, c_out, k, 31);
            let x = Tensor::from_vec(
                c_in,
                d,
                h,
                w,
                (0..c_in * d * h * w)
                    .map(|_| rng.gen_range(-1.0..1.0))
                    .collect(),
            );
            let gy = Tensor::from_vec(
                c_out,
                d,
                h,
                w,
                (0..c_out * d * h * w)
                    .map(|_| rng.gen_range(-1.0..1.0))
                    .collect(),
            );
            let mut fast = conv.clone();
            let mut slow = conv.clone();
            let gx_fast = fast.backward(&x, &gy);
            let gx_slow = slow.backward_reference(&x, &gy);
            let rel = |a: f32, b: f32| (a - b).abs() / b.abs().max(1.0);
            for (i, (&a, &b)) in gx_fast.data.iter().zip(&gx_slow.data).enumerate() {
                assert!(rel(a, b) < 1e-4, "gx[{i}]: {a} vs {b}");
            }
            for (i, (&a, &b)) in fast.weight.grad.iter().zip(&slow.weight.grad).enumerate() {
                assert!(rel(a, b) < 1e-3, "gw[{i}]: {a} vs {b}");
            }
            for (i, (&a, &b)) in fast.bias.grad.iter().zip(&slow.bias.grad).enumerate() {
                assert!(rel(a, b) < 1e-4, "gb[{i}]: {a} vs {b}");
            }
        }
    }

    /// Repeated evaluations are bit-identical: the tiled kernels use fixed
    /// lane counts and fixed reduction orders (the determinism contract
    /// behind bitwise snapshot restarts and reproducible training).
    #[test]
    fn forward_and_backward_are_deterministic() {
        let mut rng = StdRng::seed_from_u64(41);
        let conv = Conv3d::new(3, 4, 3, 13);
        let x = Tensor::from_vec(
            3,
            6,
            5,
            7,
            (0..3 * 6 * 5 * 7)
                .map(|_| rng.gen_range(-1.0..1.0))
                .collect(),
        );
        let y1 = conv.forward(&x);
        let y2 = conv.forward(&x);
        assert_eq!(
            y1.data.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            y2.data.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        let mut a = conv.clone();
        let mut b = conv.clone();
        let gxa = a.backward(&x, &y1);
        let gxb = b.backward(&x, &y2);
        assert_eq!(
            gxa.data.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            gxb.data.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(
            a.weight
                .grad
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            b.weight
                .grad
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        );
    }

    /// Gradient check: compare analytic gradients against finite differences
    /// for weights, bias, and input.
    #[test]
    fn gradients_match_finite_differences() {
        let mut conv = Conv3d::new(2, 2, 3, 3);
        let mut rng = StdRng::seed_from_u64(9);
        let x = Tensor::from_vec(
            2,
            3,
            3,
            3,
            (0..2 * 27).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        );
        // Loss = sum(y^2)/2 so that gy = y.
        let y = conv.forward(&x);
        let gy = y.clone();
        conv.weight.zero_grad();
        conv.bias.zero_grad();
        let gx = conv.backward(&x, &gy);

        let loss = |c: &Conv3d, xx: &Tensor| -> f64 {
            let y = c.forward(xx);
            y.data.iter().map(|&v| 0.5 * (v as f64) * (v as f64)).sum()
        };
        let eps = 1e-3f32;
        // Weight gradient spot checks.
        for &wi in &[0usize, 5, 31, 60] {
            let mut cp = conv.clone();
            cp.weight.value[wi] += eps;
            let lp = loss(&cp, &x);
            cp.weight.value[wi] -= 2.0 * eps;
            let lm = loss(&cp, &x);
            let fd = (lp - lm) / (2.0 * eps as f64);
            let an = conv.weight.grad[wi] as f64;
            assert!(
                (fd - an).abs() < 2e-2 * an.abs().max(1.0),
                "w[{wi}]: fd {fd} vs analytic {an}"
            );
        }
        // Bias gradient.
        for bi in 0..2 {
            let mut cp = conv.clone();
            cp.bias.value[bi] += eps;
            let lp = loss(&cp, &x);
            cp.bias.value[bi] -= 2.0 * eps;
            let lm = loss(&cp, &x);
            let fd = (lp - lm) / (2.0 * eps as f64);
            let an = conv.bias.grad[bi] as f64;
            assert!((fd - an).abs() < 2e-2 * an.abs().max(1.0), "b[{bi}]");
        }
        // Input gradient spot checks.
        for &xi in &[0usize, 13, 40, 53] {
            let mut xp = x.clone();
            xp.data[xi] += eps;
            let lp = loss(&conv, &xp);
            xp.data[xi] -= 2.0 * eps;
            let lm = loss(&conv, &xp);
            let fd = (lp - lm) / (2.0 * eps as f64);
            let an = gx.data[xi] as f64;
            assert!(
                (fd - an).abs() < 2e-2 * an.abs().max(1.0),
                "x[{xi}]: fd {fd} vs analytic {an}"
            );
        }
    }

    #[test]
    fn init_is_deterministic_and_scaled() {
        let a = Conv3d::new(4, 4, 3, 11);
        let b = Conv3d::new(4, 4, 3, 11);
        assert_eq!(a.weight.value, b.weight.value);
        let bound = (6.0f32 / (4.0 * 27.0)).sqrt();
        assert!(a.weight.value.iter().all(|w| w.abs() <= bound));
        assert!(a.weight.value.iter().any(|w| w.abs() > bound * 0.5));
    }
}
