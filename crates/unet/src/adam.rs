//! The Adam optimizer (Kingma & Ba 2015), the paper's training optimizer
//! (§3.3: "ADAM optimizer is adopted with a learning rate of 10^-6").

use crate::conv::Param;

/// Adam state over a fixed, ordered parameter list.
#[derive(Debug, Clone)]
pub struct Adam {
    pub lr: f64,
    pub beta1: f64,
    pub beta2: f64,
    pub eps: f64,
    t: u64,
    m: Vec<Vec<f64>>,
    v: Vec<Vec<f64>>,
}

impl Adam {
    pub fn new(lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Apply one update to `params` using their accumulated gradients.
    /// The parameter list must have the same shape on every call.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.m.is_empty() {
            self.m = params.iter().map(|p| vec![0.0; p.value.len()]).collect();
            self.v = self.m.clone();
        }
        assert_eq!(self.m.len(), params.len(), "parameter list changed shape");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for (pi, p) in params.iter_mut().enumerate() {
            assert_eq!(self.m[pi].len(), p.value.len());
            for i in 0..p.value.len() {
                let g = p.grad[i] as f64;
                let m = &mut self.m[pi][i];
                let v = &mut self.v[pi][i];
                *m = self.beta1 * *m + (1.0 - self.beta1) * g;
                *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
                let mhat = *m / b1t;
                let vhat = *v / b2t;
                p.value[i] -= (self.lr * mhat / (vhat.sqrt() + self.eps)) as f32;
            }
        }
    }

    /// Updates applied so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_descends_a_quadratic() {
        // Minimize f(w) = (w - 3)^2 from w = 0.
        let mut p = Param::new(vec![0.0f32]);
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            p.zero_grad();
            p.grad[0] = 2.0 * (p.value[0] - 3.0);
            opt.step(&mut [&mut p]);
        }
        assert!((p.value[0] - 3.0).abs() < 0.05, "w = {}", p.value[0]);
        assert_eq!(opt.steps(), 500);
    }

    #[test]
    fn first_step_size_is_about_lr() {
        // Adam's bias correction makes the first step ~lr regardless of
        // gradient magnitude.
        for &g in &[1e-6f32, 1.0, 1e6] {
            let mut p = Param::new(vec![0.0f32]);
            p.grad[0] = g;
            let mut opt = Adam::new(0.01);
            opt.step(&mut [&mut p]);
            assert!(
                (p.value[0].abs() - 0.01).abs() < 1e-4,
                "g={g}: step {}",
                p.value[0]
            );
        }
    }

    #[test]
    fn handles_multiple_parameter_tensors() {
        let mut a = Param::new(vec![1.0f32; 4]);
        let mut b = Param::new(vec![-1.0f32; 2]);
        let mut opt = Adam::new(0.05);
        for _ in 0..300 {
            a.zero_grad();
            b.zero_grad();
            for i in 0..4 {
                a.grad[i] = 2.0 * a.value[i];
            }
            for i in 0..2 {
                b.grad[i] = 2.0 * (b.value[i] + 2.0);
            }
            opt.step(&mut [&mut a, &mut b]);
        }
        assert!(a.value.iter().all(|w| w.abs() < 0.05));
        assert!(b.value.iter().all(|w| (w + 2.0).abs() < 0.05));
    }

    #[test]
    #[should_panic(expected = "changed shape")]
    fn shape_change_rejected() {
        let mut a = Param::new(vec![0.0f32]);
        let mut b = Param::new(vec![0.0f32]);
        let mut opt = Adam::new(0.1);
        opt.step(&mut [&mut a]);
        opt.step(&mut [&mut a, &mut b]);
    }
}
