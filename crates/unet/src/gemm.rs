//! Cache-tiled f32 matrix multiply for the convolution layers.
//!
//! `Conv3d` lowers each output row `(oz, oy)` to a small GEMM
//! (`C = A·B + bias`) where `A` is the weight matrix (`c_out × K`,
//! `K = c_in·k³`, the natural row-major layout of the stored weights) and
//! `B` is an im2col patch matrix (`K × w`) built by
//! `fill_im2col_row` (private to `crate::conv`). The kernel here processes `C` in
//! 4-row × 8-column micro-tiles with explicit fixed-size array lanes, a
//! form LLVM autovectorizes on the SSE2 baseline (and wider targets) while
//! staying plain stable Rust — no `std::simd`, no intrinsics.
//!
//! # Determinism
//!
//! Every output element owns exactly one accumulator that sums over the
//! reduction index `kr = 0..K` **in ascending order**, seeded from the
//! bias. Lanes span *output columns*, never splits of the reduction
//! dimension, so the floating-point addition order per element is
//! identical to the scalar triple loop — results are bit-reproducible
//! regardless of tile shape, lane width, or thread count. [`dot`] (used by
//! the weight-gradient pass) does split its reduction across eight lanes,
//! but with a fixed lane count and a fixed horizontal-sum tree, so it too
//! is machine- and thread-count-independent. See the `## Kernel
//! determinism` section of ROADMAP.md.

/// Lane width of the f32 inner loops (two SSE2 vectors; one AVX vector).
pub const LANES: usize = 8;

/// Rows of `C` processed per micro-kernel invocation.
const MR: usize = 4;

/// `C[m×n] = A[m×K]·B[K×n]`, row-major, with `bias[i]` seeding row `i`.
///
/// Exact (bitwise) per-element equality with the naive
/// `c[i][j] = bias[i] + Σ_kr a[i][kr]·b[kr][j]` loop: the reduction per
/// element is sequential in `kr` no matter which tile the element lands in.
pub fn gemm_bias(a: &[f32], bias: &[f32], b: &[f32], c: &mut [f32], m: usize, kk: usize, n: usize) {
    debug_assert_eq!(a.len(), m * kk, "gemm: A shape");
    debug_assert!(b.len() >= kk * n, "gemm: B shape");
    debug_assert_eq!(c.len(), m * n, "gemm: C shape");
    debug_assert_eq!(bias.len(), m, "gemm: bias length");
    let mut row = 0;
    while row + MR <= m {
        gemm_rows::<MR>(a, bias, b, c, row, kk, n);
        row += MR;
    }
    while row < m {
        gemm_rows::<1>(a, bias, b, c, row, kk, n);
        row += 1;
    }
}

/// `R` consecutive rows of the output, all columns.
#[inline]
fn gemm_rows<const R: usize>(
    a: &[f32],
    bias: &[f32],
    b: &[f32],
    c: &mut [f32],
    row: usize,
    kk: usize,
    n: usize,
) {
    let mut col = 0;
    // Main tile: R×LANES accumulators live in registers across the whole
    // kr sweep; the b row segment is loaded once per kr and broadcast-
    // multiplied into each output row.
    while col + LANES <= n {
        let mut acc = [[0.0f32; LANES]; R];
        for (i, acc_row) in acc.iter_mut().enumerate() {
            *acc_row = [bias[row + i]; LANES];
        }
        for kr in 0..kk {
            let mut bl = [0.0f32; LANES];
            bl.copy_from_slice(&b[kr * n + col..kr * n + col + LANES]);
            for (i, acc_row) in acc.iter_mut().enumerate() {
                let av = a[(row + i) * kk + kr];
                for l in 0..LANES {
                    acc_row[l] += av * bl[l];
                }
            }
        }
        for (i, acc_row) in acc.iter().enumerate() {
            c[(row + i) * n + col..(row + i) * n + col + LANES].copy_from_slice(acc_row);
        }
        col += LANES;
    }
    // Column tail: scalar accumulators, same kr-ascending order.
    while col < n {
        for i in 0..R {
            let ar = &a[(row + i) * kk..(row + i + 1) * kk];
            let mut acc = bias[row + i];
            for (kr, &av) in ar.iter().enumerate() {
                acc += av * b[kr * n + col];
            }
            c[(row + i) * n + col] = acc;
        }
        col += 1;
    }
}

/// Fixed-order eight-lane dot product.
///
/// The reduction is split across [`LANES`] partial sums filled in stride-8
/// order, collapsed by the fixed tree
/// `((l0+l4)+(l1+l5)) + ((l2+l6)+(l3+l7))`, then the scalar tail is added
/// in ascending order. Not equal to the naive left-to-right sum, but
/// deterministic across machines and thread counts.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dot: length mismatch");
    let n = a.len();
    let mut lanes = [0.0f32; LANES];
    let chunks = n / LANES;
    for ch in 0..chunks {
        let av = &a[ch * LANES..ch * LANES + LANES];
        let bv = &b[ch * LANES..ch * LANES + LANES];
        for l in 0..LANES {
            lanes[l] += av[l] * bv[l];
        }
    }
    let mut s = ((lanes[0] + lanes[4]) + (lanes[1] + lanes[5]))
        + ((lanes[2] + lanes[6]) + (lanes[3] + lanes[7]));
    for i in chunks * LANES..n {
        s += a[i] * b[i];
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The reference definition every tile shape must reproduce bitwise.
    fn naive_gemm_bias(
        a: &[f32],
        bias: &[f32],
        b: &[f32],
        m: usize,
        kk: usize,
        n: usize,
    ) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = bias[i];
                for kr in 0..kk {
                    acc += a[i * kk + kr] * b[kr * n + j];
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    #[test]
    fn gemm_matches_naive_bitwise_across_shapes() {
        let mut rng = StdRng::seed_from_u64(42);
        // Shapes straddle every tile boundary: row tails (m % 4), column
        // tails (n % 8), tiny and skinny matrices.
        for &(m, kk, n) in &[
            (1usize, 1usize, 1usize),
            (4, 8, 8),
            (5, 27, 9),
            (3, 7, 17),
            (16, 108, 33),
            (6, 54, 64),
            (13, 11, 3),
        ] {
            let a: Vec<f32> = (0..m * kk).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let b: Vec<f32> = (0..kk * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let bias: Vec<f32> = (0..m).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut c = vec![0.0f32; m * n];
            gemm_bias(&a, &bias, &b, &mut c, m, kk, n);
            let want = naive_gemm_bias(&a, &bias, &b, m, kk, n);
            for (i, (&got, &exp)) in c.iter().zip(&want).enumerate() {
                assert!(
                    got.to_bits() == exp.to_bits(),
                    "({m}x{kk}x{n}) element {i}: {got} vs {exp}"
                );
            }
        }
    }

    #[test]
    fn dot_is_deterministic_and_accurate() {
        let mut rng = StdRng::seed_from_u64(7);
        for &n in &[0usize, 1, 7, 8, 9, 64, 100] {
            let a: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let b: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let d1 = dot(&a, &b);
            let d2 = dot(&a, &b);
            assert_eq!(d1.to_bits(), d2.to_bits());
            let naive: f64 = a.iter().zip(&b).map(|(&x, &y)| x as f64 * y as f64).sum();
            assert!(
                (d1 as f64 - naive).abs() <= 1e-5 * naive.abs().max(1.0),
                "n={n}: {d1} vs {naive}"
            );
        }
    }
}
