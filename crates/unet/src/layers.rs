//! Non-convolutional layers: ReLU, max-pooling, nearest upsampling.

use crate::tensor::Tensor;

/// ReLU forward.
pub fn relu(x: &Tensor) -> Tensor {
    let mut y = x.clone();
    y.data.iter_mut().for_each(|v| {
        if *v < 0.0 {
            *v = 0.0;
        }
    });
    y
}

/// ReLU backward: gate the upstream gradient by the forward input's sign.
pub fn relu_backward(x: &Tensor, gy: &Tensor) -> Tensor {
    assert_eq!(x.shape(), gy.shape());
    let mut gx = gy.clone();
    for (g, &v) in gx.data.iter_mut().zip(&x.data) {
        if v <= 0.0 {
            *g = 0.0;
        }
    }
    gx
}

/// 2x2x2 max pooling (dims must be even). Returns the pooled tensor and the
/// winning flat indices for the backward pass.
pub fn maxpool2(x: &Tensor) -> (Tensor, Vec<u32>) {
    assert!(
        x.d.is_multiple_of(2) && x.h.is_multiple_of(2) && x.w.is_multiple_of(2),
        "maxpool2 requires even dims, got {:?}",
        x.shape()
    );
    let (d, h, w) = (x.d / 2, x.h / 2, x.w / 2);
    let mut y = Tensor::zeros(x.c, d, h, w);
    let mut arg = vec![0u32; y.len()];
    for c in 0..x.c {
        for z in 0..d {
            for yy in 0..h {
                for xx in 0..w {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_i = 0usize;
                    for dz in 0..2 {
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let i = x.idx(c, 2 * z + dz, 2 * yy + dy, 2 * xx + dx);
                                if x.data[i] > best {
                                    best = x.data[i];
                                    best_i = i;
                                }
                            }
                        }
                    }
                    let o = y.idx(c, z, yy, xx);
                    y.data[o] = best;
                    arg[o] = best_i as u32;
                }
            }
        }
    }
    (y, arg)
}

/// Max-pool backward: route gradients to the argmax positions.
pub fn maxpool2_backward(
    x_shape: (usize, usize, usize, usize),
    arg: &[u32],
    gy: &Tensor,
) -> Tensor {
    let (c, d, h, w) = x_shape;
    let mut gx = Tensor::zeros(c, d, h, w);
    assert_eq!(arg.len(), gy.len());
    for (o, &src) in arg.iter().enumerate() {
        gx.data[src as usize] += gy.data[o];
    }
    gx
}

/// Nearest-neighbour 2x upsampling.
pub fn upsample2(x: &Tensor) -> Tensor {
    let mut y = Tensor::zeros(x.c, x.d * 2, x.h * 2, x.w * 2);
    for c in 0..x.c {
        for z in 0..y.d {
            for yy in 0..y.h {
                for xx in 0..y.w {
                    let v = x.get(c, z / 2, yy / 2, xx / 2);
                    y.set(c, z, yy, xx, v);
                }
            }
        }
    }
    y
}

/// Upsample backward: each source voxel sums its 8 children's gradients.
pub fn upsample2_backward(gy: &Tensor) -> Tensor {
    assert!(gy.d.is_multiple_of(2) && gy.h.is_multiple_of(2) && gy.w.is_multiple_of(2));
    let mut gx = Tensor::zeros(gy.c, gy.d / 2, gy.h / 2, gy.w / 2);
    for c in 0..gy.c {
        for z in 0..gy.d {
            for yy in 0..gy.h {
                for xx in 0..gy.w {
                    let i = gx.idx(c, z / 2, yy / 2, xx / 2);
                    gx.data[i] += gy.get(c, z, yy, xx);
                }
            }
        }
    }
    gx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives_only() {
        let x = Tensor::from_vec(1, 1, 1, 4, vec![-1.0, 0.0, 2.0, -0.5]);
        let y = relu(&x);
        assert_eq!(y.data, vec![0.0, 0.0, 2.0, 0.0]);
        let gy = Tensor::from_vec(1, 1, 1, 4, vec![1.0, 1.0, 1.0, 1.0]);
        let gx = relu_backward(&x, &gy);
        assert_eq!(gx.data, vec![0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn maxpool_selects_maximum_and_routes_gradient() {
        let mut x = Tensor::zeros(1, 2, 2, 2);
        x.data = vec![1., 5., 2., 3., 0., -1., 4., 2.];
        let (y, arg) = maxpool2(&x);
        assert_eq!(y.shape(), (1, 1, 1, 1));
        assert_eq!(y.data, vec![5.0]);
        assert_eq!(arg, vec![1]);
        let gy = Tensor::from_vec(1, 1, 1, 1, vec![3.0]);
        let gx = maxpool2_backward((1, 2, 2, 2), &arg, &gy);
        assert_eq!(gx.data, vec![0., 3., 0., 0., 0., 0., 0., 0.]);
    }

    #[test]
    fn upsample_replicates_and_backward_sums() {
        let x = Tensor::from_vec(1, 1, 1, 2, vec![1.0, 2.0]);
        let y = upsample2(&x);
        assert_eq!(y.shape(), (1, 2, 2, 4));
        // Every child of source voxel 0 is 1.0, of voxel 1 is 2.0.
        for z in 0..2 {
            for yy in 0..2 {
                assert_eq!(y.get(0, z, yy, 0), 1.0);
                assert_eq!(y.get(0, z, yy, 3), 2.0);
            }
        }
        let gy = Tensor::from_vec(1, 2, 2, 4, vec![1.0; 16]);
        let gx = upsample2_backward(&gy);
        assert_eq!(gx.data, vec![8.0, 8.0]);
    }

    #[test]
    fn pool_then_upsample_preserves_shape() {
        let x = Tensor::zeros(3, 4, 4, 4);
        let (p, _) = maxpool2(&x);
        let u = upsample2(&p);
        assert_eq!(u.shape(), x.shape());
    }

    #[test]
    #[should_panic(expected = "even dims")]
    fn odd_dims_rejected_by_pool() {
        let x = Tensor::zeros(1, 3, 4, 4);
        let _ = maxpool2(&x);
    }
}
