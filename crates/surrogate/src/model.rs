//! The end-to-end surrogate: particles in, predicted particles out.

use crate::encode::{decode_fields, encode_fields};
use crate::gibbs::grid_to_particles;
use crate::voxel::{particles_to_grid, GasParticle, VoxelGrid};
use fdps::Vec3;
use rand::Rng;
use unet::json::{parse_json, Json};
use unet::{Tensor, Trainer, UNet3d, UNetConfig};

/// Document tag of [`SurrogateModel::to_json`] weights files.
pub const WEIGHTS_FORMAT: &str = "asura-surrogate-model";

/// Surrogate hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct SurrogateConfig {
    /// Voxels per edge (64 in the paper; tests use smaller cubes).
    pub grid_n: usize,
    /// Region side \[pc\] (60 in the paper).
    pub side: f64,
    /// U-Net width.
    pub base_features: usize,
    /// Weight init seed.
    pub seed: u64,
}

impl Default for SurrogateConfig {
    fn default() -> Self {
        SurrogateConfig {
            grid_n: 64,
            side: 60.0,
            base_features: 8,
            seed: 0,
        }
    }
}

/// The trained model plus the conversion pipeline around it.
pub struct SurrogateModel {
    pub config: SurrogateConfig,
    pub net: UNet3d,
}

impl SurrogateModel {
    pub fn new(config: SurrogateConfig) -> Self {
        let net = UNet3d::new(
            &UNetConfig {
                in_channels: 8,
                out_channels: 8,
                base_features: config.base_features,
            },
            config.seed,
        );
        SurrogateModel { config, net }
    }

    /// Wrap an externally trained network.
    pub fn with_net(config: SurrogateConfig, net: UNet3d) -> Self {
        assert_eq!(net.config.in_channels, 8);
        assert_eq!(net.config.out_channels, 8);
        SurrogateModel { config, net }
    }

    /// Grid covering the SN region centred at `center`.
    pub fn region_grid(&self, center: Vec3) -> VoxelGrid {
        VoxelGrid::centered(center, self.config.side, self.config.grid_n)
    }

    /// Raw tensor-level inference.
    pub fn infer(&self, input: &Tensor) -> Tensor {
        self.net.forward(input)
    }

    /// The full pipeline of paper Fig. 3: particles → voxels → U-Net →
    /// voxels → Gibbs-sampled particles. The output has exactly the input's
    /// particle count with recycled IDs (mass conservation by construction).
    pub fn predict_particles<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        center: Vec3,
        particles: &[GasParticle],
    ) -> Vec<GasParticle> {
        if particles.is_empty() {
            return Vec::new();
        }
        let grid = self.region_grid(center);
        let fields = particles_to_grid(grid, particles);
        let encoded = encode_fields(&fields);
        let predicted = self.infer(&encoded);
        let out_fields = decode_fields(&predicted, grid);
        let ids: Vec<u64> = particles.iter().map(|p| p.id).collect();
        let mut out = grid_to_particles(rng, &out_fields, particles.len(), &ids, 30, 1);
        // Rescale masses so the region's mass is exactly conserved even if
        // the network hallucinates density (the paper guarantees this by
        // particle-count conservation; we enforce it by total mass too).
        let m_in: f64 = particles.iter().map(|p| p.mass).sum();
        let m_out: f64 = out.iter().map(|p| p.mass).sum();
        if m_out > 0.0 {
            let scale = m_in / m_out;
            for p in out.iter_mut() {
                p.mass *= scale;
            }
        } else {
            let equal = m_in / out.len() as f64;
            for p in out.iter_mut() {
                p.mass = equal;
            }
        }
        out
    }

    /// Train on encoded samples; returns per-epoch mean losses.
    pub fn train(&mut self, samples: &[unet::TrainSample], epochs: usize, lr: f64) -> Vec<f64> {
        let net = std::mem::replace(
            &mut self.net,
            UNet3d::new(
                &UNetConfig {
                    in_channels: 8,
                    out_channels: 8,
                    base_features: self.config.base_features,
                },
                self.config.seed,
            ),
        );
        let mut trainer = Trainer::new(net, lr);
        let mut losses = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            losses.push(trainer.epoch(samples));
        }
        self.net = trainer.net;
        losses
    }

    /// Serialize the model as a self-describing weights document (the
    /// ONNX-interchange stand-in): a `asura-surrogate-model` envelope
    /// carrying the pipeline hyperparameters (voxel grid, region side,
    /// width, seed), the network weights, and an FNV-1a checksum of the
    /// embedded network document so corruption is detected on load.
    /// Float rendering is shortest-roundtrip, so save → load is bit-exact.
    pub fn to_json(&self) -> String {
        let net = self.net.to_json();
        let sum = fnv1a(net.as_bytes());
        format!(
            "{{\"format\":\"{WEIGHTS_FORMAT}\",\"grid_n\":{},\"side\":{},\
             \"base_features\":{},\"seed\":\"{}\",\"checksum\":\"fnv1a:{sum:016x}\",\
             \"net\":{net}}}",
            self.config.grid_n, self.config.side, self.config.base_features, self.config.seed,
        )
    }

    /// Load a [`SurrogateModel::to_json`] document. Every failure mode —
    /// unparsable text, a foreign document, wrong channel counts, damaged
    /// weights — is an `Err`, never a panic: this is the path untrusted
    /// on-disk weights files come through.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = parse_json(text).map_err(|e| format!("surrogate weights: {e}"))?;
        match v.get("format")? {
            Json::Str(f) if f == WEIGHTS_FORMAT => {}
            other => {
                return Err(format!(
                    "surrogate weights: not a {WEIGHTS_FORMAT} document (format {other:?})"
                ))
            }
        }
        let grid_n = v.get("grid_n")?.as_usize()?;
        if grid_n == 0 {
            return Err("surrogate weights: grid_n must be positive".into());
        }
        let side = match v.get("side")? {
            Json::Num(s) if s.is_finite() && *s > 0.0 => *s,
            other => {
                return Err(format!(
                    "surrogate weights: side must be a positive number, got {other:?}"
                ))
            }
        };
        let base_features = v.get("base_features")?.as_usize()?;
        let seed = match v.get("seed")? {
            Json::Str(s) => s
                .parse::<u64>()
                .map_err(|e| format!("surrogate weights: bad seed `{s}`: {e}"))?,
            other => {
                return Err(format!(
                    "surrogate weights: seed must be a decimal string, got {other:?}"
                ))
            }
        };
        let net = UNet3d::from_json_value(v.get("net")?)?;
        // The checksum covers the canonical re-rendering of the parsed
        // network: bit-exact float formatting makes it equal to the stored
        // bytes for an intact file, while any flipped digit surfaces here.
        let stored = match v.get("checksum")? {
            Json::Str(s) => s
                .strip_prefix("fnv1a:")
                .and_then(|h| u64::from_str_radix(h, 16).ok())
                .ok_or_else(|| format!("surrogate weights: bad checksum `{s}`"))?,
            other => {
                return Err(format!(
                    "surrogate weights: checksum must be a string, got {other:?}"
                ))
            }
        };
        let computed = fnv1a(net.to_json().as_bytes());
        if stored != computed {
            return Err(format!(
                "surrogate weights: checksum mismatch (stored {stored:016x}, \
                 computed {computed:016x})"
            ));
        }
        if net.config.in_channels != 8 || net.config.out_channels != 8 {
            return Err(format!(
                "surrogate weights: network must be 8-in/8-out (the encode/decode \
                 channel contract), got {}-in/{}-out",
                net.config.in_channels, net.config.out_channels
            ));
        }
        if net.config.base_features != base_features {
            return Err(format!(
                "surrogate weights: envelope says base_features {base_features} but the \
                 network was built with {}",
                net.config.base_features
            ));
        }
        Ok(SurrogateModel {
            config: SurrogateConfig {
                grid_n,
                side,
                base_features,
                seed,
            },
            net,
        })
    }
}

/// FNV-1a 64-bit checksum (the same discipline as the snapshot codecs).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_cfg() -> SurrogateConfig {
        SurrogateConfig {
            grid_n: 8,
            side: 60.0,
            base_features: 2,
            seed: 3,
        }
    }

    fn region_particles(n: usize, seed: u64) -> Vec<GasParticle> {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        (0..n)
            .map(|i| GasParticle {
                pos: Vec3::new(
                    rng.gen_range(-25.0..25.0),
                    rng.gen_range(-25.0..25.0),
                    rng.gen_range(-25.0..25.0),
                ),
                vel: Vec3::new(
                    rng.gen_range(-5.0..5.0),
                    rng.gen_range(-5.0..5.0),
                    rng.gen_range(-5.0..5.0),
                ),
                mass: 1.0,
                temp: 100.0,
                h: 3.0,
                id: i as u64,
            })
            .collect()
    }

    #[test]
    fn pipeline_conserves_count_ids_and_mass() {
        let model = SurrogateModel::new(small_cfg());
        let parts = region_particles(200, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let out = model.predict_particles(&mut rng, Vec3::ZERO, &parts);
        assert_eq!(out.len(), parts.len());
        let in_ids: Vec<u64> = parts.iter().map(|p| p.id).collect();
        let out_ids: Vec<u64> = out.iter().map(|p| p.id).collect();
        assert_eq!(in_ids, out_ids);
        let m_in: f64 = parts.iter().map(|p| p.mass).sum();
        let m_out: f64 = out.iter().map(|p| p.mass).sum();
        assert!((m_out / m_in - 1.0).abs() < 1e-9);
    }

    #[test]
    fn predicted_particles_stay_inside_the_region() {
        let model = SurrogateModel::new(small_cfg());
        let parts = region_particles(100, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let out = model.predict_particles(&mut rng, Vec3::ZERO, &parts);
        for p in &out {
            assert!(p.pos.x.abs() <= 30.0 + 1e-9);
            assert!(p.pos.y.abs() <= 30.0 + 1e-9);
            assert!(p.pos.z.abs() <= 30.0 + 1e-9);
            assert!(p.temp >= 1.0);
            assert!(p.h > 0.0);
        }
    }

    #[test]
    fn empty_region_returns_empty() {
        let model = SurrogateModel::new(small_cfg());
        let mut rng = StdRng::seed_from_u64(5);
        assert!(model
            .predict_particles(&mut rng, Vec3::ZERO, &[])
            .is_empty());
    }

    #[test]
    fn training_on_sedov_data_reduces_loss() {
        let mut model = SurrogateModel::new(small_cfg());
        let mut rng = StdRng::seed_from_u64(6);
        let setup = crate::training::TrainingSetup {
            grid_n: 8,
            ..Default::default()
        };
        let data = crate::training::make_dataset(&mut rng, &setup, 2);
        let losses = model.train(&data, 25, 1e-2);
        let first = losses[0];
        let last = *losses.last().unwrap();
        assert!(
            last < first * 0.8,
            "training should reduce loss: {first} -> {last}"
        );
    }

    #[test]
    fn weights_document_roundtrips_bit_exactly() {
        let model = SurrogateModel::new(small_cfg());
        let json = model.to_json();
        let back = SurrogateModel::from_json(&json).expect("roundtrip");
        assert_eq!(back.config.grid_n, model.config.grid_n);
        assert_eq!(back.config.side, model.config.side);
        assert_eq!(back.config.base_features, model.config.base_features);
        assert_eq!(back.config.seed, model.config.seed);
        // Bit-exact: re-serializing reproduces the document verbatim.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn foreign_and_wrong_channel_documents_are_rejected() {
        assert!(SurrogateModel::from_json("not json").is_err());
        assert!(SurrogateModel::from_json("{\"format\":\"something-else\"}").is_err());
        // A bare network document (no envelope) must not load either.
        let net = SurrogateModel::new(small_cfg()).net.to_json();
        assert!(SurrogateModel::from_json(&net).is_err());
    }

    #[test]
    fn offset_region_center_is_respected() {
        let model = SurrogateModel::new(small_cfg());
        let center = Vec3::new(1000.0, -500.0, 30.0);
        let parts: Vec<GasParticle> = region_particles(80, 7)
            .into_iter()
            .map(|mut p| {
                p.pos += center;
                p
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(8);
        let out = model.predict_particles(&mut rng, center, &parts);
        for p in &out {
            assert!(
                (p.pos - center).norm() < 60.0,
                "particle strayed: {:?}",
                p.pos
            );
        }
    }
}
