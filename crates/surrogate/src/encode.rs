//! Field ↔ tensor encoding (paper §3.3).
//!
//! "We take the logarithm of the physical quantities before inputting the
//! U-Net. For the three velocity fields, we divided each of them into two
//! data cubes, one for pixels with positive velocities and another for
//! those with negative velocities, and take the logarithm of their absolute
//! values. We thus input a total of eight data cubes."

use crate::voxel::VoxelFields;
use unet::Tensor;

/// Floor inserted before logarithms so empty voxels stay finite.
pub const LOG_FLOOR: f64 = 1e-10;

/// Physical ceiling on decoded velocities \[pc/Myr\] (~3x10^4 km/s, beyond
/// any SN ejecta): keeps an undertrained network from injecting absurd
/// kinetic energy into the simulation.
pub const V_CEIL: f64 = 3.0e4;

/// Physical ceiling on decoded temperatures \[K\].
pub const T_CEIL: f64 = 1.0e10;

/// Encode the five physical fields into the eight-channel tensor:
/// `[log rho, log T, log v_x^+, log v_x^-, log v_y^+, log v_y^-,
///   log v_z^+, log v_z^-]`.
pub fn encode_fields(fields: &VoxelFields) -> Tensor {
    let n = fields.grid.n;
    let len = n * n * n;
    let mut t = Tensor::zeros(8, n, n, n);
    for f in 0..len {
        t.data[f] = (fields.density[f].max(LOG_FLOOR)).log10() as f32;
        t.data[len + f] = (fields.temperature[f].max(LOG_FLOOR)).log10() as f32;
        for a in 0..3 {
            let v = fields.vel[a][f];
            let (pos, neg) = if v >= 0.0 { (v, 0.0) } else { (0.0, -v) };
            t.data[(2 + 2 * a) * len + f] = (pos.max(LOG_FLOOR)).log10() as f32;
            t.data[(3 + 2 * a) * len + f] = (neg.max(LOG_FLOOR)).log10() as f32;
        }
    }
    t
}

/// Decode a five-channel prediction `[log rho, log T, (log v+ , log v-) x3]`
/// — the network output uses the same eight-channel layout as the input —
/// back into physical fields. Negative densities/temperatures cannot occur
/// by construction.
pub fn decode_fields(t: &Tensor, grid: crate::voxel::VoxelGrid) -> VoxelFields {
    assert_eq!(t.c, 8, "decoder expects the 8-channel layout");
    assert_eq!(t.d, grid.n);
    let n = grid.n;
    let len = n * n * n;
    let mut out = VoxelFields::zeros(grid);
    let floor = LOG_FLOOR as f32;
    for f in 0..len {
        let rho = 10f64.powf(t.data[f] as f64);
        out.density[f] = if (t.data[f] - floor.log10()).abs() < 0.5 {
            0.0
        } else {
            rho
        };
        out.temperature[f] = 10f64.powf(t.data[len + f] as f64).min(T_CEIL);
        for a in 0..3 {
            let vp = 10f64.powf(t.data[(2 + 2 * a) * len + f] as f64).min(V_CEIL);
            let vn = 10f64.powf(t.data[(3 + 2 * a) * len + f] as f64).min(V_CEIL);
            let vp = if vp <= LOG_FLOOR * 10.0 { 0.0 } else { vp };
            let vn = if vn <= LOG_FLOOR * 10.0 { 0.0 } else { vn };
            out.vel[a][f] = vp - vn;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::voxel::VoxelGrid;
    use fdps::Vec3;

    fn fields_with(n: usize, rho: f64, temp: f64, v: [f64; 3]) -> VoxelFields {
        let grid = VoxelGrid::centered(Vec3::ZERO, 60.0, n);
        let mut f = VoxelFields::zeros(grid);
        for i in 0..n * n * n {
            f.density[i] = rho;
            f.temperature[i] = temp;
            #[allow(clippy::needless_range_loop)]
            for a in 0..3 {
                f.vel[a][i] = v[a];
            }
        }
        f
    }

    #[test]
    fn eight_channels_produced() {
        let f = fields_with(4, 1.0, 100.0, [1.0, -2.0, 0.0]);
        let t = encode_fields(&f);
        assert_eq!(t.shape(), (8, 4, 4, 4));
    }

    #[test]
    fn roundtrip_recovers_fields() {
        let f = fields_with(4, 2.5, 3.0e6, [12.0, -7.5, 0.0]);
        let t = encode_fields(&f);
        let back = decode_fields(&t, f.grid);
        for i in 0..64 {
            assert!((back.density[i] / 2.5 - 1.0).abs() < 1e-5);
            assert!((back.temperature[i] / 3.0e6 - 1.0).abs() < 1e-5);
            assert!((back.vel[0][i] - 12.0).abs() < 1e-3);
            assert!((back.vel[1][i] + 7.5).abs() < 1e-3);
            assert!(back.vel[2][i].abs() < 1e-6, "v_z = {}", back.vel[2][i]);
        }
    }

    #[test]
    fn velocity_sign_splitting_is_exclusive() {
        let f = fields_with(4, 1.0, 10.0, [5.0, -5.0, 0.0]);
        let t = encode_fields(&f);
        let len = 64;
        // v_x > 0: positive channel holds log10(5), negative the floor.
        assert!((t.data[2 * len] - 5f32.log10()).abs() < 1e-5);
        assert!((t.data[3 * len] - (LOG_FLOOR as f32).log10()).abs() < 1e-4);
        // v_y < 0: reversed.
        assert!((t.data[4 * len] - (LOG_FLOOR as f32).log10()).abs() < 1e-4);
        assert!((t.data[5 * len] - 5f32.log10()).abs() < 1e-5);
    }

    #[test]
    fn dynamic_range_is_compressed() {
        // The paper's motivation: six orders of magnitude in temperature
        // become a factor ~2 in encoded space.
        let cold = fields_with(4, 1.0, 10.0, [0.0; 3]);
        let hot = fields_with(4, 1.0, 1.0e7, [0.0; 3]);
        let tc = encode_fields(&cold).data[64];
        let th = encode_fields(&hot).data[64];
        assert!((th - tc).abs() < 10.0, "encoded span {}", th - tc);
        assert!((th - 7.0).abs() < 1e-4);
        assert!((tc - 1.0).abs() < 1e-4);
    }

    #[test]
    fn decoded_velocities_are_clamped_to_physical_bounds() {
        // A hostile tensor (huge logits, as an untrained net can emit)
        // must decode to bounded fields.
        let grid = VoxelGrid::centered(Vec3::ZERO, 60.0, 4);
        let mut t = unet::Tensor::zeros(8, 4, 4, 4);
        t.data.iter_mut().for_each(|v| *v = 30.0); // 10^30 everywhere
        let f = decode_fields(&t, grid);
        for i in 0..64 {
            assert!(f.temperature[i] <= T_CEIL);
            for a in 0..3 {
                assert!(f.vel[a][i].abs() <= V_CEIL);
            }
        }
    }

    #[test]
    fn empty_voxels_stay_finite() {
        let grid = VoxelGrid::centered(Vec3::ZERO, 60.0, 4);
        let f = VoxelFields::zeros(grid);
        let t = encode_fields(&f);
        assert!(t.data.iter().all(|v| v.is_finite()));
        let back = decode_fields(&t, grid);
        assert!(back.density.iter().all(|&d| d == 0.0 || d.is_finite()));
        assert!(back.vel[0].iter().all(|&v| v == 0.0));
    }
}
