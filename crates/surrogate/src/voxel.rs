//! Particle → voxel mapping with SPH kernel weights and Shepard
//! normalization (paper §3.3: "mapping gas particles into voxels using the
//! SPH kernel convolution and the Shepard algorithm").

use fdps::Vec3;
use sph::kernel::{CubicSpline, SphKernel};

/// A gas particle entering or leaving the surrogate pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GasParticle {
    pub pos: Vec3,
    pub vel: Vec3,
    pub mass: f64,
    /// Temperature \[K\].
    pub temp: f64,
    /// Smoothing length \[pc\].
    pub h: f64,
    /// Particle identifier (the main nodes replace particles by ID,
    /// paper §3.2 step 4).
    pub id: u64,
}

/// The cubic voxel grid of one SN region.
#[derive(Debug, Clone, Copy)]
pub struct VoxelGrid {
    /// Voxels per edge (64 in the paper).
    pub n: usize,
    /// Physical edge length \[pc\] (60 in the paper).
    pub side: f64,
    /// Low corner of the cube.
    pub origin: Vec3,
}

impl VoxelGrid {
    /// Grid centred on `center`.
    pub fn centered(center: Vec3, side: f64, n: usize) -> Self {
        VoxelGrid {
            n,
            side,
            origin: center - Vec3::splat(side * 0.5),
        }
    }

    #[inline]
    pub fn voxel_size(&self) -> f64 {
        self.side / self.n as f64
    }

    #[inline]
    pub fn voxel_volume(&self) -> f64 {
        let d = self.voxel_size();
        d * d * d
    }

    /// Centre of voxel `(i, j, k)`.
    #[inline]
    pub fn voxel_center(&self, i: usize, j: usize, k: usize) -> Vec3 {
        let d = self.voxel_size();
        self.origin
            + Vec3::new(
                (i as f64 + 0.5) * d,
                (j as f64 + 0.5) * d,
                (k as f64 + 0.5) * d,
            )
    }

    #[inline]
    pub fn flat(&self, i: usize, j: usize, k: usize) -> usize {
        (k * self.n + j) * self.n + i
    }

    /// Voxel containing `p`, or None if outside.
    pub fn voxel_of(&self, p: Vec3) -> Option<(usize, usize, usize)> {
        let d = self.voxel_size();
        let rel = p - self.origin;
        let (i, j, k) = (
            (rel.x / d).floor() as i64,
            (rel.y / d).floor() as i64,
            (rel.z / d).floor() as i64,
        );
        let nn = self.n as i64;
        if i < 0 || j < 0 || k < 0 || i >= nn || j >= nn || k >= nn {
            None
        } else {
            Some((i as usize, j as usize, k as usize))
        }
    }
}

/// The five physical fields on the grid (paper §3.3: "density, temperature,
/// and velocity in three directions"), flat arrays of length `n^3`.
#[derive(Debug, Clone)]
pub struct VoxelFields {
    pub grid: VoxelGrid,
    pub density: Vec<f64>,
    pub temperature: Vec<f64>,
    pub vel: [Vec<f64>; 3],
}

impl VoxelFields {
    pub fn zeros(grid: VoxelGrid) -> Self {
        let len = grid.n * grid.n * grid.n;
        VoxelFields {
            grid,
            density: vec![0.0; len],
            temperature: vec![0.0; len],
            vel: [vec![0.0; len], vec![0.0; len], vec![0.0; len]],
        }
    }

    /// Total mass on the grid.
    pub fn total_mass(&self) -> f64 {
        self.density.iter().sum::<f64>() * self.grid.voxel_volume()
    }

    /// Trilinear interpolation of a field at `p` (clamped to the grid).
    pub fn sample(&self, field: &[f64], p: Vec3) -> f64 {
        let n = self.grid.n;
        let d = self.grid.voxel_size();
        let rel = (p - self.grid.origin) / d - Vec3::splat(0.5);
        let cl = |v: f64| v.clamp(0.0, (n - 1) as f64);
        let (fx, fy, fz) = (cl(rel.x), cl(rel.y), cl(rel.z));
        let (i0, j0, k0) = (fx as usize, fy as usize, fz as usize);
        let (i1, j1, k1) = (
            (i0 + 1).min(n - 1),
            (j0 + 1).min(n - 1),
            (k0 + 1).min(n - 1),
        );
        let (tx, ty, tz) = (fx - i0 as f64, fy - j0 as f64, fz - k0 as f64);
        let f = |i: usize, j: usize, k: usize| field[self.grid.flat(i, j, k)];
        let lerp = |a: f64, b: f64, t: f64| a + (b - a) * t;
        let c00 = lerp(f(i0, j0, k0), f(i1, j0, k0), tx);
        let c10 = lerp(f(i0, j1, k0), f(i1, j1, k0), tx);
        let c01 = lerp(f(i0, j0, k1), f(i1, j0, k1), tx);
        let c11 = lerp(f(i0, j1, k1), f(i1, j1, k1), tx);
        lerp(lerp(c00, c10, ty), lerp(c01, c11, ty), tz)
    }
}

/// Map particles to the grid: each particle deposits its mass and
/// mass-weighted fields over the voxels inside its kernel support, with
/// SPH kernel weights; the intensive fields (temperature, velocity) are then
/// Shepard-normalized by the accumulated weight.
pub fn particles_to_grid(grid: VoxelGrid, particles: &[GasParticle]) -> VoxelFields {
    let kernel = CubicSpline;
    let mut out = VoxelFields::zeros(grid);
    let len = grid.n * grid.n * grid.n;
    let mut weight = vec![0.0f64; len];
    let d = grid.voxel_size();

    for p in particles {
        // Support in voxels; at least the host voxel (NGP fallback) so no
        // particle's mass is lost even when h << voxel size.
        let support = kernel.support() * p.h;
        let r_vox = (support / d).ceil() as i64;
        let rel = (p.pos - grid.origin) / d;
        let (ci, cj, ck) = (
            rel.x.floor() as i64,
            rel.y.floor() as i64,
            rel.z.floor() as i64,
        );
        let nn = grid.n as i64;
        let mut wsum = 0.0;
        let mut touched: Vec<(usize, f64)> = Vec::new();
        for k in (ck - r_vox).max(0)..=(ck + r_vox).min(nn - 1) {
            for j in (cj - r_vox).max(0)..=(cj + r_vox).min(nn - 1) {
                for i in (ci - r_vox).max(0)..=(ci + r_vox).min(nn - 1) {
                    let c = grid.voxel_center(i as usize, j as usize, k as usize);
                    let r = (c - p.pos).norm();
                    let w = kernel.w(r, p.h);
                    if w > 0.0 {
                        touched.push((grid.flat(i as usize, j as usize, k as usize), w));
                        wsum += w;
                    }
                }
            }
        }
        if wsum == 0.0 {
            // Kernel narrower than a voxel: nearest-grid-point deposit.
            if let Some((i, j, k)) = grid.voxel_of(p.pos) {
                touched.push((grid.flat(i, j, k), 1.0));
                wsum = 1.0;
            } else {
                continue; // outside the cube entirely
            }
        }
        // Normalized per-particle weights conserve the particle's mass.
        for &(f, w) in &touched {
            let frac = w / wsum;
            let m = p.mass * frac;
            out.density[f] += m;
            out.temperature[f] += m * p.temp;
            out.vel[0][f] += m * p.vel.x;
            out.vel[1][f] += m * p.vel.y;
            out.vel[2][f] += m * p.vel.z;
            weight[f] += m;
        }
    }

    // Shepard normalization for intensive fields; mass -> density.
    let vol = grid.voxel_volume();
    #[allow(clippy::needless_range_loop)]
    for f in 0..len {
        if weight[f] > 0.0 {
            out.temperature[f] /= weight[f];
            for a in 0..3 {
                out.vel[a][f] /= weight[f];
            }
        }
        out.density[f] /= vol;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn test_grid() -> VoxelGrid {
        VoxelGrid::centered(Vec3::ZERO, 60.0, 16)
    }

    fn uniform_particles(n_side: usize, grid: &VoxelGrid, temp: f64) -> Vec<GasParticle> {
        let spacing = grid.side / n_side as f64;
        let mut out = Vec::new();
        for i in 0..n_side {
            for j in 0..n_side {
                for k in 0..n_side {
                    out.push(GasParticle {
                        pos: grid.origin
                            + Vec3::new(
                                (i as f64 + 0.5) * spacing,
                                (j as f64 + 0.5) * spacing,
                                (k as f64 + 0.5) * spacing,
                            ),
                        vel: Vec3::new(3.0, -1.0, 0.5),
                        mass: 1.0,
                        temp,
                        h: spacing,
                        id: (i * n_side * n_side + j * n_side + k) as u64,
                    });
                }
            }
        }
        out
    }

    #[test]
    fn grid_geometry() {
        let g = test_grid();
        assert_eq!(g.voxel_size(), 3.75);
        assert_eq!(g.voxel_of(Vec3::ZERO), Some((8, 8, 8)));
        assert_eq!(g.voxel_of(Vec3::splat(-29.9)), Some((0, 0, 0)));
        assert_eq!(g.voxel_of(Vec3::splat(31.0)), None);
        let c = g.voxel_center(8, 8, 8);
        assert!((c - Vec3::splat(1.875)).norm() < 1e-12);
    }

    #[test]
    fn mass_is_conserved_exactly() {
        let g = test_grid();
        let parts = uniform_particles(20, &g, 100.0);
        let fields = particles_to_grid(g, &parts);
        let total: f64 = parts.iter().map(|p| p.mass).sum();
        assert!(
            (fields.total_mass() / total - 1.0).abs() < 1e-9,
            "grid mass {} vs particles {total}",
            fields.total_mass()
        );
    }

    #[test]
    fn uniform_particles_give_uniform_density() {
        let g = test_grid();
        let parts = uniform_particles(32, &g, 100.0);
        let fields = particles_to_grid(g, &parts);
        let expected = parts.len() as f64 / (g.side * g.side * g.side);
        // Interior voxels (edges suffer kernel truncation).
        for k in 4..12 {
            for j in 4..12 {
                for i in 4..12 {
                    let rho = fields.density[g.flat(i, j, k)];
                    assert!(
                        (rho / expected - 1.0).abs() < 0.25,
                        "voxel ({i},{j},{k}): {rho} vs {expected}"
                    );
                }
            }
        }
    }

    #[test]
    fn intensive_fields_are_shepard_normalized() {
        // All particles share T and v: every touched voxel must read back
        // exactly those values regardless of local particle density.
        let g = test_grid();
        let mut parts = uniform_particles(16, &g, 1234.0);
        // Uneven masses: Shepard must still return the common T/v.
        let mut rng = StdRng::seed_from_u64(1);
        for p in parts.iter_mut() {
            p.mass = rng.gen_range(0.5..2.0);
        }
        let fields = particles_to_grid(g, &parts);
        for f in 0..fields.density.len() {
            if fields.density[f] > 0.0 {
                assert!((fields.temperature[f] - 1234.0).abs() < 1e-9);
                assert!((fields.vel[0][f] - 3.0).abs() < 1e-9);
                assert!((fields.vel[1][f] + 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn tiny_h_particles_fall_back_to_ngp() {
        let g = test_grid();
        let p = GasParticle {
            pos: Vec3::new(1.0, 2.0, 3.0),
            vel: Vec3::ZERO,
            mass: 5.0,
            temp: 50.0,
            h: 1e-6, // far below voxel size
            id: 0,
        };
        let fields = particles_to_grid(g, &[p]);
        assert!((fields.total_mass() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn particles_outside_the_cube_are_dropped() {
        let g = test_grid();
        let p = GasParticle {
            pos: Vec3::splat(100.0),
            vel: Vec3::ZERO,
            mass: 5.0,
            temp: 50.0,
            h: 1e-6,
            id: 0,
        };
        let fields = particles_to_grid(g, &[p]);
        assert_eq!(fields.total_mass(), 0.0);
    }

    #[test]
    fn trilinear_sampling_is_exact_for_linear_fields() {
        let g = test_grid();
        let mut fields = VoxelFields::zeros(g);
        // f(x,y,z) = x (linear) sampled at voxel centres.
        for k in 0..16 {
            for j in 0..16 {
                for i in 0..16 {
                    fields.density[g.flat(i, j, k)] = g.voxel_center(i, j, k).x;
                }
            }
        }
        for &x in &[-20.0, -5.5, 0.0, 13.25] {
            let got = fields.sample(&fields.density, Vec3::new(x, 1.0, -2.0));
            assert!((got - x).abs() < 1e-9, "x={x}: {got}");
        }
    }
}
