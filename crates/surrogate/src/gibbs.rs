//! Grid → particle conversion by Gibbs sampling (paper §3.3: "we convert it
//! back to particle data using Gibbs sampling, which is one of the Markov
//! chain Monte Carlo methods. Mass conservation is ensured by making the
//! number of created particles the same as the number of particles in the
//! input data.").
//!
//! The sampler is a systematic-scan Gibbs chain over voxel coordinates: in
//! turn, each axis index is redrawn from its exact 1-D conditional
//! `p(i | j, k) ∝ rho[i, j, k]`. Positions are jittered uniformly inside
//! the sampled voxel; velocities and temperature are trilinear samples of
//! the predicted fields.

use crate::voxel::{GasParticle, VoxelFields};
use fdps::Vec3;
use rand::Rng;

/// Draw `count` particles from `fields`. Particle masses are equal and sum
/// exactly to the grid mass; `ids` assigns the (recycled) particle IDs.
pub fn grid_to_particles<R: Rng + ?Sized>(
    rng: &mut R,
    fields: &VoxelFields,
    count: usize,
    ids: &[u64],
    burn_in: usize,
    thin: usize,
) -> Vec<GasParticle> {
    assert_eq!(ids.len(), count, "one id per created particle");
    if count == 0 {
        return Vec::new();
    }
    let total_mass = fields.total_mass();
    let n = fields.grid.n;
    let mass = total_mass / count as f64;
    let d = fields.grid.voxel_size();

    // Start the chain at the densest voxel (fast mixing start).
    let mut state = {
        let mut best = 0usize;
        for (f, &rho) in fields.density.iter().enumerate() {
            if rho > fields.density[best] {
                best = f;
            }
        }
        let i = best % n;
        let j = (best / n) % n;
        let k = best / (n * n);
        [i, j, k]
    };

    let mut cond = vec![0.0f64; n];
    let mut sweep = |rng: &mut R, state: &mut [usize; 3]| {
        for axis in 0..3 {
            // Conditional along `axis` with the other two fixed.
            let mut sum = 0.0;
            for (t, c) in cond.iter_mut().enumerate() {
                let (i, j, k) = match axis {
                    0 => (t, state[1], state[2]),
                    1 => (state[0], t, state[2]),
                    _ => (state[0], state[1], t),
                };
                let rho = fields.density[fields.grid.flat(i, j, k)].max(0.0);
                sum += rho;
                *c = sum;
            }
            if sum <= 0.0 {
                // Empty line: re-draw uniformly to escape.
                state[axis] = rng.gen_range(0..n);
                continue;
            }
            let u = rng.gen::<f64>() * sum;
            let idx = cond.partition_point(|&c| c < u).min(n - 1);
            state[axis] = idx;
        }
    };

    for _ in 0..burn_in {
        sweep(rng, &mut state);
    }

    let mut out = Vec::with_capacity(count);
    for id in ids {
        for _ in 0..thin.max(1) {
            sweep(rng, &mut state);
        }
        let jitter = Vec3::new(rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>());
        let pos = fields.grid.origin
            + Vec3::new(
                (state[0] as f64 + jitter.x) * d,
                (state[1] as f64 + jitter.y) * d,
                (state[2] as f64 + jitter.z) * d,
            );
        let vel = Vec3::new(
            fields.sample(&fields.vel[0], pos),
            fields.sample(&fields.vel[1], pos),
            fields.sample(&fields.vel[2], pos),
        );
        let temp = fields.sample(&fields.temperature, pos).max(1.0);
        let rho_here = fields.sample(&fields.density, pos).max(1e-12);
        // Smoothing length guess from the local density and equal mass.
        let h = 0.5 * (3.0 * 32.0 * mass / (4.0 * std::f64::consts::PI * rho_here)).powf(1.0 / 3.0);
        out.push(GasParticle {
            pos,
            vel,
            mass,
            temp,
            h,
            id: *id,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::voxel::VoxelGrid;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gaussian_fields(n: usize) -> VoxelFields {
        let grid = VoxelGrid::centered(Vec3::ZERO, 60.0, n);
        let mut f = VoxelFields::zeros(grid);
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    let c = grid.voxel_center(i, j, k);
                    let r2 = c.norm2();
                    let idx = grid.flat(i, j, k);
                    f.density[idx] = (-r2 / (2.0 * 100.0)).exp();
                    f.temperature[idx] = 100.0 + c.x;
                    f.vel[0][idx] = 0.1 * c.x;
                }
            }
        }
        f
    }

    #[test]
    fn particle_count_and_mass_conservation() {
        let fields = gaussian_fields(8);
        let mut rng = StdRng::seed_from_u64(1);
        let ids: Vec<u64> = (0..500).collect();
        let parts = grid_to_particles(&mut rng, &fields, 500, &ids, 20, 1);
        assert_eq!(parts.len(), 500);
        let m: f64 = parts.iter().map(|p| p.mass).sum();
        assert!((m / fields.total_mass() - 1.0).abs() < 1e-9);
        // IDs recycled verbatim.
        let got: Vec<u64> = parts.iter().map(|p| p.id).collect();
        assert_eq!(got, ids);
    }

    #[test]
    fn samples_concentrate_where_density_is_high() {
        let fields = gaussian_fields(8);
        let mut rng = StdRng::seed_from_u64(2);
        let ids: Vec<u64> = (0..4000).collect();
        let parts = grid_to_particles(&mut rng, &fields, 4000, &ids, 50, 2);
        let inner = parts.iter().filter(|p| p.pos.norm() < 15.0).count() as f64;
        let outer = parts.iter().filter(|p| p.pos.norm() > 25.0).count() as f64;
        assert!(
            inner > 2.0 * outer,
            "Gaussian blob: inner {inner} vs outer {outer}"
        );
    }

    #[test]
    fn marginal_distribution_matches_density() {
        // Collapse onto the x axis and compare with the analytic marginal.
        let fields = gaussian_fields(8);
        let mut rng = StdRng::seed_from_u64(3);
        let n_p = 20_000;
        let ids: Vec<u64> = (0..n_p as u64).collect();
        let parts = grid_to_particles(&mut rng, &fields, n_p, &ids, 50, 2);
        // Expected per-voxel-column mass fraction.
        let n = fields.grid.n;
        let mut expect = vec![0.0f64; n];
        for k in 0..n {
            for j in 0..n {
                #[allow(clippy::needless_range_loop)]
                for i in 0..n {
                    expect[i] += fields.density[fields.grid.flat(i, j, k)];
                }
            }
        }
        let tot: f64 = expect.iter().sum();
        let d = fields.grid.voxel_size();
        for e in expect.iter_mut() {
            *e /= tot;
        }
        let mut got = vec![0.0f64; n];
        for p in &parts {
            let i = (((p.pos.x - fields.grid.origin.x) / d) as usize).min(n - 1);
            got[i] += 1.0 / n_p as f64;
        }
        for i in 0..n {
            assert!(
                (got[i] - expect[i]).abs() < 0.03,
                "column {i}: {} vs {}",
                got[i],
                expect[i]
            );
        }
    }

    #[test]
    fn fields_are_interpolated_onto_particles() {
        let fields = gaussian_fields(8);
        let mut rng = StdRng::seed_from_u64(4);
        let ids: Vec<u64> = (0..300).collect();
        let parts = grid_to_particles(&mut rng, &fields, 300, &ids, 30, 1);
        for p in &parts {
            // T = 100 + x and v_x = 0.1 x by construction (within
            // interpolation error of a coarse grid).
            assert!(
                (p.temp - (100.0 + p.pos.x)).abs() < 8.0,
                "T {} at x {}",
                p.temp,
                p.pos.x
            );
            assert!((p.vel.x - 0.1 * p.pos.x).abs() < 0.8);
        }
    }

    #[test]
    fn zero_count_yields_empty() {
        let fields = gaussian_fields(4);
        let mut rng = StdRng::seed_from_u64(5);
        let parts = grid_to_particles(&mut rng, &fields, 0, &[], 10, 1);
        assert!(parts.is_empty());
    }

    #[test]
    fn empty_grid_still_produces_particles_with_zero_mass() {
        let grid = VoxelGrid::centered(Vec3::ZERO, 60.0, 4);
        let fields = VoxelFields::zeros(grid);
        let mut rng = StdRng::seed_from_u64(6);
        let ids = vec![0, 1, 2];
        let parts = grid_to_particles(&mut rng, &fields, 3, &ids, 5, 1);
        assert_eq!(parts.len(), 3);
        assert!(parts.iter().all(|p| p.mass == 0.0));
    }
}
