//! # surrogate — the deep-learning supernova surrogate pipeline
//!
//! Paper §3.3: the SPH particles in a (60 pc)^3 cube around an exploding
//! star are mapped onto a 64^3 voxel grid ("using the SPH kernel convolution
//! and the Shepard algorithm"), encoded into eight logarithmic channels
//! (density, temperature, and positive/negative cubes per velocity
//! component), pushed through a 3-D U-Net that predicts the state 0.1 Myr
//! after the explosion, decoded, and converted back into particles with
//! Gibbs sampling — creating exactly as many particles as went in, so mass
//! is conserved.
//!
//! The training set substitutes the authors' 1 M_sun-resolution SN
//! simulations with Sedov–Taylor blasts in `v^-4` turbulent boxes
//! ([`training`]), as documented in DESIGN.md.

#![forbid(unsafe_code)]

pub mod encode;
pub mod gibbs;
pub mod model;
pub mod training;
pub mod voxel;

pub use encode::{decode_fields, encode_fields};
pub use gibbs::grid_to_particles;
pub use model::{SurrogateConfig, SurrogateModel};
pub use voxel::{particles_to_grid, GasParticle, VoxelFields, VoxelGrid};
