//! Training-data generation.
//!
//! The authors train on SN explosion simulations at 1 M_sun resolution with
//! turbulent (`v^-4`) initial conditions (paper §3.3). Our substitute keeps
//! the same structure: the *input* is a turbulent ambient cube just before
//! the explosion; the *target* is the same cube 0.1 Myr later with the
//! Sedov–Taylor blast (the analytic limit of the simulated shell) stamped
//! onto it. See DESIGN.md for the substitution rationale.

use crate::encode::encode_fields;
use crate::voxel::{VoxelFields, VoxelGrid};
use astro::sedov::SedovTaylor;
use astro::turbulence::TurbulentField;
use fdps::Vec3;
use rand::Rng;
use unet::TrainSample;

/// Parameters of a synthetic SN training sample.
#[derive(Debug, Clone, Copy)]
pub struct TrainingSetup {
    /// Voxels per edge.
    pub grid_n: usize,
    /// Cube side \[pc\] (60 in the paper).
    pub side: f64,
    /// Ambient density range \[M_sun/pc^3\] sampled log-uniformly.
    pub rho0_range: (f64, f64),
    /// Ambient temperature \[K\].
    pub t_ambient: f64,
    /// Turbulent rms velocity \[pc/Myr\].
    pub v_rms: f64,
    /// Explosion energy [code units].
    pub e_sn: f64,
    /// Prediction horizon \[Myr\] (0.1 in the paper).
    pub horizon: f64,
}

impl Default for TrainingSetup {
    fn default() -> Self {
        TrainingSetup {
            grid_n: 16,
            side: 60.0,
            rho0_range: (0.1, 3.0),
            t_ambient: 100.0,
            v_rms: 5.0,
            e_sn: astro::units::E_SN,
            horizon: 0.1,
        }
    }
}

/// One synthetic explosion: (pre-explosion fields, post-0.1 Myr fields).
pub fn make_fields_pair<R: Rng + ?Sized>(
    rng: &mut R,
    setup: &TrainingSetup,
) -> (VoxelFields, VoxelFields) {
    let grid = VoxelGrid::centered(Vec3::ZERO, setup.side, setup.grid_n);
    let (lo, hi) = setup.rho0_range;
    let rho0 = lo * (hi / lo).powf(rng.gen::<f64>());
    let turb = TurbulentField::new(rng, setup.side, 4, 4.0, setup.v_rms);

    let mut input = VoxelFields::zeros(grid);
    let n = grid.n;
    for k in 0..n {
        for j in 0..n {
            for i in 0..n {
                let idx = grid.flat(i, j, k);
                let c = grid.voxel_center(i, j, k);
                let v = turb.velocity([c.x, c.y, c.z]);
                // Mild density structure correlated with the local speed
                // (compressive turbulence proxy).
                let speed2 = v[0] * v[0] + v[1] * v[1] + v[2] * v[2];
                let contrast = (0.5 * speed2 / (setup.v_rms * setup.v_rms).max(1e-12)).min(2.0);
                input.density[idx] = rho0 * (1.0 + contrast);
                input.temperature[idx] = setup.t_ambient;
                #[allow(clippy::needless_range_loop)]
                for a in 0..3 {
                    input.vel[a][idx] = v[a];
                }
            }
        }
    }

    // Target: Sedov blast centred in the cube superposed on the ambient.
    let blast = SedovTaylor::new(setup.e_sn, rho0);
    let t = setup.horizon;
    let rs = blast.shock_radius(t);
    let mut target = input.clone();
    for k in 0..n {
        for j in 0..n {
            for i in 0..n {
                let idx = grid.flat(i, j, k);
                let c = grid.voxel_center(i, j, k);
                let r = c.norm();
                if r < rs {
                    let rho = blast.density(r, t).max(1e-6);
                    let vr = blast.velocity(r, t);
                    let temp = blast.temperature(r, t, 0.6).clamp(10.0, 1e9);
                    target.density[idx] = rho;
                    target.temperature[idx] = temp;
                    let dir = if r > 1e-9 { c / r } else { Vec3::ZERO };
                    target.vel[0][idx] = vr * dir.x;
                    target.vel[1][idx] = vr * dir.y;
                    target.vel[2][idx] = vr * dir.z;
                }
            }
        }
    }
    (input, target)
}

/// Encode a fields pair into a U-Net training sample.
pub fn to_train_sample(input: &VoxelFields, target: &VoxelFields) -> TrainSample {
    TrainSample {
        input: encode_fields(input),
        target: encode_fields(target),
    }
}

/// Generate a dataset of `count` samples.
pub fn make_dataset<R: Rng + ?Sized>(
    rng: &mut R,
    setup: &TrainingSetup,
    count: usize,
) -> Vec<TrainSample> {
    (0..count)
        .map(|_| {
            let (i, t) = make_fields_pair(rng, setup);
            to_train_sample(&i, &t)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pair_has_hot_center_and_cold_ambient() {
        let mut rng = StdRng::seed_from_u64(1);
        let setup = TrainingSetup::default();
        let (input, target) = make_fields_pair(&mut rng, &setup);
        let n = setup.grid_n;
        let center = input.grid.flat(n / 2, n / 2, n / 2);
        let corner = input.grid.flat(0, 0, 0);
        assert!((input.temperature[center] - 100.0).abs() < 1e-9);
        assert!(
            target.temperature[center] > 1e4,
            "post-SN centre T = {}",
            target.temperature[center]
        );
        // Ambient corner untouched (shock hasn't reached 52 pc).
        assert_eq!(target.temperature[corner], input.temperature[corner]);
        assert_eq!(target.density[corner], input.density[corner]);
    }

    #[test]
    fn target_velocity_points_outward_in_the_shell() {
        let mut rng = StdRng::seed_from_u64(2);
        let setup = TrainingSetup::default();
        let (_, target) = make_fields_pair(&mut rng, &setup);
        let grid = target.grid;
        let n = setup.grid_n;
        let mut outward = 0;
        let mut total = 0;
        let blast_r = 12.0; // typical shock radius at 0.1 Myr
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    let c = grid.voxel_center(i, j, k);
                    let r = c.norm();
                    if r > 2.0 && r < blast_r {
                        let idx = grid.flat(i, j, k);
                        let v =
                            Vec3::new(target.vel[0][idx], target.vel[1][idx], target.vel[2][idx]);
                        total += 1;
                        if v.dot(c) > 0.0 {
                            outward += 1;
                        }
                    }
                }
            }
        }
        assert!(total > 20);
        assert!(
            outward as f64 > 0.85 * total as f64,
            "{outward}/{total} voxels point outward"
        );
    }

    #[test]
    fn dataset_samples_are_distinct_and_well_formed() {
        let mut rng = StdRng::seed_from_u64(3);
        let setup = TrainingSetup {
            grid_n: 8,
            ..Default::default()
        };
        let data = make_dataset(&mut rng, &setup, 3);
        assert_eq!(data.len(), 3);
        for s in &data {
            assert_eq!(s.input.shape(), (8, 8, 8, 8));
            assert_eq!(s.target.shape(), (8, 8, 8, 8));
            assert!(s.input.data.iter().all(|v| v.is_finite()));
            assert!(s.target.data.iter().all(|v| v.is_finite()));
        }
        assert_ne!(data[0].input.data, data[1].input.data);
    }

    #[test]
    fn denser_ambient_means_smaller_shock() {
        let setup_thin = TrainingSetup {
            rho0_range: (0.05, 0.051),
            ..Default::default()
        };
        let setup_dense = TrainingSetup {
            rho0_range: (5.0, 5.01),
            ..Default::default()
        };
        let count_hot = |setup: &TrainingSetup, seed: u64| -> usize {
            let mut rng = StdRng::seed_from_u64(seed);
            let (_, t) = make_fields_pair(&mut rng, setup);
            t.temperature.iter().filter(|&&x| x > 1e4).count()
        };
        assert!(count_hot(&setup_thin, 4) > count_hot(&setup_dense, 4));
    }
}
