//! # galactic-ic — Milky-Way-like initial conditions
//!
//! Stand-in for the authors' AGAMA setup (paper §4.2): a three-component
//! Model MW with a broken power-law (NFW) dark-matter halo, an exponential
//! stellar disk with epicyclic velocity structure, and a vertically
//! hydrostatic gas disk generated with the potential method (Wang et al.
//! 2010). Component masses follow the paper: `1.1e12 M_sun` DM,
//! `5.4e10 M_sun` stars, `1.2e10 M_sun` gas, and the density concentrates
//! strongly toward the centre and midplane — the property that stresses the
//! domain decomposition in Figure 4.
//!
//! Like the authors' modified AGAMA, generation is parallel and
//! deterministic: particles are produced in independently seeded chunks.

#![forbid(unsafe_code)]

pub mod disk;
pub mod halo;
pub mod model;
pub mod potential;

pub use model::{GalaxyModel, GalaxyRealization, ParticleSet};
pub use potential::CompositePotential;
