//! Galaxy model presets and parallel realization.

use crate::disk::{sample_gas, sample_star, DiskParams};
use crate::halo::sample_halo;
use crate::potential::{CompositePotential, MiyamotoNagaiDisk, NfwHalo};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// A three-component galaxy model (paper §4.2, Table 2).
#[derive(Debug, Clone, Copy)]
pub struct GalaxyModel {
    pub name: &'static str,
    pub m_dm: f64,
    pub m_star: f64,
    pub m_gas: f64,
    pub halo_rs: f64,
    pub halo_rcut: f64,
    pub star_disk: DiskParams,
    pub gas_disk: DiskParams,
    /// Isothermal gas sound speed \[pc/Myr\] (~10^4 K warm ISM).
    pub gas_cs: f64,
}

impl GalaxyModel {
    /// Model MW: the paper's full Milky Way analogue
    /// (DM 1.1e12, stars 5.4e10, gas 1.2e10 M_sun).
    pub fn mw() -> Self {
        GalaxyModel {
            name: "MW",
            m_dm: 1.1e12,
            m_star: 5.4e10,
            m_gas: 1.2e10,
            halo_rs: 16_000.0,
            halo_rcut: 200_000.0,
            star_disk: DiskParams {
                r_scale: 2500.0,
                z_scale: 250.0,
                r_max: 25_000.0,
                sigma_r: 35.0,
            },
            gas_disk: DiskParams {
                r_scale: 5000.0,
                z_scale: 100.0,
                r_max: 30_000.0,
                sigma_r: 0.0,
            },
            gas_cs: 10.0,
        }
    }

    /// Model MW-small: 1/10 mass (paper §4.2).
    pub fn mw_small() -> Self {
        Self::scaled("MW-small", 0.1)
    }

    /// Model MW-mini: 1/100 mass (paper §4.2).
    pub fn mw_mini() -> Self {
        Self::scaled("MW-mini", 0.01)
    }

    /// Mass-scaled variant with sizes following `M^{1/3}` (fixed density).
    fn scaled(name: &'static str, f: f64) -> Self {
        let mut m = Self::mw();
        let lf = f.powf(1.0 / 3.0);
        m.name = name;
        m.m_dm *= f;
        m.m_star *= f;
        m.m_gas *= f;
        m.halo_rs *= lf;
        m.halo_rcut *= lf;
        for d in [&mut m.star_disk, &mut m.gas_disk] {
            d.r_scale *= lf;
            d.z_scale *= lf;
            d.r_max *= lf;
        }
        m.star_disk.sigma_r *= lf.sqrt() * 2.0; // crude sigma ~ sqrt(M/R)
        m
    }

    /// The analytic potential used for equilibrium velocities.
    pub fn potential(&self) -> CompositePotential {
        CompositePotential {
            halo: NfwHalo::from_mass(self.m_dm, self.halo_rs, self.halo_rcut),
            stellar_disk: MiyamotoNagaiDisk {
                mass: self.m_star,
                a: self.star_disk.r_scale,
                b: self.star_disk.z_scale,
            },
            gas_disk: MiyamotoNagaiDisk {
                mass: self.m_gas,
                a: self.gas_disk.r_scale,
                b: self.gas_disk.z_scale,
            },
        }
    }

    /// Realize the model with the given particle counts. Generation is
    /// chunked and each chunk independently seeded, so the result is
    /// deterministic *and* parallel (the authors' per-domain AGAMA).
    pub fn realize(
        &self,
        n_dm: usize,
        n_star: usize,
        n_gas: usize,
        seed: u64,
    ) -> GalaxyRealization {
        let pot = self.potential();
        let halo = pot.halo;

        let dm = parallel_chunks(n_dm, seed ^ 0xD00D, |rng, out: &mut ParticleSet, _| {
            let (p, v) = sample_halo(rng, &halo, 1);
            out.pos.push(p[0]);
            out.vel.push(v[0]);
        });
        let star_disk = self.star_disk;
        let stars = parallel_chunks(n_star, seed ^ 0x57A2, |rng, out, _| {
            let (p, v) = sample_star(rng, &star_disk, &pot);
            out.pos.push(p);
            out.vel.push(v);
        });
        let gas_disk = self.gas_disk;
        let cs = self.gas_cs;
        let gas = parallel_chunks(n_gas, seed ^ 0x6A5, |rng, out, _| {
            let (p, v) = sample_gas(rng, &gas_disk, &pot, cs);
            out.pos.push(p);
            out.vel.push(v);
        });

        GalaxyRealization {
            model: *self,
            m_dm_particle: if n_dm > 0 {
                self.m_dm / n_dm as f64
            } else {
                0.0
            },
            m_star_particle: if n_star > 0 {
                self.m_star / n_star as f64
            } else {
                0.0
            },
            m_gas_particle: if n_gas > 0 {
                self.m_gas / n_gas as f64
            } else {
                0.0
            },
            dm,
            stars,
            gas,
        }
    }
}

/// Positions and velocities of one component.
#[derive(Debug, Clone, Default)]
pub struct ParticleSet {
    pub pos: Vec<[f64; 3]>,
    pub vel: Vec<[f64; 3]>,
}

impl ParticleSet {
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }
}

/// A realized galaxy.
#[derive(Debug, Clone)]
pub struct GalaxyRealization {
    pub model: GalaxyModel,
    pub m_dm_particle: f64,
    pub m_star_particle: f64,
    pub m_gas_particle: f64,
    pub dm: ParticleSet,
    pub stars: ParticleSet,
    pub gas: ParticleSet,
}

fn parallel_chunks<F>(n: usize, seed: u64, f: F) -> ParticleSet
where
    F: Fn(&mut StdRng, &mut ParticleSet, usize) + Sync,
{
    const CHUNK: usize = 4096;
    let n_chunks = n.div_ceil(CHUNK);
    let chunks: Vec<ParticleSet> = (0..n_chunks)
        .into_par_iter()
        .map(|c| {
            let mut rng = StdRng::seed_from_u64(
                seed.wrapping_add(c as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let count = CHUNK.min(n - c * CHUNK);
            let mut out = ParticleSet::default();
            out.pos.reserve(count);
            out.vel.reserve(count);
            for i in 0..count {
                f(&mut rng, &mut out, c * CHUNK + i);
            }
            out
        })
        .collect();
    let mut all = ParticleSet::default();
    all.pos.reserve(n);
    all.vel.reserve(n);
    for c in chunks {
        all.pos.extend(c.pos);
        all.vel.extend(c.vel);
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn realization_counts_and_particle_masses() {
        let model = GalaxyModel::mw_mini();
        let r = model.realize(3000, 2000, 1000, 42);
        assert_eq!(r.dm.len(), 3000);
        assert_eq!(r.stars.len(), 2000);
        assert_eq!(r.gas.len(), 1000);
        assert!((r.m_dm_particle * 3000.0 / model.m_dm - 1.0).abs() < 1e-12);
        assert!((r.m_gas_particle * 1000.0 / model.m_gas - 1.0).abs() < 1e-12);
    }

    #[test]
    fn realization_is_deterministic() {
        let model = GalaxyModel::mw_mini();
        let a = model.realize(500, 500, 500, 7);
        let b = model.realize(500, 500, 500, 7);
        assert_eq!(a.dm.pos, b.dm.pos);
        assert_eq!(a.gas.vel, b.gas.vel);
        let c = model.realize(500, 500, 500, 8);
        assert_ne!(a.dm.pos, c.dm.pos);
    }

    #[test]
    fn mass_ratios_follow_the_paper() {
        let m = GalaxyModel::mw();
        assert!((m.m_dm / 1.1e12 - 1.0).abs() < 1e-12);
        assert!((m.m_star / 5.4e10 - 1.0).abs() < 1e-12);
        assert!((m.m_gas / 1.2e10 - 1.0).abs() < 1e-12);
        // Total ~1.2e12 (Table 1: M_tot = 1.2e12).
        let total = m.m_dm + m.m_star + m.m_gas;
        assert!((total / 1.2e12 - 1.0).abs() < 0.05);
        // Scaled models keep the ratios.
        let s = GalaxyModel::mw_small();
        assert!((s.m_dm / s.m_gas - m.m_dm / m.m_gas).abs() < 1e-6);
    }

    #[test]
    fn disk_components_are_disks_and_halo_is_round() {
        let model = GalaxyModel::mw_mini();
        let r = model.realize(4000, 4000, 2000, 1);
        let flatness = |set: &ParticleSet| -> f64 {
            let mut z2 = 0.0;
            let mut r2 = 0.0;
            for p in &set.pos {
                z2 += p[2] * p[2];
                r2 += p[0] * p[0] + p[1] * p[1];
            }
            (z2 / r2).sqrt()
        };
        assert!(flatness(&r.stars) < 0.2, "stellar disk flatness");
        assert!(flatness(&r.gas) < 0.2, "gas disk flatness");
        assert!(flatness(&r.dm) > 0.4, "halo roundness");
    }

    #[test]
    fn central_concentration_for_domain_decomposition() {
        // The property driving Fig. 4: most disk particles sit well inside
        // the truncation radius.
        let model = GalaxyModel::mw();
        let r = model.realize(0, 10_000, 0, 3);
        let inside = r
            .stars
            .pos
            .iter()
            .filter(|p| (p[0] * p[0] + p[1] * p[1]).sqrt() < 0.25 * model.star_disk.r_max)
            .count() as f64
            / r.stars.len() as f64;
        assert!(inside > 0.6, "only {inside} of stars inside quarter radius");
    }
}
