//! Dark-matter halo sampling.

use crate::potential::NfwHalo;
use astro::units::G;
use rand::Rng;

/// Sample `n` halo particles: positions from the NFW mass profile (inverse
/// CDF), isotropic Gaussian velocities with the local Jeans dispersion.
pub fn sample_halo<R: Rng + ?Sized>(
    rng: &mut R,
    halo: &NfwHalo,
    n: usize,
) -> (Vec<[f64; 3]>, Vec<[f64; 3]>) {
    let mut pos = Vec::with_capacity(n);
    let mut vel = Vec::with_capacity(n);
    for _ in 0..n {
        let r = halo.radius_of_mass_fraction(rng.gen::<f64>());
        let (x, y, z) = isotropic_direction(rng);
        pos.push([r * x, r * y, r * z]);
        let sigma = jeans_dispersion(halo, r);
        vel.push([gauss(rng) * sigma, gauss(rng) * sigma, gauss(rng) * sigma]);
    }
    (pos, vel)
}

/// 1-D velocity dispersion from the isotropic Jeans scaling
/// `sigma^2 ~ G M(<r) / (2 r)` — adequate for a stable halo realization.
pub fn jeans_dispersion(halo: &NfwHalo, r: f64) -> f64 {
    let r = r.max(1.0);
    (G * halo.enclosed_mass(r) / (2.0 * r)).sqrt()
}

/// Uniformly random unit vector.
pub fn isotropic_direction<R: Rng + ?Sized>(rng: &mut R) -> (f64, f64, f64) {
    let cos_t: f64 = rng.gen_range(-1.0..1.0);
    let sin_t = (1.0 - cos_t * cos_t).sqrt();
    let phi: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    (sin_t * phi.cos(), sin_t * phi.sin(), cos_t)
}

/// Standard normal via Box–Muller (keeps us inside the approved crate set).
pub fn gauss<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-300);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn halo() -> NfwHalo {
        NfwHalo::from_mass(1.1e12, 16_000.0, 200_000.0)
    }

    #[test]
    fn sampled_mass_profile_matches_analytic() {
        let h = halo();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 40_000;
        let (pos, _) = sample_halo(&mut rng, &h, n);
        for &r_test in &[5_000.0, 16_000.0, 50_000.0, 150_000.0] {
            let inside = pos
                .iter()
                .filter(|p| (p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt() < r_test)
                .count() as f64
                / n as f64;
            let expect = h.enclosed_mass(r_test) / h.enclosed_mass(h.r_cut);
            assert!(
                (inside - expect).abs() < 0.02,
                "r={r_test}: {inside} vs {expect}"
            );
        }
    }

    #[test]
    fn sampled_halo_is_isotropic() {
        let mut rng = StdRng::seed_from_u64(2);
        let (pos, _) = sample_halo(&mut rng, &halo(), 20_000);
        let mean: [f64; 3] = pos.iter().fold([0.0; 3], |mut a, p| {
            for k in 0..3 {
                a[k] += p[k] / 20_000.0;
            }
            a
        });
        let r_typ = 30_000.0;
        #[allow(clippy::needless_range_loop)]
        for k in 0..3 {
            assert!(mean[k].abs() < 0.05 * r_typ, "axis {k} mean {}", mean[k]);
        }
    }

    #[test]
    fn dispersion_peaks_at_intermediate_radius() {
        let h = halo();
        let s_in = jeans_dispersion(&h, 100.0);
        let s_mid = jeans_dispersion(&h, 20_000.0);
        let s_out = jeans_dispersion(&h, 190_000.0);
        assert!(s_mid > s_in, "NFW dispersion rises outward initially");
        assert!(s_mid > s_out * 0.8, "dispersion falls toward the edge");
        // Typical MW halo dispersion: tens to ~150 km/s scale (pc/Myr ~ km/s).
        assert!((30.0..250.0).contains(&s_mid), "sigma = {s_mid}");
    }

    #[test]
    fn gauss_has_unit_variance() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let (mut sum, mut sum2) = (0.0, 0.0);
        for _ in 0..n {
            let g = gauss(&mut rng);
            sum += g;
            sum2 += g * g;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn directions_cover_the_sphere() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut octants = [0usize; 8];
        for _ in 0..8000 {
            let (x, y, z) = isotropic_direction(&mut rng);
            let idx =
                ((x > 0.0) as usize) | (((y > 0.0) as usize) << 1) | (((z > 0.0) as usize) << 2);
            octants[idx] += 1;
            assert!((x * x + y * y + z * z - 1.0).abs() < 1e-12);
        }
        for (i, &c) in octants.iter().enumerate() {
            assert!((800..1200).contains(&c), "octant {i}: {c}");
        }
    }
}
