//! Stellar and gas disk sampling.
//!
//! The stellar disk is exponential in radius with a `sech^2`-like vertical
//! profile (scale height ~10% of the scale length, paper §4.2) and
//! near-circular orbits with epicyclic velocity dispersions. The gas disk
//! uses the potential method of Wang et al. (2010): the vertical structure
//! is the hydrostatic balance `rho(R, z) ∝ exp(-[Phi(R,z) - Phi(R,0)]/c_s^2)`
//! sampled by rejection, with pure rotation plus thermal support.

use crate::halo::gauss;
use crate::potential::CompositePotential;
use rand::Rng;

/// Parameters of one exponential disk component.
#[derive(Debug, Clone, Copy)]
pub struct DiskParams {
    /// Radial scale length \[pc\].
    pub r_scale: f64,
    /// Vertical scale height \[pc\].
    pub z_scale: f64,
    /// Truncation radius \[pc\].
    pub r_max: f64,
    /// Radial velocity dispersion at the solar radius \[pc/Myr\] (stars).
    pub sigma_r: f64,
}

/// Sample an exponential radial coordinate by inverse transform of the
/// cumulative surface density `1 - (1 + x) e^{-x}`.
pub fn sample_exponential_radius<R: Rng + ?Sized>(rng: &mut R, r_scale: f64, r_max: f64) -> f64 {
    let x_max = r_max / r_scale;
    let cdf_max = 1.0 - (1.0 + x_max) * (-x_max).exp();
    let target = rng.gen::<f64>() * cdf_max;
    // Bisect 1 - (1+x)e^-x = target.
    let (mut lo, mut hi) = (0.0f64, x_max);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if 1.0 - (1.0 + mid) * (-mid).exp() < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi) * r_scale
}

/// Sample a stellar disk particle: position and velocity.
pub fn sample_star<R: Rng + ?Sized>(
    rng: &mut R,
    disk: &DiskParams,
    pot: &CompositePotential,
) -> ([f64; 3], [f64; 3]) {
    let big_r = sample_exponential_radius(rng, disk.r_scale, disk.r_max);
    let phi: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    // sech^2 vertical profile: z = z0 * atanh(2u - 1).
    let u: f64 = rng.gen_range(1e-9..1.0 - 1e-9);
    let z = disk.z_scale * (2.0 * u - 1.0).atanh();

    let vc = pot.vcirc(big_r);
    // Dispersions falling exponentially with radius (sigma ∝ e^{-R/2Rd}).
    let sigma_r =
        disk.sigma_r * (-(big_r - 8000.0_f64.min(disk.r_max)) / (2.0 * disk.r_scale)).exp();
    let sigma_phi = sigma_r * 0.7;
    let sigma_z = sigma_r * 0.5;
    // Asymmetric drift: mean rotation lags circular speed slightly.
    let v_phi_mean = (vc * vc - 1.5 * sigma_r * sigma_r).max(0.0).sqrt();

    let v_r = gauss(rng) * sigma_r;
    let v_phi = v_phi_mean + gauss(rng) * sigma_phi;
    let v_z = gauss(rng) * sigma_z;

    let (c, s) = (phi.cos(), phi.sin());
    (
        [big_r * c, big_r * s, z],
        [v_r * c - v_phi * s, v_r * s + v_phi * c, v_z],
    )
}

/// Sample a gas particle with the potential method: rejection-sample `z`
/// from the hydrostatic profile at the particle's radius, circular rotation.
/// `cs` is the isothermal sound speed of the gas \[pc/Myr\].
pub fn sample_gas<R: Rng + ?Sized>(
    rng: &mut R,
    disk: &DiskParams,
    pot: &CompositePotential,
    cs: f64,
) -> ([f64; 3], [f64; 3]) {
    let big_r = sample_exponential_radius(rng, disk.r_scale, disk.r_max);
    let phi: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    let phi0 = pot.potential(big_r, 0.0);
    // Rejection sampling of exp(-(Phi(z)-Phi(0))/cs^2) against a uniform
    // envelope on |z| <= 6 cs^2 / g_typ, bounded by the disk scale height.
    let z_env = (disk.z_scale * 10.0).max(50.0);
    let z = loop {
        let zc: f64 = rng.gen_range(-z_env..z_env);
        let w = (-(pot.potential(big_r, zc) - phi0) / (cs * cs)).exp();
        if rng.gen::<f64>() < w {
            break zc;
        }
    };
    let vc = pot.vcirc(big_r);
    // Mild turbulent support on top of rotation.
    let sigma = 0.5 * cs;
    let v_r = gauss(rng) * sigma;
    let v_phi = vc + gauss(rng) * sigma;
    let v_z = gauss(rng) * sigma;
    let (c, s) = (phi.cos(), phi.sin());
    (
        [big_r * c, big_r * s, z],
        [v_r * c - v_phi * s, v_r * s + v_phi * c, v_z],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::potential::{MiyamotoNagaiDisk, NfwHalo};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mw_pot() -> CompositePotential {
        CompositePotential {
            halo: NfwHalo::from_mass(1.1e12, 16_000.0, 200_000.0),
            stellar_disk: MiyamotoNagaiDisk {
                mass: 5.4e10,
                a: 2500.0,
                b: 300.0,
            },
            gas_disk: MiyamotoNagaiDisk {
                mass: 1.2e10,
                a: 5000.0,
                b: 100.0,
            },
        }
    }

    fn stellar_disk() -> DiskParams {
        DiskParams {
            r_scale: 2500.0,
            z_scale: 250.0,
            r_max: 25_000.0,
            sigma_r: 35.0,
        }
    }

    #[test]
    fn exponential_radius_has_correct_median() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50_000;
        let rd = 2500.0;
        let mut radii: Vec<f64> = (0..n)
            .map(|_| sample_exponential_radius(&mut rng, rd, 25_000.0))
            .collect();
        radii.sort_by(f64::total_cmp);
        // Median of 1-(1+x)e^-x = 0.5 is x ~ 1.678.
        let median = radii[n / 2] / rd;
        assert!((median - 1.678).abs() < 0.05, "median x = {median}");
        assert!(radii.iter().all(|&r| r <= 25_000.0));
    }

    #[test]
    fn stellar_disk_is_thin_and_rotating() {
        let mut rng = StdRng::seed_from_u64(2);
        let pot = mw_pot();
        let disk = stellar_disk();
        let n = 20_000;
        let mut z_abs = 0.0;
        let mut r_mean = 0.0;
        let mut lz = 0.0;
        for _ in 0..n {
            let (p, v) = sample_star(&mut rng, &disk, &pot);
            z_abs += p[2].abs() / n as f64;
            r_mean += (p[0] * p[0] + p[1] * p[1]).sqrt() / n as f64;
            lz += (p[0] * v[1] - p[1] * v[0]) / n as f64;
        }
        // Scale height ~10% of the scale length (paper §4.2).
        assert!(
            z_abs < 0.25 * disk.r_scale,
            "mean |z| = {z_abs} too thick vs Rd {}",
            disk.r_scale
        );
        // Net rotation: Lz ~ R * vc > 0 and of the right order.
        let vc = pot.vcirc(r_mean);
        assert!(lz > 0.5 * r_mean * vc, "Lz {lz} vs R*vc {}", r_mean * vc);
    }

    #[test]
    fn gas_disk_is_thinner_when_colder() {
        let mut rng = StdRng::seed_from_u64(3);
        let pot = mw_pot();
        let disk = DiskParams {
            r_scale: 5000.0,
            z_scale: 100.0,
            r_max: 30_000.0,
            sigma_r: 0.0,
        };
        let measure = |rng: &mut StdRng, cs: f64| -> f64 {
            let n = 4000;
            (0..n)
                .map(|_| sample_gas(rng, &disk, &pot, cs).0[2].abs())
                .sum::<f64>()
                / n as f64
        };
        let cold = measure(&mut rng, 5.0);
        let warm = measure(&mut rng, 15.0);
        assert!(
            cold < warm,
            "colder gas must settle thinner: {cold} vs {warm}"
        );
    }

    #[test]
    fn gas_rotates_near_circular_speed() {
        let mut rng = StdRng::seed_from_u64(4);
        let pot = mw_pot();
        let disk = DiskParams {
            r_scale: 5000.0,
            z_scale: 100.0,
            r_max: 30_000.0,
            sigma_r: 0.0,
        };
        let n = 4000;
        let mut ratio = 0.0;
        for _ in 0..n {
            let (p, v) = sample_gas(&mut rng, &disk, &pot, 10.0);
            let big_r = (p[0] * p[0] + p[1] * p[1]).sqrt();
            let v_phi = (p[0] * v[1] - p[1] * v[0]) / big_r;
            ratio += v_phi / pot.vcirc(big_r) / n as f64;
        }
        assert!((ratio - 1.0).abs() < 0.05, "mean v_phi/v_c = {ratio}");
    }
}
