//! Analytic potentials used to set equilibrium velocities.

use astro::units::G;

/// NFW halo described by total mass within `r_cut` and scale radius.
#[derive(Debug, Clone, Copy)]
pub struct NfwHalo {
    /// Characteristic density \[M_sun/pc^3\].
    pub rho0: f64,
    /// Scale radius \[pc\].
    pub rs: f64,
    /// Truncation radius \[pc\].
    pub r_cut: f64,
}

impl NfwHalo {
    /// Build from a total mass inside `r_cut`.
    pub fn from_mass(m_total: f64, rs: f64, r_cut: f64) -> Self {
        let x = r_cut / rs;
        let mu = x.ln_1p() - x / (1.0 + x);
        let rho0 = m_total / (4.0 * std::f64::consts::PI * rs.powi(3) * mu);
        NfwHalo { rho0, rs, r_cut }
    }

    /// Density at radius `r` (`∝ r^-1` inside `rs`, `∝ r^-3` outside —
    /// the paper's "broken power-law").
    pub fn density(&self, r: f64) -> f64 {
        if r > self.r_cut {
            return 0.0;
        }
        let x = (r / self.rs).max(1e-12);
        self.rho0 / (x * (1.0 + x) * (1.0 + x))
    }

    /// Enclosed mass.
    pub fn enclosed_mass(&self, r: f64) -> f64 {
        let r = r.min(self.r_cut);
        let x = (r / self.rs).max(0.0);
        4.0 * std::f64::consts::PI * self.rho0 * self.rs.powi(3) * (x.ln_1p() - x / (1.0 + x))
    }

    /// Invert `M(<r) = frac * M(<r_cut)` by bisection.
    pub fn radius_of_mass_fraction(&self, frac: f64) -> f64 {
        let target = frac.clamp(0.0, 1.0) * self.enclosed_mass(self.r_cut);
        let (mut lo, mut hi) = (0.0f64, self.r_cut);
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if self.enclosed_mass(mid) < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

/// Miyamoto–Nagai disk potential (analytic stand-in for the stellar disk's
/// contribution to the rotation curve).
#[derive(Debug, Clone, Copy)]
pub struct MiyamotoNagaiDisk {
    pub mass: f64,
    /// Radial scale \[pc\].
    pub a: f64,
    /// Vertical scale \[pc\].
    pub b: f64,
}

impl MiyamotoNagaiDisk {
    /// Potential at cylindrical `(big_r, z)`.
    pub fn potential(&self, big_r: f64, z: f64) -> f64 {
        let zb = (z * z + self.b * self.b).sqrt();
        let denom = (big_r * big_r + (self.a + zb) * (self.a + zb)).sqrt();
        -G * self.mass / denom
    }

    /// Circular velocity squared in the midplane.
    pub fn vcirc2(&self, big_r: f64) -> f64 {
        let s = self.a + self.b;
        let denom = (big_r * big_r + s * s).powf(1.5);
        G * self.mass * big_r * big_r / denom
    }
}

/// Halo + stellar disk + gas disk composite used to assign velocities.
#[derive(Debug, Clone, Copy)]
pub struct CompositePotential {
    pub halo: NfwHalo,
    pub stellar_disk: MiyamotoNagaiDisk,
    pub gas_disk: MiyamotoNagaiDisk,
}

impl CompositePotential {
    /// Midplane circular velocity \[pc/Myr\] at cylindrical radius `big_r`.
    pub fn vcirc(&self, big_r: f64) -> f64 {
        let halo_part = G * self.halo.enclosed_mass(big_r) / big_r.max(1.0);
        (halo_part + self.stellar_disk.vcirc2(big_r) + self.gas_disk.vcirc2(big_r)).sqrt()
    }

    /// Total potential (spherical halo approximation via enclosed mass
    /// plus the two analytic disks).
    pub fn potential(&self, big_r: f64, z: f64) -> f64 {
        let r = (big_r * big_r + z * z).sqrt().max(1.0);
        // Spherical-shell potential of the truncated NFW.
        let m_in = self.halo.enclosed_mass(r);
        // Outer-shell term integrated numerically at coarse resolution
        // would be overkill; for v_z structure the enclosed-mass monopole
        // suffices at disk radii (r << r_cut).
        let halo_phi =
            -G * m_in / r - G * (self.halo.enclosed_mass(self.halo.r_cut) - m_in) / self.halo.r_cut;
        halo_phi + self.stellar_disk.potential(big_r, z) + self.gas_disk.potential(big_r, z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astro::units::PC_PER_MYR_IN_KMS;

    fn mw_halo() -> NfwHalo {
        NfwHalo::from_mass(1.1e12, 16_000.0, 200_000.0)
    }

    #[test]
    fn enclosed_mass_reaches_total_at_cutoff() {
        let h = mw_halo();
        assert!((h.enclosed_mass(200_000.0) / 1.1e12 - 1.0).abs() < 1e-9);
        assert!(h.enclosed_mass(300_000.0) <= 1.1e12 * (1.0 + 1e-12));
    }

    #[test]
    fn density_has_inner_minus_one_slope() {
        let h = mw_halo();
        // Between 0.01 rs and 0.1 rs the log-slope should be close to -1.
        let r1 = 160.0;
        let r2 = 1600.0;
        let slope = (h.density(r2) / h.density(r1)).ln() / (r2 / r1).ln();
        assert!((-1.25..=-0.95).contains(&slope), "inner slope {slope}");
    }

    #[test]
    fn mass_fraction_inversion_roundtrips() {
        let h = mw_halo();
        for &f in &[0.1, 0.5, 0.9] {
            let r = h.radius_of_mass_fraction(f);
            let back = h.enclosed_mass(r) / h.enclosed_mass(h.r_cut);
            assert!((back - f).abs() < 1e-6, "f={f}: {back}");
        }
    }

    #[test]
    fn mn_disk_vcirc_matches_potential_gradient() {
        let d = MiyamotoNagaiDisk {
            mass: 5.4e10,
            a: 2500.0,
            b: 300.0,
        };
        let r = 8000.0;
        let dr = 1.0;
        let dphi = (d.potential(r + dr, 0.0) - d.potential(r - dr, 0.0)) / (2.0 * dr);
        let v2 = r * dphi;
        assert!(
            (d.vcirc2(r) / v2 - 1.0).abs() < 0.05,
            "{} vs {}",
            d.vcirc2(r),
            v2
        );
    }

    #[test]
    fn mw_rotation_curve_is_about_230_kms_at_sun() {
        let pot = CompositePotential {
            halo: mw_halo(),
            stellar_disk: MiyamotoNagaiDisk {
                mass: 5.4e10,
                a: 2500.0,
                b: 300.0,
            },
            gas_disk: MiyamotoNagaiDisk {
                mass: 1.2e10,
                a: 5000.0,
                b: 100.0,
            },
        };
        let v = pot.vcirc(8200.0) * PC_PER_MYR_IN_KMS;
        assert!((190.0..260.0).contains(&v), "v_circ(R_sun) = {v} km/s");
        // The curve should be roughly flat between 5 and 15 kpc.
        let v5 = pot.vcirc(5000.0) * PC_PER_MYR_IN_KMS;
        let v15 = pot.vcirc(15_000.0) * PC_PER_MYR_IN_KMS;
        assert!((v5 / v15 - 1.0).abs() < 0.35, "v5={v5}, v15={v15}");
    }

    #[test]
    fn potential_deepens_toward_midplane_and_centre() {
        let pot = CompositePotential {
            halo: mw_halo(),
            stellar_disk: MiyamotoNagaiDisk {
                mass: 5.4e10,
                a: 2500.0,
                b: 300.0,
            },
            gas_disk: MiyamotoNagaiDisk {
                mass: 1.2e10,
                a: 5000.0,
                b: 100.0,
            },
        };
        assert!(pot.potential(8000.0, 0.0) < pot.potential(8000.0, 2000.0));
        assert!(pot.potential(2000.0, 0.0) < pot.potential(8000.0, 0.0));
    }
}
