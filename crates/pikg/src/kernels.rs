//! The paper's three interaction kernels, written in the PIKG DSL.
//!
//! Table 4 fixes the counted operations per interaction: **27** for gravity,
//! **73** for hydro density/pressure, **101** for the hydro force. The
//! gravity DSL below counts to exactly 27 under [`FlopPolicy::paper`]; the
//! hydro kernels are branch-free `min`/`max` formulations of the cubic-spline
//! pipeline whose counts land in the same regime (they are asserted within
//! tolerance in tests, and the paper constants below are what the
//! performance model uses, matching the authors' methodology of multiplying
//! interaction counts by a fixed per-interaction cost).
//!
//! [`FlopPolicy::paper`]: crate::flops::FlopPolicy::paper

/// Paper-convention operations per gravity interaction (Table 4).
pub const PAPER_GRAVITY_OPS: usize = 27;
/// Paper-convention operations per density/pressure interaction (Table 4).
pub const PAPER_DENSITY_OPS: usize = 73;
/// Paper-convention operations per hydro-force interaction (Table 4).
pub const PAPER_HYDRO_OPS: usize = 101;

/// Softened monopole gravity (paper Eq. 1). Accumulates acceleration per unit
/// G (caller multiplies by G) and the *positive* potential sum `mj/r`
/// (caller negates), which keeps the counted cost at exactly 27 operations.
pub const GRAVITY_DSL: &str = "\
kernel gravity
epi xi yi zi ieps2
epj xj yj zj mj jeps2
force ax ay az pot
dx = xi - xj
dy = yi - yj
dz = zi - zj
r2 = dx*dx + dy*dy + dz*dz + ieps2 + jeps2
rinv = rsqrt(r2)
rinv2 = rinv * rinv
mrinv = mj * rinv
mr3 = mrinv * rinv2
ax += -(mr3 * dx)
ay += -(mr3 * dy)
az += -(mr3 * dz)
pot += mrinv
";

/// SPH density and grad-h correction sums with the cubic-spline (M4) kernel,
/// written branch-free: the compact support is enforced with `max(0, .)`
/// clamps. Accumulates `rho = sum m_j W`, the neighbour-weighted
/// `drhodh = sum m_j dW/dh`, and a smoothed neighbour count.
pub const DENSITY_DSL: &str = "\
kernel density
epi xi yi zi hinv
epj xj yj zj mj
force rho drhodh wsum
dx = xi - xj
dy = yi - yj
dz = zi - zj
r2 = dx*dx + dy*dy + dz*dz
r = sqrt(r2)
q = r * hinv
a = max(0.0, 2.0 - q)
b = max(0.0, 1.0 - q)
a2 = a * a
b2 = b * b
a3 = a2 * a
b3 = b2 * b
sig = 0.318309886183791 * hinv * hinv * hinv
w = sig * (0.25 * a3 - b3)
mw = mj * w
rho += mw
dwdq = sig * (3.0 * b2 - 0.75 * a2)
qdw = q * dwdq
dwdh = -(hinv * (3.0 * w + qdw))
drhodh += mj * dwdh
wsum += w
";

/// Symmetrized SPH momentum/energy interaction: pressure gradient with the
/// arithmetic-mean kernel gradient of both smoothing lengths plus
/// Monaghan-style artificial viscosity (branch-free `min`/`max` switches).
/// Accumulates acceleration and `du/dt`.
pub const HYDRO_DSL: &str = "\
kernel hydro
epi xi yi zi vxi vyi vzi hinvi pomi ci rhoi
epj xj yj zj vxj vyj vzj hinvj pomj cj rhoj mj
force dax day daz dudt
dx = xi - xj
dy = yi - yj
dz = zi - zj
r2 = dx*dx + dy*dy + dz*dz
rinv = rsqrt(r2 + 1.0e-16)
r = r2 * rinv
qi = r * hinvi
qj = r * hinvj
ai = max(0.0, 2.0 - qi)
bi = max(0.0, 1.0 - qi)
aj = max(0.0, 2.0 - qj)
bj = max(0.0, 1.0 - qj)
sigi = 0.318309886183791 * hinvi * hinvi * hinvi
sigj = 0.318309886183791 * hinvj * hinvj * hinvj
dwi = sigi * hinvi * (3.0 * bi * bi - 0.75 * ai * ai)
dwj = sigj * hinvj * (3.0 * bj * bj - 0.75 * aj * aj)
dwmean = 0.5 * (dwi + dwj)
gradx = dwmean * dx * rinv
grady = dwmean * dy * rinv
gradz = dwmean * dz * rinv
dvx = vxi - vxj
dvy = vyi - vyj
dvz = vzi - vzj
vdotr = dvx * dx + dvy * dy + dvz * dz
hmean = 2.0 / (hinvi + hinvj)
mu = hmean * vdotr / (r2 + 0.01 * hmean * hmean)
muneg = min(0.0, mu)
cmean = 0.5 * (ci + cj)
rhomean = 0.5 * (rhoi + rhoj)
visc = (2.0 * muneg * muneg - cmean * muneg) / rhomean
fac = pomi + pomj + visc
fx = fac * gradx
fy = fac * grady
fz = fac * gradz
dax += -(mj * fx)
day += -(mj * fy)
daz += -(mj * fz)
half = pomi + 0.5 * visc
eij = dvx * gradx + dvy * grady + dvz * gradz
dudt += mj * half * eij
";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use crate::flops::FlopPolicy;

    #[test]
    fn gravity_counts_exactly_27_paper_ops() {
        let k = compile(GRAVITY_DSL).unwrap();
        assert_eq!(
            k.flops_per_interaction(FlopPolicy::paper()),
            PAPER_GRAVITY_OPS
        );
    }

    #[test]
    fn density_count_is_in_paper_regime() {
        let k = compile(DENSITY_DSL).unwrap();
        let n = k.flops_per_interaction(FlopPolicy::paper());
        assert!(
            (PAPER_DENSITY_OPS as f64 * 0.5..=PAPER_DENSITY_OPS as f64 * 1.5).contains(&(n as f64)),
            "density kernel counts {n} ops, expected around {PAPER_DENSITY_OPS}"
        );
    }

    #[test]
    fn hydro_count_is_in_paper_regime() {
        let k = compile(HYDRO_DSL).unwrap();
        let n = k.flops_per_interaction(FlopPolicy::paper());
        assert!(
            (PAPER_HYDRO_OPS as f64 * 0.5..=PAPER_HYDRO_OPS as f64 * 1.5).contains(&(n as f64)),
            "hydro kernel counts {n} ops, expected around {PAPER_HYDRO_OPS}"
        );
    }

    #[test]
    fn all_three_kernels_compile() {
        for src in [GRAVITY_DSL, DENSITY_DSL, HYDRO_DSL] {
            compile(src).unwrap();
        }
    }

    #[test]
    fn density_kernel_integrates_to_unity() {
        // sum m_j W over a fine uniform grid approximates the integral of W,
        // which must be 1 (the kernel is a partition of unity).
        let k = compile(DENSITY_DSL).unwrap();
        let h = 1.0f64;
        let spacing = 0.25;
        let mut xs = vec![];
        let mut m = vec![];
        let half = 12;
        for ix in -half..=half {
            for iy in -half..=half {
                for iz in -half..=half {
                    xs.push([
                        ix as f64 * spacing,
                        iy as f64 * spacing,
                        iz as f64 * spacing,
                    ]);
                    m.push(spacing * spacing * spacing); // volume element
                }
            }
        }
        let x: Vec<f64> = xs.iter().map(|p| p[0]).collect();
        let y: Vec<f64> = xs.iter().map(|p| p[1]).collect();
        let z: Vec<f64> = xs.iter().map(|p| p[2]).collect();
        let (xi, yi, zi, hinv) = (vec![0.0], vec![0.0], vec![0.0], vec![1.0 / h]);
        let mut rho = vec![0.0];
        let mut drhodh = vec![0.0];
        let mut wsum = vec![0.0];
        k.execute(
            &crate::compile::SoaBuffers {
                epi: vec![&xi, &yi, &zi, &hinv],
                epj: vec![&x, &y, &z, &m],
            },
            &mut [&mut rho, &mut drhodh, &mut wsum],
        );
        assert!(
            (rho[0] - 1.0).abs() < 0.02,
            "kernel volume integral = {} (want 1)",
            rho[0]
        );
        // dW/dh integral = -3/h * integral(W) - (1/h) integral(q W') which
        // must equal -3/h + 3/h = ... the net is -3/h * 1 + 3/h = 0 by the
        // scaling identity; numerically small compared to rho/h.
        assert!(drhodh[0].abs() < 0.15 * rho[0] / h * 3.0);
    }
}
