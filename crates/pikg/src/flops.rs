//! FLOP accounting for compiled kernels.
//!
//! The paper measures non-Fugaku systems by "counting the number of
//! interactions ... multiplied \[by\] the number of operations of those
//! interactions" (§4.3), with per-interaction operation counts fixed in
//! Table 4: gravity 27, hydro density/pressure 73, hydro force 101. The
//! counts weigh transcendental operations by their classic N-body
//! conventions; [`FlopPolicy::paper`] reproduces them.

use crate::compile::Instr;

/// Weights assigned to each instruction class when counting FLOPs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlopPolicy {
    pub add_sub_mul: usize,
    pub div: usize,
    pub sqrt: usize,
    pub rsqrt: usize,
    pub minmax_abs_neg: usize,
    pub exp_ln: usize,
}

impl FlopPolicy {
    /// The weighting used for the paper's counted-operation methodology:
    /// divides and (r)sqrts count as the usual 4 ops, transcendentals as 8.
    pub const fn paper() -> Self {
        FlopPolicy {
            add_sub_mul: 1,
            div: 4,
            sqrt: 4,
            rsqrt: 4,
            minmax_abs_neg: 1,
            exp_ln: 8,
        }
    }

    /// Every arithmetic instruction counts as exactly one operation.
    pub const fn unit() -> Self {
        FlopPolicy {
            add_sub_mul: 1,
            div: 1,
            sqrt: 1,
            rsqrt: 1,
            minmax_abs_neg: 1,
            exp_ln: 1,
        }
    }

    /// Cost of one instruction. Loads and constants are free (they move
    /// data, not arithmetic); force accumulation costs one add.
    pub fn cost(&self, instr: &Instr) -> usize {
        match instr {
            Instr::Const(..) | Instr::LoadI(..) | Instr::LoadJ(..) => 0,
            Instr::Add(..) | Instr::Sub(..) | Instr::Mul(..) => self.add_sub_mul,
            Instr::Div(..) => self.div,
            Instr::Sqrt(..) => self.sqrt,
            Instr::Rsqrt(..) => self.rsqrt,
            Instr::Neg(..) | Instr::Abs(..) | Instr::Min(..) | Instr::Max(..) => {
                self.minmax_abs_neg
            }
            Instr::Exp(..) | Instr::Ln(..) => self.exp_ln,
            Instr::AccAdd(..) => self.add_sub_mul,
        }
    }
}

impl Default for FlopPolicy {
    fn default() -> Self {
        FlopPolicy::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_are_free_math_is_not() {
        let p = FlopPolicy::paper();
        assert_eq!(p.cost(&Instr::LoadI(0, 0)), 0);
        assert_eq!(p.cost(&Instr::Const(0, 1.0)), 0);
        assert_eq!(p.cost(&Instr::Add(0, 0, 0)), 1);
        assert_eq!(p.cost(&Instr::Rsqrt(0, 0)), 4);
        assert_eq!(p.cost(&Instr::Exp(0, 0)), 8);
        assert_eq!(p.cost(&Instr::AccAdd(0, 0)), 1);
    }

    #[test]
    fn unit_policy_counts_everything_once() {
        let p = FlopPolicy::unit();
        assert_eq!(p.cost(&Instr::Div(0, 0, 0)), 1);
        assert_eq!(p.cost(&Instr::Sqrt(0, 0)), 1);
    }
}
