//! Regenerate the committed generated-kernel sources.
fn main() {
    let spec = pikg::parser::parse(pikg::kernels::GRAVITY_DSL).expect("bundled kernel");
    print!(
        "{}",
        pikg::codegen::generate_rust(&spec, "generated").expect("generate")
    );
}
