//! Abstract syntax for the kernel DSL.

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// Built-in math functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Func {
    Sqrt,
    /// Reciprocal square root — the workhorse of gravity kernels.
    Rsqrt,
    Abs,
    Min,
    Max,
    Exp,
    Ln,
}

impl Func {
    /// Parse a function name.
    pub fn from_name(name: &str) -> Option<Func> {
        Some(match name {
            "sqrt" => Func::Sqrt,
            "rsqrt" => Func::Rsqrt,
            "abs" => Func::Abs,
            "min" => Func::Min,
            "max" => Func::Max,
            "exp" => Func::Exp,
            "ln" => Func::Ln,
            _ => return None,
        })
    }

    /// Number of arguments the function takes.
    pub fn arity(self) -> usize {
        match self {
            Func::Min | Func::Max => 2,
            _ => 1,
        }
    }
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Num(f64),
    Var(String),
    Neg(Box<Expr>),
    Bin(BinOp, Box<Expr>, Box<Expr>),
    Call(Func, Vec<Expr>),
}

/// A statement: either a local definition or a force accumulation.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `name = expr` — defines (or redefines) a per-interaction local.
    Assign(String, Expr),
    /// `name += expr` — accumulates into a force variable.
    Accumulate(String, Expr),
}

/// A parsed kernel: declared variables plus the interaction body.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSpec {
    pub name: String,
    /// Per-i-particle inputs (the "essential particle i" of FDPS).
    pub epi: Vec<String>,
    /// Per-j-particle inputs.
    pub epj: Vec<String>,
    /// Accumulated outputs, one set per i-particle.
    pub force: Vec<String>,
    pub body: Vec<Stmt>,
}

impl KernelSpec {
    /// Check the body only references declared or previously defined names
    /// and only accumulates into force variables.
    pub fn validate(&self) -> Result<(), String> {
        let mut known: Vec<&str> = Vec::new();
        known.extend(self.epi.iter().map(|s| s.as_str()));
        known.extend(self.epj.iter().map(|s| s.as_str()));
        // Detect duplicate declarations across sections.
        let mut all: Vec<&str> = known.clone();
        all.extend(self.force.iter().map(|s| s.as_str()));
        let mut sorted = all.clone();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            if w[0] == w[1] {
                return Err(format!(
                    "kernel {}: duplicate declaration `{}`",
                    self.name, w[0]
                ));
            }
        }
        for stmt in &self.body {
            match stmt {
                Stmt::Assign(name, expr) => {
                    if self.force.iter().any(|f| f == name) {
                        return Err(format!(
                            "kernel {}: `{name}` is a force variable; use `+=`",
                            self.name
                        ));
                    }
                    check_expr(expr, &known, &self.name)?;
                    if !known.contains(&name.as_str()) {
                        known.push(name);
                    }
                }
                Stmt::Accumulate(name, expr) => {
                    if !self.force.iter().any(|f| f == name) {
                        return Err(format!(
                            "kernel {}: `+=` target `{name}` is not a force variable",
                            self.name
                        ));
                    }
                    check_expr(expr, &known, &self.name)?;
                }
            }
        }
        Ok(())
    }
}

fn check_expr(expr: &Expr, known: &[&str], kernel: &str) -> Result<(), String> {
    match expr {
        Expr::Num(_) => Ok(()),
        Expr::Var(v) => {
            if known.contains(&v.as_str()) {
                Ok(())
            } else {
                Err(format!("kernel {kernel}: undefined variable `{v}`"))
            }
        }
        Expr::Neg(e) => check_expr(e, known, kernel),
        Expr::Bin(_, a, b) => {
            check_expr(a, known, kernel)?;
            check_expr(b, known, kernel)
        }
        Expr::Call(f, args) => {
            if args.len() != f.arity() {
                return Err(format!(
                    "kernel {kernel}: {f:?} expects {} argument(s), got {}",
                    f.arity(),
                    args.len()
                ));
            }
            for a in args {
                check_expr(a, known, kernel)?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal_spec() -> KernelSpec {
        KernelSpec {
            name: "k".into(),
            epi: vec!["xi".into()],
            epj: vec!["xj".into()],
            force: vec!["f".into()],
            body: vec![
                Stmt::Assign(
                    "d".into(),
                    Expr::Bin(
                        BinOp::Sub,
                        Box::new(Expr::Var("xi".into())),
                        Box::new(Expr::Var("xj".into())),
                    ),
                ),
                Stmt::Accumulate("f".into(), Expr::Var("d".into())),
            ],
        }
    }

    #[test]
    fn valid_spec_passes() {
        assert!(minimal_spec().validate().is_ok());
    }

    #[test]
    fn undefined_variable_rejected() {
        let mut s = minimal_spec();
        s.body
            .push(Stmt::Accumulate("f".into(), Expr::Var("nope".into())));
        assert!(s.validate().unwrap_err().contains("undefined variable"));
    }

    #[test]
    fn assignment_to_force_rejected() {
        let mut s = minimal_spec();
        s.body.push(Stmt::Assign("f".into(), Expr::Num(0.0)));
        assert!(s.validate().unwrap_err().contains("use `+=`"));
    }

    #[test]
    fn accumulate_into_local_rejected() {
        let mut s = minimal_spec();
        s.body.push(Stmt::Accumulate("d".into(), Expr::Num(1.0)));
        assert!(s.validate().unwrap_err().contains("not a force variable"));
    }

    #[test]
    fn duplicate_declaration_rejected() {
        let mut s = minimal_spec();
        s.epj.push("xi".into());
        assert!(s.validate().unwrap_err().contains("duplicate"));
    }

    #[test]
    fn wrong_arity_rejected() {
        let mut s = minimal_spec();
        s.body.push(Stmt::Accumulate(
            "f".into(),
            Expr::Call(Func::Min, vec![Expr::Num(1.0)]),
        ));
        assert!(s.validate().unwrap_err().contains("expects 2"));
    }

    #[test]
    fn func_names_parse() {
        assert_eq!(Func::from_name("rsqrt"), Some(Func::Rsqrt));
        assert_eq!(Func::from_name("min"), Some(Func::Min));
        assert_eq!(Func::from_name("tan"), None);
        assert_eq!(Func::Min.arity(), 2);
        assert_eq!(Func::Sqrt.arity(), 1);
    }
}
