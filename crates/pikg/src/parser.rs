//! Recursive-descent parser for the kernel DSL.
//!
//! Grammar (newline-terminated statements):
//!
//! ```text
//! kernel   := "kernel" IDENT NL decl* stmt*
//! decl     := ("epi" | "epj" | "force") IDENT+ NL
//! stmt     := IDENT "=" expr NL | IDENT "+=" expr NL
//! expr     := term (("+" | "-") term)*
//! term     := unary (("*" | "/") unary)*
//! unary    := "-" unary | atom
//! atom     := NUM | IDENT | IDENT "(" expr ("," expr)* ")" | "(" expr ")"
//! ```

use crate::ast::{BinOp, Expr, Func, KernelSpec, Stmt};
use crate::lexer::{lex, Tok};

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok) -> Result<(), String> {
        match self.next() {
            Some(ref t) if t == want => Ok(()),
            other => Err(format!("expected {want:?}, found {other:?}")),
        }
    }

    fn ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }

    fn ident_list_to_newline(&mut self) -> Result<Vec<String>, String> {
        let mut out = Vec::new();
        loop {
            match self.next() {
                Some(Tok::Ident(s)) => out.push(s),
                Some(Tok::Comma) => {}
                Some(Tok::Newline) | None => break,
                other => return Err(format!("expected identifier list, found {other:?}")),
            }
        }
        if out.is_empty() {
            return Err("empty declaration list".into());
        }
        Ok(out)
    }

    fn expr(&mut self) -> Result<Expr, String> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.next();
            let rhs = self.term()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<Expr, String> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                _ => break,
            };
            self.next();
            let rhs = self.unary()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, String> {
        if matches!(self.peek(), Some(Tok::Minus)) {
            self.next();
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Expr, String> {
        match self.next() {
            Some(Tok::Num(v)) => Ok(Expr::Num(v)),
            Some(Tok::LParen) => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                if matches!(self.peek(), Some(Tok::LParen)) {
                    self.next();
                    let func = Func::from_name(&name)
                        .ok_or_else(|| format!("unknown function `{name}`"))?;
                    let mut args = vec![self.expr()?];
                    while matches!(self.peek(), Some(Tok::Comma)) {
                        self.next();
                        args.push(self.expr()?);
                    }
                    self.expect(&Tok::RParen)?;
                    Ok(Expr::Call(func, args))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(format!("expected expression, found {other:?}")),
        }
    }
}

/// Parse a full kernel description.
pub fn parse(src: &str) -> Result<KernelSpec, String> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };

    match p.next() {
        Some(Tok::Ident(kw)) if kw == "kernel" => {}
        other => return Err(format!("expected `kernel`, found {other:?}")),
    }
    let name = p.ident()?;
    p.expect(&Tok::Newline)?;

    let mut epi = Vec::new();
    let mut epj = Vec::new();
    let mut force = Vec::new();
    let mut body = Vec::new();

    while let Some(tok) = p.peek().cloned() {
        match tok {
            Tok::Newline => {
                p.next();
            }
            Tok::Ident(kw) if kw == "epi" => {
                p.next();
                epi.extend(p.ident_list_to_newline()?);
            }
            Tok::Ident(kw) if kw == "epj" => {
                p.next();
                epj.extend(p.ident_list_to_newline()?);
            }
            Tok::Ident(kw) if kw == "force" => {
                p.next();
                force.extend(p.ident_list_to_newline()?);
            }
            Tok::Ident(_) => {
                let target = p.ident()?;
                let stmt = match p.next() {
                    Some(Tok::Assign) => Stmt::Assign(target, p.expr()?),
                    Some(Tok::PlusAssign) => Stmt::Accumulate(target, p.expr()?),
                    other => return Err(format!("expected `=` or `+=`, found {other:?}")),
                };
                match p.next() {
                    Some(Tok::Newline) | None => {}
                    other => return Err(format!("expected end of statement, found {other:?}")),
                }
                body.push(stmt);
            }
            other => return Err(format!("unexpected token {other:?}")),
        }
    }

    let spec = KernelSpec {
        name,
        epi,
        epj,
        force,
        body,
    };
    spec.validate()?;
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_gravity_kernel() {
        let spec = parse(crate::kernels::GRAVITY_DSL).unwrap();
        assert_eq!(spec.name, "gravity");
        assert_eq!(spec.epi.len(), 4);
        assert_eq!(spec.epj.len(), 5);
        assert_eq!(spec.force, vec!["ax", "ay", "az", "pot"]);
        assert!(spec.body.len() >= 8);
    }

    #[test]
    fn precedence_mul_over_add() {
        let spec = parse("kernel k\nepi a\nepj b\nforce f\nf += a + b * a\n").unwrap();
        match &spec.body[0] {
            Stmt::Accumulate(_, Expr::Bin(BinOp::Add, _, rhs)) => {
                assert!(matches!(**rhs, Expr::Bin(BinOp::Mul, _, _)));
            }
            other => panic!("wrong tree: {other:?}"),
        }
    }

    #[test]
    fn parens_override_precedence() {
        let spec = parse("kernel k\nepi a\nepj b\nforce f\nf += (a + b) * a\n").unwrap();
        match &spec.body[0] {
            Stmt::Accumulate(_, Expr::Bin(BinOp::Mul, lhs, _)) => {
                assert!(matches!(**lhs, Expr::Bin(BinOp::Add, _, _)));
            }
            other => panic!("wrong tree: {other:?}"),
        }
    }

    #[test]
    fn unary_minus_binds_tighter_than_mul_operand() {
        let spec = parse("kernel k\nepi a\nepj b\nforce f\nf += -a * b\n").unwrap();
        // Parsed as (-a) * b.
        match &spec.body[0] {
            Stmt::Accumulate(_, Expr::Bin(BinOp::Mul, lhs, _)) => {
                assert!(matches!(**lhs, Expr::Neg(_)));
            }
            other => panic!("wrong tree: {other:?}"),
        }
    }

    #[test]
    fn two_arg_function_parses() {
        let spec = parse("kernel k\nepi a\nepj b\nforce f\nm = min(a, b)\nf += m\n").unwrap();
        match &spec.body[0] {
            Stmt::Assign(_, Expr::Call(Func::Min, args)) => assert_eq!(args.len(), 2),
            other => panic!("wrong tree: {other:?}"),
        }
    }

    #[test]
    fn unknown_function_rejected() {
        let err = parse("kernel k\nepi a\nepj b\nforce f\nf += sin(a)\n").unwrap_err();
        assert!(err.contains("unknown function"));
    }

    #[test]
    fn missing_kernel_header_rejected() {
        assert!(parse("epi a\n").is_err());
    }

    #[test]
    fn garbage_after_statement_rejected() {
        assert!(parse("kernel k\nepi a\nepj b\nforce f\nf += a a\n").is_err());
    }

    #[test]
    fn comma_separated_declarations() {
        let spec = parse("kernel k\nepi a, b, c\nepj d\nforce f\nf += a\n").unwrap();
        assert_eq!(spec.epi, vec!["a", "b", "c"]);
    }
}
