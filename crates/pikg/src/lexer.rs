//! Tokenizer for the kernel DSL.

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Ident(String),
    Num(f64),
    Plus,
    Minus,
    Star,
    Slash,
    LParen,
    RParen,
    Comma,
    Assign,
    PlusAssign,
    Newline,
}

/// Tokenize `src`. Comments run from `//` or `#` to end of line. Newlines are
/// significant (they terminate statements).
pub fn lex(src: &str) -> Result<Vec<Tok>, String> {
    let mut toks = Vec::new();
    for (lineno, raw_line) in src.lines().enumerate() {
        let line = match raw_line.find("//") {
            Some(i) => &raw_line[..i],
            None => raw_line,
        };
        let line = match line.find('#') {
            Some(i) => &line[..i],
            None => line,
        };
        let mut chars = line.char_indices().peekable();
        let start_len = toks.len();
        while let Some(&(i, c)) = chars.peek() {
            match c {
                ' ' | '\t' | '\r' => {
                    chars.next();
                }
                '+' => {
                    chars.next();
                    if matches!(chars.peek(), Some(&(_, '='))) {
                        chars.next();
                        toks.push(Tok::PlusAssign);
                    } else {
                        toks.push(Tok::Plus);
                    }
                }
                '-' => {
                    chars.next();
                    toks.push(Tok::Minus);
                }
                '*' => {
                    chars.next();
                    toks.push(Tok::Star);
                }
                '/' => {
                    chars.next();
                    toks.push(Tok::Slash);
                }
                '(' => {
                    chars.next();
                    toks.push(Tok::LParen);
                }
                ')' => {
                    chars.next();
                    toks.push(Tok::RParen);
                }
                ',' => {
                    chars.next();
                    toks.push(Tok::Comma);
                }
                '=' => {
                    chars.next();
                    toks.push(Tok::Assign);
                }
                c if c.is_ascii_digit() || c == '.' => {
                    let mut end = i;
                    let mut seen_e = false;
                    while let Some(&(j, d)) = chars.peek() {
                        let is_num = d.is_ascii_digit()
                            || d == '.'
                            || d == 'e'
                            || d == 'E'
                            || (seen_e && (d == '+' || d == '-'));
                        if d == 'e' || d == 'E' {
                            seen_e = true;
                        } else if !(d == '+' || d == '-') {
                            seen_e = false;
                        }
                        if is_num {
                            end = j;
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    let text = &line[i..=end];
                    let v: f64 = text
                        .parse()
                        .map_err(|_| format!("line {}: bad number `{text}`", lineno + 1))?;
                    toks.push(Tok::Num(v));
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let mut end = i;
                    while let Some(&(j, d)) = chars.peek() {
                        if d.is_ascii_alphanumeric() || d == '_' {
                            end = j;
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    toks.push(Tok::Ident(line[i..=end].to_string()));
                }
                other => {
                    return Err(format!(
                        "line {}: unexpected character `{other}`",
                        lineno + 1
                    ))
                }
            }
        }
        if toks.len() > start_len {
            toks.push(Tok::Newline);
        }
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_statement() {
        let t = lex("r2 = dx*dx + 1.5e-3").unwrap();
        assert_eq!(
            t,
            vec![
                Tok::Ident("r2".into()),
                Tok::Assign,
                Tok::Ident("dx".into()),
                Tok::Star,
                Tok::Ident("dx".into()),
                Tok::Plus,
                Tok::Num(1.5e-3),
                Tok::Newline,
            ]
        );
    }

    #[test]
    fn plus_assign_vs_plus() {
        let t = lex("f += a + b").unwrap();
        assert_eq!(t[1], Tok::PlusAssign);
        assert_eq!(t[3], Tok::Plus);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let t = lex("// header\n\na = 1 # trailing\n").unwrap();
        assert_eq!(
            t,
            vec![
                Tok::Ident("a".into()),
                Tok::Assign,
                Tok::Num(1.0),
                Tok::Newline
            ]
        );
    }

    #[test]
    fn scientific_notation_with_signs() {
        let t = lex("a = 2.5E+4").unwrap();
        assert_eq!(t[2], Tok::Num(2.5e4));
        let t = lex("a = 1e-2").unwrap();
        assert_eq!(t[2], Tok::Num(0.01));
    }

    #[test]
    fn rejects_unknown_character() {
        assert!(lex("a = b ^ 2").is_err());
    }

    #[test]
    fn function_call_tokens() {
        let t = lex("r = min(a, b)").unwrap();
        assert!(t.contains(&Tok::LParen));
        assert!(t.contains(&Tok::Comma));
        assert!(t.contains(&Tok::RParen));
    }
}
