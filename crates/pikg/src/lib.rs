//! # pikg — Particle-particle Interaction Kernel Generator
//!
//! Rust reproduction of PIKG (paper §3.5): interaction kernels are written
//! once in a small DSL and compiled into executable form, with
//!
//! * automatic structure-of-arrays data layout (the compiled kernel runs over
//!   SoA slices, the layout PIKG generates for SIMD back ends),
//! * exact FLOP accounting per interaction (the paper's Table 4 relies on
//!   counted operations: 27 for gravity, 73 for SPH density/pressure, 101 for
//!   the hydro force), and
//! * piecewise polynomial approximation (PPA, paper Eq. 2) of kernel
//!   functions with table lookup, our stand-in for the Sollya-generated
//!   minimax tables.
//!
//! The DSL looks like:
//!
//! ```text
//! kernel gravity
//! epi xi yi zi ieps2
//! epj xj yj zj mj jeps2
//! force ax ay az pot
//! dx = xi - xj
//! r2 = dx*dx + ieps2 + jeps2
//! rinv = rsqrt(r2)
//! ax += -mj * rinv * dx
//! ```
//!
//! ```
//! let kernel = pikg::compile(pikg::kernels::GRAVITY_DSL).unwrap();
//! assert_eq!(kernel.spec().name, "gravity");
//! ```

#![forbid(unsafe_code)]

pub mod ast;
pub mod codegen;
pub mod compile;
pub mod flops;
pub mod kernels;
pub mod lexer;
pub mod parser;
pub mod ppa;

pub use ast::{BinOp, Expr, Func, KernelSpec, Stmt};
pub use compile::{CompiledKernel, SoaBuffers};
pub use flops::FlopPolicy;
pub use ppa::PpaTable;

/// Parse and compile a DSL kernel in one step.
pub fn compile(src: &str) -> Result<CompiledKernel, String> {
    let spec = parser::parse(src)?;
    compile::CompiledKernel::from_spec(spec)
}
