//! Piecewise polynomial approximation (PPA) of kernel functions — paper
//! Eq. 2 and §3.5.
//!
//! PIKG approximates the SPH kernel function with `m` subdomains, each
//! holding an `n`-th order polynomial, so SIMD lanes can evaluate the kernel
//! with a table lookup plus a short Horner chain. The authors compute
//! minimax polynomials with Sollya; we use Chebyshev interpolation, which is
//! within a small constant of the true minimax error, and report the fitted
//! maximum error so callers can assert accuracy budgets.

/// A piecewise polynomial table for `f : [a, b] -> R`.
///
/// Section `k` covers `[a + k d, a + (k+1) d)` with the polynomial
/// `sum_l coeff[k][l] (x - a - k d)^l` (the paper's Eq. 2 with its
/// `(x - k d)` local coordinate).
#[derive(Debug, Clone)]
pub struct PpaTable {
    a: f64,
    d: f64,
    inv_d: f64,
    degree: usize,
    /// `sections * (degree + 1)` coefficients, section-major.
    coeffs: Vec<f64>,
    fitted_max_error: f64,
}

impl PpaTable {
    /// Fit `f` on `[a, b]` with `sections` subdomains of `degree`-th order
    /// polynomials (Chebyshev interpolation per section).
    ///
    /// # Panics
    /// Panics if `b <= a`, `sections == 0`, or `degree > 16`.
    pub fn fit(f: impl Fn(f64) -> f64, a: f64, b: f64, sections: usize, degree: usize) -> Self {
        assert!(b > a, "PPA domain must be non-empty");
        assert!(sections > 0, "PPA needs at least one section");
        assert!(degree <= 16, "PPA degree beyond 16 is numerically fragile");
        let d = (b - a) / sections as f64;
        let n = degree + 1;
        let mut coeffs = vec![0.0; sections * n];

        for k in 0..sections {
            let lo = a + k as f64 * d;
            // Chebyshev nodes in local coordinates [0, d].
            let mut xs = vec![0.0; n];
            let mut ys = vec![0.0; n];
            for (j, (x, y)) in xs.iter_mut().zip(ys.iter_mut()).enumerate() {
                let t = ((2 * j + 1) as f64 * std::f64::consts::PI / (2 * n) as f64).cos();
                *x = 0.5 * d * (t + 1.0); // local in [0, d]
                *y = f(lo + *x);
            }
            let poly = interpolate_monomial(&xs, &ys);
            coeffs[k * n..(k + 1) * n].copy_from_slice(&poly);
        }

        let mut table = PpaTable {
            a,
            d,
            inv_d: 1.0 / d,
            degree,
            coeffs,
            fitted_max_error: 0.0,
        };
        // Estimate the max error on a dense sample.
        let samples = (sections * 64).max(256);
        let mut err = 0.0f64;
        for i in 0..=samples {
            let x = a + (b - a) * i as f64 / samples as f64;
            err = err.max((table.eval(x) - f(x)).abs());
        }
        table.fitted_max_error = err;
        table
    }

    /// Evaluate the table at `x` (clamped to the fitted domain).
    #[inline]
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.degree + 1;
        let sections = self.coeffs.len() / n;
        let t = (x - self.a) * self.inv_d;
        let k = (t as isize).clamp(0, sections as isize - 1) as usize;
        let local = x - self.a - k as f64 * self.d;
        // Horner over the section's coefficients — the short dependency
        // chain a SIMD table lookup feeds (paper §3.5).
        let c = &self.coeffs[k * n..(k + 1) * n];
        let mut acc = c[n - 1];
        for l in (0..n - 1).rev() {
            acc = acc * local + c[l];
        }
        acc
    }

    /// Maximum absolute error observed while fitting.
    pub fn max_error(&self) -> f64 {
        self.fitted_max_error
    }

    /// Number of subdomains (`m` in the paper).
    pub fn sections(&self) -> usize {
        self.coeffs.len() / (self.degree + 1)
    }

    /// Polynomial order per subdomain (`n` in the paper).
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Total stored coefficients (`m (n + 1)` in the paper).
    pub fn coefficient_count(&self) -> usize {
        self.coeffs.len()
    }

    /// FLOPs per evaluation: the Horner chain (2 ops per degree) plus the
    /// index computation (sub, mul, sub, mul ≈ 4).
    pub fn flops_per_eval(&self) -> usize {
        2 * self.degree + 4
    }
}

/// Newton divided differences → monomial coefficients, for small n.
fn interpolate_monomial(xs: &[f64], ys: &[f64]) -> Vec<f64> {
    let n = xs.len();
    // Divided-difference table.
    let mut dd = ys.to_vec();
    for level in 1..n {
        for i in (level..n).rev() {
            dd[i] = (dd[i] - dd[i - 1]) / (xs[i] - xs[i - level]);
        }
    }
    // Expand the Newton form into monomials.
    let mut mono = vec![0.0; n];
    let mut basis = vec![0.0; n]; // coefficients of prod (x - xs[j])
    basis[0] = 1.0;
    let mut basis_len = 1;
    for (i, &c) in dd.iter().enumerate() {
        for (m, b) in mono.iter_mut().zip(basis.iter()).take(basis_len) {
            *m += c * b;
        }
        if i + 1 < n {
            // basis *= (x - xs[i])
            let mut next = vec![0.0; n];
            for j in 0..basis_len {
                next[j + 1] += basis[j];
                next[j] -= xs[i] * basis[j];
            }
            basis = next;
            basis_len += 1;
        }
    }
    mono
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The M4 cubic-spline kernel shape on q in [0, 2].
    fn cubic_spline(q: f64) -> f64 {
        let a = (2.0 - q).max(0.0);
        let b = (1.0 - q).max(0.0);
        std::f64::consts::FRAC_1_PI * (0.25 * a * a * a - b * b * b)
    }

    #[test]
    fn exact_for_polynomials_of_fitted_degree() {
        let f = |x: f64| 3.0 * x * x * x - 2.0 * x + 1.0;
        let t = PpaTable::fit(f, -1.0, 2.0, 4, 3);
        for i in 0..100 {
            let x = -1.0 + 3.0 * i as f64 / 99.0;
            assert!((t.eval(x) - f(x)).abs() < 1e-12, "x={x}");
        }
        assert!(t.max_error() < 1e-12);
    }

    #[test]
    fn spline_kernel_fits_to_tight_tolerance() {
        // PIKG-style setup: modest table, low degree, SIMD-friendly.
        let t = PpaTable::fit(cubic_spline, 0.0, 2.0, 16, 3);
        assert!(
            t.max_error() < 1e-5,
            "cubic spline PPA error {}",
            t.max_error()
        );
        assert_eq!(t.sections(), 16);
        assert_eq!(t.coefficient_count(), 16 * 4);
    }

    #[test]
    fn spline_fit_is_exact_where_piecewise_cubic() {
        // The M4 spline *is* a piecewise cubic, so a degree-3 PPA whose
        // section boundaries align with the spline's breakpoints (q = 1, 2)
        // reproduces it to machine precision — the property PIKG exploits.
        let t = PpaTable::fit(cubic_spline, 0.0, 2.0, 8, 3);
        assert!(t.max_error() < 1e-14, "err={}", t.max_error());
    }

    #[test]
    fn error_shrinks_with_more_sections() {
        // exp is not polynomial, so degree-3 error scales like d^4: doubling
        // sections twice should cut the error by roughly 256x.
        let f = |x: f64| x.exp();
        let e8 = PpaTable::fit(f, 0.0, 2.0, 8, 3).max_error();
        let e32 = PpaTable::fit(f, 0.0, 2.0, 32, 3).max_error();
        assert!(e32 < e8 / 16.0, "e8={e8}, e32={e32}");
    }

    #[test]
    fn error_shrinks_with_higher_degree() {
        let f = |x: f64| (1.0 + x).sqrt();
        let e2 = PpaTable::fit(f, 0.0, 1.0, 4, 2).max_error();
        let e5 = PpaTable::fit(f, 0.0, 1.0, 4, 5).max_error();
        assert!(e5 < e2 / 10.0, "e2={e2}, e5={e5}");
    }

    #[test]
    fn eval_clamps_outside_domain() {
        let t = PpaTable::fit(|x| x, 0.0, 1.0, 4, 1);
        // Clamped into the last/first section's polynomial, which for the
        // identity extrapolates linearly — just check it is finite.
        assert!(t.eval(-0.5).is_finite());
        assert!(t.eval(1.5).is_finite());
    }

    #[test]
    fn transcendental_fit_reaches_single_precision() {
        // exp on [0,1] with a production-sized table.
        let t = PpaTable::fit(|x: f64| x.exp(), 0.0, 1.0, 32, 4);
        assert!(t.max_error() < 1e-9, "err={}", t.max_error());
    }

    #[test]
    fn flop_count_reflects_horner_chain() {
        let t = PpaTable::fit(|x| x, 0.0, 1.0, 4, 3);
        assert_eq!(t.flops_per_eval(), 10);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_domain_rejected() {
        let _ = PpaTable::fit(|x| x, 1.0, 1.0, 4, 3);
    }
}
