//! Compilation of a [`KernelSpec`] into a register bytecode executed over
//! structure-of-arrays buffers.
//!
//! PIKG proper emits SVE/AVX-512/CUDA source; here the "generated code" is a
//! flat register program whose inner j-loop the optimizer can vectorize. The
//! important properties it shares with PIKG's output are the SoA data layout,
//! the i-outer/j-inner loop nest over an interaction list, and exact
//! operation counts.

use crate::ast::{BinOp, Expr, Func, KernelSpec, Stmt};
use crate::flops::FlopPolicy;
use std::collections::HashMap;

/// One bytecode instruction over f64 registers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instr {
    Const(u16, f64),
    /// Copy EPI variable `src` (index into epi arrays) into register `dst`.
    LoadI(u16, u16),
    /// Copy EPJ variable `src` into register `dst`.
    LoadJ(u16, u16),
    Add(u16, u16, u16),
    Sub(u16, u16, u16),
    Mul(u16, u16, u16),
    Div(u16, u16, u16),
    Neg(u16, u16),
    Sqrt(u16, u16),
    Rsqrt(u16, u16),
    Abs(u16, u16),
    Min(u16, u16, u16),
    Max(u16, u16, u16),
    Exp(u16, u16),
    Ln(u16, u16),
    /// Accumulate register `src` into force slot `acc`.
    AccAdd(u16, u16),
}

/// SoA views over particle data for one kernel launch.
pub struct SoaBuffers<'a> {
    /// One slice per declared EPI variable, each of length `n_i`.
    pub epi: Vec<&'a [f64]>,
    /// One slice per declared EPJ variable, each of length `n_j`.
    pub epj: Vec<&'a [f64]>,
}

/// An executable kernel.
pub struct CompiledKernel {
    spec: KernelSpec,
    code: Vec<Instr>,
    n_regs: usize,
}

impl CompiledKernel {
    /// Lower a validated spec to bytecode.
    pub fn from_spec(spec: KernelSpec) -> Result<CompiledKernel, String> {
        spec.validate()?;
        let mut c = Codegen {
            spec: &spec,
            code: Vec::new(),
            vars: HashMap::new(),
            next_reg: 0,
        };

        // Materialize declared inputs into registers up front; the executor
        // reloads EPI registers per i and EPJ registers per j.
        for (idx, name) in spec.epi.iter().enumerate() {
            let r = c.alloc()?;
            c.code.push(Instr::LoadI(r, idx as u16));
            c.vars.insert(name.clone(), r);
        }
        for (idx, name) in spec.epj.iter().enumerate() {
            let r = c.alloc()?;
            c.code.push(Instr::LoadJ(r, idx as u16));
            c.vars.insert(name.clone(), r);
        }

        for stmt in &spec.body {
            match stmt {
                Stmt::Assign(name, expr) => {
                    let r = c.emit_expr(expr)?;
                    // Rebind: later reads see the new register.
                    c.vars.insert(name.clone(), r);
                }
                Stmt::Accumulate(name, expr) => {
                    let r = c.emit_expr(expr)?;
                    let acc = spec
                        .force
                        .iter()
                        .position(|f| f == name)
                        .expect("validated accumulate target");
                    c.code.push(Instr::AccAdd(acc as u16, r));
                }
            }
        }

        let n_regs = c.next_reg as usize;
        let code = std::mem::take(&mut c.code);
        drop(c);
        Ok(CompiledKernel { spec, code, n_regs })
    }

    /// The original kernel description.
    pub fn spec(&self) -> &KernelSpec {
        &self.spec
    }

    /// The lowered instruction stream.
    pub fn code(&self) -> &[Instr] {
        &self.code
    }

    /// FLOPs per i–j interaction under `policy` (loads/copies are free).
    pub fn flops_per_interaction(&self, policy: FlopPolicy) -> usize {
        self.code.iter().map(|i| policy.cost(i)).sum()
    }

    /// Execute the kernel for every (i, j) pair: `force[f][i]` accumulates
    /// the interaction sums. Slices in `bufs.epi` share length `n_i`; slices
    /// in `bufs.epj` share length `n_j`; `force` has one column per declared
    /// force variable, each of length `n_i`.
    pub fn execute(&self, bufs: &SoaBuffers, force: &mut [&mut [f64]]) {
        let n_i = bufs.epi.first().map_or(0, |s| s.len());
        let n_j = bufs.epj.first().map_or(0, |s| s.len());
        assert_eq!(bufs.epi.len(), self.spec.epi.len(), "EPI column count");
        assert_eq!(bufs.epj.len(), self.spec.epj.len(), "EPJ column count");
        assert_eq!(force.len(), self.spec.force.len(), "force column count");
        for col in &bufs.epi {
            assert_eq!(col.len(), n_i, "ragged EPI columns");
        }
        for col in &bufs.epj {
            assert_eq!(col.len(), n_j, "ragged EPJ columns");
        }
        for col in force.iter() {
            assert_eq!(col.len(), n_i, "force columns must match n_i");
        }

        let mut regs = vec![0.0f64; self.n_regs];
        let mut acc = vec![0.0f64; self.spec.force.len()];
        for i in 0..n_i {
            acc.iter_mut().for_each(|a| *a = 0.0);
            for j in 0..n_j {
                for instr in &self.code {
                    step(instr, &mut regs, &mut acc, bufs, i, j);
                }
            }
            for (f, a) in force.iter_mut().zip(&acc) {
                f[i] += *a;
            }
        }
    }
}

#[inline(always)]
fn step(instr: &Instr, regs: &mut [f64], acc: &mut [f64], bufs: &SoaBuffers, i: usize, j: usize) {
    match *instr {
        Instr::Const(d, v) => regs[d as usize] = v,
        Instr::LoadI(d, s) => regs[d as usize] = bufs.epi[s as usize][i],
        Instr::LoadJ(d, s) => regs[d as usize] = bufs.epj[s as usize][j],
        Instr::Add(d, a, b) => regs[d as usize] = regs[a as usize] + regs[b as usize],
        Instr::Sub(d, a, b) => regs[d as usize] = regs[a as usize] - regs[b as usize],
        Instr::Mul(d, a, b) => regs[d as usize] = regs[a as usize] * regs[b as usize],
        Instr::Div(d, a, b) => regs[d as usize] = regs[a as usize] / regs[b as usize],
        Instr::Neg(d, a) => regs[d as usize] = -regs[a as usize],
        Instr::Sqrt(d, a) => regs[d as usize] = regs[a as usize].sqrt(),
        Instr::Rsqrt(d, a) => regs[d as usize] = 1.0 / regs[a as usize].sqrt(),
        Instr::Abs(d, a) => regs[d as usize] = regs[a as usize].abs(),
        Instr::Min(d, a, b) => regs[d as usize] = regs[a as usize].min(regs[b as usize]),
        Instr::Max(d, a, b) => regs[d as usize] = regs[a as usize].max(regs[b as usize]),
        Instr::Exp(d, a) => regs[d as usize] = regs[a as usize].exp(),
        Instr::Ln(d, a) => regs[d as usize] = regs[a as usize].ln(),
        Instr::AccAdd(slot, s) => acc[slot as usize] += regs[s as usize],
    }
}

struct Codegen<'s> {
    spec: &'s KernelSpec,
    code: Vec<Instr>,
    vars: HashMap<String, u16>,
    next_reg: u16,
}

impl Codegen<'_> {
    fn alloc(&mut self) -> Result<u16, String> {
        let r = self.next_reg;
        self.next_reg = self
            .next_reg
            .checked_add(1)
            .ok_or_else(|| format!("kernel {}: register overflow", self.spec.name))?;
        Ok(r)
    }

    fn emit_expr(&mut self, expr: &Expr) -> Result<u16, String> {
        Ok(match expr {
            Expr::Num(v) => {
                let r = self.alloc()?;
                self.code.push(Instr::Const(r, *v));
                r
            }
            Expr::Var(name) => *self
                .vars
                .get(name)
                .ok_or_else(|| format!("kernel {}: unbound `{name}`", self.spec.name))?,
            Expr::Neg(e) => {
                let a = self.emit_expr(e)?;
                let r = self.alloc()?;
                self.code.push(Instr::Neg(r, a));
                r
            }
            Expr::Bin(op, lhs, rhs) => {
                let a = self.emit_expr(lhs)?;
                let b = self.emit_expr(rhs)?;
                let r = self.alloc()?;
                self.code.push(match op {
                    BinOp::Add => Instr::Add(r, a, b),
                    BinOp::Sub => Instr::Sub(r, a, b),
                    BinOp::Mul => Instr::Mul(r, a, b),
                    BinOp::Div => Instr::Div(r, a, b),
                });
                r
            }
            Expr::Call(f, args) => {
                let a = self.emit_expr(&args[0])?;
                let b = if args.len() > 1 {
                    Some(self.emit_expr(&args[1])?)
                } else {
                    None
                };
                let r = self.alloc()?;
                self.code.push(match f {
                    Func::Sqrt => Instr::Sqrt(r, a),
                    Func::Rsqrt => Instr::Rsqrt(r, a),
                    Func::Abs => Instr::Abs(r, a),
                    Func::Exp => Instr::Exp(r, a),
                    Func::Ln => Instr::Ln(r, a),
                    Func::Min => Instr::Min(r, a, b.expect("validated arity")),
                    Func::Max => Instr::Max(r, a, b.expect("validated arity")),
                });
                r
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn kernel(src: &str) -> CompiledKernel {
        CompiledKernel::from_spec(parse(src).unwrap()).unwrap()
    }

    #[test]
    fn pairwise_sum_of_differences() {
        let k = kernel("kernel k\nepi xi\nepj xj\nforce f\nf += xi - xj\n");
        let xi = [1.0, 2.0];
        let xj = [10.0, 20.0, 30.0];
        let mut f = vec![0.0; 2];
        k.execute(
            &SoaBuffers {
                epi: vec![&xi],
                epj: vec![&xj],
            },
            &mut [&mut f],
        );
        // f[i] = sum_j (xi - xj) = 3*xi - 60.
        assert_eq!(f, vec![3.0 - 60.0, 6.0 - 60.0]);
    }

    #[test]
    fn gravity_direct_sum_matches_reference() {
        let k = kernel(crate::kernels::GRAVITY_DSL);
        let n = 8;
        let mut xs = [[0.0f64; 3]; 8];
        let mut ms = [0.0f64; 8];
        for i in 0..n {
            xs[i] = [
                i as f64 * 0.37,
                (i * i % 5) as f64 * 0.21,
                -(i as f64) * 0.11,
            ];
            ms[i] = 1.0 + i as f64 * 0.25;
        }
        let eps2 = 1e-4;

        let x: Vec<f64> = xs.iter().map(|p| p[0]).collect();
        let y: Vec<f64> = xs.iter().map(|p| p[1]).collect();
        let z: Vec<f64> = xs.iter().map(|p| p[2]).collect();
        let e2 = vec![eps2; n];
        let m = ms.to_vec();

        let mut ax = vec![0.0; n];
        let mut ay = vec![0.0; n];
        let mut az = vec![0.0; n];
        let mut pot = vec![0.0; n];
        k.execute(
            &SoaBuffers {
                epi: vec![&x, &y, &z, &e2],
                epj: vec![&x, &y, &z, &m, &e2],
            },
            &mut [&mut ax, &mut ay, &mut az, &mut pot],
        );

        // Reference O(N^2) loop (self-interaction softened, as in the DSL).
        for i in 0..n {
            let (mut rx, mut ry, mut rz, mut rp) = (0.0, 0.0, 0.0, 0.0);
            for j in 0..n {
                let dx = xs[i][0] - xs[j][0];
                let dy = xs[i][1] - xs[j][1];
                let dz = xs[i][2] - xs[j][2];
                let r2 = dx * dx + dy * dy + dz * dz + 2.0 * eps2;
                let rinv = 1.0 / r2.sqrt();
                let mr3 = ms[j] * rinv * rinv * rinv;
                rx -= mr3 * dx;
                ry -= mr3 * dy;
                rz -= mr3 * dz;
                // The DSL accumulates the *positive* potential sum.
                rp += ms[j] * rinv;
            }
            assert!((ax[i] - rx).abs() < 1e-12, "ax[{i}]");
            assert!((ay[i] - ry).abs() < 1e-12);
            assert!((az[i] - rz).abs() < 1e-12);
            assert!((pot[i] - rp).abs() < 1e-12);
        }
    }

    #[test]
    fn reassignment_rebinds_variable() {
        let k = kernel("kernel k\nepi a\nepj b\nforce f\nt = a\nt = t * 2\nf += t + b\n");
        let a = [3.0];
        let b = [1.0, 2.0];
        let mut f = vec![0.0];
        k.execute(
            &SoaBuffers {
                epi: vec![&a],
                epj: vec![&b],
            },
            &mut [&mut f],
        );
        // Per j: 2a + b => (6+1) + (6+2) = 15.
        assert_eq!(f, vec![15.0]);
    }

    #[test]
    fn force_accumulates_across_calls() {
        let k = kernel("kernel k\nepi a\nepj b\nforce f\nf += a * b\n");
        let a = [2.0];
        let b = [3.0];
        let mut f = vec![1.0]; // pre-existing partial force
        let bufs = SoaBuffers {
            epi: vec![&a],
            epj: vec![&b],
        };
        k.execute(&bufs, &mut [&mut f]);
        k.execute(&bufs, &mut [&mut f]);
        assert_eq!(f, vec![1.0 + 6.0 + 6.0]);
    }

    #[test]
    fn empty_j_side_leaves_force_unchanged() {
        let k = kernel("kernel k\nepi a\nepj b\nforce f\nf += a * b\n");
        let a = [2.0];
        let b: [f64; 0] = [];
        let mut f = vec![5.0];
        k.execute(
            &SoaBuffers {
                epi: vec![&a],
                epj: vec![&b],
            },
            &mut [&mut f],
        );
        assert_eq!(f, vec![5.0]);
    }

    #[test]
    #[should_panic(expected = "ragged EPI")]
    fn ragged_columns_rejected() {
        let k = kernel("kernel k\nepi a, c\nepj b\nforce f\nf += a * b + c\n");
        let a = [1.0, 2.0];
        let c = [1.0];
        let b = [1.0];
        let mut f = vec![0.0, 0.0];
        k.execute(
            &SoaBuffers {
                epi: vec![&a, &c],
                epj: vec![&b],
            },
            &mut [&mut f],
        );
    }

    #[test]
    fn builtin_functions_evaluate() {
        let k = kernel(
            "kernel k\nepi a\nepj b\nforce f\nf += min(a, b) + max(a, b) + abs(-a) + sqrt(b*b)\n",
        );
        let a = [2.0];
        let b = [5.0];
        let mut f = vec![0.0];
        k.execute(
            &SoaBuffers {
                epi: vec![&a],
                epj: vec![&b],
            },
            &mut [&mut f],
        );
        assert_eq!(f, vec![2.0 + 5.0 + 2.0 + 5.0]);
    }
}
