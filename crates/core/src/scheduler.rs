//! Active-set block-timestep scheduler: drives [`BlockSchedule`] inside
//! the conventional scheme's integration loop.
//!
//! The paper's headline comparison (§1, §5.3) is between its surrogate
//! scheme — which keeps the fixed global timestep of the §3.2 loop — and
//! conventional direct feedback, which is forced onto hierarchical
//! individual timesteps whose per-substep synchronization overhead
//! dominates as soon as a few SN-heated particles demand deep levels.
//! [`crate::blocksteps`] models that cost argument; this module makes it
//! *measurable* by actually running the hierarchy. One base step of the
//! driver maps onto the paper's procedure as follows:
//!
//! 1. **Full force pass + level assignment** (the §3.2 step-3 force
//!    evaluation, done once per base step): forces on everyone from a
//!    freshly rebuilt tree, then per-particle desired timesteps — the SPH
//!    CFL criterion `C h / v_sig` from the last force pass's signal speeds
//!    (the quantity §5.3 says collapses after an SN) and a gravity
//!    acceleration criterion `C sqrt(eps / |a|)` — are binned into
//!    power-of-two levels by [`BlockSchedule::reassign`]
//!    ([`desired_timesteps`]).
//! 2. **Opening half-kick**: every particle kicks by half of its *own*
//!    level's step, entering the standard KDK stagger of hierarchical
//!    leapfrog.
//! 3. **Binary-subdivision walk**: for each of the `2^max_level` fine
//!    substeps, *all* particles drift (inactive particles are thereby
//!    drift-predicted to the boundary — exactly the per-substep
//!    "prediction for all particles" overhead the paper's §1 argument
//!    charges against individual timesteps), the tree is moment-refreshed
//!    rather than rebuilt ([`fdps::Tree::refresh`], falling back to a full
//!    rebuild when the [`TREE_DRIFT_FRACTION`] bound trips), and only the
//!    boundary's active set ([`BlockSchedule::active_at_into`]) gets new
//!    forces and a full kick — closing its old step and opening its next.
//! 4. **Base-step close**: at the last boundary every level closes with a
//!    half-kick, re-synchronizing the system so cooling, star formation
//!    and SN identification (§3.2 steps 1 and 6) run on the shared base
//!    step, as conventional codes do.
//!
//! [`SimStats`](crate::sim::SimStats) counts substeps, active updates and
//! tree refreshes/rebuilds so [`BlockSchedule::efficiency`]'s modeled
//! overhead can be checked against measured wall-clock (`cargo bench
//! --bench blockstep`).

use crate::blocksteps::BlockSchedule;
use fdps::Vec3;
use sph::timestep::{dt_accel, dt_cfl};

/// Fraction of the tree's root-cube extent any particle may drift from its
/// position at the last full build before a substep forces a rebuild
/// instead of a moment refresh. Refreshed nodes keep the old Morton
/// partition, so drifting particles gradually loosen the MAC; this bound
/// keeps the error of the refreshed walk in the same class as the opening
/// criterion itself.
pub const TREE_DRIFT_FRACTION: f64 = 0.05;

/// The per-base-step scheduler state: a reusable [`BlockSchedule`] plus
/// the bookkeeping the substep walk needs. Lives inside the simulation
/// and is re-assigned (allocation-free after warm-up) every base step.
#[derive(Debug, Clone, Default)]
pub struct ActiveScheduler {
    schedule: BlockSchedule,
    assigned: bool,
}

impl ActiveScheduler {
    /// Bin `dt_wanted` into levels for a new base step of `dt_base`.
    pub fn assign(&mut self, dt_base: f64, dt_wanted: &[f64], max_level: u32) {
        self.schedule.reassign(dt_base, dt_wanted, max_level);
        self.assigned = true;
    }

    /// The schedule of the current (last assigned) base step, if any.
    pub fn schedule(&self) -> Option<&BlockSchedule> {
        self.assigned.then_some(&self.schedule)
    }

    /// Restore a snapshotted level assignment (see [`BlockSchedule::restore`]).
    pub fn restore(&mut self, dt_max: f64, levels: &[u32]) {
        self.schedule.restore(dt_max, levels);
        self.assigned = true;
    }

    /// Deepen the substep walk to `depth` without moving any particle's
    /// level (see [`BlockSchedule::raise_depth`]). Panics if no schedule
    /// has been assigned.
    pub fn raise_depth(&mut self, depth: u32) {
        assert!(self.assigned, "raise_depth requires an assigned schedule");
        self.schedule.raise_depth(depth);
    }

    /// Fine substeps per base step (1 before any assignment).
    pub fn substeps(&self) -> u64 {
        if self.assigned {
            self.schedule.substeps_per_base_step()
        } else {
            1
        }
    }

    /// The finest substep of the current schedule.
    pub fn dt_fine(&self) -> f64 {
        self.schedule.dt_max / self.substeps() as f64
    }

    /// The quantized step of particle `i` under the current schedule.
    pub fn dt_of(&self, i: usize) -> f64 {
        self.schedule.dt_of(i)
    }

    /// Particles closing (and, mid-base-step, re-opening) a step at
    /// fine-substep boundary `k` in `1..=substeps()`, written into the
    /// caller-owned buffer.
    pub fn active_at_boundary_into(&self, k: u64, out: &mut Vec<u32>) {
        self.schedule.active_at_into(k, out);
    }
}

/// Reduce per-rank schedules to a world-consistent substep walk — the
/// distributed block-timestep agreement protocol. Every rank bins its own
/// particles' desired dts locally ([`ActiveScheduler::assign`], same
/// `dt_base` everywhere), then contributes its deepest occupied level to
/// an allreduce-max; each rank raises its schedule to the agreed depth
/// ([`ActiveScheduler::raise_depth`]), so all ranks walk the identical
/// fine-substep boundaries — and therefore enter the identical sequence of
/// per-substep collectives (ghost refresh, barrier-bracketed timing) — with
/// ranks whose particles are all shallow simply contributing empty active
/// sets at the extra boundaries. Equivalent to an allreduce-min of the
/// finest quantized dt, since levels are powers of two below the shared
/// base step. Returns the world-consistent fine-substep count.
pub fn reduce_depth_world(comm: &mpisim::Comm, sched: &mut ActiveScheduler) -> u64 {
    let local = sched.schedule().map_or(0, |s| s.max_level()) as u64;
    let world = comm.allreduce_max_u64(local) as u32;
    if sched.schedule().is_some() {
        sched.raise_depth(world);
    }
    sched.substeps()
}

/// Fill `out[i]` with particle `i`'s desired timestep: the minimum of the
/// base step, the SPH CFL criterion over the last force pass's signal
/// speeds (`vsig` entries are `(particle index, v_sig, h)`), and the
/// gravity acceleration criterion `C sqrt(eps / |a|)` — clamped below by
/// `dt_min` so one pathological particle cannot demand unbounded depth.
pub fn desired_timesteps(
    cfl: f64,
    eps: f64,
    dt_base: f64,
    dt_min: f64,
    acc: &[Vec3],
    vsig: &[(usize, f64, f64)],
    out: &mut Vec<f64>,
) {
    out.clear();
    out.resize(acc.len(), dt_base);
    for (dt, a) in out.iter_mut().zip(acc) {
        let a_norm = a.norm();
        if a_norm > 0.0 {
            *dt = dt.min(dt_accel(cfl, eps.max(1e-12), a_norm));
        }
    }
    for &(i, v_sig, h) in vsig {
        if v_sig > 0.0 {
            out[i] = out[i].min(dt_cfl(cfl, h, 0.0, v_sig));
        }
    }
    for dt in out.iter_mut() {
        *dt = dt.clamp(dt_min, dt_base);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unassigned_scheduler_reports_one_substep() {
        let s = ActiveScheduler::default();
        assert_eq!(s.substeps(), 1);
        assert!(s.schedule().is_none());
    }

    #[test]
    fn assignment_reuses_storage_across_base_steps() {
        let mut s = ActiveScheduler::default();
        s.assign(1.0, &[1.0, 0.3, 0.01], 10);
        assert_eq!(s.schedule().unwrap().max_level(), 7);
        assert_eq!(s.substeps(), 128);
        assert!((s.dt_fine() - 1.0 / 128.0).abs() < 1e-15);
        let mut active = Vec::new();
        s.active_at_boundary_into(s.substeps(), &mut active);
        assert_eq!(active, vec![0, 1, 2], "everyone closes at the base end");
        // Re-assign with uniform steps: no growth, single level.
        s.assign(1.0, &[1.0, 1.0, 1.0], 10);
        assert_eq!(s.substeps(), 1);
        assert_eq!(s.dt_of(1), 1.0);
    }

    #[test]
    fn world_depth_reduction_aligns_every_rank() {
        mpisim::World::new(3).run(|c| {
            let mut s = ActiveScheduler::default();
            // Rank 1 wants a 4x finer step than the others.
            let dt = if c.rank() == 1 { 0.25 } else { 1.0 };
            s.assign(1.0, &[dt], 10);
            let n_sub = reduce_depth_world(c, &mut s);
            assert_eq!(n_sub, 4, "rank {} walks the world depth", c.rank());
            assert_eq!(s.schedule().unwrap().max_level(), 2);
            // Shallow ranks are active only at the base-step boundaries.
            let mut active = Vec::new();
            s.active_at_boundary_into(2, &mut active);
            if c.rank() == 1 {
                assert_eq!(active, vec![0]);
            } else {
                assert!(active.is_empty());
            }
        });
    }

    #[test]
    fn desired_timesteps_combine_cfl_and_acceleration() {
        let acc = vec![
            Vec3::ZERO,                  // unconstrained -> dt_base
            Vec3::new(100.0, 0.0, 0.0),  // accel-limited
            Vec3::new(1e-12, 0.0, 0.0),  // negligible accel -> dt_base
            Vec3::new(1.0e12, 0.0, 0.0), // pathological -> clamped to dt_min
        ];
        // Particle 2 is gas with a hot signal speed.
        let vsig = vec![(2usize, 1000.0, 1.0)];
        let mut out = Vec::new();
        desired_timesteps(0.3, 1.0, 1.0, 1e-6, &acc, &vsig, &mut out);
        assert_eq!(out[0], 1.0);
        assert!((out[1] - 0.3 * (1.0f64 / 100.0).sqrt()).abs() < 1e-12);
        assert!(
            (out[2] - 0.3 / 1000.0).abs() < 1e-12,
            "CFL bites: {}",
            out[2]
        );
        assert_eq!(out[3], 1e-6, "clamped at dt_min");
        // The buffer is reused, not regrown.
        let cap = out.capacity();
        desired_timesteps(0.3, 1.0, 1.0, 1e-6, &acc, &vsig, &mut out);
        assert_eq!(out.capacity(), cap);
    }
}
