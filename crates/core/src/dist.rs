//! Distributed driver: the paper's main/pool architecture over `mpisim`.
//!
//! The world communicator is split (paper §3.1): *main* ranks integrate the
//! galaxy with domain decomposition, LET gravity, ghost-exchange SPH, and a
//! fixed global timestep; *pool* ranks sit in a service loop running the SN
//! predictor. Regions travel main → pool when an SN is identified and come
//! back `pool_latency_steps` later, exactly as in Fig. 3. Every phase is
//! timed with barrier brackets under the paper's phase names, which is what
//! Figures 6/7 and Table 3 plot.

use crate::config::SimConfig;
use crate::particle::Particle;
use crate::phases;
use crate::pool::{PoolPredictor, SedovOverlayPredictor, UNetPredictor};
pub use crate::snapshot::{DistPending, DistSnapshot};
use astro::lifetime::explodes_in_interval;
use astro::units::{E_SN, G, NH_PER_MSUN_PC3};
use fdps::domain::DomainDecomposition;
use fdps::exchange::{exchange_ghosts, exchange_particles, Routing};
use fdps::let_exchange::exchange_let;
use fdps::{Tree, Vec3};
use gravity::GravitySolver;
use mpisim::{Comm, PhaseReport, PhaseTimer, World};
use sph::solver::{HydroState, SphScratch, SphSolver};
use sph::GammaLawEos;
use surrogate::{GasParticle, SurrogateConfig, SurrogateModel};

const TAG_REGION: u64 = 50;
const TAG_SHUTDOWN: u64 = 51;
const TAG_REPLY_BASE: u64 = 1_000_000;

/// Which predictor the pool ranks run (paper Fig. 3 step 3). A config-level
/// enum rather than a trait object so [`DistConfig`] stays `Copy` and every
/// pool rank can construct its own instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PredictorKind {
    /// Analytic Sedov–Taylor overlay: deterministic and cheap (the default,
    /// and the reference the U-Net is trained to imitate).
    SedovOverlay,
    /// The U-Net surrogate pipeline (voxelize → net → Gibbs resample) with
    /// freshly initialized weights — the full paper data path on the pool
    /// ranks; production use would load trained weights instead.
    UNetUntrained {
        grid_n: usize,
        base_features: usize,
        seed: u64,
    },
}

impl PredictorKind {
    /// Instantiate the predictor for regions of side `region_side`.
    pub fn build(&self, region_side: f64) -> Box<dyn PoolPredictor> {
        match *self {
            PredictorKind::SedovOverlay => Box::new(SedovOverlayPredictor),
            PredictorKind::UNetUntrained {
                grid_n,
                base_features,
                seed,
            } => Box::new(UNetPredictor::new(
                SurrogateModel::new(SurrogateConfig {
                    grid_n,
                    side: region_side,
                    base_features,
                    seed,
                }),
                seed,
            )),
        }
    }
}

/// Distributed run parameters.
#[derive(Debug, Clone, Copy)]
pub struct DistConfig {
    /// Main-rank process grid; `nx * ny * nz` main ranks.
    pub grid: (usize, usize, usize),
    /// Pool ranks (paper: ~50 at full scale; small runs use a few).
    pub n_pool: usize,
    /// Alltoallv routing for decomposition/LET traffic.
    pub routing: Routing,
    pub sim: SimConfig,
    /// Steps to integrate.
    pub steps: usize,
    /// The predictor served by the pool ranks.
    pub predictor: PredictorKind,
    /// Checkpoint cadence in steps (0 = off): every `snapshot_every`-th
    /// completed step the main ranks gather a [`DistSnapshot`] into the
    /// report, resumable with [`run_distributed_resume`].
    pub snapshot_every: u64,
}

impl DistConfig {
    pub fn n_main(&self) -> usize {
        self.grid.0 * self.grid.1 * self.grid.2
    }

    pub fn world_size(&self) -> usize {
        self.n_main() + self.n_pool
    }
}

/// Aggregated result of a distributed run.
#[derive(Debug, Clone)]
pub struct DistReport {
    /// Slowest-rank phase timings (the paper's measurement convention).
    pub phases: PhaseReport,
    pub steps: u64,
    pub sn_events: u64,
    pub regions_applied: u64,
    pub gravity_interactions: u64,
    pub hydro_interactions: u64,
    pub final_particles: u64,
    /// Communication volume per rank (bytes sent), main ranks only.
    pub bytes_sent: Vec<u64>,
    /// Checkpoints gathered at the [`DistConfig::snapshot_every`] cadence.
    pub snapshots: Vec<DistSnapshot>,
    /// The complete final particle state, sorted by id (restart-determinism
    /// audits compare this across runs).
    pub final_state: Vec<Particle>,
}

struct Pending {
    event_id: u64,
    due_step: u64,
    origin: usize,
    /// The dispatched request `(center, region gas)`, retained only when
    /// the run checkpoints (`snapshot_every > 0`) so a snapshot can capture
    /// in-flight regions (the pool's reply is deterministic in the
    /// request); `None` otherwise — no copy overhead on plain runs.
    payload: Option<([f64; 3], Vec<GasParticle>)>,
}

/// Run `cfg.steps` steps of the surrogate scheme across
/// `n_main + n_pool` ranks. `particles` is the full initial condition;
/// main ranks claim strided slices and immediately re-balance via domain
/// decomposition.
pub fn run_distributed(cfg: &DistConfig, particles: &[Particle]) -> DistReport {
    run_inner(cfg, particles, None)
}

/// Continue a distributed run from a checkpoint: each main rank takes back
/// exactly its snapshotted particle list (local order preserved, so force
/// evaluation is bitwise identical to the uninterrupted run) and in-flight
/// SN regions are re-dispatched to the pool with their original due steps.
/// `cfg.steps` more steps are integrated. The main-rank grid must match
/// the snapshotting run's.
pub fn run_distributed_resume(cfg: &DistConfig, snapshot: &DistSnapshot) -> DistReport {
    assert_eq!(
        snapshot.rank_particles.len(),
        cfg.n_main(),
        "resume requires the same main-rank grid as the snapshotting run"
    );
    run_inner(cfg, &[], Some(snapshot))
}

fn run_inner(
    cfg: &DistConfig,
    particles: &[Particle],
    resume: Option<&DistSnapshot>,
) -> DistReport {
    let n_main = cfg.n_main();
    assert!(n_main >= 1 && cfg.n_pool >= 1, "need main and pool ranks");
    let world = World::new(cfg.world_size());
    let (results, stats) = world.run_with_stats(|comm| {
        let is_pool = comm.rank() >= n_main;
        let sub = comm.split(is_pool as u64, comm.rank() as i64);
        if is_pool {
            let predictor = cfg.predictor.build(cfg.sim.region_side);
            pool_loop(comm, n_main, predictor.as_ref(), cfg);
            None
        } else {
            Some(main_loop(comm, &sub, cfg, particles, resume))
        }
    });
    let mut report = results
        .into_iter()
        .flatten()
        .next()
        .expect("at least one main rank");
    report.bytes_sent = stats[..n_main].iter().map(|s| s.bytes_sent).collect();
    report
}

/// The pool-rank service loop (paper Fig. 3 right half).
fn pool_loop(world: &Comm, n_main: usize, predictor: &dyn PoolPredictor, cfg: &DistConfig) {
    loop {
        // Shutdown signal from main rank 0 ends the service.
        if world.probe(0, TAG_SHUTDOWN) {
            let _: u8 = world.recv(0, TAG_SHUTDOWN);
            return;
        }
        let mut served = false;
        for src in 0..n_main {
            if world.probe(src, TAG_REGION) {
                let (event_id, center, gas): (u64, [f64; 3], Vec<GasParticle>) =
                    world.recv(src, TAG_REGION);
                let predicted = predictor.predict(
                    Vec3::new(center[0], center[1], center[2]),
                    E_SN,
                    cfg.sim.horizon(),
                    &gas,
                );
                world.send_vec(src, TAG_REPLY_BASE + event_id, predicted);
                served = true;
            }
        }
        if !served {
            std::thread::yield_now();
        }
    }
}

/// One main rank's integration loop.
fn main_loop(
    world: &Comm,
    main: &Comm,
    cfg: &DistConfig,
    all_particles: &[Particle],
    resume: Option<&DistSnapshot>,
) -> DistReport {
    let me = main.rank();
    let n_main = main.size();
    let sim = &cfg.sim;
    let eos = GammaLawEos::default();
    let cooling = astro::CoolingCurve::standard_ism();
    let mut timer = PhaseTimer::new();

    // Fresh runs claim strided slices of the initial condition (then
    // balance); resumed runs take back exactly their snapshotted list.
    let (mut particles, mut time, step0): (Vec<Particle>, f64, u64) = match resume {
        Some(s) => (s.rank_particles[me].clone(), s.time, s.step),
        None => (
            all_particles
                .iter()
                .skip(me)
                .step_by(n_main)
                .copied()
                .collect(),
            0.0,
            0,
        ),
    };

    let mut step: u64 = step0;
    let mut event_counter: u64 = 0;
    let mut pending: Vec<Pending> = Vec::new();
    let mut snapshots: Vec<DistSnapshot> = Vec::new();
    let mut sn_events = 0u64;
    let mut regions_applied = 0u64;
    let mut grav_inter = 0u64;
    let mut hydro_inter = 0u64;

    // Re-dispatch the checkpoint's in-flight regions (round-robin over the
    // main ranks — any rank may own a replay; replies come back by event
    // tag). The deterministic predictor reproduces the original replies,
    // due at their original absolute steps.
    if let Some(s) = resume {
        for (k, p) in s.pending.iter().enumerate() {
            if k % n_main != me {
                continue;
            }
            let event_id = event_counter * n_main as u64 + me as u64;
            let pool_rank = n_main + (event_id as usize % cfg.n_pool);
            world.send(pool_rank, TAG_REGION, (event_id, p.center, p.gas.clone()));
            pending.push(Pending {
                event_id,
                due_step: p.due_step,
                origin: pool_rank,
                payload: (cfg.snapshot_every > 0).then(|| (p.center, p.gas.clone())),
            });
            event_counter += 1;
        }
    }
    // Per-rank scratch arenas threaded through every step's force
    // evaluations: gravity results and SPH staging are refreshed in place,
    // so the steady-state loop does not re-collect them (the same
    // zero-allocation contract the shared-memory driver keeps).
    let mut grav_acc: Vec<Vec3> = Vec::new();
    let mut grav_pot: Vec<f64> = Vec::new();
    let mut sph_scratch = SphScratch::default();

    for _ in 0..cfg.steps {
        // --- Domain decomposition + particle exchange -------------------
        let dd = timer.region(main, phases::EXCHANGE_PARTICLE, || {
            let pos: Vec<Vec3> = particles.iter().map(|p| p.pos).collect();

            DomainDecomposition::decompose(main, cfg.grid, &pos, 512)
        });
        particles = timer.region(main, phases::EXCHANGE_PARTICLE, || {
            exchange_particles(
                main,
                &dd,
                std::mem::take(&mut particles),
                |p| p.pos,
                cfg.routing,
            )
        });

        // --- (1) Identify SNe -------------------------------------------
        let my_events: Vec<(u64, [f64; 3])> = timer.region(main, phases::IDENTIFY_SNE, || {
            let mut ev = Vec::new();
            for p in particles.iter_mut() {
                if p.is_star()
                    && !p.exploded
                    && explodes_in_interval(p.mass, p.birth_time, time, sim.dt_global)
                {
                    p.exploded = true;
                    ev.push((p.id, [p.pos.x, p.pos.y, p.pos.z]));
                }
            }
            ev
        });

        // --- (2) Ship SN regions to pool ranks ---------------------------
        timer.region(main, phases::SEND_SNE, || {
            // Everyone learns every event (origin = the rank owning the star).
            let all_events = main.allgatherv(my_events.clone());
            let mut flat: Vec<(usize, [f64; 3])> = Vec::new();
            for (origin, evs) in all_events.iter().enumerate() {
                for &(_, c) in evs {
                    flat.push((origin, c));
                }
            }
            // Each rank contributes its local gas inside each region cube,
            // tagged with the event ordinal, routed to the event's origin.
            let half = 0.5 * sim.region_side;
            let mut sends: Vec<Vec<(u32, GasParticle)>> = vec![Vec::new(); n_main];
            for (k, &(origin, c)) in flat.iter().enumerate() {
                let center = Vec3::new(c[0], c[1], c[2]);
                for p in particles.iter().filter(|p| {
                    p.is_gas() && {
                        let d = p.pos - center;
                        d.x.abs() < half && d.y.abs() < half && d.z.abs() < half
                    }
                }) {
                    sends[origin].push((
                        k as u32,
                        GasParticle {
                            pos: p.pos,
                            vel: p.vel,
                            mass: p.mass,
                            temp: eos.temperature_from_u(p.u),
                            h: p.h.max(1e-3),
                            id: p.id,
                        },
                    ));
                }
            }
            let gathered = main.alltoallv(sends);
            // Origin ranks assemble their events and ship to pool ranks.
            for (k, &(origin, c)) in flat.iter().enumerate() {
                if origin != me {
                    continue;
                }
                let region: Vec<GasParticle> = gathered
                    .iter()
                    .flatten()
                    .filter(|(ord, _)| *ord == k as u32)
                    .map(|(_, g)| *g)
                    .collect();
                if region.is_empty() {
                    continue;
                }
                let event_id = event_counter * n_main as u64 + me as u64;
                let pool_rank = n_main + (event_id as usize % cfg.n_pool);
                let payload = (cfg.snapshot_every > 0).then(|| (c, region.clone()));
                world.send(pool_rank, TAG_REGION, (event_id, c, region));
                pending.push(Pending {
                    event_id,
                    due_step: step + sim.pool_latency_steps as u64,
                    origin: pool_rank,
                    payload,
                });
                sn_events += 1;
                event_counter += 1;
            }
        });

        // --- Gravity: local tree, LET, force ----------------------------
        let pos: Vec<Vec3> = particles.iter().map(|p| p.pos).collect();
        let mass: Vec<f64> = particles.iter().map(|p| p.mass).collect();
        let local_tree = timer.region(main, phases::MAKE_LOCAL_TREE_1, || {
            Tree::build(&pos, &mass, 8)
        });
        let imports = timer.region(main, phases::EXCHANGE_LET_1, || {
            exchange_let(main, &dd, &local_tree, &pos, &mass, sim.theta, cfg.routing)
        });
        let n_local = particles.len();
        grav_inter += timer.region(main, phases::CALC_FORCE_1, || {
            let mut jpos = pos.clone();
            let mut jmass = mass.clone();
            for e in &imports {
                jpos.push(e.position());
                jmass.push(e.mass);
            }
            let solver = GravitySolver {
                g: G,
                theta: sim.theta,
                n_group: sim.n_group,
                n_leaf: 8,
                eps: sim.eps,
                mixed_precision: sim.mixed_precision,
            };
            let jtree = Tree::build(&jpos, &jmass, solver.n_leaf);
            solver.evaluate_into(&jtree, &jpos, &jmass, n_local, &mut grav_acc, &mut grav_pot)
        });

        // --- SPH: ghosts, kernel size + density, hydro force ------------
        let gas_idx: Vec<usize> = (0..n_local).filter(|&i| particles[i].is_gas()).collect();
        let mut state = HydroState::new(
            gas_idx.iter().map(|&i| particles[i].pos).collect(),
            gas_idx.iter().map(|&i| particles[i].vel).collect(),
            gas_idx.iter().map(|&i| particles[i].mass).collect(),
            gas_idx.iter().map(|&i| particles[i].u).collect(),
            gas_idx.iter().map(|&i| particles[i].h.max(1e-3)).collect(),
        );
        let n_gas_local = state.len();
        let sph_solver = SphSolver {
            density_cfg: sph::density::DensityConfig {
                n_ngb_target: sim.n_ngb,
                ..Default::default()
            },
            cfl: sim.cfl,
            ..Default::default()
        };
        timer.region(main, phases::PREPROCESS_FEEDBACK, || {
            // Ghost exchange for cross-domain SPH sums.
            #[derive(Clone)]
            struct Ghost {
                pos: Vec3,
                vel: Vec3,
                mass: f64,
                u: f64,
                h: f64,
            }
            let locals: Vec<Ghost> = gas_idx
                .iter()
                .map(|&i| Ghost {
                    pos: particles[i].pos,
                    vel: particles[i].vel,
                    mass: particles[i].mass,
                    u: particles[i].u,
                    h: particles[i].h.max(1e-3),
                })
                .collect();
            let ghosts = exchange_ghosts(main, &dd, &locals, |g| g.pos, |g| 2.0 * g.h, cfg.routing);
            for g in ghosts {
                state.pos.push(g.pos);
                state.vel.push(g.vel);
                state.mass.push(g.mass);
                state.u.push(g.u);
                state.h.push(g.h);
            }
            state.resize_derived();
        });
        let dstats = timer.region(main, phases::CALC_KERNEL_DENSITY_1, || {
            sph_solver.density_pass_with(&mut state, n_gas_local, &mut sph_scratch)
        });
        // Ghosts keep their exported h; approximate their rho by their own
        // value from the owner next step (first step: local estimate).
        for k in n_gas_local..state.len() {
            state.rho[k] = state.rho.get(k).copied().unwrap_or(0.0).max(1e-8);
        }
        let fstats = timer.region(main, phases::CALC_FORCE_1, || {
            sph_solver.force_pass_with(&mut state, n_gas_local, &mut sph_scratch)
        });
        hydro_inter += dstats.density_interactions + fstats.force_interactions;

        // --- Integration (kick-drift with the shared timestep) ----------
        timer.region(main, phases::INTEGRATION, || {
            let dt = sim.dt_global;
            for (k, &i) in gas_idx.iter().enumerate() {
                particles[i].vel += (grav_acc[i] + state.acc[k]) * dt;
                particles[i].u = (particles[i].u + state.dudt[k] * dt).max(1e-10);
                particles[i].h = state.h[k];
                particles[i].rho = state.rho[k];
            }
            for (i, p) in particles.iter_mut().enumerate() {
                if !p.is_gas() {
                    p.vel += grav_acc[i] * dt;
                }
                p.pos += p.vel * dt;
            }
        });
        timer.region(main, phases::FINAL_KICK, || {
            // Placeholder for the second half-kick of the full KDK; the
            // shared-memory driver integrates KDK exactly, here the phase
            // exists so the breakdown matches the paper's legend.
        });

        // --- (4) Receive due pool predictions ---------------------------
        timer.region(main, phases::RECEIVE_SNE, || {
            let due: Vec<Pending> = {
                let mut keep = Vec::new();
                let mut due = Vec::new();
                for p in pending.drain(..) {
                    if p.due_step <= step {
                        due.push(p);
                    } else {
                        keep.push(p);
                    }
                }
                pending = keep;
                due
            };
            // Collect replacements on origin ranks, then share with all
            // mains so owners can apply them by ID.
            let mut mine: Vec<GasParticle> = Vec::new();
            for d in due {
                let predicted: Vec<GasParticle> =
                    world.recv_vec(d.origin, TAG_REPLY_BASE + d.event_id);
                mine.extend(predicted);
                regions_applied += 1;
            }
            let shared = main.allgatherv(mine);
            use std::collections::HashMap;
            let mut index: HashMap<u64, usize> = HashMap::new();
            for (i, p) in particles.iter().enumerate() {
                if p.is_gas() {
                    index.insert(p.id, i);
                }
            }
            for g in shared.into_iter().flatten() {
                if let Some(&i) = index.get(&g.id) {
                    let p = &mut particles[i];
                    p.pos = g.pos;
                    p.vel = g.vel;
                    p.mass = g.mass;
                    p.u = eos.u_from_temperature(g.temp.max(1.0));
                    p.h = g.h;
                }
            }
        });

        // --- (6) Cooling / heating + star formation ---------------------
        timer.region(main, phases::FEEDBACK_COOLING, || {
            if sim.cooling {
                for p in particles.iter_mut() {
                    if p.is_gas() && p.rho > 0.0 {
                        let t_now = eos.temperature_from_u(p.u);
                        let nh = p.rho * NH_PER_MSUN_PC3;
                        let t_new = cooling.update(t_now, nh, sim.dt_global);
                        p.u = eos.u_from_temperature(t_new.max(10.0));
                    }
                }
            }
        });
        timer.region(main, phases::STAR_FORMATION, || {
            // Star formation runs in the shared-memory driver; the phase is
            // timed here for the breakdown's completeness.
        });

        // --- (7) Second kernel/force pass after the energy update -------
        let d2 = timer.region(main, phases::CALC_KERNEL_SIZE_2, || {
            sph_solver.density_pass_with(&mut state, n_gas_local, &mut sph_scratch)
        });
        timer.region(main, phases::MAKE_TREE_2, || {
            let pos2: Vec<Vec3> = particles.iter().map(|p| p.pos).collect();
            let mass2: Vec<f64> = particles.iter().map(|p| p.mass).collect();
            Tree::build(&pos2, &mass2, 8)
        });
        timer.region(main, phases::EXCHANGE_LET_2, || {
            // The hydro LET is much smaller than the gravity one; reuse the
            // ghost machinery's volume by a no-op barrier-timed phase here.
        });
        let f2 = timer.region(main, phases::CALC_FORCE_2, || {
            sph_solver.force_pass_with(&mut state, n_gas_local, &mut sph_scratch)
        });
        hydro_inter += d2.density_interactions + f2.force_interactions;

        time += sim.dt_global;
        step += 1;

        // --- Checkpoint at the configured cadence -----------------------
        if cfg.snapshot_every > 0 && step.is_multiple_of(cfg.snapshot_every) {
            let all_parts = main.allgatherv(particles.clone());
            let my_pending: Vec<DistPending> = pending
                .iter()
                .map(|p| {
                    let (center, gas) = p
                        .payload
                        .clone()
                        .expect("pending payload is retained when snapshot_every > 0");
                    DistPending {
                        due_step: p.due_step,
                        center,
                        gas,
                    }
                })
                .collect();
            let all_pending = main.allgatherv(my_pending);
            if me == 0 {
                snapshots.push(DistSnapshot {
                    step,
                    time,
                    rank_particles: all_parts,
                    pending: all_pending.into_iter().flatten().collect(),
                });
            }
        }
    }

    // Drain any remaining pool replies so messages don't leak, then stop
    // the pool ranks.
    for d in pending.drain(..) {
        let _: Vec<GasParticle> = world.recv_vec(d.origin, TAG_REPLY_BASE + d.event_id);
    }
    main.barrier();
    if me == 0 {
        for pr in 0..cfg.n_pool {
            world.send(n_main + pr, TAG_SHUTDOWN, 1u8);
        }
    }

    let phases = timer.report_max(main);
    let total_particles = main.allreduce_sum_u64(particles.len() as u64);
    let final_state = {
        let all = main.allgatherv(particles.clone());
        if me == 0 {
            let mut flat: Vec<Particle> = all.into_iter().flatten().collect();
            flat.sort_by_key(|p| p.id);
            flat
        } else {
            Vec::new()
        }
    };
    DistReport {
        phases,
        steps: step - step0,
        sn_events: main.allreduce_sum_u64(sn_events),
        regions_applied: main.allreduce_sum_u64(regions_applied),
        gravity_interactions: main.allreduce_sum_u64(grav_inter),
        hydro_interactions: main.allreduce_sum_u64(hydro_inter),
        final_particles: total_particles,
        bytes_sent: Vec::new(),
        snapshots,
        final_state,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;
    use astro::lifetime::stellar_lifetime_myr;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn disk_ic(n_gas: usize, n_dm: usize, with_sn: bool, dt: f64) -> Vec<Particle> {
        let mut rng = StdRng::seed_from_u64(11);
        let mut out = Vec::new();
        let mut id = 0u64;
        for _ in 0..n_gas {
            out.push(Particle::gas(
                id,
                Vec3::new(
                    rng.gen_range(-50.0..50.0),
                    rng.gen_range(-50.0..50.0),
                    rng.gen_range(-10.0..10.0),
                ),
                Vec3::ZERO,
                1.0,
                1.0,
                5.0,
            ));
            id += 1;
        }
        for _ in 0..n_dm {
            out.push(Particle::dm(
                id,
                Vec3::new(
                    rng.gen_range(-80.0..80.0),
                    rng.gen_range(-80.0..80.0),
                    rng.gen_range(-80.0..80.0),
                ),
                Vec3::ZERO,
                10.0,
            ));
            id += 1;
        }
        if with_sn {
            let m = 10.0;
            let birth = dt * 1.5 - stellar_lifetime_myr(m);
            out.push(Particle::star(id, Vec3::ZERO, Vec3::ZERO, m, birth));
        }
        out
    }

    fn test_cfg(steps: usize, latency: usize) -> DistConfig {
        DistConfig {
            grid: (2, 2, 1),
            n_pool: 2,
            routing: Routing::Flat,
            sim: SimConfig {
                scheme: Scheme::Surrogate,
                dt_global: 2.0e-3,
                pool_latency_steps: latency,
                cooling: false,
                star_formation: false,
                eps: 1.0,
                n_ngb: 16,
                ..Default::default()
            },
            steps,
            predictor: PredictorKind::SedovOverlay,
            snapshot_every: 0,
        }
    }

    #[test]
    fn distributed_run_completes_and_conserves_particles() {
        let ic = disk_ic(300, 100, false, 2.0e-3);
        let cfg = test_cfg(3, 2);
        let report = run_distributed(&cfg, &ic);
        assert_eq!(report.steps, 3);
        assert_eq!(report.final_particles, ic.len() as u64);
        assert_eq!(report.sn_events, 0);
        assert!(report.gravity_interactions > 0);
        assert!(report.hydro_interactions > 0);
    }

    #[test]
    fn sn_region_round_trips_through_the_pool() {
        let dt = 2.0e-3;
        let ic = disk_ic(400, 0, true, dt);
        let cfg = test_cfg(6, 3);
        let report = run_distributed(&cfg, &ic);
        assert_eq!(report.sn_events, 1, "the SN must be identified once");
        assert_eq!(
            report.regions_applied, 1,
            "the prediction must come back and be applied"
        );
    }

    #[test]
    fn phase_report_contains_paper_phases() {
        let ic = disk_ic(200, 50, false, 2.0e-3);
        let cfg = test_cfg(2, 2);
        let report = run_distributed(&cfg, &ic);
        for name in [
            phases::EXCHANGE_PARTICLE,
            phases::MAKE_LOCAL_TREE_1,
            phases::EXCHANGE_LET_1,
            phases::CALC_FORCE_1,
            phases::CALC_KERNEL_DENSITY_1,
            phases::INTEGRATION,
            phases::RECEIVE_SNE,
            phases::SEND_SNE,
        ] {
            assert!(
                report.phases.get(name).is_some(),
                "missing phase {name} in report"
            );
        }
        assert!(report.phases.total_s() > 0.0);
    }

    #[test]
    fn torus_routing_produces_same_particle_totals() {
        let ic = disk_ic(250, 80, false, 2.0e-3);
        let mut cfg = test_cfg(2, 2);
        let flat = run_distributed(&cfg, &ic);
        cfg.routing = Routing::Torus;
        let torus = run_distributed(&cfg, &ic);
        assert_eq!(flat.final_particles, torus.final_particles);
    }

    #[test]
    fn unet_predictor_kind_serves_the_pool_ranks() {
        // The satellite fix for the hardcoded SedovOverlayPredictor: a
        // U-Net predictor configured through DistConfig must serve the
        // round-trip end to end.
        let dt = 2.0e-3;
        let ic = disk_ic(300, 0, true, dt);
        let mut cfg = test_cfg(5, 2);
        cfg.predictor = PredictorKind::UNetUntrained {
            grid_n: 8,
            base_features: 2,
            seed: 7,
        };
        let report = run_distributed(&cfg, &ic);
        assert_eq!(report.sn_events, 1);
        assert_eq!(
            report.regions_applied, 1,
            "the U-Net prediction must come back and be applied"
        );
    }

    #[test]
    fn distributed_resume_reproduces_the_uninterrupted_run_bitwise() {
        // 6 steps straight vs snapshot-at-3 + resume-for-3 — with an SN
        // region still pending in the pool queue at the snapshot step
        // (latency 4 > snapshot step 3 - explosion step 1).
        let dt = 2.0e-3;
        let ic = disk_ic(300, 60, true, dt);
        let mut cfg = test_cfg(6, 4);
        cfg.snapshot_every = 3;
        let full = run_distributed(&cfg, &ic);
        assert_eq!(full.sn_events, 1);
        assert_eq!(full.regions_applied, 1);
        assert_eq!(full.snapshots.len(), 2, "snapshots at steps 3 and 6");

        let snap = &full.snapshots[0];
        assert_eq!(snap.step, 3);
        assert_eq!(
            snap.pending.len(),
            1,
            "the SN region must still be in flight at the snapshot"
        );
        // The checkpoint survives its binary encoding.
        let snap = crate::snapshot::DistSnapshot::from_bytes(&snap.to_bytes()).expect("roundtrip");

        let mut resume_cfg = cfg;
        resume_cfg.steps = 3;
        let resumed = run_distributed_resume(&resume_cfg, &snap);
        assert_eq!(resumed.steps, 3);
        assert_eq!(
            resumed.regions_applied, 1,
            "the replayed region must be applied after the restart"
        );
        assert_eq!(full.final_state.len(), ic.len());
        assert_eq!(resumed.final_state.len(), ic.len());
        for (a, b) in full.final_state.iter().zip(&resumed.final_state) {
            assert_eq!(a, b, "resumed particle {} diverged", a.id);
        }
    }
}
