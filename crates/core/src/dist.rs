//! Distributed driver: the paper's main/pool architecture over `mpisim`.
//!
//! The world communicator is split (paper §3.1): *main* ranks integrate the
//! galaxy with domain decomposition, LET gravity, ghost-exchange SPH and a
//! KDK leapfrog; *pool* ranks sit in a service loop running the SN
//! predictor. Regions travel main → pool when an SN is identified and come
//! back `pool_latency_steps` later, exactly as in Fig. 3. Every phase is
//! timed with barrier brackets under the paper's phase names, which is what
//! Figures 6/7 and Table 3 plot.
//!
//! # Phase map (paper Fig. 6/7 legend → where it is measured here)
//!
//! | Legend entry | Global (KDK) | Block (substepped) |
//! |---|---|---|
//! | `Exchange_Particle` | decomposition + migration, once per step | once per base step |
//! | `Identify_SNe` / `Send_SNe` | SN scan + region gather/dispatch | same, at base cadence |
//! | `1st Make_Local_Tree` / `1st Exchange_LET` | gravity tree + LET of the opening force pass | base-step full pass |
//! | `1st Calc_Force` | gravity + SPH forces of the opening pass | base-step full pass |
//! | `Preprocess_of_Feedback` | SPH ghost exchange (pre-density + owner-value refresh) | **per-substep ghost refresh** — the synchronization cost §1 charges against individual timesteps |
//! | `1st Calc_Kernel_Size_and_Density` | kernel-size/density of the opening pass | base-step full pass |
//! | `Integration` | opening half-kick + drift | level assignment, schedule reduction, opening half-kick and per-substep drift-prediction of *all* particles |
//! | `2nd Make_Tree` / `2nd Exchange_LET` | gravity tree + LET of the closing (re-force) pass | per-substep moment refresh of the cached source tree (LET imports reused) |
//! | `2nd Calc_Kernel_Size` | density of the closing pass | per-substep active-set density |
//! | `2nd Calc_Force` | gravity + SPH forces of the closing pass | per-substep active-set forces |
//! | `Final_kick (brdg asso)` | closing half-kick | per-substep closing/opening kicks of the active set |
//! | `Receive_SNe` / `Feedback_and_Cooling (direct)` / `Star Formation` | pool replies, cooling, (timed placeholder) | same, at base cadence |
//!
//! In `Global` mode the loop is a true kick–drift–kick: the opening force
//! pass (`1st *` phases) feeds the half-kick + drift, a full re-force at
//! the drifted positions (`2nd *` phases — a real evaluation, not a timed
//! placeholder) feeds the closing half-kick under `Final_kick`. This
//! matches the shared-memory driver's integration order.
//!
//! # Distributed block timesteps
//!
//! [`TimestepMode::Block`](crate::config::TimestepMode) runs the paper's
//! *conventional* hierarchy across ranks so its per-substep
//! synchronization cost (§1, §5.3, Figs. 6/7) is measured rather than
//! modeled. The schedule-reduction protocol per base step:
//!
//! 1. each rank computes per-particle desired dts from the base-step full
//!    force pass ([`scheduler::desired_timesteps`]) and bins them into
//!    power-of-two levels locally ([`ActiveScheduler::assign`] — the level
//!    of a particle depends only on its own dt and the shared `dt_global`,
//!    so binning needs no communication);
//! 2. the deepest occupied level is allreduce-maxed over the main ranks
//!    (equivalently: allreduce-min of the finest quantized dt) and every
//!    rank raises its schedule to the agreed depth
//!    ([`scheduler::reduce_depth_world`]), so all ranks walk the identical
//!    `2^depth` fine-substep boundaries and enter the identical sequence
//!    of collectives;
//! 3. each fine substep drifts *all* particles (inactive ones are thereby
//!    drift-predicted), refreshes the SPH ghosts (two collective
//!    exchanges: pre-density, then owner-converged values — this is the
//!    cost that dominates Fig. 6/7 when active fractions are small),
//!    moment-refreshes the cached gravity source tree
//!    ([`fdps::Tree::refresh`], LET imports frozen at their base-step
//!    positions, full rebuild when the 5%-of-cube drift bound trips) and
//!    the SPH neighbor tree, and gives only the boundary's active set new
//!    forces and kicks.
//!
//! Domain decomposition, SN identification/dispatch, pool replies and
//! cooling stay at the base cadence, as conventional codes re-synchronize
//! there. Per-rank [`SimStats`] (substeps, active updates, tree
//! refresh/rebuild splits) are gathered into [`DistReport::rank_stats`].
//!
//! # Ghost exchange
//!
//! SPH ghosts are exchanged twice per force evaluation: once before the
//! density pass (positions/masses make boundary densities exact), and
//! again after it with the *owner's* freshly converged `rho`/`h` and
//! current `u`/`vel` — the second exchange re-selects with the identical
//! per-particle reach, so it returns the same ghosts in the same order and
//! the entries are overwritten in place. Ghost densities are therefore the
//! owning rank's same-pass values, never a locally invented clamp.

use crate::config::{SimConfig, TimestepMode};
use crate::particle::Particle;
use crate::phases;
use crate::pool::{PoolPredictor, SedovOverlayPredictor, UNetPredictor};
use crate::scheduler::{self, ActiveScheduler};
pub use crate::sim::SimStats;
pub use crate::snapshot::{DistPending, DistSnapshot};
use crate::snapshot::{ModelState, ScheduleState};
use astro::lifetime::explodes_in_interval;
use astro::units::{E_SN, G, NH_PER_MSUN_PC3};
use fdps::domain::DomainDecomposition;
use fdps::exchange::{exchange_ghosts, exchange_particles, Routing};
use fdps::let_exchange::exchange_let;
use fdps::{Tree, Vec3, WalkIndex};
use gravity::GravitySolver;
use mpisim::{Comm, PhaseReport, PhaseTimer, World};
use sph::solver::{HydroState, SphScratch, SphSolver};
use sph::GammaLawEos;
use std::fmt;
use surrogate::{GasParticle, SurrogateConfig, SurrogateModel};

const TAG_REGION: u64 = 50;
const TAG_SHUTDOWN: u64 = 51;
const TAG_REPLY_BASE: u64 = 1_000_000;

/// Which predictor the pool ranks run (paper Fig. 3 step 3). A config-level
/// enum rather than a trait object so [`DistConfig`] stays cloneable and
/// every pool rank can construct its own instance.
#[derive(Debug, Clone, PartialEq)]
pub enum PredictorKind {
    /// Analytic Sedov–Taylor overlay: deterministic and cheap (the default,
    /// and the reference the U-Net is trained to imitate).
    SedovOverlay,
    /// The U-Net surrogate pipeline (voxelize → net → Gibbs resample) with
    /// freshly initialized weights — the full paper data path on the pool
    /// ranks, used for plumbing tests; production runs load trained
    /// weights with [`PredictorKind::UNetTrained`].
    UNetUntrained {
        grid_n: usize,
        base_features: usize,
        seed: u64,
    },
    /// Trained weights from an `asura train-surrogate` file. The CLI-facing
    /// form: [`PredictorKind::resolve`] reads and validates the file
    /// up front (before any rank is spawned), turning it into
    /// [`PredictorKind::UNetWeights`] or a typed
    /// [`DistError::BadWeights`] — never a loader panic.
    UNetTrained {
        /// Path of the weights JSON document.
        path: String,
        /// Per-request Gibbs-resampling RNG seed.
        seed: u64,
    },
    /// Trained weights held inline (the resolved form of
    /// [`PredictorKind::UNetTrained`], and what snapshots embed): the
    /// verbatim, checksummed [`SurrogateModel::to_json`] document.
    UNetWeights { seed: u64, weights_json: String },
}

impl PredictorKind {
    /// Validate any file-backed weights and return the self-contained form:
    /// [`PredictorKind::UNetTrained`] becomes
    /// [`PredictorKind::UNetWeights`] (or [`DistError::BadWeights`] if the
    /// file is missing, foreign, or corrupt); every other kind is returned
    /// unchanged. Run drivers call this before spawning ranks so bad
    /// weights surface as a typed error, not a mid-run panic.
    pub fn resolve(&self) -> Result<PredictorKind, DistError> {
        match self {
            PredictorKind::UNetTrained { path, seed } => {
                let text = std::fs::read_to_string(path).map_err(|e| DistError::BadWeights {
                    path: path.clone(),
                    reason: e.to_string(),
                })?;
                // Full decode (checksum included) so corruption is caught
                // here; build() below re-parses the validated text.
                SurrogateModel::from_json(&text).map_err(|reason| DistError::BadWeights {
                    path: path.clone(),
                    reason,
                })?;
                Ok(PredictorKind::UNetWeights {
                    seed: *seed,
                    weights_json: text,
                })
            }
            other => Ok(other.clone()),
        }
    }

    /// Instantiate the predictor for regions of side `region_side`.
    /// File-backed kinds must be [`resolve`](PredictorKind::resolve)d
    /// first; inline weights have already been validated there (or came
    /// out of a checksummed snapshot), so a decode failure here is a
    /// driver bug, not bad input.
    pub fn build(&self, region_side: f64) -> Box<dyn PoolPredictor> {
        match self {
            PredictorKind::SedovOverlay => Box::new(SedovOverlayPredictor),
            PredictorKind::UNetUntrained {
                grid_n,
                base_features,
                seed,
            } => Box::new(UNetPredictor::new(
                SurrogateModel::new(SurrogateConfig {
                    grid_n: *grid_n,
                    side: region_side,
                    base_features: *base_features,
                    seed: *seed,
                }),
                *seed,
            )),
            PredictorKind::UNetTrained { path, seed } => {
                let resolved = PredictorKind::UNetTrained {
                    path: path.clone(),
                    seed: *seed,
                }
                .resolve()
                .expect("unresolved weights file: call PredictorKind::resolve first");
                resolved.build(region_side)
            }
            PredictorKind::UNetWeights { seed, weights_json } => Box::new(
                UNetPredictor::from_weights(*seed, weights_json, region_side)
                    .expect("inline weights were validated at resolve time"),
            ),
        }
    }

    /// The model state a checkpoint should embed for this predictor:
    /// `Some` for trained weights (resolved or file-backed after
    /// [`resolve`](PredictorKind::resolve)), `None` for the analytic and
    /// untrained kinds, which rebuild deterministically from config alone.
    pub fn model_state(&self) -> Option<ModelState> {
        match self {
            PredictorKind::UNetWeights { seed, weights_json } => Some(ModelState {
                seed: *seed,
                weights_json: weights_json.clone(),
            }),
            _ => None,
        }
    }
}

/// Distributed run parameters.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// Main-rank process grid; `nx * ny * nz` main ranks.
    pub grid: (usize, usize, usize),
    /// Pool ranks (paper: ~50 at full scale; small runs use a few).
    pub n_pool: usize,
    /// Alltoallv routing for decomposition/LET traffic.
    pub routing: Routing,
    pub sim: SimConfig,
    /// Steps to integrate (base steps in [`TimestepMode::Block`]).
    pub steps: usize,
    /// The predictor served by the pool ranks.
    pub predictor: PredictorKind,
    /// Checkpoint cadence in steps (0 = off): every `snapshot_every`-th
    /// completed step the main ranks gather a [`DistSnapshot`] into the
    /// report, resumable with [`run_distributed_resume`].
    pub snapshot_every: u64,
}

impl DistConfig {
    pub fn n_main(&self) -> usize {
        self.grid.0 * self.grid.1 * self.grid.2
    }

    pub fn world_size(&self) -> usize {
        self.n_main() + self.n_pool
    }
}

/// Typed failure of the distributed driver. Conditions that used to
/// `expect()`-panic on recoverable state now surface as values: the
/// up-front configuration errors are returned as `Err` from
/// [`run_distributed`]/[`run_distributed_resume`] before any rank is
/// spawned, and mid-run degradation is recorded in
/// [`DistReport::error`] — the run breaks out of its step loop at a
/// collective point (so no rank deadlocks in a collective), gathers a
/// final checkpoint, shuts the pool down cleanly, and returns what it
/// has instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistError {
    /// The main-rank grid is empty (`grid` multiplies to zero).
    NoMainRank,
    /// No pool ranks are configured to serve SN-region predictions.
    NoPoolRank,
    /// A resume snapshot's rank count does not match the configured grid.
    GridMismatch {
        snapshot_ranks: usize,
        config_ranks: usize,
    },
    /// A checkpoint gather found in-flight SN regions whose request
    /// payloads were not retained (world total across ranks) — the run
    /// can no longer produce a resumable snapshot and aborts with its
    /// last complete state.
    MissingPendingPayload { count: u64 },
    /// A trained-weights file could not be read or failed validation
    /// (foreign document, damaged weights, checksum mismatch). Raised by
    /// [`PredictorKind::resolve`] before any rank is spawned; the CLI maps
    /// it to a permanent exit so the supervisor never retries a run whose
    /// weights can never load.
    BadWeights { path: String, reason: String },
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::NoMainRank => write!(f, "distributed run needs at least one main rank"),
            DistError::NoPoolRank => write!(f, "distributed run needs at least one pool rank"),
            DistError::GridMismatch {
                snapshot_ranks,
                config_ranks,
            } => write!(
                f,
                "resume requires the snapshotting run's main-rank grid: \
                 snapshot has {snapshot_ranks} ranks, config has {config_ranks}"
            ),
            DistError::MissingPendingPayload { count } => write!(
                f,
                "{count} in-flight SN region(s) lost their request payload; \
                 aborting with the last complete checkpoint"
            ),
            DistError::BadWeights { path, reason } => {
                write!(f, "cannot load surrogate weights `{path}`: {reason}")
            }
        }
    }
}

impl std::error::Error for DistError {}

/// Aggregated result of a distributed run.
#[derive(Debug, Clone)]
pub struct DistReport {
    /// Slowest-rank phase timings (the paper's measurement convention).
    pub phases: PhaseReport,
    pub steps: u64,
    pub sn_events: u64,
    pub regions_applied: u64,
    pub gravity_interactions: u64,
    pub hydro_interactions: u64,
    pub final_particles: u64,
    /// Communication volume per rank (bytes sent), main ranks only.
    pub bytes_sent: Vec<u64>,
    /// Checkpoints gathered at the [`DistConfig::snapshot_every`] cadence.
    pub snapshots: Vec<DistSnapshot>,
    /// The complete final particle state, sorted by id (restart-determinism
    /// audits compare this across runs).
    pub final_state: Vec<Particle>,
    /// Per-main-rank integration counters (substeps, active updates, tree
    /// refresh/rebuild splits, dt floor) — [`TimestepMode::Block`] runs
    /// populate the substep counters on every rank, and schedule agreement
    /// shows up as identical `substeps` across the vector.
    pub rank_stats: Vec<SimStats>,
    /// `Some` when the run degraded mid-flight and aborted early: the
    /// report then holds everything integrated up to the abort, including
    /// a final checkpoint in `snapshots`, and callers should treat the
    /// run as failed-but-recoverable rather than complete.
    pub error: Option<DistError>,
}

struct Pending {
    event_id: u64,
    due_step: u64,
    origin: usize,
    /// The dispatched request `(center, region gas)`, retained only when
    /// the run checkpoints (`snapshot_every > 0`) so a snapshot can capture
    /// in-flight regions (the pool's reply is deterministic in the
    /// request); `None` otherwise — no copy overhead on plain runs.
    payload: Option<([f64; 3], Vec<GasParticle>)>,
}

/// Run `cfg.steps` steps of the surrogate scheme across
/// `n_main + n_pool` ranks. `particles` is the full initial condition;
/// main ranks claim strided slices and immediately re-balance via domain
/// decomposition.
pub fn run_distributed(cfg: &DistConfig, particles: &[Particle]) -> Result<DistReport, DistError> {
    run_inner(cfg, particles, None)
}

/// Continue a distributed run from a checkpoint: each main rank takes back
/// exactly its snapshotted particle list (local order preserved, so force
/// evaluation is bitwise identical to the uninterrupted run) and in-flight
/// SN regions are re-dispatched to the pool with their original due steps.
/// `cfg.steps` more steps are integrated. The main-rank grid must match
/// the snapshotting run's (a mismatch is [`DistError::GridMismatch`]).
pub fn run_distributed_resume(
    cfg: &DistConfig,
    snapshot: &DistSnapshot,
) -> Result<DistReport, DistError> {
    if snapshot.rank_particles.len() != cfg.n_main() {
        return Err(DistError::GridMismatch {
            snapshot_ranks: snapshot.rank_particles.len(),
            config_ranks: cfg.n_main(),
        });
    }
    run_inner(cfg, &[], Some(snapshot))
}

fn run_inner(
    cfg: &DistConfig,
    particles: &[Particle],
    resume: Option<&DistSnapshot>,
) -> Result<DistReport, DistError> {
    let n_main = cfg.n_main();
    if n_main < 1 {
        return Err(DistError::NoMainRank);
    }
    if cfg.n_pool < 1 {
        return Err(DistError::NoPoolRank);
    }
    // Validate file-backed weights before any rank is spawned: a bad file
    // is a typed error here, never a pool-rank panic. A resume snapshot
    // that carries a model overrides the configured predictor entirely —
    // the pool replays the exact weights that produced the checkpoint.
    let mut cfg = cfg.clone();
    cfg.predictor = match resume.and_then(|s| s.model.as_ref()) {
        Some(m) => PredictorKind::UNetWeights {
            seed: m.seed,
            weights_json: m.weights_json.clone(),
        },
        None => cfg.predictor.resolve()?,
    };
    let cfg = &cfg;
    let world = World::new(cfg.world_size());
    let (results, stats) = world.run_with_stats(|comm| {
        let is_pool = comm.rank() >= n_main;
        let sub = comm.split(is_pool as u64, comm.rank() as i64);
        if is_pool {
            let predictor = cfg.predictor.build(cfg.sim.region_side);
            pool_loop(comm, n_main, predictor.as_ref(), cfg);
            None
        } else {
            Some(main_loop(comm, &sub, cfg, particles, resume))
        }
    });
    let mut report = results
        .into_iter()
        .flatten()
        .next()
        .ok_or(DistError::NoMainRank)?;
    report.bytes_sent = stats[..n_main].iter().map(|s| s.bytes_sent).collect();
    Ok(report)
}

/// The pool-rank service loop (paper Fig. 3 right half).
fn pool_loop(world: &Comm, n_main: usize, predictor: &dyn PoolPredictor, cfg: &DistConfig) {
    loop {
        // Shutdown signal from main rank 0 ends the service.
        if world.probe(0, TAG_SHUTDOWN) {
            let _: u8 = world.recv(0, TAG_SHUTDOWN);
            return;
        }
        let mut served = false;
        for src in 0..n_main {
            if world.probe(src, TAG_REGION) {
                let (event_id, center, gas): (u64, [f64; 3], Vec<GasParticle>) =
                    world.recv(src, TAG_REGION);
                let predicted = predictor.predict(
                    Vec3::new(center[0], center[1], center[2]),
                    E_SN,
                    cfg.sim.horizon(),
                    &gas,
                );
                world.send_vec(src, TAG_REPLY_BASE + event_id, predicted);
                served = true;
            }
        }
        if !served {
            std::thread::yield_now();
        }
    }
}

/// One SPH ghost record: the owner's current state plus the exchange
/// reach it was selected with (stored so the post-density refresh
/// re-selects the identical ghost set — see the module docs).
#[derive(Clone)]
struct Ghost {
    pos: Vec3,
    vel: Vec3,
    mass: f64,
    u: f64,
    h: f64,
    rho: f64,
    reach: f64,
}

/// Phase names of one full force evaluation; the opening (base-step) pass
/// records under the `1st *` legend entries, the KDK re-force and the
/// substep path under the `2nd *` ones.
struct PassPhases {
    tree: &'static str,
    let_exchange: &'static str,
    grav_force: &'static str,
    density: &'static str,
    sph_force: &'static str,
}

const PASS_OPENING: PassPhases = PassPhases {
    tree: phases::MAKE_LOCAL_TREE_1,
    let_exchange: phases::EXCHANGE_LET_1,
    grav_force: phases::CALC_FORCE_1,
    density: phases::CALC_KERNEL_DENSITY_1,
    sph_force: phases::CALC_FORCE_1,
};

const PASS_CLOSING: PassPhases = PassPhases {
    tree: phases::MAKE_TREE_2,
    let_exchange: phases::EXCHANGE_LET_2,
    grav_force: phases::CALC_FORCE_2,
    density: phases::CALC_KERNEL_SIZE_2,
    sph_force: phases::CALC_FORCE_2,
};

/// Per-rank force-evaluation state: persistent scratch arenas (the same
/// zero-allocation contract the shared-memory driver keeps) plus the
/// base-step source caches — gravity tree over locals + LET imports, walk
/// index, hydro state — that the substep walk moment-refreshes instead of
/// rebuilding.
struct RankForces {
    grav_acc: Vec<Vec3>,
    grav_pot: Vec<f64>,
    sph: SphScratch,
    /// Combined gravity + SPH acceleration per local particle.
    acc: Vec<Vec3>,
    /// Specific-energy rate per local particle (0 for collisionless).
    dudt: Vec<f64>,
    /// `(particle index, v_sig, h)` from the last SPH force pass.
    vsig: Vec<(usize, f64, f64)>,
    /// Gravity source system: local positions followed by LET imports.
    jpos: Vec<Vec3>,
    jmass: Vec<f64>,
    jtree: Option<Tree>,
    jwalk: Option<WalkIndex>,
    /// Source positions at the last full build (drift-bound reference).
    ref_pos: Vec<Vec3>,
    /// Hydro state: local gas first, then ghosts.
    state: HydroState,
    gas_idx: Vec<usize>,
    /// Particle index → hydro-local index (`NOT_GAS_LOCAL` for non-gas).
    gas_local: Vec<u32>,
    n_gas_local: usize,
    /// Pre-density exchange reach per local gas particle, reused by the
    /// post-density ghost refresh so the selection is identical.
    reach0: Vec<f64>,
    active_mask: Vec<bool>,
    active_gas: Vec<usize>,
    dt_wanted: Vec<f64>,
    active: Vec<u32>,
}

const NOT_GAS_LOCAL: u32 = u32::MAX;

impl RankForces {
    fn new() -> Self {
        RankForces {
            grav_acc: Vec::new(),
            grav_pot: Vec::new(),
            sph: SphScratch::default(),
            acc: Vec::new(),
            dudt: Vec::new(),
            vsig: Vec::new(),
            jpos: Vec::new(),
            jmass: Vec::new(),
            jtree: None,
            jwalk: None,
            ref_pos: Vec::new(),
            state: HydroState::default(),
            gas_idx: Vec::new(),
            gas_local: Vec::new(),
            n_gas_local: 0,
            reach0: Vec::new(),
            active_mask: Vec::new(),
            active_gas: Vec::new(),
            dt_wanted: Vec::new(),
            active: Vec::new(),
        }
    }

    fn gravity_solver(sim: &SimConfig) -> GravitySolver {
        GravitySolver {
            g: G,
            theta: sim.theta,
            n_group: sim.n_group,
            n_leaf: 8,
            eps: sim.eps,
            mixed_precision: sim.mixed_precision,
        }
    }

    fn sph_solver(sim: &SimConfig) -> SphSolver {
        SphSolver {
            density_cfg: sph::density::DensityConfig {
                n_ngb_target: sim.n_ngb,
                ..Default::default()
            },
            cfl: sim.cfl,
            ..Default::default()
        }
    }

    /// Refill the hydro-local arrays from the particle state (positions,
    /// velocities and energies move between passes; `h`/`rho` carry each
    /// particle's latest converged values).
    fn stage_hydro_locals(&mut self, particles: &[Particle]) {
        let st = &mut self.state;
        st.pos.clear();
        st.vel.clear();
        st.mass.clear();
        st.u.clear();
        st.h.clear();
        st.rho.clear();
        for &i in &self.gas_idx {
            let p = &particles[i];
            st.pos.push(p.pos);
            st.vel.push(p.vel);
            st.mass.push(p.mass);
            st.u.push(p.u);
            st.h.push(p.h.max(1e-3));
            st.rho.push(p.rho);
        }
    }

    /// Export the local gas as ghost payloads (current owner values).
    fn ghost_payloads(&self) -> Vec<Ghost> {
        let st = &self.state;
        (0..self.n_gas_local)
            .map(|k| Ghost {
                pos: st.pos[k],
                vel: st.vel[k],
                mass: st.mass[k],
                u: st.u[k],
                h: st.h[k],
                rho: st.rho[k],
                reach: self.reach0[k],
            })
            .collect()
    }

    /// Pre-density ghost exchange: append the other ranks' boundary gas to
    /// the hydro state (their `rho` is the owner's previous value; the
    /// post-density [`RankForces::refresh_ghosts`] replaces it with the
    /// same-pass one).
    fn exchange_ghosts_initial(&mut self, main: &Comm, dd: &DomainDecomposition, routing: Routing) {
        self.reach0.clear();
        self.reach0
            .extend(self.state.h[..self.n_gas_local].iter().map(|&h| 2.0 * h));
        let locals = self.ghost_payloads();
        let ghosts = exchange_ghosts(main, dd, &locals, |g| g.pos, |g| g.reach, routing);
        let st = &mut self.state;
        st.acc.clear();
        st.dudt.clear();
        st.cs.clear();
        st.v_sig.clear();
        st.n_ngb.clear();
        for g in ghosts {
            st.pos.push(g.pos);
            st.vel.push(g.vel);
            st.mass.push(g.mass);
            st.u.push(g.u);
            st.h.push(g.h);
            st.rho.push(g.rho);
        }
        st.resize_derived();
    }

    /// Post-density ghost refresh: re-run the exchange with the identical
    /// per-particle reach (same positions, same selection, same order) so
    /// every ghost entry receives the owner's freshly converged `rho`/`h`
    /// and current `u`/`vel`.
    fn refresh_ghosts(&mut self, main: &Comm, dd: &DomainDecomposition, routing: Routing) {
        let locals = self.ghost_payloads();
        let ghosts = exchange_ghosts(main, dd, &locals, |g| g.pos, |g| g.reach, routing);
        let st = &mut self.state;
        assert_eq!(
            ghosts.len(),
            st.len() - self.n_gas_local,
            "ghost refresh must re-select the identical ghost set"
        );
        for (k, g) in ghosts.into_iter().enumerate() {
            let j = self.n_gas_local + k;
            st.vel[j] = g.vel;
            st.u[j] = g.u;
            st.h[j] = g.h;
            st.rho[j] = g.rho;
        }
    }

    /// One full force evaluation — gravity (local tree → LET → walk) plus
    /// SPH (ghosts → density → owner-value ghost refresh → force) — for
    /// *all* local particles, recorded under `ph`'s phase names. Rebuilds
    /// and caches the gravity source system for the substep path.
    #[allow(clippy::too_many_arguments)]
    fn full_pass(
        &mut self,
        timer: &mut PhaseTimer,
        main: &Comm,
        dd: &DomainDecomposition,
        cfg: &DistConfig,
        particles: &mut [Particle],
        ph: &PassPhases,
        stats: &mut SimStats,
    ) {
        let sim = &cfg.sim;
        let solver = Self::gravity_solver(sim);
        let sph_solver = Self::sph_solver(sim);
        let n_local = particles.len();

        // --- Gravity: local tree, LET, force over locals + imports ------
        self.jpos.clear();
        self.jpos.extend(particles.iter().map(|p| p.pos));
        self.jmass.clear();
        self.jmass.extend(particles.iter().map(|p| p.mass));
        let local_tree = timer.region(main, ph.tree, || Tree::build(&self.jpos, &self.jmass, 8));
        let imports = timer.region(main, ph.let_exchange, || {
            exchange_let(
                main,
                dd,
                &local_tree,
                &self.jpos,
                &self.jmass,
                sim.theta,
                cfg.routing,
            )
        });
        for e in &imports {
            self.jpos.push(e.position());
            self.jmass.push(e.mass);
        }
        stats.gravity_interactions += timer.region(main, ph.grav_force, || {
            let jtree = Tree::build(&self.jpos, &self.jmass, solver.n_leaf);
            let jwalk = match self.jwalk.take() {
                Some(mut ix) => {
                    ix.rebuild_from(&jtree);
                    ix
                }
                None => jtree.walk_index(),
            };
            let n = solver.evaluate_into_indexed(
                &jtree,
                &jwalk,
                &self.jpos,
                &self.jmass,
                n_local,
                &mut self.grav_acc,
                &mut self.grav_pot,
            );
            self.jtree = Some(jtree);
            self.jwalk = Some(jwalk);
            n
        });
        stats.tree_rebuilds += 1;
        self.ref_pos.clear();
        self.ref_pos.extend_from_slice(&self.jpos);

        // --- SPH: ghosts, density, owner-value refresh, force -----------
        self.gas_idx.clear();
        self.gas_idx
            .extend((0..n_local).filter(|&i| particles[i].is_gas()));
        self.gas_local.clear();
        self.gas_local.resize(n_local, NOT_GAS_LOCAL);
        for (k, &i) in self.gas_idx.iter().enumerate() {
            self.gas_local[i] = k as u32;
        }
        self.n_gas_local = self.gas_idx.len();
        self.stage_hydro_locals(particles);
        timer.region(main, phases::PREPROCESS_FEEDBACK, || {
            self.exchange_ghosts_initial(main, dd, cfg.routing);
        });
        let (r0, b0) = self.sph.tree_counts();
        let dstats = timer.region(main, ph.density, || {
            sph_solver.density_pass_with(&mut self.state, self.n_gas_local, &mut self.sph)
        });
        timer.region(main, phases::PREPROCESS_FEEDBACK, || {
            self.refresh_ghosts(main, dd, cfg.routing);
        });
        let fstats = timer.region(main, ph.sph_force, || {
            sph_solver.force_pass_with(&mut self.state, self.n_gas_local, &mut self.sph)
        });
        let (r1, b1) = self.sph.tree_counts();
        stats.sph_tree_refreshes += r1 - r0;
        stats.sph_tree_rebuilds += b1 - b0;
        stats.hydro_interactions += dstats.density_interactions + fstats.force_interactions;

        // --- Combine into per-particle acc/dudt, write back h/rho -------
        self.acc.clear();
        self.acc.extend_from_slice(&self.grav_acc[..n_local]);
        self.dudt.clear();
        self.dudt.resize(n_local, 0.0);
        self.vsig.clear();
        for (k, &i) in self.gas_idx.iter().enumerate() {
            self.acc[i] += self.state.acc[k];
            self.dudt[i] = self.state.dudt[k];
            self.vsig.push((
                i,
                self.state.v_sig[k].max(self.state.cs[k]),
                self.state.h[k],
            ));
            let p = &mut particles[i];
            p.h = self.state.h[k];
            p.rho = self.state.rho[k];
        }
    }

    /// One substep's force evaluation for the active set: ghost refresh at
    /// the drifted positions, moment-refreshed gravity source tree (LET
    /// imports frozen at their base-step positions — the same error class
    /// as the refreshed MAC under the drift bound), active-set density and
    /// hydro forces through the cached SPH neighbor tree. Must be entered
    /// by every main rank each substep (the ghost exchanges are
    /// collective), including ranks whose active set is empty.
    fn active_pass(
        &mut self,
        timer: &mut PhaseTimer,
        main: &Comm,
        dd: &DomainDecomposition,
        cfg: &DistConfig,
        particles: &mut [Particle],
        stats: &mut SimStats,
    ) {
        let sim = &cfg.sim;
        let solver = Self::gravity_solver(sim);
        let sph_solver = Self::sph_solver(sim);
        let n_local = particles.len();

        // --- Gravity: refresh the cached source system at the drifted
        // local positions (imports keep their base-step coordinates).
        timer.region(main, phases::MAKE_TREE_2, || {
            for (i, p) in particles.iter().enumerate() {
                self.jpos[i] = p.pos;
            }
            let reuse = self.jtree.as_ref().is_some_and(|t| {
                t.len() == self.jpos.len() && self.ref_pos.len() == self.jpos.len() && {
                    let bound = t.cube.max_extent() * scheduler::TREE_DRIFT_FRACTION;
                    let b2 = bound * bound;
                    self.jpos
                        .iter()
                        .zip(&self.ref_pos)
                        .all(|(p, q)| (*p - *q).norm2() <= b2)
                }
            });
            if reuse {
                let t = self.jtree.as_mut().expect("cache validated above");
                t.refresh(&self.jpos, &self.jmass);
                stats.tree_refreshes += 1;
                match self.jwalk.as_mut() {
                    Some(ix) if ix.len() == t.nodes.len() => ix.refresh(t),
                    other => *other.expect("walk index rides with the tree") = t.walk_index(),
                }
            } else {
                let t = Tree::build(&self.jpos, &self.jmass, solver.n_leaf);
                stats.tree_rebuilds += 1;
                self.ref_pos.clear();
                self.ref_pos.extend_from_slice(&self.jpos);
                match self.jwalk.take() {
                    Some(mut ix) => {
                        ix.rebuild_from(&t);
                        self.jwalk = Some(ix);
                    }
                    None => self.jwalk = Some(t.walk_index()),
                }
                self.jtree = Some(t);
            }
        });
        self.active_mask.resize(n_local, false);
        self.active_gas.clear();
        for &ai in &self.active {
            let i = ai as usize;
            self.active_mask[i] = true;
            let k = self.gas_local[i];
            if k != NOT_GAS_LOCAL {
                self.active_gas.push(k as usize);
            }
        }
        stats.gravity_interactions += timer.region(main, phases::CALC_FORCE_2, || {
            let tree = self.jtree.as_ref().expect("cached by full_pass");
            let index = self.jwalk.as_ref().expect("rides with the tree");
            solver.evaluate_into_active_indexed(
                tree,
                index,
                &self.jpos,
                &self.jmass,
                n_local,
                &self.active_mask,
                &mut self.grav_acc,
                &mut self.grav_pot,
            )
        });

        // --- SPH: ghost refresh at the drifted positions, then
        // active-subset density + force through the cached neighbor tree.
        // Every region here runs unconditionally — the ghost exchanges and
        // the barrier brackets are collective over the main communicator,
        // so a rank whose domain holds no gas (or no active gas this
        // boundary) still enters them with empty payloads/targets; a
        // data-dependent skip would desynchronize the collective sequence
        // and deadlock the walk.
        self.stage_hydro_locals(particles);
        timer.region(main, phases::PREPROCESS_FEEDBACK, || {
            self.exchange_ghosts_initial(main, dd, cfg.routing);
        });
        let (r0, b0) = self.sph.tree_counts();
        let dstats = timer.region(main, phases::CALC_KERNEL_SIZE_2, || {
            sph_solver.density_pass_active(&mut self.state, &self.active_gas, &mut self.sph)
        });
        timer.region(main, phases::PREPROCESS_FEEDBACK, || {
            self.refresh_ghosts(main, dd, cfg.routing);
        });
        let fstats = timer.region(main, phases::CALC_FORCE_2, || {
            sph_solver.force_pass_active(&mut self.state, &self.active_gas, &mut self.sph)
        });
        let (r1, b1) = self.sph.tree_counts();
        stats.sph_tree_refreshes += r1 - r0;
        stats.sph_tree_rebuilds += b1 - b0;
        stats.hydro_interactions += dstats.density_interactions + fstats.force_interactions;

        // --- Scatter fresh forces for the active set ---------------------
        for &k in &self.active_gas {
            let i = self.gas_idx[k];
            self.acc[i] = self.grav_acc[i] + self.state.acc[k];
            self.dudt[i] = self.state.dudt[k];
            let p = &mut particles[i];
            p.h = self.state.h[k];
            p.rho = self.state.rho[k];
        }
        for &ai in &self.active {
            let i = ai as usize;
            if self.gas_local[i] == NOT_GAS_LOCAL {
                self.acc[i] = self.grav_acc[i];
            }
        }
        // Restore the all-false mask invariant.
        for &ai in &self.active {
            self.active_mask[ai as usize] = false;
        }
    }
}

/// One main rank's integration loop.
fn main_loop(
    world: &Comm,
    main: &Comm,
    cfg: &DistConfig,
    all_particles: &[Particle],
    resume: Option<&DistSnapshot>,
) -> DistReport {
    let me = main.rank();
    let n_main = main.size();
    let sim = &cfg.sim;
    let eos = GammaLawEos::default();
    let cooling = astro::CoolingCurve::standard_ism();
    let mut timer = PhaseTimer::new();

    // Fresh runs claim strided slices of the initial condition (then
    // balance); resumed runs take back exactly their snapshotted list.
    let (mut particles, mut time, step0): (Vec<Particle>, f64, u64) = match resume {
        Some(s) => (s.rank_particles[me].clone(), s.time, s.step),
        None => (
            all_particles
                .iter()
                .skip(me)
                .step_by(n_main)
                .copied()
                .collect(),
            0.0,
            0,
        ),
    };

    let mut step: u64 = step0;
    let mut event_counter: u64 = 0;
    let mut pending: Vec<Pending> = Vec::new();
    let mut snapshots: Vec<DistSnapshot> = Vec::new();
    let mut stats = SimStats {
        dt_min_seen: f64::INFINITY,
        ..Default::default()
    };
    let mut sched = ActiveScheduler::default();

    // Re-dispatch the checkpoint's in-flight regions (round-robin over the
    // main ranks — any rank may own a replay; replies come back by event
    // tag). The deterministic predictor reproduces the original replies,
    // due at their original absolute steps.
    if let Some(s) = resume {
        for (k, p) in s.pending.iter().enumerate() {
            if k % n_main != me {
                continue;
            }
            let event_id = event_counter * n_main as u64 + me as u64;
            let pool_rank = n_main + (event_id as usize % cfg.n_pool);
            world.send(pool_rank, TAG_REGION, (event_id, p.center, p.gas.clone()));
            pending.push(Pending {
                event_id,
                due_step: p.due_step,
                origin: pool_rank,
                payload: (cfg.snapshot_every > 0).then(|| (p.center, p.gas.clone())),
            });
            event_counter += 1;
        }
        // The snapshotted block schedule (if any) is reinstated for
        // observability — the next base step re-derives it from forces.
        if s.schedules.len() == n_main {
            let sc = &s.schedules[me];
            sched.restore(sc.dt_max, &sc.levels);
        }
    }
    // Per-rank force scratch + source caches threaded through every step
    // (see [`RankForces`]): gravity results and SPH staging are refreshed
    // in place, so the steady-state loop does not re-collect them.
    let mut forces = RankForces::new();
    // Set when the run degrades mid-flight (see [`DistError`]): every
    // rank agrees on it at a collective point, breaks the step loop
    // together, and the report carries it instead of a panic unwinding
    // through the world.
    let mut degraded: Option<DistError> = None;

    for _ in 0..cfg.steps {
        // --- Domain decomposition + particle exchange -------------------
        let dd = timer.region(main, phases::EXCHANGE_PARTICLE, || {
            let pos: Vec<Vec3> = particles.iter().map(|p| p.pos).collect();

            DomainDecomposition::decompose(main, cfg.grid, &pos, 512)
        });
        particles = timer.region(main, phases::EXCHANGE_PARTICLE, || {
            exchange_particles(
                main,
                &dd,
                std::mem::take(&mut particles),
                |p| p.pos,
                cfg.routing,
            )
        });

        // --- (1) Identify SNe -------------------------------------------
        let my_events: Vec<(u64, [f64; 3])> = timer.region(main, phases::IDENTIFY_SNE, || {
            let mut ev = Vec::new();
            for p in particles.iter_mut() {
                if p.is_star()
                    && !p.exploded
                    && explodes_in_interval(p.mass, p.birth_time, time, sim.dt_global)
                {
                    p.exploded = true;
                    ev.push((p.id, [p.pos.x, p.pos.y, p.pos.z]));
                }
            }
            ev
        });

        // --- (2) Ship SN regions to pool ranks ---------------------------
        timer.region(main, phases::SEND_SNE, || {
            // Everyone learns every event (origin = the rank owning the star).
            let all_events = main.allgatherv(my_events.clone());
            let mut flat: Vec<(usize, [f64; 3])> = Vec::new();
            for (origin, evs) in all_events.iter().enumerate() {
                for &(_, c) in evs {
                    flat.push((origin, c));
                }
            }
            // Each rank contributes its local gas inside each region cube,
            // tagged with the event ordinal, routed to the event's origin.
            let half = 0.5 * sim.region_side;
            let mut sends: Vec<Vec<(u32, GasParticle)>> = vec![Vec::new(); n_main];
            for (k, &(origin, c)) in flat.iter().enumerate() {
                let center = Vec3::new(c[0], c[1], c[2]);
                for p in particles.iter().filter(|p| {
                    p.is_gas() && {
                        let d = p.pos - center;
                        d.x.abs() < half && d.y.abs() < half && d.z.abs() < half
                    }
                }) {
                    sends[origin].push((
                        k as u32,
                        GasParticle {
                            pos: p.pos,
                            vel: p.vel,
                            mass: p.mass,
                            temp: eos.temperature_from_u(p.u),
                            h: p.h.max(1e-3),
                            id: p.id,
                        },
                    ));
                }
            }
            let gathered = main.alltoallv(sends);
            // Origin ranks assemble their events and ship to pool ranks.
            for (k, &(origin, c)) in flat.iter().enumerate() {
                if origin != me {
                    continue;
                }
                let region: Vec<GasParticle> = gathered
                    .iter()
                    .flatten()
                    .filter(|(ord, _)| *ord == k as u32)
                    .map(|(_, g)| *g)
                    .collect();
                if region.is_empty() {
                    continue;
                }
                let event_id = event_counter * n_main as u64 + me as u64;
                let pool_rank = n_main + (event_id as usize % cfg.n_pool);
                let payload = (cfg.snapshot_every > 0).then(|| (c, region.clone()));
                world.send(pool_rank, TAG_REGION, (event_id, c, region));
                pending.push(Pending {
                    event_id,
                    due_step: step + sim.pool_latency_steps as u64,
                    origin: pool_rank,
                    payload,
                });
                stats.sn_events += 1;
                event_counter += 1;
            }
        });

        // --- (3) Integrate one (base) step -------------------------------
        match sim.timestep {
            TimestepMode::Global => {
                // KDK with the fixed global step: opening forces, half-kick
                // + drift, full re-force at the new positions, closing
                // half-kick — matching the shared-memory driver's order.
                forces.full_pass(
                    &mut timer,
                    main,
                    &dd,
                    cfg,
                    &mut particles,
                    &PASS_OPENING,
                    &mut stats,
                );
                let dt = sim.dt_global;
                timer.region(main, phases::INTEGRATION, || {
                    for (i, p) in particles.iter_mut().enumerate() {
                        p.vel += forces.acc[i] * (0.5 * dt);
                        if p.is_gas() {
                            p.u = (p.u + forces.dudt[i] * (0.5 * dt)).max(1e-10);
                        }
                        p.pos += p.vel * dt;
                    }
                });
                forces.full_pass(
                    &mut timer,
                    main,
                    &dd,
                    cfg,
                    &mut particles,
                    &PASS_CLOSING,
                    &mut stats,
                );
                timer.region(main, phases::FINAL_KICK, || {
                    for (i, p) in particles.iter_mut().enumerate() {
                        p.vel += forces.acc[i] * (0.5 * dt);
                        if p.is_gas() {
                            p.u = (p.u + forces.dudt[i] * (0.5 * dt)).max(1e-10);
                        }
                    }
                });
                stats.active_updates += particles.len() as u64;
                stats.dt_min_seen = stats.dt_min_seen.min(dt);
            }
            TimestepMode::Block { max_level } => {
                // Hierarchical block timesteps across ranks (module docs:
                // "Distributed block timesteps").
                forces.full_pass(
                    &mut timer,
                    main,
                    &dd,
                    cfg,
                    &mut particles,
                    &PASS_OPENING,
                    &mut stats,
                );
                let dt_base = sim.dt_global;
                let n_sub = timer.region(main, phases::INTEGRATION, || {
                    scheduler::desired_timesteps(
                        sim.cfl,
                        sim.eps,
                        dt_base,
                        sim.dt_min,
                        &forces.acc,
                        &forces.vsig,
                        &mut forces.dt_wanted,
                    );
                    sched.assign(dt_base, &forces.dt_wanted, max_level);
                    scheduler::reduce_depth_world(main, &mut sched)
                });
                let dt_fine = dt_base / n_sub as f64;
                // Opening half-kick, each particle with its own level's step.
                timer.region(main, phases::INTEGRATION, || {
                    for (i, p) in particles.iter_mut().enumerate() {
                        let half = 0.5 * sched.dt_of(i);
                        p.vel += forces.acc[i] * half;
                        if p.is_gas() {
                            p.u = (p.u + forces.dudt[i] * half).max(1e-10);
                        }
                    }
                });
                for k in 0..n_sub {
                    // Drift-predict everyone to the boundary (the paper's
                    // per-substep all-particle overhead).
                    timer.region(main, phases::INTEGRATION, || {
                        for p in particles.iter_mut() {
                            p.pos += p.vel * dt_fine;
                        }
                    });
                    let boundary = k + 1;
                    sched.active_at_boundary_into(boundary, &mut forces.active);
                    forces.active_pass(&mut timer, main, &dd, cfg, &mut particles, &mut stats);
                    // Closing half-kick; mid-base-step the same force also
                    // opens the particle's next step, so the halves fuse.
                    let closing_only = boundary == n_sub;
                    timer.region(main, phases::FINAL_KICK, || {
                        for &ai in &forces.active {
                            let i = ai as usize;
                            let dt_l = sched.dt_of(i);
                            let kick = if closing_only { 0.5 * dt_l } else { dt_l };
                            let p = &mut particles[i];
                            p.vel += forces.acc[i] * kick;
                            if p.is_gas() {
                                p.u = (p.u + forces.dudt[i] * kick).max(1e-10);
                            }
                        }
                    });
                    stats.substeps += 1;
                    stats.active_updates += forces.active.len() as u64;
                }
                stats.dt_min_seen = stats.dt_min_seen.min(dt_fine);
            }
        }

        // --- (4) Receive due pool predictions ---------------------------
        timer.region(main, phases::RECEIVE_SNE, || {
            let due: Vec<Pending> = {
                let mut keep = Vec::new();
                let mut due = Vec::new();
                for p in pending.drain(..) {
                    if p.due_step <= step {
                        due.push(p);
                    } else {
                        keep.push(p);
                    }
                }
                pending = keep;
                due
            };
            // Collect replacements on origin ranks, then share with all
            // mains so owners can apply them by ID.
            let mut mine: Vec<GasParticle> = Vec::new();
            for d in due {
                let predicted: Vec<GasParticle> =
                    world.recv_vec(d.origin, TAG_REPLY_BASE + d.event_id);
                mine.extend(predicted);
                stats.regions_applied += 1;
            }
            let shared = main.allgatherv(mine);
            // lint:allow(ordered-iteration): keyed lookup only — the map is
            // probed by particle id below, never iterated, so hasher order
            // cannot influence the apply order (which follows `shared`).
            use std::collections::HashMap;
            // lint:allow(ordered-iteration): keyed lookup only (see above).
            let mut index: HashMap<u64, usize> = HashMap::new();
            for (i, p) in particles.iter().enumerate() {
                if p.is_gas() {
                    index.insert(p.id, i);
                }
            }
            for g in shared.into_iter().flatten() {
                if let Some(&i) = index.get(&g.id) {
                    let p = &mut particles[i];
                    p.pos = g.pos;
                    p.vel = g.vel;
                    p.mass = g.mass;
                    p.u = eos.u_from_temperature(g.temp.max(1.0));
                    p.h = g.h;
                }
            }
        });

        // --- (6) Cooling / heating + star formation ---------------------
        timer.region(main, phases::FEEDBACK_COOLING, || {
            if sim.cooling {
                for p in particles.iter_mut() {
                    if p.is_gas() && p.rho > 0.0 {
                        let t_now = eos.temperature_from_u(p.u);
                        let nh = p.rho * NH_PER_MSUN_PC3;
                        let t_new = cooling.update(t_now, nh, sim.dt_global);
                        p.u = eos.u_from_temperature(t_new.max(10.0));
                    }
                }
            }
        });
        timer.region(main, phases::STAR_FORMATION, || {
            // Star formation runs in the shared-memory driver; the phase is
            // timed here for the breakdown's completeness.
        });

        time += sim.dt_global;
        step += 1;
        stats.steps += 1;

        // --- Checkpoint at the configured cadence -----------------------
        if cfg.snapshot_every > 0 && step.is_multiple_of(cfg.snapshot_every) {
            let all_parts = main.allgatherv(particles.clone());
            // Pending payloads are retained whenever `snapshot_every > 0`;
            // a rank that finds them missing anyway has degraded state.
            // The gather is already a collective point, so the ranks
            // agree on the world total here and abort together below —
            // a final (best-effort) checkpoint is still assembled from
            // what remains.
            let mut missing: u64 = 0;
            let my_pending: Vec<DistPending> = pending
                .iter()
                .filter_map(|p| match p.payload.clone() {
                    Some((center, gas)) => Some(DistPending {
                        due_step: p.due_step,
                        center,
                        gas,
                    }),
                    None => {
                        missing += 1;
                        None
                    }
                })
                .collect();
            let world_missing = main.allreduce_sum_u64(missing);
            let all_pending = main.allgatherv(my_pending);
            // The current block schedule (one per rank, level arrays in
            // local particle order) travels with the checkpoint; Global
            // runs contribute nothing and the field stays empty.
            let my_sched: Vec<ScheduleState> = sched
                .schedule()
                .map(|s| ScheduleState {
                    dt_max: s.dt_max,
                    levels: s.levels.clone(),
                })
                .into_iter()
                .collect();
            let all_scheds = main.allgatherv(my_sched);
            if me == 0 {
                snapshots.push(DistSnapshot {
                    step,
                    time,
                    rank_particles: all_parts,
                    pending: all_pending.into_iter().flatten().collect(),
                    schedules: all_scheds.into_iter().flatten().collect(),
                    model: cfg.predictor.model_state(),
                });
            }
            if world_missing > 0 {
                degraded = Some(DistError::MissingPendingPayload {
                    count: world_missing,
                });
                break;
            }
        }
    }

    // Drain any remaining pool replies so messages don't leak, then stop
    // the pool ranks.
    for d in pending.drain(..) {
        let _: Vec<GasParticle> = world.recv_vec(d.origin, TAG_REPLY_BASE + d.event_id);
    }
    main.barrier();
    if me == 0 {
        for pr in 0..cfg.n_pool {
            world.send(n_main + pr, TAG_SHUTDOWN, 1u8);
        }
    }

    let phases = timer.report_max(main);
    let total_particles = main.allreduce_sum_u64(particles.len() as u64);
    let rank_stats = main.allgather(stats);
    let final_state = {
        let all = main.allgatherv(particles.clone());
        if me == 0 {
            let mut flat: Vec<Particle> = all.into_iter().flatten().collect();
            flat.sort_by_key(|p| p.id);
            flat
        } else {
            Vec::new()
        }
    };
    DistReport {
        phases,
        steps: step - step0,
        sn_events: main.allreduce_sum_u64(stats.sn_events),
        regions_applied: main.allreduce_sum_u64(stats.regions_applied),
        gravity_interactions: main.allreduce_sum_u64(stats.gravity_interactions),
        hydro_interactions: main.allreduce_sum_u64(stats.hydro_interactions),
        final_particles: total_particles,
        bytes_sent: Vec::new(),
        snapshots,
        final_state,
        rank_stats,
        error: degraded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;
    use astro::lifetime::stellar_lifetime_myr;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn disk_ic(n_gas: usize, n_dm: usize, with_sn: bool, dt: f64) -> Vec<Particle> {
        let mut rng = StdRng::seed_from_u64(11);
        let mut out = Vec::new();
        let mut id = 0u64;
        for _ in 0..n_gas {
            out.push(Particle::gas(
                id,
                Vec3::new(
                    rng.gen_range(-50.0..50.0),
                    rng.gen_range(-50.0..50.0),
                    rng.gen_range(-10.0..10.0),
                ),
                Vec3::ZERO,
                1.0,
                1.0,
                5.0,
            ));
            id += 1;
        }
        for _ in 0..n_dm {
            out.push(Particle::dm(
                id,
                Vec3::new(
                    rng.gen_range(-80.0..80.0),
                    rng.gen_range(-80.0..80.0),
                    rng.gen_range(-80.0..80.0),
                ),
                Vec3::ZERO,
                10.0,
            ));
            id += 1;
        }
        if with_sn {
            let m = 10.0;
            let birth = dt * 1.5 - stellar_lifetime_myr(m);
            out.push(Particle::star(id, Vec3::ZERO, Vec3::ZERO, m, birth));
        }
        out
    }

    fn test_cfg(steps: usize, latency: usize) -> DistConfig {
        DistConfig {
            grid: (2, 2, 1),
            n_pool: 2,
            routing: Routing::Flat,
            sim: SimConfig {
                scheme: Scheme::Surrogate,
                dt_global: 2.0e-3,
                pool_latency_steps: latency,
                cooling: false,
                star_formation: false,
                eps: 1.0,
                n_ngb: 16,
                ..Default::default()
            },
            steps,
            predictor: PredictorKind::SedovOverlay,
            snapshot_every: 0,
        }
    }

    #[test]
    fn config_errors_are_typed_not_panics() {
        let ic = disk_ic(10, 0, false, 2.0e-3);
        let mut no_main = test_cfg(1, 1);
        no_main.grid = (0, 2, 1);
        assert_eq!(
            run_distributed(&no_main, &ic).unwrap_err(),
            DistError::NoMainRank
        );

        let mut no_pool = test_cfg(1, 1);
        no_pool.n_pool = 0;
        assert_eq!(
            run_distributed(&no_pool, &ic).unwrap_err(),
            DistError::NoPoolRank
        );
    }

    #[test]
    fn resume_grid_mismatch_is_a_typed_error() {
        let snap = DistSnapshot {
            step: 2,
            time: 4.0e-3,
            rank_particles: vec![Vec::new(); 2],
            pending: Vec::new(),
            schedules: Vec::new(),
            model: None,
        };
        let cfg = test_cfg(1, 1); // grid (2,2,1) = 4 main ranks
        assert_eq!(
            run_distributed_resume(&cfg, &snap).unwrap_err(),
            DistError::GridMismatch {
                snapshot_ranks: 2,
                config_ranks: 4
            }
        );
    }

    #[test]
    fn distributed_run_completes_and_conserves_particles() {
        let ic = disk_ic(300, 100, false, 2.0e-3);
        let cfg = test_cfg(3, 2);
        let report = run_distributed(&cfg, &ic).expect("dist run");
        assert_eq!(report.steps, 3);
        assert!(report.error.is_none(), "clean run reports no degradation");
        assert_eq!(report.final_particles, ic.len() as u64);
        assert_eq!(report.sn_events, 0);
        assert!(report.gravity_interactions > 0);
        assert!(report.hydro_interactions > 0);
        // Per-rank counters are gathered for every main rank.
        assert_eq!(report.rank_stats.len(), 4);
        assert!(report.rank_stats.iter().all(|s| s.steps == 3));
        assert!(report
            .rank_stats
            .iter()
            .all(|s| s.active_updates > 0 && s.substeps == 0));
    }

    #[test]
    fn sn_region_round_trips_through_the_pool() {
        let dt = 2.0e-3;
        let ic = disk_ic(400, 0, true, dt);
        let cfg = test_cfg(6, 3);
        let report = run_distributed(&cfg, &ic).expect("dist run");
        assert_eq!(report.sn_events, 1, "the SN must be identified once");
        assert_eq!(
            report.regions_applied, 1,
            "the prediction must come back and be applied"
        );
    }

    #[test]
    fn phase_report_contains_paper_phases() {
        let ic = disk_ic(200, 50, false, 2.0e-3);
        let cfg = test_cfg(2, 2);
        let report = run_distributed(&cfg, &ic).expect("dist run");
        for name in [
            phases::EXCHANGE_PARTICLE,
            phases::MAKE_LOCAL_TREE_1,
            phases::EXCHANGE_LET_1,
            phases::CALC_FORCE_1,
            phases::CALC_KERNEL_DENSITY_1,
            phases::INTEGRATION,
            phases::RECEIVE_SNE,
            phases::SEND_SNE,
            // The KDK re-force pass makes the 2nd-pass legend entries and
            // the final kick real measurements.
            phases::MAKE_TREE_2,
            phases::EXCHANGE_LET_2,
            phases::CALC_KERNEL_SIZE_2,
            phases::CALC_FORCE_2,
            phases::FINAL_KICK,
        ] {
            assert!(
                report.phases.get(name).is_some(),
                "missing phase {name} in report"
            );
        }
        assert!(report.phases.total_s() > 0.0);
        let final_kick = report.phases.get(phases::FINAL_KICK).expect("recorded");
        assert!(final_kick.count > 0, "the final kick must actually run");
    }

    #[test]
    fn torus_routing_produces_same_particle_totals() {
        let ic = disk_ic(250, 80, false, 2.0e-3);
        let mut cfg = test_cfg(2, 2);
        let flat = run_distributed(&cfg, &ic).expect("dist run");
        cfg.routing = Routing::Torus;
        let torus = run_distributed(&cfg, &ic).expect("dist run");
        assert_eq!(flat.final_particles, torus.final_particles);
    }

    #[test]
    fn unet_predictor_kind_serves_the_pool_ranks() {
        // The satellite fix for the hardcoded SedovOverlayPredictor: a
        // U-Net predictor configured through DistConfig must serve the
        // round-trip end to end.
        let dt = 2.0e-3;
        let ic = disk_ic(300, 0, true, dt);
        let mut cfg = test_cfg(5, 2);
        cfg.predictor = PredictorKind::UNetUntrained {
            grid_n: 8,
            base_features: 2,
            seed: 7,
        };
        let report = run_distributed(&cfg, &ic).expect("dist run");
        assert_eq!(report.sn_events, 1);
        assert_eq!(
            report.regions_applied, 1,
            "the U-Net prediction must come back and be applied"
        );
    }

    #[test]
    fn distributed_resume_reproduces_the_uninterrupted_run_bitwise() {
        // 6 steps straight vs snapshot-at-3 + resume-for-3 — with an SN
        // region still pending in the pool queue at the snapshot step
        // (latency 4 > snapshot step 3 - explosion step 1).
        let dt = 2.0e-3;
        let ic = disk_ic(300, 60, true, dt);
        let mut cfg = test_cfg(6, 4);
        cfg.snapshot_every = 3;
        let full = run_distributed(&cfg, &ic).expect("dist run");
        assert_eq!(full.sn_events, 1);
        assert_eq!(full.regions_applied, 1);
        assert_eq!(full.snapshots.len(), 2, "snapshots at steps 3 and 6");

        let snap = &full.snapshots[0];
        assert_eq!(snap.step, 3);
        assert_eq!(
            snap.pending.len(),
            1,
            "the SN region must still be in flight at the snapshot"
        );
        assert!(
            snap.schedules.is_empty(),
            "Global runs carry no block schedule"
        );
        // The checkpoint survives its binary encoding.
        let snap = crate::snapshot::DistSnapshot::from_bytes(&snap.to_bytes()).expect("roundtrip");

        let mut resume_cfg = cfg;
        resume_cfg.steps = 3;
        let resumed = run_distributed_resume(&resume_cfg, &snap).expect("dist resume");
        assert_eq!(resumed.steps, 3);
        assert_eq!(
            resumed.regions_applied, 1,
            "the replayed region must be applied after the restart"
        );
        assert_eq!(full.final_state.len(), ic.len());
        assert_eq!(resumed.final_state.len(), ic.len());
        for (a, b) in full.final_state.iter().zip(&resumed.final_state) {
            assert_eq!(a, b, "resumed particle {} diverged", a.id);
        }
    }

    #[test]
    fn block_mode_substeps_agree_across_ranks() {
        // A hot particle forces deep levels on whichever rank owns it; the
        // schedule reduction must still march every rank through the same
        // number of fine substeps.
        let mut ic = disk_ic(300, 0, false, 2.0e-3);
        ic[40].u = 1.0e8;
        let mut cfg = test_cfg(2, 2);
        cfg.sim.timestep = TimestepMode::Block { max_level: 8 };
        let report = run_distributed(&cfg, &ic).expect("dist run");
        assert_eq!(report.final_particles, ic.len() as u64);
        assert_eq!(report.rank_stats.len(), 4);
        let subs: Vec<u64> = report.rank_stats.iter().map(|s| s.substeps).collect();
        assert!(
            subs.iter().all(|&s| s == subs[0]),
            "world-consistent schedule: {subs:?}"
        );
        assert!(
            subs[0] > report.steps,
            "the hierarchy must engage: {} substeps over {} base steps",
            subs[0],
            report.steps
        );
        // Substeps refresh, rather than rebuild, the cached source trees.
        assert!(report
            .rank_stats
            .iter()
            .all(|s| s.tree_refreshes > 0 && s.tree_rebuilds > 0));
        assert!(report
            .rank_stats
            .iter()
            .all(|s| s.sph_tree_refreshes > s.sph_tree_rebuilds));
        // Fewer particle updates than Global mode would have paid for the
        // same number of fine steps.
        let updates: u64 = report.rank_stats.iter().map(|s| s.active_updates).sum();
        assert!(updates < subs[0] * ic.len() as u64);
    }
}
