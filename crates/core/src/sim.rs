//! The shared-memory simulation driver: the paper's §3.2 integration loop
//! with either the surrogate or the conventional SN scheme.

use crate::config::{Scheme, SimConfig};
use crate::forces::ForceBuffers;
use crate::particle::{Kind, Particle};
use crate::pool::{PoolPredictor, SedovOverlayPredictor};
use astro::cooling::CoolingCurve;
use astro::lifetime::explodes_in_interval;
use astro::starform::{SfOutcome, StarFormation};
use astro::supernova::SnFeedback;
use astro::units::{E_SN, G, NH_PER_MSUN_PC3};
use astro::yields::SnYield;
use fdps::Vec3;
use gravity::GravitySolver;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sph::solver::SphSolver;
use sph::timestep::quantize_block;
use sph::GammaLawEos;
use surrogate::GasParticle;

/// Counters accumulated over a run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimStats {
    pub steps: u64,
    pub sn_events: u64,
    pub stars_formed: u64,
    pub regions_applied: u64,
    /// Smallest timestep taken [Myr].
    pub dt_min_seen: f64,
    /// Total gravity interactions evaluated.
    pub gravity_interactions: u64,
    /// Total SPH force interactions evaluated.
    pub hydro_interactions: u64,
}

/// A prediction in flight between pool dispatch and application.
struct PendingRegion {
    due_step: u64,
    predicted: Vec<GasParticle>,
}

/// The simulation state and driver.
pub struct Simulation {
    pub config: SimConfig,
    pub particles: Vec<Particle>,
    pub time: f64,
    pub step_count: u64,
    pub stats: SimStats,
    predictor: Box<dyn PoolPredictor>,
    pending: Vec<PendingRegion>,
    next_id: u64,
    rng: StdRng,
    eos: GammaLawEos,
    cooling: CoolingCurve,
    starform: StarFormation,
    feedback: SnFeedback,
    /// `(particle index, v_sig, h)` from the last SPH force pass, used by
    /// the conventional scheme's CFL estimate.
    last_vsig: Vec<(usize, f64, f64)>,
    /// The force-evaluation scratch arena: refreshed in place every step,
    /// zero heap growth in steady state (see [`crate::forces`]).
    buffers: ForceBuffers,
}

impl Simulation {
    /// Build with the default (Sedov-overlay) pool predictor.
    pub fn new(config: SimConfig, particles: Vec<Particle>, seed: u64) -> Self {
        Self::with_predictor(config, particles, seed, Box::new(SedovOverlayPredictor))
    }

    /// Build with an explicit pool predictor (e.g. a trained U-Net).
    pub fn with_predictor(
        config: SimConfig,
        particles: Vec<Particle>,
        seed: u64,
        predictor: Box<dyn PoolPredictor>,
    ) -> Self {
        let next_id = particles.iter().map(|p| p.id).max().map_or(0, |m| m + 1);
        Simulation {
            config,
            particles,
            time: 0.0,
            step_count: 0,
            stats: SimStats {
                dt_min_seen: f64::INFINITY,
                ..Default::default()
            },
            predictor,
            pending: Vec::new(),
            next_id,
            rng: StdRng::seed_from_u64(seed),
            eos: GammaLawEos::default(),
            cooling: CoolingCurve::standard_ism(),
            starform: StarFormation {
                criteria: astro::StarFormationCriteria {
                    rho_min: config.sf_rho_min,
                    t_max: config.sf_t_max,
                    efficiency: config.sf_efficiency,
                },
                ..Default::default()
            },
            feedback: SnFeedback::default(),
            last_vsig: Vec::new(),
            buffers: ForceBuffers::default(),
        }
    }

    /// Advance `n` steps.
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// One full step of the paper's §3.2 procedure.
    pub fn step(&mut self) {
        // (1) Identify SNe exploding in (t, t + dt_global].
        let events = self.identify_sne();
        self.stats.sn_events += events.len() as u64;

        match self.config.scheme {
            Scheme::Surrogate => {
                // (2) Ship regions to the pool; predictions apply after
                // the pool latency. Metal yields are injected immediately
                // (the surrogate predicts dynamics, not composition).
                for (star_idx, center) in &events {
                    self.particles[*star_idx].exploded = true;
                    self.inject_yields(*star_idx, *center);
                    self.dispatch_region(*center);
                }
                // (3) Fixed-global-timestep KDK without feedback energy.
                let dt = self.config.dt_global;
                self.kdk(dt);
                // (4) Receive pool predictions due this step, replace by ID.
                self.apply_due_regions();
                // (6) Star formation, cooling and heating.
                self.cooling_and_star_formation(dt);
                self.advance(dt);
            }
            Scheme::Conventional => {
                // Direct thermal feedback, then a CFL-limited step.
                for (star_idx, center) in &events {
                    self.particles[*star_idx].exploded = true;
                    self.inject_yields(*star_idx, *center);
                    self.inject_thermal(*center);
                }
                let dt = self.adaptive_dt();
                self.kdk(dt);
                self.cooling_and_star_formation(dt);
                self.advance(dt);
            }
        }
    }

    fn advance(&mut self, dt: f64) {
        self.time += dt;
        self.step_count += 1;
        self.stats.steps += 1;
        self.stats.dt_min_seen = self.stats.dt_min_seen.min(dt);
    }

    /// Stars whose lifetime ends within the next global step.
    fn identify_sne(&self) -> Vec<(usize, Vec3)> {
        self.particles
            .iter()
            .enumerate()
            .filter(|(_, p)| {
                p.is_star()
                    && !p.exploded
                    && explodes_in_interval(p.mass, p.birth_time, self.time, self.config.dt_global)
            })
            .map(|(i, p)| (i, p.pos))
            .collect()
    }

    /// Cut the (region_side)^3 cube around `center` and queue its
    /// prediction (paper §3.2 step 2; the pool's compute latency is
    /// modelled by the due step).
    fn dispatch_region(&mut self, center: Vec3) {
        let half = 0.5 * self.config.region_side;
        let gas: Vec<GasParticle> = self
            .particles
            .iter()
            .filter(|p| {
                p.is_gas() && {
                    let d = p.pos - center;
                    d.x.abs() < half && d.y.abs() < half && d.z.abs() < half
                }
            })
            .map(|p| GasParticle {
                pos: p.pos,
                vel: p.vel,
                mass: p.mass,
                temp: self.eos.temperature_from_u(p.u),
                h: p.h.max(1e-3),
                id: p.id,
            })
            .collect();
        if gas.is_empty() {
            return;
        }
        let predicted = self
            .predictor
            .predict(center, E_SN, self.config.horizon(), &gas);
        self.pending.push(PendingRegion {
            due_step: self.step_count + self.config.pool_latency_steps as u64,
            predicted,
        });
    }

    /// Replace particles by ID with any predictions that are due
    /// (paper §3.2 step 4).
    fn apply_due_regions(&mut self) {
        let step = self.step_count;
        let due: Vec<PendingRegion> = {
            let mut kept = Vec::new();
            let mut due = Vec::new();
            for r in self.pending.drain(..) {
                if r.due_step <= step + 1 {
                    due.push(r);
                } else {
                    kept.push(r);
                }
            }
            self.pending = kept;
            due
        };
        if due.is_empty() {
            return;
        }
        use std::collections::HashMap;
        let mut index: HashMap<u64, usize> = HashMap::new();
        for (i, p) in self.particles.iter().enumerate() {
            if p.is_gas() {
                index.insert(p.id, i);
            }
        }
        for region in due {
            for g in region.predicted {
                if let Some(&i) = index.get(&g.id) {
                    let p = &mut self.particles[i];
                    p.pos = g.pos;
                    p.vel = g.vel;
                    p.mass = g.mass;
                    p.u = self.eos.u_from_temperature(g.temp.max(1.0));
                    p.h = g.h;
                }
            }
            self.stats.regions_applied += 1;
        }
    }

    /// Inject the exploding star's nucleosynthesis yields into nearby gas
    /// (Figure 1's element cycle: C, O, Mg, Fe spread by the explosion).
    fn inject_yields(&mut self, star_idx: usize, center: Vec3) {
        let progenitor_mass = self.particles[star_idx].mass;
        let y = SnYield::for_progenitor(progenitor_mass);
        let half = 0.5 * self.config.region_side;
        let neighbours: Vec<usize> = self
            .particles
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_gas() && (p.pos - center).norm() < half)
            .map(|(i, _)| i)
            .collect();
        if neighbours.is_empty() {
            return;
        }
        let weights: Vec<f64> = neighbours
            .iter()
            .map(|&i| {
                let r = (self.particles[i].pos - center).norm();
                (1.0 - r / half).max(0.01)
            })
            .collect();
        let per = astro::yields::distribute_yields(&y, &weights);
        for (&i, dz) in neighbours.iter().zip(per) {
            self.particles[i].metals += dz.iter().sum::<f64>();
        }
    }

    /// Conventional feedback: kernel-weighted thermal injection.
    fn inject_thermal(&mut self, center: Vec3) {
        let half = 0.5 * self.config.region_side;
        let neighbours: Vec<usize> = self
            .particles
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_gas() && (p.pos - center).norm() < half)
            .map(|(i, _)| i)
            .collect();
        if neighbours.is_empty() {
            return;
        }
        let masses: Vec<f64> = neighbours.iter().map(|&i| self.particles[i].mass).collect();
        let weights: Vec<f64> = neighbours
            .iter()
            .map(|&i| {
                let r = (self.particles[i].pos - center).norm();
                (1.0 - r / half).max(0.01)
            })
            .collect();
        let event = astro::SnEvent {
            star_index: 0,
            pos: [center.x, center.y, center.z],
            time: self.time,
            energy: E_SN,
        };
        let du = self.feedback.thermal_injection(&event, &masses, &weights);
        for (&i, d) in neighbours.iter().zip(du) {
            self.particles[i].u += d;
        }
    }

    /// KDK leapfrog with a shared timestep (paper §3.2 step 3).
    fn kdk(&mut self, dt: f64) {
        self.compute_forces();
        // First kick + drift.
        for (i, p) in self.particles.iter_mut().enumerate() {
            p.vel += self.buffers.acc[i] * (0.5 * dt);
            if p.is_gas() {
                p.u = (p.u + self.buffers.dudt[i] * 0.5 * dt).max(1e-10);
            }
            p.pos += p.vel * dt;
        }
        // Re-evaluate forces at the new positions, second kick.
        self.compute_forces();
        for (i, p) in self.particles.iter_mut().enumerate() {
            p.vel += self.buffers.acc[i] * (0.5 * dt);
            if p.is_gas() {
                p.u = (p.u + self.buffers.dudt[i] * 0.5 * dt).max(1e-10);
            }
        }
    }

    /// Gravity on everything plus SPH forces on the gas, written into the
    /// scratch arena's `acc`/`dudt` — every staging buffer is refreshed in
    /// place, so steady-state steps do not grow the arena.
    fn compute_forces(&mut self) {
        let n = self.particles.len();
        let bufs = &mut self.buffers;
        if n == 0 {
            bufs.acc.clear();
            bufs.dudt.clear();
            self.last_vsig.clear();
            return;
        }

        // Gravity over all species.
        bufs.refresh(&self.particles);
        let solver = GravitySolver {
            g: G,
            theta: self.config.theta,
            n_group: self.config.n_group,
            n_leaf: 8,
            eps: self.config.eps,
            mixed_precision: self.config.mixed_precision,
        };
        let tree = fdps::Tree::build(&bufs.pos, &bufs.mass, solver.n_leaf);
        self.stats.gravity_interactions += solver.evaluate_into(
            &tree,
            &bufs.pos,
            &bufs.mass,
            n,
            &mut bufs.acc,
            &mut bufs.pot,
        );

        // SPH on the gas subset.
        if bufs.gas_idx.len() > 1 {
            bufs.refresh_hydro(&self.particles);
            let sph = SphSolver {
                density_cfg: sph::density::DensityConfig {
                    n_ngb_target: self.config.n_ngb,
                    ..Default::default()
                },
                cfl: self.config.cfl,
                ..Default::default()
            };
            let n_gas = bufs.hydro.len();
            let dstats = sph.density_pass_with(&mut bufs.hydro, n_gas, &mut bufs.sph);
            let fstats = sph.force_pass_with(&mut bufs.hydro, n_gas, &mut bufs.sph);
            self.stats.hydro_interactions +=
                dstats.density_interactions + fstats.force_interactions;
            let state = &bufs.hydro;
            self.last_vsig.clear();
            for (k, &i) in bufs.gas_idx.iter().enumerate() {
                bufs.acc[i] += state.acc[k];
                bufs.dudt[i] = state.dudt[k];
                let p = &mut self.particles[i];
                p.h = state.h[k];
                p.rho = state.rho[k];
                // Stash signal speeds for the adaptive timestep.
                self.last_vsig
                    .push((i, state.v_sig[k].max(state.cs[k]), state.h[k]));
            }
        } else {
            self.last_vsig.clear();
        }
    }

    /// Read-only view of the force scratch arena (regression tests assert
    /// its steady-state capacities).
    pub fn force_buffers(&self) -> &ForceBuffers {
        &self.buffers
    }

    /// CFL-adaptive shared timestep (conventional scheme, paper §5.3).
    fn adaptive_dt(&mut self) -> f64 {
        // Signal speeds from the current thermal state (pre-force estimate:
        // sound speed; the stashed v_sig from the last force pass refines
        // it after the first step).
        let mut dt = self.config.dt_global;
        for p in &self.particles {
            if p.is_gas() {
                let cs = self.eos.sound_speed(p.u);
                if cs > 0.0 && p.h > 0.0 {
                    dt = dt.min(self.config.cfl * p.h / cs);
                }
            }
        }
        for &(_, vsig, h) in &self.last_vsig {
            if vsig > 0.0 {
                dt = dt.min(self.config.cfl * h / vsig);
            }
        }
        quantize_block(dt.max(self.config.dt_min), self.config.dt_global)
    }

    /// Cooling/heating and stochastic star formation (paper §3.2 step 6).
    fn cooling_and_star_formation(&mut self, dt: f64) {
        let mut new_stars: Vec<Particle> = Vec::new();
        let eos = self.eos;
        for p in self.particles.iter_mut() {
            if !p.is_gas() {
                continue;
            }
            if self.config.cooling && p.rho > 0.0 {
                let temp = eos.temperature_from_u(p.u);
                let nh = p.rho * NH_PER_MSUN_PC3;
                let t_new = self.cooling.update(temp, nh, dt);
                p.u = eos.u_from_temperature(t_new.max(10.0));
            }
            if self.config.star_formation && p.rho > 0.0 {
                let temp = eos.temperature_from_u(p.u);
                match self
                    .starform
                    .try_form(&mut self.rng, p.rho, temp, p.mass, dt)
                {
                    SfOutcome::None => {}
                    SfOutcome::Spawn {
                        star_mass,
                        gas_left,
                    } => {
                        new_stars.push(Particle::star(
                            0, // assigned below
                            p.pos, p.vel, star_mass, self.time,
                        ));
                        p.mass = gas_left;
                    }
                    SfOutcome::Convert { star_mass } => {
                        p.kind = Kind::Star;
                        p.mass = star_mass;
                        p.birth_time = self.time;
                        p.exploded = false;
                    }
                }
            }
        }
        for mut s in new_stars {
            s.id = self.next_id;
            self.next_id += 1;
            self.stats.stars_formed += 1;
            self.particles.push(s);
        }
    }

    /// Total energy: kinetic + internal + gravitational potential.
    pub fn total_energy(&self) -> f64 {
        let pos: Vec<Vec3> = self.particles.iter().map(|p| p.pos).collect();
        let mass: Vec<f64> = self.particles.iter().map(|p| p.mass).collect();
        let solver = GravitySolver {
            g: G,
            theta: 0.0, // exact for the energy audit
            eps: self.config.eps,
            ..Default::default()
        };
        let grav = solver.evaluate(&pos, &mass, pos.len());
        let w: f64 = 0.5
            * grav
                .pot
                .iter()
                .zip(&mass)
                .map(|(phi, m)| phi * m)
                .sum::<f64>();
        let ke_ie: f64 = self
            .particles
            .iter()
            .map(|p| p.mass * (0.5 * p.vel.norm2() + if p.is_gas() { p.u } else { 0.0 }))
            .sum();
        w + ke_ie
    }

    /// Number of in-flight pool predictions.
    pub fn pending_regions(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astro::lifetime::stellar_lifetime_myr;

    fn two_body() -> Vec<Particle> {
        // Circular binary in code units: masses 1e6 each, separation 100 pc.
        let m = 1.0e6;
        let r = 50.0;
        let v = (G * m / (4.0 * r)).sqrt();
        vec![
            Particle::dm(0, Vec3::new(r, 0.0, 0.0), Vec3::new(0.0, v, 0.0), m),
            Particle::dm(1, Vec3::new(-r, 0.0, 0.0), Vec3::new(0.0, -v, 0.0), m),
        ]
    }

    fn quiet_config() -> SimConfig {
        SimConfig {
            cooling: false,
            star_formation: false,
            eps: 0.5,
            ..Default::default()
        }
    }

    #[test]
    fn two_body_orbit_conserves_energy() {
        let cfg = SimConfig {
            dt_global: 0.01,
            ..quiet_config()
        };
        let mut sim = Simulation::new(cfg, two_body(), 1);
        let e0 = sim.total_energy();
        sim.run(500);
        let e1 = sim.total_energy();
        assert!(
            ((e1 - e0) / e0).abs() < 0.01,
            "energy drift {} -> {}",
            e0,
            e1
        );
        // The binary stays bound at roughly the initial separation.
        let sep = (sim.particles[0].pos - sim.particles[1].pos).norm();
        assert!((50.0..200.0).contains(&sep), "separation {sep}");
    }

    fn gas_blob(n_side: usize, spacing: f64, u: f64) -> Vec<Particle> {
        let mut out = Vec::new();
        let mut id = 0;
        for i in 0..n_side {
            for j in 0..n_side {
                for k in 0..n_side {
                    out.push(Particle::gas(
                        id,
                        Vec3::new(
                            (i as f64 - n_side as f64 / 2.0) * spacing,
                            (j as f64 - n_side as f64 / 2.0) * spacing,
                            (k as f64 - n_side as f64 / 2.0) * spacing,
                        ),
                        Vec3::ZERO,
                        1.0,
                        u,
                        spacing * 1.3,
                    ));
                    id += 1;
                }
            }
        }
        out
    }

    #[test]
    fn surrogate_scheme_applies_regions_after_latency() {
        // A massive star that explodes on step 1, inside a gas blob.
        let mut particles = gas_blob(6, 3.0, 1.0);
        let m_star = 10.0;
        let life = stellar_lifetime_myr(m_star);
        let dt = 2.0e-3;
        // Born so that death lands in the second step.
        let birth = dt * 1.5 - life;
        let star_id = particles.len() as u64;
        particles.push(Particle::star(
            star_id,
            Vec3::ZERO,
            Vec3::ZERO,
            m_star,
            birth,
        ));
        let cfg = SimConfig {
            dt_global: dt,
            pool_latency_steps: 5,
            cooling: false,
            star_formation: false,
            eps: 1.0,
            ..Default::default()
        };
        let mut sim = Simulation::new(cfg, particles, 2);
        let u_before: f64 = sim
            .particles
            .iter()
            .filter(|p| p.is_gas())
            .map(|p| p.u)
            .sum();
        sim.run(2);
        assert_eq!(sim.stats.sn_events, 1, "the SN fires");
        assert_eq!(sim.pending_regions(), 1, "prediction in flight");
        assert_eq!(sim.stats.regions_applied, 0, "not applied before latency");
        sim.run(5);
        assert_eq!(sim.stats.regions_applied, 1, "applied after latency");
        let u_after: f64 = sim
            .particles
            .iter()
            .filter(|p| p.is_gas())
            .map(|p| p.u)
            .sum();
        assert!(
            u_after > 10.0 * u_before,
            "SN heating visible: {u_before} -> {u_after}"
        );
        // Timestep never shrank: the paper's headline property.
        assert_eq!(sim.stats.dt_min_seen, dt);
    }

    #[test]
    fn conventional_scheme_collapses_the_timestep() {
        // Dense blob: small smoothing lengths make the CFL bite hard.
        let mut particles = gas_blob(6, 0.5, 1.0);
        let m_star = 10.0;
        let life = stellar_lifetime_myr(m_star);
        let dt = 2.0e-3;
        let birth = dt * 0.5 - life;
        particles.push(Particle::star(
            particles.len() as u64,
            Vec3::ZERO,
            Vec3::ZERO,
            m_star,
            birth,
        ));
        let cfg = SimConfig {
            scheme: Scheme::Conventional,
            dt_global: dt,
            cooling: false,
            star_formation: false,
            eps: 1.0,
            ..Default::default()
        };
        let mut sim = Simulation::new(cfg, particles, 3);
        sim.run(3);
        assert_eq!(sim.stats.sn_events, 1);
        assert!(
            sim.stats.dt_min_seen < dt / 4.0,
            "CFL must collapse dt: min {} vs global {dt}",
            sim.stats.dt_min_seen
        );
    }

    #[test]
    fn star_formation_converts_cold_dense_gas() {
        // Dense cold blob: rho above threshold, T below.
        let mut particles = gas_blob(5, 0.5, 1e-4);
        for p in particles.iter_mut() {
            p.mass = 5.0;
        }
        let cfg = SimConfig {
            dt_global: 0.5,
            cooling: false,
            star_formation: true,
            eps: 0.5,
            ..Default::default()
        };
        let mut sim = Simulation::new(cfg, particles, 4);
        sim.run(4);
        let n_star = sim.particles.iter().filter(|p| p.is_star()).count();
        assert!(
            n_star > 0 || sim.stats.stars_formed > 0,
            "dense cold gas must form stars"
        );
    }

    #[test]
    fn cooling_drives_hot_gas_down() {
        let particles = gas_blob(5, 1.0, 50.0); // hot: ~ 10^5-6 K
        let cfg = SimConfig {
            dt_global: 0.1,
            cooling: true,
            star_formation: false,
            eps: 0.5,
            ..Default::default()
        };
        let mut sim = Simulation::new(cfg, particles, 5);
        let u0: f64 = sim.particles.iter().map(|p| p.u).sum();
        sim.run(5);
        let u1: f64 = sim.particles.iter().map(|p| p.u).sum();
        assert!(u1 < u0, "cooling should lower u: {u0} -> {u1}");
    }

    #[test]
    fn sn_enriches_surrounding_gas_with_metals() {
        let mut particles = gas_blob(6, 3.0, 1.0);
        let m_star = 15.0;
        let life = stellar_lifetime_myr(m_star);
        let dt = 2.0e-3;
        particles.push(Particle::star(
            particles.len() as u64,
            Vec3::ZERO,
            Vec3::ZERO,
            m_star,
            dt * 1.5 - life,
        ));
        let cfg = SimConfig {
            dt_global: dt,
            pool_latency_steps: 3,
            cooling: false,
            star_formation: false,
            eps: 1.0,
            ..Default::default()
        };
        let mut sim = Simulation::new(cfg, particles, 9);
        sim.run(3);
        assert_eq!(sim.stats.sn_events, 1);
        let gas_metals: f64 = sim
            .particles
            .iter()
            .filter(|p| p.is_gas())
            .map(|p| p.metals)
            .sum();
        let expected = astro::yields::SnYield::for_progenitor(m_star).metals();
        assert!(
            (gas_metals / expected - 1.0).abs() < 1e-9,
            "gas received {gas_metals} of {expected} M_sun in metals"
        );
        // Enrichment is centrally weighted: the most metal-rich particle
        // sits near the explosion site.
        let _ = gas_metals;
        let richest = sim
            .particles
            .iter()
            .filter(|p| p.is_gas())
            .max_by(|a, b| a.metals.total_cmp(&b.metals))
            .expect("gas exists");
        assert!(
            richest.pos.norm() < 10.0,
            "most enriched particle at r = {}",
            richest.pos.norm()
        );
    }

    #[test]
    fn steady_state_stepping_does_not_grow_the_scratch_arena() {
        // The tentpole zero-allocation property: after a warm-up step, the
        // force pipeline's scratch arena (SoA snapshots, result arrays, gas
        // index, hydro state, SPH staging) must not grow — every step
        // refreshes the same buffers in place.
        let mut particles = gas_blob(6, 1.0, 1.0);
        // A couple of collisionless particles so gravity sees mixed species.
        particles.push(Particle::dm(
            particles.len() as u64,
            Vec3::new(10.0, 0.0, 0.0),
            Vec3::ZERO,
            100.0,
        ));
        particles.push(Particle::star(
            particles.len() as u64,
            Vec3::new(-10.0, 0.0, 0.0),
            Vec3::ZERO,
            1.0,
            0.0,
        ));
        let cfg = SimConfig {
            dt_global: 1e-4,
            ..quiet_config()
        };
        let mut sim = Simulation::new(cfg, particles, 8);
        sim.run(2); // warm-up: capacities reach their high-water mark
        let sig = sim.force_buffers().capacity_signature();
        assert!(
            sig.iter().any(|&c| c > 0),
            "warm-up must have populated the arena"
        );
        sim.run(5);
        assert_eq!(
            sim.force_buffers().capacity_signature(),
            sig,
            "scratch arena grew after warm-up"
        );
    }

    #[test]
    fn ids_remain_unique_through_star_formation() {
        let mut particles = gas_blob(4, 0.5, 1e-4);
        for p in particles.iter_mut() {
            p.mass = 5.0;
        }
        let cfg = SimConfig {
            dt_global: 0.5,
            cooling: false,
            star_formation: true,
            eps: 0.5,
            ..Default::default()
        };
        let mut sim = Simulation::new(cfg, particles, 6);
        sim.run(4);
        let mut ids: Vec<u64> = sim.particles.iter().map(|p| p.id).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate particle ids");
    }
}
