//! The shared-memory simulation driver: the paper's §3.2 integration loop
//! with either the surrogate or the conventional SN scheme.

use crate::ckpt::{CkptFormat, CkptStore};
use crate::config::{Scheme, SimConfig, TimestepMode};
use crate::faults::FaultInjector;
use crate::forces::{ForceBuffers, NOT_GAS};
use crate::particle::{Kind, Particle};
use crate::pool::{PoolPredictor, SedovOverlayPredictor, UNetPredictor};
use crate::scheduler::{self, ActiveScheduler};
use crate::snapshot::{ModelState, PendingPrediction, ScheduleState, SimSnapshot};
use astro::cooling::CoolingCurve;
use astro::lifetime::explodes_in_interval;
use astro::starform::{SfOutcome, StarFormation};
use astro::supernova::SnFeedback;
use astro::units::{E_SN, G, NH_PER_MSUN_PC3};
use astro::yields::SnYield;
use fdps::Vec3;
use gravity::GravitySolver;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sph::solver::SphSolver;
use sph::timestep::quantize_block;
use sph::GammaLawEos;
use surrogate::GasParticle;

/// Counters accumulated over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimStats {
    pub steps: u64,
    pub sn_events: u64,
    pub stars_formed: u64,
    pub regions_applied: u64,
    /// Smallest timestep taken \[Myr\].
    pub dt_min_seen: f64,
    /// Total gravity interactions evaluated.
    pub gravity_interactions: u64,
    /// Total SPH force interactions evaluated.
    pub hydro_interactions: u64,
    /// Fine substeps executed by the block-timestep scheduler (0 in
    /// `Global` mode — the surrogate scheme by construction).
    pub substeps: u64,
    /// Individual particle-step completions: in `Global` mode every KDK
    /// counts each particle once; in `Block` mode a particle counts once
    /// per step of its own level. The Surrogate-vs-Conventional update
    /// economy is exactly the ratio of these.
    pub active_updates: u64,
    /// Full *gravity* octree builds (Morton sort + split + moments).
    pub tree_rebuilds: u64,
    /// Moment-only *gravity* tree refreshes reusing the last build's
    /// topology (cross-substep reuse; see `fdps::Tree::refresh`).
    pub tree_refreshes: u64,
    /// Full *SPH* neighbor-tree builds (the gas-subset tree the
    /// density/force passes walk; split from the gravity counters so the
    /// two reuse pipelines are reported separately).
    pub sph_tree_rebuilds: u64,
    /// Moment-only *SPH* neighbor-tree refreshes
    /// (see `sph::solver::SphTreeCache`).
    pub sph_tree_refreshes: u64,
}

/// A prediction in flight between pool dispatch and application.
struct PendingRegion {
    due_step: u64,
    predicted: Vec<GasParticle>,
}

/// The simulation state and driver.
pub struct Simulation {
    pub config: SimConfig,
    pub particles: Vec<Particle>,
    pub time: f64,
    pub step_count: u64,
    pub stats: SimStats,
    /// The trained surrogate model this run carries (embedded in every
    /// snapshot so a resume rebuilds the identical predictor); `None` for
    /// the analytic Sedov-overlay default.
    pub model: Option<ModelState>,
    predictor: Box<dyn PoolPredictor>,
    pending: Vec<PendingRegion>,
    next_id: u64,
    rng: StdRng,
    eos: GammaLawEos,
    cooling: CoolingCurve,
    starform: StarFormation,
    feedback: SnFeedback,
    /// `(particle index, v_sig, h)` from the last SPH force pass, used by
    /// the conventional scheme's CFL estimate.
    last_vsig: Vec<(usize, f64, f64)>,
    /// The force-evaluation scratch arena: refreshed in place every step,
    /// zero heap growth in steady state (see [`crate::forces`]).
    buffers: ForceBuffers,
    /// Block-timestep level machinery (see [`crate::scheduler`]); only the
    /// conventional scheme in [`TimestepMode::Block`] drives it.
    scheduler: ActiveScheduler,
    /// Persistent gas id → particle index map for applying pool
    /// predictions, invalidated on particle insertion/conversion instead
    /// of being rebuilt every step that has due regions.
    // lint:allow(ordered-iteration): keyed lookup only — never iterated,
    // so hasher order cannot reach any persisted or rendered byte.
    id_index: std::collections::HashMap<u64, usize>,
    id_index_dirty: bool,
}

impl Simulation {
    /// Build with the default (Sedov-overlay) pool predictor.
    pub fn new(config: SimConfig, particles: Vec<Particle>, seed: u64) -> Self {
        Self::with_predictor(config, particles, seed, Box::new(SedovOverlayPredictor))
    }

    /// Build with an explicit pool predictor (e.g. a trained U-Net).
    pub fn with_predictor(
        config: SimConfig,
        particles: Vec<Particle>,
        seed: u64,
        predictor: Box<dyn PoolPredictor>,
    ) -> Self {
        let next_id = particles.iter().map(|p| p.id).max().map_or(0, |m| m + 1);
        Simulation {
            config,
            particles,
            time: 0.0,
            step_count: 0,
            stats: SimStats {
                dt_min_seen: f64::INFINITY,
                ..Default::default()
            },
            model: None,
            predictor,
            pending: Vec::new(),
            next_id,
            rng: StdRng::seed_from_u64(seed),
            eos: GammaLawEos::default(),
            cooling: CoolingCurve::standard_ism(),
            starform: StarFormation {
                criteria: astro::StarFormationCriteria {
                    rho_min: config.sf_rho_min,
                    t_max: config.sf_t_max,
                    efficiency: config.sf_efficiency,
                },
                ..Default::default()
            },
            feedback: SnFeedback::default(),
            last_vsig: Vec::new(),
            buffers: ForceBuffers::default(),
            scheduler: ActiveScheduler::default(),
            // lint:allow(ordered-iteration): keyed lookup only (see field).
            id_index: std::collections::HashMap::new(),
            id_index_dirty: true,
        }
    }

    /// Advance `n` steps.
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Advance `n` steps, handing the caller a checkpoint after every
    /// [`SimConfig::snapshot_every`]-th completed step (no callbacks when
    /// the cadence is 0). The callback receives the live simulation so it
    /// can call [`Simulation::snapshot`] — or cheaper observers — itself.
    pub fn run_with_snapshots<F: FnMut(&Simulation)>(&mut self, n: usize, mut on_snapshot: F) {
        let every = self.config.snapshot_every;
        for _ in 0..n {
            self.step();
            if every > 0 && self.step_count.is_multiple_of(every) {
                on_snapshot(self);
            }
        }
    }

    /// Advance `n` steps, committing a checkpoint into `store` after every
    /// [`SimConfig::snapshot_every`]-th completed step (atomic write +
    /// rotation + manifest — see [`crate::ckpt`]). This is the crash-safe
    /// run loop: `on_step` fires after *every* step (heartbeat,
    /// diagnostics), then any armed step fault is enforced
    /// ([`FaultInjector::enforce_step`] — deliberately *before* the
    /// cadence commit, so an injected kill costs the newest checkpoint,
    /// the most adversarial timing for recovery), then the cadence commit
    /// runs with write faults threaded through the store. Returns the
    /// committed checkpoint paths.
    pub fn run_with_store<F: FnMut(&Simulation)>(
        &mut self,
        n: usize,
        store: &CkptStore,
        format: CkptFormat,
        faults: &mut FaultInjector,
        mut on_step: F,
    ) -> std::io::Result<Vec<std::path::PathBuf>> {
        let every = self.config.snapshot_every;
        let mut written = Vec::new();
        for _ in 0..n {
            self.step();
            on_step(self);
            faults.enforce_step(self.step_count);
            if every > 0 && self.step_count.is_multiple_of(every) {
                written.push(store.commit_sim(&self.snapshot(), format, faults)?);
            }
        }
        Ok(written)
    }

    /// Capture the complete state of the run as a serializable
    /// [`SimSnapshot`] (see [`crate::snapshot`] for the format and the
    /// restart-determinism contract). Cheap relative to a step: one deep
    /// copy of the particle set and the pending-region queue; none of the
    /// force scratch arena is captured because [`Simulation::restore`]
    /// rebuilds it on the next force evaluation.
    pub fn snapshot(&self) -> SimSnapshot {
        SimSnapshot {
            config: self.config,
            time: self.time,
            step_count: self.step_count,
            next_id: self.next_id,
            rng_state: self.rng.state(),
            stats: self.stats,
            particles: self.particles.clone(),
            last_vsig: self
                .last_vsig
                .iter()
                .map(|&(i, v, h)| (i as u64, v, h))
                .collect(),
            pending: self
                .pending
                .iter()
                .map(|r| PendingPrediction {
                    due_step: r.due_step,
                    predicted: r.predicted.clone(),
                })
                .collect(),
            schedule: self.scheduler.schedule().map(|s| ScheduleState {
                dt_max: s.dt_max,
                levels: s.levels.clone(),
            }),
            model: self.model.clone(),
        }
    }

    /// Rebuild a simulation from a snapshot. The continued run reproduces
    /// an uninterrupted one bit-for-bit: every piece of cross-step driver
    /// state (RNG stream, pending pool predictions — stored *predicted*,
    /// so the predictor is never re-run for them — CFL signal-speed stash,
    /// id counter, schedule) is reinstated. If the snapshot carries a
    /// trained model ([`SimSnapshot::model`]), the identical U-Net
    /// predictor is rebuilt from the embedded weights — no weights file
    /// needs to exist at resume time; otherwise the default Sedov-overlay
    /// predictor is used.
    pub fn restore(snapshot: &SimSnapshot) -> Self {
        let predictor: Box<dyn PoolPredictor> = match &snapshot.model {
            // The embedded document already passed the snapshot checksum
            // and carries its own; a decode failure here means the writer
            // was broken, not the file.
            Some(m) => Box::new(
                UNetPredictor::from_weights(m.seed, &m.weights_json, snapshot.config.region_side)
                    .expect("snapshot-embedded model weights must decode"),
            ),
            None => Box::new(SedovOverlayPredictor),
        };
        Self::restore_with_predictor(snapshot, predictor)
    }

    /// [`Simulation::restore`] with an explicit pool predictor for regions
    /// dispatched *after* the restart (in-flight predictions are replayed
    /// from the snapshot verbatim).
    pub fn restore_with_predictor(
        snapshot: &SimSnapshot,
        predictor: Box<dyn PoolPredictor>,
    ) -> Self {
        let mut sim =
            Simulation::with_predictor(snapshot.config, snapshot.particles.clone(), 0, predictor);
        sim.model = snapshot.model.clone();
        sim.time = snapshot.time;
        sim.step_count = snapshot.step_count;
        sim.next_id = snapshot.next_id;
        sim.rng = StdRng::from_state(snapshot.rng_state);
        sim.stats = snapshot.stats;
        sim.last_vsig = snapshot
            .last_vsig
            .iter()
            .map(|&(i, v, h)| (i as usize, v, h))
            .collect();
        sim.pending = snapshot
            .pending
            .iter()
            .map(|p| PendingRegion {
                due_step: p.due_step,
                predicted: p.predicted.clone(),
            })
            .collect();
        if let Some(s) = &snapshot.schedule {
            sim.scheduler.restore(s.dt_max, &s.levels);
        }
        sim
    }

    /// One full step of the paper's §3.2 procedure.
    pub fn step(&mut self) {
        // (1) Identify SNe exploding in (t, t + dt_global].
        let events = self.identify_sne();
        self.stats.sn_events += events.len() as u64;

        match self.config.scheme {
            Scheme::Surrogate => {
                // (2) Ship regions to the pool; predictions apply after
                // the pool latency. Metal yields are injected immediately
                // (the surrogate predicts dynamics, not composition).
                for (star_idx, center) in &events {
                    self.particles[*star_idx].exploded = true;
                    self.inject_yields(*star_idx, *center);
                    self.dispatch_region(*center);
                }
                // (3) Fixed-global-timestep KDK without feedback energy.
                let dt = self.config.dt_global;
                self.kdk(dt);
                // (4) Receive pool predictions due this step, replace by ID.
                self.apply_due_regions();
                // (6) Star formation, cooling and heating.
                self.cooling_and_star_formation(dt);
                self.advance(dt);
            }
            Scheme::Conventional => {
                // Direct thermal feedback, then a CFL-limited step.
                for (star_idx, center) in &events {
                    self.particles[*star_idx].exploded = true;
                    self.inject_yields(*star_idx, *center);
                    self.inject_thermal(*center);
                }
                match self.config.timestep {
                    TimestepMode::Global => {
                        let dt = self.adaptive_dt();
                        self.kdk(dt);
                        self.cooling_and_star_formation(dt);
                        self.advance(dt);
                    }
                    TimestepMode::Block { max_level } => self.block_step(max_level),
                }
            }
        }
    }

    /// One base step under hierarchical block timesteps: assign levels
    /// from per-particle desired dts, then walk the binary subdivision,
    /// kicking only the active subset at each fine-substep boundary while
    /// everyone else is drift-predicted (phase-by-phase mapping to the
    /// paper in the [`crate::scheduler`] module docs).
    fn block_step(&mut self, max_level: u32) {
        let dt_base = self.config.dt_global;
        if self.particles.is_empty() {
            self.advance(dt_base);
            return;
        }
        // (1) Full forces (fresh tree) + level assignment.
        self.compute_forces();
        scheduler::desired_timesteps(
            self.config.cfl,
            self.config.eps,
            dt_base,
            self.config.dt_min,
            &self.buffers.acc,
            &self.last_vsig,
            &mut self.buffers.dt_wanted,
        );
        self.scheduler
            .assign(dt_base, &self.buffers.dt_wanted, max_level);
        let n_sub = self.scheduler.substeps();
        let dt_fine = dt_base / n_sub as f64;

        // (2) Opening half-kick, each particle with its own level's step.
        {
            let sched = &self.scheduler;
            let bufs = &self.buffers;
            for (i, p) in self.particles.iter_mut().enumerate() {
                let half = 0.5 * sched.dt_of(i);
                p.vel += bufs.acc[i] * half;
                if p.is_gas() {
                    p.u = (p.u + bufs.dudt[i] * half).max(1e-10);
                }
            }
        }

        // (3) Binary-subdivision walk over the fine substeps.
        for k in 0..n_sub {
            // Drift everyone to the boundary: inactive particles are
            // thereby drift-predicted — the per-substep all-particle
            // overhead of the paper's efficiency argument (§1).
            for p in self.particles.iter_mut() {
                p.pos += p.vel * dt_fine;
            }
            let boundary = k + 1;
            self.scheduler
                .active_at_boundary_into(boundary, &mut self.buffers.active);
            self.compute_forces_active();
            // Closing half-kick; mid-base-step the same force also opens
            // the particle's next step, so the two halves fuse.
            let closing_only = boundary == n_sub;
            {
                let sched = &self.scheduler;
                let bufs = &self.buffers;
                let particles = &mut self.particles;
                for &ai in &bufs.active {
                    let i = ai as usize;
                    let dt_l = sched.dt_of(i);
                    let kick = if closing_only { 0.5 * dt_l } else { dt_l };
                    let p = &mut particles[i];
                    p.vel += bufs.acc[i] * kick;
                    if p.is_gas() {
                        p.u = (p.u + bufs.dudt[i] * kick).max(1e-10);
                    }
                }
            }
            self.stats.substeps += 1;
            self.stats.active_updates += self.buffers.active.len() as u64;
        }

        // (4) Shared-base-step physics, re-synchronized.
        self.cooling_and_star_formation(dt_base);
        self.stats.dt_min_seen = self.stats.dt_min_seen.min(dt_fine);
        self.advance(dt_base);
    }

    fn advance(&mut self, dt: f64) {
        self.time += dt;
        self.step_count += 1;
        self.stats.steps += 1;
        self.stats.dt_min_seen = self.stats.dt_min_seen.min(dt);
    }

    /// Stars whose lifetime ends within the next global step.
    fn identify_sne(&self) -> Vec<(usize, Vec3)> {
        self.particles
            .iter()
            .enumerate()
            .filter(|(_, p)| {
                p.is_star()
                    && !p.exploded
                    && explodes_in_interval(p.mass, p.birth_time, self.time, self.config.dt_global)
            })
            .map(|(i, p)| (i, p.pos))
            .collect()
    }

    /// Cut the (region_side)^3 cube around `center` and queue its
    /// prediction (paper §3.2 step 2; the pool's compute latency is
    /// modelled by the due step).
    fn dispatch_region(&mut self, center: Vec3) {
        let half = 0.5 * self.config.region_side;
        let gas: Vec<GasParticle> = self
            .particles
            .iter()
            .filter(|p| {
                p.is_gas() && {
                    let d = p.pos - center;
                    d.x.abs() < half && d.y.abs() < half && d.z.abs() < half
                }
            })
            .map(|p| GasParticle {
                pos: p.pos,
                vel: p.vel,
                mass: p.mass,
                temp: self.eos.temperature_from_u(p.u),
                h: p.h.max(1e-3),
                id: p.id,
            })
            .collect();
        if gas.is_empty() {
            return;
        }
        let predicted = self
            .predictor
            .predict(center, E_SN, self.config.horizon(), &gas);
        self.pending.push(PendingRegion {
            due_step: self.step_count + self.config.pool_latency_steps as u64,
            predicted,
        });
    }

    /// Replace particles by ID with any predictions that are due
    /// (paper §3.2 step 4).
    fn apply_due_regions(&mut self) {
        let step = self.step_count;
        let due: Vec<PendingRegion> = {
            let mut kept = Vec::new();
            let mut due = Vec::new();
            for r in self.pending.drain(..) {
                if r.due_step <= step + 1 {
                    due.push(r);
                } else {
                    kept.push(r);
                }
            }
            self.pending = kept;
            due
        };
        if due.is_empty() {
            return;
        }
        // The gas id → index map persists across steps; insertion and
        // gas→star conversion mark it dirty, everything else (kicks,
        // drifts, region replacement by id) leaves it valid.
        if self.id_index_dirty {
            self.id_index.clear();
            for (i, p) in self.particles.iter().enumerate() {
                if p.is_gas() {
                    self.id_index.insert(p.id, i);
                }
            }
            self.id_index_dirty = false;
        }
        let index = &self.id_index;
        for region in due {
            for g in region.predicted {
                if let Some(&i) = index.get(&g.id) {
                    let p = &mut self.particles[i];
                    p.pos = g.pos;
                    p.vel = g.vel;
                    p.mass = g.mass;
                    p.u = self.eos.u_from_temperature(g.temp.max(1.0));
                    p.h = g.h;
                }
            }
            self.stats.regions_applied += 1;
        }
    }

    /// Inject the exploding star's nucleosynthesis yields into nearby gas
    /// (Figure 1's element cycle: C, O, Mg, Fe spread by the explosion).
    fn inject_yields(&mut self, star_idx: usize, center: Vec3) {
        let progenitor_mass = self.particles[star_idx].mass;
        let y = SnYield::for_progenitor(progenitor_mass);
        let half = 0.5 * self.config.region_side;
        let neighbours: Vec<usize> = self
            .particles
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_gas() && (p.pos - center).norm() < half)
            .map(|(i, _)| i)
            .collect();
        if neighbours.is_empty() {
            return;
        }
        let weights: Vec<f64> = neighbours
            .iter()
            .map(|&i| {
                let r = (self.particles[i].pos - center).norm();
                (1.0 - r / half).max(0.01)
            })
            .collect();
        let per = astro::yields::distribute_yields(&y, &weights);
        for (&i, dz) in neighbours.iter().zip(per) {
            self.particles[i].metals += dz.iter().sum::<f64>();
        }
    }

    /// Conventional feedback: kernel-weighted thermal injection.
    fn inject_thermal(&mut self, center: Vec3) {
        let half = 0.5 * self.config.region_side;
        let neighbours: Vec<usize> = self
            .particles
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_gas() && (p.pos - center).norm() < half)
            .map(|(i, _)| i)
            .collect();
        if neighbours.is_empty() {
            return;
        }
        let masses: Vec<f64> = neighbours.iter().map(|&i| self.particles[i].mass).collect();
        let weights: Vec<f64> = neighbours
            .iter()
            .map(|&i| {
                let r = (self.particles[i].pos - center).norm();
                (1.0 - r / half).max(0.01)
            })
            .collect();
        let event = astro::SnEvent {
            star_index: 0,
            pos: [center.x, center.y, center.z],
            time: self.time,
            energy: E_SN,
        };
        let du = self.feedback.thermal_injection(&event, &masses, &weights);
        for (&i, d) in neighbours.iter().zip(du) {
            self.particles[i].u += d;
        }
    }

    /// KDK leapfrog with a shared timestep (paper §3.2 step 3).
    fn kdk(&mut self, dt: f64) {
        self.stats.active_updates += self.particles.len() as u64;
        self.compute_forces();
        // First kick + drift.
        for (i, p) in self.particles.iter_mut().enumerate() {
            p.vel += self.buffers.acc[i] * (0.5 * dt);
            if p.is_gas() {
                p.u = (p.u + self.buffers.dudt[i] * 0.5 * dt).max(1e-10);
            }
            p.pos += p.vel * dt;
        }
        // Re-evaluate forces at the new positions, second kick.
        self.compute_forces();
        for (i, p) in self.particles.iter_mut().enumerate() {
            p.vel += self.buffers.acc[i] * (0.5 * dt);
            if p.is_gas() {
                p.u = (p.u + self.buffers.dudt[i] * 0.5 * dt).max(1e-10);
            }
        }
    }

    /// The gravity solver configured for this run.
    fn gravity_solver(&self) -> GravitySolver {
        GravitySolver {
            g: G,
            theta: self.config.theta,
            n_group: self.config.n_group,
            n_leaf: 8,
            eps: self.config.eps,
            mixed_precision: self.config.mixed_precision,
        }
    }

    /// The SPH solver configured for this run.
    fn sph_solver(&self) -> SphSolver {
        SphSolver {
            density_cfg: sph::density::DensityConfig {
                n_ngb_target: self.config.n_ngb,
                ..Default::default()
            },
            cfl: self.config.cfl,
            ..Default::default()
        }
    }

    /// Gravity on everything plus SPH forces on the gas, written into the
    /// scratch arena's `acc`/`dudt` — every staging buffer is refreshed in
    /// place, so steady-state steps do not grow the arena. The octree is
    /// fully rebuilt and cached for the substep path to refresh.
    fn compute_forces(&mut self) {
        let n = self.particles.len();
        let solver = self.gravity_solver();
        let sph = self.sph_solver();
        let bufs = &mut self.buffers;
        if n == 0 {
            bufs.acc.clear();
            bufs.dudt.clear();
            self.last_vsig.clear();
            return;
        }

        // Gravity over all species.
        bufs.refresh(&self.particles);
        let tree = fdps::Tree::build(&bufs.pos, &bufs.mass, solver.n_leaf);
        self.stats.tree_rebuilds += 1;
        bufs.tree_ref_pos.clear();
        bufs.tree_ref_pos.extend_from_slice(&bufs.pos);
        // The walk index rides along with the tree: re-derived (storage
        // reused) on every full build, moment-refreshed on substeps.
        let index = match bufs.walk_index.take() {
            Some(mut ix) => {
                ix.rebuild_from(&tree);
                ix
            }
            None => tree.walk_index(),
        };
        self.stats.gravity_interactions += solver.evaluate_into_indexed(
            &tree,
            &index,
            &bufs.pos,
            &bufs.mass,
            n,
            &mut bufs.acc,
            &mut bufs.pot,
        );
        bufs.tree = Some(tree);
        bufs.walk_index = Some(index);

        // SPH on the gas subset: the density pass rebuilds the neighbor
        // tree, the force pass refreshes it (same positions, converged h).
        if bufs.gas_idx.len() > 1 {
            bufs.refresh_hydro(&self.particles);
            let n_gas = bufs.hydro.len();
            let (r0, b0) = bufs.sph.tree_counts();
            let dstats = sph.density_pass_with(&mut bufs.hydro, n_gas, &mut bufs.sph);
            let fstats = sph.force_pass_with(&mut bufs.hydro, n_gas, &mut bufs.sph);
            let (r1, b1) = bufs.sph.tree_counts();
            self.stats.sph_tree_refreshes += r1 - r0;
            self.stats.sph_tree_rebuilds += b1 - b0;
            self.stats.hydro_interactions +=
                dstats.density_interactions + fstats.force_interactions;
            let state = &bufs.hydro;
            self.last_vsig.clear();
            for (k, &i) in bufs.gas_idx.iter().enumerate() {
                bufs.acc[i] += state.acc[k];
                bufs.dudt[i] = state.dudt[k];
                let p = &mut self.particles[i];
                p.h = state.h[k];
                p.rho = state.rho[k];
                // Stash signal speeds for the adaptive timestep.
                self.last_vsig
                    .push((i, state.v_sig[k].max(state.cs[k]), state.h[k]));
            }
        } else {
            self.last_vsig.clear();
        }
    }

    /// Force evaluation restricted to the current active set
    /// (`buffers.active`): the whole system acts as sources at its
    /// drift-predicted positions, but only active particles receive new
    /// gravity (skipping the tree walk of fully-inactive groups) and only
    /// active gas re-sums density/hydro forces. The cached octree is
    /// moment-refreshed in place unless a particle drifted beyond
    /// [`scheduler::TREE_DRIFT_FRACTION`] of the root cube, which forces a
    /// full rebuild.
    fn compute_forces_active(&mut self) {
        let n = self.particles.len();
        let solver = self.gravity_solver();
        let sph = self.sph_solver();
        let bufs = &mut self.buffers;
        if n == 0 || bufs.active.is_empty() {
            return;
        }
        // Source snapshot at the drift-predicted positions; also rebuilds
        // the gas index maps (species are fixed within a base step).
        bufs.refresh(&self.particles);
        {
            let ForceBuffers {
                active,
                active_mask,
                active_gas,
                gas_local,
                ..
            } = &mut *bufs;
            // The mask is all-false between calls; only touched entries
            // are set and later reset.
            active_mask.resize(n, false);
            active_gas.clear();
            for &ai in active.iter() {
                let i = ai as usize;
                active_mask[i] = true;
                let k = gas_local[i];
                if k != NOT_GAS {
                    active_gas.push(k as usize);
                }
            }
        }

        // Cross-substep tree reuse with the drift sanity bound.
        let cached = bufs.tree.take();
        let cached_index = bufs.walk_index.take();
        let reuse = cached.as_ref().is_some_and(|t| {
            t.len() == n && bufs.tree_ref_pos.len() == n && {
                let bound = t.cube.max_extent() * scheduler::TREE_DRIFT_FRACTION;
                let b2 = bound * bound;
                bufs.pos
                    .iter()
                    .zip(&bufs.tree_ref_pos)
                    .all(|(p, q)| (*p - *q).norm2() <= b2)
            }
        });
        let (tree, index) = if reuse {
            let mut t = cached.unwrap();
            t.refresh(&bufs.pos, &bufs.mass);
            self.stats.tree_refreshes += 1;
            // Topology unchanged: the walk index refreshes in place too.
            let ix = match cached_index {
                Some(mut ix) if ix.len() == t.nodes.len() => {
                    ix.refresh(&t);
                    ix
                }
                _ => t.walk_index(),
            };
            (t, ix)
        } else {
            self.stats.tree_rebuilds += 1;
            bufs.tree_ref_pos.clear();
            bufs.tree_ref_pos.extend_from_slice(&bufs.pos);
            let t = fdps::Tree::build(&bufs.pos, &bufs.mass, solver.n_leaf);
            let ix = match cached_index {
                Some(mut ix) => {
                    ix.rebuild_from(&t);
                    ix
                }
                None => t.walk_index(),
            };
            (t, ix)
        };
        self.stats.gravity_interactions += solver.evaluate_into_active_indexed(
            &tree,
            &index,
            &bufs.pos,
            &bufs.mass,
            n,
            &bufs.active_mask,
            &mut bufs.acc,
            &mut bufs.pot,
        );
        bufs.tree = Some(tree);
        bufs.walk_index = Some(index);

        // SPH on the active gas subset: both passes refresh the neighbor
        // tree cached at the base step (full rebuild only when the drift
        // bound trips or the gas population changed).
        if bufs.gas_idx.len() > 1 && !bufs.active_gas.is_empty() {
            bufs.refresh_hydro(&self.particles);
            let (r0, b0) = bufs.sph.tree_counts();
            let dstats = sph.density_pass_active(&mut bufs.hydro, &bufs.active_gas, &mut bufs.sph);
            let fstats = sph.force_pass_active(&mut bufs.hydro, &bufs.active_gas, &mut bufs.sph);
            let (r1, b1) = bufs.sph.tree_counts();
            self.stats.sph_tree_refreshes += r1 - r0;
            self.stats.sph_tree_rebuilds += b1 - b0;
            self.stats.hydro_interactions +=
                dstats.density_interactions + fstats.force_interactions;
            let ForceBuffers {
                hydro,
                active_gas,
                gas_idx,
                acc,
                dudt,
                ..
            } = &mut *bufs;
            for &k in active_gas.iter() {
                let i = gas_idx[k];
                acc[i] += hydro.acc[k];
                dudt[i] = hydro.dudt[k];
                let p = &mut self.particles[i];
                p.h = hydro.h[k];
                p.rho = hydro.rho[k];
            }
        }

        // Restore the all-false mask invariant.
        {
            let ForceBuffers {
                active,
                active_mask,
                ..
            } = &mut *bufs;
            for &ai in active.iter() {
                active_mask[ai as usize] = false;
            }
        }
    }

    /// The block-timestep scheduler (its schedule reflects the last base
    /// step integrated in [`TimestepMode::Block`]).
    pub fn scheduler(&self) -> &ActiveScheduler {
        &self.scheduler
    }

    /// Read-only view of the force scratch arena (regression tests assert
    /// its steady-state capacities).
    pub fn force_buffers(&self) -> &ForceBuffers {
        &self.buffers
    }

    /// CFL-adaptive shared timestep (conventional scheme, paper §5.3).
    fn adaptive_dt(&mut self) -> f64 {
        // Signal speeds from the current thermal state (pre-force estimate:
        // sound speed; the stashed v_sig from the last force pass refines
        // it after the first step).
        let mut dt = self.config.dt_global;
        for p in &self.particles {
            if p.is_gas() {
                let cs = self.eos.sound_speed(p.u);
                if cs > 0.0 && p.h > 0.0 {
                    dt = dt.min(self.config.cfl * p.h / cs);
                }
            }
        }
        for &(_, vsig, h) in &self.last_vsig {
            if vsig > 0.0 {
                dt = dt.min(self.config.cfl * h / vsig);
            }
        }
        quantize_block(dt.max(self.config.dt_min), self.config.dt_global)
    }

    /// Cooling/heating and stochastic star formation (paper §3.2 step 6).
    fn cooling_and_star_formation(&mut self, dt: f64) {
        let mut new_stars: Vec<Particle> = Vec::new();
        let eos = self.eos;
        for p in self.particles.iter_mut() {
            if !p.is_gas() {
                continue;
            }
            if self.config.cooling && p.rho > 0.0 {
                let temp = eos.temperature_from_u(p.u);
                let nh = p.rho * NH_PER_MSUN_PC3;
                let t_new = self.cooling.update(temp, nh, dt);
                p.u = eos.u_from_temperature(t_new.max(10.0));
            }
            if self.config.star_formation && p.rho > 0.0 {
                let temp = eos.temperature_from_u(p.u);
                match self
                    .starform
                    .try_form(&mut self.rng, p.rho, temp, p.mass, dt)
                {
                    SfOutcome::None => {}
                    SfOutcome::Spawn {
                        star_mass,
                        gas_left,
                    } => {
                        new_stars.push(Particle::star(
                            0, // assigned below
                            p.pos, p.vel, star_mass, self.time,
                        ));
                        p.mass = gas_left;
                    }
                    SfOutcome::Convert { star_mass } => {
                        p.kind = Kind::Star;
                        p.mass = star_mass;
                        p.birth_time = self.time;
                        p.exploded = false;
                        // A gas id just left the gas population.
                        self.id_index_dirty = true;
                    }
                }
            }
        }
        if !new_stars.is_empty() {
            self.id_index_dirty = true;
        }
        for mut s in new_stars {
            s.id = self.next_id;
            self.next_id += 1;
            self.stats.stars_formed += 1;
            self.particles.push(s);
        }
    }

    /// Total energy: kinetic + internal + gravitational potential.
    pub fn total_energy(&self) -> f64 {
        total_energy_of(&self.particles, self.config.eps)
    }

    /// Number of in-flight pool predictions.
    pub fn pending_regions(&self) -> usize {
        self.pending.len()
    }
}

/// Total energy of a particle set — kinetic + internal + exact
/// (`theta = 0`) gravitational potential at softening `eps`. The audit the
/// shared-memory and distributed drivers' conservation tests share
/// (the latter runs it over [`DistReport::final_state`](crate::dist::DistReport)).
pub fn total_energy_of(particles: &[Particle], eps: f64) -> f64 {
    let pos: Vec<Vec3> = particles.iter().map(|p| p.pos).collect();
    let mass: Vec<f64> = particles.iter().map(|p| p.mass).collect();
    let solver = GravitySolver {
        g: G,
        theta: 0.0, // exact for the energy audit
        eps,
        ..Default::default()
    };
    let grav = solver.evaluate(&pos, &mass, pos.len());
    let w: f64 = 0.5
        * grav
            .pot
            .iter()
            .zip(&mass)
            .map(|(phi, m)| phi * m)
            .sum::<f64>();
    let ke_ie: f64 = particles
        .iter()
        .map(|p| p.mass * (0.5 * p.vel.norm2() + if p.is_gas() { p.u } else { 0.0 }))
        .sum();
    w + ke_ie
}

#[cfg(test)]
mod tests {
    use super::*;
    use astro::lifetime::stellar_lifetime_myr;

    fn two_body() -> Vec<Particle> {
        // Circular binary in code units: masses 1e6 each, separation 100 pc.
        let m = 1.0e6;
        let r = 50.0;
        let v = (G * m / (4.0 * r)).sqrt();
        vec![
            Particle::dm(0, Vec3::new(r, 0.0, 0.0), Vec3::new(0.0, v, 0.0), m),
            Particle::dm(1, Vec3::new(-r, 0.0, 0.0), Vec3::new(0.0, -v, 0.0), m),
        ]
    }

    fn quiet_config() -> SimConfig {
        SimConfig {
            cooling: false,
            star_formation: false,
            eps: 0.5,
            ..Default::default()
        }
    }

    #[test]
    fn two_body_orbit_conserves_energy() {
        let cfg = SimConfig {
            dt_global: 0.01,
            ..quiet_config()
        };
        let mut sim = Simulation::new(cfg, two_body(), 1);
        let e0 = sim.total_energy();
        sim.run(500);
        let e1 = sim.total_energy();
        assert!(
            ((e1 - e0) / e0).abs() < 0.01,
            "energy drift {} -> {}",
            e0,
            e1
        );
        // The binary stays bound at roughly the initial separation.
        let sep = (sim.particles[0].pos - sim.particles[1].pos).norm();
        assert!((50.0..200.0).contains(&sep), "separation {sep}");
    }

    fn gas_blob(n_side: usize, spacing: f64, u: f64) -> Vec<Particle> {
        let mut out = Vec::new();
        let mut id = 0;
        for i in 0..n_side {
            for j in 0..n_side {
                for k in 0..n_side {
                    out.push(Particle::gas(
                        id,
                        Vec3::new(
                            (i as f64 - n_side as f64 / 2.0) * spacing,
                            (j as f64 - n_side as f64 / 2.0) * spacing,
                            (k as f64 - n_side as f64 / 2.0) * spacing,
                        ),
                        Vec3::ZERO,
                        1.0,
                        u,
                        spacing * 1.3,
                    ));
                    id += 1;
                }
            }
        }
        out
    }

    #[test]
    fn surrogate_scheme_applies_regions_after_latency() {
        // A massive star that explodes on step 1, inside a gas blob.
        let mut particles = gas_blob(6, 3.0, 1.0);
        let m_star = 10.0;
        let life = stellar_lifetime_myr(m_star);
        let dt = 2.0e-3;
        // Born so that death lands in the second step.
        let birth = dt * 1.5 - life;
        let star_id = particles.len() as u64;
        particles.push(Particle::star(
            star_id,
            Vec3::ZERO,
            Vec3::ZERO,
            m_star,
            birth,
        ));
        let cfg = SimConfig {
            dt_global: dt,
            pool_latency_steps: 5,
            cooling: false,
            star_formation: false,
            eps: 1.0,
            ..Default::default()
        };
        let mut sim = Simulation::new(cfg, particles, 2);
        let u_before: f64 = sim
            .particles
            .iter()
            .filter(|p| p.is_gas())
            .map(|p| p.u)
            .sum();
        sim.run(2);
        assert_eq!(sim.stats.sn_events, 1, "the SN fires");
        assert_eq!(sim.pending_regions(), 1, "prediction in flight");
        assert_eq!(sim.stats.regions_applied, 0, "not applied before latency");
        sim.run(5);
        assert_eq!(sim.stats.regions_applied, 1, "applied after latency");
        let u_after: f64 = sim
            .particles
            .iter()
            .filter(|p| p.is_gas())
            .map(|p| p.u)
            .sum();
        assert!(
            u_after > 10.0 * u_before,
            "SN heating visible: {u_before} -> {u_after}"
        );
        // Timestep never shrank: the paper's headline property.
        assert_eq!(sim.stats.dt_min_seen, dt);
    }

    #[test]
    fn conventional_scheme_collapses_the_timestep() {
        // Dense blob: small smoothing lengths make the CFL bite hard.
        let mut particles = gas_blob(6, 0.5, 1.0);
        let m_star = 10.0;
        let life = stellar_lifetime_myr(m_star);
        let dt = 2.0e-3;
        let birth = dt * 0.5 - life;
        particles.push(Particle::star(
            particles.len() as u64,
            Vec3::ZERO,
            Vec3::ZERO,
            m_star,
            birth,
        ));
        let cfg = SimConfig {
            scheme: Scheme::Conventional,
            dt_global: dt,
            cooling: false,
            star_formation: false,
            eps: 1.0,
            ..Default::default()
        };
        let mut sim = Simulation::new(cfg, particles, 3);
        sim.run(3);
        assert_eq!(sim.stats.sn_events, 1);
        assert!(
            sim.stats.dt_min_seen < dt / 4.0,
            "CFL must collapse dt: min {} vs global {dt}",
            sim.stats.dt_min_seen
        );
    }

    #[test]
    fn block_mode_conserves_energy_across_levels() {
        // Central massive body with a tight and a wide circular satellite:
        // the acceleration criterion puts the tight orbit several levels
        // below the wide one, so the hierarchy actually engages.
        let m = 1.0e6;
        let sat = |r: f64, id: u64| {
            let v = (G * m / r).sqrt();
            Particle::dm(id, Vec3::new(r, 0.0, 0.0), Vec3::new(0.0, v, 0.0), 1.0)
        };
        let particles = vec![
            Particle::dm(0, Vec3::ZERO, Vec3::ZERO, m),
            sat(20.0, 1),
            sat(200.0, 2),
        ];
        let cfg = SimConfig {
            scheme: Scheme::Conventional,
            timestep: TimestepMode::Block { max_level: 8 },
            dt_global: 0.25,
            ..quiet_config()
        };
        let mut sim = Simulation::new(cfg, particles, 11);
        let e0 = sim.total_energy();
        sim.run(100); // ~3 orbits of the tight satellite
        let e1 = sim.total_energy();
        assert!(
            ((e1 - e0) / e0).abs() < 0.01,
            "energy drift {e0} -> {e1} under block timesteps"
        );
        let schedule = sim.scheduler().schedule().expect("block mode ran");
        assert!(
            schedule.max_level() >= 2,
            "hierarchy must engage: max level {}",
            schedule.max_level()
        );
        assert!(
            sim.stats.substeps > sim.stats.steps,
            "substeps {} should exceed base steps {}",
            sim.stats.substeps,
            sim.stats.steps
        );
        // The tight satellite stays on its orbit.
        let r1 = (sim.particles[1].pos - sim.particles[0].pos).norm();
        assert!((10.0..40.0).contains(&r1), "tight orbit radius {r1}");
    }

    /// Blob with one SN-hot particle: the spiked-dt scenario of
    /// `blocksteps::tests::one_hot_particle_destroys_efficiency`, run
    /// through the real driver.
    fn spiked_config(mode: TimestepMode) -> (SimConfig, Vec<Particle>) {
        let mut particles = gas_blob(8, 1.0, 1.0);
        // ~10^4 km/s signal speed at the blob centre: CFL wants a step
        // ~2^5-2^6 below base for the hot particle and its neighbourhood,
        // while the bulk of the 512-particle blob stays at level 0.
        particles[292].u = 1.0e8;
        let cfg = SimConfig {
            scheme: Scheme::Conventional,
            timestep: mode,
            dt_global: 2.0e-3,
            cooling: false,
            star_formation: false,
            eps: 1.0,
            ..Default::default()
        };
        (cfg, particles)
    }

    #[test]
    fn block_mode_spends_fewer_updates_than_global_on_spiked_dt() {
        let horizon = 2.0 * 2.0e-3;
        let (cfg_g, particles_g) = spiked_config(TimestepMode::Global);
        let mut global = Simulation::new(cfg_g, particles_g, 13);
        while global.time < horizon - 1e-12 {
            global.step();
        }
        let (cfg_b, particles_b) = spiked_config(TimestepMode::Block { max_level: 10 });
        let mut block = Simulation::new(cfg_b, particles_b, 13);
        // First base step: measured substeps must match the schedule.
        block.step();
        let schedule = block.scheduler().schedule().expect("schedule assigned");
        assert!(
            schedule.max_level() >= 3,
            "the hot particle must force deep levels, got {}",
            schedule.max_level()
        );
        assert_eq!(
            block.stats.substeps,
            schedule.substeps_per_base_step(),
            "driver substeps must match the schedule"
        );
        while block.time < horizon - 1e-12 {
            block.step();
        }
        // The global scheme dragged every particle down to the spiked dt;
        // the block scheme only pays for the hot subset.
        assert!(
            global.stats.dt_min_seen < cfg_b.dt_global / 8.0,
            "global dt must collapse: {}",
            global.stats.dt_min_seen
        );
        assert!(
            block.stats.active_updates < global.stats.active_updates / 2,
            "block updates {} must undercut global {}",
            block.stats.active_updates,
            global.stats.active_updates
        );
        // Cross-substep tree reuse happened — on both pipelines.
        assert!(
            block.stats.tree_refreshes > 0,
            "substeps should refresh, not rebuild, the gravity tree"
        );
        assert!(block.stats.tree_rebuilds > 0);
        assert!(
            block.stats.sph_tree_refreshes > block.stats.sph_tree_rebuilds,
            "substeps should mostly refresh the SPH neighbor tree: {} refreshes vs {} rebuilds",
            block.stats.sph_tree_refreshes,
            block.stats.sph_tree_rebuilds
        );
        // Global mode reuses too: one rebuild (density) + one refresh
        // (force) per evaluation.
        assert_eq!(
            global.stats.sph_tree_refreshes, global.stats.sph_tree_rebuilds,
            "global mode pairs each density rebuild with a force refresh"
        );
        assert!(global.stats.sph_tree_rebuilds > 0);
    }

    #[test]
    fn surrogate_scheme_never_leaves_global_mode() {
        // Even when configured with a block hierarchy, the surrogate
        // scheme's whole point is the fixed global step: the scheduler
        // must never engage.
        let particles = gas_blob(5, 1.0, 1.0);
        let dt = 2.0e-3;
        let cfg = SimConfig {
            scheme: Scheme::Surrogate,
            timestep: TimestepMode::Block { max_level: 10 },
            dt_global: dt,
            cooling: false,
            star_formation: false,
            eps: 1.0,
            ..Default::default()
        };
        let mut sim = Simulation::new(cfg, particles, 17);
        sim.run(4);
        assert_eq!(sim.stats.substeps, 0, "no fine substeps ever");
        assert!(sim.scheduler().schedule().is_none(), "never assigned");
        assert_eq!(sim.stats.dt_min_seen, dt, "the global step never shrank");
    }

    #[test]
    fn star_formation_converts_cold_dense_gas() {
        // Dense cold blob: rho above threshold, T below.
        let mut particles = gas_blob(5, 0.5, 1e-4);
        for p in particles.iter_mut() {
            p.mass = 5.0;
        }
        let cfg = SimConfig {
            dt_global: 0.5,
            cooling: false,
            star_formation: true,
            eps: 0.5,
            ..Default::default()
        };
        let mut sim = Simulation::new(cfg, particles, 4);
        sim.run(4);
        let n_star = sim.particles.iter().filter(|p| p.is_star()).count();
        assert!(
            n_star > 0 || sim.stats.stars_formed > 0,
            "dense cold gas must form stars"
        );
    }

    #[test]
    fn cooling_drives_hot_gas_down() {
        let particles = gas_blob(5, 1.0, 50.0); // hot: ~ 10^5-6 K
        let cfg = SimConfig {
            dt_global: 0.1,
            cooling: true,
            star_formation: false,
            eps: 0.5,
            ..Default::default()
        };
        let mut sim = Simulation::new(cfg, particles, 5);
        let u0: f64 = sim.particles.iter().map(|p| p.u).sum();
        sim.run(5);
        let u1: f64 = sim.particles.iter().map(|p| p.u).sum();
        assert!(u1 < u0, "cooling should lower u: {u0} -> {u1}");
    }

    #[test]
    fn sn_enriches_surrounding_gas_with_metals() {
        let mut particles = gas_blob(6, 3.0, 1.0);
        let m_star = 15.0;
        let life = stellar_lifetime_myr(m_star);
        let dt = 2.0e-3;
        particles.push(Particle::star(
            particles.len() as u64,
            Vec3::ZERO,
            Vec3::ZERO,
            m_star,
            dt * 1.5 - life,
        ));
        let cfg = SimConfig {
            dt_global: dt,
            pool_latency_steps: 3,
            cooling: false,
            star_formation: false,
            eps: 1.0,
            ..Default::default()
        };
        let mut sim = Simulation::new(cfg, particles, 9);
        sim.run(3);
        assert_eq!(sim.stats.sn_events, 1);
        let gas_metals: f64 = sim
            .particles
            .iter()
            .filter(|p| p.is_gas())
            .map(|p| p.metals)
            .sum();
        let expected = astro::yields::SnYield::for_progenitor(m_star).metals();
        assert!(
            (gas_metals / expected - 1.0).abs() < 1e-9,
            "gas received {gas_metals} of {expected} M_sun in metals"
        );
        // Enrichment is centrally weighted: the most metal-rich particle
        // sits near the explosion site.
        let _ = gas_metals;
        let richest = sim
            .particles
            .iter()
            .filter(|p| p.is_gas())
            .max_by(|a, b| a.metals.total_cmp(&b.metals))
            .expect("gas exists");
        assert!(
            richest.pos.norm() < 10.0,
            "most enriched particle at r = {}",
            richest.pos.norm()
        );
    }

    #[test]
    fn steady_state_stepping_does_not_grow_the_scratch_arena() {
        // The tentpole zero-allocation property: after a warm-up step, the
        // force pipeline's scratch arena (SoA snapshots, result arrays, gas
        // index, hydro state, SPH staging) must not grow — every step
        // refreshes the same buffers in place.
        let mut particles = gas_blob(6, 1.0, 1.0);
        // A couple of collisionless particles so gravity sees mixed species.
        particles.push(Particle::dm(
            particles.len() as u64,
            Vec3::new(10.0, 0.0, 0.0),
            Vec3::ZERO,
            100.0,
        ));
        particles.push(Particle::star(
            particles.len() as u64,
            Vec3::new(-10.0, 0.0, 0.0),
            Vec3::ZERO,
            1.0,
            0.0,
        ));
        let cfg = SimConfig {
            dt_global: 1e-4,
            ..quiet_config()
        };
        let mut sim = Simulation::new(cfg, particles, 8);
        sim.run(2); // warm-up: capacities reach their high-water mark
        let sig = sim.force_buffers().capacity_signature();
        assert!(
            sig.iter().any(|&c| c > 0),
            "warm-up must have populated the arena"
        );
        sim.run(5);
        assert_eq!(
            sim.force_buffers().capacity_signature(),
            sig,
            "scratch arena grew after warm-up"
        );
    }

    #[test]
    fn steady_state_block_substeps_do_not_grow_the_scratch_arena() {
        // The same zero-allocation contract, now through the block-timestep
        // path: after a warm-up base step populates the active-index,
        // prediction and tree-reuse scratch, further base steps (including
        // all their fine substeps) must not grow the arena.
        let (cfg, mut particles) = spiked_config(TimestepMode::Block { max_level: 6 });
        particles.push(Particle::dm(
            particles.len() as u64,
            Vec3::new(10.0, 0.0, 0.0),
            Vec3::ZERO,
            100.0,
        ));
        let mut sim = Simulation::new(cfg, particles, 19);
        sim.run(2);
        assert!(sim.stats.substeps > 2, "substepping must engage");
        let sig = sim.force_buffers().capacity_signature();
        assert!(sig.iter().any(|&c| c > 0));
        sim.run(3);
        assert_eq!(
            sim.force_buffers().capacity_signature(),
            sig,
            "scratch arena grew after block-mode warm-up"
        );
    }

    #[test]
    fn ids_remain_unique_through_star_formation() {
        let mut particles = gas_blob(4, 0.5, 1e-4);
        for p in particles.iter_mut() {
            p.mass = 5.0;
        }
        let cfg = SimConfig {
            dt_global: 0.5,
            cooling: false,
            star_formation: true,
            eps: 0.5,
            ..Default::default()
        };
        let mut sim = Simulation::new(cfg, particles, 6);
        sim.run(4);
        let mut ids: Vec<u64> = sim.particles.iter().map(|p| p.id).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate particle ids");
    }
}
