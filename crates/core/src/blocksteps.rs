//! Hierarchical (block) individual timesteps — the conventional machinery
//! the paper's scheme *replaces* (§1: "individual or hierarchical timestep
//! methods are often adopted ... computational efficiency tends to decrease
//! when the fraction of particles to be updated is small because
//! inter-process communications must be done at each timestep").
//!
//! Implemented here so the claim is measurable: particles are binned into
//! power-of-two levels below a base step, the scheduler walks the binary
//! subdivision, and [`BlockSchedule::efficiency`] quantifies exactly the
//! overhead argument the paper makes — every substep pays a fixed
//! synchronization cost (tree predictions, communication) regardless of how
//! few particles are active.

/// Assignment of particles to power-of-two timestep levels.
///
/// Level 0 steps with `dt_max`; level `l` with `dt_max / 2^l`.
///
/// The `Default` schedule is empty and unusable until
/// [`BlockSchedule::reassign`] runs (it exists so drivers can embed one
/// and fill it lazily).
#[derive(Debug, Clone, Default)]
pub struct BlockSchedule {
    pub dt_max: f64,
    /// Level per particle.
    pub levels: Vec<u32>,
    max_level: u32,
}

impl BlockSchedule {
    /// Bin `dt_wanted` into levels: the largest power-of-two fraction of
    /// `dt_max` not exceeding each particle's desired step, capped at
    /// `max_level`.
    pub fn assign(dt_max: f64, dt_wanted: &[f64], max_level: u32) -> Self {
        let mut s = BlockSchedule {
            dt_max,
            levels: Vec::new(),
            max_level: 0,
        };
        s.reassign(dt_max, dt_wanted, max_level);
        s
    }

    /// In-place [`BlockSchedule::assign`]: the level array is cleared and
    /// refilled, never re-collected, so a driver reassigning levels every
    /// base step reuses the same storage (the scheduler's zero-allocation
    /// contract).
    pub fn reassign(&mut self, dt_max: f64, dt_wanted: &[f64], max_level: u32) {
        assert!(dt_max > 0.0);
        self.dt_max = dt_max;
        self.levels.clear();
        self.levels.extend(dt_wanted.iter().map(|&dt| {
            assert!(dt > 0.0, "timesteps must be positive");
            let ratio = dt_max / dt;
            if ratio <= 1.0 {
                0
            } else {
                (ratio.log2().ceil() as u32).min(max_level)
            }
        }));
        self.max_level = self.levels.iter().copied().max().unwrap_or(0);
    }

    /// Restore a previously captured level assignment verbatim (snapshot
    /// restart): unlike [`BlockSchedule::reassign`] the levels are taken as
    /// given, not re-derived from desired timesteps.
    pub fn restore(&mut self, dt_max: f64, levels: &[u32]) {
        assert!(dt_max > 0.0);
        self.dt_max = dt_max;
        self.levels.clear();
        self.levels.extend_from_slice(levels);
        self.max_level = levels.iter().copied().max().unwrap_or(0);
    }

    /// Deepen the substep walk to `depth` without touching any particle's
    /// level: the base step is subdivided as if level `depth` were
    /// occupied, so `substeps_per_base_step` becomes `2^depth` and every
    /// `active_at*` period is computed against the deeper hierarchy. This
    /// is the distributed schedule-agreement hook — every rank raises its
    /// local schedule to the allreduced world maximum so all ranks walk
    /// the same fine-substep boundaries (and hit the same collectives),
    /// while ranks with only shallow levels simply have empty active sets
    /// at the extra boundaries. A `depth` below the deepest occupied
    /// level is a no-op.
    pub fn raise_depth(&mut self, depth: u32) {
        self.max_level = self.max_level.max(depth);
    }

    /// Deepest level the substep walk subdivides to: the deepest occupied
    /// level, or the [`BlockSchedule::raise_depth`] override if deeper.
    pub fn max_level(&self) -> u32 {
        self.max_level
    }

    /// The finest substep.
    pub fn dt_min(&self) -> f64 {
        self.dt_max / (1u64 << self.max_level) as f64
    }

    /// Substeps of the finest level needed to cover one base step.
    pub fn substeps_per_base_step(&self) -> u64 {
        1u64 << self.max_level
    }

    /// Which particles are active at fine-substep `k` (0-based within the
    /// base step): a particle at level `l` updates every `2^(max - l)`
    /// substeps.
    pub fn active_at(&self, k: u64) -> Vec<usize> {
        let mut out = Vec::new();
        self.active_at_into(k, &mut out);
        out.into_iter().map(|i| i as usize).collect()
    }

    /// [`BlockSchedule::active_at`] into a caller-owned index buffer
    /// (cleared, capacity kept) — the zero-allocation entry point the
    /// substep driver uses at every boundary. Also valid at `k = 2^max`
    /// (the base-step end boundary, where every particle closes a step).
    pub fn active_at_into(&self, k: u64, out: &mut Vec<u32>) {
        out.clear();
        for (i, &l) in self.levels.iter().enumerate() {
            let period = 1u64 << (self.max_level - l);
            if k.is_multiple_of(period) {
                out.push(i as u32);
            }
        }
    }

    /// The quantized timestep of particle `i`: `dt_max / 2^level`.
    pub fn dt_of(&self, i: usize) -> f64 {
        self.dt_max / (1u64 << self.levels[i]) as f64
    }

    /// Total particle-updates over one base step — the useful work.
    pub fn updates_per_base_step(&self) -> u64 {
        self.levels.iter().map(|&l| 1u64 << l).sum()
    }

    /// Parallel efficiency under the paper's cost argument: each of the
    /// `2^max_level` substeps pays `overhead_fraction` of a full-system
    /// update (prediction + tree + communication for *all* particles),
    /// while useful work is only the active updates. Equals ~1 when all
    /// particles share one level, and collapses when a few particles force
    /// deep levels.
    pub fn efficiency(&self, overhead_fraction: f64) -> f64 {
        let n = self.levels.len() as f64;
        let substeps = self.substeps_per_base_step() as f64;
        let useful = self.updates_per_base_step() as f64;
        let overhead = substeps * overhead_fraction * n;
        useful / (useful + overhead)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_timesteps_use_one_level() {
        let s = BlockSchedule::assign(1.0, &[1.0; 100], 20);
        assert_eq!(s.max_level(), 0);
        assert_eq!(s.substeps_per_base_step(), 1);
        assert_eq!(s.updates_per_base_step(), 100);
        assert_eq!(s.active_at(0).len(), 100);
    }

    #[test]
    fn levels_quantize_downward() {
        let s = BlockSchedule::assign(1.0, &[1.0, 0.6, 0.5, 0.3, 0.11], 20);
        // 0.6 -> level 1 (dt 0.5); 0.5 -> 1; 0.3 -> 2 (0.25); 0.11 -> 4 (0.0625).
        assert_eq!(s.levels, vec![0, 1, 1, 2, 4]);
        // Quantized dt never exceeds the wanted dt.
        for (&l, &want) in s.levels.iter().zip(&[1.0, 0.6, 0.5, 0.3, 0.11]) {
            assert!(s.dt_max / (1u64 << l) as f64 <= want + 1e-12);
        }
    }

    #[test]
    fn activity_pattern_is_binary_subdivision() {
        let s = BlockSchedule::assign(1.0, &[1.0, 0.5, 0.25], 20);
        assert_eq!(s.max_level(), 2);
        assert_eq!(s.substeps_per_base_step(), 4);
        // Substep 0: everyone. 1: only level 2. 2: levels 1 and 2. 3: level 2.
        assert_eq!(s.active_at(0), vec![0, 1, 2]);
        assert_eq!(s.active_at(1), vec![2]);
        assert_eq!(s.active_at(2), vec![1, 2]);
        assert_eq!(s.active_at(3), vec![2]);
        // Each particle's total updates match its level.
        let mut counts = [0u32; 3];
        for k in 0..4 {
            for i in s.active_at(k) {
                counts[i] += 1;
            }
        }
        assert_eq!(counts, [1, 2, 4]);
        assert_eq!(s.updates_per_base_step(), 7);
    }

    #[test]
    fn one_hot_particle_destroys_efficiency() {
        // The paper's argument quantified: one SN-heated particle forcing a
        // 1024x smaller step makes the fixed per-substep costs dominate.
        let n = 10_000;
        let mut dts = vec![1.0; n];
        let uniform = BlockSchedule::assign(1.0, &dts, 20);
        dts[0] = 1.0 / 1024.0;
        let spiked = BlockSchedule::assign(1.0, &dts, 20);
        let overhead = 0.01; // 1% of a full update per substep
        let e_uniform = uniform.efficiency(overhead);
        let e_spiked = spiked.efficiency(overhead);
        assert!(e_uniform > 0.95, "uniform efficiency {e_uniform}");
        assert!(
            e_spiked < 0.25 * e_uniform,
            "spiked efficiency {e_spiked} should collapse vs {e_uniform}"
        );
    }

    #[test]
    fn max_level_cap_is_respected() {
        let s = BlockSchedule::assign(1.0, &[1e-9], 10);
        assert_eq!(s.max_level(), 10);
        assert!((s.dt_min() - 1.0 / 1024.0).abs() < 1e-12);
    }

    #[test]
    fn efficiency_with_zero_overhead_is_one() {
        let s = BlockSchedule::assign(1.0, &[1.0, 0.25, 0.5], 20);
        assert!((s.efficiency(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_timestep_rejected() {
        let _ = BlockSchedule::assign(1.0, &[0.0], 4);
    }

    #[test]
    fn raise_depth_widens_the_walk_without_moving_levels() {
        let mut s = BlockSchedule::assign(1.0, &[1.0, 0.5], 20);
        assert_eq!(s.max_level(), 1);
        s.raise_depth(3);
        assert_eq!(s.max_level(), 3);
        assert_eq!(s.substeps_per_base_step(), 8);
        // Particle levels (and their quantized dts) are untouched.
        assert_eq!(s.levels, vec![0, 1]);
        assert_eq!(s.dt_of(1), 0.5);
        // Level-1 particles now update every 4 of the 8 fine substeps.
        assert_eq!(s.active_at(4), vec![1]);
        assert_eq!(s.active_at(1), Vec::<usize>::new());
        assert_eq!(s.active_at(0), vec![0, 1]);
        // Raising below the occupied depth is a no-op.
        s.raise_depth(2);
        assert_eq!(s.max_level(), 3);
        // Reassignment re-derives the depth from the levels again.
        s.reassign(1.0, &[1.0, 0.5], 20);
        assert_eq!(s.max_level(), 1);
    }

    #[test]
    fn reassign_reuses_storage_and_matches_assign() {
        let mut s = BlockSchedule::assign(1.0, &[1.0, 0.3, 0.1, 0.6], 20);
        let cap = s.levels.capacity();
        s.reassign(2.0, &[2.0, 0.5, 0.9], 20);
        let fresh = BlockSchedule::assign(2.0, &[2.0, 0.5, 0.9], 20);
        assert_eq!(s.levels, fresh.levels);
        assert_eq!(s.max_level(), fresh.max_level());
        assert_eq!(s.levels.capacity(), cap, "reassign must not reallocate");
    }

    #[test]
    fn active_at_into_matches_active_at_and_covers_end_boundary() {
        let s = BlockSchedule::assign(1.0, &[1.0, 0.5, 0.25], 20);
        let mut buf = Vec::new();
        for k in 0..s.substeps_per_base_step() {
            s.active_at_into(k, &mut buf);
            let via_vec: Vec<usize> = buf.iter().map(|&i| i as usize).collect();
            assert_eq!(via_vec, s.active_at(k));
        }
        // End boundary: everyone closes a step.
        s.active_at_into(s.substeps_per_base_step(), &mut buf);
        assert_eq!(buf, vec![0, 1, 2]);
        // Per-particle quantized dt follows the level.
        assert_eq!(s.dt_of(0), 1.0);
        assert_eq!(s.dt_of(1), 0.5);
        assert_eq!(s.dt_of(2), 0.25);
    }
}
