//! Pool-node predictors: given an SN region's gas particles, produce their
//! state `horizon` Myr after the explosion.

use fdps::Vec3;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sph::GammaLawEos;
use surrogate::{GasParticle, SurrogateConfig, SurrogateModel};

/// Anything that can stand on a pool node (paper Fig. 3, step 3).
pub trait PoolPredictor: Send + Sync {
    /// Predict the region state `horizon` Myr after an SN of energy
    /// `energy` at `center`. Must preserve particle count and IDs.
    fn predict(
        &self,
        center: Vec3,
        energy: f64,
        horizon: f64,
        particles: &[GasParticle],
    ) -> Vec<GasParticle>;
}

/// Analytic predictor: stamps the Sedov–Taylor solution onto the region.
/// Deterministic and cheap — the reference the U-Net is trained to imitate,
/// and the default for tests and small runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct SedovOverlayPredictor;

impl PoolPredictor for SedovOverlayPredictor {
    fn predict(
        &self,
        center: Vec3,
        energy: f64,
        horizon: f64,
        particles: &[GasParticle],
    ) -> Vec<GasParticle> {
        if particles.is_empty() {
            return Vec::new();
        }
        // Ambient density from the region mean.
        let m_tot: f64 = particles.iter().map(|p| p.mass).sum();
        let side = region_half_extent(center, particles) * 2.0;
        let rho0 = (m_tot / (side * side * side).max(1e-12)).max(1e-8);
        let blast = astro::SedovTaylor::new(energy, rho0);
        let t = horizon.max(1e-6);
        let rs = blast.shock_radius(t);
        let eos = GammaLawEos::default();

        particles
            .iter()
            .map(|p| {
                let d = p.pos - center;
                let r = d.norm();
                let mut out = *p;
                if r < rs {
                    let dir = if r > 1e-9 { d / r } else { Vec3::ZERO };
                    // Move the particle with the shell flow (mean of its
                    // current and post-shock radius, capped inside the box).
                    let v = blast.velocity(r, t);
                    out.vel = p.vel + dir * v;
                    let temp = blast.temperature(r, t, eos.mu).clamp(10.0, 1e9);
                    out.temp = temp;
                    let dr = (v * t * 0.5).min(0.45 * side - r.min(0.45 * side));
                    out.pos = p.pos + dir * dr.max(0.0);
                }
                out
            })
            .collect()
    }
}

/// U-Net predictor: the full paper pipeline on a pool node.
pub struct UNetPredictor {
    pub model: SurrogateModel,
    pub seed: u64,
}

impl UNetPredictor {
    pub fn new(model: SurrogateModel, seed: u64) -> Self {
        UNetPredictor { model, seed }
    }

    /// Small untrained network (pipeline plumbing for tests; production
    /// runs load trained weights via [`UNetPredictor::from_weights`]).
    pub fn untrained_small(seed: u64) -> Self {
        UNetPredictor {
            model: SurrogateModel::new(SurrogateConfig {
                grid_n: 8,
                side: 60.0,
                base_features: 2,
                seed,
            }),
            seed,
        }
    }

    /// Build from a trained-weights document ([`SurrogateModel::to_json`]
    /// text, as written by `asura train-surrogate`). The voxel grid's
    /// physical side is overridden to `region_side` so the deployed model
    /// always voxelizes exactly the region the driver cuts, regardless of
    /// the side recorded at training time. Invalid or corrupt documents
    /// are a typed `Err`, never a panic.
    pub fn from_weights(seed: u64, weights_json: &str, region_side: f64) -> Result<Self, String> {
        let mut model = SurrogateModel::from_json(weights_json)?;
        model.config.side = region_side;
        Ok(UNetPredictor { model, seed })
    }
}

impl PoolPredictor for UNetPredictor {
    fn predict(
        &self,
        center: Vec3,
        _energy: f64,
        _horizon: f64,
        particles: &[GasParticle],
    ) -> Vec<GasParticle> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ particles.len() as u64);
        self.model.predict_particles(&mut rng, center, particles)
    }
}

fn region_half_extent(center: Vec3, particles: &[GasParticle]) -> f64 {
    particles
        .iter()
        .map(|p| {
            let d = p.pos - center;
            d.x.abs().max(d.y.abs()).max(d.z.abs())
        })
        .fold(1.0f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use astro::units::E_SN;
    use rand::Rng;

    fn region(n: usize, seed: u64) -> Vec<GasParticle> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| GasParticle {
                pos: Vec3::new(
                    rng.gen_range(-30.0..30.0),
                    rng.gen_range(-30.0..30.0),
                    rng.gen_range(-30.0..30.0),
                ),
                vel: Vec3::ZERO,
                mass: 1.0,
                temp: 100.0,
                h: 3.0,
                id: i as u64,
            })
            .collect()
    }

    #[test]
    fn sedov_overlay_heats_and_expels_the_interior() {
        let parts = region(800, 1);
        let out = SedovOverlayPredictor.predict(Vec3::ZERO, E_SN, 0.1, &parts);
        assert_eq!(out.len(), parts.len());
        let mut heated = 0;
        let mut outward = 0;
        let mut inside = 0;
        for (before, after) in parts.iter().zip(&out) {
            assert_eq!(before.id, after.id);
            let r = before.pos.norm();
            if r < 8.0 {
                inside += 1;
                if after.temp > 1e4 {
                    heated += 1;
                }
                if after.vel.dot(before.pos) > 0.0 {
                    outward += 1;
                }
            }
        }
        assert!(inside > 5, "need interior particles, got {inside}");
        assert_eq!(heated, inside, "all interior particles heated");
        assert!(outward as f64 > 0.9 * inside as f64);
    }

    #[test]
    fn sedov_overlay_leaves_far_field_untouched() {
        // Heavier particles -> denser ambient medium -> the 0.05 Myr shock
        // stays well inside 25 pc.
        let mut parts = region(300, 2);
        for p in parts.iter_mut() {
            p.mass = 50.0;
        }
        let out = SedovOverlayPredictor.predict(Vec3::ZERO, E_SN, 0.05, &parts);
        for (before, after) in parts.iter().zip(&out) {
            if before.pos.norm() > 25.0 {
                assert_eq!(before.pos, after.pos);
                assert_eq!(before.temp, after.temp);
            }
        }
    }

    #[test]
    fn sedov_overlay_conserves_mass_exactly() {
        let parts = region(200, 3);
        let out = SedovOverlayPredictor.predict(Vec3::ZERO, E_SN, 0.1, &parts);
        let m_in: f64 = parts.iter().map(|p| p.mass).sum();
        let m_out: f64 = out.iter().map(|p| p.mass).sum();
        assert_eq!(m_in, m_out);
    }

    #[test]
    fn unet_predictor_preserves_count_and_ids() {
        let parts = region(100, 4);
        let pred = UNetPredictor::untrained_small(7);
        let out = pred.predict(Vec3::ZERO, E_SN, 0.1, &parts);
        assert_eq!(out.len(), parts.len());
        for (a, b) in parts.iter().zip(&out) {
            assert_eq!(a.id, b.id);
        }
    }

    #[test]
    fn empty_region_is_a_noop() {
        let out = SedovOverlayPredictor.predict(Vec3::ZERO, E_SN, 0.1, &[]);
        assert!(out.is_empty());
    }
}
