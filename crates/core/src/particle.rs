//! The unified particle record used by the driver.
//!
//! DM, stars, and gas share one flat struct (unused fields stay at their
//! defaults) so the exchange paths stay simple and copy-friendly.

use fdps::Vec3;

/// Particle species.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    Dm,
    Star,
    Gas,
}

/// One simulation particle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Particle {
    pub id: u64,
    pub kind: Kind,
    pub pos: Vec3,
    pub vel: Vec3,
    pub mass: f64,
    /// Gas: specific internal energy [code units].
    pub u: f64,
    /// Gas: smoothing length \[pc\].
    pub h: f64,
    /// Gas: density (derived each step) \[M_sun/pc^3\].
    pub rho: f64,
    /// Gas: metal mass carried \[M_sun\] (C+O+Mg+Fe, Figure 1's cycle).
    pub metals: f64,
    /// Star: formation time \[Myr\].
    pub birth_time: f64,
    /// Star: whether its SN has already fired.
    pub exploded: bool,
}

impl Particle {
    pub fn dm(id: u64, pos: Vec3, vel: Vec3, mass: f64) -> Self {
        Particle {
            id,
            kind: Kind::Dm,
            pos,
            vel,
            mass,
            u: 0.0,
            h: 0.0,
            rho: 0.0,
            metals: 0.0,
            birth_time: 0.0,
            exploded: false,
        }
    }

    pub fn star(id: u64, pos: Vec3, vel: Vec3, mass: f64, birth_time: f64) -> Self {
        Particle {
            id,
            kind: Kind::Star,
            pos,
            vel,
            mass,
            u: 0.0,
            h: 0.0,
            rho: 0.0,
            metals: 0.0,
            birth_time,
            exploded: false,
        }
    }

    pub fn gas(id: u64, pos: Vec3, vel: Vec3, mass: f64, u: f64, h: f64) -> Self {
        Particle {
            id,
            kind: Kind::Gas,
            pos,
            vel,
            mass,
            u,
            h,
            rho: 0.0,
            metals: 0.0,
            birth_time: 0.0,
            exploded: false,
        }
    }

    pub fn is_gas(&self) -> bool {
        self.kind == Kind::Gas
    }

    pub fn is_star(&self) -> bool {
        self.kind == Kind::Star
    }

    /// Metallicity Z = metal mass / total mass (gas particles).
    pub fn metallicity(&self) -> f64 {
        if self.mass > 0.0 {
            self.metals / self.mass
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind_and_fields() {
        let d = Particle::dm(1, Vec3::splat(1.0), Vec3::ZERO, 5.0);
        assert_eq!(d.kind, Kind::Dm);
        assert!(!d.is_gas());
        let s = Particle::star(2, Vec3::ZERO, Vec3::ZERO, 9.0, 13.5);
        assert!(s.is_star());
        assert_eq!(s.birth_time, 13.5);
        assert!(!s.exploded);
        let g = Particle::gas(3, Vec3::ZERO, Vec3::ZERO, 1.0, 0.4, 2.0);
        assert!(g.is_gas());
        assert_eq!(g.u, 0.4);
        assert_eq!(g.h, 2.0);
        assert_eq!(g.metals, 0.0);
        assert_eq!(g.metallicity(), 0.0);
    }

    #[test]
    fn metallicity_is_metal_fraction() {
        let mut g = Particle::gas(1, Vec3::ZERO, Vec3::ZERO, 2.0, 0.1, 1.0);
        g.metals = 0.04;
        assert!((g.metallicity() - 0.02).abs() < 1e-15);
    }
}
