//! Simulation-as-a-service: the `asura serve` daemon's fleet, queue, and
//! line protocol.
//!
//! One long-lived process owns a **run registry** (the [`Fleet`]): clients
//! submit a scenario name plus [`RunOverrides`] and get back a run id; runs
//! move `queued → running → completed | failed | gave_up | canceled`. A
//! scheduler dispatches queued runs up to a concurrency cap, and each
//! dispatched run is a **supervised child process** — the worker drives
//! [`Supervisor::run_with_abort`], so every fleet run gets the same
//! crash/hang detection, incident logging, and checkpoint-rotation
//! auto-resume as `asura --supervised`, and concurrent runs overlap
//! compute as separate OS processes.
//!
//! # Protocol
//!
//! Newline-delimited text over TCP; one request line per connection, JSON
//! response line(s) back:
//!
//! ```text
//! SUBMIT <scenario> [<overrides-json>]   → {"ok":true,"id":"r0001-…"}
//! STATUS <run-id>                        → state, step/target, incidents, heartbeat age
//! LIST                                   → every run's id/scenario/state
//! WATCH <run-id>                         → streams diagnostics rows, then a done line
//! CANCEL <run-id>                        → kill (or dequeue) the run
//! SCENARIOS                              → the submittable catalog
//! SHUTDOWN [DRAIN]                       → stop the daemon (see below)
//! ```
//!
//! Every response line is a JSON object with an `"ok"` field; errors are
//! `{"ok":false,"error":"…"}`. [`Request::parse`]/[`Request::render`] are
//! the single grammar definition, shared by the daemon and the client.
//!
//! # Durability
//!
//! The registry is persisted to `fleet.json` in the serve root with the
//! same atomic tmp→fsync→rename discipline as the checkpoints, after every
//! mutation. A restarted daemon re-adopts the file: `running` entries (the
//! previous daemon died underneath them) fall back to `queued` — their
//! next attempt auto-resumes from the run directory's checkpoint rotation,
//! so no committed progress is lost — and any recorded child pid is
//! best-effort killed first so an orphan can't race the re-run.
//!
//! `SHUTDOWN` detaches the workers ([`StopReason::Detach`]): children are
//! killed, their runs return to `queued` in `fleet.json`, and the next
//! daemon start resumes them from the rotation. `SHUTDOWN DRAIN` instead
//! stops dispatching and waits for the running runs to finish.
//!
//! The daemon's bound address is advertised in `serve.json` in the serve
//! root (removed on clean exit), so clients on the same machine need no
//! configuration beyond the root directory.

use crate::ckpt::{atomic_write, CkptStore};
use crate::faults::{self, FaultPlan};
use crate::supervise::{
    Heartbeat, IncidentLog, Outcome, ProcessChild, ResumePoint, RetryPolicy, StopReason, Supervisor,
};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Duration;
use unet::json::{parse_json, write_json, Json};

/// `format` field of `fleet.json`.
pub const FLEET_FORMAT: &str = "asura-fleet";
/// `fleet.json` schema version.
pub const FLEET_VERSION: u64 = 1;
/// Registry file name under the serve root.
pub const FLEET_FILE: &str = "fleet.json";
/// Address-discovery file name under the serve root.
pub const ADDR_FILE: &str = "serve.json";

/// Render a JSON string literal (with escaping).
fn jstr(s: &str) -> String {
    let mut out = String::new();
    write_json(&Json::Str(s.to_string()), &mut out);
    out
}

/// A standard error response line.
pub fn err_line(msg: &str) -> String {
    format!("{{\"ok\":false,\"error\":{}}}", jstr(msg))
}

/// Lifecycle state of a fleet run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunState {
    Queued,
    Running,
    Completed,
    /// The child failed permanently (non-retryable exit code) or the
    /// worker itself hit an I/O error.
    Failed,
    /// The supervisor exhausted its retry budget.
    GaveUp,
    Canceled,
}

impl RunState {
    pub fn as_str(self) -> &'static str {
        match self {
            RunState::Queued => "queued",
            RunState::Running => "running",
            RunState::Completed => "completed",
            RunState::Failed => "failed",
            RunState::GaveUp => "gave_up",
            RunState::Canceled => "canceled",
        }
    }

    pub fn parse(s: &str) -> Option<RunState> {
        Some(match s {
            "queued" => RunState::Queued,
            "running" => RunState::Running,
            "completed" => RunState::Completed,
            "failed" => RunState::Failed,
            "gave_up" => RunState::GaveUp,
            "canceled" => RunState::Canceled,
            _ => return None,
        })
    }

    /// Terminal states never leave the registry's history.
    pub fn is_terminal(self) -> bool {
        !matches!(self, RunState::Queued | RunState::Running)
    }
}

/// Per-run configuration accepted in `SUBMIT`'s overrides JSON. Every
/// field is optional; unknown keys are rejected at submit time (a typo'd
/// override must not silently run with defaults).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunOverrides {
    /// Target step count (default: the scenario's registered default).
    pub steps: Option<u64>,
    pub seed: Option<u64>,
    /// `surrogate` | `conventional`.
    pub scheme: Option<String>,
    /// `global` | `block` | `block:<max_level>`.
    pub timestep: Option<String>,
    /// Checkpoint cadence in steps (serve default: 1, so auto-resume
    /// always has a fresh rotation entry).
    pub snapshot_every: Option<u64>,
    /// `bin` | `json`.
    pub snapshot_format: Option<String>,
    /// An `ASURA_FAULTS` plan set on this run's children only — the
    /// daemon-level chaos tests kill one fleet member without touching
    /// its neighbors.
    pub faults: Option<String>,
}

impl RunOverrides {
    /// Parse and validate the overrides object of a `SUBMIT` request.
    pub fn from_json(doc: &Json) -> Result<RunOverrides, String> {
        let Json::Obj(fields) = doc else {
            return Err(format!("overrides must be a JSON object, got {doc:?}"));
        };
        let mut o = RunOverrides::default();
        for (key, value) in fields {
            match key.as_str() {
                "steps" => {
                    o.steps = Some(value.as_usize().map_err(|e| format!("steps: {e}"))? as u64)
                }
                "seed" => o.seed = Some(value.as_usize().map_err(|e| format!("seed: {e}"))? as u64),
                "snapshot_every" => {
                    o.snapshot_every = Some(
                        value
                            .as_usize()
                            .map_err(|e| format!("snapshot_every: {e}"))?
                            as u64,
                    )
                }
                "scheme" => match value {
                    Json::Str(s) if s == "surrogate" || s == "conventional" => {
                        o.scheme = Some(s.clone())
                    }
                    other => {
                        return Err(format!(
                            "scheme must be surrogate|conventional, got {other:?}"
                        ))
                    }
                },
                "timestep" => match value {
                    Json::Str(s)
                        if s == "global"
                            || s == "block"
                            || s.strip_prefix("block:")
                                .is_some_and(|l| l.parse::<u32>().is_ok()) =>
                    {
                        o.timestep = Some(s.clone())
                    }
                    other => {
                        return Err(format!(
                            "timestep must be global|block|block:<max_level>, got {other:?}"
                        ))
                    }
                },
                "snapshot_format" => match value {
                    Json::Str(s) if s == "bin" || s == "json" => {
                        o.snapshot_format = Some(s.clone())
                    }
                    other => {
                        return Err(format!("snapshot_format must be bin|json, got {other:?}"))
                    }
                },
                "faults" => match value {
                    Json::Str(s) => {
                        FaultPlan::parse(s).map_err(|e| format!("faults: {e}"))?;
                        o.faults = Some(s.clone());
                    }
                    other => return Err(format!("faults must be a plan string, got {other:?}")),
                },
                other => return Err(format!("unknown override `{other}`")),
            }
        }
        Ok(o)
    }

    /// Compact JSON rendering (only the set fields; integers stay
    /// integers).
    pub fn to_json(&self) -> String {
        let mut parts = Vec::new();
        if let Some(v) = self.steps {
            parts.push(format!("\"steps\":{v}"));
        }
        if let Some(v) = self.seed {
            parts.push(format!("\"seed\":{v}"));
        }
        if let Some(s) = &self.scheme {
            parts.push(format!("\"scheme\":{}", jstr(s)));
        }
        if let Some(s) = &self.timestep {
            parts.push(format!("\"timestep\":{}", jstr(s)));
        }
        if let Some(v) = self.snapshot_every {
            parts.push(format!("\"snapshot_every\":{v}"));
        }
        if let Some(s) = &self.snapshot_format {
            parts.push(format!("\"snapshot_format\":{}", jstr(s)));
        }
        if let Some(s) = &self.faults {
            parts.push(format!("\"faults\":{}", jstr(s)));
        }
        format!("{{{}}}", parts.join(","))
    }
}

/// One run in the registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunEntry {
    /// `r<seq>-<scenario>`, also the run's directory name under the root.
    pub id: String,
    pub scenario: String,
    pub state: RunState,
    /// Absolute step the run integrates to (every resumed attempt ends at
    /// the same step, so the bitwise-determinism contract holds).
    pub target_steps: u64,
    /// OS pid of the currently-running child, for orphan cleanup when a
    /// killed daemon's registry is re-adopted.
    pub child_pid: Option<u32>,
    pub overrides: RunOverrides,
}

/// A submittable scenario, as the daemon advertises it — the binary feeds
/// its registry in as plain data so `asura-core` needs no knowledge of the
/// scenario implementations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioMeta {
    pub name: String,
    pub description: String,
    pub default_steps: u64,
}

/// The run registry: submit/lookup plus `fleet.json` (de)serialization.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Fleet {
    next_seq: u64,
    pub runs: Vec<RunEntry>,
}

impl Fleet {
    /// Register a new queued run and return its id.
    pub fn submit(
        &mut self,
        scenario: &str,
        default_steps: u64,
        overrides: RunOverrides,
    ) -> String {
        self.next_seq += 1;
        let id = format!("r{:04}-{scenario}", self.next_seq);
        self.runs.push(RunEntry {
            id: id.clone(),
            scenario: scenario.to_string(),
            state: RunState::Queued,
            target_steps: overrides.steps.unwrap_or(default_steps),
            child_pid: None,
            overrides,
        });
        id
    }

    pub fn get(&self, id: &str) -> Option<&RunEntry> {
        self.runs.iter().find(|r| r.id == id)
    }

    pub fn get_mut(&mut self, id: &str) -> Option<&mut RunEntry> {
        self.runs.iter_mut().find(|r| r.id == id)
    }

    pub fn running_count(&self) -> usize {
        self.runs
            .iter()
            .filter(|r| r.state == RunState::Running)
            .count()
    }

    /// Adopt a registry left behind by a dead daemon: `running` entries
    /// fall back to `queued` (their next attempt resumes from the run
    /// directory's rotation). Returns the orphaned child pids so the
    /// caller can reap them before re-dispatching.
    pub fn adopt(&mut self) -> Vec<u32> {
        let mut stale = Vec::new();
        for run in &mut self.runs {
            if run.state == RunState::Running {
                run.state = RunState::Queued;
                if let Some(pid) = run.child_pid.take() {
                    stale.push(pid);
                }
            }
        }
        stale
    }

    /// Hand-rendered `fleet.json` (integers stay integers).
    pub fn to_json(&self) -> String {
        let mut text = format!(
            "{{\"format\":\"{FLEET_FORMAT}\",\"version\":{FLEET_VERSION},\"next_seq\":{},\"runs\":[",
            self.next_seq
        );
        for (n, r) in self.runs.iter().enumerate() {
            if n > 0 {
                text.push(',');
            }
            let pid = match r.child_pid {
                Some(p) => p.to_string(),
                None => "null".to_string(),
            };
            text.push_str(&format!(
                "{{\"id\":{},\"scenario\":{},\"state\":\"{}\",\"target_steps\":{},\
                 \"child_pid\":{pid},\"overrides\":{}}}",
                jstr(&r.id),
                jstr(&r.scenario),
                r.state.as_str(),
                r.target_steps,
                r.overrides.to_json(),
            ));
        }
        text.push_str("]}\n");
        text
    }

    pub fn from_json(text: &str) -> Result<Fleet, String> {
        let doc = parse_json(text)?;
        match doc.get("format")? {
            Json::Str(s) if s == FLEET_FORMAT => {}
            other => return Err(format!("not a fleet file: format {other:?}")),
        }
        let version = doc.get("version")?.as_usize()?;
        if version != FLEET_VERSION as usize {
            return Err(format!("unsupported fleet version {version}"));
        }
        let Json::Arr(items) = doc.get("runs")? else {
            return Err("runs is not an array".into());
        };
        let mut runs = Vec::with_capacity(items.len());
        for item in items {
            let state = match item.get("state")? {
                Json::Str(s) => {
                    RunState::parse(s).ok_or_else(|| format!("unknown run state `{s}`"))?
                }
                other => return Err(format!("bad state field {other:?}")),
            };
            let id = match item.get("id")? {
                Json::Str(s) => s.clone(),
                other => return Err(format!("bad id field {other:?}")),
            };
            let scenario = match item.get("scenario")? {
                Json::Str(s) => s.clone(),
                other => return Err(format!("bad scenario field {other:?}")),
            };
            runs.push(RunEntry {
                id,
                scenario,
                state,
                target_steps: item.get("target_steps")?.as_usize()? as u64,
                child_pid: match item.get("child_pid")? {
                    Json::Null => None,
                    v => Some(v.as_usize()? as u32),
                },
                overrides: RunOverrides::from_json(item.get("overrides")?)?,
            });
        }
        Ok(Fleet {
            next_seq: doc.get("next_seq")?.as_usize()? as u64,
            runs,
        })
    }

    /// Atomically persist the registry.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        atomic_write(path, self.to_json().as_bytes())
    }
}

/// A parsed protocol request. [`Request::parse`] and [`Request::render`]
/// are exact inverses; the grammar lives nowhere else.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    Submit {
        scenario: String,
        overrides: RunOverrides,
    },
    Status {
        id: String,
    },
    List,
    Watch {
        id: String,
    },
    Cancel {
        id: String,
    },
    Scenarios,
    Shutdown {
        drain: bool,
    },
}

impl Request {
    /// Parse one request line.
    pub fn parse(line: &str) -> Result<Request, String> {
        let line = line.trim();
        let (verb, rest) = match line.split_once(' ') {
            Some((v, r)) => (v, r.trim()),
            None => (line, ""),
        };
        let arg = |what: &str| -> Result<String, String> {
            if rest.is_empty() || rest.contains(' ') {
                Err(format!("usage: {verb} <{what}>"))
            } else {
                Ok(rest.to_string())
            }
        };
        let none = |req: Request| -> Result<Request, String> {
            if rest.is_empty() {
                Ok(req)
            } else {
                Err(format!("{verb} takes no argument"))
            }
        };
        match verb {
            "SUBMIT" => {
                let (scenario, json) = match rest.split_once(' ') {
                    Some((s, j)) => (s, j.trim()),
                    None => (rest, ""),
                };
                if scenario.is_empty() {
                    return Err("usage: SUBMIT <scenario> [<overrides-json>]".into());
                }
                let overrides = if json.is_empty() {
                    RunOverrides::default()
                } else {
                    RunOverrides::from_json(&parse_json(json)?)?
                };
                Ok(Request::Submit {
                    scenario: scenario.to_string(),
                    overrides,
                })
            }
            "STATUS" => Ok(Request::Status { id: arg("run-id")? }),
            "LIST" => none(Request::List),
            "WATCH" => Ok(Request::Watch { id: arg("run-id")? }),
            "CANCEL" => Ok(Request::Cancel { id: arg("run-id")? }),
            "SCENARIOS" => none(Request::Scenarios),
            "SHUTDOWN" => match rest {
                "" => Ok(Request::Shutdown { drain: false }),
                "DRAIN" => Ok(Request::Shutdown { drain: true }),
                other => Err(format!("SHUTDOWN takes only DRAIN, got `{other}`")),
            },
            "" => Err("empty request".into()),
            other => Err(format!("unknown request `{other}`")),
        }
    }

    /// Render the wire form (no trailing newline).
    pub fn render(&self) -> String {
        match self {
            Request::Submit {
                scenario,
                overrides,
            } => {
                if *overrides == RunOverrides::default() {
                    format!("SUBMIT {scenario}")
                } else {
                    format!("SUBMIT {scenario} {}", overrides.to_json())
                }
            }
            Request::Status { id } => format!("STATUS {id}"),
            Request::List => "LIST".into(),
            Request::Watch { id } => format!("WATCH {id}"),
            Request::Cancel { id } => format!("CANCEL {id}"),
            Request::Scenarios => "SCENARIOS".into(),
            Request::Shutdown { drain: false } => "SHUTDOWN".into(),
            Request::Shutdown { drain: true } => "SHUTDOWN DRAIN".into(),
        }
    }
}

/// Everything the spawner callback needs to build one child-process
/// command line for one attempt of one run.
pub struct SpawnSpec<'a> {
    pub run: &'a RunEntry,
    /// The run's directory (artifacts, rotation, heartbeat all live here).
    pub run_dir: &'a Path,
    /// Heartbeat file the child must touch every step.
    pub heartbeat: &'a Path,
    pub attempt: u32,
    pub resume: Option<&'a ResumePoint>,
}

/// Builds the child [`std::process::Command`] for a spawn request. The
/// `asura` binary supplies this, keeping the CLI's flag vocabulary out of
/// `asura-core`. The daemon adds the attempt-scoping and per-run fault
/// environment itself.
pub type Spawner = Arc<dyn Fn(&SpawnSpec) -> io::Result<std::process::Command> + Send + Sync>;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Serve root: `fleet.json`, `serve.json`, and one directory per run.
    pub root: PathBuf,
    /// Bind address, e.g. `127.0.0.1:0` (0 = ephemeral port, advertised
    /// in `serve.json`).
    pub addr: String,
    /// Concurrency cap of the job queue.
    pub max_concurrent: usize,
    /// Scenarios `SUBMIT` accepts.
    pub catalog: Vec<ScenarioMeta>,
    /// Supervision parameters applied to every worker.
    pub retry: RetryPolicy,
    pub heartbeat_timeout_ms: u64,
    /// Checkpoint rotation depth of each run directory.
    pub keep: usize,
}

impl ServeConfig {
    /// A num-cpus-aware concurrency default (at least 2, so overlap is on
    /// by default even on small machines — runs are separate processes,
    /// so their I/O still interleaves on one core).
    pub fn default_max_concurrent() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .max(2)
    }
}

/// Shutdown phases (`Shared::shutdown`).
const RUNNING: u8 = 0;
const DRAINING: u8 = 1;
const STOPPING: u8 = 2;

/// Per-run abort flag values (`Shared::flags`), mapped to [`StopReason`].
const FLAG_RUN: u8 = 0;
const FLAG_CANCEL: u8 = 1;
const FLAG_DETACH: u8 = 2;

struct Shared {
    cfg: ServeConfig,
    spawner: Spawner,
    fleet: Mutex<Fleet>,
    /// Abort flags of the currently-running workers, by run id. Ordered
    /// so broadcast (shutdown) signalling is deterministic.
    flags: Mutex<BTreeMap<String, Arc<AtomicU8>>>,
    shutdown: AtomicU8,
}

impl Shared {
    fn fleet_path(&self) -> PathBuf {
        self.cfg.root.join(FLEET_FILE)
    }

    /// Persist the registry (callers hold the fleet lock).
    fn save(&self, fleet: &Fleet) {
        if let Err(e) = fleet.save(&self.fleet_path()) {
            eprintln!("[serve] writing {}: {e}", self.fleet_path().display());
        }
    }
}

/// Read the daemon's advertised address from `<root>/serve.json`.
pub fn read_serve_addr(root: &Path) -> Option<String> {
    let text = std::fs::read_to_string(root.join(ADDR_FILE)).ok()?;
    match parse_json(&text).ok()?.get("addr").ok()? {
        Json::Str(s) => Some(s.clone()),
        _ => None,
    }
}

/// One-shot client: send a request line, return every response line. The
/// write half is shut down after the request so streaming responses
/// (WATCH) terminate the read with EOF.
pub fn request(addr: &str, line: &str) -> io::Result<Vec<String>> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.shutdown(std::net::Shutdown::Write)?;
    let mut text = String::new();
    stream.read_to_string(&mut text)?;
    Ok(text.lines().map(|l| l.to_string()).collect())
}

/// Run the daemon: bind, adopt any existing `fleet.json`, then accept and
/// dispatch until a `SHUTDOWN` request completes. Returns after the
/// registry is saved and `serve.json` removed.
pub fn serve(cfg: ServeConfig, spawner: Spawner) -> io::Result<()> {
    std::fs::create_dir_all(&cfg.root)?;
    let fleet_path = cfg.root.join(FLEET_FILE);
    let mut fleet = match std::fs::read_to_string(&fleet_path) {
        Ok(text) => Fleet::from_json(&text)
            .map_err(|e| io::Error::other(format!("{}: {e}", fleet_path.display())))?,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Fleet::default(),
        Err(e) => return Err(e),
    };
    let stale = fleet.adopt();
    for pid in stale {
        kill_stale(pid);
    }
    fleet.save(&fleet_path)?;

    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    atomic_write(
        &cfg.root.join(ADDR_FILE),
        format!("{{\"addr\":\"{addr}\",\"pid\":{}}}\n", std::process::id()).as_bytes(),
    )?;
    println!(
        "[serve] listening on {addr} (root {}, max {} concurrent, {} queued run(s) adopted)",
        cfg.root.display(),
        cfg.max_concurrent,
        fleet
            .runs
            .iter()
            .filter(|r| r.state == RunState::Queued)
            .count(),
    );

    let shared = Arc::new(Shared {
        cfg,
        spawner,
        fleet: Mutex::new(fleet),
        flags: Mutex::new(BTreeMap::new()),
        shutdown: AtomicU8::new(RUNNING),
    });
    let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();

    loop {
        // Dispatch queued runs while the daemon is in normal operation.
        if shared.shutdown.load(Ordering::SeqCst) == RUNNING {
            workers.extend(dispatch(&shared));
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = shared.clone();
                conns.push(std::thread::spawn(move || handle_conn(&shared, stream)));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(e),
        }
        // Exit once a shutdown was requested and every worker has wound
        // down (drain: runs finished; detach: runs back to queued).
        if shared.shutdown.load(Ordering::SeqCst) != RUNNING
            && shared.fleet.lock().running_count() == 0
        {
            break;
        }
        workers.retain(|h| !h.is_finished());
        conns.retain(|h| !h.is_finished());
    }
    for h in workers {
        let _ = h.join();
    }
    for h in conns {
        let _ = h.join();
    }
    {
        let fleet = shared.fleet.lock();
        shared.save(&fleet);
    }
    let _ = std::fs::remove_file(shared.cfg.root.join(ADDR_FILE));
    println!("[serve] shut down cleanly");
    Ok(())
}

/// Best-effort reap of an orphaned child recorded by a dead daemon.
fn kill_stale(pid: u32) {
    #[cfg(unix)]
    {
        eprintln!("[serve] killing stale child pid {pid}");
        let _ = std::process::Command::new("kill")
            .args(["-9", &pid.to_string()])
            .status();
    }
    #[cfg(not(unix))]
    {
        eprintln!("[serve] stale child pid {pid} recorded; no reaper on this platform");
    }
}

/// Move queued runs into workers until the concurrency cap is reached.
fn dispatch(shared: &Arc<Shared>) -> Vec<std::thread::JoinHandle<()>> {
    let mut handles = Vec::new();
    let mut fleet = shared.fleet.lock();
    while fleet.running_count() < shared.cfg.max_concurrent {
        let Some(run) = fleet.runs.iter_mut().find(|r| r.state == RunState::Queued) else {
            break;
        };
        run.state = RunState::Running;
        let id = run.id.clone();
        shared.save(&fleet);
        let flag = Arc::new(AtomicU8::new(FLAG_RUN));
        shared.flags.lock().insert(id.clone(), flag.clone());
        let shared = shared.clone();
        handles.push(std::thread::spawn(move || worker(&shared, &id, &flag)));
    }
    handles
}

/// Drive one run to a terminal state (or detach) under supervision.
fn worker(shared: &Arc<Shared>, id: &str, flag: &Arc<AtomicU8>) {
    // The dispatcher registers the run before spawning this thread; if the
    // entry has vanished anyway the worker has nothing to drive.
    let Some(entry) = shared.fleet.lock().get(id).cloned() else {
        eprintln!("[serve] run {id}: dispatched run missing from registry");
        shared.flags.lock().remove(id);
        return;
    };
    let run_dir = shared.cfg.root.join(id);
    let result = std::fs::create_dir_all(&run_dir)
        .map_err(|e| format!("create {}: {e}", run_dir.display()))
        .and_then(|()| supervise_run(shared, &entry, &run_dir, flag));
    let state = match result {
        Ok(Some(Outcome::Completed { .. })) => RunState::Completed,
        Ok(Some(Outcome::GaveUp { .. })) => RunState::GaveUp,
        Ok(Some(Outcome::Permanent { .. })) => RunState::Failed,
        Ok(Some(Outcome::Canceled { .. })) => RunState::Canceled,
        // Detached: back to the queue, adoptable by the next daemon.
        Ok(None) => RunState::Queued,
        Err(e) => {
            eprintln!("[serve] run {id}: {e}");
            RunState::Failed
        }
    };
    let mut fleet = shared.fleet.lock();
    if let Some(run) = fleet.get_mut(id) {
        run.state = state;
        run.child_pid = None;
    }
    shared.save(&fleet);
    drop(fleet);
    shared.flags.lock().remove(id);
    println!("[serve] run {id}: {}", state.as_str());
}

fn supervise_run(
    shared: &Arc<Shared>,
    entry: &RunEntry,
    run_dir: &Path,
    flag: &Arc<AtomicU8>,
) -> Result<Option<Outcome>, String> {
    let store = CkptStore::new(run_dir, shared.cfg.keep);
    let supervisor = Supervisor {
        policy: shared.cfg.retry,
        heartbeat_timeout_ms: shared.cfg.heartbeat_timeout_ms,
        poll_interval_ms: 20,
        permanent_exit_codes: vec![2],
        log_path: run_dir.join("supervisor.json"),
        heartbeat_path: run_dir.join("heartbeat"),
    };
    let (outcome, _log) = supervisor
        .run_with_abort(
            |attempt, resume| {
                let spec = SpawnSpec {
                    run: entry,
                    run_dir,
                    heartbeat: &supervisor.heartbeat_path,
                    attempt,
                    resume,
                };
                let mut cmd = (shared.spawner)(&spec)?;
                cmd.env(faults::ATTEMPT_ENV, attempt.to_string());
                if let Some(plan) = &entry.overrides.faults {
                    cmd.env(faults::FAULTS_ENV, plan);
                }
                let child = cmd.spawn()?;
                let mut fleet = shared.fleet.lock();
                if let Some(run) = fleet.get_mut(&entry.id) {
                    run.child_pid = Some(child.id());
                }
                shared.save(&fleet);
                Ok(ProcessChild::new(child))
            },
            || {
                store.latest_valid_sim().map(|(e, _)| ResumePoint {
                    step: e.step,
                    path: store.entry_path(&e),
                })
            },
            || match flag.load(Ordering::SeqCst) {
                FLAG_CANCEL => Some(StopReason::Cancel),
                FLAG_DETACH => Some(StopReason::Detach),
                _ => None,
            },
        )
        .map_err(|e| format!("supervisor: {e}"))?;
    Ok(outcome)
}

/// Serve one client connection: read a request line, write response
/// line(s).
fn handle_conn(shared: &Arc<Shared>, stream: TcpStream) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut out = stream;
    let mut line = String::new();
    if reader.read_line(&mut line).is_err() {
        return;
    }
    let reply = match Request::parse(&line) {
        Err(e) => err_line(&e),
        Ok(Request::Submit {
            scenario,
            overrides,
        }) => submit(shared, &scenario, overrides),
        Ok(Request::Status { id }) => status_line(shared, &id),
        Ok(Request::List) => list_line(shared),
        Ok(Request::Cancel { id }) => cancel(shared, &id),
        Ok(Request::Scenarios) => scenarios_line(shared),
        Ok(Request::Shutdown { drain }) => shutdown(shared, drain),
        Ok(Request::Watch { id }) => {
            let _ = watch(shared, &id, &mut out);
            return;
        }
    };
    let _ = writeln!(out, "{reply}");
}

fn submit(shared: &Arc<Shared>, scenario: &str, overrides: RunOverrides) -> String {
    if shared.shutdown.load(Ordering::SeqCst) != RUNNING {
        return err_line("daemon is shutting down");
    }
    let Some(meta) = shared.cfg.catalog.iter().find(|m| m.name == scenario) else {
        let known: Vec<&str> = shared.cfg.catalog.iter().map(|m| m.name.as_str()).collect();
        return err_line(&format!(
            "unknown scenario `{scenario}` (available: {})",
            known.join(", ")
        ));
    };
    let mut fleet = shared.fleet.lock();
    let id = fleet.submit(scenario, meta.default_steps, overrides);
    shared.save(&fleet);
    format!("{{\"ok\":true,\"id\":{}}}", jstr(&id))
}

fn status_line(shared: &Arc<Shared>, id: &str) -> String {
    let Some(run) = shared.fleet.lock().get(id).cloned() else {
        return err_line(&format!("unknown run `{id}`"));
    };
    let run_dir = shared.cfg.root.join(id);
    let step = match Heartbeat::read(&run_dir.join("heartbeat")) {
        Some((_, step)) => step.to_string(),
        None => "null".to_string(),
    };
    let age_ms = std::fs::metadata(run_dir.join("heartbeat"))
        .and_then(|m| m.modified())
        .ok()
        .and_then(|t| t.elapsed().ok())
        .map_or("null".to_string(), |d| d.as_millis().to_string());
    let incidents = std::fs::read_to_string(run_dir.join("supervisor.json"))
        .ok()
        .and_then(|text| IncidentLog::from_json(&text).ok())
        .map_or(0, |log| log.incidents.len());
    format!(
        "{{\"ok\":true,\"id\":{},\"scenario\":{},\"state\":\"{}\",\"target_steps\":{},\
         \"step\":{step},\"heartbeat_age_ms\":{age_ms},\"incidents\":{incidents}}}",
        jstr(&run.id),
        jstr(&run.scenario),
        run.state.as_str(),
        run.target_steps,
    )
}

fn list_line(shared: &Arc<Shared>) -> String {
    let fleet = shared.fleet.lock();
    let runs: Vec<String> = fleet
        .runs
        .iter()
        .map(|r| {
            format!(
                "{{\"id\":{},\"scenario\":{},\"state\":\"{}\",\"target_steps\":{}}}",
                jstr(&r.id),
                jstr(&r.scenario),
                r.state.as_str(),
                r.target_steps,
            )
        })
        .collect();
    format!("{{\"ok\":true,\"runs\":[{}]}}", runs.join(","))
}

fn scenarios_line(shared: &Arc<Shared>) -> String {
    let items: Vec<String> = shared
        .cfg
        .catalog
        .iter()
        .map(|m| {
            format!(
                "{{\"name\":{},\"description\":{},\"default_steps\":{}}}",
                jstr(&m.name),
                jstr(&m.description),
                m.default_steps,
            )
        })
        .collect();
    format!("{{\"ok\":true,\"scenarios\":[{}]}}", items.join(","))
}

fn cancel(shared: &Arc<Shared>, id: &str) -> String {
    let mut fleet = shared.fleet.lock();
    let Some(run) = fleet.get_mut(id) else {
        return err_line(&format!("unknown run `{id}`"));
    };
    match run.state {
        RunState::Queued => {
            run.state = RunState::Canceled;
            shared.save(&fleet);
            format!("{{\"ok\":true,\"id\":{},\"state\":\"canceled\"}}", jstr(id))
        }
        RunState::Running => {
            drop(fleet);
            if let Some(flag) = shared.flags.lock().get(id) {
                flag.store(FLAG_CANCEL, Ordering::SeqCst);
            }
            format!(
                "{{\"ok\":true,\"id\":{},\"state\":\"canceling\"}}",
                jstr(id)
            )
        }
        state => err_line(&format!("run `{id}` is already {}", state.as_str())),
    }
}

fn shutdown(shared: &Arc<Shared>, drain: bool) -> String {
    if drain {
        shared.shutdown.store(DRAINING, Ordering::SeqCst);
        "{\"ok\":true,\"shutdown\":\"drain\"}".to_string()
    } else {
        shared.shutdown.store(STOPPING, Ordering::SeqCst);
        // Detach every running worker: children are killed, their runs
        // return to `queued`, and the rotation keeps their progress.
        for flag in shared.flags.lock().values() {
            flag.store(FLAG_DETACH, Ordering::SeqCst);
        }
        "{\"ok\":true,\"shutdown\":\"detach\"}".to_string()
    }
}

/// Convert a column-oriented diagnostics document into row-oriented JSON
/// lines (one per sample).
fn diagnostics_rows(doc: &Json) -> Vec<String> {
    let Ok(Json::Obj(columns)) = doc.get("columns") else {
        return Vec::new();
    };
    let n = columns
        .first()
        .and_then(|(_, v)| match v {
            Json::Arr(items) => Some(items.len()),
            _ => None,
        })
        .unwrap_or(0);
    (0..n)
        .map(|i| {
            let row: Vec<(String, Json)> = columns
                .iter()
                .filter_map(|(name, col)| match col {
                    Json::Arr(items) => items.get(i).map(|v| (name.clone(), v.clone())),
                    _ => None,
                })
                .collect();
            let mut out = String::new();
            write_json(&Json::Obj(row), &mut out);
            out
        })
        .collect()
}

/// Stream a run's diagnostics samples as they land, then a final done
/// line once the run reaches a terminal state (or the daemon shuts down).
fn watch(shared: &Arc<Shared>, id: &str, out: &mut TcpStream) -> io::Result<()> {
    if shared.fleet.lock().get(id).is_none() {
        writeln!(out, "{}", err_line(&format!("unknown run `{id}`")))?;
        return Ok(());
    }
    let diag = shared.cfg.root.join(id).join("diagnostics.json");
    let mut emitted = 0usize;
    loop {
        // Order matters: read the state *before* sweeping the file, so a
        // run that completes mid-loop still gets its last rows emitted
        // before the done line.
        let state = shared
            .fleet
            .lock()
            .get(id)
            .map(|r| r.state)
            .unwrap_or(RunState::Failed);
        let stopping = shared.shutdown.load(Ordering::SeqCst) != RUNNING;
        if let Ok(text) = std::fs::read_to_string(&diag) {
            if let Ok(doc) = parse_json(&text) {
                let rows = diagnostics_rows(&doc);
                for row in rows.iter().skip(emitted) {
                    writeln!(out, "{row}")?;
                }
                emitted = emitted.max(rows.len());
            }
        }
        if state.is_terminal() || stopping {
            writeln!(
                out,
                "{{\"ok\":true,\"done\":{},\"state\":\"{}\",\"samples\":{emitted}}}",
                state.is_terminal(),
                state.as_str(),
            )?;
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_grammar_round_trips() {
        let cases = [
            "SUBMIT quickstart",
            "SUBMIT quickstart {\"steps\":4,\"snapshot_every\":2}",
            "STATUS r0001-quickstart",
            "LIST",
            "WATCH r0001-quickstart",
            "CANCEL r0001-quickstart",
            "SCENARIOS",
            "SHUTDOWN",
            "SHUTDOWN DRAIN",
        ];
        for line in cases {
            let req = Request::parse(line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(
                Request::parse(&req.render()).unwrap(),
                req,
                "{line}: render must re-parse to the same request"
            );
        }
        // Overrides survive the round trip with their values.
        let Request::Submit { overrides, .. } =
            Request::parse("SUBMIT quickstart {\"steps\":4,\"seed\":7}").unwrap()
        else {
            panic!("not a submit");
        };
        assert_eq!(overrides.steps, Some(4));
        assert_eq!(overrides.seed, Some(7));
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for line in [
            "",
            "FROBNICATE",
            "STATUS",
            "STATUS two ids",
            "LIST extra",
            "SHUTDOWN NOW",
            "SUBMIT",
            "SUBMIT quickstart {not json",
            "SUBMIT quickstart {\"stepz\":4}",
            "SUBMIT quickstart {\"scheme\":\"warp\"}",
            "SUBMIT quickstart {\"snapshot_format\":\"yaml\"}",
            "SUBMIT quickstart {\"timestep\":\"block:x\"}",
            "SUBMIT quickstart {\"faults\":\"explode@9\"}",
        ] {
            assert!(Request::parse(line).is_err(), "`{line}` must be rejected");
        }
    }

    #[test]
    fn overrides_json_round_trips() {
        let o = RunOverrides {
            steps: Some(4),
            seed: Some(7),
            scheme: Some("surrogate".into()),
            timestep: Some("block:6".into()),
            snapshot_every: Some(2),
            snapshot_format: Some("json".into()),
            faults: Some("kill@3#0".into()),
        };
        let doc = parse_json(&o.to_json()).unwrap();
        assert_eq!(RunOverrides::from_json(&doc).unwrap(), o);
        let empty = RunOverrides::default();
        let doc = parse_json(&empty.to_json()).unwrap();
        assert_eq!(RunOverrides::from_json(&doc).unwrap(), empty);
    }

    #[test]
    fn fleet_submit_assigns_sequential_ids_and_round_trips() {
        let mut fleet = Fleet::default();
        let a = fleet.submit("quickstart", 20, RunOverrides::default());
        let b = fleet.submit(
            "spiked_dt",
            6,
            RunOverrides {
                steps: Some(3),
                ..Default::default()
            },
        );
        assert_eq!(a, "r0001-quickstart");
        assert_eq!(b, "r0002-spiked_dt");
        assert_eq!(fleet.get(&a).unwrap().target_steps, 20, "scenario default");
        assert_eq!(fleet.get(&b).unwrap().target_steps, 3, "override wins");
        assert_eq!(fleet.get(&a).unwrap().state, RunState::Queued);
        let parsed = Fleet::from_json(&fleet.to_json()).unwrap();
        assert_eq!(parsed, fleet);
        // Ids keep advancing after a reload (no reuse).
        let mut reloaded = parsed;
        let c = reloaded.submit("quickstart", 20, RunOverrides::default());
        assert_eq!(c, "r0003-quickstart");
    }

    #[test]
    fn adoption_requeues_running_entries_and_reports_stale_pids() {
        let mut fleet = Fleet::default();
        let a = fleet.submit("quickstart", 20, RunOverrides::default());
        let b = fleet.submit("quickstart", 20, RunOverrides::default());
        let c = fleet.submit("quickstart", 20, RunOverrides::default());
        fleet.get_mut(&a).unwrap().state = RunState::Running;
        fleet.get_mut(&a).unwrap().child_pid = Some(4242);
        fleet.get_mut(&b).unwrap().state = RunState::Completed;
        // Round-trip through JSON first: adoption happens on a reloaded
        // registry in real life.
        let mut fleet = Fleet::from_json(&fleet.to_json()).unwrap();
        let stale = fleet.adopt();
        assert_eq!(stale, vec![4242]);
        assert_eq!(fleet.get(&a).unwrap().state, RunState::Queued);
        assert_eq!(fleet.get(&a).unwrap().child_pid, None);
        assert_eq!(fleet.get(&b).unwrap().state, RunState::Completed);
        assert_eq!(fleet.get(&c).unwrap().state, RunState::Queued);
    }

    #[test]
    fn run_states_round_trip_and_classify_terminality() {
        for state in [
            RunState::Queued,
            RunState::Running,
            RunState::Completed,
            RunState::Failed,
            RunState::GaveUp,
            RunState::Canceled,
        ] {
            assert_eq!(RunState::parse(state.as_str()), Some(state));
        }
        assert_eq!(RunState::parse("exploded"), None);
        assert!(!RunState::Queued.is_terminal());
        assert!(!RunState::Running.is_terminal());
        for s in [
            RunState::Completed,
            RunState::Failed,
            RunState::GaveUp,
            RunState::Canceled,
        ] {
            assert!(s.is_terminal());
        }
    }

    #[test]
    fn diagnostics_rows_pivot_columns_to_samples() {
        let doc = parse_json(
            "{\"scenario\":\"q\",\"samples\":2,\
             \"columns\":{\"step\":[1.0,2.0],\"time\":[0.1,0.2]}}",
        )
        .unwrap();
        let rows = diagnostics_rows(&doc);
        assert_eq!(rows.len(), 2);
        let first = parse_json(&rows[0]).unwrap();
        assert_eq!(first.get("step").unwrap().as_usize().unwrap(), 1);
        assert!(matches!(first.get("time").unwrap(), Json::Num(t) if (t - 0.1).abs() < 1e-12));
        assert!(diagnostics_rows(&parse_json("{}").unwrap()).is_empty());
    }

    #[test]
    fn error_lines_escape_the_message() {
        let line = err_line("bad \"input\"\nline");
        let doc = parse_json(&line).unwrap();
        assert_eq!(doc.get("ok").unwrap(), &Json::Bool(false));
        assert_eq!(
            doc.get("error").unwrap(),
            &Json::Str("bad \"input\"\nline".into())
        );
    }
}
