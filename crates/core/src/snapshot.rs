//! Versioned snapshot / checkpoint-restart serialization.
//!
//! A [`SimSnapshot`] captures the **complete** state of a
//! [`Simulation`](crate::sim::Simulation) — particle set, [`SimConfig`],
//! the RNG stream, the block-timestep schedule, run statistics, and the
//! surrogate scheme's in-flight pool predictions — such that
//! `restore(snapshot)` continues the run bit-for-bit identically to a run
//! that never stopped (`tests/snapshot_restart.rs` asserts this in both
//! timestep modes, with an SN region pending in the pool queue).
//!
//! ## Snapshots & CLI
//!
//! Two interchangeable encodings are provided, both self-describing and
//! checksummed:
//!
//! * **Binary** ([`SimSnapshot::to_bytes`] / [`SimSnapshot::from_bytes`]):
//!   the compact production format. Layout: the 8-byte magic
//!   [`SNAPSHOT_MAGIC`], a little-endian `u32` format version, a `u64`
//!   payload length, the payload, and a trailing FNV-1a 64-bit checksum of
//!   the payload. Floats are stored as raw IEEE-754 bits, so restart state
//!   is exact.
//! * **JSON** ([`SimSnapshot::to_json`] / [`SimSnapshot::from_json`]): a
//!   human-inspectable rendering through [`unet::json`] (the workspace has
//!   no serde). Finite floats use Rust's shortest-roundtrip formatting
//!   (exact on reload); non-finite floats and `u64` values above 2^53 fall
//!   back to tagged hex strings (`"bits:..."` / `"u64:..."`). The
//!   checksum field covers the rendered `"state"` sub-document.
//!
//! **Format version policy**: [`SNAPSHOT_VERSION`] is bumped whenever the
//! payload layout changes in any way (field added, removed, reordered, or
//! re-encoded). Readers accept exactly the current version and reject
//! everything else with [`SnapshotError::UnsupportedVersion`] — snapshots
//! are short-lived operational artifacts (crash recovery, scenario replay),
//! not archival storage, so no migration shims are kept. Corruption is
//! reported as [`SnapshotError::ChecksumMismatch`]; every decode error is a
//! `Result`, never a panic.
//!
//! The `asura` scenario-runner CLI (`src/bin/asura.rs`) writes snapshots at
//! the [`SimConfig::snapshot_every`] cadence under `results/<scenario>/` and
//! resumes from either encoding via [`SimSnapshot::load`], which sniffs the
//! format from the leading bytes.

use crate::config::{Scheme, SimConfig, TimestepMode};
use crate::particle::{Kind, Particle};
use crate::sim::SimStats;
use fdps::Vec3;
use std::fmt;
use surrogate::GasParticle;
use unet::json::{parse_json, write_json, Json};

/// Leading magic of binary snapshots.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"ASURSNAP";
/// Leading magic of binary *distributed* snapshots (see [`DistSnapshot`]).
pub const DIST_SNAPSHOT_MAGIC: [u8; 8] = *b"ASURDSNP";
/// Current shared-memory snapshot format version (see the module docs for
/// the policy).
/// v2: [`SimStats`] gained the split SPH neighbor-tree reuse counters
/// (`sph_tree_rebuilds` / `sph_tree_refreshes`);
/// v3: the surrogate model travels with the run ([`SimSnapshot::model`]),
/// so a trained-predictor run resumes bitwise without re-reading the
/// weights file.
pub const SNAPSHOT_VERSION: u32 = 3;

/// Current *distributed* snapshot format version. Versioned separately
/// from [`SNAPSHOT_VERSION`] so a layout change in one format never
/// invalidates checkpoints of the other (the two magics already keep the
/// byte streams apart). History: v2 and below shared the common counter;
/// v3: [`DistSnapshot`] carries the per-rank block-timestep schedules
/// ([`DistSnapshot::schedules`]) and gained a JSON encoding;
/// v4: the pool predictor's model weights travel with the checkpoint
/// ([`DistSnapshot::model`]).
pub const DIST_SNAPSHOT_VERSION: u32 = 4;

/// Why a snapshot failed to decode. Every variant is a recoverable error —
/// corrupt or foreign input never panics the reader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The input does not start with [`SNAPSHOT_MAGIC`] (binary) or is not
    /// an `asura-snapshot` document (JSON).
    BadMagic,
    /// The snapshot was written by a different format version.
    UnsupportedVersion { found: u32, supported: u32 },
    /// The stored checksum does not match the payload.
    ChecksumMismatch { stored: u64, computed: u64 },
    /// Structurally invalid input (truncated, wrong types, bad field).
    Malformed(String),
    /// The snapshot file could not be read.
    Io(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not an asura snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot format version {found} (this build reads {supported})"
            ),
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: stored {stored:016x}, computed {computed:016x}"
            ),
            SnapshotError::Malformed(why) => write!(f, "malformed snapshot: {why}"),
            SnapshotError::Io(why) => write!(f, "snapshot i/o error: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// One in-flight pool prediction (paper §3.2 step 2→4): the predicted
/// region state and the absolute step at which it falls due.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingPrediction {
    pub due_step: u64,
    pub predicted: Vec<GasParticle>,
}

/// The block-timestep scheduler's level assignment at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleState {
    pub dt_max: f64,
    pub levels: Vec<u32>,
}

/// The trained surrogate model a run carries: the pool-predictor RNG seed
/// plus the verbatim weights document ([`SurrogateModel::to_json`] text,
/// itself checksummed). Embedded in snapshots so a surrogate run resumes
/// bitwise with its model intact — no weights file needs to exist at
/// resume time.
///
/// [`SurrogateModel::to_json`]: surrogate::SurrogateModel::to_json
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelState {
    /// Seed of the predictor's per-request Gibbs-resampling RNG.
    pub seed: u64,
    /// The self-describing weights document, byte-for-byte as written by
    /// `asura train-surrogate`.
    pub weights_json: String,
}

/// Complete serializable state of a shared-memory simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimSnapshot {
    pub config: SimConfig,
    pub time: f64,
    pub step_count: u64,
    /// Next particle id to hand out (star formation).
    pub next_id: u64,
    /// Raw xoshiro256** state of the driver's RNG stream.
    pub rng_state: [u64; 4],
    pub stats: SimStats,
    pub particles: Vec<Particle>,
    /// `(particle index, v_sig, h)` stash from the last SPH force pass —
    /// hidden driver state that seeds the *next* step's CFL estimate, so
    /// restart determinism requires it.
    pub last_vsig: Vec<(u64, f64, f64)>,
    /// The surrogate scheme's pending-region queue.
    pub pending: Vec<PendingPrediction>,
    /// The scheduler's last level assignment, if block mode has run.
    pub schedule: Option<ScheduleState>,
    /// The trained surrogate model in flight, if the run uses one
    /// (`None` for the analytic Sedov-overlay default).
    pub model: Option<ModelState>,
}

/// FNV-1a 64-bit checksum.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Binary encoding
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn vec3(&mut self, v: Vec3) {
        self.f64(v.x);
        self.f64(v.y);
        self.f64(v.z);
    }
    fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }
}

struct Reader<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.pos + n > self.b.len() {
            return Err(SnapshotError::Malformed(format!(
                "truncated payload: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.b.len() - self.pos
            )));
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn vec3(&mut self) -> Result<Vec3, SnapshotError> {
        Ok(Vec3::new(self.f64()?, self.f64()?, self.f64()?))
    }
    fn bool(&mut self) -> Result<bool, SnapshotError> {
        Ok(self.u8()? != 0)
    }
    /// A length prefix, sanity-bounded so corrupt input cannot trigger a
    /// huge allocation before the checksum is even consulted.
    fn len(&mut self) -> Result<usize, SnapshotError> {
        let n = self.u64()?;
        let remaining = (self.b.len() - self.pos) as u64;
        if n > remaining {
            return Err(SnapshotError::Malformed(format!(
                "length prefix {n} exceeds remaining payload {remaining}"
            )));
        }
        Ok(n as usize)
    }
}

fn write_config(w: &mut Writer, c: &SimConfig) {
    w.u8(match c.scheme {
        Scheme::Surrogate => 0,
        Scheme::Conventional => 1,
    });
    match c.timestep {
        TimestepMode::Global => {
            w.u8(0);
            w.u32(0);
        }
        TimestepMode::Block { max_level } => {
            w.u8(1);
            w.u32(max_level);
        }
    }
    w.f64(c.dt_global);
    w.f64(c.theta);
    w.u64(c.n_group as u64);
    w.f64(c.eps);
    w.u64(c.n_ngb as u64);
    w.f64(c.region_side);
    w.u64(c.pool_latency_steps as u64);
    w.bool(c.cooling);
    w.bool(c.star_formation);
    w.f64(c.cfl);
    w.f64(c.dt_min);
    w.bool(c.mixed_precision);
    w.f64(c.sf_rho_min);
    w.f64(c.sf_t_max);
    w.f64(c.sf_efficiency);
    w.u64(c.snapshot_every);
}

fn read_config(r: &mut Reader) -> Result<SimConfig, SnapshotError> {
    let scheme = match r.u8()? {
        0 => Scheme::Surrogate,
        1 => Scheme::Conventional,
        k => return Err(SnapshotError::Malformed(format!("unknown scheme tag {k}"))),
    };
    let mode_tag = r.u8()?;
    let max_level = r.u32()?;
    let timestep = match mode_tag {
        0 => TimestepMode::Global,
        1 => TimestepMode::Block { max_level },
        k => {
            return Err(SnapshotError::Malformed(format!(
                "unknown timestep mode tag {k}"
            )))
        }
    };
    Ok(SimConfig {
        scheme,
        timestep,
        dt_global: r.f64()?,
        theta: r.f64()?,
        n_group: r.u64()? as usize,
        eps: r.f64()?,
        n_ngb: r.u64()? as usize,
        region_side: r.f64()?,
        pool_latency_steps: r.u64()? as usize,
        cooling: r.bool()?,
        star_formation: r.bool()?,
        cfl: r.f64()?,
        dt_min: r.f64()?,
        mixed_precision: r.bool()?,
        sf_rho_min: r.f64()?,
        sf_t_max: r.f64()?,
        sf_efficiency: r.f64()?,
        snapshot_every: r.u64()?,
    })
}

fn write_stats(w: &mut Writer, s: &SimStats) {
    w.u64(s.steps);
    w.u64(s.sn_events);
    w.u64(s.stars_formed);
    w.u64(s.regions_applied);
    w.f64(s.dt_min_seen);
    w.u64(s.gravity_interactions);
    w.u64(s.hydro_interactions);
    w.u64(s.substeps);
    w.u64(s.active_updates);
    w.u64(s.tree_rebuilds);
    w.u64(s.tree_refreshes);
    w.u64(s.sph_tree_rebuilds);
    w.u64(s.sph_tree_refreshes);
}

fn read_stats(r: &mut Reader) -> Result<SimStats, SnapshotError> {
    Ok(SimStats {
        steps: r.u64()?,
        sn_events: r.u64()?,
        stars_formed: r.u64()?,
        regions_applied: r.u64()?,
        dt_min_seen: r.f64()?,
        gravity_interactions: r.u64()?,
        hydro_interactions: r.u64()?,
        substeps: r.u64()?,
        active_updates: r.u64()?,
        tree_rebuilds: r.u64()?,
        tree_refreshes: r.u64()?,
        sph_tree_rebuilds: r.u64()?,
        sph_tree_refreshes: r.u64()?,
    })
}

fn write_particle(w: &mut Writer, p: &Particle) {
    w.u64(p.id);
    w.u8(match p.kind {
        Kind::Dm => 0,
        Kind::Star => 1,
        Kind::Gas => 2,
    });
    w.vec3(p.pos);
    w.vec3(p.vel);
    w.f64(p.mass);
    w.f64(p.u);
    w.f64(p.h);
    w.f64(p.rho);
    w.f64(p.metals);
    w.f64(p.birth_time);
    w.bool(p.exploded);
}

fn read_particle(r: &mut Reader) -> Result<Particle, SnapshotError> {
    let id = r.u64()?;
    let kind = match r.u8()? {
        0 => Kind::Dm,
        1 => Kind::Star,
        2 => Kind::Gas,
        k => {
            return Err(SnapshotError::Malformed(format!(
                "unknown particle kind tag {k}"
            )))
        }
    };
    Ok(Particle {
        id,
        kind,
        pos: r.vec3()?,
        vel: r.vec3()?,
        mass: r.f64()?,
        u: r.f64()?,
        h: r.f64()?,
        rho: r.f64()?,
        metals: r.f64()?,
        birth_time: r.f64()?,
        exploded: r.bool()?,
    })
}

fn write_gas(w: &mut Writer, g: &GasParticle) {
    w.vec3(g.pos);
    w.vec3(g.vel);
    w.f64(g.mass);
    w.f64(g.temp);
    w.f64(g.h);
    w.u64(g.id);
}

fn read_gas(r: &mut Reader) -> Result<GasParticle, SnapshotError> {
    Ok(GasParticle {
        pos: r.vec3()?,
        vel: r.vec3()?,
        mass: r.f64()?,
        temp: r.f64()?,
        h: r.f64()?,
        id: r.u64()?,
    })
}

fn write_model(w: &mut Writer, m: &Option<ModelState>) {
    match m {
        None => w.u8(0),
        Some(m) => {
            w.u8(1);
            w.u64(m.seed);
            w.u64(m.weights_json.len() as u64);
            w.buf.extend_from_slice(m.weights_json.as_bytes());
        }
    }
}

fn read_model(r: &mut Reader) -> Result<Option<ModelState>, SnapshotError> {
    match r.u8()? {
        0 => Ok(None),
        1 => {
            let seed = r.u64()?;
            let n = r.len()?;
            let weights_json = std::str::from_utf8(r.take(n)?)
                .map_err(|e| SnapshotError::Malformed(format!("model weights not UTF-8: {e}")))?
                .to_string();
            Ok(Some(ModelState { seed, weights_json }))
        }
        k => Err(SnapshotError::Malformed(format!("unknown model tag {k}"))),
    }
}

fn model_json(m: &Option<ModelState>) -> Json {
    match m {
        None => Json::Null,
        Some(m) => Json::Obj(vec![
            ("seed".into(), ju(m.seed)),
            ("weights".into(), Json::Str(m.weights_json.clone())),
        ]),
    }
}

fn model_from_json(v: &Json) -> Result<Option<ModelState>, SnapshotError> {
    match v {
        Json::Null => Ok(None),
        m => {
            let weights_json = match m.get("weights").map_err(SnapshotError::Malformed)? {
                Json::Str(s) => s.clone(),
                other => {
                    return Err(SnapshotError::Malformed(format!(
                        "model weights must be a string, got {other:?}"
                    )))
                }
            };
            Ok(Some(ModelState {
                seed: get_u64(m, "seed")?,
                weights_json,
            }))
        }
    }
}

impl SimSnapshot {
    /// Serialize to the compact binary format (see the module docs).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::default();
        write_config(&mut w, &self.config);
        w.f64(self.time);
        w.u64(self.step_count);
        w.u64(self.next_id);
        for s in self.rng_state {
            w.u64(s);
        }
        write_stats(&mut w, &self.stats);
        w.u64(self.particles.len() as u64);
        for p in &self.particles {
            write_particle(&mut w, p);
        }
        w.u64(self.last_vsig.len() as u64);
        for &(i, v, h) in &self.last_vsig {
            w.u64(i);
            w.f64(v);
            w.f64(h);
        }
        w.u64(self.pending.len() as u64);
        for pend in &self.pending {
            w.u64(pend.due_step);
            w.u64(pend.predicted.len() as u64);
            for g in &pend.predicted {
                write_gas(&mut w, g);
            }
        }
        match &self.schedule {
            None => w.u8(0),
            Some(s) => {
                w.u8(1);
                w.f64(s.dt_max);
                w.u64(s.levels.len() as u64);
                for &l in &s.levels {
                    w.u32(l);
                }
            }
        }
        write_model(&mut w, &self.model);

        let payload = w.buf;
        let mut out = Vec::with_capacity(payload.len() + 28);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        let sum = fnv1a(&payload);
        out.extend_from_slice(&payload);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Decode the binary format, verifying magic, version and checksum.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        if bytes.len() < 20 || bytes[..8] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: SNAPSHOT_VERSION,
            });
        }
        let payload_len = u64::from_le_bytes(bytes[12..20].try_into().unwrap()) as usize;
        let body_end = 20usize
            .checked_add(payload_len)
            .ok_or_else(|| SnapshotError::Malformed("payload length overflow".into()))?;
        if bytes.len() < body_end + 8 {
            return Err(SnapshotError::Malformed(format!(
                "truncated: header promises {payload_len} payload bytes + checksum, file has {}",
                bytes.len()
            )));
        }
        let payload = &bytes[20..body_end];
        let stored = u64::from_le_bytes(bytes[body_end..body_end + 8].try_into().unwrap());
        let computed = fnv1a(payload);
        if stored != computed {
            return Err(SnapshotError::ChecksumMismatch { stored, computed });
        }

        let mut r = Reader { b: payload, pos: 0 };
        let config = read_config(&mut r)?;
        let time = r.f64()?;
        let step_count = r.u64()?;
        let next_id = r.u64()?;
        let rng_state = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
        let stats = read_stats(&mut r)?;
        let n = r.len()?;
        let mut particles = Vec::with_capacity(n);
        for _ in 0..n {
            particles.push(read_particle(&mut r)?);
        }
        let n = r.len()?;
        let mut last_vsig = Vec::with_capacity(n);
        for _ in 0..n {
            last_vsig.push((r.u64()?, r.f64()?, r.f64()?));
        }
        let n = r.len()?;
        let mut pending = Vec::with_capacity(n);
        for _ in 0..n {
            let due_step = r.u64()?;
            let m = r.len()?;
            let mut predicted = Vec::with_capacity(m);
            for _ in 0..m {
                predicted.push(read_gas(&mut r)?);
            }
            pending.push(PendingPrediction {
                due_step,
                predicted,
            });
        }
        let schedule = match r.u8()? {
            0 => None,
            1 => {
                let dt_max = r.f64()?;
                let m = r.len()?;
                let mut levels = Vec::with_capacity(m);
                for _ in 0..m {
                    levels.push(r.u32()?);
                }
                Some(ScheduleState { dt_max, levels })
            }
            k => {
                return Err(SnapshotError::Malformed(format!(
                    "unknown schedule tag {k}"
                )))
            }
        };
        let model = read_model(&mut r)?;
        if r.pos != payload.len() {
            return Err(SnapshotError::Malformed(format!(
                "{} trailing payload bytes",
                payload.len() - r.pos
            )));
        }
        Ok(SimSnapshot {
            config,
            time,
            step_count,
            next_id,
            rng_state,
            stats,
            particles,
            last_vsig,
            pending,
            schedule,
            model,
        })
    }

    /// Serialize to the JSON format (see the module docs).
    pub fn to_json(&self) -> String {
        let state = self.state_json();
        let mut state_str = String::new();
        write_json(&state, &mut state_str);
        let sum = fnv1a(state_str.as_bytes());
        let doc = Json::Obj(vec![
            ("format".into(), Json::Str("asura-snapshot".into())),
            ("version".into(), Json::Num(SNAPSHOT_VERSION as f64)),
            ("state".into(), state),
            ("checksum".into(), Json::Str(format!("fnv1a:{sum:016x}"))),
        ]);
        let mut out = String::new();
        write_json(&doc, &mut out);
        out
    }

    /// Decode the JSON format, verifying the document type, version and
    /// checksum.
    pub fn from_json(text: &str) -> Result<Self, SnapshotError> {
        let doc = parse_json(text).map_err(|_| SnapshotError::BadMagic)?;
        let format = doc.get("format").map_err(|_| SnapshotError::BadMagic)?;
        if format != &Json::Str("asura-snapshot".into()) {
            return Err(SnapshotError::BadMagic);
        }
        let version = doc
            .get("version")
            .and_then(|v| v.as_usize())
            .map_err(SnapshotError::Malformed)? as u32;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: SNAPSHOT_VERSION,
            });
        }
        let state = doc.get("state").map_err(SnapshotError::Malformed)?;
        let mut state_str = String::new();
        write_json(state, &mut state_str);
        let computed = fnv1a(state_str.as_bytes());
        let stored_str = match doc.get("checksum").map_err(SnapshotError::Malformed)? {
            Json::Str(s) => s.clone(),
            other => {
                return Err(SnapshotError::Malformed(format!(
                    "checksum must be a string, got {other:?}"
                )))
            }
        };
        let stored = stored_str
            .strip_prefix("fnv1a:")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| SnapshotError::Malformed(format!("bad checksum `{stored_str}`")))?;
        if stored != computed {
            return Err(SnapshotError::ChecksumMismatch { stored, computed });
        }
        Self::state_from_json(state)
    }

    /// Decode a snapshot from raw bytes, sniffing the encoding: binary
    /// snapshots start with [`SNAPSHOT_MAGIC`], anything else is parsed as
    /// JSON. This is the validation entry point the checkpoint store's
    /// [`latest_valid`](crate::ckpt::CkptStore::latest_valid_sim) walk
    /// uses to decide whether a rotation entry is intact.
    pub fn decode(bytes: &[u8]) -> Result<Self, SnapshotError> {
        if bytes.starts_with(&SNAPSHOT_MAGIC) {
            Self::from_bytes(bytes)
        } else {
            let text =
                std::str::from_utf8(bytes).map_err(|e| SnapshotError::Malformed(e.to_string()))?;
            Self::from_json(text)
        }
    }

    /// Load a snapshot file, sniffing the encoding: binary snapshots start
    /// with [`SNAPSHOT_MAGIC`], JSON ones with `{`.
    pub fn load(path: &std::path::Path) -> Result<Self, SnapshotError> {
        let bytes = std::fs::read(path).map_err(|e| SnapshotError::Io(e.to_string()))?;
        Self::decode(&bytes)
    }

    // -- JSON value tree --------------------------------------------------

    fn state_json(&self) -> Json {
        let c = &self.config;
        let config = Json::Obj(vec![
            (
                "scheme".into(),
                Json::Str(
                    match c.scheme {
                        Scheme::Surrogate => "surrogate",
                        Scheme::Conventional => "conventional",
                    }
                    .into(),
                ),
            ),
            (
                "timestep".into(),
                match c.timestep {
                    TimestepMode::Global => {
                        Json::Obj(vec![("mode".into(), Json::Str("global".into()))])
                    }
                    TimestepMode::Block { max_level } => Json::Obj(vec![
                        ("mode".into(), Json::Str("block".into())),
                        ("max_level".into(), Json::Num(max_level as f64)),
                    ]),
                },
            ),
            ("dt_global".into(), jf(c.dt_global)),
            ("theta".into(), jf(c.theta)),
            ("n_group".into(), ju(c.n_group as u64)),
            ("eps".into(), jf(c.eps)),
            ("n_ngb".into(), ju(c.n_ngb as u64)),
            ("region_side".into(), jf(c.region_side)),
            ("pool_latency_steps".into(), ju(c.pool_latency_steps as u64)),
            ("cooling".into(), Json::Bool(c.cooling)),
            ("star_formation".into(), Json::Bool(c.star_formation)),
            ("cfl".into(), jf(c.cfl)),
            ("dt_min".into(), jf(c.dt_min)),
            ("mixed_precision".into(), Json::Bool(c.mixed_precision)),
            ("sf_rho_min".into(), jf(c.sf_rho_min)),
            ("sf_t_max".into(), jf(c.sf_t_max)),
            ("sf_efficiency".into(), jf(c.sf_efficiency)),
            ("snapshot_every".into(), ju(c.snapshot_every)),
        ]);
        let s = &self.stats;
        let stats = Json::Obj(vec![
            ("steps".into(), ju(s.steps)),
            ("sn_events".into(), ju(s.sn_events)),
            ("stars_formed".into(), ju(s.stars_formed)),
            ("regions_applied".into(), ju(s.regions_applied)),
            ("dt_min_seen".into(), jf(s.dt_min_seen)),
            ("gravity_interactions".into(), ju(s.gravity_interactions)),
            ("hydro_interactions".into(), ju(s.hydro_interactions)),
            ("substeps".into(), ju(s.substeps)),
            ("active_updates".into(), ju(s.active_updates)),
            ("tree_rebuilds".into(), ju(s.tree_rebuilds)),
            ("tree_refreshes".into(), ju(s.tree_refreshes)),
            ("sph_tree_rebuilds".into(), ju(s.sph_tree_rebuilds)),
            ("sph_tree_refreshes".into(), ju(s.sph_tree_refreshes)),
        ]);
        // Particles as SoA with flat coordinate triplets: compact enough to
        // stay inspectable without one object per particle.
        let particles = particles_json(&self.particles);
        let last_vsig = Json::Arr(
            self.last_vsig
                .iter()
                .map(|&(i, v, h)| Json::Arr(vec![ju(i), jf(v), jf(h)]))
                .collect(),
        );
        let pending = Json::Arr(
            self.pending
                .iter()
                .map(|p| {
                    Json::Obj(vec![
                        ("due_step".into(), ju(p.due_step)),
                        ("predicted".into(), gas_json(&p.predicted)),
                    ])
                })
                .collect(),
        );
        let schedule = match &self.schedule {
            None => Json::Null,
            Some(s) => schedule_json(s),
        };
        Json::Obj(vec![
            ("config".into(), config),
            ("time".into(), jf(self.time)),
            ("step_count".into(), ju(self.step_count)),
            ("next_id".into(), ju(self.next_id)),
            (
                "rng".into(),
                Json::Arr(
                    self.rng_state
                        .iter()
                        .map(|&s| Json::Str(format!("u64:{s:016x}")))
                        .collect(),
                ),
            ),
            ("stats".into(), stats),
            ("particles".into(), particles),
            ("last_vsig".into(), last_vsig),
            ("pending".into(), pending),
            ("schedule".into(), schedule),
            ("model".into(), model_json(&self.model)),
        ])
    }

    fn state_from_json(state: &Json) -> Result<Self, SnapshotError> {
        let config = {
            let c = state.get("config").map_err(SnapshotError::Malformed)?;
            let scheme = match c.get("scheme").map_err(SnapshotError::Malformed)? {
                Json::Str(s) if s == "surrogate" => Scheme::Surrogate,
                Json::Str(s) if s == "conventional" => Scheme::Conventional,
                other => {
                    return Err(SnapshotError::Malformed(format!(
                        "unknown scheme {other:?}"
                    )))
                }
            };
            let ts = c.get("timestep").map_err(SnapshotError::Malformed)?;
            let timestep = match ts.get("mode").map_err(SnapshotError::Malformed)? {
                Json::Str(m) if m == "global" => TimestepMode::Global,
                Json::Str(m) if m == "block" => TimestepMode::Block {
                    max_level: get_u64(ts, "max_level")? as u32,
                },
                other => {
                    return Err(SnapshotError::Malformed(format!(
                        "unknown timestep mode {other:?}"
                    )))
                }
            };
            SimConfig {
                scheme,
                timestep,
                dt_global: get_f64(c, "dt_global")?,
                theta: get_f64(c, "theta")?,
                n_group: get_u64(c, "n_group")? as usize,
                eps: get_f64(c, "eps")?,
                n_ngb: get_u64(c, "n_ngb")? as usize,
                region_side: get_f64(c, "region_side")?,
                pool_latency_steps: get_u64(c, "pool_latency_steps")? as usize,
                cooling: get_bool(c, "cooling")?,
                star_formation: get_bool(c, "star_formation")?,
                cfl: get_f64(c, "cfl")?,
                dt_min: get_f64(c, "dt_min")?,
                mixed_precision: get_bool(c, "mixed_precision")?,
                sf_rho_min: get_f64(c, "sf_rho_min")?,
                sf_t_max: get_f64(c, "sf_t_max")?,
                sf_efficiency: get_f64(c, "sf_efficiency")?,
                snapshot_every: get_u64(c, "snapshot_every")?,
            }
        };
        let stats = {
            let s = state.get("stats").map_err(SnapshotError::Malformed)?;
            SimStats {
                steps: get_u64(s, "steps")?,
                sn_events: get_u64(s, "sn_events")?,
                stars_formed: get_u64(s, "stars_formed")?,
                regions_applied: get_u64(s, "regions_applied")?,
                dt_min_seen: get_f64(s, "dt_min_seen")?,
                gravity_interactions: get_u64(s, "gravity_interactions")?,
                hydro_interactions: get_u64(s, "hydro_interactions")?,
                substeps: get_u64(s, "substeps")?,
                active_updates: get_u64(s, "active_updates")?,
                tree_rebuilds: get_u64(s, "tree_rebuilds")?,
                tree_refreshes: get_u64(s, "tree_refreshes")?,
                sph_tree_rebuilds: get_u64(s, "sph_tree_rebuilds")?,
                sph_tree_refreshes: get_u64(s, "sph_tree_refreshes")?,
            }
        };
        let particles =
            particles_from_json(state.get("particles").map_err(SnapshotError::Malformed)?)?;
        let last_vsig = {
            let entries = arr(state, "last_vsig")?;
            let mut out = Vec::with_capacity(entries.len());
            for e in entries {
                match e {
                    Json::Arr(t) if t.len() == 3 => {
                        out.push((as_u64(&t[0])?, as_f64(&t[1])?, as_f64(&t[2])?))
                    }
                    other => {
                        return Err(SnapshotError::Malformed(format!(
                            "last_vsig entry must be a triple, got {other:?}"
                        )))
                    }
                }
            }
            out
        };
        let pending = {
            let entries = arr(state, "pending")?;
            let mut out = Vec::with_capacity(entries.len());
            for e in entries {
                out.push(PendingPrediction {
                    due_step: get_u64(e, "due_step")?,
                    predicted: gas_from_json(
                        e.get("predicted").map_err(SnapshotError::Malformed)?,
                    )?,
                });
            }
            out
        };
        let schedule = match state.get("schedule").map_err(SnapshotError::Malformed)? {
            Json::Null => None,
            s => Some(schedule_from_json(s)?),
        };
        let rng_state = {
            let entries = arr(state, "rng")?;
            if entries.len() != 4 {
                return Err(SnapshotError::Malformed(format!(
                    "rng state must have 4 words, got {}",
                    entries.len()
                )));
            }
            [
                as_u64(&entries[0])?,
                as_u64(&entries[1])?,
                as_u64(&entries[2])?,
                as_u64(&entries[3])?,
            ]
        };
        let model = model_from_json(state.get("model").map_err(SnapshotError::Malformed)?)?;
        Ok(SimSnapshot {
            config,
            time: get_f64(state, "time")?,
            step_count: get_u64(state, "step_count")?,
            next_id: get_u64(state, "next_id")?,
            rng_state,
            stats,
            particles,
            last_vsig,
            pending,
            schedule,
            model,
        })
    }
}

// ---------------------------------------------------------------------------
// Distributed snapshots
// ---------------------------------------------------------------------------

/// One in-flight pool dispatch of the distributed driver, captured as the
/// *request* (center + region gas): the predictor is deterministic, so a
/// resumed run re-dispatches the region and receives the identical reply,
/// due at the same absolute step.
#[derive(Debug, Clone, PartialEq)]
pub struct DistPending {
    pub due_step: u64,
    pub center: [f64; 3],
    pub gas: Vec<GasParticle>,
}

/// Checkpoint of a distributed run
/// ([`run_distributed`](crate::dist::run_distributed) with
/// [`DistConfig::snapshot_every`](crate::dist::DistConfig) > 0), resumable
/// via [`run_distributed_resume`](crate::dist::run_distributed_resume).
///
/// Per-rank particle lists keep each main rank's **local order** so the
/// resumed ranks rebuild identical trees and sum forces in the identical
/// order — the bitwise-determinism contract extends to the distributed
/// driver as long as the resuming configuration uses the same main-rank
/// grid. Both encodings mirror the shared-memory pair: compact binary
/// (own magic [`DIST_SNAPSHOT_MAGIC`], same version/checksum discipline)
/// and inspectable JSON (`asura-dist-snapshot` documents through
/// [`unet::json`]); [`DistSnapshot::load`] sniffs the format from the
/// leading bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct DistSnapshot {
    /// Completed steps at capture (the resume continues from here).
    pub step: u64,
    pub time: f64,
    /// Particle lists per main rank, local order preserved.
    pub rank_particles: Vec<Vec<Particle>>,
    /// In-flight pool dispatches across all ranks.
    pub pending: Vec<DistPending>,
    /// Block-timestep schedules, one per main rank in rank order (level
    /// arrays in the rank's local particle order), from the base step
    /// during which the checkpoint was gathered; empty for
    /// `TimestepMode::Global` runs. Restored for observability — the next
    /// base step re-derives levels from forces, so resume determinism
    /// never depends on it.
    pub schedules: Vec<ScheduleState>,
    /// The trained model the pool ranks serve, if the run uses one
    /// (`None` for the analytic Sedov-overlay default). On resume this
    /// overrides the configured predictor so the pool replays the same
    /// weights bitwise without re-reading the weights file.
    pub model: Option<ModelState>,
}

impl DistSnapshot {
    /// Serialize to the compact binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::default();
        w.u64(self.step);
        w.f64(self.time);
        w.u64(self.rank_particles.len() as u64);
        for rank in &self.rank_particles {
            w.u64(rank.len() as u64);
            for p in rank {
                write_particle(&mut w, p);
            }
        }
        w.u64(self.pending.len() as u64);
        for p in &self.pending {
            w.u64(p.due_step);
            for c in p.center {
                w.f64(c);
            }
            w.u64(p.gas.len() as u64);
            for g in &p.gas {
                write_gas(&mut w, g);
            }
        }
        w.u64(self.schedules.len() as u64);
        for s in &self.schedules {
            w.f64(s.dt_max);
            w.u64(s.levels.len() as u64);
            for &l in &s.levels {
                w.u32(l);
            }
        }
        write_model(&mut w, &self.model);
        let payload = w.buf;
        let mut out = Vec::with_capacity(payload.len() + 28);
        out.extend_from_slice(&DIST_SNAPSHOT_MAGIC);
        out.extend_from_slice(&DIST_SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        let sum = fnv1a(&payload);
        out.extend_from_slice(&payload);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Decode the binary format, verifying magic, version and checksum.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        if bytes.len() < 20 || bytes[..8] != DIST_SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != DIST_SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: DIST_SNAPSHOT_VERSION,
            });
        }
        let payload_len = u64::from_le_bytes(bytes[12..20].try_into().unwrap()) as usize;
        let body_end = 20usize
            .checked_add(payload_len)
            .ok_or_else(|| SnapshotError::Malformed("payload length overflow".into()))?;
        if bytes.len() < body_end + 8 {
            return Err(SnapshotError::Malformed(format!(
                "truncated: header promises {payload_len} payload bytes + checksum, file has {}",
                bytes.len()
            )));
        }
        let payload = &bytes[20..body_end];
        let stored = u64::from_le_bytes(bytes[body_end..body_end + 8].try_into().unwrap());
        let computed = fnv1a(payload);
        if stored != computed {
            return Err(SnapshotError::ChecksumMismatch { stored, computed });
        }
        let mut r = Reader { b: payload, pos: 0 };
        let step = r.u64()?;
        let time = r.f64()?;
        let n_ranks = r.len()?;
        let mut rank_particles = Vec::with_capacity(n_ranks);
        for _ in 0..n_ranks {
            let n = r.len()?;
            let mut rank = Vec::with_capacity(n);
            for _ in 0..n {
                rank.push(read_particle(&mut r)?);
            }
            rank_particles.push(rank);
        }
        let n = r.len()?;
        let mut pending = Vec::with_capacity(n);
        for _ in 0..n {
            let due_step = r.u64()?;
            let center = [r.f64()?, r.f64()?, r.f64()?];
            let m = r.len()?;
            let mut gas = Vec::with_capacity(m);
            for _ in 0..m {
                gas.push(read_gas(&mut r)?);
            }
            pending.push(DistPending {
                due_step,
                center,
                gas,
            });
        }
        let n = r.len()?;
        let mut schedules = Vec::with_capacity(n);
        for _ in 0..n {
            let dt_max = r.f64()?;
            let m = r.len()?;
            let mut levels = Vec::with_capacity(m);
            for _ in 0..m {
                levels.push(r.u32()?);
            }
            schedules.push(ScheduleState { dt_max, levels });
        }
        let model = read_model(&mut r)?;
        if r.pos != payload.len() {
            return Err(SnapshotError::Malformed(format!(
                "{} trailing payload bytes",
                payload.len() - r.pos
            )));
        }
        Ok(DistSnapshot {
            step,
            time,
            rank_particles,
            pending,
            schedules,
            model,
        })
    }

    /// Serialize to the JSON format: an `asura-dist-snapshot` document with
    /// the same version/checksum discipline as [`SimSnapshot::to_json`].
    pub fn to_json(&self) -> String {
        let state = Json::Obj(vec![
            ("step".into(), ju(self.step)),
            ("time".into(), jf(self.time)),
            (
                "rank_particles".into(),
                Json::Arr(
                    self.rank_particles
                        .iter()
                        .map(|rank| particles_json(rank))
                        .collect(),
                ),
            ),
            (
                "pending".into(),
                Json::Arr(
                    self.pending
                        .iter()
                        .map(|p| {
                            Json::Obj(vec![
                                ("due_step".into(), ju(p.due_step)),
                                (
                                    "center".into(),
                                    Json::Arr(p.center.iter().map(|&c| jf(c)).collect()),
                                ),
                                ("gas".into(), gas_json(&p.gas)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "schedules".into(),
                Json::Arr(self.schedules.iter().map(schedule_json).collect()),
            ),
            ("model".into(), model_json(&self.model)),
        ]);
        let mut state_str = String::new();
        write_json(&state, &mut state_str);
        let sum = fnv1a(state_str.as_bytes());
        let doc = Json::Obj(vec![
            ("format".into(), Json::Str("asura-dist-snapshot".into())),
            ("version".into(), Json::Num(DIST_SNAPSHOT_VERSION as f64)),
            ("state".into(), state),
            ("checksum".into(), Json::Str(format!("fnv1a:{sum:016x}"))),
        ]);
        let mut out = String::new();
        write_json(&doc, &mut out);
        out
    }

    /// Decode the JSON format, verifying the document type, version and
    /// checksum.
    pub fn from_json(text: &str) -> Result<Self, SnapshotError> {
        let doc = parse_json(text).map_err(|_| SnapshotError::BadMagic)?;
        let format = doc.get("format").map_err(|_| SnapshotError::BadMagic)?;
        if format != &Json::Str("asura-dist-snapshot".into()) {
            return Err(SnapshotError::BadMagic);
        }
        let version = doc
            .get("version")
            .and_then(|v| v.as_usize())
            .map_err(SnapshotError::Malformed)? as u32;
        if version != DIST_SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: DIST_SNAPSHOT_VERSION,
            });
        }
        let state = doc.get("state").map_err(SnapshotError::Malformed)?;
        let mut state_str = String::new();
        write_json(state, &mut state_str);
        let computed = fnv1a(state_str.as_bytes());
        let stored_str = match doc.get("checksum").map_err(SnapshotError::Malformed)? {
            Json::Str(s) => s.clone(),
            other => {
                return Err(SnapshotError::Malformed(format!(
                    "checksum must be a string, got {other:?}"
                )))
            }
        };
        let stored = stored_str
            .strip_prefix("fnv1a:")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| SnapshotError::Malformed(format!("bad checksum `{stored_str}`")))?;
        if stored != computed {
            return Err(SnapshotError::ChecksumMismatch { stored, computed });
        }
        let rank_particles = arr(state, "rank_particles")?
            .iter()
            .map(particles_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let pending = arr(state, "pending")?
            .iter()
            .map(|e| {
                let center = match e.get("center").map_err(SnapshotError::Malformed)? {
                    Json::Arr(c) if c.len() == 3 => {
                        [as_f64(&c[0])?, as_f64(&c[1])?, as_f64(&c[2])?]
                    }
                    other => {
                        return Err(SnapshotError::Malformed(format!(
                            "pending center must be a triple, got {other:?}"
                        )))
                    }
                };
                Ok(DistPending {
                    due_step: get_u64(e, "due_step")?,
                    center,
                    gas: gas_from_json(e.get("gas").map_err(SnapshotError::Malformed)?)?,
                })
            })
            .collect::<Result<Vec<_>, SnapshotError>>()?;
        let schedules = arr(state, "schedules")?
            .iter()
            .map(schedule_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let model = model_from_json(state.get("model").map_err(SnapshotError::Malformed)?)?;
        Ok(DistSnapshot {
            step: get_u64(state, "step")?,
            time: get_f64(state, "time")?,
            rank_particles,
            pending,
            schedules,
            model,
        })
    }

    /// Decode a distributed snapshot from raw bytes, sniffing the
    /// encoding: binary snapshots start with [`DIST_SNAPSHOT_MAGIC`],
    /// anything else is parsed as JSON. Used by the checkpoint store's
    /// [`latest_valid`](crate::ckpt::CkptStore::latest_valid_dist) walk.
    pub fn decode(bytes: &[u8]) -> Result<Self, SnapshotError> {
        if bytes.starts_with(&DIST_SNAPSHOT_MAGIC) {
            Self::from_bytes(bytes)
        } else {
            let text =
                std::str::from_utf8(bytes).map_err(|e| SnapshotError::Malformed(e.to_string()))?;
            Self::from_json(text)
        }
    }

    /// Load a distributed snapshot file, sniffing the encoding: binary
    /// snapshots start with [`DIST_SNAPSHOT_MAGIC`], JSON ones with `{`.
    pub fn load(path: &std::path::Path) -> Result<Self, SnapshotError> {
        let bytes = std::fs::read(path).map_err(|e| SnapshotError::Io(e.to_string()))?;
        Self::decode(&bytes)
    }
}

// -- JSON encoding helpers --------------------------------------------------
//
// Finite floats render as plain numbers (shortest-roundtrip, exact on
// reload); non-finite floats and u64 values that do not fit the f64
// mantissa fall back to tagged hex strings, so every value of either type
// survives a JSON round-trip bit-exactly.

fn jf(x: f64) -> Json {
    if x.is_finite() {
        Json::Num(x)
    } else {
        Json::Str(format!("bits:{:016x}", x.to_bits()))
    }
}

fn ju(x: u64) -> Json {
    if x <= (1u64 << 53) {
        Json::Num(x as f64)
    } else {
        Json::Str(format!("u64:{x:016x}"))
    }
}

fn as_f64(v: &Json) -> Result<f64, SnapshotError> {
    match v {
        Json::Num(n) => Ok(*n),
        Json::Str(s) => s
            .strip_prefix("bits:")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .map(f64::from_bits)
            .ok_or_else(|| SnapshotError::Malformed(format!("bad float `{s}`"))),
        other => Err(SnapshotError::Malformed(format!(
            "expected float, got {other:?}"
        ))),
    }
}

fn as_u64(v: &Json) -> Result<u64, SnapshotError> {
    match v {
        Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= (1u64 << 53) as f64 => Ok(*n as u64),
        Json::Str(s) => s
            .strip_prefix("u64:")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| SnapshotError::Malformed(format!("bad u64 `{s}`"))),
        other => Err(SnapshotError::Malformed(format!(
            "expected unsigned integer, got {other:?}"
        ))),
    }
}

fn as_bool(v: &Json) -> Result<bool, SnapshotError> {
    match v {
        Json::Bool(b) => Ok(*b),
        other => Err(SnapshotError::Malformed(format!(
            "expected bool, got {other:?}"
        ))),
    }
}

fn get_f64(obj: &Json, key: &str) -> Result<f64, SnapshotError> {
    as_f64(obj.get(key).map_err(SnapshotError::Malformed)?)
}

fn get_u64(obj: &Json, key: &str) -> Result<u64, SnapshotError> {
    as_u64(obj.get(key).map_err(SnapshotError::Malformed)?)
}

fn get_bool(obj: &Json, key: &str) -> Result<bool, SnapshotError> {
    as_bool(obj.get(key).map_err(SnapshotError::Malformed)?)
}

fn arr<'a>(obj: &'a Json, key: &str) -> Result<&'a [Json], SnapshotError> {
    match obj.get(key).map_err(SnapshotError::Malformed)? {
        Json::Arr(items) => Ok(items),
        other => Err(SnapshotError::Malformed(format!(
            "field `{key}` must be an array, got {other:?}"
        ))),
    }
}

fn flat_vec3(vs: impl Iterator<Item = Vec3>) -> Json {
    Json::Arr(vs.flat_map(|v| [jf(v.x), jf(v.y), jf(v.z)]).collect())
}

/// Particle list as a column-oriented (SoA) JSON object — compact enough
/// to stay inspectable without one object per particle. Shared between the
/// shared-memory and distributed snapshot encodings.
fn particles_json(particles: &[Particle]) -> Json {
    Json::Obj(vec![
        (
            "id".into(),
            Json::Arr(particles.iter().map(|p| ju(p.id)).collect()),
        ),
        (
            "kind".into(),
            Json::Arr(
                particles
                    .iter()
                    .map(|p| {
                        Json::Num(match p.kind {
                            Kind::Dm => 0.0,
                            Kind::Star => 1.0,
                            Kind::Gas => 2.0,
                        })
                    })
                    .collect(),
            ),
        ),
        ("pos".into(), flat_vec3(particles.iter().map(|p| p.pos))),
        ("vel".into(), flat_vec3(particles.iter().map(|p| p.vel))),
        (
            "mass".into(),
            Json::Arr(particles.iter().map(|p| jf(p.mass)).collect()),
        ),
        (
            "u".into(),
            Json::Arr(particles.iter().map(|p| jf(p.u)).collect()),
        ),
        (
            "h".into(),
            Json::Arr(particles.iter().map(|p| jf(p.h)).collect()),
        ),
        (
            "rho".into(),
            Json::Arr(particles.iter().map(|p| jf(p.rho)).collect()),
        ),
        (
            "metals".into(),
            Json::Arr(particles.iter().map(|p| jf(p.metals)).collect()),
        ),
        (
            "birth_time".into(),
            Json::Arr(particles.iter().map(|p| jf(p.birth_time)).collect()),
        ),
        (
            "exploded".into(),
            Json::Arr(particles.iter().map(|p| Json::Bool(p.exploded)).collect()),
        ),
    ])
}

fn particles_from_json(p: &Json) -> Result<Vec<Particle>, SnapshotError> {
    let id = arr(p, "id")?;
    let kind = arr(p, "kind")?;
    let pos = read_flat_vec3(p, "pos", id.len())?;
    let vel = read_flat_vec3(p, "vel", id.len())?;
    let mass = arr(p, "mass")?;
    let u = arr(p, "u")?;
    let h = arr(p, "h")?;
    let rho = arr(p, "rho")?;
    let metals = arr(p, "metals")?;
    let birth_time = arr(p, "birth_time")?;
    let exploded = arr(p, "exploded")?;
    for (name, a) in [
        ("kind", &kind),
        ("mass", &mass),
        ("u", &u),
        ("h", &h),
        ("rho", &rho),
        ("metals", &metals),
        ("birth_time", &birth_time),
        ("exploded", &exploded),
    ] {
        if a.len() != id.len() {
            return Err(SnapshotError::Malformed(format!(
                "particle column `{name}` has {} entries, id has {}",
                a.len(),
                id.len()
            )));
        }
    }
    let mut out = Vec::with_capacity(id.len());
    for i in 0..id.len() {
        out.push(Particle {
            id: as_u64(&id[i])?,
            kind: match as_u64(&kind[i])? {
                0 => Kind::Dm,
                1 => Kind::Star,
                2 => Kind::Gas,
                k => {
                    return Err(SnapshotError::Malformed(format!(
                        "unknown particle kind {k}"
                    )))
                }
            },
            pos: pos[i],
            vel: vel[i],
            mass: as_f64(&mass[i])?,
            u: as_f64(&u[i])?,
            h: as_f64(&h[i])?,
            rho: as_f64(&rho[i])?,
            metals: as_f64(&metals[i])?,
            birth_time: as_f64(&birth_time[i])?,
            exploded: as_bool(&exploded[i])?,
        });
    }
    Ok(out)
}

/// Gas-region list (pool requests/replies) as a column-oriented object.
fn gas_json(gas: &[GasParticle]) -> Json {
    Json::Obj(vec![
        (
            "id".into(),
            Json::Arr(gas.iter().map(|g| ju(g.id)).collect()),
        ),
        ("pos".into(), flat_vec3(gas.iter().map(|g| g.pos))),
        ("vel".into(), flat_vec3(gas.iter().map(|g| g.vel))),
        (
            "mass".into(),
            Json::Arr(gas.iter().map(|g| jf(g.mass)).collect()),
        ),
        (
            "temp".into(),
            Json::Arr(gas.iter().map(|g| jf(g.temp)).collect()),
        ),
        ("h".into(), Json::Arr(gas.iter().map(|g| jf(g.h)).collect())),
    ])
}

fn gas_from_json(pr: &Json) -> Result<Vec<GasParticle>, SnapshotError> {
    let id = arr(pr, "id")?;
    let pos = read_flat_vec3(pr, "pos", id.len())?;
    let vel = read_flat_vec3(pr, "vel", id.len())?;
    let mass = arr(pr, "mass")?;
    let temp = arr(pr, "temp")?;
    let h = arr(pr, "h")?;
    if mass.len() != id.len() || temp.len() != id.len() || h.len() != id.len() {
        return Err(SnapshotError::Malformed(
            "gas region columns disagree on length".into(),
        ));
    }
    let mut out = Vec::with_capacity(id.len());
    for i in 0..id.len() {
        out.push(GasParticle {
            pos: pos[i],
            vel: vel[i],
            mass: as_f64(&mass[i])?,
            temp: as_f64(&temp[i])?,
            h: as_f64(&h[i])?,
            id: as_u64(&id[i])?,
        });
    }
    Ok(out)
}

fn schedule_json(s: &ScheduleState) -> Json {
    Json::Obj(vec![
        ("dt_max".into(), jf(s.dt_max)),
        (
            "levels".into(),
            Json::Arr(s.levels.iter().map(|&l| Json::Num(l as f64)).collect()),
        ),
    ])
}

fn schedule_from_json(s: &Json) -> Result<ScheduleState, SnapshotError> {
    let levels = arr(s, "levels")?
        .iter()
        .map(|l| as_u64(l).map(|v| v as u32))
        .collect::<Result<Vec<u32>, _>>()?;
    Ok(ScheduleState {
        dt_max: get_f64(s, "dt_max")?,
        levels,
    })
}

fn read_flat_vec3(obj: &Json, key: &str, n: usize) -> Result<Vec<Vec3>, SnapshotError> {
    let flat = arr(obj, key)?;
    if flat.len() != 3 * n {
        return Err(SnapshotError::Malformed(format!(
            "field `{key}` must hold {} floats, got {}",
            3 * n,
            flat.len()
        )));
    }
    flat.chunks_exact(3)
        .map(|c| Ok(Vec3::new(as_f64(&c[0])?, as_f64(&c[1])?, as_f64(&c[2])?)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_snapshot(seed: u64, n: usize) -> SimSnapshot {
        let mut rng = StdRng::seed_from_u64(seed);
        let rv3 = |rng: &mut StdRng| {
            Vec3::new(
                rng.gen_range(-1.0e3..1.0e3),
                rng.gen_range(-1.0e3..1.0e3),
                rng.gen_range(-1.0e3..1.0e3),
            )
        };
        let particles: Vec<Particle> = (0..n)
            .map(|i| {
                let kind = match rng.gen_range(0..3u32) {
                    0 => Kind::Dm,
                    1 => Kind::Star,
                    _ => Kind::Gas,
                };
                Particle {
                    id: i as u64,
                    kind,
                    pos: rv3(&mut rng),
                    vel: rv3(&mut rng),
                    mass: rng.gen_range(0.1..100.0),
                    u: rng.gen_range(0.0..1.0e6),
                    h: rng.gen_range(1.0e-3..10.0),
                    rho: rng.gen_range(0.0..50.0),
                    metals: rng.gen_range(0.0..1.0),
                    birth_time: rng.gen_range(-500.0..500.0),
                    exploded: rng.gen_bool(0.2),
                }
            })
            .collect();
        let pending = (0..rng.gen_range(0..3usize))
            .map(|_| PendingPrediction {
                due_step: rng.gen::<u32>() as u64,
                predicted: (0..rng.gen_range(1..5usize))
                    .map(|j| GasParticle {
                        pos: rv3(&mut rng),
                        vel: rv3(&mut rng),
                        mass: rng.gen_range(0.1..10.0),
                        temp: rng.gen_range(10.0..1.0e8),
                        h: rng.gen_range(0.1..5.0),
                        id: j as u64,
                    })
                    .collect(),
            })
            .collect();
        SimSnapshot {
            config: SimConfig {
                scheme: if seed.is_multiple_of(2) {
                    Scheme::Surrogate
                } else {
                    Scheme::Conventional
                },
                timestep: if seed.is_multiple_of(3) {
                    TimestepMode::Global
                } else {
                    TimestepMode::Block {
                        max_level: rng.gen_range(1..12u32),
                    }
                },
                snapshot_every: rng.gen_range(0..10u64),
                ..Default::default()
            },
            time: rng.gen_range(0.0..100.0),
            step_count: rng.gen::<u32>() as u64,
            next_id: n as u64,
            rng_state: [rng.gen(), rng.gen(), rng.gen(), rng.gen()],
            stats: SimStats {
                steps: rng.gen::<u32>() as u64,
                dt_min_seen: if seed.is_multiple_of(4) {
                    f64::INFINITY // a fresh run's sentinel must survive
                } else {
                    rng.gen_range(1e-9..1e-2)
                },
                gravity_interactions: rng.gen(), // full-range u64
                ..Default::default()
            },
            particles,
            last_vsig: (0..n / 3)
                .map(|i| (i as u64, rng.gen_range(0.0..1e4), rng.gen_range(1e-3..10.0)))
                .collect(),
            pending,
            schedule: if seed.is_multiple_of(2) {
                Some(ScheduleState {
                    dt_max: rng.gen_range(1e-4..1.0),
                    levels: (0..n).map(|_| rng.gen_range(0..10u32)).collect(),
                })
            } else {
                None
            },
            model: if seed.is_multiple_of(3) {
                Some(ModelState {
                    seed: rng.gen(), // full-range u64 (exercises the "u64:" JSON fallback)
                    weights_json: format!(
                        "{{\"format\":\"asura-surrogate-model\",\"fake\":{}}}",
                        rng.gen_range(0..1000u32)
                    ),
                })
            } else {
                None
            },
        }
    }

    #[test]
    fn binary_roundtrip_is_exact_and_reserialization_is_byte_identical() {
        for seed in 0..8u64 {
            let snap = random_snapshot(seed, 40);
            let bytes = snap.to_bytes();
            let back = SimSnapshot::from_bytes(&bytes).expect("roundtrip");
            assert_eq!(back, snap, "seed {seed}");
            assert_eq!(back.to_bytes(), bytes, "seed {seed}: reserialize differs");
        }
    }

    #[test]
    fn json_roundtrip_is_exact_and_reserialization_is_byte_identical() {
        for seed in 0..8u64 {
            let snap = random_snapshot(seed, 25);
            let text = snap.to_json();
            let back = SimSnapshot::from_json(&text).expect("roundtrip");
            assert_eq!(back, snap, "seed {seed}");
            assert_eq!(back.to_json(), text, "seed {seed}: reserialize differs");
        }
    }

    #[test]
    fn corrupted_binary_payload_is_rejected_not_panicked() {
        let snap = random_snapshot(1, 20);
        let mut bytes = snap.to_bytes();
        // Flip one payload byte (past the 20-byte header).
        let k = 20 + bytes.len() / 2;
        bytes[k] ^= 0x40;
        match SimSnapshot::from_bytes(&bytes) {
            Err(SnapshotError::ChecksumMismatch { .. }) | Err(SnapshotError::Malformed(_)) => {}
            other => panic!("corrupted snapshot must be rejected, got {other:?}"),
        }
    }

    #[test]
    fn truncated_binary_is_rejected() {
        let snap = random_snapshot(2, 10);
        let bytes = snap.to_bytes();
        for cut in [0, 4, 19, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                SimSnapshot::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
        assert!(SimSnapshot::from_bytes(b"not a snapshot at all").is_err());
    }

    #[test]
    fn wrong_version_is_rejected_with_the_found_version() {
        let snap = random_snapshot(3, 5);
        let mut bytes = snap.to_bytes();
        bytes[8..12].copy_from_slice(&999u32.to_le_bytes());
        match SimSnapshot::from_bytes(&bytes) {
            Err(SnapshotError::UnsupportedVersion { found, supported }) => {
                assert_eq!(found, 999);
                assert_eq!(supported, SNAPSHOT_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn tampered_json_state_fails_the_checksum() {
        let snap = random_snapshot(4, 8);
        let text = snap.to_json();
        // Tamper with a state value without touching the checksum field.
        let tampered = text.replacen("\"time\":", "\"time_x\":", 1);
        assert_ne!(tampered, text);
        match SimSnapshot::from_json(&tampered) {
            Err(SnapshotError::ChecksumMismatch { .. }) | Err(SnapshotError::Malformed(_)) => {}
            other => panic!("tampered JSON must be rejected, got {other:?}"),
        }
        // Wrong version in JSON.
        let vx = text.replacen(
            &format!("\"version\":{SNAPSHOT_VERSION}"),
            "\"version\":42",
            1,
        );
        assert!(matches!(
            SimSnapshot::from_json(&vx),
            Err(SnapshotError::UnsupportedVersion { found: 42, .. })
        ));
        // Entirely foreign JSON.
        assert_eq!(
            SimSnapshot::from_json("{\"hello\": 1}"),
            Err(SnapshotError::BadMagic)
        );
    }

    fn random_dist_snapshot(seed: u64) -> DistSnapshot {
        let base = random_snapshot(seed, 30);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(77).wrapping_add(5));
        let rank_particles: Vec<Vec<Particle>> =
            base.particles.chunks(7).map(|c| c.to_vec()).collect();
        let schedules = if seed.is_multiple_of(2) {
            rank_particles
                .iter()
                .map(|rank| ScheduleState {
                    dt_max: rng.gen_range(1e-4..1.0),
                    levels: rank.iter().map(|_| rng.gen_range(0..10u32)).collect(),
                })
                .collect()
        } else {
            Vec::new()
        };
        DistSnapshot {
            step: 17,
            time: 0.034,
            rank_particles,
            pending: base
                .pending
                .iter()
                .map(|p| DistPending {
                    due_step: p.due_step,
                    center: [1.0, -2.0, 3.5],
                    gas: p.predicted.clone(),
                })
                .collect(),
            schedules,
            model: base.model,
        }
    }

    #[test]
    fn dist_snapshot_binary_roundtrip_and_rejection() {
        let snap = random_dist_snapshot(6);
        assert!(!snap.schedules.is_empty(), "schedules exercised");
        let bytes = snap.to_bytes();
        assert_eq!(DistSnapshot::from_bytes(&bytes).expect("roundtrip"), snap);
        assert_eq!(DistSnapshot::from_bytes(&bytes).unwrap().to_bytes(), bytes);
        // The two binary formats are not confusable.
        assert_eq!(
            SimSnapshot::from_bytes(&bytes),
            Err(SnapshotError::BadMagic)
        );
        let mut corrupt = bytes.clone();
        let k = 20 + corrupt.len() / 3;
        corrupt[k] ^= 1;
        assert!(matches!(
            DistSnapshot::from_bytes(&corrupt),
            Err(SnapshotError::ChecksumMismatch { .. }) | Err(SnapshotError::Malformed(_))
        ));
    }

    #[test]
    fn dist_snapshot_json_roundtrip_and_rejection() {
        for seed in [6u64, 7] {
            let snap = random_dist_snapshot(seed);
            let text = snap.to_json();
            let back = DistSnapshot::from_json(&text).expect("roundtrip");
            assert_eq!(back, snap, "seed {seed}");
            assert_eq!(back.to_json(), text, "seed {seed}: reserialize differs");
            // The two JSON document types are not confusable.
            assert_eq!(
                SimSnapshot::from_json(&text),
                Err(SnapshotError::BadMagic),
                "seed {seed}"
            );
        }
        let snap = random_dist_snapshot(6);
        let text = snap.to_json();
        assert_eq!(
            DistSnapshot::from_json(&snap.rank_particles.len().to_string()),
            Err(SnapshotError::BadMagic)
        );
        let tampered = text.replacen("\"step\":17", "\"step\":18", 1);
        assert_ne!(tampered, text, "test must actually tamper");
        assert!(matches!(
            DistSnapshot::from_json(&tampered),
            Err(SnapshotError::ChecksumMismatch { .. }) | Err(SnapshotError::Malformed(_))
        ));
    }

    #[test]
    fn dist_snapshot_versions_independently_of_the_shared_memory_format() {
        // The two formats version separately: bumping DIST_SNAPSHOT_VERSION
        // (v3: schedules + JSON codec) must not invalidate shared-memory
        // v2 snapshots, and a dist snapshot stamped with the shared-memory
        // version is rejected with the dist reader's expectation.
        assert_ne!(SNAPSHOT_VERSION, DIST_SNAPSHOT_VERSION);
        let sim = random_snapshot(3, 5);
        assert!(SimSnapshot::from_bytes(&sim.to_bytes()).is_ok());
        let dist = random_dist_snapshot(6);
        let mut bytes = dist.to_bytes();
        bytes[8..12].copy_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        match DistSnapshot::from_bytes(&bytes) {
            Err(SnapshotError::UnsupportedVersion { found, supported }) => {
                assert_eq!(found, SNAPSHOT_VERSION);
                assert_eq!(supported, DIST_SNAPSHOT_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn dist_snapshot_load_sniffs_binary_and_json_files() {
        let snap = random_dist_snapshot(8);
        let dir = std::env::temp_dir();
        let bin_path = dir.join("asura_dist_snapshot_sniff_test.bin");
        let json_path = dir.join("asura_dist_snapshot_sniff_test.json");
        std::fs::write(&bin_path, snap.to_bytes()).unwrap();
        std::fs::write(&json_path, snap.to_json()).unwrap();
        assert_eq!(DistSnapshot::load(&bin_path).expect("binary load"), snap);
        assert_eq!(DistSnapshot::load(&json_path).expect("json load"), snap);
        let _ = std::fs::remove_file(&bin_path);
        let _ = std::fs::remove_file(&json_path);
    }

    #[test]
    fn load_sniffs_binary_and_json_files() {
        let snap = random_snapshot(5, 12);
        let dir = std::env::temp_dir();
        let bin_path = dir.join("asura_snapshot_sniff_test.bin");
        let json_path = dir.join("asura_snapshot_sniff_test.json");
        std::fs::write(&bin_path, snap.to_bytes()).unwrap();
        std::fs::write(&json_path, snap.to_json()).unwrap();
        assert_eq!(SimSnapshot::load(&bin_path).expect("binary load"), snap);
        assert_eq!(SimSnapshot::load(&json_path).expect("json load"), snap);
        assert!(matches!(
            SimSnapshot::load(&dir.join("asura_snapshot_missing_file")),
            Err(SnapshotError::Io(_))
        ));
        let _ = std::fs::remove_file(&bin_path);
        let _ = std::fs::remove_file(&json_path);
    }
}
