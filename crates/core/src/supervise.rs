//! Run supervision: heartbeat, crash/hang detection, bounded auto-resume.
//!
//! A supervised run is a parent/child pair. The child is the ordinary
//! scenario driver plus one extra duty: it touches a heartbeat file every
//! step ([`Heartbeat::beat`]). The parent ([`Supervisor::run`]) polls the
//! child for two failure signals:
//!
//! * **crash** — the child exited with a non-zero status;
//! * **hang** — the child is still alive but its heartbeat has not
//!   changed for longer than `heartbeat_timeout_ms` (the child is then
//!   killed).
//!
//! On either signal the supervisor consults the checkpoint store for the
//! newest intact snapshot
//! ([`latest_valid`](crate::ckpt::CkptStore::latest_valid_sim)), records
//! an [`Incident`] in `supervisor.json`, sleeps an exponential backoff,
//! and respawns the child resuming from that snapshot — up to
//! `max_retries` resumes. Exit codes listed as *permanent* (usage
//! errors) are never retried. Because restarts are bitwise-deterministic
//! (see `tests/snapshot_restart.rs`), a supervised run that suffers
//! crashes ends in exactly the state of an uninterrupted run — that
//! property is enforced by `tests/supervised_chaos.rs`.
//!
//! The process-spawning side is abstracted behind [`ChildHandle`] so the
//! retry/verdict logic is unit-testable with in-process fakes; the
//! `asura` CLI provides the real `std::process::Child`-backed
//! implementation.

use crate::ckpt::atomic_write;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};
use unet::json::{parse_json, Json};

/// `format` field of the incident log.
pub const LOG_FORMAT: &str = "asura-supervisor-log";
/// Incident-log schema version.
pub const LOG_VERSION: u64 = 1;

/// Retry budget and backoff schedule for auto-resume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum number of resumes (attempt 0 is free; `max_retries = 3`
    /// allows attempts 0..=3).
    pub max_retries: u32,
    /// Backoff before retry `k` is `base << k`, capped.
    pub backoff_base_ms: u64,
    pub backoff_cap_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            backoff_base_ms: 500,
            backoff_cap_ms: 8000,
        }
    }
}

impl RetryPolicy {
    /// Backoff before the retry that follows failed attempt `attempt`.
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        self.backoff_base_ms
            .checked_shl(attempt)
            .unwrap_or(u64::MAX)
            .min(self.backoff_cap_ms)
    }
}

/// Content-based heartbeat file. The child rewrites it every step; the
/// supervisor treats *any content change* as proof of life, so there is
/// no wall-clock skew between the two processes to reason about.
#[derive(Debug)]
pub struct Heartbeat {
    path: PathBuf,
    seq: u64,
}

impl Heartbeat {
    pub fn new(path: impl Into<PathBuf>) -> Heartbeat {
        Heartbeat {
            path: path.into(),
            seq: 0,
        }
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Record one unit of progress (`seq step\n`). Atomic so the
    /// supervisor can never read a half-written beat.
    pub fn beat(&mut self, step: u64) -> io::Result<()> {
        self.seq += 1;
        atomic_write(&self.path, format!("{} {step}\n", self.seq).as_bytes())
    }

    /// Read a heartbeat file: `(seq, step)`.
    ///
    /// Strict: the file must be exactly `seq step\n` (the trailing newline
    /// optional). Anything else — extra tokens, extra lines, non-numeric
    /// junk after a valid prefix — is rejected wholesale rather than
    /// partially parsed, so a beat mangled by a co-located writer on a
    /// shared machine reads as "no beat", never as a fabricated step.
    pub fn read(path: &Path) -> Option<(u64, u64)> {
        let text = std::fs::read_to_string(path).ok()?;
        let line = text.strip_suffix('\n').unwrap_or(&text);
        let (seq, step) = line.split_once(' ')?;
        // `u64::parse` rejects embedded whitespace, so a third token or a
        // second line fails here instead of being silently dropped.
        Some((seq.parse().ok()?, step.parse().ok()?))
    }
}

/// Why an attempt was declared failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncidentKind {
    /// The child exited with this non-zero code.
    Crash { exit_code: i32 },
    /// The heartbeat went stale for this long and the child was killed.
    Hang { stale_ms: u64 },
}

/// One recorded failure of a supervised attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Incident {
    /// The attempt index that failed (0 = the original run).
    pub attempt: u32,
    pub kind: IncidentKind,
    /// Step of the checkpoint the next attempt resumed from, if one was
    /// found (`None` means the next attempt restarted from scratch).
    pub resumed_from_step: Option<u64>,
    /// Backoff slept before the resume.
    pub backoff_ms: u64,
}

/// Terminal state of a supervised run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// An attempt finished with exit code 0.
    Completed { attempts: u32 },
    /// The retry budget was exhausted.
    GaveUp { attempts: u32 },
    /// The child exited with a code configured as not retryable.
    Permanent { exit_code: i32 },
    /// The run was externally canceled (the abort hook of
    /// [`Supervisor::run_with_abort`] returned [`StopReason::Cancel`]);
    /// the child was killed and will not be resumed.
    Canceled { attempts: u32 },
}

/// Why [`Supervisor::run_with_abort`] should stop driving attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Terminal: kill the child and record [`Outcome::Canceled`].
    Cancel,
    /// Non-terminal: kill the child and return *without* a terminal
    /// outcome (the incident log keeps `"running"`), so a later
    /// supervisor can re-adopt the run and resume it from its rotation —
    /// the `asura serve` daemon uses this for graceful shutdown.
    Detach,
}

/// The `supervisor.json` incident log: every incident plus the final
/// outcome, written atomically after each state change so a crash of the
/// supervisor itself still leaves a parseable log.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IncidentLog {
    pub incidents: Vec<Incident>,
    pub outcome: Option<Outcome>,
}

impl IncidentLog {
    pub fn to_json(&self) -> String {
        // Hand-rendered so integers stay integers (the `Json` writer
        // formats every number as `f64`, which turns `2` into `2.0` —
        // hostile to the CI greps that assert on this file).
        let mut text =
            format!("{{\"format\":\"{LOG_FORMAT}\",\"version\":{LOG_VERSION},\"outcome\":");
        match self.outcome {
            None => text.push_str("\"running\""),
            Some(Outcome::Completed { attempts }) => {
                text.push_str(&format!("\"completed\",\"attempts\":{attempts}"));
            }
            Some(Outcome::GaveUp { attempts }) => {
                text.push_str(&format!("\"gave_up\",\"attempts\":{attempts}"));
            }
            Some(Outcome::Permanent { exit_code }) => {
                text.push_str(&format!("\"permanent\",\"exit_code\":{exit_code}"));
            }
            Some(Outcome::Canceled { attempts }) => {
                text.push_str(&format!("\"canceled\",\"attempts\":{attempts}"));
            }
        }
        text.push_str(",\"incidents\":[");
        for (n, i) in self.incidents.iter().enumerate() {
            if n > 0 {
                text.push(',');
            }
            text.push_str(&format!("{{\"attempt\":{}", i.attempt));
            match i.kind {
                IncidentKind::Crash { exit_code } => {
                    text.push_str(&format!(",\"kind\":\"crash\",\"exit_code\":{exit_code}"));
                }
                IncidentKind::Hang { stale_ms } => {
                    text.push_str(&format!(",\"kind\":\"hang\",\"stale_ms\":{stale_ms}"));
                }
            }
            match i.resumed_from_step {
                Some(s) => text.push_str(&format!(",\"resumed_from_step\":{s}")),
                None => text.push_str(",\"resumed_from_step\":null"),
            }
            text.push_str(&format!(",\"backoff_ms\":{}}}", i.backoff_ms));
        }
        text.push_str("]}\n");
        text
    }

    /// Parse a `supervisor.json` document (used by tests and tooling to
    /// assert exactly which incidents a run suffered).
    pub fn from_json(text: &str) -> Result<IncidentLog, String> {
        let doc = parse_json(text)?;
        match doc.get("format")? {
            Json::Str(s) if s == LOG_FORMAT => {}
            other => return Err(format!("not a supervisor log: format {other:?}")),
        }
        let version = doc.get("version")?.as_usize()?;
        if version != LOG_VERSION as usize {
            return Err(format!("unsupported supervisor log version {version}"));
        }
        let outcome = match doc.get("outcome")? {
            Json::Str(s) => match s.as_str() {
                "running" => None,
                "completed" => Some(Outcome::Completed {
                    attempts: doc.get("attempts")?.as_usize()? as u32,
                }),
                "gave_up" => Some(Outcome::GaveUp {
                    attempts: doc.get("attempts")?.as_usize()? as u32,
                }),
                "canceled" => Some(Outcome::Canceled {
                    attempts: doc.get("attempts")?.as_usize()? as u32,
                }),
                "permanent" => Some(Outcome::Permanent {
                    exit_code: match doc.get("exit_code")? {
                        Json::Num(n) => *n as i32,
                        other => return Err(format!("bad exit_code {other:?}")),
                    },
                }),
                other => return Err(format!("unknown outcome `{other}`")),
            },
            other => return Err(format!("bad outcome field {other:?}")),
        };
        let Json::Arr(items) = doc.get("incidents")? else {
            return Err("incidents is not an array".into());
        };
        let mut incidents = Vec::with_capacity(items.len());
        for item in items {
            let kind = match item.get("kind")? {
                Json::Str(s) if s == "crash" => IncidentKind::Crash {
                    exit_code: match item.get("exit_code")? {
                        Json::Num(n) => *n as i32,
                        other => return Err(format!("bad exit_code {other:?}")),
                    },
                },
                Json::Str(s) if s == "hang" => IncidentKind::Hang {
                    stale_ms: item.get("stale_ms")?.as_usize()? as u64,
                },
                other => return Err(format!("unknown incident kind {other:?}")),
            };
            incidents.push(Incident {
                attempt: item.get("attempt")?.as_usize()? as u32,
                kind,
                resumed_from_step: match item.get("resumed_from_step")? {
                    Json::Null => None,
                    v => Some(v.as_usize()? as u64),
                },
                backoff_ms: item.get("backoff_ms")?.as_usize()? as u64,
            });
        }
        Ok(IncidentLog { incidents, outcome })
    }

    /// Atomically persist the log.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        atomic_write(path, self.to_json().as_bytes())
    }
}

/// Minimal process handle the supervisor drives, so the loop is testable
/// with in-process fakes.
pub trait ChildHandle {
    /// Non-blocking: `Some(exit_code)` once the child has exited.
    fn poll_exit(&mut self) -> io::Result<Option<i32>>;
    /// Forcibly terminate the child (used on hang) and reap it.
    fn kill(&mut self);
}

/// [`ChildHandle`] backed by a real [`std::process::Child`] — the
/// implementation the `asura` CLI's `--supervised` mode and the
/// [`serve`](crate::serve) daemon's workers drive.
pub struct ProcessChild(std::process::Child);

impl ProcessChild {
    pub fn new(child: std::process::Child) -> ProcessChild {
        ProcessChild(child)
    }

    /// OS pid of the child process.
    pub fn id(&self) -> u32 {
        self.0.id()
    }
}

impl ChildHandle for ProcessChild {
    fn poll_exit(&mut self) -> io::Result<Option<i32>> {
        // A signal-terminated child has no code; map it to -1 (abnormal).
        Ok(self.0.try_wait()?.map(|s| s.code().unwrap_or(-1)))
    }
    fn kill(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// The checkpoint a resumed attempt should start from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResumePoint {
    pub step: u64,
    pub path: PathBuf,
}

/// Crash/hang supervisor (see the module docs).
#[derive(Debug, Clone)]
pub struct Supervisor {
    pub policy: RetryPolicy,
    /// Heartbeat silence after which a live child is declared hung.
    pub heartbeat_timeout_ms: u64,
    /// Poll cadence for exit status and heartbeat content.
    pub poll_interval_ms: u64,
    /// Exit codes that are never retried (e.g. usage errors).
    pub permanent_exit_codes: Vec<i32>,
    /// Where the incident log is written (typically `supervisor.json`).
    pub log_path: PathBuf,
    /// The heartbeat file the child writes to.
    pub heartbeat_path: PathBuf,
}

enum Verdict {
    Done,
    Failed(IncidentKind),
    Stopped(StopReason),
}

impl Supervisor {
    /// Drive attempts until one completes, a permanent failure occurs, or
    /// the retry budget runs out.
    ///
    /// * `spawn(attempt, resume)` launches attempt `attempt`, resuming
    ///   from `resume` when given (always `None` for attempt 0).
    /// * `resume_point()` queries the newest intact checkpoint — called
    ///   after each failure, so it sees exactly what the crashed attempt
    ///   managed to persist.
    ///
    /// Returns the final outcome plus the full incident log (also
    /// persisted to `log_path` after every state change).
    pub fn run<H: ChildHandle>(
        &self,
        spawn: impl FnMut(u32, Option<&ResumePoint>) -> io::Result<H>,
        resume_point: impl FnMut() -> Option<ResumePoint>,
    ) -> io::Result<(Outcome, IncidentLog)> {
        let (outcome, log) = self.run_with_abort(spawn, resume_point, || None)?;
        let outcome =
            outcome.ok_or_else(|| io::Error::other("run without an abort hook cannot detach"))?;
        Ok((outcome, log))
    }

    /// [`Supervisor::run`] with an external stop hook, polled at the same
    /// cadence as the heartbeat. When `abort` returns a [`StopReason`] the
    /// current child is killed; `Cancel` records [`Outcome::Canceled`]
    /// and returns it, `Detach` returns `None` with the log's outcome left
    /// at `"running"` so the run stays adoptable (the serve daemon's
    /// CANCEL and SHUTDOWN commands respectively).
    pub fn run_with_abort<H: ChildHandle>(
        &self,
        mut spawn: impl FnMut(u32, Option<&ResumePoint>) -> io::Result<H>,
        mut resume_point: impl FnMut() -> Option<ResumePoint>,
        abort: impl Fn() -> Option<StopReason>,
    ) -> io::Result<(Option<Outcome>, IncidentLog)> {
        let mut log = IncidentLog::default();
        let mut attempt: u32 = 0;
        let mut resume: Option<ResumePoint> = None;
        loop {
            // A beat left by the previous attempt must not count as life.
            let _ = std::fs::remove_file(&self.heartbeat_path);
            let mut child = spawn(attempt, resume.as_ref())?;
            let verdict = self.watch(&mut child, &abort)?;
            match verdict {
                Verdict::Stopped(StopReason::Cancel) => {
                    let outcome = Outcome::Canceled {
                        attempts: attempt + 1,
                    };
                    log.outcome = Some(outcome);
                    log.save(&self.log_path)?;
                    return Ok((Some(outcome), log));
                }
                Verdict::Stopped(StopReason::Detach) => {
                    // The rotation already holds this attempt's newest
                    // cadence checkpoint; a later supervisor resumes from
                    // it via `resume_point`.
                    log.save(&self.log_path)?;
                    return Ok((None, log));
                }
                Verdict::Done => {
                    let outcome = Outcome::Completed {
                        attempts: attempt + 1,
                    };
                    log.outcome = Some(outcome);
                    log.save(&self.log_path)?;
                    return Ok((Some(outcome), log));
                }
                Verdict::Failed(kind) => {
                    if let IncidentKind::Crash { exit_code } = kind {
                        if self.permanent_exit_codes.contains(&exit_code) {
                            let outcome = Outcome::Permanent { exit_code };
                            log.incidents.push(Incident {
                                attempt,
                                kind,
                                resumed_from_step: None,
                                backoff_ms: 0,
                            });
                            log.outcome = Some(outcome);
                            log.save(&self.log_path)?;
                            return Ok((Some(outcome), log));
                        }
                    }
                    if attempt >= self.policy.max_retries {
                        let outcome = Outcome::GaveUp {
                            attempts: attempt + 1,
                        };
                        log.incidents.push(Incident {
                            attempt,
                            kind,
                            resumed_from_step: None,
                            backoff_ms: 0,
                        });
                        log.outcome = Some(outcome);
                        log.save(&self.log_path)?;
                        return Ok((Some(outcome), log));
                    }
                    let backoff_ms = self.policy.backoff_ms(attempt);
                    resume = resume_point();
                    log.incidents.push(Incident {
                        attempt,
                        kind,
                        resumed_from_step: resume.as_ref().map(|r| r.step),
                        backoff_ms,
                    });
                    log.save(&self.log_path)?;
                    std::thread::sleep(Duration::from_millis(backoff_ms));
                    attempt += 1;
                }
            }
        }
    }

    /// Poll one attempt to a verdict: exit status wins, then an external
    /// stop request, then heartbeat staleness. Staleness is measured from
    /// spawn or the last *content change* of the heartbeat file, so the
    /// child must produce its first beat within the timeout too.
    fn watch<H: ChildHandle>(
        &self,
        child: &mut H,
        abort: &impl Fn() -> Option<StopReason>,
    ) -> io::Result<Verdict> {
        let timeout = Duration::from_millis(self.heartbeat_timeout_ms);
        let poll = Duration::from_millis(self.poll_interval_ms.max(1));
        let mut last_content: Option<String> = None;
        let mut last_change = Instant::now();
        loop {
            if let Some(code) = child.poll_exit()? {
                return Ok(if code == 0 {
                    Verdict::Done
                } else {
                    Verdict::Failed(IncidentKind::Crash { exit_code: code })
                });
            }
            if let Some(reason) = abort() {
                child.kill();
                return Ok(Verdict::Stopped(reason));
            }
            let content = std::fs::read_to_string(&self.heartbeat_path).ok();
            if content.is_some() && content != last_content {
                last_content = content;
                last_change = Instant::now();
            } else if last_change.elapsed() >= timeout {
                child.kill();
                return Ok(Verdict::Failed(IncidentKind::Hang {
                    stale_ms: last_change.elapsed().as_millis() as u64,
                }));
            }
            std::thread::sleep(poll);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "asura-sup-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn supervisor(dir: &Path, max_retries: u32, hb_timeout_ms: u64) -> Supervisor {
        Supervisor {
            policy: RetryPolicy {
                max_retries,
                backoff_base_ms: 1,
                backoff_cap_ms: 4,
            },
            heartbeat_timeout_ms: hb_timeout_ms,
            poll_interval_ms: 2,
            permanent_exit_codes: vec![2],
            log_path: dir.join("supervisor.json"),
            heartbeat_path: dir.join("heartbeat"),
        }
    }

    /// Fake child: exits with a scripted code after a few polls, or never
    /// exits (None) to simulate a hang.
    struct FakeChild {
        exit: Option<i32>,
        polls_left: u32,
        killed: Rc<RefCell<bool>>,
    }

    impl ChildHandle for FakeChild {
        fn poll_exit(&mut self) -> io::Result<Option<i32>> {
            match self.exit {
                Some(code) => {
                    if self.polls_left == 0 {
                        Ok(Some(code))
                    } else {
                        self.polls_left -= 1;
                        Ok(None)
                    }
                }
                None => Ok(None),
            }
        }
        fn kill(&mut self) {
            *self.killed.borrow_mut() = true;
        }
    }

    #[test]
    fn crash_then_success_records_one_incident_with_resume_step() {
        let dir = tmpdir("crash");
        let sup = supervisor(&dir, 3, 10_000);
        let exits = RefCell::new(vec![86, 0]);
        let spawned = RefCell::new(Vec::new());
        let (outcome, log) = sup
            .run(
                |attempt, resume| {
                    spawned.borrow_mut().push((attempt, resume.cloned()));
                    Ok(FakeChild {
                        exit: Some(exits.borrow_mut().remove(0)),
                        polls_left: 1,
                        killed: Rc::new(RefCell::new(false)),
                    })
                },
                || {
                    Some(ResumePoint {
                        step: 4,
                        path: dir.join("checkpoint-000004.bin"),
                    })
                },
            )
            .unwrap();
        assert_eq!(outcome, Outcome::Completed { attempts: 2 });
        assert_eq!(log.incidents.len(), 1);
        assert_eq!(log.incidents[0].kind, IncidentKind::Crash { exit_code: 86 });
        assert_eq!(log.incidents[0].resumed_from_step, Some(4));
        let spawned = spawned.borrow();
        assert_eq!(spawned[0].0, 0);
        assert!(spawned[0].1.is_none(), "attempt 0 starts fresh");
        assert_eq!(spawned[1].1.as_ref().unwrap().step, 4);
        // The persisted log round-trips.
        let text = std::fs::read_to_string(dir.join("supervisor.json")).unwrap();
        assert_eq!(IncidentLog::from_json(&text).unwrap(), log);
    }

    #[test]
    fn hang_is_detected_via_stale_heartbeat_and_child_is_killed() {
        let dir = tmpdir("hang");
        let sup = supervisor(&dir, 0, 30);
        let killed = Rc::new(RefCell::new(false));
        let killed2 = killed.clone();
        let (outcome, log) = sup
            .run(
                move |_, _| {
                    Ok(FakeChild {
                        exit: None,
                        polls_left: 0,
                        killed: killed2.clone(),
                    })
                },
                || None,
            )
            .unwrap();
        assert_eq!(outcome, Outcome::GaveUp { attempts: 1 });
        assert!(matches!(
            log.incidents[0].kind,
            IncidentKind::Hang { stale_ms } if stale_ms >= 30
        ));
        assert!(*killed.borrow(), "hung child must be killed");
    }

    #[test]
    fn fresh_heartbeats_keep_a_slow_child_alive() {
        let dir = tmpdir("beat");
        let sup = supervisor(&dir, 0, 40);
        let hb_path = sup.heartbeat_path.clone();
        // Child "runs" for ~8 polls, beating every poll, then exits 0 —
        // total runtime well past the 40ms timeout, but never stale.
        struct BeatingChild {
            hb: Heartbeat,
            polls_left: u32,
        }
        impl ChildHandle for BeatingChild {
            fn poll_exit(&mut self) -> io::Result<Option<i32>> {
                if self.polls_left == 0 {
                    return Ok(Some(0));
                }
                self.polls_left -= 1;
                std::thread::sleep(Duration::from_millis(15));
                self.hb.beat(self.polls_left as u64).unwrap();
                Ok(None)
            }
            fn kill(&mut self) {}
        }
        let (outcome, log) = sup
            .run(
                move |_, _| {
                    Ok(BeatingChild {
                        hb: Heartbeat::new(hb_path.clone()),
                        polls_left: 8,
                    })
                },
                || None,
            )
            .unwrap();
        assert_eq!(outcome, Outcome::Completed { attempts: 1 });
        assert!(log.incidents.is_empty(), "no incident for a live child");
    }

    #[test]
    fn permanent_exit_codes_are_not_retried() {
        let dir = tmpdir("permanent");
        let sup = supervisor(&dir, 5, 10_000);
        let spawns = RefCell::new(0u32);
        let (outcome, log) = sup
            .run(
                |_, _| {
                    *spawns.borrow_mut() += 1;
                    Ok(FakeChild {
                        exit: Some(2),
                        polls_left: 0,
                        killed: Rc::new(RefCell::new(false)),
                    })
                },
                || None,
            )
            .unwrap();
        assert_eq!(outcome, Outcome::Permanent { exit_code: 2 });
        assert_eq!(*spawns.borrow(), 1, "usage errors respawn nothing");
        assert_eq!(log.incidents.len(), 1);
    }

    #[test]
    fn retry_budget_is_bounded_and_backoff_grows() {
        let dir = tmpdir("budget");
        let sup = supervisor(&dir, 2, 10_000);
        let spawns = RefCell::new(0u32);
        let (outcome, log) = sup
            .run(
                |_, _| {
                    *spawns.borrow_mut() += 1;
                    Ok(FakeChild {
                        exit: Some(1),
                        polls_left: 0,
                        killed: Rc::new(RefCell::new(false)),
                    })
                },
                || None,
            )
            .unwrap();
        assert_eq!(outcome, Outcome::GaveUp { attempts: 3 });
        assert_eq!(*spawns.borrow(), 3, "attempt 0 + 2 retries");
        assert_eq!(log.incidents.len(), 3);
        assert!(
            log.incidents[1].backoff_ms >= log.incidents[0].backoff_ms,
            "exponential backoff"
        );
        let policy = RetryPolicy::default();
        assert_eq!(policy.backoff_ms(0), 500);
        assert_eq!(policy.backoff_ms(1), 1000);
        assert_eq!(policy.backoff_ms(10), 8000, "capped");
    }

    #[test]
    fn heartbeat_read_rejects_trailing_garbage() {
        let dir = tmpdir("hb-strict");
        let path = dir.join("heartbeat");
        let ok = |text: &str| {
            std::fs::write(&path, text).unwrap();
            Heartbeat::read(&path)
        };
        assert_eq!(ok("3 17\n"), Some((3, 17)));
        assert_eq!(ok("3 17"), Some((3, 17)), "trailing newline optional");
        assert_eq!(ok("3 17 junk\n"), None, "third token rejected");
        assert_eq!(ok("3 17\n4 18\n"), None, "second line rejected");
        assert_eq!(ok("3 17x\n"), None, "non-numeric suffix rejected");
        assert_eq!(ok("317\n"), None, "single token rejected");
        assert_eq!(ok(""), None, "empty file rejected");
        let mut hb = Heartbeat::new(&path);
        hb.beat(42).unwrap();
        assert_eq!(Heartbeat::read(&path), Some((1, 42)));
    }

    #[test]
    fn cancel_kills_child_and_records_canceled_outcome() {
        let dir = tmpdir("cancel");
        let sup = supervisor(&dir, 3, 10_000);
        let killed = Rc::new(RefCell::new(false));
        let killed2 = killed.clone();
        let (outcome, log) = sup
            .run_with_abort(
                move |_, _| {
                    Ok(FakeChild {
                        exit: None,
                        polls_left: 0,
                        killed: killed2.clone(),
                    })
                },
                || None,
                || Some(StopReason::Cancel),
            )
            .unwrap();
        assert_eq!(outcome, Some(Outcome::Canceled { attempts: 1 }));
        assert_eq!(log.outcome, Some(Outcome::Canceled { attempts: 1 }));
        assert!(*killed.borrow(), "canceled child must be killed");
        // The persisted log round-trips with the canceled outcome.
        let text = std::fs::read_to_string(dir.join("supervisor.json")).unwrap();
        assert_eq!(IncidentLog::from_json(&text).unwrap(), log);
    }

    #[test]
    fn detach_kills_child_but_leaves_log_running() {
        let dir = tmpdir("detach");
        let sup = supervisor(&dir, 3, 10_000);
        let killed = Rc::new(RefCell::new(false));
        let killed2 = killed.clone();
        let (outcome, log) = sup
            .run_with_abort(
                move |_, _| {
                    Ok(FakeChild {
                        exit: None,
                        polls_left: 0,
                        killed: killed2.clone(),
                    })
                },
                || None,
                || Some(StopReason::Detach),
            )
            .unwrap();
        assert_eq!(outcome, None, "detach is not a terminal outcome");
        assert_eq!(log.outcome, None);
        assert!(*killed.borrow(), "detached child must be killed");
        let text = std::fs::read_to_string(dir.join("supervisor.json")).unwrap();
        assert!(text.contains("\"outcome\":\"running\""), "stays adoptable");
    }

    #[test]
    fn incident_log_json_round_trips_every_variant() {
        let log = IncidentLog {
            incidents: vec![
                Incident {
                    attempt: 0,
                    kind: IncidentKind::Crash { exit_code: 86 },
                    resumed_from_step: Some(2),
                    backoff_ms: 500,
                },
                Incident {
                    attempt: 1,
                    kind: IncidentKind::Hang { stale_ms: 1200 },
                    resumed_from_step: None,
                    backoff_ms: 1000,
                },
            ],
            outcome: Some(Outcome::Completed { attempts: 3 }),
        };
        assert_eq!(IncidentLog::from_json(&log.to_json()).unwrap(), log);
        let running = IncidentLog::default();
        assert_eq!(IncidentLog::from_json(&running.to_json()).unwrap(), running);
    }
}
