//! Atomic, rotated checkpoint store.
//!
//! Every checkpoint the drivers write used to be a bare
//! `std::fs::write` over the live `checkpoint.*` — a crash mid-write
//! destroyed the only recovery point. This module replaces that with a
//! crash-safe store built from two pieces:
//!
//! * [`atomic_write`]: tmp-file → write → `fsync` → `rename`, so a file
//!   is either its complete old contents or its complete new contents,
//!   never a torn hybrid. Used for *every* output file (checkpoints,
//!   manifests, diagnostics, reports, incident logs).
//! * [`CkptStore`]: a rotation of the last `keep` stamped snapshots
//!   (`<base>-<step:06>.<ext>`) plus a checksummed JSON manifest
//!   (`<base>.manifest.json`). Commits prune the oldest entries beyond
//!   `keep`; [`CkptStore::latest_valid_with`] walks the rotation
//!   newest-first and returns the first entry that passes *all* of:
//!   file readable, length matches the manifest, FNV-1a checksum matches
//!   the manifest, and the payload decodes (the codec's own magic,
//!   version, and internal-checksum checks). Anything that fails is
//!   skipped, so a damaged newest checkpoint silently falls back to the
//!   previous one.
//!
//! The manifest records the *intended* length and checksum of each commit
//! (captured before any injected [`WriteFault`](crate::faults::WriteFault)
//! damage is applied), which is what makes storage-level corruption
//! detectable at read time. If the manifest itself is missing or fails
//! its own checksum, the store falls back to scanning the directory for
//! rotation-shaped file names and leans on payload decoding alone — a
//! corrupt manifest never strands an intact checkpoint.
//!
//! # Manifest schema
//!
//! ```json
//! {
//!   "format": "asura-ckpt-manifest",
//!   "version": 1,
//!   "base": "checkpoint",
//!   "entries": [
//!     {"file": "checkpoint-000004.bin", "step": 4,
//!      "len": 31240, "checksum": "fnv1a:8c5a1e0d9b2f4711"}
//!   ],
//!   "checksum": "fnv1a:..."  // FNV-1a over the serialized entries array
//! }
//! ```

use crate::faults::{apply_write_fault, FaultInjector};
use crate::snapshot::{fnv1a, DistSnapshot, SimSnapshot};
use std::fs::{self, File};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use unet::json::{parse_json, write_json, Json};

/// `format` field of the rotation manifest.
pub const MANIFEST_FORMAT: &str = "asura-ckpt-manifest";
/// Manifest schema version.
pub const MANIFEST_VERSION: u64 = 1;
/// Default rotation depth.
pub const DEFAULT_KEEP: usize = 3;

/// Checkpoint encoding, selecting the snapshot codec and file extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CkptFormat {
    Bin,
    Json,
}

impl CkptFormat {
    pub fn ext(self) -> &'static str {
        match self {
            CkptFormat::Bin => "bin",
            CkptFormat::Json => "json",
        }
    }
}

/// Write `bytes` to `path` atomically: the data lands in a hidden
/// temporary file in the same directory, is flushed to stable storage
/// (`fsync`), and is then `rename`d over the destination — readers see
/// either the complete old file or the complete new file, never a torn
/// mix. The directory is fsynced best-effort afterwards so the rename
/// itself survives power loss.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::other(format!("no file name in `{}`", path.display())))?
        .to_string_lossy()
        .into_owned();
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let tmp = dir.join(format!(".{file_name}.{}.tmp", std::process::id()));
    let result = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result?;
    if let Ok(d) = File::open(&dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// One rotation entry as recorded in the manifest: the file name relative
/// to the store directory, the step it captures, and the intended length
/// and FNV-1a checksum of its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CkptEntry {
    pub file: String,
    pub step: u64,
    pub len: u64,
    pub checksum: u64,
}

/// A rotated checkpoint store rooted at a directory. All files it owns
/// share a `base` name: rotation entries are `<base>-<step:06>.<ext>`,
/// the manifest is `<base>.manifest.json`. See the module docs for the
/// validation walk.
#[derive(Debug, Clone)]
pub struct CkptStore {
    dir: PathBuf,
    base: String,
    keep: usize,
}

impl CkptStore {
    /// Store under `dir` with the default base name `checkpoint`.
    pub fn new(dir: impl Into<PathBuf>, keep: usize) -> CkptStore {
        CkptStore::with_base(dir, "checkpoint", keep)
    }

    /// Store under `dir` with an explicit base name (the dist driver uses
    /// `dist_checkpoint` so both stores can share a run directory).
    pub fn with_base(dir: impl Into<PathBuf>, base: impl Into<String>, keep: usize) -> CkptStore {
        CkptStore {
            dir: dir.into(),
            base: base.into(),
            keep: keep.max(1),
        }
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn base(&self) -> &str {
        &self.base
    }

    pub fn keep(&self) -> usize {
        self.keep
    }

    /// Path of the rotation manifest.
    pub fn manifest_path(&self) -> PathBuf {
        self.dir.join(format!("{}.manifest.json", self.base))
    }

    /// Absolute path of a rotation entry.
    pub fn entry_path(&self, entry: &CkptEntry) -> PathBuf {
        self.dir.join(&entry.file)
    }

    fn entry_file(&self, step: u64, format: CkptFormat) -> String {
        format!("{}-{step:06}.{}", self.base, format.ext())
    }

    /// Commit one snapshot payload for `step`: apply any armed write
    /// fault (torn/corrupt damage the committed bytes, a synthetic I/O
    /// fault fails the commit), write the entry atomically, then update
    /// the manifest and prune the rotation to the newest `keep` entries.
    /// The manifest records the *intended* length/checksum, so injected
    /// damage is detectable at read time. Returns the entry path.
    pub fn commit_bytes(
        &self,
        step: u64,
        format: CkptFormat,
        bytes: Vec<u8>,
        faults: &mut FaultInjector,
    ) -> io::Result<PathBuf> {
        fs::create_dir_all(&self.dir)?;
        let intended_len = bytes.len() as u64;
        let intended_checksum = fnv1a(&bytes);
        let mut payload = bytes;
        if let Some(fault) = faults.on_commit() {
            eprintln!("[fault] checkpoint commit {}: {fault}", faults.commits());
            apply_write_fault(fault, &mut payload)?;
        }
        let file = self.entry_file(step, format);
        let path = self.dir.join(&file);
        atomic_write(&path, &payload)?;

        let mut entries = self.entries_oldest_first();
        entries.retain(|e| e.file != file);
        entries.push(CkptEntry {
            file,
            step,
            len: intended_len,
            checksum: intended_checksum,
        });
        entries.sort_by(|a, b| a.step.cmp(&b.step).then_with(|| a.file.cmp(&b.file)));
        while entries.len() > self.keep {
            let dropped = entries.remove(0);
            // A co-located process (or an earlier crashed prune) may have
            // already removed the file; only that case is benign.
            match fs::remove_file(self.dir.join(&dropped.file)) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        self.write_manifest(&entries)?;
        Ok(path)
    }

    /// Encode and commit a shared-memory snapshot.
    pub fn commit_sim(
        &self,
        snap: &SimSnapshot,
        format: CkptFormat,
        faults: &mut FaultInjector,
    ) -> io::Result<PathBuf> {
        let bytes = match format {
            CkptFormat::Bin => snap.to_bytes(),
            CkptFormat::Json => snap.to_json().into_bytes(),
        };
        self.commit_bytes(snap.step_count, format, bytes, faults)
    }

    /// Encode and commit a distributed snapshot.
    pub fn commit_dist(
        &self,
        snap: &DistSnapshot,
        format: CkptFormat,
        faults: &mut FaultInjector,
    ) -> io::Result<PathBuf> {
        let bytes = match format {
            CkptFormat::Bin => snap.to_bytes(),
            CkptFormat::Json => snap.to_json().into_bytes(),
        };
        self.commit_bytes(snap.step, format, bytes, faults)
    }

    /// Rotation entries, newest-first: from the manifest when it is
    /// present and passes its own checksum, otherwise by scanning the
    /// directory for rotation-shaped file names (in which case lengths
    /// and checksums are recomputed from the files themselves, and
    /// payload decoding is the only real validation left).
    pub fn entries(&self) -> Vec<CkptEntry> {
        let mut entries = self.entries_oldest_first();
        entries.reverse();
        entries
    }

    fn entries_oldest_first(&self) -> Vec<CkptEntry> {
        let mut entries = self.read_manifest().unwrap_or_else(|| self.scan_dir());
        entries.sort_by(|a, b| a.step.cmp(&b.step).then_with(|| a.file.cmp(&b.file)));
        entries
    }

    /// Walk the rotation newest-first and return the first entry whose
    /// payload is intact: readable, length and FNV-1a checksum matching
    /// the manifest, and accepted by `decode`. Damaged or missing entries
    /// are skipped — this is the auto-resume fallback.
    pub fn latest_valid_with<T>(
        &self,
        mut decode: impl FnMut(&[u8]) -> Option<T>,
    ) -> Option<(CkptEntry, T)> {
        for entry in self.entries() {
            let Ok(bytes) = fs::read(self.entry_path(&entry)) else {
                continue;
            };
            if bytes.len() as u64 != entry.len || fnv1a(&bytes) != entry.checksum {
                continue;
            }
            if let Some(value) = decode(&bytes) {
                return Some((entry, value));
            }
        }
        None
    }

    /// Newest intact shared-memory snapshot in the rotation.
    pub fn latest_valid_sim(&self) -> Option<(CkptEntry, SimSnapshot)> {
        self.latest_valid_with(|bytes| SimSnapshot::decode(bytes).ok())
    }

    /// Newest intact distributed snapshot in the rotation.
    pub fn latest_valid_dist(&self) -> Option<(CkptEntry, DistSnapshot)> {
        self.latest_valid_with(|bytes| DistSnapshot::decode(bytes).ok())
    }

    // -- manifest ---------------------------------------------------------

    /// Canonical rendering of the entries array — integers are written
    /// plain (not as `f64`), and the manifest's self-checksum is defined
    /// over exactly this text, so reading re-renders parsed entries
    /// through the same function before comparing.
    fn render_entries(entries: &[CkptEntry]) -> String {
        let mut out = String::from("[");
        for (i, e) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"file\":");
            write_json(&Json::Str(e.file.clone()), &mut out);
            out.push_str(&format!(
                ",\"step\":{},\"len\":{},\"checksum\":\"fnv1a:{:016x}\"}}",
                e.step, e.len, e.checksum
            ));
        }
        out.push(']');
        out
    }

    fn write_manifest(&self, entries: &[CkptEntry]) -> io::Result<()> {
        let entries_text = Self::render_entries(entries);
        let mut text = String::from("{\"format\":");
        write_json(&Json::Str(MANIFEST_FORMAT.into()), &mut text);
        text.push_str(&format!(",\"version\":{MANIFEST_VERSION},\"base\":"));
        write_json(&Json::Str(self.base.clone()), &mut text);
        text.push_str(&format!(
            ",\"entries\":{entries_text},\"checksum\":\"fnv1a:{:016x}\"}}\n",
            fnv1a(entries_text.as_bytes())
        ));
        atomic_write(&self.manifest_path(), text.as_bytes())
    }

    /// Parse and validate the manifest. `None` on any failure (missing,
    /// unparseable, wrong format/version, self-checksum mismatch,
    /// malformed entry) — the caller then falls back to the dir scan.
    fn read_manifest(&self) -> Option<Vec<CkptEntry>> {
        let text = fs::read_to_string(self.manifest_path()).ok()?;
        let doc = parse_json(&text).ok()?;
        match doc.get("format").ok()? {
            Json::Str(s) if s == MANIFEST_FORMAT => {}
            _ => return None,
        }
        if doc.get("version").ok()?.as_usize().ok()? != MANIFEST_VERSION as usize {
            return None;
        }
        let Json::Arr(items) = doc.get("entries").ok()? else {
            return None;
        };
        let mut entries = Vec::with_capacity(items.len());
        for item in items {
            entries.push(CkptEntry {
                file: match item.get("file").ok()? {
                    Json::Str(s) => s.clone(),
                    _ => return None,
                },
                step: item.get("step").ok()?.as_usize().ok()? as u64,
                len: item.get("len").ok()?.as_usize().ok()? as u64,
                checksum: parse_checksum(item.get("checksum").ok()?)?,
            });
        }
        // The self-checksum is defined over the canonical rendering, so
        // re-render the parsed entries rather than hashing raw file text.
        let canonical = Self::render_entries(&entries);
        if parse_checksum(doc.get("checksum").ok()?)? != fnv1a(canonical.as_bytes()) {
            return None;
        }
        Some(entries)
    }

    /// Recover rotation entries from file names alone: anything matching
    /// `<base>-<digits>.<bin|json>` in the store directory. Length and
    /// checksum come from the file contents, so only payload decoding can
    /// reject a damaged entry on this path.
    fn scan_dir(&self) -> Vec<CkptEntry> {
        let Ok(rd) = fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let prefix = format!("{}-", self.base);
        let mut entries = Vec::new();
        for dent in rd.flatten() {
            let name = dent.file_name().to_string_lossy().into_owned();
            let Some(rest) = name.strip_prefix(&prefix) else {
                continue;
            };
            let Some((digits, ext)) = rest.split_once('.') else {
                continue;
            };
            if !(ext == "bin" || ext == "json") || digits.is_empty() {
                continue;
            }
            let Ok(step) = digits.parse::<u64>() else {
                continue;
            };
            let Ok(bytes) = fs::read(dent.path()) else {
                continue;
            };
            entries.push(CkptEntry {
                file: name,
                step,
                len: bytes.len() as u64,
                checksum: fnv1a(&bytes),
            });
        }
        entries
    }
}

fn parse_checksum(v: &Json) -> Option<u64> {
    match v {
        Json::Str(s) => u64::from_str_radix(s.strip_prefix("fnv1a:")?, 16).ok(),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "asura-ckpt-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn store(tag: &str, keep: usize) -> CkptStore {
        CkptStore::new(tmpdir(tag), keep)
    }

    /// Commit raw payloads with a trivial "decode" that accepts payloads
    /// starting with `OK`.
    fn ok_decode(bytes: &[u8]) -> Option<Vec<u8>> {
        bytes.starts_with(b"OK").then(|| bytes.to_vec())
    }

    #[test]
    fn rotation_prunes_to_keep_and_walks_newest_first() {
        let st = store("rotate", 2);
        let mut inj = FaultInjector::none();
        for step in [2u64, 4, 6] {
            st.commit_bytes(
                step,
                CkptFormat::Bin,
                format!("OK step {step}").into_bytes(),
                &mut inj,
            )
            .unwrap();
        }
        let entries = st.entries();
        assert_eq!(
            entries.iter().map(|e| e.step).collect::<Vec<_>>(),
            vec![6, 4],
            "oldest entry pruned, newest first"
        );
        assert!(
            !st.dir().join("checkpoint-000002.bin").exists(),
            "pruned file deleted"
        );
        let (entry, payload) = st.latest_valid_with(ok_decode).unwrap();
        assert_eq!(entry.step, 6);
        assert_eq!(payload, b"OK step 6");
    }

    #[test]
    fn pruning_tolerates_already_missing_files() {
        let st = store("prune-missing", 2);
        let mut inj = FaultInjector::none();
        st.commit_bytes(1, CkptFormat::Bin, b"OK one".to_vec(), &mut inj)
            .unwrap();
        st.commit_bytes(2, CkptFormat::Bin, b"OK two".to_vec(), &mut inj)
            .unwrap();
        // Someone else already deleted the entry the next commit will
        // prune — the commit must not fail on the NotFound.
        fs::remove_file(st.dir().join("checkpoint-000001.bin")).unwrap();
        st.commit_bytes(3, CkptFormat::Bin, b"OK three".to_vec(), &mut inj)
            .unwrap();
        assert_eq!(
            st.entries().iter().map(|e| e.step).collect::<Vec<_>>(),
            vec![3, 2]
        );
    }

    #[test]
    fn damaged_newest_falls_back_to_previous_entry() {
        let st = store("fallback", 3);
        let mut inj = FaultInjector::none();
        st.commit_bytes(1, CkptFormat::Bin, b"OK one".to_vec(), &mut inj)
            .unwrap();
        st.commit_bytes(2, CkptFormat::Bin, b"OK two".to_vec(), &mut inj)
            .unwrap();
        // Corrupt the newest entry on disk (bypassing the store).
        let newest = st.dir().join("checkpoint-000002.bin");
        fs::write(&newest, b"XX two").unwrap();
        let (entry, payload) = st.latest_valid_with(ok_decode).unwrap();
        assert_eq!(entry.step, 1, "checksum mismatch skips to previous");
        assert_eq!(payload, b"OK one");
    }

    #[test]
    fn injected_torn_and_corrupt_commits_are_skipped() {
        let st = store("faults", 4);
        let plan = FaultPlan::parse("torn@2:3,corrupt@3:1").unwrap();
        let mut inj = FaultInjector::from_plan(&plan, 0);
        st.commit_bytes(1, CkptFormat::Bin, b"OK aaaa".to_vec(), &mut inj)
            .unwrap();
        st.commit_bytes(2, CkptFormat::Bin, b"OK bbbb".to_vec(), &mut inj)
            .unwrap();
        st.commit_bytes(3, CkptFormat::Bin, b"OK cccc".to_vec(), &mut inj)
            .unwrap();
        assert_eq!(
            fs::read(st.dir().join("checkpoint-000002.bin")).unwrap(),
            b"OK ",
            "torn"
        );
        let (entry, _) = st.latest_valid_with(ok_decode).unwrap();
        assert_eq!(entry.step, 1, "both damaged commits skipped");
    }

    #[test]
    fn injected_io_fault_fails_the_commit_but_keeps_the_store_intact() {
        let st = store("io", 3);
        let plan = FaultPlan::parse("io@2").unwrap();
        let mut inj = FaultInjector::from_plan(&plan, 0);
        st.commit_bytes(1, CkptFormat::Bin, b"OK one".to_vec(), &mut inj)
            .unwrap();
        let err = st
            .commit_bytes(2, CkptFormat::Bin, b"OK two".to_vec(), &mut inj)
            .unwrap_err();
        assert!(err.to_string().contains("injected"));
        let (entry, _) = st.latest_valid_with(ok_decode).unwrap();
        assert_eq!(entry.step, 1);
    }

    #[test]
    fn corrupt_manifest_falls_back_to_dir_scan() {
        let st = store("manifest", 3);
        let mut inj = FaultInjector::none();
        st.commit_bytes(5, CkptFormat::Json, b"OK json".to_vec(), &mut inj)
            .unwrap();
        fs::write(st.manifest_path(), b"{ not json").unwrap();
        let (entry, payload) = st.latest_valid_with(ok_decode).unwrap();
        assert_eq!(entry.step, 5);
        assert_eq!(payload, b"OK json");
        // Missing manifest too.
        fs::remove_file(st.manifest_path()).unwrap();
        assert_eq!(st.latest_valid_with(ok_decode).unwrap().0.step, 5);
    }

    #[test]
    fn recommit_of_same_step_replaces_the_entry() {
        let st = store("recommit", 3);
        let mut inj = FaultInjector::none();
        st.commit_bytes(4, CkptFormat::Bin, b"OK old".to_vec(), &mut inj)
            .unwrap();
        st.commit_bytes(4, CkptFormat::Bin, b"OK new".to_vec(), &mut inj)
            .unwrap();
        let entries = st.entries();
        assert_eq!(entries.len(), 1);
        let (_, payload) = st.latest_valid_with(ok_decode).unwrap();
        assert_eq!(payload, b"OK new");
    }

    #[test]
    fn atomic_write_replaces_contents_and_cleans_tmp() {
        let dir = tmpdir("atomic");
        let path = dir.join("out.json");
        atomic_write(&path, b"first").unwrap();
        atomic_write(&path, b"second").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|d| d.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "no tmp files left behind");
    }
}
