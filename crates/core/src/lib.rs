//! # asura-core — the ASURA-FDPS-ML simulation driver
//!
//! The paper's primary contribution (§3.2): an N-body/SPH galaxy
//! integrator whose supernovae are bypassed by a surrogate model, enabling
//! a **fixed global timestep** where conventional codes are forced into
//! tiny CFL-limited adaptive steps.
//!
//! Two schemes are implemented side by side:
//!
//! * [`Scheme::Surrogate`] — the paper's method: SNe identified each step,
//!   their (60 pc)^3 regions shipped to *pool* workers, predictions applied
//!   50 global steps later by particle ID, while the main integration never
//!   sees the feedback energy directly.
//! * [`Scheme::Conventional`] — the baseline: thermal energy injection and
//!   a CFL-adaptive shared timestep, which collapses after every SN
//!   (paper §5.3 measures the resulting 10x step-count penalty).
//!
//! [`sim::Simulation`] is the shared-memory driver (rayon-parallel);
//! [`dist`] runs the same scheme across `mpisim` ranks with the paper's
//! main/pool communicator split and phase-timing breakdown.
//!
//! ## Snapshots & CLI
//!
//! The [`snapshot`] module provides versioned, checksummed checkpoint
//! serialization (compact binary and inspectable JSON) of the complete
//! driver state; [`Simulation::snapshot`]/[`Simulation::restore`] and the
//! distributed [`dist::DistSnapshot`]/[`dist::run_distributed_resume`] pair
//! guarantee that a restored run continues bit-for-bit identically to one
//! that never stopped — including with SN-region predictions still in
//! flight in the pool queue. Periodic checkpointing is driven by
//! [`SimConfig::snapshot_every`]; the `asura` scenario-runner binary (in
//! the workspace root package) exposes the registered scenarios, snapshot
//! cadence, `--resume`, and a diagnostics time-series writer from one
//! command line. The snapshot format version policy lives in the
//! [`snapshot`] module docs.
//!
//! ## Crash safety & supervision
//!
//! On top of the snapshot codecs sit three modules that make long runs
//! survivable: [`ckpt`] (atomic tmp→fsync→rename writes and a rotated,
//! manifest-checksummed checkpoint store whose
//! [`latest_valid`](ckpt::CkptStore::latest_valid_sim) walk skips damaged
//! entries), [`supervise`] (a heartbeat-watching parent that detects
//! crashes and hangs and auto-resumes from the newest intact checkpoint
//! under a bounded retry budget, logging every incident to
//! `supervisor.json`), and [`faults`] (a deterministic, attempt-scoped
//! fault-injection plan — kills, stalls, torn/corrupt/failed checkpoint
//! writes — so the recovery paths are exercised by tests and CI rather
//! than trusted). `asura run <scenario> --supervised` wires all three
//! together.
//!
//! ## Serving a fleet
//!
//! [`serve`] turns the one-shot CLI into a simulation-as-a-service daemon:
//! a TCP line protocol (`SUBMIT`/`STATUS`/`LIST`/`WATCH`/`CANCEL`/
//! `SHUTDOWN`) in front of a persistent run registry (`fleet.json`) and a
//! bounded-concurrency job queue whose workers spawn each run as a
//! supervised child process — so every fleet run inherits the crash/hang
//! recovery above, and a killed daemon restarts by re-adopting its
//! registry. `asura serve` (plus the `submit`/`status`/`watch`/… client
//! subcommands) is the CLI frontend.

#![forbid(unsafe_code)]

pub mod blocksteps;
pub mod ckpt;
pub mod config;
pub mod diagnostics;
pub mod dist;
pub mod faults;
pub mod forces;
pub mod particle;
pub mod phases;
pub mod pool;
pub mod runs;
pub mod scheduler;
pub mod serve;
pub mod sim;
pub mod snapshot;
pub mod supervise;

pub use forces::ForceBuffers;

pub use blocksteps::BlockSchedule;
pub use ckpt::{atomic_write, CkptEntry, CkptFormat, CkptStore};
pub use config::{Scheme, SimConfig, TimestepMode};
pub use faults::{FaultInjector, FaultPlan, FAULT_KILL_EXIT};
pub use particle::{Kind, Particle};
pub use pool::{PoolPredictor, SedovOverlayPredictor};
pub use scheduler::ActiveScheduler;
pub use serve::{Fleet, RunOverrides, RunState, ScenarioMeta, ServeConfig};
pub use sim::{SimStats, Simulation};
pub use snapshot::{SimSnapshot, SnapshotError};
pub use supervise::{Heartbeat, IncidentLog, RetryPolicy, Supervisor};
