//! Simulation configuration.

/// Which SN-handling scheme drives the timestep (paper §3.2 vs §5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Fixed global timestep; SN regions handled by the surrogate with a
    /// 50-step latency.
    Surrogate,
    /// Direct thermal injection; CFL-adaptive shared timestep.
    Conventional,
}

/// How the integrator advances time within one global step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimestepMode {
    /// One shared timestep for every particle (the paper's §3.2 loop; in
    /// the conventional scheme the shared dt is CFL-adaptive, §5.3).
    Global,
    /// Hierarchical block (power-of-two individual) timesteps: particles
    /// are binned into levels below the base step and only the active
    /// subset is updated per fine substep — the conventional machinery the
    /// paper's surrogate scheme replaces (§1, §5.3). Levels are capped at
    /// `max_level`, i.e. the finest substep is `dt_global / 2^max_level`.
    Block { max_level: u32 },
}

/// Driver parameters; defaults follow the paper where it gives numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    pub scheme: Scheme,
    /// Timestep hierarchy driving the conventional scheme's integration
    /// loop. The surrogate scheme ignores this: its whole point is the
    /// fixed global step, so it never leaves `Global` mode.
    pub timestep: TimestepMode,
    /// Global timestep \[Myr\] (paper: 2,000 yr = 2e-3 Myr).
    pub dt_global: f64,
    /// Barnes–Hut opening angle.
    pub theta: f64,
    /// Interaction-list group size (paper n_g; scaled down for tests).
    pub n_group: usize,
    /// Gravitational softening \[pc\].
    pub eps: f64,
    /// SPH target neighbour count.
    pub n_ngb: usize,
    /// SN region cube side \[pc\] (paper: 60).
    pub region_side: f64,
    /// Steps of pool-node latency (paper: 50; the prediction horizon
    /// `50 * dt_global` = 0.1 Myr at the paper's dt).
    pub pool_latency_steps: usize,
    /// Enable radiative cooling/heating.
    pub cooling: bool,
    /// Enable star formation.
    pub star_formation: bool,
    /// Courant factor for the conventional scheme.
    pub cfl: f64,
    /// Floor on the adaptive timestep \[Myr\].
    pub dt_min: f64,
    /// Use the mixed-precision gravity kernel.
    pub mixed_precision: bool,
    /// Star-formation density threshold \[M_sun/pc^3\]. The paper-physical
    /// value (~3.2, i.e. ~100 cm^-3) suits star-by-star resolution;
    /// coarse-resolution runs lower it.
    pub sf_rho_min: f64,
    /// Star-formation temperature ceiling \[K\].
    pub sf_t_max: f64,
    /// Star-formation efficiency per free-fall time.
    pub sf_efficiency: f64,
    /// Checkpoint cadence in steps: every `snapshot_every`-th completed
    /// step [`Simulation::run_with_snapshots`](crate::sim::Simulation::run_with_snapshots)
    /// hands the caller a [`SimSnapshot`](crate::snapshot::SimSnapshot)
    /// (and the distributed driver gathers a
    /// [`DistSnapshot`](crate::dist::DistSnapshot)). `0` disables periodic
    /// checkpointing.
    pub snapshot_every: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            scheme: Scheme::Surrogate,
            timestep: TimestepMode::Global,
            dt_global: 2.0e-3,
            theta: 0.5,
            n_group: 64,
            eps: 3.0,
            n_ngb: 32,
            region_side: 60.0,
            pool_latency_steps: 50,
            cooling: true,
            star_formation: true,
            cfl: 0.3,
            dt_min: 1.0e-6,
            mixed_precision: false,
            sf_rho_min: 3.2,
            sf_t_max: 100.0,
            sf_efficiency: 0.02,
            snapshot_every: 0,
        }
    }
}

impl SimConfig {
    /// Prediction horizon of the surrogate \[Myr\].
    pub fn horizon(&self) -> f64 {
        self.pool_latency_steps as f64 * self.dt_global
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = SimConfig::default();
        assert_eq!(c.dt_global, 2.0e-3); // 2,000 yr
        assert_eq!(c.timestep, TimestepMode::Global);
        assert_eq!(c.pool_latency_steps, 50);
        assert_eq!(c.region_side, 60.0);
        // 50 steps * 2,000 yr = 0.1 Myr, the paper's prediction horizon.
        assert!((c.horizon() - 0.1).abs() < 1e-12);
    }
}
