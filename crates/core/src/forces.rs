//! The force-evaluation scratch arena.
//!
//! [`ForceBuffers`] owns every per-step staging buffer of the force
//! pipeline: the global SoA snapshot (`pos`, `mass`) fed to the gravity
//! tree, the result arrays (`acc`, `pot`, `dudt`), the gas subset index,
//! the SoA hydro state (which carries the gas `pos`/`vel`/`mass`/`u`/`h`
//! snapshots), and the SPH staging scratch. All of them are refreshed
//! **in place** — cleared and re-extended, never re-collected — so after a
//! warm-up step the arena's capacities stabilize and steady-state stepping
//! performs zero heap growth here. [`ForceBuffers::capacity_signature`]
//! exposes the capacities so regression tests can assert exactly that.
//!
//! Downstream of this arena the solvers stage per *worker*, not per step:
//! the gravity solver packs each interaction list into SoA `GroupScratch`
//! for the runtime-dispatched SIMD monopole kernels, and the SPH solver
//! carries a candidate `NeighborCache` (shared across the h-iteration)
//! plus a `ForceBatch` per worker. Those live inside the solvers'
//! `map_init` closures — worker-lifetime scratch, reused across every
//! item a worker processes — which is why they do not appear in the
//! capacity signature: they are not per-step state and never travel
//! through snapshots.

use crate::particle::Particle;
use fdps::walk::WalkIndex;
use fdps::{Tree, Vec3};
use sph::solver::{HydroState, SphScratch};

/// Sentinel in [`ForceBuffers::gas_local`] marking a non-gas particle.
pub const NOT_GAS: u32 = u32::MAX;

/// Reusable buffers for one simulation's force evaluations.
#[derive(Debug, Clone, Default)]
pub struct ForceBuffers {
    /// Positions of all particles, refreshed each evaluation.
    pub pos: Vec<Vec3>,
    /// Masses of all particles, refreshed each evaluation.
    pub mass: Vec<f64>,
    /// Total acceleration (gravity, then SPH added on the gas subset).
    pub acc: Vec<Vec3>,
    /// Gravitational potential (filled by the gravity solver; kept for
    /// energy audits).
    pub pot: Vec<f64>,
    /// du/dt on the gas subset, zero elsewhere.
    pub dudt: Vec<f64>,
    /// Indices of gas particles into the particle array.
    pub gas_idx: Vec<usize>,
    /// Inverse of `gas_idx`: particle index → hydro-local index, or
    /// [`NOT_GAS`] for collisionless species.
    pub gas_local: Vec<u32>,
    /// SoA hydro state over the gas subset (holds the gas `pos`, `vel`,
    /// `mass`, `u`, `h` snapshots plus derived arrays).
    pub hydro: HydroState,
    /// SPH staging buffers (search radii, targets, hydro inputs) plus the
    /// cached SPH neighbor tree (`sph::solver::SphTreeCache`): rebuilt by
    /// each density pass on base steps, moment-refreshed by force and
    /// substep passes — the hydro counterpart of `tree`/`walk_index`
    /// below.
    pub sph: SphScratch,
    /// Per-particle desired timestep \[Myr\], input to the level assignment
    /// (block-timestep mode).
    pub dt_wanted: Vec<f64>,
    /// Active particle indices of the current substep boundary.
    pub active: Vec<u32>,
    /// Per-particle active flags mirroring `active` (O(1) membership for
    /// the solvers); reset entry-by-entry, never re-filled wholesale.
    pub active_mask: Vec<bool>,
    /// Hydro-local indices of the active gas particles.
    pub active_gas: Vec<usize>,
    /// Gravity tree cached across substeps: full rebuild on base steps,
    /// moment-only [`Tree::refresh`] on fine substeps (until the drift
    /// bound trips).
    pub tree: Option<Tree>,
    /// Compact walk index paired with `tree`: rebuilt (storage reused) on
    /// full tree builds, [`WalkIndex::refresh`]ed in place on moment-only
    /// refreshes — never reconstructed per force evaluation.
    pub walk_index: Option<WalkIndex>,
    /// Position snapshot at the last full tree build, for the drift bound.
    pub tree_ref_pos: Vec<Vec3>,
}

impl ForceBuffers {
    /// Refresh the global SoA snapshot and the gas index in place.
    pub fn refresh(&mut self, particles: &[Particle]) {
        self.pos.clear();
        self.mass.clear();
        self.gas_idx.clear();
        self.gas_local.clear();
        for (i, p) in particles.iter().enumerate() {
            self.pos.push(p.pos);
            self.mass.push(p.mass);
            if p.is_gas() {
                self.gas_local.push(self.gas_idx.len() as u32);
                self.gas_idx.push(i);
            } else {
                self.gas_local.push(NOT_GAS);
            }
        }
        let n = particles.len();
        self.dudt.clear();
        self.dudt.resize(n, 0.0);
    }

    /// Refresh the gas SoA hydro state from the current particle data
    /// (requires [`ForceBuffers::refresh`] to have filled `gas_idx`).
    pub fn refresh_hydro(&mut self, particles: &[Particle]) {
        let hs = &mut self.hydro;
        hs.pos.clear();
        hs.vel.clear();
        hs.mass.clear();
        hs.u.clear();
        hs.h.clear();
        for &i in &self.gas_idx {
            let p = &particles[i];
            hs.pos.push(p.pos);
            hs.vel.push(p.vel);
            hs.mass.push(p.mass);
            hs.u.push(p.u);
            hs.h.push(p.h.max(1e-3));
        }
        hs.resize_derived();
    }

    /// Capacities of every owned buffer, in a fixed order. Steady-state
    /// stepping must leave this signature unchanged — the zero-allocation
    /// regression tests compare it before and after.
    pub fn capacity_signature(&self) -> Vec<usize> {
        let hs = &self.hydro;
        let mut sig = vec![
            self.pos.capacity(),
            self.mass.capacity(),
            self.acc.capacity(),
            self.pot.capacity(),
            self.dudt.capacity(),
            self.gas_idx.capacity(),
            self.gas_local.capacity(),
            hs.pos.capacity(),
            hs.vel.capacity(),
            hs.mass.capacity(),
            hs.u.capacity(),
            hs.h.capacity(),
            hs.rho.capacity(),
            hs.acc.capacity(),
            hs.dudt.capacity(),
            hs.cs.capacity(),
            hs.v_sig.capacity(),
            hs.n_ngb.capacity(),
            self.dt_wanted.capacity(),
            self.active.capacity(),
            self.active_mask.capacity(),
            self.active_gas.capacity(),
            self.tree_ref_pos.capacity(),
        ];
        sig.extend(self.sph.capacities());
        sig
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::particle::Particle;

    fn mixed_particles(n: usize) -> Vec<Particle> {
        (0..n)
            .map(|i| {
                let pos = Vec3::new(i as f64, 0.0, 0.0);
                if i % 3 == 0 {
                    Particle::gas(i as u64, pos, Vec3::ZERO, 1.0, 1.0, 2.0)
                } else {
                    Particle::dm(i as u64, pos, Vec3::ZERO, 5.0)
                }
            })
            .collect()
    }

    #[test]
    fn refresh_tracks_particles_and_gas_subset() {
        let particles = mixed_particles(30);
        let mut bufs = ForceBuffers::default();
        bufs.refresh(&particles);
        assert_eq!(bufs.pos.len(), 30);
        assert_eq!(bufs.mass.len(), 30);
        assert_eq!(bufs.dudt.len(), 30);
        assert_eq!(bufs.gas_idx.len(), 10);
        assert!(bufs.gas_idx.iter().all(|&i| particles[i].is_gas()));
        // gas_local is the exact inverse of gas_idx.
        assert_eq!(bufs.gas_local.len(), 30);
        for (i, &k) in bufs.gas_local.iter().enumerate() {
            if particles[i].is_gas() {
                assert_eq!(bufs.gas_idx[k as usize], i);
            } else {
                assert_eq!(k, NOT_GAS);
            }
        }
        bufs.refresh_hydro(&particles);
        assert_eq!(bufs.hydro.len(), 10);
        assert_eq!(bufs.hydro.rho.len(), 10);
    }

    #[test]
    fn repeated_refresh_does_not_grow_capacities() {
        let particles = mixed_particles(100);
        let mut bufs = ForceBuffers::default();
        bufs.refresh(&particles);
        bufs.refresh_hydro(&particles);
        let sig = bufs.capacity_signature();
        for _ in 0..5 {
            bufs.refresh(&particles);
            bufs.refresh_hydro(&particles);
        }
        assert_eq!(bufs.capacity_signature(), sig);
    }
}
