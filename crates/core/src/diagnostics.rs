//! Run diagnostics: surface-density maps (Fig. 5), energy audits, star
//! formation rates, phase-space histograms used by the validation
//! experiments, and the [`TimeSeries`] writer behind the `asura` CLI's
//! per-run diagnostics JSON.

use crate::particle::Particle;
use crate::sim::Simulation;
use fdps::Vec3;
use unet::json::{write_json, Json};

/// A 2-D column-density map [M_sun / pc^2] on a square grid.
#[derive(Debug, Clone)]
pub struct SurfaceDensityMap {
    pub n: usize,
    /// Half-extent of the map \[pc\].
    pub half: f64,
    /// Row-major `n x n` values.
    pub data: Vec<f64>,
}

/// Projection plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Projection {
    /// Face-on: x–y.
    FaceOn,
    /// Edge-on: x–z.
    EdgeOn,
}

/// Bin gas particles into a column-density map (paper Fig. 5).
pub fn surface_density(
    particles: &[Particle],
    projection: Projection,
    half: f64,
    n: usize,
) -> SurfaceDensityMap {
    let mut data = vec![0.0; n * n];
    let cell = 2.0 * half / n as f64;
    let area = cell * cell;
    for p in particles.iter().filter(|p| p.is_gas()) {
        let (a, b) = match projection {
            Projection::FaceOn => (p.pos.x, p.pos.y),
            Projection::EdgeOn => (p.pos.x, p.pos.z),
        };
        let i = ((a + half) / cell).floor() as i64;
        let j = ((b + half) / cell).floor() as i64;
        if i >= 0 && j >= 0 && (i as usize) < n && (j as usize) < n {
            data[j as usize * n + i as usize] += p.mass / area;
        }
    }
    SurfaceDensityMap { n, half, data }
}

impl SurfaceDensityMap {
    /// Total mass inside the map.
    pub fn total_mass(&self) -> f64 {
        let cell = 2.0 * self.half / self.n as f64;
        self.data.iter().sum::<f64>() * cell * cell
    }

    /// CSV rendering (x, y, sigma), one row per cell.
    pub fn to_csv(&self) -> String {
        let cell = 2.0 * self.half / self.n as f64;
        let mut s = String::from("x_pc,y_pc,sigma_msun_pc2\n");
        for j in 0..self.n {
            for i in 0..self.n {
                let x = -self.half + (i as f64 + 0.5) * cell;
                let y = -self.half + (j as f64 + 0.5) * cell;
                s.push_str(&format!(
                    "{x:.3},{y:.3},{:.6e}\n",
                    self.data[j * self.n + i]
                ));
            }
        }
        s
    }
}

/// Mass-weighted histogram of `log10(value)` over gas particles — the
/// density/temperature PDFs of the validation experiment (paper §3.3).
pub fn log_histogram(values: &[(f64, f64)], lo: f64, hi: f64, bins: usize) -> Vec<f64> {
    let mut h = vec![0.0; bins];
    let total: f64 = values.iter().map(|&(_, w)| w).sum();
    if total <= 0.0 {
        return h;
    }
    for &(v, w) in values {
        if v <= 0.0 {
            continue;
        }
        let x = (v.log10() - lo) / (hi - lo);
        let b = (x * bins as f64).floor() as i64;
        if (0..bins as i64).contains(&b) {
            h[b as usize] += w / total;
        }
    }
    h
}

/// L1 distance between two normalized histograms (0 = identical, 2 = disjoint).
pub fn histogram_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Star-formation rate [M_sun/Myr]: stellar mass formed after `t0`, divided
/// by the elapsed time.
pub fn star_formation_rate(particles: &[Particle], t0: f64, t1: f64) -> f64 {
    assert!(t1 > t0);
    let formed: f64 = particles
        .iter()
        .filter(|p| p.is_star() && p.birth_time > t0 && p.birth_time <= t1)
        .map(|p| p.mass)
        .sum();
    formed / (t1 - t0)
}

/// One diagnostics sample of a running simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeSample {
    pub step: u64,
    /// Simulation time \[Myr\].
    pub time: f64,
    pub n_gas: u64,
    pub n_star: u64,
    /// Cumulative SN count.
    pub sn_events: u64,
    /// Cumulative pool predictions applied.
    pub regions_applied: u64,
    /// Predictions currently in flight.
    pub pending_regions: u64,
    /// Star-formation rate over the window since the previous sample
    /// \[M_sun/Myr\].
    pub sfr: f64,
    /// Total metal mass carried by the gas \[M_sun\].
    pub total_metals: f64,
    /// Total energy (kinetic + internal + exact-potential audit).
    pub total_energy: f64,
    /// Peak face-on gas column density \[M_sun/pc^2\].
    pub sigma_peak: f64,
    /// Cumulative moment-only gravity-tree refreshes (cross-substep reuse).
    pub tree_refreshes: u64,
    /// Cumulative full gravity-tree rebuilds.
    pub tree_rebuilds: u64,
    /// Cumulative moment-only SPH neighbor-tree refreshes.
    pub sph_tree_refreshes: u64,
    /// Cumulative full SPH neighbor-tree rebuilds.
    pub sph_tree_rebuilds: u64,
}

impl TimeSample {
    /// Measure a sample from a live simulation. `t_prev` is the previous
    /// sample's time (the SFR window); `map_half` the half-extent of the
    /// face-on surface-density map.
    pub fn measure(sim: &Simulation, t_prev: f64, map_half: f64) -> Self {
        let map = surface_density(&sim.particles, Projection::FaceOn, map_half, 32);
        TimeSample {
            step: sim.step_count,
            time: sim.time,
            n_gas: sim.particles.iter().filter(|p| p.is_gas()).count() as u64,
            n_star: sim.particles.iter().filter(|p| p.is_star()).count() as u64,
            sn_events: sim.stats.sn_events,
            regions_applied: sim.stats.regions_applied,
            pending_regions: sim.pending_regions() as u64,
            sfr: if sim.time > t_prev {
                star_formation_rate(&sim.particles, t_prev, sim.time)
            } else {
                0.0
            },
            total_metals: sim
                .particles
                .iter()
                .filter(|p| p.is_gas())
                .map(|p| p.metals)
                .sum(),
            total_energy: sim.total_energy(),
            sigma_peak: map.data.iter().cloned().fold(0.0f64, f64::max),
            tree_refreshes: sim.stats.tree_refreshes,
            tree_rebuilds: sim.stats.tree_rebuilds,
            sph_tree_refreshes: sim.stats.sph_tree_refreshes,
            sph_tree_rebuilds: sim.stats.sph_tree_rebuilds,
        }
    }
}

/// A diagnostics time series — energy, SFR, surface density and the SN
/// pipeline counters over a run — rendered to column-oriented JSON for the
/// `results/` directory (the `asura` CLI writes one per scenario run).
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    pub scenario: String,
    samples: Vec<TimeSample>,
}

impl TimeSeries {
    pub fn new(scenario: impl Into<String>) -> Self {
        TimeSeries {
            scenario: scenario.into(),
            samples: Vec::new(),
        }
    }

    pub fn record(&mut self, sample: TimeSample) {
        self.samples.push(sample);
    }

    pub fn samples(&self) -> &[TimeSample] {
        &self.samples
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Column-oriented JSON rendering:
    /// `{"scenario": ..., "samples": N, "columns": {"time": [...], ...}}`.
    pub fn to_json(&self) -> String {
        fn ncol(samples: &[TimeSample], f: impl Fn(&TimeSample) -> f64) -> Json {
            Json::Arr(samples.iter().map(|s| Json::Num(f(s))).collect())
        }
        let columns = Json::Obj(vec![
            ("step".into(), ncol(&self.samples, |s| s.step as f64)),
            ("time".into(), ncol(&self.samples, |s| s.time)),
            ("n_gas".into(), ncol(&self.samples, |s| s.n_gas as f64)),
            ("n_star".into(), ncol(&self.samples, |s| s.n_star as f64)),
            (
                "sn_events".into(),
                ncol(&self.samples, |s| s.sn_events as f64),
            ),
            (
                "regions_applied".into(),
                ncol(&self.samples, |s| s.regions_applied as f64),
            ),
            (
                "pending_regions".into(),
                ncol(&self.samples, |s| s.pending_regions as f64),
            ),
            ("sfr".into(), ncol(&self.samples, |s| s.sfr)),
            (
                "total_metals".into(),
                ncol(&self.samples, |s| s.total_metals),
            ),
            (
                "total_energy".into(),
                ncol(&self.samples, |s| s.total_energy),
            ),
            ("sigma_peak".into(), ncol(&self.samples, |s| s.sigma_peak)),
            (
                "tree_refreshes".into(),
                ncol(&self.samples, |s| s.tree_refreshes as f64),
            ),
            (
                "tree_rebuilds".into(),
                ncol(&self.samples, |s| s.tree_rebuilds as f64),
            ),
            (
                "sph_tree_refreshes".into(),
                ncol(&self.samples, |s| s.sph_tree_refreshes as f64),
            ),
            (
                "sph_tree_rebuilds".into(),
                ncol(&self.samples, |s| s.sph_tree_rebuilds as f64),
            ),
        ]);
        let doc = Json::Obj(vec![
            ("scenario".into(), Json::Str(self.scenario.clone())),
            ("samples".into(), Json::Num(self.samples.len() as f64)),
            ("columns".into(), columns),
        ]);
        let mut out = String::new();
        write_json(&doc, &mut out);
        out
    }
}

/// Centre of mass of a particle set.
pub fn center_of_mass(particles: &[Particle]) -> Vec3 {
    let mut m = 0.0;
    let mut c = Vec3::ZERO;
    for p in particles {
        m += p.mass;
        c += p.pos * p.mass;
    }
    if m > 0.0 {
        c / m
    } else {
        Vec3::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gas_at(pos: Vec3, mass: f64) -> Particle {
        Particle::gas(0, pos, Vec3::ZERO, mass, 1.0, 1.0)
    }

    #[test]
    fn surface_density_conserves_mapped_mass() {
        let parts: Vec<Particle> = (0..100)
            .map(|i| gas_at(Vec3::new(i as f64 * 0.1 - 5.0, 0.0, 0.0), 2.0))
            .collect();
        let map = surface_density(&parts, Projection::FaceOn, 10.0, 32);
        assert!((map.total_mass() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn out_of_bounds_particles_are_dropped() {
        let parts = vec![gas_at(Vec3::new(100.0, 0.0, 0.0), 5.0)];
        let map = surface_density(&parts, Projection::FaceOn, 10.0, 8);
        assert_eq!(map.total_mass(), 0.0);
    }

    #[test]
    fn projections_differ_for_flattened_distributions() {
        // A thin disk: face-on fills the map, edge-on concentrates at y=0.
        let parts: Vec<Particle> = (0..400)
            .map(|i| {
                let a = i as f64 * 0.3737;
                gas_at(
                    Vec3::new(8.0 * a.cos(), 8.0 * a.sin(), 0.01 * (i % 7) as f64),
                    1.0,
                )
            })
            .collect();
        let face = surface_density(&parts, Projection::FaceOn, 10.0, 16);
        let edge = surface_density(&parts, Projection::EdgeOn, 10.0, 16);
        let occupied = |m: &SurfaceDensityMap| m.data.iter().filter(|&&v| v > 0.0).count();
        assert!(occupied(&face) > 2 * occupied(&edge));
    }

    #[test]
    fn csv_has_header_and_all_cells() {
        let map = surface_density(&[], Projection::FaceOn, 1.0, 4);
        let csv = map.to_csv();
        assert!(csv.starts_with("x_pc,y_pc,sigma"));
        assert_eq!(csv.lines().count(), 1 + 16);
    }

    #[test]
    fn log_histogram_normalizes_and_bins() {
        let vals = vec![(10.0, 1.0), (10.0, 1.0), (1000.0, 2.0)];
        let h = log_histogram(&vals, 0.0, 4.0, 4);
        assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((h[1] - 0.5).abs() < 1e-12); // log10(10)=1 in [1,2)
        assert!((h[3] - 0.5).abs() < 1e-12); // log10(1000)=3 in [3,4)
        assert_eq!(histogram_distance(&h, &h), 0.0);
        let other = log_histogram(&[(1.0, 1.0)], 0.0, 4.0, 4);
        assert!(histogram_distance(&h, &other) > 0.9);
    }

    #[test]
    fn sfr_counts_only_the_window() {
        let mut parts = vec![
            Particle::star(0, Vec3::ZERO, Vec3::ZERO, 2.0, 5.0),
            Particle::star(1, Vec3::ZERO, Vec3::ZERO, 3.0, 15.0),
            Particle::star(2, Vec3::ZERO, Vec3::ZERO, 4.0, 25.0),
        ];
        parts.push(gas_at(Vec3::ZERO, 10.0));
        let sfr = star_formation_rate(&parts, 10.0, 20.0);
        assert!((sfr - 0.3).abs() < 1e-12); // 3 M_sun over 10 Myr
    }

    #[test]
    fn time_series_measures_and_serializes() {
        use crate::config::SimConfig;
        use crate::sim::Simulation;
        let particles: Vec<Particle> = (0..8)
            .map(|i| gas_at(Vec3::new(i as f64, 0.0, 0.0), 2.0))
            .enumerate()
            .map(|(i, mut p)| {
                p.id = i as u64;
                p
            })
            .collect();
        let cfg = SimConfig {
            dt_global: 1e-3,
            cooling: false,
            star_formation: false,
            eps: 1.0,
            ..Default::default()
        };
        let mut sim = Simulation::new(cfg, particles, 1);
        let mut series = TimeSeries::new("unit-test");
        let mut t_prev = 0.0;
        for _ in 0..3 {
            sim.step();
            series.record(TimeSample::measure(&sim, t_prev, 10.0));
            t_prev = sim.time;
        }
        assert_eq!(series.len(), 3);
        assert_eq!(series.samples()[2].step, 3);
        assert!(series.samples()[0].n_gas == 8);
        assert!(series.samples()[0].sigma_peak > 0.0);
        let json = series.to_json();
        let doc = unet::json::parse_json(&json).expect("valid JSON");
        assert_eq!(
            doc.get("scenario").unwrap(),
            &unet::json::Json::Str("unit-test".into())
        );
        assert_eq!(doc.get("samples").unwrap().as_usize().unwrap(), 3);
        let cols = doc.get("columns").unwrap();
        for key in ["step", "time", "total_energy", "sfr", "sigma_peak"] {
            match cols.get(key).unwrap() {
                unet::json::Json::Arr(a) => assert_eq!(a.len(), 3, "column {key}"),
                other => panic!("column {key} must be an array, got {other:?}"),
            }
        }
    }

    #[test]
    fn center_of_mass_weighted() {
        let parts = vec![
            gas_at(Vec3::new(1.0, 0.0, 0.0), 1.0),
            gas_at(Vec3::new(-1.0, 0.0, 0.0), 3.0),
        ];
        let c = center_of_mass(&parts);
        assert!((c.x + 0.5).abs() < 1e-12);
    }
}
