//! Deterministic fault injection for the crash-safety layer.
//!
//! A [`FaultPlan`] is a small, seeded, *reproducible* description of the
//! faults a run should suffer — process kills, hung heartbeats, torn or
//! corrupted checkpoint writes, synthetic I/O errors — so the recovery
//! paths in [`ckpt`](crate::ckpt) and [`supervise`](crate::supervise) are
//! exercised by tests and CI rather than trusted. Plans are parsed from a
//! compact grammar (typically via the `ASURA_FAULTS` environment variable)
//! and armed per *attempt*: a supervised run sets `ASURA_ATTEMPT` on each
//! child it spawns, so a `kill@5#0` fires on the first attempt only and the
//! auto-resumed attempt 1 runs clean instead of re-crashing at the same
//! step forever.
//!
//! # Grammar
//!
//! A plan is a comma-separated list of faults. Each fault is
//! `kind@args`, optionally suffixed `#attempt` (default attempt 0 — the
//! first process of a supervised run):
//!
//! | Spec | Effect |
//! |---|---|
//! | `kill@N` | exit the process with [`FAULT_KILL_EXIT`] immediately after completing step `N`, *before* any step-`N` checkpoint commits |
//! | `stall@N` | stop making progress after step `N`: the process parks in a sleep loop without exiting, simulating a hang (the heartbeat goes stale) |
//! | `torn@n:k` | truncate the `n`-th checkpoint commit (1-based, per process) to `k` bytes |
//! | `corrupt@n:k` | XOR `0x40` into byte `k` (wrapped modulo the payload length) of the `n`-th checkpoint commit, breaking its checksum |
//! | `io@n` | fail the `n`-th checkpoint commit with a synthetic I/O error |
//!
//! Example: `ASURA_FAULTS="torn@2:64#0,kill@5#0"` tears the second
//! checkpoint the first attempt writes and kills that attempt after step
//! 5; the supervised resume (attempt 1) sees no armed faults.
//!
//! Write faults count *checkpoint commits* (calls into
//! [`CkptStore::commit_bytes`](crate::ckpt::CkptStore::commit_bytes)), not
//! arbitrary file writes, and the damage is applied to the bytes that land
//! in the final rotation entry — simulating storage-level corruption that
//! the atomic rename cannot prevent, which is exactly what
//! [`latest_valid`](crate::ckpt::CkptStore::latest_valid_with) must
//! survive by falling back to the previous entry.

use std::fmt;

/// Exit code of a `kill@N` fault — distinctive so logs show the crash was
/// injected, but treated by the supervisor like any other abnormal exit.
pub const FAULT_KILL_EXIT: i32 = 86;

/// Environment variable holding the fault plan spec.
pub const FAULTS_ENV: &str = "ASURA_FAULTS";
/// Environment variable holding the current supervised attempt index.
pub const ATTEMPT_ENV: &str = "ASURA_ATTEMPT";

/// One injectable fault (see the module docs for the grammar).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Exit with [`FAULT_KILL_EXIT`] after completing the given step.
    KillAtStep(u64),
    /// Park in a sleep loop (simulated hang) after completing the step.
    StallAtStep(u64),
    /// Truncate the `nth` checkpoint commit to `at_byte` bytes.
    TornWrite { nth: u64, at_byte: u64 },
    /// Flip a byte of the `nth` checkpoint commit (`at_byte` wraps modulo
    /// the payload length), breaking the stored checksum.
    CorruptWrite { nth: u64, at_byte: u64 },
    /// Fail the `nth` checkpoint commit with a synthetic I/O error.
    IoErrorWrite { nth: u64 },
}

/// A fault with the attempt it is armed for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedFault {
    pub fault: Fault,
    /// Supervised attempt index this fault fires on (0 = first process).
    pub attempt: u32,
}

/// A parsed, attempt-scoped fault schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    pub faults: Vec<PlannedFault>,
}

impl FaultPlan {
    /// Parse the grammar described in the module docs.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut faults = Vec::new();
        for item in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (body, attempt) = match item.split_once('#') {
                Some((b, a)) => (
                    b,
                    a.parse::<u32>()
                        .map_err(|e| format!("fault `{item}`: bad attempt `{a}`: {e}"))?,
                ),
                None => (item, 0),
            };
            let (kind, args) = body
                .split_once('@')
                .ok_or_else(|| format!("fault `{item}`: expected kind@args"))?;
            let one = |what: &str| -> Result<u64, String> {
                args.parse::<u64>()
                    .map_err(|e| format!("fault `{item}`: bad {what} `{args}`: {e}"))
            };
            let two = |what: &str| -> Result<(u64, u64), String> {
                let (a, b) = args
                    .split_once(':')
                    .ok_or_else(|| format!("fault `{item}`: expected {kind}@{what}"))?;
                Ok((
                    a.parse::<u64>()
                        .map_err(|e| format!("fault `{item}`: bad ordinal `{a}`: {e}"))?,
                    b.parse::<u64>()
                        .map_err(|e| format!("fault `{item}`: bad byte offset `{b}`: {e}"))?,
                ))
            };
            let fault = match kind {
                "kill" => Fault::KillAtStep(one("step")?),
                "stall" => Fault::StallAtStep(one("step")?),
                "torn" => {
                    let (nth, at_byte) = two("nth:byte")?;
                    Fault::TornWrite { nth, at_byte }
                }
                "corrupt" => {
                    let (nth, at_byte) = two("nth:byte")?;
                    Fault::CorruptWrite { nth, at_byte }
                }
                "io" => Fault::IoErrorWrite {
                    nth: one("ordinal")?,
                },
                other => return Err(format!("fault `{item}`: unknown kind `{other}`")),
            };
            if matches!(
                fault,
                Fault::TornWrite { nth: 0, .. }
                    | Fault::CorruptWrite { nth: 0, .. }
                    | Fault::IoErrorWrite { nth: 0 }
            ) {
                return Err(format!("fault `{item}`: write ordinals are 1-based"));
            }
            faults.push(PlannedFault { fault, attempt });
        }
        Ok(FaultPlan { faults })
    }

    /// Render back to the grammar (stable round-trip, used by the
    /// supervisor when reporting what was injected).
    pub fn render(&self) -> String {
        self.faults
            .iter()
            .map(|p| {
                let body = match p.fault {
                    Fault::KillAtStep(n) => format!("kill@{n}"),
                    Fault::StallAtStep(n) => format!("stall@{n}"),
                    Fault::TornWrite { nth, at_byte } => format!("torn@{nth}:{at_byte}"),
                    Fault::CorruptWrite { nth, at_byte } => format!("corrupt@{nth}:{at_byte}"),
                    Fault::IoErrorWrite { nth } => format!("io@{nth}"),
                };
                if p.attempt == 0 {
                    body
                } else {
                    format!("{body}#{}", p.attempt)
                }
            })
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// A step fault due now (pure query form, separated from the enforcing
/// side effect so the schedule is unit-testable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepFault {
    Kill,
    Stall,
}

/// What a checkpoint commit should do to its payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// Truncate the payload to this many bytes.
    Torn { at_byte: u64 },
    /// XOR `0x40` into this byte (wrapped modulo the payload length).
    Corrupt { at_byte: u64 },
    /// Fail the write with a synthetic I/O error.
    Io,
}

impl fmt::Display for WriteFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriteFault::Torn { at_byte } => write!(f, "torn write at byte {at_byte}"),
            WriteFault::Corrupt { at_byte } => write!(f, "corrupted byte {at_byte}"),
            WriteFault::Io => write!(f, "injected I/O error"),
        }
    }
}

/// Runtime fault dispenser: a [`FaultPlan`] filtered to the current
/// attempt, with a per-process checkpoint-commit counter. The default
/// (empty) injector is a zero-cost no-op, so fault-aware code paths need
/// no `Option` plumbing.
#[derive(Debug, Default)]
pub struct FaultInjector {
    faults: Vec<Fault>,
    commits: u64,
}

impl FaultInjector {
    /// An injector with no faults armed.
    pub fn none() -> FaultInjector {
        FaultInjector::default()
    }

    /// Arm the plan's faults scoped to `attempt`.
    pub fn from_plan(plan: &FaultPlan, attempt: u32) -> FaultInjector {
        FaultInjector {
            faults: plan
                .faults
                .iter()
                .filter(|p| p.attempt == attempt)
                .map(|p| p.fault)
                .collect(),
            commits: 0,
        }
    }

    /// Build from `ASURA_FAULTS` / `ASURA_ATTEMPT`. Unset variables mean
    /// no faults / attempt 0; a malformed spec is an error so typos never
    /// silently run fault-free.
    pub fn from_env() -> Result<FaultInjector, String> {
        let spec = match std::env::var(FAULTS_ENV) {
            Ok(s) if !s.trim().is_empty() => s,
            _ => return Ok(FaultInjector::none()),
        };
        let plan = FaultPlan::parse(&spec).map_err(|e| format!("{FAULTS_ENV}: {e}"))?;
        let attempt = match std::env::var(ATTEMPT_ENV) {
            Ok(a) => a
                .parse::<u32>()
                .map_err(|e| format!("{ATTEMPT_ENV}: bad attempt `{a}`: {e}"))?,
            Err(_) => 0,
        };
        Ok(FaultInjector::from_plan(&plan, attempt))
    }

    /// True when no fault can ever fire.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The step fault armed for `step`, if any (pure; see
    /// [`FaultInjector::enforce_step`] for the effectful form).
    pub fn step_fault(&self, step: u64) -> Option<StepFault> {
        self.faults.iter().find_map(|f| match *f {
            Fault::KillAtStep(n) if n == step => Some(StepFault::Kill),
            Fault::StallAtStep(n) if n == step => Some(StepFault::Stall),
            _ => None,
        })
    }

    /// Enforce any step fault armed for `step`: `kill` exits the process
    /// with [`FAULT_KILL_EXIT`] (simulated crash — nothing is flushed),
    /// `stall` parks the thread in a sleep loop (simulated hang — the
    /// heartbeat goes stale until the supervisor kills the process).
    pub fn enforce_step(&self, step: u64) {
        match self.step_fault(step) {
            None => {}
            Some(StepFault::Kill) => {
                eprintln!("[fault] kill@{step}: exiting with code {FAULT_KILL_EXIT}");
                std::process::exit(FAULT_KILL_EXIT);
            }
            Some(StepFault::Stall) => {
                eprintln!("[fault] stall@{step}: parking (heartbeat goes stale)");
                loop {
                    std::thread::sleep(std::time::Duration::from_millis(200));
                }
            }
        }
    }

    /// Account one checkpoint commit and return the write fault armed for
    /// it, if any. Ordinals are 1-based and counted per process.
    pub fn on_commit(&mut self) -> Option<WriteFault> {
        self.commits += 1;
        let nth = self.commits;
        self.faults.iter().find_map(|f| match *f {
            Fault::TornWrite { nth: n, at_byte } if n == nth => Some(WriteFault::Torn { at_byte }),
            Fault::CorruptWrite { nth: n, at_byte } if n == nth => {
                Some(WriteFault::Corrupt { at_byte })
            }
            Fault::IoErrorWrite { nth: n } if n == nth => Some(WriteFault::Io),
            _ => None,
        })
    }

    /// Checkpoint commits accounted so far.
    pub fn commits(&self) -> u64 {
        self.commits
    }
}

/// Apply a write fault to a payload about to be committed, in place.
/// Returns an error for [`WriteFault::Io`]; `Torn`/`Corrupt` mutate the
/// bytes and succeed (the damage is then discovered at read time by the
/// manifest/decode validation).
pub fn apply_write_fault(fault: WriteFault, bytes: &mut Vec<u8>) -> std::io::Result<()> {
    match fault {
        WriteFault::Torn { at_byte } => {
            bytes.truncate(at_byte as usize);
            Ok(())
        }
        WriteFault::Corrupt { at_byte } => {
            if !bytes.is_empty() {
                let k = (at_byte as usize) % bytes.len();
                bytes[k] ^= 0x40;
            }
            Ok(())
        }
        WriteFault::Io => Err(std::io::Error::other("injected I/O fault")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_round_trips_and_scopes_attempts() {
        let plan =
            FaultPlan::parse("kill@5, torn@2:64#0, corrupt@3:7#1, io@1#2, stall@9#1").unwrap();
        assert_eq!(plan.faults.len(), 5);
        assert_eq!(
            plan.faults[0],
            PlannedFault {
                fault: Fault::KillAtStep(5),
                attempt: 0
            }
        );
        assert_eq!(
            plan.render(),
            "kill@5,torn@2:64,corrupt@3:7#1,io@1#2,stall@9#1"
        );
        assert_eq!(FaultPlan::parse(&plan.render()).unwrap(), plan);

        let a0 = FaultInjector::from_plan(&plan, 0);
        assert_eq!(a0.step_fault(5), Some(StepFault::Kill));
        assert_eq!(a0.step_fault(9), None, "stall@9 is scoped to attempt 1");
        let a1 = FaultInjector::from_plan(&plan, 1);
        assert_eq!(a1.step_fault(5), None);
        assert_eq!(a1.step_fault(9), Some(StepFault::Stall));
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in [
            "boom@3",
            "kill@",
            "kill@x",
            "torn@3",
            "torn@0:5",
            "corrupt@1",
            "io@0",
            "kill@2#x",
            "kill",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` must be rejected");
        }
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::default());
    }

    #[test]
    fn write_faults_fire_on_their_ordinal_only() {
        let plan = FaultPlan::parse("torn@2:10,io@3").unwrap();
        let mut inj = FaultInjector::from_plan(&plan, 0);
        assert_eq!(inj.on_commit(), None, "commit 1 clean");
        assert_eq!(inj.on_commit(), Some(WriteFault::Torn { at_byte: 10 }));
        assert_eq!(inj.on_commit(), Some(WriteFault::Io));
        assert_eq!(inj.on_commit(), None, "plan exhausted");
        assert_eq!(inj.commits(), 4);
    }

    #[test]
    fn apply_write_fault_models_the_damage() {
        let mut torn = vec![1u8; 100];
        apply_write_fault(WriteFault::Torn { at_byte: 40 }, &mut torn).unwrap();
        assert_eq!(torn.len(), 40);

        let mut corrupt = vec![0u8; 8];
        apply_write_fault(WriteFault::Corrupt { at_byte: 11 }, &mut corrupt).unwrap();
        assert_eq!(corrupt[11 % 8], 0x40, "byte offset wraps modulo length");
        assert!(corrupt.iter().filter(|&&b| b != 0).count() == 1);

        let mut io = vec![0u8; 4];
        assert!(apply_write_fault(WriteFault::Io, &mut io).is_err());
        assert_eq!(io, vec![0u8; 4], "io fault leaves the payload untouched");
    }

    #[test]
    fn empty_injector_is_a_noop() {
        let mut inj = FaultInjector::none();
        assert!(inj.is_empty());
        assert_eq!(inj.step_fault(0), None);
        assert_eq!(inj.on_commit(), None);
        // enforce_step with nothing armed must return (not exit/hang).
        inj.enforce_step(123);
    }
}
