//! The paper's run and literature tables as data (Tables 1 and 2), so the
//! bench harness can regenerate them and scaled-down experiments can anchor
//! themselves to the published configurations.

/// One row of Table 1: state-of-the-art isolated-disk simulations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiteratureRun {
    pub paper: &'static str,
    pub n_gas: f64,
    pub m_gas: f64,
    pub n_star: f64,
    pub m_star: f64,
    pub n_dm: f64,
    pub m_tot: f64,
    pub n_tot: f64,
    pub code: &'static str,
}

/// Table 1 of the paper, verbatim.
pub const TABLE1: [LiteratureRun; 8] = [
    LiteratureRun {
        paper: "Hu et al. (2017)",
        n_gas: 1e7,
        m_gas: 4.0,
        n_star: 1e7,
        m_star: 4.0,
        n_dm: 4e6,
        m_tot: 2e10,
        n_tot: 2.4e7,
        code: "GADGET-3",
    },
    LiteratureRun {
        paper: "Smith et al. (2018)",
        n_gas: 1.9e7,
        m_gas: 20.0,
        n_star: 1e5,
        m_star: 20.0,
        n_dm: 1e5,
        m_tot: 1e10,
        n_tot: 2.0e7,
        code: "AREPO",
    },
    LiteratureRun {
        paper: "Smith et al. (2018) Large",
        n_gas: 1.9e7,
        m_gas: 200.0,
        n_star: 1e5,
        m_star: 200.0,
        n_dm: 1e5,
        m_tot: 1e11,
        n_tot: 2.0e7,
        code: "AREPO",
    },
    LiteratureRun {
        paper: "Smith et al. (2021)",
        n_gas: 3.4e6,
        m_gas: 20.0,
        n_star: 4.9e6,
        m_star: 20.0,
        n_dm: 6.2e6,
        m_tot: 1e10,
        n_tot: 2.0e7,
        code: "AREPO",
    },
    LiteratureRun {
        paper: "Richings et al. (2022)",
        n_gas: 1e7,
        m_gas: 400.0,
        n_star: 3e7,
        m_star: 400.0,
        n_dm: 1.6e8,
        m_tot: 1e12,
        n_tot: 2.0e8,
        code: "GIZMO",
    },
    LiteratureRun {
        paper: "Hu et al. (2023)",
        n_gas: 7e7,
        m_gas: 1.0,
        n_star: 1e7,
        m_star: 1.0,
        n_dm: 1e7,
        m_tot: 1e10,
        n_tot: 2.4e7,
        code: "GIZMO",
    },
    LiteratureRun {
        paper: "Steinwandel et al. (2024)",
        n_gas: 1e8,
        m_gas: 4.0,
        n_star: 5e8,
        m_star: 4.0,
        n_dm: 4e7,
        m_tot: 2e11,
        n_tot: 6.4e8,
        code: "GADGET-3",
    },
    LiteratureRun {
        paper: "This work",
        n_gas: 4.9e10,
        m_gas: 0.75,
        n_star: 7.2e10,
        m_star: 0.75,
        n_dm: 1.8e11,
        m_tot: 1.2e12,
        n_tot: 3.0e11,
        code: "ASURA",
    },
];

/// One row of Table 2: the paper's measurement runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRun {
    pub name: &'static str,
    /// Node range `(max, min)` as printed in the table.
    pub nodes: (u64, u64),
    pub m_dm: f64,
    pub n_dm: f64,
    pub m_star: f64,
    pub n_star: f64,
    pub m_gas: f64,
    pub n_gas: f64,
    pub m_tot: f64,
    /// Particles per node as printed (min, max) where ranges are given.
    pub n_per_node: (f64, f64),
}

/// Table 2 of the paper, verbatim.
pub const TABLE2: [PaperRun; 8] = [
    PaperRun {
        name: "weakMW2M",
        nodes: (148_896, 128),
        m_dm: 6.0,
        n_dm: 1.8e11,
        m_star: 0.75,
        n_star: 7.2e10,
        m_gas: 0.75,
        n_gas: 4.9e10,
        m_tot: 1.2e12,
        n_per_node: (2e6, 2e6),
    },
    PaperRun {
        name: "weakMW_rusty",
        nodes: (193, 11),
        m_dm: 7.7,
        n_dm: 1.4e11,
        m_star: 0.96,
        n_star: 5.5e10,
        m_gas: 0.96,
        n_gas: 3.8e10,
        m_tot: 1.2e12,
        n_per_node: (1.2e9, 1.2e9),
    },
    PaperRun {
        name: "strongMW",
        nodes: (148_896, 67_680),
        m_dm: 11.7,
        n_dm: 9.3e10,
        m_star: 1.4,
        n_star: 3.7e10,
        m_gas: 1.4,
        n_gas: 2.6e10,
        m_tot: 1.2e12,
        n_per_node: (1.0e6, 2.3e6),
    },
    PaperRun {
        name: "strongMWs",
        nodes: (40_608, 4_096),
        m_dm: 4.0,
        n_dm: 2.8e10,
        m_star: 0.5,
        n_star: 1.2e10,
        m_gas: 0.5,
        n_gas: 7.5e9,
        m_tot: 1.2e11,
        n_per_node: (1.2e6, 12.0e6),
    },
    PaperRun {
        name: "strongMWm",
        nodes: (1_024, 128),
        m_dm: 12.0,
        n_dm: 1.4e9,
        m_star: 1.5,
        n_star: 3.7e8,
        m_gas: 1.5,
        n_gas: 3.4e9,
        m_tot: 1.8e10,
        n_per_node: (2.1e6, 16.0e6),
    },
    PaperRun {
        name: "strongMW_rusty",
        nodes: (193, 43),
        m_dm: 36.0,
        n_dm: 3.0e10,
        m_star: 4.5,
        n_star: 1.2e10,
        m_gas: 4.5,
        n_gas: 8.4e9,
        m_tot: 1.2e12,
        n_per_node: (2.6e8, 11.9e8),
    },
    PaperRun {
        name: "strongMWs_rusty",
        nodes: (43, 11),
        m_dm: 166.0,
        n_dm: 6.5e9,
        m_star: 21.0,
        n_star: 2.6e9,
        m_gas: 21.0,
        n_gas: 1.8e9,
        m_tot: 1.2e12,
        n_per_node: (2.5e8, 99.4e8),
    },
    PaperRun {
        name: "MW_miyabi",
        nodes: (1_024, 1_024),
        m_dm: 87.9,
        n_dm: 1.2e10,
        m_star: 11.0,
        n_star: 5.0e9,
        m_gas: 11.0,
        n_gas: 3.4e9,
        m_tot: 1.2e12,
        n_per_node: (2.0e7, 2.0e7),
    },
];

impl PaperRun {
    /// Total particle count of this configuration.
    pub fn n_tot(&self) -> f64 {
        self.n_dm + self.n_star + self.n_gas
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn this_work_breaks_the_billion_particle_barrier() {
        let ours = TABLE1.last().unwrap();
        assert_eq!(ours.paper, "This work");
        assert!(ours.n_tot > 1e9, "the headline claim");
        // Everyone else sits below it (the 'barrier').
        for run in &TABLE1[..TABLE1.len() - 1] {
            assert!(run.n_tot < 1e9, "{} exceeds 1e9?", run.paper);
        }
    }

    #[test]
    fn this_work_is_500x_more_particles_than_prior_state_of_the_art() {
        let best_prior = TABLE1[..TABLE1.len() - 1]
            .iter()
            .map(|r| r.n_tot)
            .fold(0.0, f64::max);
        let ours = TABLE1.last().unwrap().n_tot;
        let ratio = ours / best_prior;
        assert!(
            (300.0..700.0).contains(&ratio),
            "paper claims ~500x: got {ratio}"
        );
    }

    #[test]
    fn weak_scaling_run_keeps_2m_particles_per_node() {
        let weak = &TABLE2[0];
        assert_eq!(weak.name, "weakMW2M");
        let n_per_node = weak.n_tot() / weak.nodes.0 as f64;
        assert!(
            (1.5e6..2.5e6).contains(&n_per_node),
            "N/node = {n_per_node}"
        );
    }

    #[test]
    fn table2_masses_are_consistent_with_counts() {
        for run in &TABLE2 {
            let m_sum = run.m_dm * run.n_dm + run.m_star * run.n_star + run.m_gas * run.n_gas;
            assert!(
                (m_sum / run.m_tot - 1.0).abs() < 0.35,
                "{}: component masses sum to {m_sum:.3e}, table says {:.3e}",
                run.name,
                run.m_tot
            );
        }
    }

    #[test]
    fn star_by_star_resolution_for_the_headline_run() {
        let ours = TABLE1.last().unwrap();
        assert!(ours.m_star < 1.0, "sub-solar star particles");
        assert!(ours.m_gas < 1.0);
    }
}
