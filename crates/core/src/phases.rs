//! Phase names matching the paper's Figure 6/7 legends and Table 3 rows,
//! so the timing output lines up with the published breakdown.

pub const SEND_SNE: &str = "Send_SNe";
pub const RECEIVE_SNE: &str = "Receive_SNe";
pub const INTEGRATION: &str = "Integration";
pub const EXCHANGE_PARTICLE: &str = "Exchange_Particle";
pub const PREPROCESS_FEEDBACK: &str = "Preprocess_of_Feedback";
pub const CALC_KERNEL_DENSITY_1: &str = "1st Calc_Kernel_Size_and_Density";
pub const MAKE_LOCAL_TREE_1: &str = "1st Make_Local_Tree";
pub const EXCHANGE_LET_1: &str = "1st Exchange_LET";
pub const CALC_FORCE_1: &str = "1st Calc_Force";
pub const FINAL_KICK: &str = "Final_kick (brdg asso)";
pub const IDENTIFY_SNE: &str = "Identify_SNe";
pub const FEEDBACK_COOLING: &str = "Feedback_and_Cooling (direct)";
pub const STAR_FORMATION: &str = "Star Formation";
pub const CALC_KERNEL_SIZE_2: &str = "2nd Calc_Kernel_Size";
pub const MAKE_TREE_2: &str = "2nd Make_Tree";
pub const EXCHANGE_LET_2: &str = "2nd Exchange_LET";
pub const CALC_FORCE_2: &str = "2nd Calc_Force";

/// All phases in the order the paper's figures list them.
pub const ALL: [&str; 17] = [
    SEND_SNE,
    RECEIVE_SNE,
    INTEGRATION,
    EXCHANGE_PARTICLE,
    PREPROCESS_FEEDBACK,
    CALC_KERNEL_DENSITY_1,
    MAKE_LOCAL_TREE_1,
    EXCHANGE_LET_1,
    CALC_FORCE_1,
    FINAL_KICK,
    IDENTIFY_SNE,
    FEEDBACK_COOLING,
    STAR_FORMATION,
    CALC_KERNEL_SIZE_2,
    MAKE_TREE_2,
    EXCHANGE_LET_2,
    CALC_FORCE_2,
];

#[cfg(test)]
mod tests {
    #[test]
    fn seventeen_distinct_phases() {
        let mut names = super::ALL.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 17);
    }
}
