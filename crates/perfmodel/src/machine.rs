//! The three evaluation machines (paper §4.1).

/// Interconnect model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Network {
    /// TofuD-like 3-D (6-D folded) torus: per-link bandwidth \[B/s\] and
    /// per-message latency \[s\]; alltoallv runs in three axis stages.
    Torus3d { link_bw: f64, latency: f64 },
    /// InfiniBand-like fat tree: injection bandwidth \[B/s\], latency \[s\];
    /// alltoallv is direct pairwise.
    FatTree { injection_bw: f64, latency: f64 },
}

/// A node-level machine model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Machine {
    pub name: &'static str,
    /// Single-precision peak per node [FLOP/s] (the interaction kernels run
    /// in single precision, §4.3).
    pub peak_sp_node: f64,
    /// Double-precision peak per node [FLOP/s].
    pub peak_dp_node: f64,
    pub cores_per_node: usize,
    /// Memory bandwidth per node \[B/s\] (tree walks are bound by this).
    pub mem_bw_node: f64,
    pub network: Network,
    /// Measured kernel efficiencies from paper Table 4 (fraction of SP peak).
    pub eff_gravity: f64,
    pub eff_density: f64,
    pub eff_hydro: f64,
    /// Maximum node count of the system.
    pub max_nodes: usize,
}

impl Machine {
    /// Fugaku: A64FX, 48 cores, 6.144 TF SP / 3.072 TF DP per node, HBM2
    /// 1 TB/s, TofuD (6.8 GB/s x 6 links). Table 4: 29.4 % / 17.1 % / 15.4 %.
    pub fn fugaku() -> Machine {
        Machine {
            name: "Fugaku (A64FX)",
            peak_sp_node: 6.144e12,
            peak_dp_node: 3.072e12,
            cores_per_node: 48,
            mem_bw_node: 1.024e12,
            network: Network::Torus3d {
                link_bw: 6.8e9,
                latency: 0.7e-6,
            },
            eff_gravity: 0.294,
            eff_density: 0.171,
            eff_hydro: 0.154,
            max_nodes: 158_976,
        }
    }

    /// Rusty genoa: 2 x AMD EPYC 9474F per node (2 x 6.298 TF SP), DDR5,
    /// InfiniBand. Table 4 (AVX-512): 69.1 % / 66.8 % / 62.1 %.
    pub fn rusty() -> Machine {
        Machine {
            name: "Rusty (genoa)",
            peak_sp_node: 2.0 * 6.298e12,
            peak_dp_node: 2.0 * 3.149e12,
            cores_per_node: 96,
            mem_bw_node: 9.2e11,
            network: Network::FatTree {
                injection_bw: 2.5e10,
                latency: 1.5e-6,
            },
            eff_gravity: 0.691,
            eff_density: 0.668,
            eff_hydro: 0.621,
            max_nodes: 432,
        }
    }

    /// Miyabi: NVIDIA GH200 (Grace + H100, 66.9 TF DP per GPU; SP tensor-free
    /// peak ~ 2x), NVLink-C2C. Table 4: 38.0 % / 0.64 % / 2.8 %.
    pub fn miyabi() -> Machine {
        Machine {
            name: "Miyabi (GH200)",
            peak_sp_node: 1.338e14,
            peak_dp_node: 6.69e13,
            cores_per_node: 72,
            mem_bw_node: 3.0e12,
            network: Network::FatTree {
                injection_bw: 2.5e10,
                latency: 2.0e-6,
            },
            eff_gravity: 0.380,
            eff_density: 0.0064,
            eff_hydro: 0.028,
            max_nodes: 1_120,
        }
    }

    /// Time for an alltoallv where each rank sends `bytes_per_rank_pair`
    /// to each of `p - 1` peers.
    pub fn alltoallv_time(&self, p: usize, bytes_per_rank_pair: f64) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let total_out = bytes_per_rank_pair * (p - 1) as f64;
        match self.network {
            Network::Torus3d { link_bw, latency } => {
                // Three staged exchanges over ~p^{1/3} peers each; each stage
                // forwards the full outgoing volume once.
                let peers = (p as f64).powf(1.0 / 3.0).max(1.0);
                3.0 * (peers * latency + total_out / link_bw)
            }
            Network::FatTree {
                injection_bw,
                latency,
            } => (p - 1) as f64 * latency + total_out / injection_bw,
        }
    }

    /// System peak [FLOP/s] (single precision) at `p` nodes.
    pub fn peak_sp(&self, p: usize) -> f64 {
        self.peak_sp_node * p as f64
    }

    /// System peak [FLOP/s] (double precision) at `p` nodes.
    pub fn peak_dp(&self, p: usize) -> f64 {
        self.peak_dp_node * p as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_peaks_are_reproduced() {
        // Paper Table 3 headers: Fugaku 150k nodes peak 915 PFLOPS (SP);
        // Rusty 193 nodes 2.43 PFLOPS; Miyabi 1024 nodes 68.5 PF (DP).
        let f = Machine::fugaku();
        assert!((f.peak_sp(148_896) / 915e15 - 1.0).abs() < 0.01);
        let r = Machine::rusty();
        assert!((r.peak_sp(193) / 2.43e15 - 1.0).abs() < 0.01);
        let m = Machine::miyabi();
        assert!((m.peak_dp(1024) / 68.5e15 - 1.0).abs() < 0.01);
    }

    #[test]
    fn torus_alltoall_beats_fat_tree_latency_at_scale() {
        // At 100k ranks with small messages, O(p^{1/3}) staging wins over
        // p - 1 direct messages.
        let f = Machine::fugaku();
        let tree_like = Machine {
            network: Network::FatTree {
                injection_bw: 6.8e9,
                latency: 0.7e-6,
            },
            ..f
        };
        let p = 100_000;
        let bytes = 100.0;
        assert!(f.alltoallv_time(p, bytes) < tree_like.alltoallv_time(p, bytes));
    }

    #[test]
    fn alltoall_time_grows_with_volume_and_ranks() {
        let f = Machine::fugaku();
        assert!(f.alltoallv_time(1000, 1e4) < f.alltoallv_time(1000, 1e6));
        assert!(f.alltoallv_time(100, 1e4) < f.alltoallv_time(100_000, 1e4));
        assert_eq!(f.alltoallv_time(1, 1e6), 0.0);
    }

    #[test]
    fn table4_efficiencies_recorded() {
        assert_eq!(Machine::fugaku().eff_gravity, 0.294);
        assert_eq!(Machine::rusty().eff_hydro, 0.621);
        assert_eq!(Machine::miyabi().eff_density, 0.0064);
    }
}
