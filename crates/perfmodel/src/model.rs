//! The per-step phase cost model.
//!
//! Each phase of the paper's breakdown (Table 3 / Figures 6–7) gets an
//! analytic cost with the functional form the paper derives, with software
//! constants calibrated once at the published anchor point: the
//! 148,896-node weakMW2M step (Table 3). Work terms use the counted
//! operations per interaction (27/73/101) and the paper's *measured
//! phase-level* efficiencies, which fold in imbalance and list overheads on
//! top of the asymptotic kernel numbers of Table 4.

use crate::machine::Machine;
use pikg::kernels::{PAPER_DENSITY_OPS, PAPER_GRAVITY_OPS, PAPER_HYDRO_OPS};

/// One run configuration to model.
#[derive(Debug, Clone, Copy)]
pub struct RunPoint {
    /// Total particles.
    pub n_tot: f64,
    /// Gas fraction of the particle count.
    pub gas_frac: f64,
    /// Main nodes (one MPI process per node, as on Fugaku).
    pub p: usize,
    /// Interaction-list group size.
    pub n_g: usize,
}

impl RunPoint {
    /// The paper's anchor: weakMW2M on the full Fugaku partition.
    pub fn weak_mw2m_anchor() -> RunPoint {
        RunPoint {
            n_tot: 3.0e11,
            gas_frac: 4.9e10 / 3.0e11,
            p: 148_896,
            n_g: 2048,
        }
    }

    pub fn n_loc(&self) -> f64 {
        self.n_tot / self.p as f64
    }
}

/// Calibrated software constants (defaults anchored to Table 3; see each
/// field's comment for the anchored value it reproduces).
#[derive(Debug, Clone, Copy)]
pub struct Calibration {
    /// Interaction-list length multiplier: `n_l = alpha (log2 N + n_g)`.
    /// From the anchor's gravity FLOP count (1.47e17 per step).
    pub alpha_list: f64,
    /// Hydro candidate-list multiplier over the neighbour count.
    pub beta_hydro_list: f64,
    /// SPH neighbour target.
    pub n_ngb: f64,
    /// Seconds per particle-level tree-build operation on Fugaku
    /// (random-access bound; anchors "Tree construction 0.96 s").
    pub tree_op_s: f64,
    /// Seconds per remote rank of LET construction + messaging at the
    /// anchor's tree depth (anchors "LET Exchange gravity 3.89 s" at
    /// 148,896 ranks: 3.89 / 148,895 = 2.6e-5).
    pub let_build_s: f64,
    /// Effective bytes shipped per surface particle during LET exchange.
    pub let_surface_bytes: f64,
    /// Seconds of domain-decomposition bookkeeping per rank
    /// (anchors "Particle exchange 3.87 s").
    pub dd_per_rank_s: f64,
    /// Fraction of local particles migrating per step.
    pub migrate_frac: f64,
    /// Phase-level efficiency of the gravity force phase (paper: 9.9 %
    /// of SP peak at the anchor — lower than Table 4's kernel-only 29.4 %
    /// because of imbalance and list assembly).
    pub phase_eff_gravity: f64,
    /// Phase-level efficiency of the hydro force phase (13.0 PF / 915 PF).
    pub phase_eff_hydro: f64,
    /// Phase-level efficiency of the density phase (3.23 PF / 915 PF).
    pub phase_eff_density: f64,
    /// Kernel-size iterations (paper §5.2.5: "usually twice").
    pub h_iterations: f64,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration {
            alpha_list: 8.8,
            beta_hydro_list: 8.9,
            n_ngb: 100.0,
            tree_op_s: 2.3e-8,
            let_build_s: 2.6e-5,
            let_surface_bytes: 4600.0,
            dd_per_rank_s: 2.0e-5,
            migrate_frac: 0.05,
            phase_eff_gravity: 0.099,
            phase_eff_hydro: 0.0142,
            phase_eff_density: 0.00353,
            h_iterations: 2.0,
        }
    }
}

/// Modeled seconds and FLOPs for one phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseCost {
    pub name: &'static str,
    pub seconds: f64,
    pub flops: f64,
}

/// Full per-step breakdown.
#[derive(Debug, Clone)]
pub struct PhaseBreakdown {
    pub phases: Vec<PhaseCost>,
}

impl PhaseBreakdown {
    pub fn total_s(&self) -> f64 {
        self.phases.iter().map(|p| p.seconds).sum()
    }

    pub fn total_flops(&self) -> f64 {
        self.phases.iter().map(|p| p.flops).sum()
    }

    pub fn get(&self, name: &str) -> Option<&PhaseCost> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Achieved FLOP/s over the whole step.
    pub fn flops_per_second(&self) -> f64 {
        self.total_flops() / self.total_s().max(1e-30)
    }
}

/// The step model: machine + calibration.
#[derive(Debug, Clone, Copy)]
pub struct StepModel {
    pub machine: Machine,
    pub cal: Calibration,
}

impl StepModel {
    pub fn new(machine: Machine) -> Self {
        StepModel {
            machine,
            cal: Calibration::default(),
        }
    }

    /// Gravity interaction-list length per i-particle.
    fn n_l_gravity(&self, run: &RunPoint) -> f64 {
        self.cal.alpha_list * (run.n_tot.log2() + run.n_g as f64)
    }

    /// Hydro candidate-list length per gas particle.
    fn n_l_hydro(&self) -> f64 {
        self.cal.beta_hydro_list * self.cal.n_ngb
    }

    /// Software speed factor relative to Fugaku cores (per-core clock-ish
    /// proxy from DP peak per core).
    fn core_speed_factor(&self) -> f64 {
        let fugaku_dp_core = 3.072e12 / 48.0;
        let dp_core = self.machine.peak_dp_node / self.machine.cores_per_node as f64;
        (dp_core / fugaku_dp_core).max(0.25)
    }

    /// Model every phase of one step.
    pub fn step(&self, run: &RunPoint) -> PhaseBreakdown {
        let m = &self.machine;
        let cal = &self.cal;
        let n_loc = run.n_loc();
        let n_gas_loc = n_loc * run.gas_frac;
        let p = run.p;
        let speed = self.core_speed_factor();

        let mut phases = Vec::new();

        // --- Particle exchange: decomposition bookkeeping O(p) + migration.
        let migrate_bytes = n_loc * cal.migrate_frac * 64.0;
        let t_exch =
            cal.dd_per_rank_s / speed * p as f64 + m.alltoallv_time(p, migrate_bytes / p as f64);
        phases.push(PhaseCost {
            name: "Particle exchange",
            seconds: t_exch,
            flops: 0.0,
        });

        // --- Tree construction (gravity: all species; hydro: gas only).
        let t_tree = cal.tree_op_s / speed * n_loc * n_loc.log2().max(1.0);
        phases.push(PhaseCost {
            name: "Tree construction (gravity)",
            seconds: t_tree,
            flops: 0.0,
        });
        phases.push(PhaseCost {
            name: "Tree construction (hydro)",
            seconds: t_tree * run.gas_frac,
            flops: 0.0,
        });

        // --- LET exchange: per-rank LET construction dominates at scale,
        // plus the staged surface volume.
        let surface = n_loc.powf(2.0 / 3.0);
        let t_let_build = cal.let_build_s / speed * (p as f64 - 1.0) * n_loc.log2().max(1.0) / 21.0; // normalized to the anchor's log2(2e6) = 21 levels
        let t_let_vol = m.alltoallv_time(p, surface * cal.let_surface_bytes / p as f64);
        phases.push(PhaseCost {
            name: "LET exchange (gravity)",
            seconds: t_let_build + t_let_vol,
            flops: 0.0,
        });
        phases.push(PhaseCost {
            name: "LET exchange (hydro)",
            seconds: (t_let_build + t_let_vol) * 0.36, // gas share of tree depth
            flops: 0.0,
        });

        // --- Interaction calculations.
        let f_grav = n_loc * self.n_l_gravity(run) * PAPER_GRAVITY_OPS as f64;
        let eff_scale = |anchor_eff: f64, table4_anchor: f64, table4_here: f64| {
            // Scale the phase efficiency by the machine's kernel-efficiency
            // ratio relative to Fugaku's Table 4 value.
            (anchor_eff * table4_here / table4_anchor).min(0.95)
        };
        let eff_g = eff_scale(cal.phase_eff_gravity, 0.294, m.eff_gravity);
        phases.push(PhaseCost {
            name: "Interaction (gravity)",
            seconds: f_grav / (m.peak_sp_node * eff_g),
            flops: f_grav,
        });

        let f_hydro = n_gas_loc * self.n_l_hydro() * PAPER_HYDRO_OPS as f64;
        let eff_h = eff_scale(cal.phase_eff_hydro, 0.154, m.eff_hydro);
        phases.push(PhaseCost {
            name: "Interaction (hydro force)",
            seconds: f_hydro / (m.peak_sp_node * eff_h),
            flops: f_hydro,
        });

        let f_dens = n_gas_loc * self.n_l_hydro() * PAPER_DENSITY_OPS as f64;
        let eff_d = eff_scale(cal.phase_eff_density, 0.171, m.eff_density);
        phases.push(PhaseCost {
            name: "Density and pressure",
            seconds: f_dens / (m.peak_sp_node * eff_d),
            flops: f_dens,
        });

        // Kernel-size iteration: h_iterations density-like passes at reduced
        // efficiency (it interleaves tree walks, §5.2.5).
        let f_ks = f_dens * (cal.h_iterations - 1.0).max(0.0) * 0.47;
        phases.push(PhaseCost {
            name: "Kernel size calculation",
            seconds: f_ks / (m.peak_sp_node * eff_d * 0.17),
            flops: f_ks,
        });

        PhaseBreakdown { phases }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;

    /// The model must reproduce the paper's Table 3 anchor within tolerance.
    #[test]
    fn anchor_reproduces_table3_rows() {
        let model = StepModel::new(Machine::fugaku());
        let run = RunPoint::weak_mw2m_anchor();
        let b = model.step(&run);
        let check = |name: &str, paper_s: f64, tol: f64| {
            let got = b
                .get(name)
                .unwrap_or_else(|| panic!("phase {name}"))
                .seconds;
            assert!(
                (got / paper_s - 1.0).abs() < tol,
                "{name}: modeled {got:.3} s vs paper {paper_s} s"
            );
        };
        check("Particle exchange", 3.87, 0.35);
        check("Tree construction (gravity)", 0.96, 0.35);
        check("LET exchange (gravity)", 3.89, 0.35);
        check("Interaction (gravity)", 1.63, 0.35);
        check("Interaction (hydro force)", 0.34, 0.45);
        check("Density and pressure", 1.18, 0.45);
        check("Kernel size calculation", 3.18, 0.45);
        // Total in the 20 s ballpark (Table 3: 20.34 s with extra phases).
        assert!(
            (10.0..30.0).contains(&b.total_s()),
            "total {:.2} s",
            b.total_s()
        );
    }

    #[test]
    fn anchor_gravity_flops_match_table3() {
        let model = StepModel::new(Machine::fugaku());
        let run = RunPoint::weak_mw2m_anchor();
        let b = model.step(&run);
        // Table 3: 1.47e17 FLOP (gravity) per step across the system.
        let f_grav = b.get("Interaction (gravity)").unwrap().flops * run.p as f64;
        assert!(
            (f_grav / 1.47e17 - 1.0).abs() < 0.2,
            "gravity FLOP {f_grav:.3e}"
        );
        // Achieved PFLOPS for the gravity phase ~ 90 PF.
        let t = b.get("Interaction (gravity)").unwrap().seconds;
        let pf = f_grav / t / 1e15;
        assert!((60.0..130.0).contains(&pf), "gravity phase at {pf:.1} PF");
    }

    #[test]
    fn weak_scaling_total_grows_slowly_with_p() {
        // Fixed n_loc = 2e6: total time should grow from ~6-10 s at 128
        // nodes to ~20 s at 148k (log N work + comm), never shrinking.
        let model = StepModel::new(Machine::fugaku());
        let t_at = |p: usize| {
            model
                .step(&RunPoint {
                    n_tot: 2.0e6 * p as f64,
                    gas_frac: 0.163,
                    p,
                    n_g: 2048,
                })
                .total_s()
        };
        let t128 = t_at(128);
        let t4k = t_at(4096);
        let t148k = t_at(148_896);
        assert!(t128 < t4k && t4k < t148k, "{t128} {t4k} {t148k}");
        assert!((4.0..14.0).contains(&t128), "t(128) = {t128}");
        assert!((14.0..30.0).contains(&t148k), "t(148k) = {t148k}");
        // Growth is far milder than linear in p (1000x nodes, < 4x time).
        assert!(t148k / t128 < 4.0);
    }

    #[test]
    fn strong_scaling_saturates_when_comm_dominates() {
        // Fixed N: compute shrinks ~1/p, comm grows; wallclock must have a
        // minimum inside the node range.
        let model = StepModel::new(Machine::fugaku());
        let n_tot = 2.3e10; // the paper's small strong-scaling set
        let t_at = |p: usize| {
            model
                .step(&RunPoint {
                    n_tot,
                    gas_frac: 0.163,
                    p,
                    n_g: 2048,
                })
                .total_s()
        };
        let ps = [128usize, 512, 2048, 8192, 32768, 131072];
        let ts: Vec<f64> = ps.iter().map(|&p| t_at(p)).collect();
        // Early range: near-ideal speedup (>= 2.5x per 4x nodes).
        assert!(ts[0] / ts[1] > 2.0, "early speedup {} -> {}", ts[0], ts[1]);
        // Late range: saturation (speedup per 4x nodes < 2x).
        let late = ts[4] / ts[5];
        assert!(late < 2.0, "late speedup ratio {late}");
    }

    #[test]
    fn rusty_scales_cleanly_in_its_range() {
        // 193 nodes with 1.2e9 particles per rank: comm is negligible, so
        // halving nodes should roughly double the time.
        let model = StepModel::new(Machine::rusty());
        let n_tot = 2.3e11;
        let t_at = |p: usize| {
            model
                .step(&RunPoint {
                    n_tot,
                    gas_frac: 0.163,
                    p,
                    n_g: 2048,
                })
                .total_s()
        };
        let r = t_at(48) / t_at(193);
        assert!((2.8..5.0).contains(&r), "speedup 48->193: {r}");
    }

    #[test]
    fn miyabi_hydro_is_inefficient_as_measured() {
        // Table 4: GH200 hydro kernels run at a few percent efficiency, so
        // the hydro phases take a larger share than on Rusty.
        let run = RunPoint {
            n_tot: 2.0e10,
            gas_frac: 0.163,
            p: 1024,
            n_g: 65536,
        };
        let miyabi = StepModel::new(Machine::miyabi()).step(&run);
        let share =
            |b: &PhaseBreakdown| b.get("Interaction (hydro force)").unwrap().seconds / b.total_s();
        let rusty = StepModel::new(Machine::rusty()).step(&RunPoint { p: 193, ..run });
        assert!(share(&miyabi) > share(&rusty));
    }
}
