//! # perfmodel — machine models and scaling extrapolation
//!
//! We do not have Fugaku (158,976 A64FX nodes on a TofuD torus), the Rusty
//! genoa partition, or Miyabi GH200 nodes. Per DESIGN.md, this crate stands
//! in for them: analytic machine/network models whose *cost terms* are the
//! ones the paper derives —
//!
//! * interaction work `O(N (log N + n_g))` split between gravity
//!   (27 ops), density (73 ops) and hydro force (101 ops) kernels at the
//!   paper's measured per-architecture efficiencies (Table 4),
//! * tree construction `O(N log(N_loc)/n_g)` at memory-latency-bound rates,
//! * domain/particle exchange and LET exchange volumes growing with the
//!   domain surface, carried by a 3-D torus `O(p^{1/3})` alltoallv or a
//!   fat-tree alltoallv.
//!
//! Coefficients are calibrated once against the paper's published anchor
//! (Table 3: the 148,896-node weakMW2M breakdown); the *shapes* of
//! Figures 6 and 7 then follow from the functional forms. Each phase model
//! is independently testable.

#![forbid(unsafe_code)]

pub mod calibrate;
pub mod machine;
pub mod model;
pub mod scaling;

pub use machine::{Machine, Network};
pub use model::{PhaseBreakdown, RunPoint, StepModel};
pub use scaling::{strong_scaling, weak_scaling, ScalingCurve};
