//! Scaling-curve generators for Figures 6 (Fugaku) and 7 (Rusty).

use crate::machine::Machine;
use crate::model::{PhaseBreakdown, RunPoint, StepModel};

/// A scaling curve: one breakdown per node count.
#[derive(Debug, Clone)]
pub struct ScalingCurve {
    pub machine_name: &'static str,
    pub points: Vec<(usize, PhaseBreakdown)>,
}

impl ScalingCurve {
    /// Wall-clock totals per node count.
    pub fn totals(&self) -> Vec<(usize, f64)> {
        self.points.iter().map(|(p, b)| (*p, b.total_s())).collect()
    }

    /// CSV: node count, total, then one column per phase.
    pub fn to_csv(&self) -> String {
        let mut s = String::from("nodes,total_s");
        if let Some((_, first)) = self.points.first() {
            for ph in &first.phases {
                s.push(',');
                s.push_str(&ph.name.replace(' ', "_"));
            }
        }
        s.push('\n');
        for (p, b) in &self.points {
            s.push_str(&format!("{p},{:.6}", b.total_s()));
            for ph in &b.phases {
                s.push_str(&format!(",{:.6}", ph.seconds));
            }
            s.push('\n');
        }
        s
    }

    /// Parallel efficiency of the last point relative to the first,
    /// normalized per the paper's weak-scaling convention (log N growth
    /// divided out when `weak` is true).
    pub fn efficiency(&self, weak: bool) -> f64 {
        let (p0, t0) = self.totals()[0];
        let (p1, t1) = *self.totals().last().expect("non-empty curve");
        if weak {
            t0 / t1
        } else {
            (t0 * p0 as f64) / (t1 * p1 as f64)
        }
    }
}

/// Doubling sequence of node counts within `[lo, hi]`, always including both
/// endpoints.
pub fn node_sweep(lo: usize, hi: usize) -> Vec<usize> {
    assert!(lo >= 1 && hi >= lo);
    let mut out = vec![lo];
    let mut p = lo;
    while p * 2 < hi {
        p *= 2;
        out.push(p);
    }
    if *out.last().expect("non-empty") != hi {
        out.push(hi);
    }
    out
}

/// Weak scaling: fixed particles per node.
pub fn weak_scaling(
    machine: Machine,
    n_per_node: f64,
    gas_frac: f64,
    n_g: usize,
    nodes: &[usize],
) -> ScalingCurve {
    let model = StepModel::new(machine);
    ScalingCurve {
        machine_name: machine.name,
        points: nodes
            .iter()
            .map(|&p| {
                let run = RunPoint {
                    n_tot: n_per_node * p as f64,
                    gas_frac,
                    p,
                    n_g,
                };
                (p, model.step(&run))
            })
            .collect(),
    }
}

/// Strong scaling: fixed total particle count.
pub fn strong_scaling(
    machine: Machine,
    n_tot: f64,
    gas_frac: f64,
    n_g: usize,
    nodes: &[usize],
) -> ScalingCurve {
    let model = StepModel::new(machine);
    ScalingCurve {
        machine_name: machine.name,
        points: nodes
            .iter()
            .map(|&p| {
                let run = RunPoint {
                    n_tot,
                    gas_frac,
                    p,
                    n_g,
                };
                (p, model.step(&run))
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_sweep_includes_endpoints_and_doubles() {
        let s = node_sweep(128, 148_896);
        assert_eq!(*s.first().unwrap(), 128);
        assert_eq!(*s.last().unwrap(), 148_896);
        for w in s.windows(2) {
            assert!(w[1] > w[0]);
            assert!(w[1] <= w[0] * 2 || w[1] == 148_896);
        }
    }

    #[test]
    fn weak_scaling_efficiency_matches_paper_ballpark() {
        // Paper §5.1: "the efficiency of 148k nodes is 54 % of 128 nodes"
        // (after accounting for the log N work growth; raw ratio is lower).
        let curve = weak_scaling(
            Machine::fugaku(),
            2.0e6,
            0.163,
            2048,
            &node_sweep(128, 148_896),
        );
        let eff = curve.efficiency(true);
        assert!((0.25..0.75).contains(&eff), "raw weak efficiency {eff}");
        // Correct for the log2(N) growth of the interaction work, as the
        // paper does: the corrected efficiency should land near 54 %.
        let n0: f64 = 2.0e6 * 128.0;
        let n1: f64 = 2.0e6 * 148_896.0;
        let corrected = eff * (n1.log2() / n0.log2());
        assert!(
            (0.35..0.85).contains(&corrected),
            "log-corrected efficiency {corrected}"
        );
    }

    #[test]
    fn strong_scaling_speedup_is_monotone_until_saturation() {
        let curve = strong_scaling(
            Machine::fugaku(),
            1.5e11,
            0.163,
            2048,
            &node_sweep(4096, 148_896),
        );
        let totals = curve.totals();
        // Time decreases at first.
        assert!(totals[1].1 < totals[0].1);
        // All totals positive and finite.
        assert!(totals.iter().all(|(_, t)| t.is_finite() && *t > 0.0));
    }

    #[test]
    fn csv_has_one_row_per_point() {
        let curve = weak_scaling(Machine::rusty(), 1.2e9, 0.163, 2048, &[11, 48, 193]);
        let csv = curve.to_csv();
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.starts_with("nodes,total_s,"));
    }

    #[test]
    fn ten_seconds_per_step_is_reachable_at_scale() {
        // Paper §5.1: "It is important to reach ~10 sec per step"; the model
        // at the anchor must be O(10 s), not O(minutes).
        let curve = weak_scaling(Machine::fugaku(), 2.0e6, 0.163, 2048, &[148_896]);
        let t = curve.totals()[0].1;
        assert!((8.0..40.0).contains(&t), "t/step = {t}");
    }
}
