//! Host calibration: measure this machine's interaction-kernel throughput
//! so benches can report host GFLOPS next to the paper's Table 4 numbers.

use pikg::kernels::PAPER_GRAVITY_OPS;
use std::time::Instant;

/// Result of a kernel throughput measurement.
#[derive(Debug, Clone, Copy)]
pub struct KernelRate {
    /// Counted GFLOP/s (paper operation conventions).
    pub gflops: f64,
    /// Interactions per second.
    pub interactions_per_s: f64,
}

/// Measure the softened gravity kernel on `n_i x n_j` synthetic
/// interactions, in single precision relative coordinates (the paper's hot
/// loop shape).
pub fn measure_gravity(n_i: usize, n_j: usize, repeats: usize) -> KernelRate {
    let jx: Vec<f32> = (0..n_j).map(|j| (j as f32 * 0.37).sin()).collect();
    let jy: Vec<f32> = (0..n_j).map(|j| (j as f32 * 0.73).cos()).collect();
    let jz: Vec<f32> = (0..n_j).map(|j| (j as f32 * 0.11).sin()).collect();
    let jm: Vec<f32> = (0..n_j).map(|j| 1.0 + (j % 7) as f32 * 0.1).collect();
    let mut acc = vec![[0.0f32; 4]; n_i];

    let t0 = Instant::now();
    for _ in 0..repeats {
        for (i, out) in acc.iter_mut().enumerate() {
            let xi = (i as f32 * 0.21).cos();
            let yi = (i as f32 * 0.57).sin();
            let zi = (i as f32 * 0.93).cos();
            let (mut ax, mut ay, mut az, mut pot) = (0.0f32, 0.0, 0.0, 0.0);
            for j in 0..n_j {
                let dx = xi - jx[j];
                let dy = yi - jy[j];
                let dz = zi - jz[j];
                let r2 = dx * dx + dy * dy + dz * dz + 1e-4;
                let rinv = 1.0 / r2.sqrt();
                let rinv2 = rinv * rinv;
                let mrinv = jm[j] * rinv;
                let mr3 = mrinv * rinv2;
                ax -= mr3 * dx;
                ay -= mr3 * dy;
                az -= mr3 * dz;
                pot += mrinv;
            }
            out[0] += ax;
            out[1] += ay;
            out[2] += az;
            out[3] += pot;
        }
    }
    let dt = t0.elapsed().as_secs_f64();
    // Keep the result observable so the loop cannot be optimized away.
    let checksum: f32 = acc.iter().map(|a| a[3]).sum();
    assert!(checksum.is_finite());

    let interactions = (n_i * n_j * repeats) as f64;
    KernelRate {
        gflops: interactions * PAPER_GRAVITY_OPS as f64 / dt / 1e9,
        interactions_per_s: interactions / dt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gravity_rate_is_positive_and_plausible() {
        let r = measure_gravity(64, 512, 4);
        assert!(r.gflops > 0.01, "gflops {}", r.gflops);
        // Any machine built this century does > 10 M interactions/s/core
        // in this loop and < 10^13 (beyond single-core peak).
        assert!(r.interactions_per_s > 1e6);
        assert!(r.interactions_per_s < 1e13);
    }

    #[test]
    fn throughput_is_roughly_size_independent() {
        let a = measure_gravity(32, 1024, 4);
        let b = measure_gravity(128, 1024, 4);
        let ratio = a.gflops / b.gflops;
        assert!((0.2..5.0).contains(&ratio), "ratio {ratio}");
    }
}
