//! Turbulent velocity fields with a `P(k) ∝ k^-4` (Burgers) spectrum.
//!
//! Paper §3.3: "we use density fields disturbed by turbulent velocity
//! fields that follow ∝ v^-4, which imitate environments of star-forming
//! regions". The field is synthesized as a superposition of randomly
//! oriented, randomly phased solenoidal plane waves whose amplitudes follow
//! the target spectrum — no FFT needed, and the field is smooth and
//! divergence-free by construction.

use rand::Rng;

/// A synthesized turbulent velocity field on a periodic cube of side `l`.
#[derive(Debug, Clone)]
pub struct TurbulentField {
    modes: Vec<Mode>,
    /// RMS velocity the field is scaled to.
    pub v_rms: f64,
}

#[derive(Debug, Clone, Copy)]
struct Mode {
    k: [f64; 3],
    /// Polarization unit vector, perpendicular to k (solenoidal).
    e: [f64; 3],
    amp: f64,
    phase: f64,
}

impl TurbulentField {
    /// Build a field on a cube of side `l` with wavenumbers `1..=k_max`
    /// (in units of `2 pi / l`), spectral slope `P(k) ∝ k^{-slope}` (the
    /// paper's value is 4), scaled to `v_rms`.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, l: f64, k_max: usize, slope: f64, v_rms: f64) -> Self {
        assert!(l > 0.0 && k_max >= 1 && v_rms >= 0.0);
        let two_pi = std::f64::consts::TAU;
        let mut modes = Vec::new();
        for kx in -(k_max as i64)..=(k_max as i64) {
            for ky in -(k_max as i64)..=(k_max as i64) {
                for kz in 0..=(k_max as i64) {
                    // Half-space to avoid double-counting conjugate modes.
                    if kz == 0 && (ky < 0 || (ky == 0 && kx <= 0)) {
                        continue;
                    }
                    let kn2 = (kx * kx + ky * ky + kz * kz) as f64;
                    let kn = kn2.sqrt();
                    if kn < 0.5 || kn > k_max as f64 {
                        continue;
                    }
                    let k = [
                        two_pi * kx as f64 / l,
                        two_pi * ky as f64 / l,
                        two_pi * kz as f64 / l,
                    ];
                    // Random solenoidal polarization: project a random
                    // vector onto the plane perpendicular to k.
                    let r = [
                        rng.gen_range(-1.0..1.0f64),
                        rng.gen_range(-1.0..1.0f64),
                        rng.gen_range(-1.0..1.0f64),
                    ];
                    let dot = (r[0] * k[0] + r[1] * k[1] + r[2] * k[2])
                        / (k[0] * k[0] + k[1] * k[1] + k[2] * k[2]);
                    let mut e = [r[0] - dot * k[0], r[1] - dot * k[1], r[2] - dot * k[2]];
                    let en = (e[0] * e[0] + e[1] * e[1] + e[2] * e[2]).sqrt();
                    if en < 1e-9 {
                        continue; // degenerate draw
                    }
                    for c in e.iter_mut() {
                        *c /= en;
                    }
                    // Amplitude: |v_k|^2 ∝ P(k) ∝ k^-slope, Rayleigh draw.
                    let sigma = kn.powf(-slope * 0.5);
                    let u: f64 = rng.gen::<f64>().max(1e-12);
                    let amp = sigma * (-2.0 * u.ln()).sqrt();
                    modes.push(Mode {
                        k,
                        e,
                        amp,
                        phase: rng.gen_range(0.0..two_pi),
                    });
                }
            }
        }
        assert!(!modes.is_empty(), "k_max too small for any mode");
        let mut field = TurbulentField { modes, v_rms: 1.0 };
        // Normalize to the requested rms using the analytic mode variance:
        // each cosine mode contributes amp^2/2 per component set.
        let var: f64 = field.modes.iter().map(|m| 0.5 * m.amp * m.amp).sum();
        let scale = if var > 0.0 { v_rms / var.sqrt() } else { 0.0 };
        for m in field.modes.iter_mut() {
            m.amp *= scale;
        }
        field.v_rms = v_rms;
        field
    }

    /// Velocity at a position.
    pub fn velocity(&self, p: [f64; 3]) -> [f64; 3] {
        let mut v = [0.0; 3];
        for m in &self.modes {
            let phase = m.k[0] * p[0] + m.k[1] * p[1] + m.k[2] * p[2] + m.phase;
            let c = m.amp * phase.cos();
            v[0] += c * m.e[0];
            v[1] += c * m.e[1];
            v[2] += c * m.e[2];
        }
        v
    }

    /// Numerical divergence at `p` (central differences, step `eps`).
    pub fn divergence(&self, p: [f64; 3], eps: f64) -> f64 {
        let mut div = 0.0;
        for axis in 0..3 {
            let mut hi = p;
            let mut lo = p;
            hi[axis] += eps;
            lo[axis] -= eps;
            div += (self.velocity(hi)[axis] - self.velocity(lo)[axis]) / (2.0 * eps);
        }
        div
    }

    /// Number of synthesized modes.
    pub fn mode_count(&self) -> usize {
        self.modes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rms_velocity_matches_request() {
        let mut rng = StdRng::seed_from_u64(1);
        let field = TurbulentField::new(&mut rng, 60.0, 4, 4.0, 10.0);
        let mut sum2 = 0.0;
        let n = 1000;
        let mut r2 = StdRng::seed_from_u64(2);
        for _ in 0..n {
            let p = [
                r2.gen_range(0.0..60.0),
                r2.gen_range(0.0..60.0),
                r2.gen_range(0.0..60.0),
            ];
            let v = field.velocity(p);
            sum2 += v[0] * v[0] + v[1] * v[1] + v[2] * v[2];
        }
        let rms = (sum2 / n as f64).sqrt();
        assert!((rms / 10.0 - 1.0).abs() < 0.25, "rms = {rms}, wanted 10");
    }

    #[test]
    fn field_is_nearly_divergence_free() {
        let mut rng = StdRng::seed_from_u64(3);
        let field = TurbulentField::new(&mut rng, 60.0, 3, 4.0, 5.0);
        let mut r2 = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let p = [
                r2.gen_range(0.0..60.0),
                r2.gen_range(0.0..60.0),
                r2.gen_range(0.0..60.0),
            ];
            let div = field.divergence(p, 1e-4);
            // Compare against the velocity gradient scale v_rms * k_typ.
            let scale = 5.0 * std::f64::consts::TAU / 60.0 * 3.0;
            assert!(
                div.abs() < 0.02 * scale + 1e-6,
                "divergence {div} too large"
            );
        }
    }

    #[test]
    fn spectrum_is_steep_large_scales_dominate() {
        // With slope 4, the k=1 modes must carry far more power than k_max.
        let mut rng = StdRng::seed_from_u64(5);
        let field = TurbulentField::new(&mut rng, 1.0, 6, 4.0, 1.0);
        let mut p_low = 0.0;
        let mut p_high = 0.0;
        let two_pi = std::f64::consts::TAU;
        for m in &field.modes {
            let kn = (m.k[0] * m.k[0] + m.k[1] * m.k[1] + m.k[2] * m.k[2]).sqrt() / two_pi;
            if kn < 2.0 {
                p_low += 0.5 * m.amp * m.amp;
            } else if kn > 4.0 {
                p_high += 0.5 * m.amp * m.amp;
            }
        }
        // Rayleigh-drawn amplitudes fluctuate, so the margin is loose; the
        // analytic shell-power ratio is ~10x.
        assert!(p_low > 2.0 * p_high, "low {p_low} vs high {p_high}");
    }

    #[test]
    fn field_is_periodic() {
        let mut rng = StdRng::seed_from_u64(6);
        let l = 10.0;
        let field = TurbulentField::new(&mut rng, l, 3, 4.0, 1.0);
        let p = [1.2, 3.4, 5.6];
        let q = [p[0] + l, p[1] - l, p[2] + 2.0 * l];
        let vp = field.velocity(p);
        let vq = field.velocity(q);
        for a in 0..3 {
            assert!((vp[a] - vq[a]).abs() < 1e-9, "axis {a}");
        }
    }

    #[test]
    fn zero_rms_gives_zero_field() {
        let mut rng = StdRng::seed_from_u64(7);
        let field = TurbulentField::new(&mut rng, 10.0, 2, 4.0, 0.0);
        let v = field.velocity([1.0, 2.0, 3.0]);
        assert_eq!(v, [0.0, 0.0, 0.0]);
    }
}
