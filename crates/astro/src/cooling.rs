//! Radiative cooling and heating (paper §3.2 step 6, "Feedback_and_Cooling").
//!
//! The cooling function is a piecewise power-law approximation of a standard
//! primordial+metals curve (Sutherland & Dopita shape): a steep rise above
//! 10^4 K (Ly-alpha), a peak near 10^5 K, a slow decline to the
//! bremsstrahlung regime, plus low-temperature fine-structure cooling. The
//! update uses **Townsend (2009) exact integration**, which is
//! unconditionally stable — no cooling subcycling is needed even in the
//! 10^7 K SN bubbles where explicit integration would demand tiny steps.

/// One power-law segment: `Lambda(T) = lambda_k * (T / t_k)^{alpha_k}` on
/// `[t_k, t_{k+1})`.
#[derive(Debug, Clone, Copy)]
struct Segment {
    t: f64,
    lambda: f64,
    alpha: f64,
    /// Townsend's temporal evolution function offset Y_k.
    y: f64,
}

/// A piecewise power-law cooling curve with exact-integration updates.
///
/// `Lambda` is the normalized cooling rate in erg cm^3 / s; the volumetric
/// loss is `n_H^2 Lambda(T)`.
#[derive(Debug, Clone)]
pub struct CoolingCurve {
    segments: Vec<Segment>,
    t_floor: f64,
    t_ceil: f64,
    /// Photoelectric/UV heating rate per hydrogen atom [erg/s].
    pub heating_per_nh: f64,
    /// Mean molecular weight used for the u <-> T conversion.
    pub mu: f64,
    pub gamma: f64,
}

impl Default for CoolingCurve {
    fn default() -> Self {
        Self::standard_ism()
    }
}

impl CoolingCurve {
    /// A standard ISM curve: anchors `(T \[K\], Lambda [erg cm^3/s])` with
    /// power-law interpolation, from fine-structure cooling at 10 K to
    /// bremsstrahlung at 10^8 K.
    pub fn standard_ism() -> Self {
        let anchors: [(f64, f64); 7] = [
            (1.0e1, 1.0e-27),
            (1.0e3, 3.0e-27),
            (1.0e4, 1.0e-24),
            (1.0e5, 3.0e-22),
            (1.0e6, 3.0e-23),
            (1.0e7, 1.0e-23),
            (1.0e8, 3.0e-23),
        ];
        Self::from_anchors(&anchors, 10.0, 1.0e8, 2.0e-26)
    }

    /// Build from `(T, Lambda)` anchors (ascending T, positive Lambda).
    pub fn from_anchors(
        anchors: &[(f64, f64)],
        t_floor: f64,
        t_ceil: f64,
        heating_per_nh: f64,
    ) -> Self {
        assert!(anchors.len() >= 2, "need at least two anchors");
        let mut segments: Vec<Segment> = Vec::with_capacity(anchors.len());
        for w in anchors.windows(2) {
            let (t0, l0) = w[0];
            let (t1, l1) = w[1];
            assert!(t1 > t0 && l0 > 0.0 && l1 > 0.0, "anchors must ascend");
            let alpha = (l1 / l0).ln() / (t1 / t0).ln();
            segments.push(Segment {
                t: t0,
                lambda: l0,
                alpha,
                y: 0.0,
            });
        }
        // Final open segment continues the last slope.
        let (t_last, l_last) = *anchors.last().expect("non-empty");
        let alpha_last = segments.last().expect("non-empty").alpha;
        segments.push(Segment {
            t: t_last,
            lambda: l_last,
            alpha: alpha_last,
            y: 0.0,
        });
        let mut curve = CoolingCurve {
            segments,
            t_floor,
            t_ceil,
            heating_per_nh,
            mu: 1.27,
            gamma: 5.0 / 3.0,
        };
        curve.fill_townsend_y();
        curve
    }

    /// `g(T)` for segment `k`: the dimensionless integral
    /// `Int_{T_k}^{T} (Lambda_ref / Lambda(T')) dT' / T_ref` in closed form.
    fn seg_integral(&self, k: usize, t: f64) -> f64 {
        let n = self.segments.len();
        let (t_ref, l_ref) = (self.segments[n - 1].t, self.segments[n - 1].lambda);
        let s = &self.segments[k];
        let a = (l_ref / s.lambda) * (s.t / t_ref);
        if (s.alpha - 1.0).abs() < 1e-12 {
            a * (t / s.t).ln()
        } else {
            a / (1.0 - s.alpha) * ((t / s.t).powf(1.0 - s.alpha) - 1.0)
        }
    }

    /// Inverse of [`CoolingCurve::seg_integral`] on segment `k`.
    fn seg_integral_inverse(&self, k: usize, g: f64) -> f64 {
        let n = self.segments.len();
        let (t_ref, l_ref) = (self.segments[n - 1].t, self.segments[n - 1].lambda);
        let s = &self.segments[k];
        let a = (l_ref / s.lambda) * (s.t / t_ref);
        if (s.alpha - 1.0).abs() < 1e-12 {
            s.t * (g / a).exp()
        } else {
            let base = 1.0 + (1.0 - s.alpha) * g / a;
            if base <= 0.0 {
                // Cooled through the bottom of the segment within the step.
                return self.t_floor;
            }
            s.t * base.powf(1.0 / (1.0 - s.alpha))
        }
    }

    /// Precompute Townsend's Y(T) at segment boundaries, with the reference
    /// temperature at the top of the curve. Y decreases as T increases:
    /// `Y(T_k) = Y(T_{k+1}) + g_k(T_{k+1})`.
    fn fill_townsend_y(&mut self) {
        let n = self.segments.len();
        self.segments[n - 1].y = 0.0;
        for k in (0..n - 1).rev() {
            let t_next = self.segments[k + 1].t;
            let y_next = self.segments[k + 1].y;
            let term = self.seg_integral(k, t_next);
            self.segments[k].y = y_next + term;
        }
    }

    fn segment_index(&self, t: f64) -> usize {
        match self
            .segments
            .binary_search_by(|s| s.t.partial_cmp(&t).expect("finite T"))
        {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        }
    }

    /// Cooling rate `Lambda(T)` [erg cm^3/s], clamped to the curve's domain.
    pub fn lambda(&self, t: f64) -> f64 {
        let t = t.clamp(self.t_floor, self.t_ceil);
        let s = &self.segments[self.segment_index(t)];
        s.lambda * (t / s.t).powf(s.alpha)
    }

    /// Townsend Y(T): `Y(T) = Y_k - g_k(T)` on the segment containing T.
    fn y_of(&self, t: f64) -> f64 {
        let k = self.segment_index(t);
        self.segments[k].y - self.seg_integral(k, t)
    }

    /// Inverse of Y: find the segment whose [Y_{k+1}, Y_k] brackets `y`,
    /// then invert the closed-form integral.
    fn y_inverse(&self, y: f64) -> f64 {
        let n = self.segments.len();
        if y >= self.segments[0].y {
            return self.t_floor; // cooled below the curve's domain
        }
        if y <= 0.0 {
            return self.t_ceil;
        }
        let mut k = n - 1;
        for i in 0..n - 1 {
            if y <= self.segments[i].y && y >= self.segments[i + 1].y {
                k = i;
                break;
            }
        }
        self.seg_integral_inverse(k, self.segments[k].y - y)
    }

    /// Exact-integration cooling update (Townsend 2009): temperature after
    /// cooling gas at hydrogen density `nh` \[cm^-3\] from temperature `t` \[K\]
    /// for `dt_myr` megayears. Heating is applied operator-split afterwards.
    pub fn cool_to(&self, t: f64, nh: f64, dt_myr: f64) -> f64 {
        let t = t.clamp(self.t_floor, self.t_ceil);
        if nh <= 0.0 || dt_myr <= 0.0 {
            return t;
        }
        let n = self.segments.len();
        let (t_ref, l_ref) = (self.segments[n - 1].t, self.segments[n - 1].lambda);
        // t_cool at the reference: (3/2) k_B T_ref (mu_e mu_H / mu) /
        // (n Lambda_ref). We fold composition factors into a single n_H^2
        // convention: de/dt = -n_H^2 Lambda, e = 3/2 n k T with n = n_H/x.
        const KB: f64 = 1.380_649e-16; // erg/K
        let n_over_nh = 1.1 / self.mu * 1.27; // total particles per H (approx)
        let e_per_t = 1.5 * KB * nh * n_over_nh; // erg cm^-3 K^-1
        let dt_s = dt_myr * crate::units::SECONDS_PER_MYR;
        // With Y normalized by the reference point, dY/dt = 1 / t_cool_ref
        // where t_cool_ref is constant over the step — the whole point of
        // Townsend's exact scheme.
        let t_cool_ref = e_per_t * t_ref / (nh * nh * l_ref); // seconds
        let y_new = self.y_of(t) + dt_s / t_cool_ref;
        let t_new = self.y_inverse(y_new);
        t_new.clamp(self.t_floor, self.t_ceil)
    }

    /// Heating-only update: `de/dt = n_H Gamma`, exact for constant Gamma.
    pub fn heat_to(&self, t: f64, nh: f64, dt_myr: f64) -> f64 {
        if nh <= 0.0 || dt_myr <= 0.0 {
            return t;
        }
        const KB: f64 = 1.380_649e-16;
        let n_over_nh = 1.1 / self.mu * 1.27;
        let e_per_t = 1.5 * KB * nh * n_over_nh;
        let dt_s = dt_myr * crate::units::SECONDS_PER_MYR;
        let dtemp = nh * self.heating_per_nh * dt_s / e_per_t;
        (t + dtemp).clamp(self.t_floor, self.t_ceil)
    }

    /// Operator-split cool + heat update over `dt_myr`.
    pub fn update(&self, t: f64, nh: f64, dt_myr: f64) -> f64 {
        self.heat_to(self.cool_to(t, nh, dt_myr), nh, dt_myr)
    }

    /// Equilibrium temperature where heating balances cooling at `nh`
    /// (bisection; returns the floor/ceiling when no balance exists).
    pub fn equilibrium_temperature(&self, nh: f64) -> f64 {
        let net = |t: f64| nh * self.heating_per_nh - nh * nh * self.lambda(t);
        let (mut lo, mut hi) = (self.t_floor, self.t_ceil);
        if net(lo) <= 0.0 {
            return lo;
        }
        if net(hi) >= 0.0 {
            return hi;
        }
        for _ in 0..200 {
            let mid = (lo * hi).sqrt();
            if net(mid) > 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        (lo * hi).sqrt()
    }

    /// Explicit subcycled update, for validating the exact integrator.
    pub fn cool_explicit(&self, t0: f64, nh: f64, dt_myr: f64, substeps: usize) -> f64 {
        const KB: f64 = 1.380_649e-16;
        let n_over_nh = 1.1 / self.mu * 1.27;
        let e_per_t = 1.5 * KB * nh * n_over_nh;
        let dt_s = dt_myr * crate::units::SECONDS_PER_MYR / substeps as f64;
        let mut t = t0;
        for _ in 0..substeps {
            let dedt = -nh * nh * self.lambda(t);
            t = (t + dedt * dt_s / e_per_t).clamp(self.t_floor, self.t_ceil);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambda_interpolates_anchors_exactly() {
        let c = CoolingCurve::standard_ism();
        assert!((c.lambda(1.0e4) / 1.0e-24 - 1.0).abs() < 1e-9);
        assert!((c.lambda(1.0e5) / 3.0e-22 - 1.0).abs() < 1e-9);
        // Between anchors it's a power law: check log-midpoint.
        let t_mid = (1.0e4f64 * 1.0e5).sqrt();
        let l_mid = (1.0e-24f64 * 3.0e-22).sqrt();
        assert!((c.lambda(t_mid) / l_mid - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cooling_always_decreases_temperature() {
        let c = CoolingCurve::standard_ism();
        for &t in &[1e2, 1e4, 1e5, 1e6, 1e7] {
            let t_new = c.cool_to(t, 1.0, 1.0);
            assert!(t_new <= t, "T={t} cooled to {t_new}");
            assert!(t_new >= 10.0);
        }
    }

    #[test]
    fn exact_integration_matches_fine_subcycling() {
        let c = CoolingCurve::standard_ism();
        for &(t0, nh, dt) in &[(1.0e6, 0.1, 1.0), (3.0e4, 1.0, 0.3), (1.0e7, 0.01, 5.0)] {
            let exact = c.cool_to(t0, nh, dt);
            let explicit = c.cool_explicit(t0, nh, dt, 200_000);
            let rel = (exact - explicit).abs() / explicit;
            assert!(
                rel < 0.05,
                "T0={t0} nh={nh} dt={dt}: exact {exact} vs explicit {explicit}"
            );
        }
    }

    #[test]
    fn exact_integration_is_stable_for_huge_steps() {
        // A step 1000x the cooling time must land at the floor, not NaN.
        let c = CoolingCurve::standard_ism();
        let t = c.cool_to(1.0e6, 100.0, 100.0);
        assert!(t.is_finite());
        assert!(t >= 10.0);
        assert!(t < 1000.0, "dense hot gas must cool drastically: {t}");
    }

    #[test]
    fn heating_raises_cold_gas_to_equilibrium() {
        let c = CoolingCurve::standard_ism();
        let nh = 0.1;
        let teq = c.equilibrium_temperature(nh);
        assert!(teq > 10.0 && teq < 1.0e5, "T_eq = {teq}");
        // Repeated updates converge toward equilibrium from both sides.
        let mut t_lo = 20.0;
        let mut t_hi = 1.0e6;
        for _ in 0..2000 {
            t_lo = c.update(t_lo, nh, 0.5);
            t_hi = c.update(t_hi, nh, 0.5);
        }
        assert!(
            (t_lo / teq).ln().abs() < 1.0,
            "from below: {t_lo} vs eq {teq}"
        );
        assert!(
            (t_hi / teq).ln().abs() < 1.0,
            "from above: {t_hi} vs eq {teq}"
        );
    }

    #[test]
    fn denser_gas_cools_faster() {
        let c = CoolingCurve::standard_ism();
        let t_thin = c.cool_to(1.0e6, 0.01, 0.1);
        let t_dense = c.cool_to(1.0e6, 10.0, 0.1);
        assert!(t_dense < t_thin);
    }

    #[test]
    fn zero_density_or_time_is_identity() {
        let c = CoolingCurve::standard_ism();
        assert_eq!(c.cool_to(1e5, 0.0, 1.0), 1e5);
        assert_eq!(c.cool_to(1e5, 1.0, 0.0), 1e5);
        assert_eq!(c.update(1e5, 0.0, 1.0), 1e5);
    }

    #[test]
    fn equilibrium_scales_inversely_with_density() {
        // Higher density => cooling wins at lower T => lower T_eq.
        let c = CoolingCurve::standard_ism();
        let t1 = c.equilibrium_temperature(0.01);
        let t2 = c.equilibrium_temperature(10.0);
        assert!(t2 < t1, "T_eq({}) = {t2} !< T_eq(0.01) = {t1}", 10.0);
    }
}
