//! Core-collapse supernova nucleosynthesis yields — the chemical side of
//! the paper's Figure 1: "These explosions inject both energy and heavy
//! elements, such as carbon (C), oxygen (O), magnesium (Mg), and iron (Fe)
//! into the surrounding interstellar gas."
//!
//! Yields follow the standard mass-dependent fits (Nomoto et al. 2006
//! shape): ejecta mass grows with progenitor mass, oxygen steeply, iron
//! weakly.

/// The tracked species, in the order Figure 1 names them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Species {
    Carbon,
    Oxygen,
    Magnesium,
    Iron,
}

pub const ALL_SPECIES: [Species; 4] = [
    Species::Carbon,
    Species::Oxygen,
    Species::Magnesium,
    Species::Iron,
];

/// Ejected masses \[M_sun\] from one core-collapse SN.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SnYield {
    /// Total ejecta (progenitor minus the ~1.4 M_sun remnant).
    pub ejecta: f64,
    pub c: f64,
    pub o: f64,
    pub mg: f64,
    pub fe: f64,
}

impl SnYield {
    /// Yields for a progenitor of initial mass `m` \[M_sun\] (valid for the
    /// 8–40 M_sun core-collapse window).
    pub fn for_progenitor(m: f64) -> SnYield {
        assert!(m > 0.0);
        let m = m.clamp(8.0, 40.0);
        // Remnant: neutron star below ~25 M_sun, growing black hole above.
        let remnant = if m < 25.0 {
            1.5
        } else {
            1.5 + 0.2 * (m - 25.0)
        };
        let ejecta = (m - remnant).max(0.0);
        // Power-law fits to tabulated solar-metallicity yields.
        let o = 0.05 * (m / 13.0_f64).powf(2.6); // steeply rising
        let c = 0.10 * (m / 13.0_f64).powf(1.0);
        let mg = 0.025 * (m / 13.0_f64).powf(2.0);
        let fe = 0.07 + 0.002 * (m - 13.0).max(0.0); // nearly flat
        SnYield {
            ejecta,
            c,
            o,
            mg,
            fe,
        }
    }

    /// Total metal mass ejected.
    pub fn metals(&self) -> f64 {
        self.c + self.o + self.mg + self.fe
    }

    /// Access by species.
    pub fn of(&self, s: Species) -> f64 {
        match s {
            Species::Carbon => self.c,
            Species::Oxygen => self.o,
            Species::Magnesium => self.mg,
            Species::Iron => self.fe,
        }
    }
}

/// Distribute one SN's yields over neighbour gas particles with the given
/// (unnormalized) weights: returns the metal-mass increments per neighbour
/// per species, ordered as [`ALL_SPECIES`].
pub fn distribute_yields(y: &SnYield, weights: &[f64]) -> Vec<[f64; 4]> {
    let wsum: f64 = weights.iter().sum();
    if wsum <= 0.0 {
        return vec![[0.0; 4]; weights.len()];
    }
    weights
        .iter()
        .map(|&w| {
            let f = w / wsum;
            [y.c * f, y.o * f, y.mg * f, y.fe * f]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ejecta_less_than_progenitor_and_positive() {
        for m in [8.0, 13.0, 20.0, 30.0, 40.0] {
            let y = SnYield::for_progenitor(m);
            assert!(y.ejecta > 0.0 && y.ejecta < m, "m={m}: {:?}", y.ejecta);
            assert!(y.metals() < y.ejecta, "metals exceed ejecta at m={m}");
        }
    }

    #[test]
    fn oxygen_rises_steeply_iron_stays_flat() {
        let y13 = SnYield::for_progenitor(13.0);
        let y30 = SnYield::for_progenitor(30.0);
        assert!(y30.o / y13.o > 5.0, "O ratio {}", y30.o / y13.o);
        assert!(y30.fe / y13.fe < 2.0, "Fe ratio {}", y30.fe / y13.fe);
        // Alpha-to-iron grows with progenitor mass: the [O/Fe] plateau of
        // old stellar populations.
        assert!(y30.o / y30.fe > y13.o / y13.fe);
    }

    #[test]
    fn typical_iron_yield_is_about_0p07_msun() {
        // Canonical SN II iron: ~0.07 M_sun (SN 1987A-like).
        let y = SnYield::for_progenitor(15.0);
        assert!((0.05..0.12).contains(&y.fe), "Fe = {}", y.fe);
    }

    #[test]
    fn species_accessor_matches_fields() {
        let y = SnYield::for_progenitor(20.0);
        assert_eq!(y.of(Species::Carbon), y.c);
        assert_eq!(y.of(Species::Oxygen), y.o);
        assert_eq!(y.of(Species::Magnesium), y.mg);
        assert_eq!(y.of(Species::Iron), y.fe);
    }

    #[test]
    fn distribution_conserves_each_species() {
        let y = SnYield::for_progenitor(18.0);
        let weights = [1.0, 3.0, 0.5, 2.5];
        let given = distribute_yields(&y, &weights);
        let mut totals = [0.0f64; 4];
        for g in &given {
            for k in 0..4 {
                totals[k] += g[k];
            }
        }
        for (k, s) in ALL_SPECIES.iter().enumerate() {
            assert!((totals[k] - y.of(*s)).abs() < 1e-12, "{s:?}");
        }
    }

    #[test]
    fn zero_weights_give_nothing() {
        let y = SnYield::for_progenitor(12.0);
        let given = distribute_yields(&y, &[0.0, 0.0]);
        assert!(given.iter().all(|g| g.iter().all(|&v| v == 0.0)));
    }

    #[test]
    fn out_of_window_masses_clamp() {
        assert_eq!(SnYield::for_progenitor(5.0), SnYield::for_progenitor(8.0));
        assert_eq!(SnYield::for_progenitor(80.0), SnYield::for_progenitor(40.0));
    }
}
