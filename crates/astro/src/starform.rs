//! Star formation (paper §3.2 step 6, "Star Formation").
//!
//! Gas that is cold, dense and collapsing converts into star particles.
//! In a star-by-star run each new star particle *is* a single star whose
//! mass is drawn from the IMF, capped by the gas particle's mass.

use crate::imf::KroupaImf;
use crate::units::G;
use rand::Rng;

/// Thresholds a gas particle must satisfy to be star-forming.
#[derive(Debug, Clone, Copy)]
pub struct StarFormationCriteria {
    /// Density threshold [M_sun / pc^3]. ~100 cm^-3 => ~3.2 M_sun/pc^3.
    pub rho_min: f64,
    /// Temperature ceiling \[K\] (star-forming gas is ~10-100 K).
    pub t_max: f64,
    /// Star-formation efficiency per free-fall time.
    pub efficiency: f64,
}

impl Default for StarFormationCriteria {
    fn default() -> Self {
        StarFormationCriteria {
            rho_min: 3.2,
            t_max: 100.0,
            efficiency: 0.02,
        }
    }
}

/// Star-formation model: criteria + IMF sampling.
#[derive(Debug, Clone, Default)]
pub struct StarFormation {
    pub criteria: StarFormationCriteria,
    pub imf: KroupaImf,
}

/// Outcome of a star-formation trial for one gas particle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SfOutcome {
    /// Not eligible or unlucky this step.
    None,
    /// A star of the given mass forms; the gas particle keeps the remainder.
    Spawn { star_mass: f64, gas_left: f64 },
    /// The entire gas particle converts (sampled mass >= gas mass).
    Convert { star_mass: f64 },
}

/// Local free-fall time \[Myr\] at density `rho` \[M_sun/pc^3\].
pub fn free_fall_time(rho: f64) -> f64 {
    assert!(rho > 0.0);
    (3.0 * std::f64::consts::PI / (32.0 * G * rho)).sqrt()
}

impl StarFormation {
    /// Attempt star formation for one gas particle over `dt` \[Myr\].
    /// `rho` \[M_sun/pc^3\], `temp` \[K\], `gas_mass` \[M_sun\].
    pub fn try_form<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        rho: f64,
        temp: f64,
        gas_mass: f64,
        dt: f64,
    ) -> SfOutcome {
        let c = &self.criteria;
        if rho < c.rho_min || temp > c.t_max || gas_mass <= 0.0 {
            return SfOutcome::None;
        }
        // Probability of forming within dt at efficiency per free-fall time.
        let p = 1.0 - (-c.efficiency * dt / free_fall_time(rho)).exp();
        if rng.gen::<f64>() >= p {
            return SfOutcome::None;
        }
        let m_star = self.imf.sample(rng);
        if m_star >= gas_mass {
            SfOutcome::Convert {
                star_mass: gas_mass,
            }
        } else {
            SfOutcome::Spawn {
                star_mass: m_star,
                gas_left: gas_mass - m_star,
            }
        }
    }

    /// Expected star-formation rate density [M_sun / pc^3 / Myr] of
    /// eligible gas: `eff * rho / t_ff` — the Schmidt law the probabilistic
    /// sampling realizes.
    pub fn sfr_density(&self, rho: f64, temp: f64) -> f64 {
        let c = &self.criteria;
        if rho < c.rho_min || temp > c.t_max {
            0.0
        } else {
            c.efficiency * rho / free_fall_time(rho)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn free_fall_time_of_molecular_cloud_is_sub_myr_to_myr() {
        // rho = 100 M_sun/pc^3 (dense clump): t_ff < 1 Myr.
        let t = free_fall_time(100.0);
        assert!(t < 1.0, "t_ff = {t}");
        // Diffuse gas: much longer.
        assert!(free_fall_time(0.01) > 10.0);
        // Scaling: t_ff ∝ rho^{-1/2}.
        let r = free_fall_time(1.0) / free_fall_time(4.0);
        assert!((r - 2.0).abs() < 1e-12);
    }

    #[test]
    fn hot_or_diffuse_gas_never_forms_stars() {
        let sf = StarFormation::default();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert_eq!(sf.try_form(&mut rng, 0.1, 50.0, 1.0, 1.0), SfOutcome::None);
            assert_eq!(sf.try_form(&mut rng, 10.0, 1e4, 1.0, 1.0), SfOutcome::None);
        }
        assert_eq!(sf.sfr_density(0.1, 50.0), 0.0);
        assert_eq!(sf.sfr_density(10.0, 1e4), 0.0);
    }

    #[test]
    fn formation_rate_matches_schmidt_law_statistically() {
        let sf = StarFormation::default();
        let mut rng = StdRng::seed_from_u64(2);
        let (rho, temp, dt) = (50.0, 20.0, 0.1);
        let n = 100_000;
        let formed = (0..n)
            .filter(|_| !matches!(sf.try_form(&mut rng, rho, temp, 1.0, dt), SfOutcome::None))
            .count();
        let p_expect = 1.0 - (-sf.criteria.efficiency * dt / free_fall_time(rho)).exp();
        let p_got = formed as f64 / n as f64;
        assert!(
            (p_got - p_expect).abs() < 0.005,
            "p {p_got} vs expected {p_expect}"
        );
    }

    #[test]
    fn star_mass_never_exceeds_gas_mass() {
        let sf = StarFormation::default();
        let mut rng = StdRng::seed_from_u64(3);
        let gas_mass = 1.0; // star-by-star: ~1 M_sun gas particles
        for _ in 0..50_000 {
            match sf.try_form(&mut rng, 100.0, 10.0, gas_mass, 10.0) {
                SfOutcome::Spawn {
                    star_mass,
                    gas_left,
                } => {
                    assert!(star_mass < gas_mass);
                    assert!((star_mass + gas_left - gas_mass).abs() < 1e-12);
                }
                SfOutcome::Convert { star_mass } => {
                    assert!((star_mass - gas_mass).abs() < 1e-12);
                }
                SfOutcome::None => {}
            }
        }
    }

    #[test]
    fn denser_gas_forms_stars_faster() {
        let sf = StarFormation::default();
        assert!(sf.sfr_density(100.0, 10.0) > sf.sfr_density(10.0, 10.0));
        // Schmidt index: SFR ∝ rho^{1.5}.
        let r = sf.sfr_density(40.0, 10.0) / sf.sfr_density(10.0, 10.0);
        assert!((r - 8.0).abs() < 1e-9, "rho x4 => SFR x8, got {r}");
    }
}
