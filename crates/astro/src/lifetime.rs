//! Stellar lifetimes: when does a star explode?
//!
//! Main-sequence + post-main-sequence lifetime as a function of initial
//! mass, using the Raiteri, Villata & Navarro (1996) fit at roughly solar
//! metallicity: `log10 t\[yr\] = a0 + a1 log10 m + a2 (log10 m)^2`.

/// Raiteri et al. (1996) coefficients for Z = 0.02.
const A0: f64 = 10.13;
const A1: f64 = -4.10;
const A2: f64 = 1.093;

/// Lifetime \[Myr\] of a star of initial mass `m` \[M_sun\].
///
/// The quadratic fit turns over near `m ~ 75 M_sun`; beyond the turnover we
/// clamp to the minimum lifetime (very massive stars all live ~3 Myr).
pub fn stellar_lifetime_myr(m: f64) -> f64 {
    assert!(m > 0.0, "stellar mass must be positive");
    let lm_turn = -A1 / (2.0 * A2);
    let lm = m.log10().min(lm_turn);
    let log_t_yr = A0 + A1 * lm + A2 * lm * lm;
    10f64.powf(log_t_yr) / 1.0e6
}

/// Minimum initial mass that explodes as a core-collapse SN \[M_sun\].
pub const SN_MIN_MASS: f64 = 8.0;

/// Maximum initial mass treated as exploding (above: direct collapse).
pub const SN_MAX_MASS: f64 = 40.0;

/// Does a star of mass `m` born at `t_birth` explode during `(t, t + dt]`?
pub fn explodes_in_interval(m: f64, t_birth: f64, t: f64, dt: f64) -> bool {
    if !(SN_MIN_MASS..=SN_MAX_MASS).contains(&m) {
        return false;
    }
    let t_death = t_birth + stellar_lifetime_myr(m);
    t_death > t && t_death <= t + dt
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solar_mass_star_lives_about_ten_gyr() {
        let t = stellar_lifetime_myr(1.0);
        assert!(
            (8.0e3..1.6e4).contains(&t),
            "1 M_sun lifetime {t} Myr, expected ~10^4"
        );
    }

    #[test]
    fn ten_solar_mass_star_lives_tens_of_myr() {
        // Paper §1: massive stars explode "at the end of their lifetimes";
        // an SN progenitor lives a few tens of Myr.
        let t = stellar_lifetime_myr(10.0);
        assert!((5.0..60.0).contains(&t), "10 M_sun lifetime {t} Myr");
    }

    #[test]
    fn lifetime_is_monotonically_non_increasing() {
        let mut prev = stellar_lifetime_myr(0.5);
        for i in 1..60 {
            let m = 0.5 * (150.0f64 / 0.5).powf(i as f64 / 60.0);
            let t = stellar_lifetime_myr(m);
            assert!(
                t <= prev + 1e-12,
                "lifetime must not rise with mass at m={m}"
            );
            prev = t;
        }
        // Very massive stars live about 3 Myr (the clamped minimum).
        let t_min = stellar_lifetime_myr(140.0);
        assert!((1.0..10.0).contains(&t_min), "t(140) = {t_min} Myr");
    }

    #[test]
    fn explosion_window_detection() {
        let m = 10.0;
        let life = stellar_lifetime_myr(m);
        let t_birth = 100.0;
        // Exactly bracketing the death time.
        assert!(explodes_in_interval(
            m,
            t_birth,
            t_birth + life - 0.001,
            0.002
        ));
        // Before the window.
        assert!(!explodes_in_interval(m, t_birth, t_birth, 1.0));
        // After the death.
        assert!(!explodes_in_interval(m, t_birth, t_birth + life + 1.0, 1.0));
    }

    #[test]
    fn low_and_super_massive_stars_never_explode() {
        assert!(!explodes_in_interval(
            1.0,
            0.0,
            stellar_lifetime_myr(1.0) - 0.5,
            1.0
        ));
        assert!(!explodes_in_interval(
            100.0,
            0.0,
            stellar_lifetime_myr(100.0) - 0.5,
            1.0
        ));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_mass_rejected() {
        stellar_lifetime_myr(0.0);
    }
}
