//! Supernova detection and direct (thermal) feedback injection.
//!
//! The surrogate scheme intercepts these events (paper §3.2 step 1:
//! "Identify stars exploding between the current time t and t + dt"); the
//! conventional baseline instead injects the energy thermally and lets the
//! CFL condition shrink the timestep.

use crate::lifetime::{explodes_in_interval, stellar_lifetime_myr, SN_MAX_MASS, SN_MIN_MASS};
use crate::units::E_SN;

/// One supernova event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnEvent {
    /// Index of the exploding star particle (caller's indexing).
    pub star_index: usize,
    /// Explosion position \[pc\].
    pub pos: [f64; 3],
    /// Explosion time \[Myr\].
    pub time: f64,
    /// Injected energy [code units]; 10^51 erg by default.
    pub energy: f64,
}

/// Star records scanned for explosions.
#[derive(Debug, Clone, Copy)]
pub struct StarRecord {
    pub mass: f64,
    pub birth_time: f64,
    pub pos: [f64; 3],
    /// Set once the star has exploded (it never explodes again).
    pub exploded: bool,
}

/// Feedback model parameters.
#[derive(Debug, Clone, Copy)]
pub struct SnFeedback {
    pub energy_per_sn: f64,
    /// Fraction deposited as thermal energy (the rest kinetic; the direct
    /// scheme here deposits thermally, matching ASURA's default).
    pub thermal_fraction: f64,
}

impl Default for SnFeedback {
    fn default() -> Self {
        SnFeedback {
            energy_per_sn: E_SN,
            thermal_fraction: 1.0,
        }
    }
}

impl SnFeedback {
    /// Scan `stars` for explosions in `(t, t + dt]` ("Identify_SNe").
    pub fn identify(&self, stars: &[StarRecord], t: f64, dt: f64) -> Vec<SnEvent> {
        stars
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.exploded && explodes_in_interval(s.mass, s.birth_time, t, dt))
            .map(|(i, s)| SnEvent {
                star_index: i,
                pos: s.pos,
                time: s.birth_time + stellar_lifetime_myr(s.mass),
                energy: self.energy_per_sn,
            })
            .collect()
    }

    /// Distribute one SN's thermal energy over neighbour gas particles with
    /// kernel weights: returns `du` [specific energy] per neighbour given
    /// their masses and weights. Weights need not be normalized.
    pub fn thermal_injection(
        &self,
        event: &SnEvent,
        neighbour_mass: &[f64],
        weights: &[f64],
    ) -> Vec<f64> {
        assert_eq!(neighbour_mass.len(), weights.len());
        let wsum: f64 = weights.iter().sum();
        if wsum <= 0.0 {
            return vec![0.0; weights.len()];
        }
        let e_th = event.energy * self.thermal_fraction;
        weights
            .iter()
            .zip(neighbour_mass)
            .map(|(&w, &m)| e_th * (w / wsum) / m.max(1e-300))
            .collect()
    }
}

/// Rough number of core-collapse SNe per solar mass of stars formed,
/// for a Kroupa IMF: `N(8..40 M_sun) / <m>` per unit mass.
pub fn sn_per_solar_mass(imf: &crate::imf::KroupaImf) -> f64 {
    imf.number_fraction(SN_MIN_MASS, SN_MAX_MASS) / imf.mean_mass()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star(mass: f64, birth: f64) -> StarRecord {
        StarRecord {
            mass,
            birth_time: birth,
            pos: [1.0, 2.0, 3.0],
            exploded: false,
        }
    }

    #[test]
    fn identifies_only_stars_dying_this_step() {
        let fb = SnFeedback::default();
        let life10 = stellar_lifetime_myr(10.0);
        let stars = vec![
            star(10.0, 0.0), // dies at life10
            star(10.0, 5.0), // dies at life10 + 5
            star(1.0, 0.0),  // never (too light)
            star(60.0, 0.0), // never (direct collapse)
        ];
        let events = fb.identify(&stars, life10 - 0.5, 1.0);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].star_index, 0);
        assert!((events[0].energy - E_SN).abs() < 1e-6 * E_SN);
        assert!((events[0].time - life10).abs() < 1e-9);
    }

    #[test]
    fn exploded_stars_do_not_repeat() {
        let fb = SnFeedback::default();
        let life = stellar_lifetime_myr(12.0);
        let mut stars = vec![star(12.0, 0.0)];
        let ev = fb.identify(&stars, life - 0.5, 1.0);
        assert_eq!(ev.len(), 1);
        stars[0].exploded = true;
        assert!(fb.identify(&stars, life - 0.5, 1.0).is_empty());
    }

    #[test]
    fn thermal_injection_conserves_energy() {
        let fb = SnFeedback::default();
        let event = SnEvent {
            star_index: 0,
            pos: [0.0; 3],
            time: 0.0,
            energy: E_SN,
        };
        let masses = vec![1.0, 2.0, 0.5, 1.5];
        let weights = vec![0.4, 0.3, 0.2, 0.1];
        let du = fb.thermal_injection(&event, &masses, &weights);
        let total: f64 = du.iter().zip(&masses).map(|(d, m)| d * m).sum();
        assert!((total - E_SN).abs() < 1e-6 * E_SN);
    }

    #[test]
    fn injection_heats_to_supernova_temperatures() {
        // ~100 M_sun of nearby gas receiving 1e51 erg reaches >> 10^6 K.
        let fb = SnFeedback::default();
        let event = SnEvent {
            star_index: 0,
            pos: [0.0; 3],
            time: 0.0,
            energy: E_SN,
        };
        let masses = vec![1.0; 100];
        let weights = vec![1.0; 100];
        let du = fb.thermal_injection(&event, &masses, &weights);
        // T = u mu (gamma-1) / (kB/mp)
        let t = du[0] * 1.27 * (2.0 / 3.0) / crate::units::KB_OVER_MP;
        assert!(t > 1.0e6, "post-injection T = {t} K");
    }

    #[test]
    fn zero_weights_inject_nothing() {
        let fb = SnFeedback::default();
        let event = SnEvent {
            star_index: 0,
            pos: [0.0; 3],
            time: 0.0,
            energy: E_SN,
        };
        let du = fb.thermal_injection(&event, &[1.0, 1.0], &[0.0, 0.0]);
        assert_eq!(du, vec![0.0, 0.0]);
    }

    #[test]
    fn sn_rate_is_about_one_per_hundred_solar_masses() {
        let imf = crate::imf::KroupaImf::default();
        let rate = sn_per_solar_mass(&imf);
        assert!(
            (0.002..0.03).contains(&rate),
            "SN per M_sun = {rate}, expected ~0.01"
        );
    }
}
