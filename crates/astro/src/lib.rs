//! # astro — astrophysical substrates
//!
//! The stellar-physics and ISM-physics modules the galaxy simulation depends
//! on (paper §1, §3.2): radiative cooling and heating, star formation,
//! the stellar initial mass function, stellar lifetimes, supernova detection
//! and energy injection, the Sedov–Taylor blast-wave solution (the analytic
//! limit the surrogate model learns), and the `v^-4` turbulent velocity
//! fields used as training-box initial conditions (§3.3).
//!
//! All quantities use galactic code units: parsec, solar mass, megayear.

#![forbid(unsafe_code)]

pub mod cooling;
pub mod imf;
pub mod lifetime;
pub mod sedov;
pub mod starform;
pub mod supernova;
pub mod turbulence;
pub mod units;
pub mod yields;

pub use cooling::CoolingCurve;
pub use imf::KroupaImf;
pub use lifetime::stellar_lifetime_myr;
pub use sedov::SedovTaylor;
pub use starform::{StarFormation, StarFormationCriteria};
pub use supernova::{SnEvent, SnFeedback};
pub use units::*;
pub use yields::{SnYield, Species};
