//! The Sedov–Taylor point-explosion solution — the analytic limit of the
//! supernova shell expansion the surrogate model learns (paper §3.3).
//!
//! Exact pieces: the self-similar shock trajectory `R(t) = xi0 (E t^2 /
//! rho0)^{1/5}`, shock speed, and the Rankine–Hugoniot jump conditions.
//! The interior profiles use the standard strong-shock approximations
//! (density `∝ lambda^9` for gamma = 5/3, linear velocity), whose integrals
//! conserve the swept-up mass *exactly* and the explosion energy through
//! the pressure normalization — the properties the surrogate's training
//! targets must respect.

use crate::units::KB_OVER_MP;

/// A Sedov–Taylor blast in a uniform medium.
#[derive(Debug, Clone, Copy)]
pub struct SedovTaylor {
    /// Explosion energy [code units].
    pub e: f64,
    /// Ambient density \[M_sun/pc^3\].
    pub rho0: f64,
    /// Adiabatic index.
    pub gamma: f64,
    /// Similarity constant xi0 (1.1517 for gamma = 5/3).
    pub xi0: f64,
}

impl SedovTaylor {
    /// Standard gamma = 5/3 blast.
    pub fn new(e: f64, rho0: f64) -> Self {
        assert!(e > 0.0 && rho0 > 0.0);
        SedovTaylor {
            e,
            rho0,
            gamma: 5.0 / 3.0,
            xi0: 1.1517,
        }
    }

    /// Shock radius \[pc\] at time `t` \[Myr\].
    pub fn shock_radius(&self, t: f64) -> f64 {
        assert!(t >= 0.0);
        self.xi0 * (self.e * t * t / self.rho0).powf(0.2)
    }

    /// Shock speed \[pc/Myr\]: `dR/dt = 2R / 5t`.
    pub fn shock_speed(&self, t: f64) -> f64 {
        assert!(t > 0.0);
        0.4 * self.shock_radius(t) / t
    }

    /// Strong-shock (Rankine–Hugoniot) post-shock density.
    pub fn post_shock_density(&self) -> f64 {
        (self.gamma + 1.0) / (self.gamma - 1.0) * self.rho0
    }

    /// Post-shock pressure at time `t`.
    pub fn post_shock_pressure(&self, t: f64) -> f64 {
        let us = self.shock_speed(t);
        2.0 / (self.gamma + 1.0) * self.rho0 * us * us
    }

    /// Post-shock fluid velocity at time `t`.
    pub fn post_shock_velocity(&self, t: f64) -> f64 {
        2.0 / (self.gamma + 1.0) * self.shock_speed(t)
    }

    /// Interior density profile: `rho(r) = rho2 lambda^9` (gamma = 5/3),
    /// which integrates to exactly the swept-up mass `4/3 pi rho0 R^3`.
    pub fn density(&self, r: f64, t: f64) -> f64 {
        let rs = self.shock_radius(t);
        if r >= rs {
            return self.rho0;
        }
        let lambda = r / rs;
        self.post_shock_density() * lambda.powi(9)
    }

    /// Interior radial velocity: linear in radius (exact to a few percent
    /// for the Sedov interior), matching the post-shock value at the shock.
    pub fn velocity(&self, r: f64, t: f64) -> f64 {
        let rs = self.shock_radius(t);
        if r >= rs {
            return 0.0;
        }
        self.post_shock_velocity(t) * (r / rs)
    }

    /// Interior pressure: the Sedov interior is nearly isobaric at
    /// `p_c ~ 0.31 p2` for gamma = 5/3; blend linearly to `p2` at the shock.
    pub fn pressure(&self, r: f64, t: f64) -> f64 {
        let rs = self.shock_radius(t);
        let p2 = self.post_shock_pressure(t);
        if r >= rs {
            // Cold ambient medium (strong-shock limit).
            return 0.0;
        }
        let lambda = r / rs;
        let p_c = self.central_pressure_fraction() * p2;
        // The true Sedov pressure is nearly flat through the interior and
        // rises to p2 only close to the shock: a steep lambda^13 blend
        // reproduces that shape and (with the energy closure below) lands
        // the central fraction at the exact solution's ~0.31.
        p_c + (p2 - p_c) * lambda.powi(13)
    }

    /// Central-to-post-shock pressure ratio chosen so the *total* energy
    /// (thermal + kinetic) integrates to `E` exactly.
    pub fn central_pressure_fraction(&self) -> f64 {
        // Solve E = E_kin + E_th for p_c/p2 given the model profiles:
        // E_kin = Int 1/2 rho v^2 dV = 1/2 rho2 v2^2 4 pi R^3 Int l^13 dl
        //       = 2 pi rho2 v2^2 R^3 / 14.
        // E_th  = Int p/(gamma-1) dV
        //       = 4 pi R^3 / (gamma-1) * [f p2 /3 + (p2 - f p2)/16]
        // with the lambda^13 pressure blend (Int lambda^15 = 1/16).
        let g = self.gamma;
        let t = 1.0; // fractions are time-independent
        let rs = self.shock_radius(t);
        let rho2 = self.post_shock_density();
        let v2 = self.post_shock_velocity(t);
        let p2 = self.post_shock_pressure(t);
        let vol = 4.0 * std::f64::consts::PI * rs.powi(3);
        let e_kin = 0.5 * rho2 * v2 * v2 * vol / 14.0;
        // E = e_kin + vol/(g-1) * (f p2/3 + (1 - f) p2 / 16)  =>  solve f.
        let budget = (self.e - e_kin) * (g - 1.0) / (vol * p2);
        let f = (budget - 1.0 / 16.0) / (1.0 / 3.0 - 1.0 / 16.0);
        f.clamp(0.05, 1.0)
    }

    /// Temperature \[K\] at `(r, t)` for mean molecular weight `mu`
    /// (diverges toward the rarefied centre, as in the true solution).
    pub fn temperature(&self, r: f64, t: f64, mu: f64) -> f64 {
        let rho = self.density(r, t);
        let p = self.pressure(r, t);
        if rho <= 0.0 || p <= 0.0 {
            return 0.0;
        }
        p * mu / (rho * KB_OVER_MP)
    }

    /// Numerically integrate total mass inside the shock at time `t`.
    pub fn integrated_mass(&self, t: f64, n: usize) -> f64 {
        let rs = self.shock_radius(t);
        let dr = rs / n as f64;
        let mut m = 0.0;
        for i in 0..n {
            let r = (i as f64 + 0.5) * dr;
            m += self.density(r, t) * 4.0 * std::f64::consts::PI * r * r * dr;
        }
        m
    }

    /// Numerically integrate total (kinetic + thermal) energy at time `t`.
    pub fn integrated_energy(&self, t: f64, n: usize) -> f64 {
        let rs = self.shock_radius(t);
        let dr = rs / n as f64;
        let mut e = 0.0;
        for i in 0..n {
            let r = (i as f64 + 0.5) * dr;
            let rho = self.density(r, t);
            let v = self.velocity(r, t);
            let p = self.pressure(r, t);
            let de = 0.5 * rho * v * v + p / (self.gamma - 1.0);
            e += de * 4.0 * std::f64::consts::PI * r * r * dr;
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::E_SN;

    fn sn_blast() -> SedovTaylor {
        // 1e51 erg into 1 M_sun/pc^3 (n_H ~ 30 cm^-3).
        SedovTaylor::new(E_SN, 1.0)
    }

    #[test]
    fn shock_radius_after_0p1_myr_is_tens_of_pc() {
        // The paper's surrogate predicts the (60 pc)^3 region 0.1 Myr after
        // explosion: the shock must still be inside that box for typical
        // ISM densities.
        let b = sn_blast();
        let r = b.shock_radius(0.1);
        assert!((5.0..30.0).contains(&r), "R(0.1 Myr) = {r} pc");
    }

    #[test]
    fn shock_follows_t_to_the_two_fifths() {
        let b = sn_blast();
        let r1 = b.shock_radius(0.01);
        let r2 = b.shock_radius(0.32);
        let slope = (r2 / r1).ln() / (32.0f64).ln();
        assert!((slope - 0.4).abs() < 1e-12, "slope {slope}");
    }

    #[test]
    fn shock_speed_is_derivative_of_radius() {
        let b = sn_blast();
        let t = 0.05;
        let dt = 1e-7;
        let fd = (b.shock_radius(t + dt) - b.shock_radius(t - dt)) / (2.0 * dt);
        assert!((b.shock_speed(t) - fd).abs() / fd < 1e-6);
    }

    #[test]
    fn mass_is_conserved_exactly_by_profile() {
        let b = sn_blast();
        let t = 0.1;
        let swept = 4.0 / 3.0 * std::f64::consts::PI * b.rho0 * b.shock_radius(t).powi(3);
        let got = b.integrated_mass(t, 20_000);
        assert!(
            (got / swept - 1.0).abs() < 1e-3,
            "mass {got} vs swept {swept}"
        );
    }

    #[test]
    fn energy_integrates_to_injected_energy() {
        let b = sn_blast();
        let got = b.integrated_energy(0.1, 20_000);
        assert!(
            (got / b.e - 1.0).abs() < 0.02,
            "energy {got} vs injected {}",
            b.e
        );
    }

    #[test]
    fn central_pressure_fraction_near_sedov_value() {
        // True Sedov (gamma=5/3): p_c/p2 ~ 0.31. Our energy-closure value
        // should land in the same neighbourhood.
        let f = sn_blast().central_pressure_fraction();
        assert!((0.15..0.55).contains(&f), "p_c/p2 = {f}");
    }

    #[test]
    fn compression_is_four_for_gamma_five_thirds() {
        let b = sn_blast();
        assert!((b.post_shock_density() / b.rho0 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn interior_is_hot_and_rarefied() {
        let b = sn_blast();
        let t = 0.1;
        let rs = b.shock_radius(t);
        // Density rises monotonically outward.
        assert!(b.density(0.1 * rs, t) < b.density(0.9 * rs, t));
        // Temperature is SN-hot inside (paper Fig. 1: ~10^7 K).
        let temp = b.temperature(0.5 * rs, t, 0.6);
        assert!(temp > 1e5, "interior T = {temp} K");
        // Ambient values outside.
        assert_eq!(b.density(2.0 * rs, t), b.rho0);
        assert_eq!(b.velocity(2.0 * rs, t), 0.0);
    }

    #[test]
    fn higher_ambient_density_slows_the_shock() {
        let thin = SedovTaylor::new(E_SN, 0.1);
        let dense = SedovTaylor::new(E_SN, 10.0);
        assert!(thin.shock_radius(0.1) > dense.shock_radius(0.1));
    }
}
