//! The stellar initial mass function.
//!
//! Star-by-star simulations sample individual stellar masses from an IMF
//! (paper §1: "Stars are known to follow a mass spectrum. Massive stars more
//! than about 10 times solar masses are only a few percent of all stellar
//! populations"). We implement the Kroupa (2001) broken power law.

use rand::Rng;

/// A broken power-law IMF `dN/dm ∝ m^{-alpha_k}` on segments.
#[derive(Debug, Clone)]
pub struct KroupaImf {
    /// Segment edges (ascending), `len = segments + 1`.
    edges: Vec<f64>,
    /// Exponents per segment.
    alphas: Vec<f64>,
    /// Cumulative number fraction at the segment edges.
    cdf: Vec<f64>,
    /// Per-segment number normalization (continuous across edges).
    norms: Vec<f64>,
}

impl Default for KroupaImf {
    fn default() -> Self {
        Self::kroupa(0.08, 150.0)
    }
}

impl KroupaImf {
    /// The Kroupa (2001) IMF between `m_min` and `m_max` \[M_sun\]:
    /// `alpha = 1.3` for `0.08 <= m < 0.5`, `alpha = 2.3` above.
    pub fn kroupa(m_min: f64, m_max: f64) -> Self {
        assert!(m_min > 0.0 && m_max > m_min);
        let mut edges = vec![m_min];
        let mut alphas = Vec::new();
        if m_min < 0.5 && m_max > 0.5 {
            edges.push(0.5);
            alphas.push(1.3);
            alphas.push(2.3);
        } else if m_max <= 0.5 {
            alphas.push(1.3);
        } else {
            alphas.push(2.3);
        }
        edges.push(m_max);
        Self::from_segments(edges, alphas)
    }

    /// Build from explicit edges and exponents; the IMF is continuous at
    /// internal edges and normalized to unit total number.
    pub fn from_segments(edges: Vec<f64>, alphas: Vec<f64>) -> Self {
        assert_eq!(edges.len(), alphas.len() + 1);
        assert!(edges.windows(2).all(|w| w[1] > w[0]));
        // Continuity: norm_{k+1} = norm_k * edge^{alpha_{k+1} - alpha_k}.
        let mut norms = vec![1.0];
        for k in 1..alphas.len() {
            let e = edges[k];
            let prev = norms[k - 1];
            norms.push(prev * e.powf(alphas[k] - alphas[k - 1]));
        }
        // Segment number integrals.
        let seg_int = |k: usize| -> f64 {
            let (a, b) = (edges[k], edges[k + 1]);
            let alpha = alphas[k];
            let c = norms[k];
            if (alpha - 1.0).abs() < 1e-12 {
                c * (b / a).ln()
            } else {
                c / (1.0 - alpha) * (b.powf(1.0 - alpha) - a.powf(1.0 - alpha))
            }
        };
        let mut cdf = vec![0.0];
        for k in 0..alphas.len() {
            cdf.push(cdf[k] + seg_int(k));
        }
        let total = *cdf.last().expect("non-empty");
        for c in cdf.iter_mut() {
            *c /= total;
        }
        for n in norms.iter_mut() {
            *n /= total;
        }
        KroupaImf {
            edges,
            alphas,
            cdf,
            norms,
        }
    }

    /// Number fraction of stars with mass in `[a, b]`.
    pub fn number_fraction(&self, a: f64, b: f64) -> f64 {
        self.cdf_at(b) - self.cdf_at(a)
    }

    fn cdf_at(&self, m: f64) -> f64 {
        let m = m.clamp(self.edges[0], *self.edges.last().expect("non-empty"));
        let k = match self
            .edges
            .binary_search_by(|e| e.partial_cmp(&m).expect("finite"))
        {
            Ok(i) => i.min(self.alphas.len() - 1),
            Err(0) => 0,
            Err(i) => (i - 1).min(self.alphas.len() - 1),
        };
        let (a, alpha, c) = (self.edges[k], self.alphas[k], self.norms[k]);
        let partial = if (alpha - 1.0).abs() < 1e-12 {
            c * (m / a).ln()
        } else {
            c / (1.0 - alpha) * (m.powf(1.0 - alpha) - a.powf(1.0 - alpha))
        };
        self.cdf[k] + partial
    }

    /// Inverse-CDF sample of one stellar mass.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        // Locate segment by CDF.
        let mut k = 0;
        while k + 1 < self.cdf.len() - 1 && u > self.cdf[k + 1] {
            k += 1;
        }
        let (a, alpha, c) = (self.edges[k], self.alphas[k], self.norms[k]);
        let du = u - self.cdf[k];
        if (alpha - 1.0).abs() < 1e-12 {
            a * (du / c).exp()
        } else {
            (a.powf(1.0 - alpha) + du * (1.0 - alpha) / c).powf(1.0 / (1.0 - alpha))
        }
    }

    /// Mean stellar mass (analytic).
    pub fn mean_mass(&self) -> f64 {
        let mut m1 = 0.0;
        for k in 0..self.alphas.len() {
            let (a, b) = (self.edges[k], self.edges[k + 1]);
            let alpha = self.alphas[k];
            let c = self.norms[k];
            m1 += if (alpha - 2.0).abs() < 1e-12 {
                c * (b / a).ln()
            } else {
                c / (2.0 - alpha) * (b.powf(2.0 - alpha) - a.powf(2.0 - alpha))
            };
        }
        m1
    }

    /// Minimum and maximum sampleable mass.
    pub fn mass_range(&self) -> (f64, f64) {
        (self.edges[0], *self.edges.last().expect("non-empty"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cdf_is_normalized_and_monotone() {
        let imf = KroupaImf::default();
        assert!((imf.number_fraction(0.08, 150.0) - 1.0).abs() < 1e-12);
        let mut prev = 0.0;
        for i in 1..100 {
            let m = 0.08 * (150.0f64 / 0.08).powf(i as f64 / 100.0);
            let c = imf.cdf_at(m);
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    fn massive_stars_are_a_few_percent() {
        // Paper §1: stars above ~10 M_sun are "only a few percent".
        let imf = KroupaImf::default();
        let f = imf.number_fraction(10.0, 150.0);
        assert!((0.001..0.05).contains(&f), "f(>10) = {f}");
        let f8 = imf.number_fraction(8.0, 150.0);
        assert!(f8 > f);
    }

    #[test]
    fn mean_mass_is_about_half_solar() {
        let imf = KroupaImf::default();
        let m = imf.mean_mass();
        assert!((0.2..0.9).contains(&m), "mean mass {m}");
    }

    #[test]
    fn samples_match_analytic_cdf() {
        let imf = KroupaImf::default();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| imf.sample(&mut rng)).collect();
        for &m in &[0.1, 0.3, 0.5, 1.0, 8.0, 50.0] {
            let frac = samples.iter().filter(|&&s| s <= m).count() as f64 / n as f64;
            let expect = imf.number_fraction(0.08, m);
            assert!(
                (frac - expect).abs() < 0.01,
                "m={m}: sampled {frac} vs analytic {expect}"
            );
        }
        // All samples within range.
        let (lo, hi) = imf.mass_range();
        assert!(samples.iter().all(|&s| s >= lo && s <= hi));
    }

    #[test]
    fn sampled_mean_matches_analytic_mean() {
        let imf = KroupaImf::default();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 300_000;
        let mean: f64 = (0..n).map(|_| imf.sample(&mut rng)).sum::<f64>() / n as f64;
        let expect = imf.mean_mass();
        assert!(
            (mean - expect).abs() / expect < 0.05,
            "sampled {mean} vs analytic {expect}"
        );
    }

    #[test]
    fn single_segment_power_law_works() {
        let imf = KroupaImf::from_segments(vec![1.0, 100.0], vec![2.35]); // Salpeter
        assert!((imf.number_fraction(1.0, 100.0) - 1.0).abs() < 1e-12);
        // Salpeter mean on [1, 100]: (alpha-1)/(alpha-2) * (1 - 100^{2-a})/(1 - 100^{1-a}).
        let m = imf.mean_mass();
        assert!((3.0..3.5).contains(&m), "Salpeter mean {m}");
    }
}
