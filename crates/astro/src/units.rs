//! Galactic code units: length = parsec, mass = solar mass, time = megayear.

/// Gravitational constant in pc^3 M_sun^-1 Myr^-2.
pub const G: f64 = 4.498_502e-3;

/// One km/s expressed in pc/Myr.
pub const KMS: f64 = 1.022_712;

/// One pc/Myr expressed in km/s.
pub const PC_PER_MYR_IN_KMS: f64 = 1.0 / KMS;

/// The canonical supernova energy, 10^51 erg, in M_sun pc^2 Myr^-2.
pub const E_SN: f64 = 5.258e7;

/// Boltzmann constant over proton mass in (pc/Myr)^2 / K.
pub const KB_OVER_MP: f64 = 8.254_3e-3;

/// Hydrogen number density of gas at 1 M_sun/pc^3 in cm^-3
/// (rho \[M_sun/pc^3\] * this = n_H \[cm^-3\] for X = 0.76).
pub const NH_PER_MSUN_PC3: f64 = 30.77;

/// Seconds per Myr.
pub const SECONDS_PER_MYR: f64 = 3.155_76e13;

/// Centimetres per parsec.
pub const CM_PER_PC: f64 = 3.085_677_6e18;

/// Grams per solar mass.
pub const G_PER_MSUN: f64 = 1.988_92e33;

/// Ergs per code energy unit (M_sun pc^2 / Myr^2).
pub const ERG_PER_CODE_ENERGY: f64 = 1.901_8e43;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn g_reproduces_solar_orbit() {
        // Circular speed at the solar radius with the enclosed MW mass:
        // v = sqrt(G M / r) with M ~ 1e11 M_sun, r = 8000 pc => ~230 km/s.
        let v = (G * 1.0e11 / 8000.0).sqrt(); // pc/Myr
        let v_kms = v * PC_PER_MYR_IN_KMS;
        assert!((200.0..260.0).contains(&v_kms), "v = {v_kms} km/s");
    }

    #[test]
    fn sn_energy_gives_kms_scale_ejecta() {
        // E = 1/2 m v^2 with 10 M_sun of ejecta: v ~ 3000 km/s.
        let v = (2.0 * E_SN / 10.0).sqrt(); // pc/Myr
        let v_kms = v * PC_PER_MYR_IN_KMS;
        assert!((2500.0..4000.0).contains(&v_kms), "v = {v_kms} km/s");
    }

    #[test]
    fn unit_conversions_are_mutually_consistent() {
        // E_SN in erg must round-trip through the cgs factors.
        let code_energy_in_erg =
            G_PER_MSUN * CM_PER_PC * CM_PER_PC / (SECONDS_PER_MYR * SECONDS_PER_MYR);
        assert!((code_energy_in_erg / ERG_PER_CODE_ENERGY - 1.0).abs() < 1e-3);
        let e_sn_code = 1e51 / code_energy_in_erg;
        assert!((e_sn_code / E_SN - 1.0).abs() < 1e-3, "E_SN = {e_sn_code}");
    }

    #[test]
    fn kms_conversion() {
        // 1 km/s * 1 Myr ~ 1.0227 pc.
        assert!((KMS - 1.0227).abs() < 1e-3);
        assert!((KMS * PC_PER_MYR_IN_KMS - 1.0).abs() < 1e-12);
    }
}
