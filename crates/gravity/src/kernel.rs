//! The inner interaction kernels.

use fdps::Vec3;

/// Accumulated acceleration (per unit G, without the sign of the potential
/// applied) and positive potential sum for one i-particle.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GravityAccum {
    pub acc: Vec3,
    /// Positive sum `Σ m_j / r_ij`; the physical potential is `-G` times it.
    pub pot: f64,
}

/// Double-precision kernel: for each i in `ipos`, accumulate over all
/// (jpos, jmass) with softening `eps2 = eps_i^2 + eps_j^2` folded in by the
/// caller. Self-interaction is excluded by the `r2 > 0` guard only when
/// `eps2 == 0`; with softening, a particle interacting with its own entry
/// contributes zero force and a finite self-potential, so callers pass
/// j-lists that exclude i (FDPS ships i itself in the list; the force is
/// zero and the potential is corrected by the caller when needed).
/// The inner j-loop runs four independent accumulator lanes (unrolled by
/// 4) so the sqrt/divide dependency chains pipeline; a zero `r2` (the
/// unsoftened self-interaction) contributes zero through a branchless
/// select rather than a loop-carried branch.
pub fn accumulate_f64(
    ipos: &[Vec3],
    jpos: &[Vec3],
    jmass: &[f64],
    eps2: f64,
    out: &mut [GravityAccum],
) {
    debug_assert_eq!(ipos.len(), out.len());
    debug_assert_eq!(jpos.len(), jmass.len());
    let n_j = jpos.len();
    for (i, &pi) in ipos.iter().enumerate() {
        let mut ax = [0.0f64; 4];
        let mut ay = [0.0f64; 4];
        let mut az = [0.0f64; 4];
        let mut ps = [0.0f64; 4];
        let mut j = 0;
        while j + 4 <= n_j {
            for lane in 0..4 {
                let pj = jpos[j + lane];
                let dx = pi.x - pj.x;
                let dy = pi.y - pj.y;
                let dz = pi.z - pj.z;
                let r2 = dx * dx + dy * dy + dz * dz + eps2;
                let rinv = if r2 > 0.0 { 1.0 / r2.sqrt() } else { 0.0 };
                let mrinv = jmass[j + lane] * rinv;
                let mr3 = mrinv * rinv * rinv;
                ax[lane] -= mr3 * dx;
                ay[lane] -= mr3 * dy;
                az[lane] -= mr3 * dz;
                ps[lane] += mrinv;
            }
            j += 4;
        }
        while j < n_j {
            let pj = jpos[j];
            let dx = pi.x - pj.x;
            let dy = pi.y - pj.y;
            let dz = pi.z - pj.z;
            let r2 = dx * dx + dy * dy + dz * dz + eps2;
            let rinv = if r2 > 0.0 { 1.0 / r2.sqrt() } else { 0.0 };
            let mrinv = jmass[j] * rinv;
            let mr3 = mrinv * rinv * rinv;
            ax[0] -= mr3 * dx;
            ay[0] -= mr3 * dy;
            az[0] -= mr3 * dz;
            ps[0] += mrinv;
            j += 1;
        }
        out[i].acc += Vec3::new(
            ax[0] + ax[1] + ax[2] + ax[3],
            ay[0] + ay[1] + ay[2] + ay[3],
            az[0] + az[1] + az[2] + az[3],
        );
        out[i].pot += ps[0] + ps[1] + ps[2] + ps[3];
    }
}

/// Mixed-precision kernel (paper §4.3): coordinates are re-expressed
/// relative to `origin` (the representative point of the receiving group),
/// narrowed to `f32`, and the interaction loop runs in single precision.
/// The relative accuracy of the *interaction* is single precision while
/// absolute positions keep their double-precision resolution.
pub fn accumulate_mixed(
    origin: Vec3,
    ipos: &[Vec3],
    jpos: &[Vec3],
    jmass: &[f64],
    eps2: f64,
    out: &mut [GravityAccum],
) {
    debug_assert_eq!(ipos.len(), out.len());
    debug_assert_eq!(jpos.len(), jmass.len());
    // Narrow once per launch: SoA f32 relative coordinates.
    let jx: Vec<f32> = jpos.iter().map(|p| (p.x - origin.x) as f32).collect();
    let jy: Vec<f32> = jpos.iter().map(|p| (p.y - origin.y) as f32).collect();
    let jz: Vec<f32> = jpos.iter().map(|p| (p.z - origin.z) as f32).collect();
    let jm: Vec<f32> = jmass.iter().map(|&m| m as f32).collect();
    let e2 = eps2 as f32;

    let n_j = jx.len();
    for (i, &pi) in ipos.iter().enumerate() {
        let xi = (pi.x - origin.x) as f32;
        let yi = (pi.y - origin.y) as f32;
        let zi = (pi.z - origin.z) as f32;
        // 8 f32 lanes: one AVX vector's worth of independent chains.
        let mut ax = [0.0f32; 8];
        let mut ay = [0.0f32; 8];
        let mut az = [0.0f32; 8];
        let mut ps = [0.0f32; 8];
        let mut j = 0;
        while j + 8 <= n_j {
            for lane in 0..8 {
                let dx = xi - jx[j + lane];
                let dy = yi - jy[j + lane];
                let dz = zi - jz[j + lane];
                let r2 = dx * dx + dy * dy + dz * dz + e2;
                let rinv = if r2 > 0.0 { 1.0 / r2.sqrt() } else { 0.0 };
                let mrinv = jm[j + lane] * rinv;
                let mr3 = mrinv * rinv * rinv;
                ax[lane] -= mr3 * dx;
                ay[lane] -= mr3 * dy;
                az[lane] -= mr3 * dz;
                ps[lane] += mrinv;
            }
            j += 8;
        }
        while j < n_j {
            let dx = xi - jx[j];
            let dy = yi - jy[j];
            let dz = zi - jz[j];
            let r2 = dx * dx + dy * dy + dz * dz + e2;
            let rinv = if r2 > 0.0 { 1.0 / r2.sqrt() } else { 0.0 };
            let mrinv = jm[j] * rinv;
            let mr3 = mrinv * rinv * rinv;
            ax[0] -= mr3 * dx;
            ay[0] -= mr3 * dy;
            az[0] -= mr3 * dz;
            ps[0] += mrinv;
            j += 1;
        }
        let sum8 = |v: [f32; 8]| -> f64 {
            ((v[0] + v[4]) + (v[1] + v[5])) as f64 + ((v[2] + v[6]) + (v[3] + v[7])) as f64
        };
        out[i].acc += Vec3::new(sum8(ax), sum8(ay), sum8(az));
        out[i].pot += sum8(ps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn cloud(n: usize, seed: u64, center: Vec3) -> (Vec<Vec3>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pos = (0..n)
            .map(|_| {
                center
                    + Vec3::new(
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0),
                    )
            })
            .collect();
        let mass = (0..n).map(|_| rng.gen_range(0.5..2.0)).collect();
        (pos, mass)
    }

    #[test]
    fn two_body_force_is_analytic() {
        let ipos = [Vec3::ZERO];
        let jpos = [Vec3::new(2.0, 0.0, 0.0)];
        let jm = [4.0];
        let mut out = [GravityAccum::default()];
        accumulate_f64(&ipos, &jpos, &jm, 0.0, &mut out);
        // a = m/r^2 toward j => +x; pot = m/r = 2.
        assert!((out[0].acc.x - 1.0).abs() < 1e-14);
        assert!(out[0].acc.y.abs() < 1e-14);
        assert!((out[0].pot - 2.0).abs() < 1e-14);
    }

    #[test]
    fn softening_caps_close_encounters() {
        let ipos = [Vec3::ZERO];
        let jpos = [Vec3::new(1e-8, 0.0, 0.0)];
        let jm = [1.0];
        let mut out = [GravityAccum::default()];
        accumulate_f64(&ipos, &jpos, &jm, 1e-2, &mut out);
        // With eps ~ 0.1 the force is ~ r/eps^3 ~ 1e-5, not 1e16.
        assert!(out[0].acc.norm() < 1e-4);
    }

    #[test]
    fn unsoftened_self_interaction_skipped() {
        let p = [Vec3::new(1.0, 2.0, 3.0)];
        let m = [5.0];
        let mut out = [GravityAccum::default()];
        accumulate_f64(&p, &p, &m, 0.0, &mut out);
        assert_eq!(out[0], GravityAccum::default());
    }

    #[test]
    fn accumulation_composes_over_chunks() {
        let (pos, mass) = cloud(64, 1, Vec3::ZERO);
        let ipos = [Vec3::new(0.1, 0.2, 0.3)];
        let mut whole = [GravityAccum::default()];
        accumulate_f64(&ipos, &pos, &mass, 1e-4, &mut whole);
        let mut parts = [GravityAccum::default()];
        accumulate_f64(&ipos, &pos[..32], &mass[..32], 1e-4, &mut parts);
        accumulate_f64(&ipos, &pos[32..], &mass[32..], 1e-4, &mut parts);
        assert!((whole[0].acc - parts[0].acc).norm() < 1e-12);
        assert!((whole[0].pot - parts[0].pot).abs() < 1e-12);
    }

    #[test]
    fn mixed_precision_matches_f64_to_single_accuracy() {
        // A group far from the coordinate origin: naive f32 would lose most
        // of its mantissa; the relative-coordinate trick must not.
        let far = Vec3::new(1.0e5, -2.0e5, 3.0e5);
        let (jpos, jm) = cloud(256, 2, far);
        let (ipos, _) = cloud(16, 3, far);
        let eps2 = 1e-4;
        let mut exact = vec![GravityAccum::default(); ipos.len()];
        accumulate_f64(&ipos, &jpos, &jm, eps2, &mut exact);
        let mut mixed = vec![GravityAccum::default(); ipos.len()];
        accumulate_mixed(far, &ipos, &jpos, &jm, eps2, &mut mixed);
        for (e, m) in exact.iter().zip(&mixed) {
            let rel = (e.acc - m.acc).norm() / e.acc.norm().max(1e-12);
            assert!(rel < 1e-5, "rel err {rel}");
            assert!((e.pot - m.pot).abs() / e.pot < 1e-5);
        }
    }

    #[test]
    fn naive_f32_would_fail_where_mixed_succeeds() {
        // Demonstrate the *reason* for the scheme: absolute f32 coordinates
        // at 1e5 have ~1e-2 spacing, destroying sub-pc structure.
        let far = Vec3::new(1.0e5, 0.0, 0.0);
        let a = far + Vec3::new(1e-4, 0.0, 0.0);
        let apos_f32 = a.x as f32;
        let fpos_f32 = far.x as f32;
        // The separation collapses entirely in absolute f32...
        assert_eq!(apos_f32 - fpos_f32, 0.0);
        // ...but survives in relative coordinates.
        let rel = (a.x - far.x) as f32;
        assert!((rel - 1e-4_f32).abs() < 1e-9);
    }

    #[test]
    fn momentum_conservation_pairwise() {
        let (pos, mass) = cloud(50, 4, Vec3::ZERO);
        let mut out = vec![GravityAccum::default(); pos.len()];
        accumulate_f64(&pos, &pos, &mass, 1e-6, &mut out);
        let mut net = Vec3::ZERO;
        for (o, &m) in out.iter().zip(&mass) {
            net += o.acc * m;
        }
        assert!(net.norm() < 1e-9, "net momentum flux {net:?}");
    }
}
