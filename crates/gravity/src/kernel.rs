//! The inner interaction kernels.
//!
//! Two generations live here. The AoS kernels ([`accumulate_f64`],
//! [`accumulate_mixed`]) are the original unrolled forms, retained as the
//! equivalence references and the convenience API for small callers. The
//! SoA kernels ([`accumulate_f64_soa`], [`accumulate_mixed_staged`]) take
//! struct-of-arrays j-side inputs staged by the caller (the solver's
//! per-worker `GroupScratch`), which turns the per-lane coordinate loads
//! into contiguous packed loads, and on x86-64 they dispatch at runtime to
//! an AVX2 body (one 256-bit vector per 4 × f64 / 8 × f32 lane block) —
//! the portable fallback is the same loop in explicit-unrolled form. The
//! AoS `Vec3` layout forces stride-3 gathers that never vectorize, which
//! is why the SoA staging exists at all.
//!
//! # Determinism
//!
//! Every kernel uses a fixed lane count (4 × f64, 8 × f32), a remainder
//! loop that folds into lane 0, and a fixed final lane-sum order, so
//! results are bit-reproducible across machines and thread counts, and
//! `accumulate_f64_soa` is *bitwise identical* to `accumulate_f64` on the
//! same interaction list. The AVX2 bodies use only exactly-rounded IEEE
//! operations (add/sub/mul/div/sqrt/compare-select — never FMA, which
//! contracts the rounding step) with the identical association order, so
//! the dispatched and portable paths are bitwise identical too: which CPU
//! ran the kernel can never leak into a snapshot. See `## Kernel
//! determinism` in ROADMAP.md.

use fdps::Vec3;

/// Accumulated acceleration (per unit G, without the sign of the potential
/// applied) and positive potential sum for one i-particle.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GravityAccum {
    pub acc: Vec3,
    /// Positive sum `Σ m_j / r_ij`; the physical potential is `-G` times it.
    pub pot: f64,
}

/// Double-precision kernel: for each i in `ipos`, accumulate over all
/// (jpos, jmass) with softening `eps2 = eps_i^2 + eps_j^2` folded in by the
/// caller. Self-interaction is excluded by the `r2 > 0` guard only when
/// `eps2 == 0`; with softening, a particle interacting with its own entry
/// contributes zero force and a finite self-potential, so callers pass
/// j-lists that exclude i (FDPS ships i itself in the list; the force is
/// zero and the potential is corrected by the caller when needed).
/// The inner j-loop runs four independent accumulator lanes (unrolled by
/// 4) so the sqrt/divide dependency chains pipeline; a zero `r2` (the
/// unsoftened self-interaction) contributes zero through a branchless
/// select rather than a loop-carried branch.
pub fn accumulate_f64(
    ipos: &[Vec3],
    jpos: &[Vec3],
    jmass: &[f64],
    eps2: f64,
    out: &mut [GravityAccum],
) {
    debug_assert_eq!(ipos.len(), out.len());
    debug_assert_eq!(jpos.len(), jmass.len());
    let n_j = jpos.len();
    for (i, &pi) in ipos.iter().enumerate() {
        let mut ax = [0.0f64; 4];
        let mut ay = [0.0f64; 4];
        let mut az = [0.0f64; 4];
        let mut ps = [0.0f64; 4];
        let mut j = 0;
        while j + 4 <= n_j {
            for lane in 0..4 {
                let pj = jpos[j + lane];
                let dx = pi.x - pj.x;
                let dy = pi.y - pj.y;
                let dz = pi.z - pj.z;
                let r2 = dx * dx + dy * dy + dz * dz + eps2;
                let rinv = if r2 > 0.0 { 1.0 / r2.sqrt() } else { 0.0 };
                let mrinv = jmass[j + lane] * rinv;
                let mr3 = mrinv * rinv * rinv;
                ax[lane] -= mr3 * dx;
                ay[lane] -= mr3 * dy;
                az[lane] -= mr3 * dz;
                ps[lane] += mrinv;
            }
            j += 4;
        }
        while j < n_j {
            let pj = jpos[j];
            let dx = pi.x - pj.x;
            let dy = pi.y - pj.y;
            let dz = pi.z - pj.z;
            let r2 = dx * dx + dy * dy + dz * dz + eps2;
            let rinv = if r2 > 0.0 { 1.0 / r2.sqrt() } else { 0.0 };
            let mrinv = jmass[j] * rinv;
            let mr3 = mrinv * rinv * rinv;
            ax[0] -= mr3 * dx;
            ay[0] -= mr3 * dy;
            az[0] -= mr3 * dz;
            ps[0] += mrinv;
            j += 1;
        }
        out[i].acc += Vec3::new(
            ax[0] + ax[1] + ax[2] + ax[3],
            ay[0] + ay[1] + ay[2] + ay[3],
            az[0] + az[1] + az[2] + az[3],
        );
        out[i].pot += ps[0] + ps[1] + ps[2] + ps[3];
    }
}

/// Double-precision kernel over struct-of-arrays j-side inputs.
///
/// Semantics and determinism contract are identical to
/// [`accumulate_f64`] — same 4-lane structure, same remainder handling,
/// same `lane0+lane1+lane2+lane3` reduction — so the two produce bitwise
/// equal results. On x86-64 with AVX2 the 4-lane block runs as one
/// 256-bit vector (`vsqrtpd`/`vdivpd` over 4 interactions at once);
/// elsewhere the explicit-unrolled portable body runs. Both paths are
/// bitwise identical (exactly-rounded ops, same association order).
pub fn accumulate_f64_soa(
    ipos: &[Vec3],
    jx: &[f64],
    jy: &[f64],
    jz: &[f64],
    jmass: &[f64],
    eps2: f64,
    out: &mut [GravityAccum],
) {
    debug_assert_eq!(ipos.len(), out.len());
    debug_assert_eq!(jx.len(), jmass.len());
    debug_assert_eq!(jy.len(), jmass.len());
    debug_assert_eq!(jz.len(), jmass.len());
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: feature presence just checked; slice lengths validated.
        unsafe { avx2::accumulate_f64_soa(ipos, jx, jy, jz, jmass, eps2, out) };
        return;
    }
    accumulate_f64_soa_portable(ipos, jx, jy, jz, jmass, eps2, out);
}

/// Portable explicit-unrolled body of [`accumulate_f64_soa`]; public so
/// the equivalence tests can pin the dispatched path against it.
pub fn accumulate_f64_soa_portable(
    ipos: &[Vec3],
    jx: &[f64],
    jy: &[f64],
    jz: &[f64],
    jmass: &[f64],
    eps2: f64,
    out: &mut [GravityAccum],
) {
    let n_j = jmass.len();
    for (i, &pi) in ipos.iter().enumerate() {
        let mut ax = [0.0f64; 4];
        let mut ay = [0.0f64; 4];
        let mut az = [0.0f64; 4];
        let mut ps = [0.0f64; 4];
        let mut j = 0;
        while j + 4 <= n_j {
            for lane in 0..4 {
                let dx = pi.x - jx[j + lane];
                let dy = pi.y - jy[j + lane];
                let dz = pi.z - jz[j + lane];
                let r2 = dx * dx + dy * dy + dz * dz + eps2;
                let rinv = if r2 > 0.0 { 1.0 / r2.sqrt() } else { 0.0 };
                let mrinv = jmass[j + lane] * rinv;
                let mr3 = mrinv * rinv * rinv;
                ax[lane] -= mr3 * dx;
                ay[lane] -= mr3 * dy;
                az[lane] -= mr3 * dz;
                ps[lane] += mrinv;
            }
            j += 4;
        }
        while j < n_j {
            let dx = pi.x - jx[j];
            let dy = pi.y - jy[j];
            let dz = pi.z - jz[j];
            let r2 = dx * dx + dy * dy + dz * dz + eps2;
            let rinv = if r2 > 0.0 { 1.0 / r2.sqrt() } else { 0.0 };
            let mrinv = jmass[j] * rinv;
            let mr3 = mrinv * rinv * rinv;
            ax[0] -= mr3 * dx;
            ay[0] -= mr3 * dy;
            az[0] -= mr3 * dz;
            ps[0] += mrinv;
            j += 1;
        }
        out[i].acc += Vec3::new(
            ax[0] + ax[1] + ax[2] + ax[3],
            ay[0] + ay[1] + ay[2] + ay[3],
            az[0] + az[1] + az[2] + az[3],
        );
        out[i].pot += ps[0] + ps[1] + ps[2] + ps[3];
    }
}

/// Mixed-precision kernel over pre-staged f32 relative SoA coordinates.
///
/// `jx/jy/jz` are `(p - origin) as f32`, `jm` is the narrowed mass; the
/// caller owns the staging buffers (the solver reuses per-worker scratch,
/// which is what makes this variant actually faster than f64 — the
/// original [`accumulate_mixed`] allocated four fresh `Vec<f32>` per
/// launch and paid more in allocator traffic than it saved in arithmetic).
#[allow(clippy::too_many_arguments)]
pub fn accumulate_mixed_staged(
    origin: Vec3,
    ipos: &[Vec3],
    jx: &[f32],
    jy: &[f32],
    jz: &[f32],
    jm: &[f32],
    eps2: f64,
    out: &mut [GravityAccum],
) {
    debug_assert_eq!(ipos.len(), out.len());
    debug_assert_eq!(jx.len(), jm.len());
    debug_assert_eq!(jy.len(), jm.len());
    debug_assert_eq!(jz.len(), jm.len());
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: feature presence just checked; slice lengths validated.
        unsafe { avx2::accumulate_mixed_staged(origin, ipos, jx, jy, jz, jm, eps2, out) };
        return;
    }
    accumulate_mixed_staged_portable(origin, ipos, jx, jy, jz, jm, eps2, out);
}

/// Portable explicit-unrolled body of [`accumulate_mixed_staged`]; public
/// so the equivalence tests can pin the dispatched path against it.
#[allow(clippy::too_many_arguments)]
pub fn accumulate_mixed_staged_portable(
    origin: Vec3,
    ipos: &[Vec3],
    jx: &[f32],
    jy: &[f32],
    jz: &[f32],
    jm: &[f32],
    eps2: f64,
    out: &mut [GravityAccum],
) {
    let e2 = eps2 as f32;
    let n_j = jm.len();
    for (i, &pi) in ipos.iter().enumerate() {
        let xi = (pi.x - origin.x) as f32;
        let yi = (pi.y - origin.y) as f32;
        let zi = (pi.z - origin.z) as f32;
        // 8 f32 lanes: one AVX vector's worth of independent chains.
        let mut ax = [0.0f32; 8];
        let mut ay = [0.0f32; 8];
        let mut az = [0.0f32; 8];
        let mut ps = [0.0f32; 8];
        let mut j = 0;
        while j + 8 <= n_j {
            for lane in 0..8 {
                let dx = xi - jx[j + lane];
                let dy = yi - jy[j + lane];
                let dz = zi - jz[j + lane];
                let r2 = dx * dx + dy * dy + dz * dz + e2;
                let rinv = if r2 > 0.0 { 1.0 / r2.sqrt() } else { 0.0 };
                let mrinv = jm[j + lane] * rinv;
                let mr3 = mrinv * rinv * rinv;
                ax[lane] -= mr3 * dx;
                ay[lane] -= mr3 * dy;
                az[lane] -= mr3 * dz;
                ps[lane] += mrinv;
            }
            j += 8;
        }
        while j < n_j {
            let dx = xi - jx[j];
            let dy = yi - jy[j];
            let dz = zi - jz[j];
            let r2 = dx * dx + dy * dy + dz * dz + e2;
            let rinv = if r2 > 0.0 { 1.0 / r2.sqrt() } else { 0.0 };
            let mrinv = jm[j] * rinv;
            let mr3 = mrinv * rinv * rinv;
            ax[0] -= mr3 * dx;
            ay[0] -= mr3 * dy;
            az[0] -= mr3 * dz;
            ps[0] += mrinv;
            j += 1;
        }
        let sum8 = |v: [f32; 8]| -> f64 {
            ((v[0] + v[4]) + (v[1] + v[5])) as f64 + ((v[2] + v[6]) + (v[3] + v[7])) as f64
        };
        out[i].acc += Vec3::new(sum8(ax), sum8(ay), sum8(az));
        out[i].pot += sum8(ps);
    }
}

/// Mixed-precision kernel (paper §4.3): coordinates are re-expressed
/// relative to `origin` (the representative point of the receiving group),
/// narrowed to `f32`, and the interaction loop runs in single precision.
/// The relative accuracy of the *interaction* is single precision while
/// absolute positions keep their double-precision resolution.
///
/// Convenience wrapper over [`accumulate_mixed_staged`] that allocates
/// the staging arrays per launch; hot callers stage into reused scratch
/// and call the staged kernel directly.
pub fn accumulate_mixed(
    origin: Vec3,
    ipos: &[Vec3],
    jpos: &[Vec3],
    jmass: &[f64],
    eps2: f64,
    out: &mut [GravityAccum],
) {
    debug_assert_eq!(jpos.len(), jmass.len());
    // Narrow once per launch: SoA f32 relative coordinates.
    let jx: Vec<f32> = jpos.iter().map(|p| (p.x - origin.x) as f32).collect();
    let jy: Vec<f32> = jpos.iter().map(|p| (p.y - origin.y) as f32).collect();
    let jz: Vec<f32> = jpos.iter().map(|p| (p.z - origin.z) as f32).collect();
    let jm: Vec<f32> = jmass.iter().map(|&m| m as f32).collect();
    accumulate_mixed_staged(origin, ipos, &jx, &jy, &jz, &jm, eps2, out);
}

/// AVX2 bodies of the SoA kernels. One 256-bit vector carries the whole
/// fixed lane block (4 × f64 / 8 × f32), so the lane-wise arithmetic of
/// the portable forms maps 1:1 onto packed ops with the *same* per-lane
/// values; the accumulator vector is then spilled to an array and the
/// remainder loop + final reduction run in exactly the portable order.
/// Only exactly-rounded instructions are used — `vaddp*`, `vsubp*`,
/// `vmulp*`, `vdivp*`, `vsqrtp*`, compare+mask — never FMA, so every
/// intermediate rounds exactly like the scalar expression and the results
/// are bitwise identical to the portable path.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::GravityAccum;
    use fdps::Vec3;
    use std::arch::x86_64::*;

    // SAFETY: callers must only invoke this when the CPU supports AVX2
    // (the dispatcher checks `is_x86_feature_detected!("avx2")`); slices
    // jx/jy/jz/jmass must be equal length so the vector loads below stay
    // in bounds.
    #[target_feature(enable = "avx2")]
    pub unsafe fn accumulate_f64_soa(
        ipos: &[Vec3],
        jx: &[f64],
        jy: &[f64],
        jz: &[f64],
        jmass: &[f64],
        eps2: f64,
        out: &mut [GravityAccum],
    ) {
        let n_j = jmass.len();
        let e2v = _mm256_set1_pd(eps2);
        let zero = _mm256_setzero_pd();
        let one = _mm256_set1_pd(1.0);
        for (i, &pi) in ipos.iter().enumerate() {
            let pix = _mm256_set1_pd(pi.x);
            let piy = _mm256_set1_pd(pi.y);
            let piz = _mm256_set1_pd(pi.z);
            let mut axv = zero;
            let mut ayv = zero;
            let mut azv = zero;
            let mut psv = zero;
            let mut j = 0;
            while j + 4 <= n_j {
                // SAFETY: j + 4 <= n_j and the caller guarantees the j-
                // slices share n_j elements, so each 4-wide load is in
                // bounds of its slice.
                let (xv, yv, zv) = unsafe {
                    (
                        _mm256_loadu_pd(jx.as_ptr().add(j)),
                        _mm256_loadu_pd(jy.as_ptr().add(j)),
                        _mm256_loadu_pd(jz.as_ptr().add(j)),
                    )
                };
                let dx = _mm256_sub_pd(pix, xv);
                let dy = _mm256_sub_pd(piy, yv);
                let dz = _mm256_sub_pd(piz, zv);
                // ((dx*dx + dy*dy) + dz*dz) + eps2 — the scalar association.
                let r2 = _mm256_add_pd(
                    _mm256_add_pd(
                        _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)),
                        _mm256_mul_pd(dz, dz),
                    ),
                    e2v,
                );
                // rinv = r2 > 0 ? 1/sqrt(r2) : 0. The masked-off lane
                // computes 1/sqrt(0) = +inf, then the AND clears it — no
                // trap, no NaN escapes.
                let mask = _mm256_cmp_pd::<_CMP_GT_OQ>(r2, zero);
                let rinv = _mm256_and_pd(_mm256_div_pd(one, _mm256_sqrt_pd(r2)), mask);
                // SAFETY: same bounds argument as the position loads.
                let mv = unsafe { _mm256_loadu_pd(jmass.as_ptr().add(j)) };
                let mrinv = _mm256_mul_pd(mv, rinv);
                let mr3 = _mm256_mul_pd(_mm256_mul_pd(mrinv, rinv), rinv);
                axv = _mm256_sub_pd(axv, _mm256_mul_pd(mr3, dx));
                ayv = _mm256_sub_pd(ayv, _mm256_mul_pd(mr3, dy));
                azv = _mm256_sub_pd(azv, _mm256_mul_pd(mr3, dz));
                psv = _mm256_add_pd(psv, mrinv);
                j += 4;
            }
            let mut ax = [0.0f64; 4];
            let mut ay = [0.0f64; 4];
            let mut az = [0.0f64; 4];
            let mut ps = [0.0f64; 4];
            // SAFETY: each destination is a local [f64; 4] — exactly one
            // 256-bit store wide.
            unsafe {
                _mm256_storeu_pd(ax.as_mut_ptr(), axv);
                _mm256_storeu_pd(ay.as_mut_ptr(), ayv);
                _mm256_storeu_pd(az.as_mut_ptr(), azv);
                _mm256_storeu_pd(ps.as_mut_ptr(), psv);
            }
            while j < n_j {
                let dx = pi.x - jx[j];
                let dy = pi.y - jy[j];
                let dz = pi.z - jz[j];
                let r2 = dx * dx + dy * dy + dz * dz + eps2;
                let rinv = if r2 > 0.0 { 1.0 / r2.sqrt() } else { 0.0 };
                let mrinv = jmass[j] * rinv;
                let mr3 = mrinv * rinv * rinv;
                ax[0] -= mr3 * dx;
                ay[0] -= mr3 * dy;
                az[0] -= mr3 * dz;
                ps[0] += mrinv;
                j += 1;
            }
            out[i].acc += Vec3::new(
                ax[0] + ax[1] + ax[2] + ax[3],
                ay[0] + ay[1] + ay[2] + ay[3],
                az[0] + az[1] + az[2] + az[3],
            );
            out[i].pot += ps[0] + ps[1] + ps[2] + ps[3];
        }
    }

    // SAFETY: callers must only invoke this when the CPU supports AVX2
    // (the dispatcher checks `is_x86_feature_detected!("avx2")`); slices
    // jx/jy/jz/jm must be equal length so the vector loads below stay in
    // bounds.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn accumulate_mixed_staged(
        origin: Vec3,
        ipos: &[Vec3],
        jx: &[f32],
        jy: &[f32],
        jz: &[f32],
        jm: &[f32],
        eps2: f64,
        out: &mut [GravityAccum],
    ) {
        let e2 = eps2 as f32;
        let n_j = jm.len();
        let e2v = _mm256_set1_ps(e2);
        let zero = _mm256_setzero_ps();
        let one = _mm256_set1_ps(1.0);
        for (i, &pi) in ipos.iter().enumerate() {
            let xi = (pi.x - origin.x) as f32;
            let yi = (pi.y - origin.y) as f32;
            let zi = (pi.z - origin.z) as f32;
            let xiv = _mm256_set1_ps(xi);
            let yiv = _mm256_set1_ps(yi);
            let ziv = _mm256_set1_ps(zi);
            let mut axv = zero;
            let mut ayv = zero;
            let mut azv = zero;
            let mut psv = zero;
            let mut j = 0;
            while j + 8 <= n_j {
                // SAFETY: j + 8 <= n_j and the caller guarantees the j-
                // slices share n_j elements, so each 8-wide load is in
                // bounds of its slice.
                let (xv, yv, zv) = unsafe {
                    (
                        _mm256_loadu_ps(jx.as_ptr().add(j)),
                        _mm256_loadu_ps(jy.as_ptr().add(j)),
                        _mm256_loadu_ps(jz.as_ptr().add(j)),
                    )
                };
                let dx = _mm256_sub_ps(xiv, xv);
                let dy = _mm256_sub_ps(yiv, yv);
                let dz = _mm256_sub_ps(ziv, zv);
                let r2 = _mm256_add_ps(
                    _mm256_add_ps(
                        _mm256_add_ps(_mm256_mul_ps(dx, dx), _mm256_mul_ps(dy, dy)),
                        _mm256_mul_ps(dz, dz),
                    ),
                    e2v,
                );
                let mask = _mm256_cmp_ps::<_CMP_GT_OQ>(r2, zero);
                let rinv = _mm256_and_ps(_mm256_div_ps(one, _mm256_sqrt_ps(r2)), mask);
                // SAFETY: same bounds argument as the position loads.
                let mv = unsafe { _mm256_loadu_ps(jm.as_ptr().add(j)) };
                let mrinv = _mm256_mul_ps(mv, rinv);
                let mr3 = _mm256_mul_ps(_mm256_mul_ps(mrinv, rinv), rinv);
                axv = _mm256_sub_ps(axv, _mm256_mul_ps(mr3, dx));
                ayv = _mm256_sub_ps(ayv, _mm256_mul_ps(mr3, dy));
                azv = _mm256_sub_ps(azv, _mm256_mul_ps(mr3, dz));
                psv = _mm256_add_ps(psv, mrinv);
                j += 8;
            }
            let mut ax = [0.0f32; 8];
            let mut ay = [0.0f32; 8];
            let mut az = [0.0f32; 8];
            let mut ps = [0.0f32; 8];
            // SAFETY: each destination is a local [f32; 8] — exactly one
            // 256-bit store wide.
            unsafe {
                _mm256_storeu_ps(ax.as_mut_ptr(), axv);
                _mm256_storeu_ps(ay.as_mut_ptr(), ayv);
                _mm256_storeu_ps(az.as_mut_ptr(), azv);
                _mm256_storeu_ps(ps.as_mut_ptr(), psv);
            }
            while j < n_j {
                let dx = xi - jx[j];
                let dy = yi - jy[j];
                let dz = zi - jz[j];
                let r2 = dx * dx + dy * dy + dz * dz + e2;
                let rinv = if r2 > 0.0 { 1.0 / r2.sqrt() } else { 0.0 };
                let mrinv = jm[j] * rinv;
                let mr3 = mrinv * rinv * rinv;
                ax[0] -= mr3 * dx;
                ay[0] -= mr3 * dy;
                az[0] -= mr3 * dz;
                ps[0] += mrinv;
                j += 1;
            }
            let sum8 = |v: [f32; 8]| -> f64 {
                ((v[0] + v[4]) + (v[1] + v[5])) as f64 + ((v[2] + v[6]) + (v[3] + v[7])) as f64
            };
            out[i].acc += Vec3::new(sum8(ax), sum8(ay), sum8(az));
            out[i].pot += sum8(ps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn cloud(n: usize, seed: u64, center: Vec3) -> (Vec<Vec3>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pos = (0..n)
            .map(|_| {
                center
                    + Vec3::new(
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0),
                    )
            })
            .collect();
        let mass = (0..n).map(|_| rng.gen_range(0.5..2.0)).collect();
        (pos, mass)
    }

    #[test]
    fn two_body_force_is_analytic() {
        let ipos = [Vec3::ZERO];
        let jpos = [Vec3::new(2.0, 0.0, 0.0)];
        let jm = [4.0];
        let mut out = [GravityAccum::default()];
        accumulate_f64(&ipos, &jpos, &jm, 0.0, &mut out);
        // a = m/r^2 toward j => +x; pot = m/r = 2.
        assert!((out[0].acc.x - 1.0).abs() < 1e-14);
        assert!(out[0].acc.y.abs() < 1e-14);
        assert!((out[0].pot - 2.0).abs() < 1e-14);
    }

    #[test]
    fn softening_caps_close_encounters() {
        let ipos = [Vec3::ZERO];
        let jpos = [Vec3::new(1e-8, 0.0, 0.0)];
        let jm = [1.0];
        let mut out = [GravityAccum::default()];
        accumulate_f64(&ipos, &jpos, &jm, 1e-2, &mut out);
        // With eps ~ 0.1 the force is ~ r/eps^3 ~ 1e-5, not 1e16.
        assert!(out[0].acc.norm() < 1e-4);
    }

    #[test]
    fn unsoftened_self_interaction_skipped() {
        let p = [Vec3::new(1.0, 2.0, 3.0)];
        let m = [5.0];
        let mut out = [GravityAccum::default()];
        accumulate_f64(&p, &p, &m, 0.0, &mut out);
        assert_eq!(out[0], GravityAccum::default());
    }

    #[test]
    fn accumulation_composes_over_chunks() {
        let (pos, mass) = cloud(64, 1, Vec3::ZERO);
        let ipos = [Vec3::new(0.1, 0.2, 0.3)];
        let mut whole = [GravityAccum::default()];
        accumulate_f64(&ipos, &pos, &mass, 1e-4, &mut whole);
        let mut parts = [GravityAccum::default()];
        accumulate_f64(&ipos, &pos[..32], &mass[..32], 1e-4, &mut parts);
        accumulate_f64(&ipos, &pos[32..], &mass[32..], 1e-4, &mut parts);
        assert!((whole[0].acc - parts[0].acc).norm() < 1e-12);
        assert!((whole[0].pot - parts[0].pot).abs() < 1e-12);
    }

    #[test]
    fn mixed_precision_matches_f64_to_single_accuracy() {
        // A group far from the coordinate origin: naive f32 would lose most
        // of its mantissa; the relative-coordinate trick must not.
        let far = Vec3::new(1.0e5, -2.0e5, 3.0e5);
        let (jpos, jm) = cloud(256, 2, far);
        let (ipos, _) = cloud(16, 3, far);
        let eps2 = 1e-4;
        let mut exact = vec![GravityAccum::default(); ipos.len()];
        accumulate_f64(&ipos, &jpos, &jm, eps2, &mut exact);
        let mut mixed = vec![GravityAccum::default(); ipos.len()];
        accumulate_mixed(far, &ipos, &jpos, &jm, eps2, &mut mixed);
        for (e, m) in exact.iter().zip(&mixed) {
            let rel = (e.acc - m.acc).norm() / e.acc.norm().max(1e-12);
            assert!(rel < 1e-5, "rel err {rel}");
            assert!((e.pot - m.pot).abs() / e.pot < 1e-5);
        }
    }

    #[test]
    fn naive_f32_would_fail_where_mixed_succeeds() {
        // Demonstrate the *reason* for the scheme: absolute f32 coordinates
        // at 1e5 have ~1e-2 spacing, destroying sub-pc structure.
        let far = Vec3::new(1.0e5, 0.0, 0.0);
        let a = far + Vec3::new(1e-4, 0.0, 0.0);
        let apos_f32 = a.x as f32;
        let fpos_f32 = far.x as f32;
        // The separation collapses entirely in absolute f32...
        assert_eq!(apos_f32 - fpos_f32, 0.0);
        // ...but survives in relative coordinates.
        let rel = (a.x - far.x) as f32;
        assert!((rel - 1e-4_f32).abs() < 1e-9);
    }

    /// The SoA kernel keeps the AoS kernel's lane structure and reduction
    /// order exactly, so on the same list it must agree to the bit.
    #[test]
    fn soa_kernel_matches_aos_bitwise() {
        for &(n_i, n_j, eps2) in &[(1usize, 1usize, 0.0f64), (16, 67, 0.0), (32, 130, 1e-4)] {
            let (jpos, jm) = cloud(n_j, 10 + n_j as u64, Vec3::new(0.3, -0.2, 0.1));
            let (ipos, _) = cloud(n_i, 20 + n_i as u64, Vec3::ZERO);
            let mut aos = vec![GravityAccum::default(); n_i];
            accumulate_f64(&ipos, &jpos, &jm, eps2, &mut aos);
            let jx: Vec<f64> = jpos.iter().map(|p| p.x).collect();
            let jy: Vec<f64> = jpos.iter().map(|p| p.y).collect();
            let jz: Vec<f64> = jpos.iter().map(|p| p.z).collect();
            let mut soa = vec![GravityAccum::default(); n_i];
            accumulate_f64_soa(&ipos, &jx, &jy, &jz, &jm, eps2, &mut soa);
            for (i, (a, s)) in aos.iter().zip(&soa).enumerate() {
                assert!(
                    a.acc.x.to_bits() == s.acc.x.to_bits()
                        && a.acc.y.to_bits() == s.acc.y.to_bits()
                        && a.acc.z.to_bits() == s.acc.z.to_bits()
                        && a.pot.to_bits() == s.pot.to_bits(),
                    "i={i} ({n_i}x{n_j}): {a:?} vs {s:?}"
                );
            }
        }
    }

    /// Staged mixed kernel == allocating wrapper, bitwise (same math, the
    /// wrapper just owns the staging buffers).
    #[test]
    fn staged_mixed_matches_wrapper_bitwise() {
        let far = Vec3::new(1.0e4, -3.0e4, 2.0e4);
        let (jpos, jm) = cloud(100, 6, far);
        let (ipos, _) = cloud(10, 7, far);
        let mut a = vec![GravityAccum::default(); ipos.len()];
        accumulate_mixed(far, &ipos, &jpos, &jm, 1e-4, &mut a);
        let jx: Vec<f32> = jpos.iter().map(|p| (p.x - far.x) as f32).collect();
        let jy: Vec<f32> = jpos.iter().map(|p| (p.y - far.y) as f32).collect();
        let jz: Vec<f32> = jpos.iter().map(|p| (p.z - far.z) as f32).collect();
        let jmf: Vec<f32> = jm.iter().map(|&m| m as f32).collect();
        let mut b = vec![GravityAccum::default(); ipos.len()];
        accumulate_mixed_staged(far, &ipos, &jx, &jy, &jz, &jmf, 1e-4, &mut b);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.acc.x.to_bits(), y.acc.x.to_bits());
            assert_eq!(x.pot.to_bits(), y.pot.to_bits());
        }
    }

    /// The runtime-dispatched SoA kernels (AVX2 where detected) must match
    /// the portable explicit-unrolled bodies to the bit: which CPU ran the
    /// kernel must never leak into results. Odd lengths exercise both the
    /// packed block and the lane-0 remainder.
    #[test]
    fn dispatched_kernels_match_portable_bitwise() {
        for &(n_i, n_j) in &[(1usize, 3usize), (7, 61), (16, 256), (5, 1029)] {
            let (jpos, jm) = cloud(n_j, 40 + n_j as u64, Vec3::new(0.5, 0.1, -0.4));
            let (ipos, _) = cloud(n_i, 50 + n_i as u64, Vec3::ZERO);
            let jx: Vec<f64> = jpos.iter().map(|p| p.x).collect();
            let jy: Vec<f64> = jpos.iter().map(|p| p.y).collect();
            let jz: Vec<f64> = jpos.iter().map(|p| p.z).collect();
            let mut disp = vec![GravityAccum::default(); n_i];
            accumulate_f64_soa(&ipos, &jx, &jy, &jz, &jm, 1e-4, &mut disp);
            let mut port = vec![GravityAccum::default(); n_i];
            accumulate_f64_soa_portable(&ipos, &jx, &jy, &jz, &jm, 1e-4, &mut port);
            for (d, p) in disp.iter().zip(&port) {
                assert_eq!(d.acc.x.to_bits(), p.acc.x.to_bits());
                assert_eq!(d.acc.y.to_bits(), p.acc.y.to_bits());
                assert_eq!(d.acc.z.to_bits(), p.acc.z.to_bits());
                assert_eq!(d.pot.to_bits(), p.pot.to_bits());
            }
            let jx32: Vec<f32> = jpos.iter().map(|p| p.x as f32).collect();
            let jy32: Vec<f32> = jpos.iter().map(|p| p.y as f32).collect();
            let jz32: Vec<f32> = jpos.iter().map(|p| p.z as f32).collect();
            let jm32: Vec<f32> = jm.iter().map(|&m| m as f32).collect();
            let mut disp = vec![GravityAccum::default(); n_i];
            accumulate_mixed_staged(
                Vec3::ZERO,
                &ipos,
                &jx32,
                &jy32,
                &jz32,
                &jm32,
                1e-4,
                &mut disp,
            );
            let mut port = vec![GravityAccum::default(); n_i];
            accumulate_mixed_staged_portable(
                Vec3::ZERO,
                &ipos,
                &jx32,
                &jy32,
                &jz32,
                &jm32,
                1e-4,
                &mut port,
            );
            for (d, p) in disp.iter().zip(&port) {
                assert_eq!(d.acc.x.to_bits(), p.acc.x.to_bits());
                assert_eq!(d.pot.to_bits(), p.pot.to_bits());
            }
        }
    }

    /// Unsoftened self-interaction stays excluded through the masked
    /// select on the dispatched (possibly AVX2) path too.
    #[test]
    fn dispatched_soa_skips_unsoftened_self_interaction() {
        let p = [Vec3::new(1.0, 2.0, 3.0); 4];
        let jx = [1.0; 4];
        let jy = [2.0; 4];
        let jz = [3.0; 4];
        let jm = [5.0; 4];
        let mut out = [GravityAccum::default()];
        accumulate_f64_soa(&p[..1], &jx, &jy, &jz, &jm, 0.0, &mut out);
        assert_eq!(out[0], GravityAccum::default());
    }

    #[test]
    fn momentum_conservation_pairwise() {
        let (pos, mass) = cloud(50, 4, Vec3::ZERO);
        let mut out = vec![GravityAccum::default(); pos.len()];
        accumulate_f64(&pos, &pos, &mass, 1e-6, &mut out);
        let mut net = Vec3::ZERO;
        for (o, &m) in out.iter().zip(&mass) {
            net += o.acc * m;
        }
        assert!(net.norm() < 1e-9, "net momentum flux {net:?}");
    }
}
