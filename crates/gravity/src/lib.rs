//! # gravity — softened monopole gravity kernels
//!
//! The gravity interaction (paper Eq. 1) evaluated Barnes–Hut-style over
//! FDPS interaction lists. Two kernel back ends are provided:
//!
//! * [`kernel::accumulate_f64`] / [`kernel::accumulate_f64_soa`] —
//!   straight double precision; the SoA form is the vectorized production
//!   kernel (bitwise identical to the AoS reference);
//! * [`kernel::accumulate_mixed`] / [`kernel::accumulate_mixed_staged`] —
//!   the paper's mixed-precision scheme (§4.3): positions are converted to
//!   single-precision coordinates *relative to a group representative*,
//!   the hot loop runs in `f32`, and the accumulated result is widened
//!   back to `f64`. This keeps the wide dynamic range of the galaxy (5–6
//!   orders of magnitude in scale) in doubles while the O(N n_l) inner
//!   loop runs at single-precision speed. The staged form takes
//!   caller-owned f32 SoA scratch so the hot path never allocates.
//!
//! [`solver::GravitySolver`] drives the group-wise evaluation with rayon
//! across groups (the intra-node OpenMP analogue), staging each group's
//! interaction list into per-worker SoA buffers.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod kernel;
pub mod solver;

pub use kernel::{
    accumulate_f64, accumulate_f64_soa, accumulate_mixed, accumulate_mixed_staged, GravityAccum,
};
pub use solver::{GravityResult, GravitySolver};

/// FLOPs per gravity interaction under the paper's counting (Table 4).
pub const OPS_PER_INTERACTION: usize = pikg::kernels::PAPER_GRAVITY_OPS;
