//! Group-wise tree gravity driver.
//!
//! Parallelism follows the fdps walk's buffer-reuse contract: groups are
//! processed with rayon `map_init`, each worker owning one `GroupScratch`
//! (walk stack, interaction list, and j-side SoA staging buffers) that is
//! cleared — never reallocated — between groups. Only the per-group outputs
//! (target indices and accumulators) are freshly allocated, and
//! [`GravitySolver::evaluate_into`] lets callers own the result arrays too,
//! so a simulation's steady-state force evaluation does not grow the heap.

use crate::kernel::{accumulate_f64_soa, accumulate_mixed_staged, GravityAccum};
use fdps::walk::{InteractionList, WalkIndex, WalkScratch};
use fdps::{Tree, Vec3};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-worker scratch reused across all groups a rayon worker processes.
///
/// The j-side is staged as struct-of-arrays (`jx/jy/jz/jmass`, or the f32
/// relative-coordinate quartet for the mixed-precision kernel) so the
/// interaction kernels read contiguous per-axis streams — the layout the
/// SIMD lanes need. Staging order is always EP entries then SP monopoles,
/// which fixes the kernel's reduction order and keeps results
/// bit-reproducible.
#[derive(Default)]
struct GroupScratch {
    walk: WalkScratch,
    list: InteractionList,
    jx: Vec<f64>,
    jy: Vec<f64>,
    jz: Vec<f64>,
    jmass: Vec<f64>,
    // f32 relative-coordinate staging for the mixed-precision kernel.
    jx32: Vec<f32>,
    jy32: Vec<f32>,
    jz32: Vec<f32>,
    jm32: Vec<f32>,
    ipos: Vec<Vec3>,
}

/// Result of a gravity evaluation over the local particles.
#[derive(Debug, Clone)]
pub struct GravityResult {
    /// Acceleration including the G factor.
    pub acc: Vec<Vec3>,
    /// Potential including the G factor and sign: `-G Σ m_j / r`.
    pub pot: Vec<f64>,
    /// Total i–j interactions evaluated (for FLOP accounting, §4.3).
    pub interactions: u64,
}

/// Configuration for the tree-gravity evaluation.
#[derive(Debug, Clone, Copy)]
pub struct GravitySolver {
    /// Gravitational constant in code units.
    pub g: f64,
    /// Opening angle.
    pub theta: f64,
    /// Maximum particles per i-group (`n_g`; paper tunes 2048 on Fugaku).
    pub n_group: usize,
    /// Leaf size of the j-tree.
    pub n_leaf: usize,
    /// Plummer softening, applied as `eps^2` in the kernel.
    pub eps: f64,
    /// Use the mixed-precision (f32 relative coordinates) kernel.
    pub mixed_precision: bool,
}

impl Default for GravitySolver {
    fn default() -> Self {
        GravitySolver {
            g: 1.0,
            theta: 0.5,
            n_group: 64,
            n_leaf: 8,
            eps: 0.0,
            mixed_precision: false,
        }
    }
}

impl GravitySolver {
    /// Evaluate gravity on the first `n_local` particles of `pos`/`mass`
    /// (indices >= `n_local` are imported LET entries that act only as
    /// sources). Groups are processed in parallel with rayon.
    pub fn evaluate(&self, pos: &[Vec3], mass: &[f64], n_local: usize) -> GravityResult {
        assert!(n_local <= pos.len());
        let tree = Tree::build(pos, mass, self.n_leaf);
        self.evaluate_with_tree(&tree, pos, mass, n_local)
    }

    /// Same as [`GravitySolver::evaluate`] but reusing a prebuilt tree.
    pub fn evaluate_with_tree(
        &self,
        tree: &Tree,
        pos: &[Vec3],
        mass: &[f64],
        n_local: usize,
    ) -> GravityResult {
        let mut acc = Vec::new();
        let mut pot = Vec::new();
        let interactions = self.evaluate_into(tree, pos, mass, n_local, &mut acc, &mut pot);
        GravityResult {
            acc,
            pot,
            interactions,
        }
    }

    /// Evaluate into caller-owned result buffers (`acc`/`pot` are resized
    /// to `n_local` in place, capacity retained), returning the interaction
    /// count. This is the zero-allocation entry point the simulation driver
    /// uses every step.
    pub fn evaluate_into(
        &self,
        tree: &Tree,
        pos: &[Vec3],
        mass: &[f64],
        n_local: usize,
        acc: &mut Vec<Vec3>,
        pot: &mut Vec<f64>,
    ) -> u64 {
        let index = tree.walk_index();
        self.evaluate_into_indexed(tree, &index, pos, mass, n_local, acc, pot)
    }

    /// [`GravitySolver::evaluate_into`] over a caller-owned [`WalkIndex`].
    ///
    /// The index must belong to `tree` (same build, or [`WalkIndex::refresh`]ed
    /// after a [`Tree::refresh`]). Drivers that evaluate forces repeatedly on
    /// the same or a moment-refreshed tree keep the index alongside the tree
    /// instead of paying an O(nodes) index build per evaluation.
    #[allow(clippy::too_many_arguments)]
    pub fn evaluate_into_indexed(
        &self,
        tree: &Tree,
        index: &WalkIndex,
        pos: &[Vec3],
        mass: &[f64],
        n_local: usize,
        acc: &mut Vec<Vec3>,
        pot: &mut Vec<f64>,
    ) -> u64 {
        let interactions = AtomicU64::new(0);
        let per_group =
            self.accumulate_groups(tree, index, pos, mass, n_local, None, &interactions);
        acc.clear();
        acc.resize(n_local, Vec3::ZERO);
        pot.clear();
        pot.resize(n_local, 0.0);
        for (targets, accum) in per_group {
            for (k, &i) in targets.iter().enumerate() {
                acc[i as usize] = accum[k].acc * self.g;
                pot[i as usize] = -self.g * accum[k].pot;
            }
        }
        interactions.into_inner()
    }

    /// The group kernel shared by the full and active-subset entry points:
    /// per group, filter targets (locality plus the optional active mask),
    /// walk the tree, stage the j-side SoA (EP entries then SP monopoles,
    /// fused into one contiguous kernel launch), run the monopole kernel
    /// and subtract the softened self-interaction. Groups with no
    /// surviving target skip their walk entirely — with a sparse mask that
    /// is where the block-timestep savings come from.
    ///
    /// Each group owns disjoint i-particles, so groups parallelize
    /// cleanly; a worker's walk/list/SoA scratch persists across its
    /// groups, and only the per-group outputs are freshly allocated.
    #[allow(clippy::too_many_arguments)]
    fn accumulate_groups(
        &self,
        tree: &Tree,
        index: &WalkIndex,
        pos: &[Vec3],
        mass: &[f64],
        n_local: usize,
        active_mask: Option<&[bool]>,
        interactions: &AtomicU64,
    ) -> Vec<(Vec<u32>, Vec<GravityAccum>)> {
        let eps2 = 2.0 * self.eps * self.eps; // eps_i^2 + eps_j^2, equal eps
        let groups = tree.groups(self.n_group);

        groups
            .par_iter()
            .map_init(GroupScratch::default, |scratch, &g| {
                let node = &tree.nodes[g];
                let targets: Vec<u32> = tree
                    .leaf_particles(node)
                    .iter()
                    .copied()
                    .filter(|&i| {
                        (i as usize) < n_local && active_mask.is_none_or(|m| m[i as usize])
                    })
                    .collect();
                if targets.is_empty() {
                    return (targets, Vec::new());
                }
                tree.walk_mac_indexed(
                    index,
                    &node.bbox,
                    self.theta,
                    &mut scratch.walk,
                    &mut scratch.list,
                );
                let list = &scratch.list;

                let ipos = &mut scratch.ipos;
                ipos.clear();
                ipos.extend(targets.iter().map(|&i| pos[i as usize]));

                let n_j = list.len();
                interactions.fetch_add((ipos.len() * n_j) as u64, Ordering::Relaxed);

                let mut accum = vec![GravityAccum::default(); ipos.len()];
                if self.mixed_precision {
                    // Narrow straight from the list into reused f32 SoA
                    // scratch — no intermediate f64 copy and no per-group
                    // allocation (the old allocating path made "mixed"
                    // slower than f64).
                    let origin = node.bbox.center();
                    let (jx, jy, jz, jm) = (
                        &mut scratch.jx32,
                        &mut scratch.jy32,
                        &mut scratch.jz32,
                        &mut scratch.jm32,
                    );
                    jx.clear();
                    jy.clear();
                    jz.clear();
                    jm.clear();
                    jx.reserve(n_j);
                    jy.reserve(n_j);
                    jz.reserve(n_j);
                    jm.reserve(n_j);
                    for &j in &list.ep {
                        let p = pos[j as usize];
                        jx.push((p.x - origin.x) as f32);
                        jy.push((p.y - origin.y) as f32);
                        jz.push((p.z - origin.z) as f32);
                        jm.push(mass[j as usize] as f32);
                    }
                    for s in &list.sp {
                        jx.push((s.pos.x - origin.x) as f32);
                        jy.push((s.pos.y - origin.y) as f32);
                        jz.push((s.pos.z - origin.z) as f32);
                        jm.push(s.mass as f32);
                    }
                    accumulate_mixed_staged(origin, ipos, jx, jy, jz, jm, eps2, &mut accum);
                } else {
                    let (jx, jy, jz, jm) = (
                        &mut scratch.jx,
                        &mut scratch.jy,
                        &mut scratch.jz,
                        &mut scratch.jmass,
                    );
                    jx.clear();
                    jy.clear();
                    jz.clear();
                    jm.clear();
                    jx.reserve(n_j);
                    jy.reserve(n_j);
                    jz.reserve(n_j);
                    jm.reserve(n_j);
                    for &j in &list.ep {
                        let p = pos[j as usize];
                        jx.push(p.x);
                        jy.push(p.y);
                        jz.push(p.z);
                        jm.push(mass[j as usize]);
                    }
                    for s in &list.sp {
                        jx.push(s.pos.x);
                        jy.push(s.pos.y);
                        jz.push(s.pos.z);
                        jm.push(s.mass);
                    }
                    accumulate_f64_soa(ipos, jx, jy, jz, jm, eps2, &mut accum);
                }
                // Remove the softened self-interaction: zero force but a
                // spurious self-potential m_i/eps.
                if eps2 > 0.0 {
                    let self_pot = 1.0 / eps2.sqrt();
                    for (k, &i) in targets.iter().enumerate() {
                        accum[k].pot -= mass[i as usize] * self_pot;
                    }
                }
                (targets, accum)
            })
            .collect()
    }

    /// Evaluate gravity only on the particles flagged in `active_mask`
    /// while the full `pos`/`mass` set still acts as sources — the
    /// hierarchical-block-timestep entry point: on a fine substep only the
    /// active level bins need fresh forces, and groups whose leaves contain
    /// no active target skip their tree walk entirely, which is where the
    /// active-set savings come from.
    ///
    /// `acc`/`pot` must already be sized to at least `n_local` (a base
    /// step's [`GravitySolver::evaluate_into`] does that); only the entries
    /// of active targets are overwritten, everything else keeps the value
    /// from its own last update.
    #[allow(clippy::too_many_arguments)]
    pub fn evaluate_into_active(
        &self,
        tree: &Tree,
        pos: &[Vec3],
        mass: &[f64],
        n_local: usize,
        active_mask: &[bool],
        acc: &mut [Vec3],
        pot: &mut [f64],
    ) -> u64 {
        let index = tree.walk_index();
        self.evaluate_into_active_indexed(tree, &index, pos, mass, n_local, active_mask, acc, pot)
    }

    /// [`GravitySolver::evaluate_into_active`] over a caller-owned
    /// [`WalkIndex`] — the block-timestep hot path: on fine substeps the
    /// tree is moment-refreshed and the index [`WalkIndex::refresh`]ed in
    /// place, so neither structure is rebuilt per force evaluation.
    #[allow(clippy::too_many_arguments)]
    pub fn evaluate_into_active_indexed(
        &self,
        tree: &Tree,
        index: &WalkIndex,
        pos: &[Vec3],
        mass: &[f64],
        n_local: usize,
        active_mask: &[bool],
        acc: &mut [Vec3],
        pot: &mut [f64],
    ) -> u64 {
        assert!(n_local <= pos.len());
        assert!(
            active_mask.len() >= n_local,
            "active mask must cover all local particles"
        );
        assert!(
            acc.len() >= n_local && pot.len() >= n_local,
            "result buffers must be pre-sized (run a full evaluation first)"
        );
        let interactions = AtomicU64::new(0);
        let per_group = self.accumulate_groups(
            tree,
            index,
            pos,
            mass,
            n_local,
            Some(active_mask),
            &interactions,
        );
        for (targets, accum) in per_group {
            for (k, &i) in targets.iter().enumerate() {
                acc[i as usize] = accum[k].acc * self.g;
                pot[i as usize] = -self.g * accum[k].pot;
            }
        }
        interactions.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn plummer_like(n: usize, seed: u64) -> (Vec<Vec3>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pos = (0..n)
            .map(|_| {
                Vec3::new(
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                )
            })
            .collect();
        let mass = vec![1.0 / n as f64; n];
        (pos, mass)
    }

    fn direct(pos: &[Vec3], mass: &[f64], g: f64, eps: f64) -> (Vec<Vec3>, Vec<f64>) {
        let eps2 = 2.0 * eps * eps;
        let mut acc = vec![Vec3::ZERO; pos.len()];
        let mut pot = vec![0.0; pos.len()];
        for i in 0..pos.len() {
            for j in 0..pos.len() {
                if i == j {
                    continue;
                }
                let d = pos[i] - pos[j];
                let r2 = d.norm2() + eps2;
                let rinv = 1.0 / r2.sqrt();
                acc[i] -= d * (g * mass[j] * rinv * rinv * rinv);
                pot[i] -= g * mass[j] * rinv;
            }
        }
        (acc, pot)
    }

    #[test]
    fn solver_matches_direct_sum_with_small_theta() {
        let (pos, mass) = plummer_like(400, 1);
        let solver = GravitySolver {
            g: 2.5,
            theta: 0.0,
            eps: 0.01,
            ..Default::default()
        };
        let r = solver.evaluate(&pos, &mass, pos.len());
        let (acc, pot) = direct(&pos, &mass, 2.5, 0.01);
        for i in 0..pos.len() {
            assert!((r.acc[i] - acc[i]).norm() < 1e-10, "acc[{i}]");
            assert!((r.pot[i] - pot[i]).abs() < 1e-10, "pot[{i}]");
        }
    }

    #[test]
    fn default_theta_accuracy_and_interaction_savings() {
        let (pos, mass) = plummer_like(2000, 2);
        let exact = GravitySolver {
            theta: 0.0,
            eps: 0.01,
            ..Default::default()
        }
        .evaluate(&pos, &mass, pos.len());
        let approx = GravitySolver {
            theta: 0.5,
            eps: 0.01,
            ..Default::default()
        }
        .evaluate(&pos, &mass, pos.len());
        let mut mean = 0.0;
        for i in 0..pos.len() {
            mean += (exact.acc[i] - approx.acc[i]).norm() / exact.acc[i].norm().max(1e-12);
        }
        mean /= pos.len() as f64;
        assert!(mean < 0.01, "mean rel err {mean}");
        assert!(
            approx.interactions < exact.interactions / 2,
            "tree should prune interactions: {} vs {}",
            approx.interactions,
            exact.interactions
        );
    }

    #[test]
    fn mixed_precision_solver_close_to_f64() {
        let (mut pos, mass) = plummer_like(500, 3);
        // Shift far from the origin to stress the relative-coordinate path.
        for p in &mut pos {
            *p += Vec3::new(2.0e4, -1.0e4, 5.0e3);
        }
        let base = GravitySolver {
            theta: 0.4,
            eps: 0.01,
            ..Default::default()
        };
        let f64r = base.evaluate(&pos, &mass, pos.len());
        let mixed = GravitySolver {
            mixed_precision: true,
            ..base
        }
        .evaluate(&pos, &mass, pos.len());
        for i in 0..pos.len() {
            let rel = (f64r.acc[i] - mixed.acc[i]).norm() / f64r.acc[i].norm().max(1e-12);
            assert!(rel < 1e-4, "rel err {rel} at {i}");
        }
    }

    #[test]
    fn let_sources_act_but_receive_no_force() {
        let (pos, mass) = plummer_like(100, 4);
        let n_local = 60;
        let r = GravitySolver {
            theta: 0.0,
            eps: 0.01,
            ..Default::default()
        }
        .evaluate(&pos, &mass, n_local);
        assert_eq!(r.acc.len(), n_local);
        // Forces on locals must include the imported sources: compare with
        // a direct sum over ALL particles.
        let (acc_all, _) = direct(&pos, &mass, 1.0, 0.01);
        #[allow(clippy::needless_range_loop)]
        for i in 0..n_local {
            assert!((r.acc[i] - acc_all[i]).norm() < 1e-10);
        }
    }

    #[test]
    fn active_subset_matches_full_evaluation_and_preserves_the_rest() {
        let (pos, mass) = plummer_like(600, 7);
        let n = pos.len();
        let solver = GravitySolver {
            theta: 0.4,
            eps: 0.02,
            ..Default::default()
        };
        let tree = Tree::build(&pos, &mass, solver.n_leaf);
        let mut acc = Vec::new();
        let mut pot = Vec::new();
        solver.evaluate_into(&tree, &pos, &mass, n, &mut acc, &mut pot);

        // Poison the result arrays everywhere, then re-evaluate only a
        // scattered active subset: active entries must be restored exactly,
        // inactive ones must keep the poison.
        let mut active_mask = vec![false; n];
        for i in (0..n).step_by(7) {
            active_mask[i] = true;
        }
        let sentinel_a = Vec3::new(1e30, -1e30, 1e30);
        let mut acc2 = vec![sentinel_a; n];
        let mut pot2 = vec![1e30; n];
        let inter =
            solver.evaluate_into_active(&tree, &pos, &mass, n, &active_mask, &mut acc2, &mut pot2);
        assert!(inter > 0);
        for i in 0..n {
            if active_mask[i] {
                assert!((acc2[i] - acc[i]).norm() < 1e-12, "acc[{i}]");
                assert!((pot2[i] - pot[i]).abs() < 1e-12, "pot[{i}]");
            } else {
                assert_eq!(acc2[i], sentinel_a, "inactive acc[{i}] overwritten");
                assert_eq!(pot2[i], 1e30, "inactive pot[{i}] overwritten");
            }
        }

        // A sparse active set must evaluate far fewer interactions than the
        // full pass — the block-timestep savings.
        let mut one_hot = vec![false; n];
        one_hot[13] = true;
        let mut acc3 = vec![Vec3::ZERO; n];
        let mut pot3 = vec![0.0; n];
        let full = solver.evaluate_into(&tree, &pos, &mass, n, &mut acc, &mut pot);
        let sparse =
            solver.evaluate_into_active(&tree, &pos, &mass, n, &one_hot, &mut acc3, &mut pot3);
        assert!(
            sparse * 10 < full,
            "one-hot active set should prune interactions: {sparse} vs {full}"
        );
    }

    #[test]
    fn potential_energy_is_negative_and_finite() {
        let (pos, mass) = plummer_like(300, 5);
        let r = GravitySolver {
            eps: 0.05,
            ..Default::default()
        }
        .evaluate(&pos, &mass, pos.len());
        let w: f64 = 0.5 * r.pot.iter().zip(&mass).map(|(p, m)| p * m).sum::<f64>();
        assert!(w < 0.0);
        assert!(w.is_finite());
    }
}
