//! Domain decomposition: recursive multisection into a 3-D process grid
//! (paper §3.4, Figure 4).
//!
//! FDPS samples particle positions, gathers the samples, and cuts space into
//! `nx × ny × nz` slabs with equal sample counts — first along x, then along
//! y within each x-slab, then along z within each (x, y) column. The highly
//! concentrated galactic disk therefore produces the narrow central domains
//! visible in the paper's Figure 4.

use crate::bbox::BBox;
use crate::vec3::Vec3;
use mpisim::Comm;

/// A completed decomposition: ownership boundaries plus clipped domain boxes.
#[derive(Debug, Clone)]
pub struct DomainDecomposition {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    /// Interior x boundaries (`nx - 1` values, ascending).
    xb: Vec<f64>,
    /// Interior y boundaries per x-slab (`nx` rows of `ny - 1`).
    yb: Vec<Vec<f64>>,
    /// Interior z boundaries per (x, y) column (`nx * ny` rows of `nz - 1`).
    zb: Vec<Vec<f64>>,
    /// Bounding box of the sampled particles (domains are clipped to it).
    pub global: BBox,
}

impl DomainDecomposition {
    /// Number of domains.
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rank of grid cell `(ix, iy, iz)` — matches the 3-D torus layout.
    #[inline]
    pub fn rank_of_cell(&self, ix: usize, iy: usize, iz: usize) -> usize {
        ix + self.nx * (iy + self.ny * iz)
    }

    /// Grid cell of `rank`.
    #[inline]
    pub fn cell_of_rank(&self, rank: usize) -> (usize, usize, usize) {
        let ix = rank % self.nx;
        let iy = (rank / self.nx) % self.ny;
        let iz = rank / (self.nx * self.ny);
        (ix, iy, iz)
    }

    /// Owning rank of position `p`. Every point in space has an owner
    /// (boundary slabs extend to infinity).
    pub fn owner_of(&self, p: Vec3) -> usize {
        let ix = self.xb.partition_point(|&b| b <= p.x);
        let yb = &self.yb[ix];
        let iy = yb.partition_point(|&b| b <= p.y);
        let zb = &self.zb[ix * self.ny + iy];
        let iz = zb.partition_point(|&b| b <= p.z);
        self.rank_of_cell(ix, iy, iz)
    }

    /// The domain box of `rank`, clipped to the global bounding box (used
    /// for LET / ghost geometry; ownership itself is unbounded).
    pub fn domain_box(&self, rank: usize) -> BBox {
        let (ix, iy, iz) = self.cell_of_rank(rank);
        let lo_or = |bs: &[f64], i: usize, glo: f64| if i == 0 { glo } else { bs[i - 1] };
        let hi_or = |bs: &[f64], i: usize, n: usize, ghi: f64| {
            if i == n - 1 {
                ghi
            } else {
                bs[i]
            }
        };
        let yb = &self.yb[ix];
        let zb = &self.zb[ix * self.ny + iy];
        BBox::new(
            Vec3::new(
                lo_or(&self.xb, ix, self.global.lo.x),
                lo_or(yb, iy, self.global.lo.y),
                lo_or(zb, iz, self.global.lo.z),
            ),
            Vec3::new(
                hi_or(&self.xb, ix, self.nx, self.global.hi.x),
                hi_or(yb, iy, self.ny, self.global.hi.y),
                hi_or(zb, iz, self.nz, self.global.hi.z),
            ),
        )
    }

    /// Decompose collectively: every rank contributes up to `max_samples`
    /// strided samples of its local positions; all ranks compute identical
    /// boundaries from the gathered sample.
    pub fn decompose(
        comm: &Comm,
        (nx, ny, nz): (usize, usize, usize),
        local_pos: &[Vec3],
        max_samples: usize,
    ) -> DomainDecomposition {
        assert_eq!(
            nx * ny * nz,
            comm.size(),
            "process grid must match communicator size"
        );
        let stride = (local_pos.len() / max_samples.max(1)).max(1);
        let mine: Vec<[f64; 3]> = local_pos
            .iter()
            .step_by(stride)
            .take(max_samples)
            .map(|p| [p.x, p.y, p.z])
            .collect();
        let gathered = comm.allgatherv(mine);
        let mut samples: Vec<Vec3> = gathered
            .into_iter()
            .flatten()
            .map(|a| Vec3::new(a[0], a[1], a[2]))
            .collect();
        // Also gather the true global bounds so clipped boxes cover all
        // particles, not just the sample.
        let local_bb = BBox::of_points(local_pos);
        let bounds = comm.allreduce_vec_f64(
            vec![
                -local_bb.lo.x,
                -local_bb.lo.y,
                -local_bb.lo.z,
                local_bb.hi.x,
                local_bb.hi.y,
                local_bb.hi.z,
            ],
            mpisim::ReduceOp::Max,
        );
        let global = BBox::new(
            Vec3::new(-bounds[0], -bounds[1], -bounds[2]),
            Vec3::new(bounds[3], bounds[4], bounds[5]),
        );
        Self::from_samples((nx, ny, nz), &mut samples, global)
    }

    /// Deterministic multisection of an explicit sample (serial entry point;
    /// `decompose` funnels here).
    pub fn from_samples(
        (nx, ny, nz): (usize, usize, usize),
        samples: &mut [Vec3],
        global: BBox,
    ) -> DomainDecomposition {
        assert!(nx > 0 && ny > 0 && nz > 0, "grid dims must be positive");
        // Split along x into nx equal-count slabs.
        samples.sort_unstable_by(|a, b| a.x.total_cmp(&b.x));
        let (xb, x_chunks) = equal_count_boundaries(samples, nx, |p| p.x);

        let mut yb = Vec::with_capacity(nx);
        let mut zb = Vec::with_capacity(nx * ny);
        for xc in x_chunks {
            let slab = &mut samples[xc.clone()];
            slab.sort_unstable_by(|a, b| a.y.total_cmp(&b.y));
            let (ybounds, y_chunks) = equal_count_boundaries(slab, ny, |p| p.y);
            yb.push(ybounds);
            for yc in y_chunks {
                let column = &mut slab[yc];
                column.sort_unstable_by(|a, b| a.z.total_cmp(&b.z));
                let (zbounds, _) = equal_count_boundaries(column, nz, |p| p.z);
                zb.push(zbounds);
            }
        }
        DomainDecomposition {
            nx,
            ny,
            nz,
            xb,
            yb,
            zb,
            global,
        }
    }
}

/// Boundaries splitting `sorted` into `n` equal-count chunks; returns the
/// `n - 1` interior boundary coordinates and the chunk ranges.
fn equal_count_boundaries<T, F: Fn(&T) -> f64>(
    sorted: &[T],
    n: usize,
    coord: F,
) -> (Vec<f64>, Vec<std::ops::Range<usize>>) {
    let len = sorted.len();
    let mut bounds = Vec::with_capacity(n.saturating_sub(1));
    let mut ranges = Vec::with_capacity(n);
    let mut start = 0usize;
    for k in 1..=n {
        let end = len * k / n;
        ranges.push(start..end);
        if k < n {
            let b = if len == 0 {
                0.0
            } else if end == 0 {
                coord(&sorted[0])
            } else if end >= len {
                coord(&sorted[len - 1])
            } else {
                0.5 * (coord(&sorted[end - 1]) + coord(&sorted[end]))
            };
            bounds.push(b);
        }
        start = end;
    }
    // Boundaries must be non-decreasing even with duplicated coordinates.
    for i in 1..bounds.len() {
        if bounds[i] < bounds[i - 1] {
            bounds[i] = bounds[i - 1];
        }
    }
    (bounds, ranges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::World;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn cloud(n: usize, seed: u64) -> Vec<Vec3> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Vec3::new(
                    rng.gen_range(-4.0..4.0),
                    rng.gen_range(-2.0..2.0),
                    rng.gen_range(-1.0..1.0),
                )
            })
            .collect()
    }

    #[test]
    fn serial_decomposition_balances_counts() {
        let pts = cloud(8000, 1);
        let global = BBox::of_points(&pts);
        let dd = DomainDecomposition::from_samples((4, 2, 2), &mut pts.clone(), global);
        let mut counts = vec![0usize; dd.len()];
        for &p in &pts {
            counts[dd.owner_of(p)] += 1;
        }
        let ideal = pts.len() / dd.len();
        for (r, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - ideal as f64).abs() < ideal as f64 * 0.25,
                "rank {r}: {c} vs ideal {ideal}"
            );
        }
    }

    #[test]
    fn every_point_has_exactly_one_owner_box() {
        let pts = cloud(2000, 2);
        let global = BBox::of_points(&pts);
        let dd = DomainDecomposition::from_samples((3, 2, 2), &mut pts.clone(), global);
        for &p in &pts {
            let owner = dd.owner_of(p);
            assert!(owner < dd.len());
            // The clipped box of the owner contains the point (allowing the
            // hi face which half-open boxes exclude).
            let b = dd.domain_box(owner).inflated(1e-9);
            assert!(b.contains(p), "point {p:?} not in its own domain box");
        }
    }

    #[test]
    fn domain_boxes_tile_without_overlap() {
        let pts = cloud(4000, 3);
        let global = BBox::of_points(&pts);
        let dd = DomainDecomposition::from_samples((2, 2, 2), &mut pts.clone(), global);
        for a in 0..dd.len() {
            for b in (a + 1)..dd.len() {
                let ba = dd.domain_box(a);
                let bb = dd.domain_box(b);
                assert!(
                    !ba.overlaps(&bb),
                    "domains {a} and {b} overlap: {ba:?} vs {bb:?}"
                );
            }
        }
    }

    #[test]
    fn centrally_concentrated_distribution_narrows_central_domains() {
        // Exponential-disk-like concentration: central domains must be
        // geometrically smaller than edge domains (paper Fig. 4).
        let mut rng = StdRng::seed_from_u64(4);
        let mut pts: Vec<Vec3> = (0..20000)
            .map(|_| {
                let r = -(1.0 - rng.gen::<f64>()).ln() * 1.0; // exp radial
                let th = rng.gen_range(0.0..std::f64::consts::TAU);
                Vec3::new(r * th.cos(), r * th.sin(), rng.gen_range(-0.05..0.05))
            })
            .collect();
        let global = BBox::of_points(&pts);
        let dd = DomainDecomposition::from_samples((8, 1, 1), &mut pts, global);
        let central = dd.domain_box(4).extent().x;
        let edge = dd.domain_box(7).extent().x;
        assert!(
            central < edge,
            "central slab ({central}) should be narrower than edge ({edge})"
        );
    }

    #[test]
    fn collective_decomposition_agrees_across_ranks() {
        let all = World::new(8).run(|c| {
            // Each rank holds a different slice of the same global cloud.
            let full = cloud(4000, 5);
            let chunk: Vec<Vec3> = full
                .iter()
                .skip(c.rank())
                .step_by(c.size())
                .copied()
                .collect();
            let dd = DomainDecomposition::decompose(c, (2, 2, 2), &chunk, 200);
            // Return the owner of a fixed probe set.
            let probes: Vec<usize> = full[..64].iter().map(|&p| dd.owner_of(p)).collect();
            probes
        });
        for r in 1..all.len() {
            assert_eq!(all[0], all[r], "rank {r} computed different ownership");
        }
    }

    #[test]
    fn degenerate_sample_counts_do_not_panic() {
        // Fewer samples than domains.
        let mut pts = cloud(3, 6);
        let global = BBox::of_points(&pts);
        let dd = DomainDecomposition::from_samples((4, 2, 1), &mut pts, global);
        assert_eq!(dd.len(), 8);
        let _ = dd.owner_of(Vec3::ZERO);
        // Zero samples.
        let mut empty: Vec<Vec3> = vec![];
        let dd =
            DomainDecomposition::from_samples((2, 2, 2), &mut empty, BBox::cube(Vec3::ZERO, 1.0));
        assert!(dd.owner_of(Vec3::ZERO) < 8);
    }

    #[test]
    fn rank_cell_roundtrip() {
        let mut pts = cloud(100, 7);
        let global = BBox::of_points(&pts);
        let dd = DomainDecomposition::from_samples((3, 4, 5), &mut pts, global);
        for r in 0..dd.len() {
            let (x, y, z) = dd.cell_of_rank(r);
            assert_eq!(dd.rank_of_cell(x, y, z), r);
        }
    }
}
