//! # fdps — Framework for Developing Particle Simulators
//!
//! Rust reproduction of FDPS (paper §3.4): the general-purpose substrate for
//! massively parallel particle simulations that ASURA is built on. It
//! provides, exactly as the paper lists,
//!
//! * **domain decomposition** — recursive multisection into a 3-D process
//!   grid with sampling-based load balance ([`domain`]),
//! * **particle exchange** — migrating particles to their owning rank after
//!   a decomposition, over flat or 3-D-torus alltoallv ([`exchange`]),
//! * **tree construction** — a Barnes–Hut octree with monopole moments
//!   ([`tree`]),
//! * **local essential tree (LET) exchange** — shipping the minimal set of
//!   particles/multipoles every other rank needs ([`let_exchange`]), and
//! * **user-defined interaction calculation using the tree** — group-wise
//!   tree walks that emit interaction lists for particle–particle kernels
//!   ([`walk`]), plus neighbor search for short-range (SPH) interactions.
//!
//! The crate is communicator-generic: all distributed operations take an
//! [`mpisim::Comm`], and the data structures (octree, bounding boxes) are
//! plain and usable serially.

#![forbid(unsafe_code)]

pub mod bbox;
pub mod domain;
pub mod exchange;
pub mod let_exchange;
pub mod morton;
pub mod tree;
pub mod vec3;
pub mod walk;

pub use bbox::BBox;
pub use domain::DomainDecomposition;
pub use tree::{Tree, TreeNode};
pub use vec3::Vec3;
pub use walk::{InteractionList, SuperParticle, WalkIndex, WalkScratch};
