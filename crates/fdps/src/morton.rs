//! Morton (Z-order) keys: the linearization FDPS uses to build its octree.
//!
//! Positions are quantized to 21 bits per axis inside a global bounding cube
//! and interleaved into a 63-bit key; sorting particles by key makes every
//! octree node a contiguous range.

use crate::bbox::BBox;
use crate::vec3::Vec3;

/// Bits per axis (3 * 21 = 63 bits used of the u64).
pub const BITS: u32 = 21;

/// Spread the low 21 bits of `v` so consecutive bits land 3 apart.
#[inline]
fn spread(v: u64) -> u64 {
    let mut x = v & 0x1f_ffff; // 21 bits
    x = (x | (x << 32)) & 0x1f00000000ffff;
    x = (x | (x << 16)) & 0x1f0000ff0000ff;
    x = (x | (x << 8)) & 0x100f00f00f00f00f;
    x = (x | (x << 4)) & 0x10c30c30c30c30c3;
    x = (x | (x << 2)) & 0x1249249249249249;
    x
}

/// Compact every third bit back into the low 21 bits.
#[inline]
fn compact(v: u64) -> u64 {
    let mut x = v & 0x1249249249249249;
    x = (x | (x >> 2)) & 0x10c30c30c30c30c3;
    x = (x | (x >> 4)) & 0x100f00f00f00f00f;
    x = (x | (x >> 8)) & 0x1f0000ff0000ff;
    x = (x | (x >> 16)) & 0x1f00000000ffff;
    x = (x | (x >> 32)) & 0x1f_ffff;
    x
}

/// Quantize `p` inside `cube` to 21 bits per axis and interleave.
#[inline]
pub fn key(p: Vec3, cube: &BBox) -> u64 {
    let n = (1u64 << BITS) as f64;
    let ext = cube.extent();
    let q = |x: f64, lo: f64, e: f64| -> u64 {
        if e <= 0.0 {
            return 0;
        }
        let t = ((x - lo) / e * n) as i64;
        t.clamp(0, (1 << BITS) - 1) as u64
    };
    let ix = q(p.x, cube.lo.x, ext.x);
    let iy = q(p.y, cube.lo.y, ext.y);
    let iz = q(p.z, cube.lo.z, ext.z);
    spread(ix) | (spread(iy) << 1) | (spread(iz) << 2)
}

/// Invert a key back to its quantized cell indices.
#[inline]
pub fn cell_of(key: u64) -> (u64, u64, u64) {
    (compact(key), compact(key >> 1), compact(key >> 2))
}

/// The 3-bit octant digit of `key` at `level` (level 0 is the root split).
#[inline]
pub fn digit(key: u64, level: u32) -> usize {
    debug_assert!(level < BITS);
    ((key >> (3 * (BITS - 1 - level))) & 0b111) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_compact_roundtrip() {
        for v in [0u64, 1, 2, 0x15_5555, 0x1f_ffff, 123_456] {
            assert_eq!(compact(spread(v)), v);
        }
    }

    #[test]
    fn key_roundtrips_cell_indices() {
        let cube = BBox::new(Vec3::splat(-1.0), Vec3::splat(1.0));
        let p = Vec3::new(0.25, -0.75, 0.999);
        let k = key(p, &cube);
        let (ix, iy, iz) = cell_of(k);
        let n = (1u64 << BITS) as f64;
        assert_eq!(ix, ((0.25 + 1.0) / 2.0 * n) as u64);
        assert_eq!(iy, ((-0.75 + 1.0) / 2.0 * n) as u64);
        assert_eq!(iz, ((0.999 + 1.0) / 2.0 * n) as u64);
    }

    #[test]
    fn points_outside_cube_clamp() {
        let cube = BBox::new(Vec3::ZERO, Vec3::splat(1.0));
        let k = key(Vec3::new(2.0, -1.0, 0.5), &cube);
        let (ix, iy, _) = cell_of(k);
        assert_eq!(ix, (1 << BITS) - 1);
        assert_eq!(iy, 0);
    }

    #[test]
    fn digit_walks_from_coarse_to_fine() {
        let cube = BBox::new(Vec3::ZERO, Vec3::splat(1.0));
        // Point in the high-x, low-y, low-z octant: digit 0b001 at level 0.
        let k = key(Vec3::new(0.9, 0.1, 0.1), &cube);
        assert_eq!(digit(k, 0), 0b001);
        // Point near the center of that octant keeps refining.
        let k2 = key(Vec3::new(0.55, 0.05, 0.05), &cube);
        assert_eq!(digit(k2, 0), 0b001);
        assert_eq!(digit(k2, 1), 0b000);
    }

    #[test]
    fn zorder_is_monotone_within_axis() {
        let cube = BBox::new(Vec3::ZERO, Vec3::splat(1.0));
        let k1 = key(Vec3::new(0.1, 0.0, 0.0), &cube);
        let k2 = key(Vec3::new(0.2, 0.0, 0.0), &cube);
        assert!(k2 > k1);
    }

    #[test]
    fn degenerate_cube_yields_zero_keys() {
        let cube = BBox::new(Vec3::ZERO, Vec3::ZERO);
        assert_eq!(key(Vec3::new(5.0, 5.0, 5.0), &cube), 0);
    }
}
