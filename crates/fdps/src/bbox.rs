//! Axis-aligned bounding boxes (domains, tree-node extents).

use crate::vec3::Vec3;

/// An axis-aligned box `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BBox {
    pub lo: Vec3,
    pub hi: Vec3,
}

impl BBox {
    /// The empty box (inverted bounds); absorbs points via [`BBox::extend`].
    pub fn empty() -> Self {
        BBox {
            lo: Vec3::splat(f64::INFINITY),
            hi: Vec3::splat(f64::NEG_INFINITY),
        }
    }

    pub fn new(lo: Vec3, hi: Vec3) -> Self {
        BBox { lo, hi }
    }

    /// Cube centred at `c` with half-side `half`.
    pub fn cube(c: Vec3, half: f64) -> Self {
        BBox {
            lo: c - Vec3::splat(half),
            hi: c + Vec3::splat(half),
        }
    }

    /// Smallest box containing all `points`.
    pub fn of_points(points: &[Vec3]) -> Self {
        let mut b = BBox::empty();
        for &p in points {
            b.extend(p);
        }
        b
    }

    /// Grow to include `p`.
    #[inline]
    pub fn extend(&mut self, p: Vec3) {
        self.lo = self.lo.min(p);
        self.hi = self.hi.max(p);
    }

    /// Grow to include another box.
    #[inline]
    pub fn merge(&mut self, o: &BBox) {
        self.lo = self.lo.min(o.lo);
        self.hi = self.hi.max(o.hi);
    }

    /// Is `p` inside (`lo <= p < hi`)?
    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.lo.x
            && p.x < self.hi.x
            && p.y >= self.lo.y
            && p.y < self.hi.y
            && p.z >= self.lo.z
            && p.z < self.hi.z
    }

    #[inline]
    pub fn center(&self) -> Vec3 {
        (self.lo + self.hi) * 0.5
    }

    #[inline]
    pub fn extent(&self) -> Vec3 {
        self.hi - self.lo
    }

    /// Longest edge length.
    #[inline]
    pub fn max_extent(&self) -> f64 {
        self.extent().max_component()
    }

    /// True if the box holds no volume (empty or degenerate).
    pub fn is_empty(&self) -> bool {
        self.lo.x > self.hi.x || self.lo.y > self.hi.y || self.lo.z > self.hi.z
    }

    /// Minimum squared distance from `p` to the box (0 if inside).
    #[inline]
    pub fn dist2_to_point(&self, p: Vec3) -> f64 {
        let dx = (self.lo.x - p.x).max(0.0).max(p.x - self.hi.x);
        let dy = (self.lo.y - p.y).max(0.0).max(p.y - self.hi.y);
        let dz = (self.lo.z - p.z).max(0.0).max(p.z - self.hi.z);
        dx * dx + dy * dy + dz * dz
    }

    /// Minimum squared distance between two boxes (0 if overlapping).
    #[inline]
    pub fn dist2_to_box(&self, o: &BBox) -> f64 {
        let d = |alo: f64, ahi: f64, blo: f64, bhi: f64| (blo - ahi).max(0.0).max(alo - bhi);
        let dx = d(self.lo.x, self.hi.x, o.lo.x, o.hi.x);
        let dy = d(self.lo.y, self.hi.y, o.lo.y, o.hi.y);
        let dz = d(self.lo.z, self.hi.z, o.lo.z, o.hi.z);
        dx * dx + dy * dy + dz * dz
    }

    /// Inflate by `margin` on every side.
    pub fn inflated(&self, margin: f64) -> BBox {
        BBox {
            lo: self.lo - Vec3::splat(margin),
            hi: self.hi + Vec3::splat(margin),
        }
    }

    /// Do two boxes overlap (half-open semantics)?
    pub fn overlaps(&self, o: &BBox) -> bool {
        self.lo.x < o.hi.x
            && o.lo.x < self.hi.x
            && self.lo.y < o.hi.y
            && o.lo.y < self.hi.y
            && self.lo.z < o.hi.z
            && o.lo.z < self.hi.z
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extend_builds_tight_bounds() {
        let pts = [
            Vec3::new(1.0, -2.0, 0.0),
            Vec3::new(-1.0, 3.0, 5.0),
            Vec3::new(0.0, 0.0, -1.0),
        ];
        let b = BBox::of_points(&pts);
        assert_eq!(b.lo, Vec3::new(-1.0, -2.0, -1.0));
        assert_eq!(b.hi, Vec3::new(1.0, 3.0, 5.0));
        for &p in &pts[..2] {
            // hi is exclusive, so the max corner point itself is outside;
            // interior points are inside.
            let _ = p;
        }
        assert!(b.contains(Vec3::new(0.0, 0.0, 0.0)));
        assert!(!b.contains(Vec3::new(1.0, 0.0, 0.0))); // on hi face
    }

    #[test]
    fn empty_box_absorbs_and_reports() {
        let mut b = BBox::empty();
        assert!(b.is_empty());
        b.extend(Vec3::new(1.0, 1.0, 1.0));
        assert!(!b.is_empty());
        assert_eq!(b.lo, b.hi);
    }

    #[test]
    fn center_extent_cube() {
        let b = BBox::cube(Vec3::new(1.0, 2.0, 3.0), 2.0);
        assert_eq!(b.center(), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(b.extent(), Vec3::splat(4.0));
        assert_eq!(b.max_extent(), 4.0);
    }

    #[test]
    fn distance_to_point() {
        let b = BBox::new(Vec3::ZERO, Vec3::splat(1.0));
        assert_eq!(b.dist2_to_point(Vec3::new(0.5, 0.5, 0.5)), 0.0);
        assert_eq!(b.dist2_to_point(Vec3::new(2.0, 0.5, 0.5)), 1.0);
        assert_eq!(b.dist2_to_point(Vec3::new(2.0, 2.0, 0.5)), 2.0);
        assert_eq!(b.dist2_to_point(Vec3::new(-1.0, -1.0, -1.0)), 3.0);
    }

    #[test]
    fn distance_between_boxes() {
        let a = BBox::new(Vec3::ZERO, Vec3::splat(1.0));
        let b = BBox::new(Vec3::splat(2.0), Vec3::splat(3.0));
        assert_eq!(a.dist2_to_box(&b), 3.0);
        let c = BBox::new(Vec3::new(0.5, 0.5, 0.5), Vec3::splat(4.0));
        assert_eq!(a.dist2_to_box(&c), 0.0);
    }

    #[test]
    fn overlap_and_inflate() {
        let a = BBox::new(Vec3::ZERO, Vec3::splat(1.0));
        let b = BBox::new(Vec3::splat(1.5), Vec3::splat(2.0));
        assert!(!a.overlaps(&b));
        assert!(a.inflated(0.6).overlaps(&b));
        // Touching faces do not overlap under half-open semantics.
        let c = BBox::new(Vec3::new(1.0, 0.0, 0.0), Vec3::new(2.0, 1.0, 1.0));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn merge_covers_both() {
        let mut a = BBox::new(Vec3::ZERO, Vec3::splat(1.0));
        let b = BBox::new(Vec3::splat(-1.0), Vec3::splat(0.5));
        a.merge(&b);
        assert_eq!(a.lo, Vec3::splat(-1.0));
        assert_eq!(a.hi, Vec3::splat(1.0));
    }
}
