//! Minimal 3-vector used throughout the workspace.

use std::ops::{Add, AddAssign, Div, DivAssign, Index, Mul, MulAssign, Neg, Sub, SubAssign};

/// A 3-D vector of `f64`. Positions and velocities are stored in double
/// precision (paper §4.3: "positions and velocities of particles are stored
/// in double-precision variables to handle a wide range of orders").
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * o.z - self.z * o.y,
            y: self.z * o.x - self.x * o.z,
            z: self.x * o.y - self.y * o.x,
        }
    }

    #[inline]
    pub fn norm2(self) -> f64 {
        self.dot(self)
    }

    #[inline]
    pub fn norm(self) -> f64 {
        self.norm2().sqrt()
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }

    /// Largest component.
    #[inline]
    pub fn max_component(self) -> f64 {
        self.x.max(self.y).max(self.z)
    }

    /// Component by axis index (0 = x, 1 = y, 2 = z).
    #[inline]
    pub fn axis(self, k: usize) -> f64 {
        match k {
            0 => self.x,
            1 => self.y,
            2 => self.z,
            _ => panic!("Vec3 axis out of range: {k}"),
        }
    }

    /// Set component by axis index.
    #[inline]
    pub fn set_axis(&mut self, k: usize, v: f64) {
        match k {
            0 => self.x = v,
            1 => self.y = v,
            2 => self.z = v,
            _ => panic!("Vec3 axis out of range: {k}"),
        }
    }

    /// True if all components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Convert to an `[f32; 3]` (the mixed-precision path of §4.3).
    #[inline]
    pub fn to_f32(self) -> [f32; 3] {
        [self.x as f32, self.y as f32, self.z as f32]
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl MulAssign<f64> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, s: f64) {
        *self = *self * s;
    }
}

impl DivAssign<f64> for Vec3 {
    #[inline]
    fn div_assign(&mut self, s: f64) {
        *self = *self / s;
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, k: usize) -> &f64 {
        match k {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {k}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 0.5, 2.0);
        assert_eq!(a + b - b, a);
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn dot_cross_and_norms() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(b.cross(a), Vec3::new(0.0, 0.0, -1.0));
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.norm2(), 25.0);
        assert_eq!(v.norm(), 5.0);
    }

    #[test]
    fn axis_accessors_roundtrip() {
        let mut v = Vec3::ZERO;
        for k in 0..3 {
            v.set_axis(k, k as f64 + 1.0);
        }
        assert_eq!(v, Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(v.axis(2), 3.0);
        assert_eq!(v[1], 2.0);
        assert_eq!(v.max_component(), 3.0);
    }

    #[test]
    fn component_min_max() {
        let a = Vec3::new(1.0, 5.0, -2.0);
        let b = Vec3::new(3.0, 2.0, 0.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 2.0, -2.0));
        assert_eq!(a.max(b), Vec3::new(3.0, 5.0, 0.0));
    }

    #[test]
    fn assign_ops() {
        let mut v = Vec3::new(1.0, 1.0, 1.0);
        v += Vec3::splat(1.0);
        v -= Vec3::new(0.0, 1.0, 0.0);
        v *= 3.0;
        v /= 2.0;
        assert_eq!(v, Vec3::new(3.0, 1.5, 3.0));
    }

    #[test]
    fn finite_check_and_f32_conversion() {
        assert!(Vec3::new(1.0, 2.0, 3.0).is_finite());
        assert!(!Vec3::new(f64::NAN, 0.0, 0.0).is_finite());
        assert!(!Vec3::new(0.0, f64::INFINITY, 0.0).is_finite());
        assert_eq!(Vec3::new(1.5, -2.0, 0.25).to_f32(), [1.5f32, -2.0, 0.25]);
    }

    #[test]
    #[should_panic(expected = "axis out of range")]
    fn bad_axis_panics() {
        Vec3::ZERO.axis(3);
    }
}
