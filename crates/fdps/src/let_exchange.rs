//! Local essential tree (LET) exchange (paper §5.2.3).
//!
//! Gravity reaches the entire system, so every rank needs *some* information
//! about every other rank's particles. The LET is the minimal such set: for
//! each remote domain, the local tree is walked with the multipole
//! acceptance criterion evaluated against the remote domain's box — nearby
//! subtrees are shipped particle-by-particle (EPJ), distant ones as a single
//! monopole super-particle (SPJ). This is the all-to-all phase that
//! dominates at full-machine scale (paper Table 3: "LET Exchange ... most
//! time-consuming with the full system of Fugaku").

use crate::domain::DomainDecomposition;
use crate::exchange::Routing;
use crate::tree::Tree;
use crate::vec3::Vec3;
use mpisim::{Comm, TorusDims};

/// A particle-or-monopole entry shipped in a LET.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LetEntry {
    pub pos: [f64; 3],
    pub mass: f64,
}

impl LetEntry {
    pub fn position(&self) -> Vec3 {
        Vec3::new(self.pos[0], self.pos[1], self.pos[2])
    }
}

/// Build and exchange LETs. `tree` indexes `pos`/`mass` on this rank.
/// Returns the imported entries from all other ranks, flattened; appending
/// them to the local particles gives the full j-side for gravity.
pub fn exchange_let(
    comm: &Comm,
    dd: &DomainDecomposition,
    tree: &Tree,
    pos: &[Vec3],
    mass: &[f64],
    theta: f64,
    routing: Routing,
) -> Vec<LetEntry> {
    let p = comm.size();
    let me = comm.rank();
    let mut sends: Vec<Vec<LetEntry>> = (0..p).map(|_| Vec::new()).collect();
    for (r, send) in sends.iter_mut().enumerate() {
        if r == me {
            continue;
        }
        let target = dd.domain_box(r);
        let mut list = crate::walk::InteractionList::default();
        tree.walk_mac(&target, theta, &mut list);
        send.reserve(list.len());
        for &j in &list.ep {
            let j = j as usize;
            send.push(LetEntry {
                pos: [pos[j].x, pos[j].y, pos[j].z],
                mass: mass[j],
            });
        }
        for s in &list.sp {
            send.push(LetEntry {
                pos: [s.pos.x, s.pos.y, s.pos.z],
                mass: s.mass,
            });
        }
    }
    let recvs = match routing {
        Routing::Flat => comm.alltoallv(sends),
        Routing::Torus => comm.alltoallv_torus(TorusDims::new(dd.nx, dd.ny, dd.nz), sends),
    };
    recvs.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bbox::BBox;
    use crate::walk::eval_gravity_reference;
    use mpisim::World;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn cloud(n: usize, seed: u64) -> (Vec<Vec3>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pos: Vec<Vec3> = (0..n)
            .map(|_| {
                Vec3::new(
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                )
            })
            .collect();
        let mass = (0..n).map(|_| rng.gen_range(0.5..2.0)).collect();
        (pos, mass)
    }

    fn direct(pos: &[Vec3], mass: &[f64], eps2: f64, at: Vec3, skip: Option<usize>) -> Vec3 {
        let mut a = Vec3::ZERO;
        for j in 0..pos.len() {
            if Some(j) == skip {
                continue;
            }
            let d = at - pos[j];
            let r2 = d.norm2() + eps2;
            let rinv = 1.0 / r2.sqrt();
            a -= d * (mass[j] * rinv * rinv * rinv);
        }
        a
    }

    /// Distributed gravity via LET must match the serial direct sum.
    #[test]
    fn distributed_gravity_matches_direct_sum() {
        let (pos, mass) = cloud(800, 20);
        let eps2 = 1e-4;
        let theta = 0.4;
        let mut sample = pos.clone();
        let dd = DomainDecomposition::from_samples((2, 2, 2), &mut sample, BBox::of_points(&pos));

        let per_rank = World::new(8).run(|c| {
            // Local particles: those owned by this rank.
            let idx: Vec<usize> = (0..pos.len())
                .filter(|&i| dd.owner_of(pos[i]) == c.rank())
                .collect();
            let lpos: Vec<Vec3> = idx.iter().map(|&i| pos[i]).collect();
            let lmass: Vec<f64> = idx.iter().map(|&i| mass[i]).collect();
            let tree = Tree::build(&lpos, &lmass, 8);
            let imports = exchange_let(c, &dd, &tree, &lpos, &lmass, theta, Routing::Flat);

            // Combined j-side: local + imported.
            let mut jpos = lpos.clone();
            let mut jmass = lmass.clone();
            for e in &imports {
                jpos.push(e.position());
                jmass.push(e.mass);
            }
            let jtree = Tree::build(&jpos, &jmass, 8);

            // Evaluate forces on local particles group-wise.
            let mut acc = vec![Vec3::ZERO; jpos.len()];
            let mut pot = vec![0.0; jpos.len()];
            let n_local = lpos.len();
            for (g, list) in jtree.interaction_lists(theta, 32) {
                let node = jtree.nodes[g].clone();
                let targets: Vec<u32> = jtree
                    .leaf_particles(&node)
                    .iter()
                    .copied()
                    .filter(|&i| (i as usize) < n_local)
                    .collect();
                eval_gravity_reference(
                    &targets, &jpos, &jmass, eps2, &list, &mut acc, &mut pot, true,
                );
            }
            idx.iter()
                .enumerate()
                .map(|(k, &gi)| (gi, acc[k]))
                .collect::<Vec<_>>()
        });

        let mut worst: f64 = 0.0;
        let mut mean = 0.0;
        let mut count = 0;
        for (gi, a) in per_rank.into_iter().flatten() {
            let exact = direct(&pos, &mass, eps2, pos[gi], Some(gi));
            let rel = (a - exact).norm() / exact.norm().max(1e-12);
            worst = worst.max(rel);
            mean += rel;
            count += 1;
        }
        mean /= count as f64;
        assert_eq!(count, pos.len(), "every particle got a force");
        assert!(mean < 0.01, "mean rel err {mean}");
        assert!(worst < 0.2, "worst rel err {worst}");
    }

    #[test]
    fn let_mass_is_complete() {
        // Local mass + imported LET mass must equal the global mass on every
        // rank (monopole completeness).
        let (pos, mass) = cloud(500, 21);
        let total: f64 = mass.iter().sum();
        let mut sample = pos.clone();
        let dd = DomainDecomposition::from_samples((2, 2, 1), &mut sample, BBox::of_points(&pos));
        World::new(4).run(|c| {
            let idx: Vec<usize> = (0..pos.len())
                .filter(|&i| dd.owner_of(pos[i]) == c.rank())
                .collect();
            let lpos: Vec<Vec3> = idx.iter().map(|&i| pos[i]).collect();
            let lmass: Vec<f64> = idx.iter().map(|&i| mass[i]).collect();
            let tree = Tree::build(&lpos, &lmass, 8);
            let imports = exchange_let(c, &dd, &tree, &lpos, &lmass, 0.5, Routing::Flat);
            let m: f64 = lmass.iter().sum::<f64>() + imports.iter().map(|e| e.mass).sum::<f64>();
            assert!(
                (m - total).abs() < 1e-9 * total,
                "rank {} sees mass {m} of {total}",
                c.rank()
            );
        });
    }

    #[test]
    fn smaller_theta_imports_more_entries() {
        let (pos, mass) = cloud(600, 22);
        let mut sample = pos.clone();
        let dd = DomainDecomposition::from_samples((2, 2, 1), &mut sample, BBox::of_points(&pos));
        let sizes = World::new(4).run(|c| {
            let idx: Vec<usize> = (0..pos.len())
                .filter(|&i| dd.owner_of(pos[i]) == c.rank())
                .collect();
            let lpos: Vec<Vec3> = idx.iter().map(|&i| pos[i]).collect();
            let lmass: Vec<f64> = idx.iter().map(|&i| mass[i]).collect();
            let tree = Tree::build(&lpos, &lmass, 8);
            let fine = exchange_let(c, &dd, &tree, &lpos, &lmass, 0.2, Routing::Flat).len();
            let coarse = exchange_let(c, &dd, &tree, &lpos, &lmass, 0.9, Routing::Flat).len();
            (fine, coarse)
        });
        for (fine, coarse) in sizes {
            assert!(fine > coarse, "theta=0.2 ({fine}) vs theta=0.9 ({coarse})");
        }
    }

    #[test]
    fn torus_routing_delivers_identical_lets() {
        let (pos, mass) = cloud(400, 23);
        let mut sample = pos.clone();
        let dd = DomainDecomposition::from_samples((2, 2, 2), &mut sample, BBox::of_points(&pos));
        let both = World::new(8).run(|c| {
            let idx: Vec<usize> = (0..pos.len())
                .filter(|&i| dd.owner_of(pos[i]) == c.rank())
                .collect();
            let lpos: Vec<Vec3> = idx.iter().map(|&i| pos[i]).collect();
            let lmass: Vec<f64> = idx.iter().map(|&i| mass[i]).collect();
            let tree = Tree::build(&lpos, &lmass, 8);
            let mut flat = exchange_let(c, &dd, &tree, &lpos, &lmass, 0.5, Routing::Flat);
            let mut torus = exchange_let(c, &dd, &tree, &lpos, &lmass, 0.5, Routing::Torus);
            let key = |e: &LetEntry| (e.pos[0].to_bits(), e.pos[1].to_bits(), e.mass.to_bits());
            flat.sort_by_key(key);
            torus.sort_by_key(key);
            flat == torus
        });
        assert!(both.into_iter().all(|b| b));
    }
}
